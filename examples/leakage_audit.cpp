// Example: quantitative information-flow auditing via #NFA (the
// side-channel application family cited in the paper's introduction: Bang et
// al. FSE'16, Saha et al. PLDI'23).
//
// Model: a password checker leaks, through a timing side channel, the length
// of the matched prefix of the secret against the attempted input. The set
// of secrets consistent with an observation is a regular language; counting
// it measures the remaining uncertainty (guessing entropy):
//
//   leakage(bits) = log2(|secrets before|) - log2(|secrets after|)
//
//   $ ./leakage_audit

#include <cmath>
#include <cstdio>

#include "automata/nfa.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;

namespace {

/// NFA for "secrets of length n whose longest common prefix with `attempt`
/// has length exactly k": first k symbols equal attempt's, symbol k differs
/// (if k < n), rest free.
Nfa PrefixLeakNfa(const Word& attempt, int k) {
  const int n = static_cast<int>(attempt.size());
  Nfa nfa(2);
  StateId prev = nfa.AddState();
  nfa.SetInitial(prev);
  for (int i = 0; i < k; ++i) {
    StateId next = nfa.AddState();
    nfa.AddTransition(prev, attempt[i], next);
    prev = next;
  }
  if (k < n) {
    StateId next = nfa.AddState();
    nfa.AddTransition(prev, static_cast<Symbol>(1 - attempt[k]), next);
    prev = next;
    for (int i = k + 1; i < n; ++i) {
      StateId free_next = nfa.AddState();
      nfa.AddTransition(prev, Symbol{0}, free_next);
      nfa.AddTransition(prev, Symbol{1}, free_next);
      prev = free_next;
    }
  }
  nfa.AddAccepting(prev);
  return nfa;
}

}  // namespace

int main() {
  const int n = 20;  // 20-bit secrets: 2^20 equally likely a priori
  Word attempt;
  for (int i = 0; i < n; ++i) attempt.push_back(static_cast<Symbol>(i % 2));

  std::printf("secret space: 2^%d = %.0f equally likely secrets\n", n,
              std::pow(2.0, n));
  std::printf("attacker tries %s and observes the matched-prefix length\n\n",
              WordToString(attempt).c_str());

  CountOptions options;
  options.eps = 0.2;
  options.delta = 0.1;
  std::printf("%-10s %-14s %-14s %-12s\n", "observed", "consistent~",
              "exact", "leak(bits)");
  const double prior_bits = n;
  for (int k : {0, 1, 4, 8, 16, n}) {
    Nfa nfa = PrefixLeakNfa(attempt, k);
    options.seed = 700 + k;
    Result<CountEstimate> approx = ApproxCount(nfa, n, options);
    if (!approx.ok()) {
      std::fprintf(stderr, "count failed: %s\n",
                   approx.status().ToString().c_str());
      return 1;
    }
    Result<BigUint> exact = ExactCountViaDfa(nfa, n);
    double bits_left = approx->estimate > 0 ? std::log2(approx->estimate) : 0.0;
    std::printf("prefix=%-3d %-14.1f %-14s %-12.2f\n", k, approx->estimate,
                exact.ok() ? exact->ToString().c_str() : "?",
                prior_bits - bits_left);
  }
  std::printf(
      "\nReading: observing 'prefix length k' reveals ~(k+1) bits for k < n\n"
      "(k matched bits plus one mismatched bit), and all %d bits at k = n.\n",
      n);
  return 0;
}
