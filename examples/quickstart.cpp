// Quickstart: build a small NFA by hand, approximate |L(A_n)| with the
// paper's FPRAS, compare against the exact count, and draw a few
// almost-uniform words.
//
//   $ ./quickstart

#include <cstdio>

#include "automata/nfa.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;

int main() {
  // Words over {0,1} containing "101" as a substring (classic NFA: guess the
  // occurrence, then verify).
  Nfa nfa(2);
  StateId s0 = nfa.AddState();  // guessing
  StateId s1 = nfa.AddState();  // saw 1
  StateId s2 = nfa.AddState();  // saw 10
  StateId s3 = nfa.AddState();  // saw 101 (absorbing accept)
  nfa.SetInitial(s0);
  nfa.AddAccepting(s3);
  for (Symbol b : {Symbol{0}, Symbol{1}}) {
    nfa.AddTransition(s0, b, s0);
    nfa.AddTransition(s3, b, s3);
  }
  nfa.AddTransition(s0, Symbol{1}, s1);
  nfa.AddTransition(s1, Symbol{0}, s2);
  nfa.AddTransition(s2, Symbol{1}, s3);

  const int n = 16;

  // 1. Approximate counting (Theorem 3 guarantee: within (1±eps) w.p. 1-delta).
  CountOptions options;
  options.eps = 0.2;
  options.delta = 0.1;
  options.seed = 42;
  Result<CountEstimate> approx = ApproxCount(nfa, n, options);
  if (!approx.ok()) {
    std::fprintf(stderr, "ApproxCount failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }

  // 2. Exact count for comparison (exponential in general; fine here).
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  if (!exact.ok()) {
    std::fprintf(stderr, "exact count failed: %s\n",
                 exact.status().ToString().c_str());
    return 1;
  }

  const double est = approx->estimate;
  const double truth = exact->ToDouble();
  std::printf("words of length %d containing \"101\":\n", n);
  std::printf("  FPRAS estimate : %.1f\n", est);
  std::printf("  exact count    : %.1f\n", truth);
  std::printf("  relative error : %.4f (eps = %.2f)\n",
              truth > 0 ? std::abs(est - truth) / truth : 0.0, options.eps);
  std::printf("  FPRAS wall time: %.1f ms, AppUnion calls: %lld\n",
              approx->diagnostics.wall_seconds * 1e3,
              static_cast<long long>(approx->diagnostics.appunion_calls));

  // 3. Almost-uniform generation from the same language (Theorem 2).
  SamplerOptions sampler_options;
  sampler_options.seed = 7;
  Result<WordSampler> sampler = WordSampler::Build(nfa, n, sampler_options);
  if (!sampler.ok()) {
    std::fprintf(stderr, "sampler failed: %s\n",
                 sampler.status().ToString().c_str());
    return 1;
  }
  std::printf("five almost-uniform members of the language:\n");
  for (int i = 0; i < 5; ++i) {
    Result<Word> word = sampler.value().Sample();
    if (!word.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   word.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s\n", WordToString(word.value()).c_str());
  }
  return 0;
}
