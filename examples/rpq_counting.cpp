// Example: regular path queries on a graph database.
//
// Builds a small "transport network" database with two edge labels
// (0 = road, 1 = rail), then answers RPQs: how many distinct label itineraries
// of length n connect two hubs under a regex policy, sample typical
// itineraries uniformly, and materialize witness paths for one of them.
//
//   $ ./rpq_counting

#include <cstdio>

#include "apps/rpq.hpp"

using namespace nfacount;

int main() {
  // 8 stations; roads form a ring, rail connects hubs 0-4 and shortcuts.
  GraphDb db(8, 2);
  for (int u = 0; u < 8; ++u) {
    (void)db.AddEdge(u, Symbol{0}, (u + 1) % 8);  // ring road
  }
  (void)db.AddEdge(0, Symbol{1}, 4);
  (void)db.AddEdge(4, Symbol{1}, 0);
  (void)db.AddEdge(2, Symbol{1}, 6);
  (void)db.AddEdge(6, Symbol{1}, 2);
  (void)db.AddEdge(1, Symbol{1}, 5);

  const int src = 0, dst = 6;
  const int n = 11;  // e.g. two roads, rail 2->6, then a full ring loop
  // Policy: at most two rail legs, never consecutive.
  const std::string policy = "0*(10+){0,2}1?0*";

  std::printf("stations=%d road/rail edges=%lld, query: %d -> %d, length %d\n",
              db.num_nodes(), static_cast<long long>(db.num_edges()), src, dst,
              n);
  std::printf("policy regex: %s\n\n", policy.c_str());

  CountOptions count_options;
  count_options.eps = 0.25;
  count_options.delta = 0.1;
  count_options.seed = 3;
  Result<CountEstimate> count =
      CountRpqAnswers(db, src, dst, policy, n, count_options);
  if (!count.ok()) {
    std::fprintf(stderr, "count failed: %s\n", count.status().ToString().c_str());
    return 1;
  }
  std::printf("distinct compliant itineraries of length %d: ~%.1f\n", n,
              count->estimate);
  std::printf("(product automaton: %d states; FPRAS time %.1f ms)\n",
              count->params.m, count->diagnostics.wall_seconds * 1e3);

  Result<double> up_to = CountRpqAnswersUpTo(db, src, dst, policy, n,
                                             count_options);
  if (up_to.ok()) {
    std::printf("itineraries of length <= %d: ~%.1f\n\n", n, up_to.value());
  }

  if (!(count->estimate > 0.0)) {
    std::printf("no itineraries of this exact length; nothing to sample\n");
    return 0;
  }
  SamplerOptions sampler_options;
  sampler_options.eps = 0.25;
  sampler_options.delta = 0.1;
  sampler_options.seed = 4;
  Result<std::vector<Word>> samples =
      SampleRpqAnswers(db, src, dst, policy, n, 5, sampler_options);
  if (!samples.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 samples.status().ToString().c_str());
    return 1;
  }
  std::printf("five almost-uniform itineraries (0=road, 1=rail):\n");
  for (const Word& w : *samples) {
    std::printf("  %s", WordToString(w).c_str());
    Result<std::vector<std::vector<int>>> paths =
        WitnessPaths(db, src, dst, w, /*limit=*/1);
    if (paths.ok() && !paths->empty()) {
      std::printf("   via stations");
      for (int station : paths->front()) std::printf(" %d", station);
    }
    std::printf("\n");
  }
  return 0;
}
