// Example: counting strings matching a regular expression.
//
// Compiles a regex to an NFA and estimates how many length-n strings match —
// e.g. auditing how much of the keyspace a validation pattern admits. Shows
// exact counts alongside for calibration, and a pattern whose NFA
// determinizes exponentially so exact counting via DFA is hopeless while the
// FPRAS keeps going.
//
//   $ ./regex_count

#include <cstdio>

#include "automata/generators.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;

namespace {

void CountPattern(const std::string& pattern, int n, int alphabet) {
  Result<Nfa> nfa = CompileRegex(pattern, alphabet);
  if (!nfa.ok()) {
    std::fprintf(stderr, "compile '%s': %s\n", pattern.c_str(),
                 nfa.status().ToString().c_str());
    return;
  }
  CountOptions options;
  options.eps = 0.25;
  options.delta = 0.1;
  options.seed = 11;
  Result<CountEstimate> approx = ApproxCount(*nfa, n, options);
  if (!approx.ok()) {
    std::fprintf(stderr, "count '%s': %s\n", pattern.c_str(),
                 approx.status().ToString().c_str());
    return;
  }
  Result<BigUint> exact = ExactCountViaDfa(*nfa, n);
  std::printf("  %-22s n=%-3d states=%-3d estimate=%-12.1f exact=%s\n",
              pattern.c_str(), n, nfa->num_states(), approx->estimate,
              exact.ok() ? exact->ToString().c_str() : "(blow-up)");
}

}  // namespace

int main() {
  std::printf("counting binary strings matching regular expressions:\n");
  CountPattern("(0|1)*101(0|1)*", 14, 2);   // contains 101
  CountPattern("(01|10)*", 14, 2);          // alternating pairs
  CountPattern("0*1{3,5}0*", 14, 2);        // a block of three to five 1s
  CountPattern("((0|1)(0|1))*11", 14, 2);   // even length, ends in 11

  std::printf("\nternary alphabet (DNA-like triplet constraints):\n");
  CountPattern("(012|210)+", 12, 3);
  CountPattern("0.*1.*2", 12, 3);

  std::printf("\nhard case: 1 at the 18th position from the end\n");
  std::printf("(the minimal DFA needs 2^18 = 262144 states; determinization-\n");
  std::printf(" based exact counting pays that, the FPRAS does not)\n");
  Nfa hard = KthFromEndNfa(18);
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.1;
  options.seed = 5;
  Result<CountEstimate> approx = ApproxCount(hard, 22, options);
  if (approx.ok()) {
    // Truth: 2^{22-1} = 2097152 (the k-th-from-end bit is pinned).
    std::printf("  kth-from-end(18)       n=22  states=19  estimate=%-12.1f "
                "exact=2097152\n",
                approx->estimate);
  }
  return 0;
}
