// nfa_client — command-line client for the nfa_serve daemon.
//
// Usage (every command takes --port <p>; --retries <n> bounds the
// connect/shed retry loop, default 5, 1 = no retry):
//   nfa_client ping        --port <p>
//   nfa_client register    --port <p> <name> <file.nfa|-> <horizon>
//                          [eps] [delta] [seed]
//   nfa_client count       --port <p> <name> <length>
//   nfa_client count-state --port <p> <name> <q> <length>
//   nfa_client sample      --port <p> <name> <length> <count>
//   nfa_client extend      --port <p> <name> <level>
//   nfa_client evict       --port <p> <name>
//   nfa_client unregister  --port <p> <name>
//   nfa_client stats       --port <p>
//   nfa_client shutdown    --port <p>
//
// Exit codes distinguish failure classes for scripting:
//   0  success
//   1  the daemon answered with an error (or the connection died mid-op)
//   2  usage error
//   3  could not reach the daemon (connect refused / shed until retries
//      were exhausted)
// Errors print the status as "CODE: message" on stderr.
//
// `count` prints the estimate as "%.6g\n" — the same format as
// `nfa_cli count` — so serve-mode answers diff byte-identical against the
// single-process CLI at the same seed (the CI serve-smoke job relies on
// this). `sample` prints one word per line in the nfa_cli sample format.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/alphabet.hpp"
#include "serve/client.hpp"

namespace {

using nfacount::Result;
using nfacount::Status;
using nfacount::Word;
using nfacount::serve::RegisterRequest;
using nfacount::serve::RetryPolicy;
using nfacount::serve::SampleResult;
using nfacount::serve::ServeClient;

int Usage() {
  std::fprintf(
      stderr,
      "usage: nfa_client <command> --port <p> [--retries <n>] [args]\n"
      "  ping\n"
      "  register    <name> <file.nfa|-> <horizon> [eps] [delta] [seed]\n"
      "  count       <name> <length>\n"
      "  count-state <name> <q> <length>\n"
      "  sample      <name> <length> <count>\n"
      "  extend      <name> <level>\n"
      "  evict       <name>\n"
      "  unregister  <name>\n"
      "  stats\n"
      "  shutdown\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailConnect(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 3;
}

/// Reads an automaton text from a file path, or stdin for "-".
Result<std::string> ReadNfaText(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open automaton file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  // Pull --port / --retries out; everything else stays positional.
  uint16_t port = 0;
  RetryPolicy retry;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      if (i + 1 >= argc) return Usage();
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      if (i + 1 >= argc) return Usage();
      retry.max_attempts = std::atoi(argv[++i]);
      if (retry.max_attempts < 1) return Usage();
    } else {
      args.push_back(argv[i]);
    }
  }
  if (port == 0) return Usage();

  Result<ServeClient> connected = ServeClient::ConnectWithRetry(port, retry);
  if (!connected.ok()) return FailConnect(connected.status());
  ServeClient client = std::move(connected).value();

  if (command == "ping") {
    Status st = client.Ping();
    if (!st.ok()) return Fail(st);
    std::printf("ok\n");
    return 0;
  }
  if (command == "register") {
    if (args.size() < 3) return Usage();
    RegisterRequest req;
    req.name = args[0];
    Result<std::string> text = ReadNfaText(args[1]);
    if (!text.ok()) return Fail(text.status());
    req.nfa_text = std::move(text).value();
    req.horizon = std::atoi(args[2].c_str());
    if (args.size() > 3) req.eps = std::atof(args[3].c_str());
    if (args.size() > 4) req.delta = std::atof(args[4].c_str());
    if (args.size() > 5) {
      req.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    }
    Status st = client.Register(req);
    if (!st.ok()) return Fail(st);
    std::printf("registered %s\n", req.name.c_str());
    return 0;
  }
  if (command == "count") {
    if (args.size() != 2) return Usage();
    Result<double> estimate =
        client.CountAtLength(args[0], std::atoi(args[1].c_str()));
    if (!estimate.ok()) return Fail(estimate.status());
    std::printf("%.6g\n", estimate.value());
    return 0;
  }
  if (command == "count-state") {
    if (args.size() != 3) return Usage();
    Result<double> estimate =
        client.CountFor(args[0], std::atoi(args[1].c_str()),
                        std::atoi(args[2].c_str()));
    if (!estimate.ok()) return Fail(estimate.status());
    std::printf("%.6g\n", estimate.value());
    return 0;
  }
  if (command == "sample") {
    if (args.size() != 3) return Usage();
    Result<SampleResult> sampled =
        client.SampleWords(args[0], std::atoi(args[1].c_str()),
                           std::atoll(args[2].c_str()));
    if (!sampled.ok()) return Fail(sampled.status());
    for (const Word& word : sampled.value().words) {
      std::printf("%s\n", nfacount::WordToString(word).c_str());
    }
    return 0;
  }
  if (command == "extend") {
    if (args.size() != 2) return Usage();
    Result<int> level = client.ExtendTo(args[0], std::atoi(args[1].c_str()));
    if (!level.ok()) return Fail(level.status());
    std::printf("computed %d\n", level.value());
    return 0;
  }
  if (command == "evict") {
    if (args.size() != 1) return Usage();
    Result<bool> was_resident = client.Evict(args[0]);
    if (!was_resident.ok()) return Fail(was_resident.status());
    std::printf("%s\n", was_resident.value() ? "demoted" : "already-demoted");
    return 0;
  }
  if (command == "unregister") {
    if (args.size() != 1) return Usage();
    Status st = client.Unregister(args[0]);
    if (!st.ok()) return Fail(st);
    std::printf("unregistered %s\n", args[0].c_str());
    return 0;
  }
  if (command == "stats") {
    Result<std::string> json = client.Stats();
    if (!json.ok()) return Fail(json.status());
    std::printf("%s\n", json.value().c_str());
    return 0;
  }
  if (command == "shutdown") {
    Status st = client.Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("ok\n");
    return 0;
  }
  return Usage();
}
