// nfa_client — command-line client for the nfa_serve daemon.
//
// Usage (every command takes --port <p>; --retries <n> bounds the
// connect/shed retry loop, default 5, 1 = no retry):
//   nfa_client ping        --port <p>
//   nfa_client register    --port <p> <name> <file.nfa|-> <horizon>
//                          [eps] [delta] [seed]
//   nfa_client count       --port <p> <name> <length>
//   nfa_client count-state --port <p> <name> <q> <length>
//   nfa_client sample      --port <p> <name> <length> <count>
//   nfa_client extend      --port <p> <name> <level>
//   nfa_client evict       --port <p> <name>
//   nfa_client unregister  --port <p> <name>
//   nfa_client stats       --port <p> [--pretty]
//   nfa_client shutdown    --port <p>
//   nfa_client bench       --port <p> <name> <length>
//                          [--requests <n>] [--concurrency <c>]
//                          [--pipeline <d>]
//
// `stats --pretty` renders the daemon's JSON as a per-operation table
// (requests, errors, service p50/p90/p99, queue-wait p50) instead of the
// raw document.
//
// `bench` is a closed-loop load generator against an already-registered
// session: `--concurrency <c>` connections each issue count requests with
// `--pipeline <d>` requests on the wire per connection (a sliding window —
// one reply read per new request sent), `--requests <n>` total across all
// connections. Prints achieved qps and client-observed per-request latency
// percentiles. All replies are checked against each other: a mismatch is a
// determinism bug and exits 1.
//
// Exit codes distinguish failure classes for scripting:
//   0  success
//   1  the daemon answered with an error (or the connection died mid-op)
//   2  usage error
//   3  could not reach the daemon (connect refused / shed until retries
//      were exhausted)
// Errors print the status as "CODE: message" on stderr.
//
// `count` prints the estimate as "%.6g\n" — the same format as
// `nfa_cli count` — so serve-mode answers diff byte-identical against the
// single-process CLI at the same seed (the CI serve-smoke job relies on
// this). `sample` prints one word per line in the nfa_cli sample format.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.hpp"
#include "serve/client.hpp"
#include "util/metrics.hpp"

namespace {

using nfacount::Result;
using nfacount::Status;
using nfacount::Word;
using nfacount::serve::RegisterRequest;
using nfacount::serve::RetryPolicy;
using nfacount::serve::SampleResult;
using nfacount::serve::ServeClient;

int Usage() {
  std::fprintf(
      stderr,
      "usage: nfa_client <command> --port <p> [--retries <n>] [args]\n"
      "  ping\n"
      "  register    <name> <file.nfa|-> <horizon> [eps] [delta] [seed]\n"
      "  count       <name> <length>\n"
      "  count-state <name> <q> <length>\n"
      "  sample      <name> <length> <count>\n"
      "  extend      <name> <level>\n"
      "  evict       <name>\n"
      "  unregister  <name>\n"
      "  stats       [--pretty]\n"
      "  shutdown\n"
      "  bench       <name> <length> [--requests <n>] [--concurrency <c>]\n"
      "              [--pipeline <d>]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailConnect(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 3;
}

/// Finds `"key":` in json[from, to) and parses the number after it; `fallback`
/// when absent. A string scan, not a parser — fine for the daemon's stats
/// document, whose keys never appear inside string values.
long long ScanInt(const std::string& json, size_t from, size_t to,
                  const std::string& key, long long fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos || at >= to) return fallback;
  return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

/// Renders the stats JSON as a per-operation table: requests, errors,
/// service-latency p50/p90/p99, and queue-wait p50 (how long decoded
/// requests sat waiting for a worker — 0 in the legacy runtime).
void PrintPrettyStats(const std::string& json) {
  const long long requests = ScanInt(json, 0, json.size(), "requests", 0);
  std::printf("requests %lld  qps %lld  active_connections %lld\n", requests,
              ScanInt(json, 0, json.size(), "qps", 0),
              ScanInt(json, 0, json.size(), "active_connections", 0));
  std::printf("queue_depth %lld  bytes_in %lld  bytes_out %lld\n",
              ScanInt(json, 0, json.size(), "queue_depth", 0),
              ScanInt(json, 0, json.size(), "bytes_in", 0),
              ScanInt(json, 0, json.size(), "bytes_out", 0));
  std::printf("%-12s %9s %7s %8s %8s %8s %10s\n", "op", "requests", "errors",
              "p50_us", "p90_us", "p99_us", "qwait_p50");
  size_t scan = 0;
  while (true) {
    const size_t at = json.find("\"op_", scan);
    if (at == std::string::npos) break;
    const size_t name_end = json.find('"', at + 1);
    if (name_end == std::string::npos) break;
    const std::string name = json.substr(at + 4, name_end - (at + 4));
    // The op block nests one level (queue_wait); walk braces to its end.
    size_t open = json.find('{', name_end);
    if (open == std::string::npos) break;
    int depth = 0;
    size_t end = open;
    for (; end < json.size(); ++end) {
      if (json[end] == '{') ++depth;
      if (json[end] == '}' && --depth == 0) break;
    }
    const size_t wait = json.find("\"queue_wait\":", open);
    const size_t svc_end = (wait != std::string::npos && wait < end) ? wait : end;
    std::printf("%-12s %9lld %7lld %8lld %8lld %8lld %10lld\n", name.c_str(),
                ScanInt(json, open, svc_end, "requests", 0),
                ScanInt(json, open, svc_end, "errors", 0),
                ScanInt(json, open, svc_end, "p50_us", 0),
                ScanInt(json, open, svc_end, "p90_us", 0),
                ScanInt(json, open, svc_end, "p99_us", 0),
                wait != std::string::npos && wait < end
                    ? ScanInt(json, wait, end, "p50_us", 0)
                    : 0);
    scan = end;
  }
}

/// One bench connection's closed loop: keep `pipeline` count requests on the
/// wire, read replies in order, record per-request latency. Replies are
/// cross-checked for bit-identity (same session + length must answer the
/// same estimate no matter which worker serves it).
void BenchWorker(uint16_t port, const RetryPolicy& retry,
                 const std::string& name, int length, long long requests,
                 int pipeline, nfacount::LatencyHistogram* latency,
                 std::atomic<long long>* errors,
                 std::atomic<bool>* mismatch, std::atomic<double>* expect) {
  Result<ServeClient> connected = ServeClient::ConnectWithRetry(port, retry);
  if (!connected.ok()) {
    errors->fetch_add(requests, std::memory_order_relaxed);
    return;
  }
  ServeClient client = std::move(connected).value();
  using Clock = std::chrono::steady_clock;
  std::deque<Clock::time_point> sent;
  long long to_send = requests;
  long long to_read = requests;
  while (to_read > 0) {
    while (to_send > 0 &&
           sent.size() < static_cast<size_t>(std::max(1, pipeline))) {
      if (!client.SendCount(name, length).ok()) {
        errors->fetch_add(to_read, std::memory_order_relaxed);
        return;
      }
      sent.push_back(Clock::now());
      --to_send;
    }
    Result<double> estimate = client.ReadCountReply();
    const Clock::time_point t0 = sent.front();
    sent.pop_front();
    latency->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
            .count());
    --to_read;
    if (!estimate.ok()) {
      errors->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // First OK reply anywhere publishes the expected estimate; every later
    // reply must match it exactly.
    double want = expect->load(std::memory_order_relaxed);
    if (want != want) {  // still NaN: try to claim it
      double nan = want;
      if (!expect->compare_exchange_strong(nan, estimate.value(),
                                           std::memory_order_relaxed)) {
        want = expect->load(std::memory_order_relaxed);
      } else {
        want = estimate.value();
      }
    }
    if (want == want && estimate.value() != want) {
      mismatch->store(true, std::memory_order_relaxed);
    }
  }
}

/// Reads an automaton text from a file path, or stdin for "-".
Result<std::string> ReadNfaText(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open automaton file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  // Pull the flags out; everything else stays positional.
  uint16_t port = 0;
  RetryPolicy retry;
  long long bench_requests = 1000;
  int bench_concurrency = 1;
  int bench_pipeline = 1;
  bool pretty = false;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      if (i + 1 >= argc) return Usage();
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      if (i + 1 >= argc) return Usage();
      retry.max_attempts = std::atoi(argv[++i]);
      if (retry.max_attempts < 1) return Usage();
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      if (i + 1 >= argc) return Usage();
      bench_requests = std::atoll(argv[++i]);
      if (bench_requests < 1) return Usage();
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      if (i + 1 >= argc) return Usage();
      bench_concurrency = std::atoi(argv[++i]);
      if (bench_concurrency < 1) return Usage();
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      if (i + 1 >= argc) return Usage();
      bench_pipeline = std::atoi(argv[++i]);
      if (bench_pipeline < 1) return Usage();
    } else if (std::strcmp(argv[i], "--pretty") == 0) {
      pretty = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (port == 0) return Usage();

  if (command == "bench") {
    // Load generator: every connection is opened by its own thread, so the
    // shared pre-connected client below is skipped entirely.
    if (args.size() != 2) return Usage();
    const std::string name = args[0];
    const int length = std::atoi(args[1].c_str());
    nfacount::LatencyHistogram latency;
    std::atomic<long long> errors{0};
    std::atomic<bool> mismatch{false};
    std::atomic<double> expect{std::numeric_limits<double>::quiet_NaN()};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(bench_concurrency));
    for (int c = 0; c < bench_concurrency; ++c) {
      // Split the request budget evenly; the first connections absorb the
      // remainder.
      const long long share = bench_requests / bench_concurrency +
                              (c < bench_requests % bench_concurrency ? 1 : 0);
      if (share == 0) continue;
      threads.emplace_back(BenchWorker, port, retry, name, length, share,
                           bench_pipeline, &latency, &errors, &mismatch,
                           &expect);
    }
    for (std::thread& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const long long failed = errors.load();
    std::printf("bench: %lld requests, %d connections, pipeline %d\n",
                bench_requests, bench_concurrency, bench_pipeline);
    std::printf("qps %.1f  ok %lld  errors %lld\n",
                secs > 0 ? static_cast<double>(bench_requests) / secs : 0.0,
                bench_requests - failed, failed);
    std::printf("latency_us p50 %lld p90 %lld p99 %lld\n",
                static_cast<long long>(latency.PercentileMicros(0.50)),
                static_cast<long long>(latency.PercentileMicros(0.90)),
                static_cast<long long>(latency.PercentileMicros(0.99)));
    if (mismatch.load()) {
      std::fprintf(stderr, "error: replies disagreed across connections\n");
      return 1;
    }
    return failed > 0 ? 1 : 0;
  }

  Result<ServeClient> connected = ServeClient::ConnectWithRetry(port, retry);
  if (!connected.ok()) return FailConnect(connected.status());
  ServeClient client = std::move(connected).value();

  if (command == "ping") {
    Status st = client.Ping();
    if (!st.ok()) return Fail(st);
    std::printf("ok\n");
    return 0;
  }
  if (command == "register") {
    if (args.size() < 3) return Usage();
    RegisterRequest req;
    req.name = args[0];
    Result<std::string> text = ReadNfaText(args[1]);
    if (!text.ok()) return Fail(text.status());
    req.nfa_text = std::move(text).value();
    req.horizon = std::atoi(args[2].c_str());
    if (args.size() > 3) req.eps = std::atof(args[3].c_str());
    if (args.size() > 4) req.delta = std::atof(args[4].c_str());
    if (args.size() > 5) {
      req.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    }
    Status st = client.Register(req);
    if (!st.ok()) return Fail(st);
    std::printf("registered %s\n", req.name.c_str());
    return 0;
  }
  if (command == "count") {
    if (args.size() != 2) return Usage();
    Result<double> estimate =
        client.CountAtLength(args[0], std::atoi(args[1].c_str()));
    if (!estimate.ok()) return Fail(estimate.status());
    std::printf("%.6g\n", estimate.value());
    return 0;
  }
  if (command == "count-state") {
    if (args.size() != 3) return Usage();
    Result<double> estimate =
        client.CountFor(args[0], std::atoi(args[1].c_str()),
                        std::atoi(args[2].c_str()));
    if (!estimate.ok()) return Fail(estimate.status());
    std::printf("%.6g\n", estimate.value());
    return 0;
  }
  if (command == "sample") {
    if (args.size() != 3) return Usage();
    Result<SampleResult> sampled =
        client.SampleWords(args[0], std::atoi(args[1].c_str()),
                           std::atoll(args[2].c_str()));
    if (!sampled.ok()) return Fail(sampled.status());
    for (const Word& word : sampled.value().words) {
      std::printf("%s\n", nfacount::WordToString(word).c_str());
    }
    return 0;
  }
  if (command == "extend") {
    if (args.size() != 2) return Usage();
    Result<int> level = client.ExtendTo(args[0], std::atoi(args[1].c_str()));
    if (!level.ok()) return Fail(level.status());
    std::printf("computed %d\n", level.value());
    return 0;
  }
  if (command == "evict") {
    if (args.size() != 1) return Usage();
    Result<bool> was_resident = client.Evict(args[0]);
    if (!was_resident.ok()) return Fail(was_resident.status());
    std::printf("%s\n", was_resident.value() ? "demoted" : "already-demoted");
    return 0;
  }
  if (command == "unregister") {
    if (args.size() != 1) return Usage();
    Status st = client.Unregister(args[0]);
    if (!st.ok()) return Fail(st);
    std::printf("unregistered %s\n", args[0].c_str());
    return 0;
  }
  if (command == "stats") {
    Result<std::string> json = client.Stats();
    if (!json.ok()) return Fail(json.status());
    if (pretty) {
      PrintPrettyStats(json.value());
    } else {
      std::printf("%s\n", json.value().c_str());
    }
    return 0;
  }
  if (command == "shutdown") {
    Status st = client.Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("ok\n");
    return 0;
  }
  return Usage();
}
