// nfa_cli — command-line front end for the library.
//
// Usage:
//   nfa_cli count   <file.nfa|-(stdin)> <n> [eps] [delta] [seed]
//   nfa_cli lengths <file.nfa|-> <n> [eps] [delta] [seed]
//   nfa_cli sample  <file.nfa|-> <n> <count> [seed]
//   nfa_cli exact   <file.nfa|-> <n>
//   nfa_cli regex   '<pattern>' <alphabet_size>      # compile to nfa text
//   nfa_cli dot     <file.nfa|->                     # Graphviz export
//
// File format: see src/automata/io.hpp.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nfa_cli count   <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli lengths <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli sample  <file|-> <n> <count> [seed]\n"
               "  nfa_cli exact   <file|-> <n>\n"
               "  nfa_cli regex   '<pattern>' <alphabet_size>\n"
               "  nfa_cli dot     <file|->\n");
  return 2;
}

Result<Nfa> LoadFromArg(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return ParseNfaText(buffer.str());
  }
  return LoadNfaFile(arg);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "regex") {
    if (argc < 4) return Usage();
    Result<Nfa> nfa = CompileRegex(argv[2], std::atoi(argv[3]));
    if (!nfa.ok()) return Fail(nfa.status());
    std::fputs(NfaToText(*nfa).c_str(), stdout);
    return 0;
  }

  Result<Nfa> nfa = LoadFromArg(argv[2]);
  if (!nfa.ok()) return Fail(nfa.status());

  if (command == "dot") {
    std::fputs(NfaToDot(*nfa).c_str(), stdout);
    return 0;
  }

  if (argc < 4) return Usage();
  const int n = std::atoi(argv[3]);

  if (command == "count" || command == "lengths") {
    CountOptions options;
    if (argc > 4) options.eps = std::atof(argv[4]);
    if (argc > 5) options.delta = std::atof(argv[5]);
    if (argc > 6) options.seed = std::strtoull(argv[6], nullptr, 10);
    if (command == "count") {
      Result<CountEstimate> r = ApproxCount(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      std::printf("%.6g\n", r->estimate);
      std::fprintf(stderr,
                   "# eps=%.3g delta=%.3g seed=%llu wall_ms=%.1f "
                   "appunion_calls=%lld\n",
                   options.eps, options.delta,
                   static_cast<unsigned long long>(options.seed),
                   r->diagnostics.wall_seconds * 1e3,
                   static_cast<long long>(r->diagnostics.appunion_calls));
    } else {
      Result<std::vector<double>> r = ApproxCountAllLengths(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      for (int len = 0; len <= n; ++len) {
        std::printf("%d %.6g\n", len, (*r)[len]);
      }
    }
    return 0;
  }

  if (command == "sample") {
    if (argc < 5) return Usage();
    const int64_t count = std::atoll(argv[4]);
    SamplerOptions options;
    if (argc > 5) options.seed = std::strtoull(argv[5], nullptr, 10);
    Result<WordSampler> sampler = WordSampler::Build(*nfa, n, options);
    if (!sampler.ok()) return Fail(sampler.status());
    for (int64_t i = 0; i < count; ++i) {
      Result<Word> w = sampler.value().Sample();
      if (!w.ok()) return Fail(w.status());
      std::printf("%s\n", WordToString(w.value()).c_str());
    }
    return 0;
  }

  if (command == "exact") {
    Result<BigUint> r = ExactCountViaDfa(*nfa, n);
    if (!r.ok()) return Fail(r.status());
    std::printf("%s\n", r->ToString().c_str());
    return 0;
  }

  return Usage();
}
