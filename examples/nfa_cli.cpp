// nfa_cli — command-line front end for the library.
//
// Usage:
//   nfa_cli count   <file.nfa|-(stdin)> <n> [eps] [delta] [seed]
//   nfa_cli lengths <file.nfa|-> <n> [eps] [delta] [seed]
//   nfa_cli sample  <file.nfa|-> <n> <count> [seed]
//   nfa_cli exact   <file.nfa|-> <n>
//   nfa_cli regex   '<pattern>' <alphabet_size>      # compile to nfa text
//   nfa_cli dot     <file.nfa|->                     # Graphviz export
//
// Global flags (anywhere on the line):
//   --threads <k>   level-sweep worker threads for count/lengths/sample
//                   (1 = sequential default, 0 = all hardware threads;
//                   results are bit-identical for every value)
//
// File format: see src/automata/io.hpp.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nfa_cli count   <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli lengths <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli sample  <file|-> <n> <count> [seed]\n"
               "  nfa_cli exact   <file|-> <n>\n"
               "  nfa_cli regex   '<pattern>' <alphabet_size>\n"
               "  nfa_cli dot     <file|->\n"
               "flags: --threads <k>  (0 = all hardware threads; results are\n"
               "                       bit-identical for every thread count)\n"
               "       --             end of flags (later args are positional)\n");
  return 2;
}

/// Strips `--threads <k>` (anywhere before a `--` separator) out of the
/// argument list; returns the positional arguments. `*num_threads` is left
/// at its default when the flag is absent, and set to -1 on a malformed
/// flag. Everything after a literal `--` is taken positionally — the escape
/// hatch for patterns or filenames that look like the flag
/// (`nfa_cli regex -- '--threads' 2`).
std::vector<std::string> ExtractFlags(int argc, char** argv,
                                      int* num_threads) {
  std::vector<std::string> positional;
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_ended && arg == "--") {
      flags_ended = true;
      continue;
    }
    if (!flags_ended && arg == "--threads") {
      if (i + 1 >= argc) {
        *num_threads = -1;
        return positional;
      }
      const char* value = argv[++i];
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 0 || parsed > 1 << 20) {
        *num_threads = -1;  // non-numeric / negative / absurd: malformed
        return positional;
      }
      *num_threads = static_cast<int>(parsed);
      continue;
    }
    positional.push_back(arg);
  }
  return positional;
}

Result<Nfa> LoadFromArg(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return ParseNfaText(buffer.str());
  }
  return LoadNfaFile(arg);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int num_threads = 1;
  const std::vector<std::string> args = ExtractFlags(argc, argv, &num_threads);
  if (num_threads < 0 || args.size() < 2) return Usage();
  const std::string& command = args[0];

  if (command == "regex") {
    if (args.size() < 3) return Usage();
    Result<Nfa> nfa = CompileRegex(args[1], std::atoi(args[2].c_str()));
    if (!nfa.ok()) return Fail(nfa.status());
    std::fputs(NfaToText(*nfa).c_str(), stdout);
    return 0;
  }

  Result<Nfa> nfa = LoadFromArg(args[1]);
  if (!nfa.ok()) return Fail(nfa.status());

  if (command == "dot") {
    std::fputs(NfaToDot(*nfa).c_str(), stdout);
    return 0;
  }

  if (args.size() < 3) return Usage();
  const int n = std::atoi(args[2].c_str());

  if (command == "count" || command == "lengths") {
    CountOptions options;
    options.num_threads = num_threads;
    if (args.size() > 3) options.eps = std::atof(args[3].c_str());
    if (args.size() > 4) options.delta = std::atof(args[4].c_str());
    if (args.size() > 5) options.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    if (command == "count") {
      Result<CountEstimate> r = ApproxCount(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      std::printf("%.6g\n", r->estimate);
      std::fprintf(stderr,
                   "# eps=%.3g delta=%.3g seed=%llu threads=%d wall_ms=%.1f "
                   "appunion_calls=%lld\n",
                   options.eps, options.delta,
                   static_cast<unsigned long long>(options.seed),
                   options.num_threads, r->diagnostics.wall_seconds * 1e3,
                   static_cast<long long>(r->diagnostics.appunion_calls));
    } else {
      Result<std::vector<double>> r = ApproxCountAllLengths(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      for (int len = 0; len <= n; ++len) {
        std::printf("%d %.6g\n", len, (*r)[len]);
      }
    }
    return 0;
  }

  if (command == "sample") {
    if (args.size() < 4) return Usage();
    const int64_t count = std::atoll(args[3].c_str());
    SamplerOptions options;
    options.num_threads = num_threads;
    if (args.size() > 4) options.seed = std::strtoull(args[4].c_str(), nullptr, 10);
    Result<WordSampler> sampler = WordSampler::Build(*nfa, n, options);
    if (!sampler.ok()) return Fail(sampler.status());
    for (int64_t i = 0; i < count; ++i) {
      Result<Word> w = sampler.value().Sample();
      if (!w.ok()) return Fail(w.status());
      std::printf("%s\n", WordToString(w.value()).c_str());
    }
    return 0;
  }

  if (command == "exact") {
    Result<BigUint> r = ExactCountViaDfa(*nfa, n);
    if (!r.ok()) return Fail(r.status());
    std::printf("%s\n", r->ToString().c_str());
    return 0;
  }

  return Usage();
}
