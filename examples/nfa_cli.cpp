// nfa_cli — command-line front end for the library.
//
// Usage:
//   nfa_cli count   <file.nfa|-(stdin)> <n> [eps] [delta] [seed]
//   nfa_cli lengths <file.nfa|-> <n> [eps] [delta] [seed]
//   nfa_cli sample  <file.nfa|-> <n> <count> [seed]
//   nfa_cli exact   <file.nfa|-> <n>
//   nfa_cli regex   '<pattern>' <alphabet_size>      # compile to nfa text
//   nfa_cli dot     <file.nfa|->                     # Graphviz export
//
// Global flags (anywhere on the line):
//   --threads <k>      level-sweep worker threads for count/lengths/sample
//                      (1 = sequential default, 0 = all hardware threads;
//                      results are bit-identical for every value)
//   --batch-width <b>  candidate walks advanced in lockstep per plane sweep
//                      (0 = engine default; bit-identical for every value)
//   --no-simd          force the scalar bitset kernels (process-wide) and
//                      pin the sampling plane to them; identical results
//
// File format: see src/automata/io.hpp.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "util/simd.hpp"

using namespace nfacount;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nfa_cli count   <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli lengths <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli sample  <file|-> <n> <count> [seed]\n"
               "  nfa_cli exact   <file|-> <n>\n"
               "  nfa_cli regex   '<pattern>' <alphabet_size>\n"
               "  nfa_cli dot     <file|->\n"
               "flags: --threads <k>      (0 = all hardware threads)\n"
               "       --batch-width <b>  lockstep sampling walks (0 = default)\n"
               "       --no-simd          force scalar bitset kernels\n"
               "       --                 end of flags (later args positional)\n"
               "results are bit-identical for every --threads / --batch-width\n"
               "value and with or without --no-simd\n");
  return 2;
}

/// Engine knobs extracted from the flag section of the command line.
struct CliFlags {
  int num_threads = 1;
  int batch_width = 0;  ///< 0 = engine default
  bool no_simd = false;
  bool malformed = false;
};

/// Strips the global flags (anywhere before a `--` separator) out of the
/// argument list; returns the positional arguments. Flag fields keep their
/// defaults when absent; `malformed` is set on a bad value. Everything after
/// a literal `--` is taken positionally — the escape hatch for patterns or
/// filenames that look like a flag (`nfa_cli regex -- '--threads' 2`).
std::vector<std::string> ExtractFlags(int argc, char** argv, CliFlags* flags) {
  std::vector<std::string> positional;
  bool flags_ended = false;
  auto parse_int = [&](int* i, int* out, long max_value) {
    if (*i + 1 >= argc) {
      flags->malformed = true;
      return;
    }
    const char* value = argv[++*i];
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0 || parsed > max_value) {
      flags->malformed = true;  // non-numeric / negative / absurd
      return;
    }
    *out = static_cast<int>(parsed);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_ended && arg == "--") {
      flags_ended = true;
      continue;
    }
    if (!flags_ended && arg == "--threads") {
      parse_int(&i, &flags->num_threads, 1 << 20);
      if (flags->malformed) return positional;
      continue;
    }
    if (!flags_ended && arg == "--batch-width") {
      parse_int(&i, &flags->batch_width, 1 << 20);
      if (flags->malformed) return positional;
      continue;
    }
    if (!flags_ended && arg == "--no-simd") {
      flags->no_simd = true;
      continue;
    }
    positional.push_back(arg);
  }
  return positional;
}

Result<Nfa> LoadFromArg(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return ParseNfaText(buffer.str());
  }
  return LoadNfaFile(arg);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  const std::vector<std::string> args = ExtractFlags(argc, argv, &flags);
  if (flags.malformed || args.size() < 2) return Usage();
  if (flags.no_simd) simd::SetForceScalar(true);
  const std::string& command = args[0];

  if (command == "regex") {
    if (args.size() < 3) return Usage();
    Result<Nfa> nfa = CompileRegex(args[1], std::atoi(args[2].c_str()));
    if (!nfa.ok()) return Fail(nfa.status());
    std::fputs(NfaToText(*nfa).c_str(), stdout);
    return 0;
  }

  Result<Nfa> nfa = LoadFromArg(args[1]);
  if (!nfa.ok()) return Fail(nfa.status());

  if (command == "dot") {
    std::fputs(NfaToDot(*nfa).c_str(), stdout);
    return 0;
  }

  if (args.size() < 3) return Usage();
  const int n = std::atoi(args[2].c_str());

  if (command == "count" || command == "lengths") {
    CountOptions options;
    options.num_threads = flags.num_threads;
    options.batch_width = flags.batch_width;
    options.simd_kernels = !flags.no_simd;
    if (args.size() > 3) options.eps = std::atof(args[3].c_str());
    if (args.size() > 4) options.delta = std::atof(args[4].c_str());
    if (args.size() > 5) options.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    if (command == "count") {
      Result<CountEstimate> r = ApproxCount(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      std::printf("%.6g\n", r->estimate);
      std::fprintf(stderr,
                   "# eps=%.3g delta=%.3g seed=%llu threads=%d wall_ms=%.1f "
                   "appunion_calls=%lld\n",
                   options.eps, options.delta,
                   static_cast<unsigned long long>(options.seed),
                   options.num_threads, r->diagnostics.wall_seconds * 1e3,
                   static_cast<long long>(r->diagnostics.appunion_calls));
      std::fprintf(stderr,
                   "# batch_width=%d simd=%s memo_hits=%lld memo_misses=%lld "
                   "arena_bytes=%lld arena_allocs=%lld\n",
                   r->params.ResolvedBatchWidth(),
                   options.simd_kernels ? "on" : "off",
                   static_cast<long long>(r->diagnostics.memo_hits),
                   static_cast<long long>(r->diagnostics.memo_misses),
                   static_cast<long long>(r->diagnostics.arena_bytes_reserved),
                   static_cast<long long>(r->diagnostics.arena_alloc_events));
    } else {
      Result<std::vector<double>> r = ApproxCountAllLengths(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      for (int len = 0; len <= n; ++len) {
        std::printf("%d %.6g\n", len, (*r)[len]);
      }
    }
    return 0;
  }

  if (command == "sample") {
    if (args.size() < 4) return Usage();
    const int64_t count = std::atoll(args[3].c_str());
    SamplerOptions options;
    options.num_threads = flags.num_threads;
    options.batch_width = flags.batch_width;
    options.simd_kernels = !flags.no_simd;
    if (args.size() > 4) options.seed = std::strtoull(args[4].c_str(), nullptr, 10);
    Result<WordSampler> sampler = WordSampler::Build(*nfa, n, options);
    if (!sampler.ok()) return Fail(sampler.status());
    for (int64_t i = 0; i < count; ++i) {
      Result<Word> w = sampler.value().Sample();
      if (!w.ok()) return Fail(w.status());
      std::printf("%s\n", WordToString(w.value()).c_str());
    }
    return 0;
  }

  if (command == "exact") {
    Result<BigUint> r = ExactCountViaDfa(*nfa, n);
    if (!r.ok()) return Fail(r.status());
    std::printf("%s\n", r->ToString().c_str());
    return 0;
  }

  return Usage();
}
