// nfa_cli — command-line front end for the library.
//
// Usage:
//   nfa_cli count   <file.nfa|-(stdin)> <n> [eps] [delta] [seed]
//   nfa_cli count   --load-state <ckpt> [--extend-to <n'>]
//   nfa_cli lengths <file.nfa|-> <n> [eps] [delta] [seed]
//   nfa_cli sample  <file.nfa|-> <n> <count> [seed]
//   nfa_cli exact   <file.nfa|-> <n>
//   nfa_cli regex   '<pattern>' <alphabet_size>      # compile to nfa text
//   nfa_cli dot     <file.nfa|->                     # Graphviz export
//
// Global flags (anywhere on the line):
//   --threads <k>      level-sweep worker threads for count/lengths/sample
//                      (1 = sequential default, 0 = all hardware threads;
//                      results are bit-identical for every value)
//   --batch-width <b>  candidate walks advanced in lockstep per plane sweep
//                      (0 = engine default; bit-identical for every value)
//   --no-simd          force the scalar bitset kernels (process-wide) and
//                      pin the sampling plane to them; identical results
//   --descent-cache <e> cross-batch descent-cache entry budget for
//                      count/lengths/sample (0 disables; default = engine
//                      default; bit-identical results at every value —
//                      NFACOUNT_DESCENT_CACHE=<e> overrides process-wide)
//   --no-symbol-classes disable symbol-class alphabet compression (run the
//                      per-symbol hot loops over the raw alphabet). Same
//                      (ε, δ) envelope but a different RNG substream layout,
//                      so per-seed estimates differ between the two settings;
//                      NFACOUNT_SYMBOL_CLASSES=0 overrides process-wide.
//                      With --load-state, flips the checkpointed setting.
//   --json <path>      additionally write a machine-readable report of the
//                      run (estimate, parameters, diagnostics, timing)
//
// Session flags (count command; see docs/ARCHITECTURE.md "Engine lifecycle
// & incremental extension"):
//   --horizon <H>      run as an EngineSession with parameters derived at
//                      horizon H >= n (extendable later up to H)
//   --save-state <p>   save the session as a binary checkpoint after the
//                      query (implies a session; horizon defaults to n)
//   --load-state <p>   resume a checkpoint instead of reading an NFA file;
//                      eps/delta/seed come from the checkpoint, while
//                      --threads/--batch-width/--no-simd apply as runtime
//                      knobs (never changing any result)
//   --extend-to <n'>   with --load-state: extend the resumed sweep to n'
//                      (n' <= saved horizon) and answer at that length
//
// A session resumed from a checkpoint and extended produces bit-identical
// output to an uninterrupted run at the same seed and horizon.
//
// File format: see src/automata/io.hpp; checkpoint format: see
// docs/FILE_FORMATS.md "Session checkpoints (.ckpt)".

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "util/json.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

using namespace nfacount;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  nfa_cli count   <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli count   --load-state <ckpt> [--extend-to <n'>]\n"
               "  nfa_cli lengths <file|-> <n> [eps] [delta] [seed]\n"
               "  nfa_cli sample  <file|-> <n> <count> [seed]\n"
               "  nfa_cli exact   <file|-> <n>\n"
               "  nfa_cli regex   '<pattern>' <alphabet_size>\n"
               "  nfa_cli dot     <file|->\n"
               "flags: --threads <k>      (0 = all hardware threads)\n"
               "       --batch-width <b>  lockstep sampling walks (0 = default)\n"
               "       --no-simd          force scalar bitset kernels\n"
               "       --descent-cache <e> descent-cache entries (0 = off)\n"
               "       --no-symbol-classes disable alphabet compression\n"
               "       --json <path>      machine-readable run report\n"
               "       --horizon <H>      run count as a session sized for H\n"
               "       --save-state <p>   write a session checkpoint\n"
               "       --load-state <p>   resume a session checkpoint\n"
               "       --extend-to <n'>   extend a resumed session to n'\n"
               "       --                 end of flags (later args positional)\n"
               "results are bit-identical for every --threads / --batch-width\n"
               "value, with or without --no-simd, and across checkpoint\n"
               "save/resume boundaries\n");
  return 2;
}

/// Engine knobs extracted from the flag section of the command line.
struct CliFlags {
  int num_threads = 1;
  int batch_width = 0;  ///< 0 = engine default
  bool no_simd = false;
  int descent_cache = -1;  ///< -1 = engine default, 0 = disabled
  bool no_symbol_classes = false;  ///< disable alphabet compression
  int horizon = -1;     ///< -1 = not a session (unless other session flags)
  int extend_to = -1;   ///< -1 = answer at the natural length
  std::string json_path;
  std::string save_state;
  std::string load_state;
  bool malformed = false;
};

/// Strips the global flags (anywhere before a `--` separator) out of the
/// argument list; returns the positional arguments. Flag fields keep their
/// defaults when absent; `malformed` is set on a bad value. Everything after
/// a literal `--` is taken positionally — the escape hatch for patterns or
/// filenames that look like a flag (`nfa_cli regex -- '--threads' 2`).
std::vector<std::string> ExtractFlags(int argc, char** argv, CliFlags* flags) {
  std::vector<std::string> positional;
  bool flags_ended = false;
  auto parse_int = [&](int* i, int* out, long max_value) {
    if (*i + 1 >= argc) {
      flags->malformed = true;
      return;
    }
    const char* value = argv[++*i];
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0 || parsed > max_value) {
      flags->malformed = true;  // non-numeric / negative / absurd
      return;
    }
    *out = static_cast<int>(parsed);
  };
  auto parse_str = [&](int* i, std::string* out) {
    if (*i + 1 >= argc) {
      flags->malformed = true;
      return;
    }
    *out = argv[++*i];
    if (out->empty()) flags->malformed = true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_ended && arg == "--") {
      flags_ended = true;
      continue;
    }
    if (!flags_ended && arg == "--threads") {
      parse_int(&i, &flags->num_threads, 1 << 20);
    } else if (!flags_ended && arg == "--batch-width") {
      parse_int(&i, &flags->batch_width, 1 << 20);
    } else if (!flags_ended && arg == "--no-simd") {
      flags->no_simd = true;
    } else if (!flags_ended && arg == "--descent-cache") {
      parse_int(&i, &flags->descent_cache, 1 << 30);
    } else if (!flags_ended && arg == "--no-symbol-classes") {
      flags->no_symbol_classes = true;
    } else if (!flags_ended && arg == "--horizon") {
      parse_int(&i, &flags->horizon, 1 << 20);
    } else if (!flags_ended && arg == "--extend-to") {
      parse_int(&i, &flags->extend_to, 1 << 20);
    } else if (!flags_ended && arg == "--json") {
      parse_str(&i, &flags->json_path);
    } else if (!flags_ended && arg == "--save-state") {
      parse_str(&i, &flags->save_state);
    } else if (!flags_ended && arg == "--load-state") {
      parse_str(&i, &flags->load_state);
    } else {
      positional.push_back(arg);
      continue;
    }
    if (flags->malformed) return positional;
  }
  return positional;
}

Result<Nfa> LoadFromArg(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return ParseNfaText(buffer.str());
  }
  return LoadNfaFile(arg);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Renders the run counters for --json reports.
JsonObject DiagnosticsJson(const FprasDiagnostics& d) {
  JsonObject o;
  o.Set("appunion_calls", d.appunion_calls)
      .Set("appunion_trials", d.appunion_trials)
      .Set("membership_checks", d.membership_checks)
      .Set("starvations", d.starvations)
      .Set("memo_hits", d.memo_hits)
      .Set("memo_misses", d.memo_misses)
      .Set("descent_hits", d.descent_hits)
      .Set("descent_misses", d.descent_misses)
      .Set("descent_entries", d.descent_entries)
      .Set("descent_bytes", d.descent_bytes)
      .Set("sample_calls", d.sample_calls)
      .Set("sample_success", d.sample_success)
      .Set("fail_phi_gt_1", d.fail_phi_gt_1)
      .Set("fail_bernoulli", d.fail_bernoulli)
      .Set("fail_dead_branch", d.fail_dead_branch)
      .Set("padded_words", d.padded_words)
      .Set("perturbed_counts", d.perturbed_counts)
      .Set("states_processed", d.states_processed)
      .Set("walk_batches", d.walk_batches)
      .Set("arena_bytes_reserved", d.arena_bytes_reserved)
      .Set("arena_alloc_events", d.arena_alloc_events)
      .Set("wall_seconds", d.wall_seconds);
  return o;
}

/// Writes a --json report; empty path is a no-op, failures are fatal so a
/// scripted pipeline never silently loses its output.
int WriteJsonReport(const std::string& path, const JsonObject& report) {
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write --json file %s\n", path.c_str());
    return 1;
  }
  const std::string body = report.Render() + "\n";
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    std::fprintf(stderr, "error: short write on --json file %s\n",
                 path.c_str());
    std::remove(path.c_str());
    return 1;
  }
  return 0;
}

/// The count command on the session path (--horizon / --save-state /
/// --load-state / --extend-to): create or resume an EngineSession, extend it
/// to the query length, answer, optionally persist.
int RunSessionCount(const CliFlags& flags,
                    const std::vector<std::string>& args) {
  WallTimer timer;
  Result<EngineSession> session = Status::Internal("unreachable");
  int query_len = -1;

  if (!flags.load_state.empty()) {
    // Resume: the checkpoint carries the automaton and all derivation
    // parameters; the CLI knobs apply as runtime-only overrides.
    SessionKnobs knobs;
    knobs.num_threads = flags.num_threads;
    knobs.batch_width = flags.batch_width;
    knobs.simd_kernels = !flags.no_simd;
    knobs.descent_cache_capacity = flags.descent_cache;
    // Tri-state: only an explicit --no-symbol-classes flips the saved
    // setting (envelope-preserving, not bit-preserving); otherwise the
    // checkpointed value stands.
    if (flags.no_symbol_classes) knobs.symbol_classes = 0;
    session = EngineSession::Load(flags.load_state, &knobs);
    if (!session.ok()) return Fail(session.status());
    query_len = flags.extend_to >= 0 ? flags.extend_to
                                     : session->computed_level();
  } else {
    // Fresh session: positional <file> <n> as in the plain count command,
    // with the horizon defaulting to n.
    if (args.size() < 3) return Usage();
    Result<Nfa> nfa = LoadFromArg(args[1]);
    if (!nfa.ok()) return Fail(nfa.status());
    const int n = std::atoi(args[2].c_str());
    CountOptions options;
    options.num_threads = flags.num_threads;
    options.batch_width = flags.batch_width;
    options.simd_kernels = !flags.no_simd;
    options.descent_cache_capacity = flags.descent_cache;
    options.symbol_classes = !flags.no_symbol_classes;
    if (args.size() > 3) options.eps = std::atof(args[3].c_str());
    if (args.size() > 4) options.delta = std::atof(args[4].c_str());
    if (args.size() > 5) {
      options.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    }
    const int horizon = flags.horizon >= 0 ? flags.horizon : n;
    if (horizon < n) {
      std::fprintf(stderr, "error: --horizon must be >= n\n");
      return 2;
    }
    session = EngineSession::Create(*nfa, horizon, options);
    if (!session.ok()) return Fail(session.status());
    query_len = flags.extend_to >= 0 ? flags.extend_to : n;
  }

  Result<double> estimate = session->CountAtLength(query_len);
  if (!estimate.ok()) return Fail(estimate.status());
  std::printf("%.6g\n", *estimate);

  if (!flags.save_state.empty()) {
    Status saved = session->Save(flags.save_state);
    if (!saved.ok()) return Fail(saved);
  }

  const FprasDiagnostics& diag = session->diagnostics();
  std::fprintf(stderr,
               "# session horizon=%d computed=%d length=%d seed=%llu "
               "threads=%d wall_ms=%.1f%s%s\n",
               session->horizon(), session->computed_level(), query_len,
               static_cast<unsigned long long>(session->seed()),
               flags.num_threads, timer.ElapsedSeconds() * 1e3,
               flags.save_state.empty() ? "" : " saved=",
               flags.save_state.c_str());

  JsonObject report;
  report.Set("command", "count")
      .Set("mode", flags.load_state.empty() ? "session" : "session-resume")
      .Set("estimate", *estimate)
      .Set("length", query_len)
      .Set("horizon", session->horizon())
      .Set("computed_level", session->computed_level())
      .Set("eps", session->params().eps)
      .Set("delta", session->params().delta)
      .Set("seed", session->seed())
      .Set("threads", flags.num_threads)
      .Set("batch_width", session->params().ResolvedBatchWidth())
      .Set("simd", !flags.no_simd)
      .Set("wall_seconds", timer.ElapsedSeconds())
      .SetRaw("diagnostics", DiagnosticsJson(diag).Render());
  return WriteJsonReport(flags.json_path, report);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  const std::vector<std::string> args = ExtractFlags(argc, argv, &flags);
  const bool session_mode = !flags.load_state.empty() ||
                            !flags.save_state.empty() || flags.horizon >= 0 ||
                            flags.extend_to >= 0;
  if (flags.malformed || args.empty()) return Usage();
  if (flags.no_simd) simd::SetForceScalar(true);
  const std::string& command = args[0];

  // Only `count --load-state` may omit the positional <file> argument (the
  // checkpoint carries the automaton); every other command needs it.
  if (command == "count" && session_mode) return RunSessionCount(flags, args);
  if (args.size() < 2) return Usage();

  if (command == "regex") {
    if (args.size() < 3) return Usage();
    Result<Nfa> nfa = CompileRegex(args[1], std::atoi(args[2].c_str()));
    if (!nfa.ok()) return Fail(nfa.status());
    std::fputs(NfaToText(*nfa).c_str(), stdout);
    return 0;
  }

  Result<Nfa> nfa = LoadFromArg(args[1]);
  if (!nfa.ok()) return Fail(nfa.status());

  if (command == "dot") {
    std::fputs(NfaToDot(*nfa).c_str(), stdout);
    return 0;
  }

  if (args.size() < 3) return Usage();
  const int n = std::atoi(args[2].c_str());

  if (command == "count" || command == "lengths") {
    CountOptions options;
    options.num_threads = flags.num_threads;
    options.batch_width = flags.batch_width;
    options.simd_kernels = !flags.no_simd;
    options.descent_cache_capacity = flags.descent_cache;
    options.symbol_classes = !flags.no_symbol_classes;
    if (args.size() > 3) options.eps = std::atof(args[3].c_str());
    if (args.size() > 4) options.delta = std::atof(args[4].c_str());
    if (args.size() > 5) options.seed = std::strtoull(args[5].c_str(), nullptr, 10);
    if (command == "count") {
      Result<CountEstimate> r = ApproxCount(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      std::printf("%.6g\n", r->estimate);
      std::fprintf(stderr,
                   "# eps=%.3g delta=%.3g seed=%llu threads=%d wall_ms=%.1f "
                   "appunion_calls=%lld\n",
                   options.eps, options.delta,
                   static_cast<unsigned long long>(options.seed),
                   options.num_threads, r->diagnostics.wall_seconds * 1e3,
                   static_cast<long long>(r->diagnostics.appunion_calls));
      std::fprintf(stderr,
                   "# batch_width=%d simd=%s memo_hits=%lld memo_misses=%lld "
                   "arena_bytes=%lld arena_allocs=%lld\n",
                   r->params.ResolvedBatchWidth(),
                   options.simd_kernels ? "on" : "off",
                   static_cast<long long>(r->diagnostics.memo_hits),
                   static_cast<long long>(r->diagnostics.memo_misses),
                   static_cast<long long>(r->diagnostics.arena_bytes_reserved),
                   static_cast<long long>(r->diagnostics.arena_alloc_events));
      JsonObject report;
      report.Set("command", "count")
          .Set("mode", "one-shot")
          .Set("estimate", r->estimate)
          .Set("length", n)
          .Set("eps", options.eps)
          .Set("delta", options.delta)
          .Set("seed", options.seed)
          .Set("threads", options.num_threads)
          .Set("batch_width", r->params.ResolvedBatchWidth())
          .Set("simd", options.simd_kernels)
          .Set("wall_seconds", r->diagnostics.wall_seconds)
          .SetRaw("diagnostics", DiagnosticsJson(r->diagnostics).Render());
      return WriteJsonReport(flags.json_path, report);
    } else {
      Result<std::vector<double>> r = ApproxCountAllLengths(*nfa, n, options);
      if (!r.ok()) return Fail(r.status());
      std::string slices = "[";
      for (int len = 0; len <= n; ++len) {
        std::printf("%d %.6g\n", len, (*r)[len]);
        if (len > 0) slices += ",";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", (*r)[len]);
        slices += buf;
      }
      slices += "]";
      JsonObject report;
      report.Set("command", "lengths")
          .Set("n", n)
          .Set("eps", options.eps)
          .Set("delta", options.delta)
          .Set("seed", options.seed)
          .SetRaw("estimates", std::move(slices));
      return WriteJsonReport(flags.json_path, report);
    }
  }

  if (command == "sample") {
    if (args.size() < 4) return Usage();
    const int64_t count = std::atoll(args[3].c_str());
    SamplerOptions options;
    options.num_threads = flags.num_threads;
    options.batch_width = flags.batch_width;
    options.simd_kernels = !flags.no_simd;
    options.descent_cache_capacity = flags.descent_cache;
    options.symbol_classes = !flags.no_symbol_classes;
    if (args.size() > 4) options.seed = std::strtoull(args[4].c_str(), nullptr, 10);
    Result<WordSampler> sampler = WordSampler::Build(*nfa, n, options);
    if (!sampler.ok()) return Fail(sampler.status());
    for (int64_t i = 0; i < count; ++i) {
      Result<Word> w = sampler.value().Sample();
      if (!w.ok()) return Fail(w.status());
      std::printf("%s\n", WordToString(w.value()).c_str());
    }
    return 0;
  }

  if (command == "exact") {
    Result<BigUint> r = ExactCountViaDfa(*nfa, n);
    if (!r.ok()) return Fail(r.status());
    std::printf("%s\n", r->ToString().c_str());
    return 0;
  }

  return Usage();
}
