// Example: probabilistic query evaluation over an uncertain graph database.
//
// A link-prediction style scenario: extracted facts "author -> paper" (R0)
// and "paper -> venue" (R1) each hold with probability 1/2 (tuple-independent
// semantics). The query asks: does SOME author chain to SOME venue? The
// pipeline is lineage DNF -> linear #NFA encoding -> FPRAS, compared against
// exact possible-world enumeration while that is still feasible.
//
//   $ ./pqe_demo

#include <cstdio>

#include "apps/pqe.hpp"
#include "util/rng.hpp"

using namespace nfacount;

int main() {
  // Layer A: authors 0-3; layer B: papers 4-8; layer C: venues 9-11.
  ProbGraphDb db(12, 2);
  Rng rng(2026);
  int authored = 0, published = 0;
  for (int author = 0; author < 4; ++author) {
    for (int paper = 4; paper < 9; ++paper) {
      if (rng.Bernoulli(0.4)) {
        (void)db.AddFact(0, author, paper);
        ++authored;
      }
    }
  }
  for (int paper = 4; paper < 9; ++paper) {
    for (int venue = 9; venue < 12; ++venue) {
      if (rng.Bernoulli(0.4)) {
        (void)db.AddFact(1, paper, venue);
        ++published;
      }
    }
  }
  PathQuery query{{0, 1}};

  std::printf("uncertain facts: %d authored + %d published = %d total\n",
              authored, published, db.num_facts());

  Result<Dnf> lineage = LineageDnf(db, query);
  if (!lineage.ok()) {
    std::fprintf(stderr, "lineage failed: %s\n",
                 lineage.status().ToString().c_str());
    return 1;
  }
  std::printf("query lineage: %d clauses over %d Boolean fact variables\n",
              lineage->num_clauses(), lineage->num_vars());

  CountOptions options;
  options.eps = 0.2;
  options.delta = 0.1;
  options.seed = 99;
  Result<PqeResult> approx = ApproxPqe(db, query, options);
  if (!approx.ok()) {
    std::fprintf(stderr, "ApproxPqe failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }
  std::printf("reduced #NFA instance: %d states, word length %d\n",
              approx->nfa_states, db.num_facts());
  std::printf("Pr[some author reaches some venue] ~ %.4f (FPRAS)\n",
              approx->probability);

  Result<double> exact = ExactPqe(db, query);
  if (exact.ok()) {
    std::printf("exact possible-world probability:  %.4f\n", exact.value());
    std::printf("relative error: %.3f (eps = %.2f)\n",
                exact.value() > 0
                    ? std::abs(approx->probability / exact.value() - 1.0)
                    : 0.0,
                options.eps);
  } else {
    std::printf("exact enumeration infeasible (%s) — FPRAS only\n",
                exact.status().ToString().c_str());
  }

  // --- Part 2: non-uniform confidences (dyadic probabilities) -------------
  // Kept small: the FPRAS word length is the total probability-bit count
  // (Σ b_i), and the calibrated sample budget grows ~n⁴.
  std::printf("\n--- with per-fact extraction confidences ---\n");
  ProbGraphDb weighted(7, 2);
  const DyadicProb kConfidences[] = {{3, 2}, {7, 3}, {1, 2}, {1, 1}};
  int fact_idx = 0;
  auto add = [&](int rel, int src, int dst) {
    (void)weighted.AddFactWithProb(rel, src, dst,
                                   kConfidences[fact_idx++ % 4]);
  };
  add(0, 0, 2);  // authors 0,1 -> papers 2,3,4 -> venues 5,6
  add(0, 0, 3);
  add(0, 1, 4);
  add(1, 2, 5);
  add(1, 3, 6);
  add(1, 4, 6);
  std::printf("6 facts with confidences in {3/4, 7/8, 1/2, 1}\n");
  CountOptions weighted_options = options;
  weighted_options.eps = 0.3;  // word length = bit count; keep budget modest
  Result<PqeResult> wapprox = ApproxPqeWeighted(weighted, query,
                                                weighted_options);
  if (!wapprox.ok()) {
    std::fprintf(stderr, "weighted PQE failed: %s\n",
                 wapprox.status().ToString().c_str());
    return 1;
  }
  std::printf("threshold-gadget NFA: %d states, reduced to %d by "
              "bisimulation, word length %d bits\n",
              wapprox->nfa_states, wapprox->reduced_states,
              wapprox->count.params.n);
  std::printf("Pr[query] ~ %.4f (FPRAS)\n", wapprox->probability);
  Result<double> wexact = ExactPqeWeighted(weighted, query);
  if (wexact.ok()) {
    std::printf("exact:      %.4f\n", wexact.value());
  }
  return 0;
}
