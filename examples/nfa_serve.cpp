// nfa_serve — the serve-mode counting daemon (docs/ARCHITECTURE.md "Serve
// mode"). Listens on 127.0.0.1 and answers wire-protocol requests
// (serve/protocol.hpp) against a registry of named EngineSessions.
//
// Usage:
//   nfa_serve [--port <p>] [--spill-dir <dir>] [--budget-bytes <b>]
//             [--threads <k>] [--batch-width <w>] [--no-simd]
//             [--read-timeout-ms <t>]
//
//   --port <p>            TCP port; 0 (default) picks an ephemeral port
//   --spill-dir <dir>     where demoted sessions checkpoint; required for
//                         eviction (absent = sessions stay resident)
//   --budget-bytes <b>    resident-table budget driving LRU demotion
//                         (-1 = unlimited, the default)
//   --threads/--batch-width/--no-simd
//                         runtime knobs applied to every session
//                         (bit-identical results at every setting)
//   --read-timeout-ms <t> per-connection receive timeout (slow-loris guard)
//
// Prints "listening on 127.0.0.1:<port>" once ready; stops on SIGINT /
// SIGTERM or a kShutdown request.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

nfacount::serve::ServeDaemon* g_daemon = nullptr;

void HandleSignal(int /*signum*/) {
  if (g_daemon != nullptr) g_daemon->RequestStop();
}

int Usage() {
  std::fprintf(stderr,
               "usage: nfa_serve [--port <p>] [--spill-dir <dir>]\n"
               "                 [--budget-bytes <b>] [--threads <k>]\n"
               "                 [--batch-width <w>] [--no-simd]\n"
               "                 [--read-timeout-ms <t>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using nfacount::serve::RegistryOptions;
  using nfacount::serve::ServeDaemon;
  using nfacount::serve::ServerOptions;
  using nfacount::serve::SessionRegistry;

  RegistryOptions registry_options;
  ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      // Strict parse: atoi would silently turn "70000" or "abc" into an
      // unintended bind port after the uint16_t truncation.
      const char* value = next("--port");
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || parsed < 0 ||
          parsed > 65535) {
        std::fprintf(stderr,
                     "error: --port must be an integer in 0..65535, got "
                     "'%s'\n",
                     value);
        return Usage();
      }
      server_options.port = static_cast<uint16_t>(parsed);
    } else if (arg == "--spill-dir") {
      registry_options.spill_dir = next("--spill-dir");
    } else if (arg == "--budget-bytes") {
      registry_options.memory_budget_bytes = std::atoll(next("--budget-bytes"));
    } else if (arg == "--threads") {
      registry_options.knobs.num_threads = std::atoi(next("--threads"));
    } else if (arg == "--batch-width") {
      registry_options.knobs.batch_width = std::atoi(next("--batch-width"));
    } else if (arg == "--no-simd") {
      registry_options.knobs.simd_kernels = false;
    } else if (arg == "--read-timeout-ms") {
      server_options.read_timeout_ms = std::atoi(next("--read-timeout-ms"));
    } else {
      return Usage();
    }
  }

  SessionRegistry registry(registry_options);
  ServeDaemon daemon(&registry, server_options);
  nfacount::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  daemon.WaitUntilStopRequested();
  g_daemon = nullptr;
  daemon.Stop();
  return 0;
}
