// nfa_serve — the serve-mode counting daemon (docs/ARCHITECTURE.md "Serve
// mode"). Listens on 127.0.0.1 and answers wire-protocol requests
// (serve/protocol.hpp) against a registry of named EngineSessions.
//
// Usage:
//   nfa_serve [--port <p>] [--spill-dir <dir>] [--budget-bytes <b>]
//             [--threads <k>] [--batch-width <w>] [--no-simd]
//             [--read-timeout-ms <t>] [--drain-timeout-ms <t>]
//             [--max-connections <n>] [--workers <k>]
//             [--max-inflight <n>] [--legacy-threads]
//
//   --port <p>            TCP port; 0 (default) picks an ephemeral port
//   --spill-dir <dir>     where demoted sessions checkpoint; required for
//                         eviction and durability (absent = sessions stay
//                         resident and nothing survives a restart)
//   --budget-bytes <b>    resident-table budget driving LRU demotion
//                         (-1 = unlimited, the default)
//   --threads/--batch-width/--no-simd
//                         runtime knobs applied to every session
//                         (bit-identical results at every setting)
//   --read-timeout-ms <t> per-connection receive timeout (slow-loris guard)
//   --drain-timeout-ms <t>
//                         how long graceful shutdown lets in-flight
//                         requests finish (<= 0 hard-stops immediately)
//   --max-connections <n> connection cap. Reactor runtime: the listener
//                         parks at the cap and excess connects queue in the
//                         kernel backlog (accept backpressure). Legacy
//                         runtime: excess connections get a status-only
//                         Unavailable reply (load shedding). 0 = unlimited
//   --workers <k>         reactor worker-pool size (0 = one per hardware
//                         thread, the default)
//   --max-inflight <n>    per-connection cap on decoded-but-unanswered
//                         pipelined requests; the reactor stops reading a
//                         connection at the cap (0 = unbounded; default 32)
//   --legacy-threads      serve with the PR 7 thread-per-connection runtime
//                         instead of the reactor + worker pool
//
// With --spill-dir the daemon replays the directory's MANIFEST journal at
// startup and revives every surviving session (crash recovery; see
// docs/ARCHITECTURE.md "Durability & crash recovery").
//
// Prints "listening on 127.0.0.1:<port>" once ready; stops on SIGINT /
// SIGTERM or a kShutdown request. Both signals trigger a graceful drain:
// in-flight requests finish (up to the drain timeout), then every session
// is checkpointed. The handler itself only sets a flag — the main thread
// polls it, so no async-signal-unsafe call runs in signal context.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

// Signal handlers may only touch lock-free sig_atomic_t state; the main
// thread polls this flag between bounded waits.
volatile std::sig_atomic_t g_stop_signal = 0;

void HandleSignal(int /*signum*/) { g_stop_signal = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: nfa_serve [--port <p>] [--spill-dir <dir>]\n"
               "                 [--budget-bytes <b>] [--threads <k>]\n"
               "                 [--batch-width <w>] [--no-simd]\n"
               "                 [--read-timeout-ms <t>]\n"
               "                 [--drain-timeout-ms <t>]\n"
               "                 [--max-connections <n>] [--workers <k>]\n"
               "                 [--max-inflight <n>] [--legacy-threads]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using nfacount::serve::RegistryOptions;
  using nfacount::serve::ServeDaemon;
  using nfacount::serve::ServerOptions;
  using nfacount::serve::SessionRegistry;

  RegistryOptions registry_options;
  ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      // Strict parse: atoi would silently turn "70000" or "abc" into an
      // unintended bind port after the uint16_t truncation.
      const char* value = next("--port");
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || parsed < 0 ||
          parsed > 65535) {
        std::fprintf(stderr,
                     "error: --port must be an integer in 0..65535, got "
                     "'%s'\n",
                     value);
        return Usage();
      }
      server_options.port = static_cast<uint16_t>(parsed);
    } else if (arg == "--spill-dir") {
      registry_options.spill_dir = next("--spill-dir");
    } else if (arg == "--budget-bytes") {
      registry_options.memory_budget_bytes = std::atoll(next("--budget-bytes"));
    } else if (arg == "--threads") {
      registry_options.knobs.num_threads = std::atoi(next("--threads"));
    } else if (arg == "--batch-width") {
      registry_options.knobs.batch_width = std::atoi(next("--batch-width"));
    } else if (arg == "--no-simd") {
      registry_options.knobs.simd_kernels = false;
    } else if (arg == "--read-timeout-ms") {
      server_options.read_timeout_ms = std::atoi(next("--read-timeout-ms"));
    } else if (arg == "--drain-timeout-ms") {
      server_options.drain_timeout_ms = std::atoi(next("--drain-timeout-ms"));
    } else if (arg == "--max-connections") {
      server_options.max_connections = std::atoi(next("--max-connections"));
    } else if (arg == "--workers") {
      server_options.workers = std::atoi(next("--workers"));
    } else if (arg == "--max-inflight") {
      server_options.max_inflight_per_conn = std::atoi(next("--max-inflight"));
    } else if (arg == "--legacy-threads") {
      server_options.legacy_threads = true;
    } else {
      return Usage();
    }
  }

  SessionRegistry registry(registry_options);
  if (!registry_options.spill_dir.empty()) {
    nfacount::Status recovered = registry.Recover();
    if (!recovered.ok()) {
      std::fprintf(stderr, "error: recovery failed: %s\n",
                   recovered.ToString().c_str());
      return 1;
    }
    std::printf("recovered %lld session(s)",
                static_cast<long long>(registry.sessions_recovered()));
    if (registry.checkpoints_quarantined() > 0) {
      std::printf(" (%lld checkpoint(s) quarantined)",
                  static_cast<long long>(registry.checkpoints_quarantined()));
    }
    std::printf("\n");
  }
  ServeDaemon daemon(&registry, server_options);
  nfacount::Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  // Poll the signal flag between bounded waits; a kShutdown request trips
  // the wait directly. Either way Stop() runs the graceful drain +
  // SaveAll on the main thread.
  while (g_stop_signal == 0 && !daemon.WaitUntilStopRequestedFor(50)) {
  }
  daemon.Stop();
  return 0;
}
