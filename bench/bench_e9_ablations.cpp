// E9 — Ablations of the implementation's design decisions (DESIGN.md §4):
//   (1) union-size memoization across sample() calls,
//   (2) membership-oracle amortization via stored reach profiles,
//   (3) sample-list recycling under calibrated constants,
//   (4) the support-perturbation branch (Alg. 3 lines 16-19).
// Each row flips exactly one flag on the same instance and seed.

#include <cmath>

#include "automata/generators.hpp"
#include "bench_common.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

struct Config {
  const char* name;
  bool memoize;
  bool amortize;
  bool recycle;
  bool perturb;
};

void AblationTable(const Nfa& nfa, int n, const char* label) {
  Section(std::string("E9: ablations on ") + label);
  const double truth = ExactOrNeg(nfa, n);
  Row({"config", "seconds", "relerr", "au_trials", "memb_checks", "starved"},
      16);
  const Config configs[] = {
      {"baseline", true, true, true, true},
      {"no_memoize", false, true, true, true},
      {"no_amortize", true, false, true, true},
      {"no_recycle", true, true, false, true},
      {"no_perturb", true, true, true, false},
      {"all_off", false, false, false, false},
  };
  for (const Config& c : configs) {
    CountOptions options = DefaultOptions(4242);
    options.memoize_unions = c.memoize;
    options.amortize_oracle = c.amortize;
    options.recycle_samples = c.recycle;
    options.perturb_support = c.perturb;
    TimedRun run = RunFpras(nfa, n, options);
    double relerr =
        truth > 0 ? std::abs(run.estimate / truth - 1.0) : run.estimate;
    Row({c.name, Fmt(run.seconds, "%.4f"), Fmt(relerr, "%.4f"),
         FmtInt(run.diag.appunion_trials), FmtInt(run.diag.membership_checks),
         FmtInt(run.diag.starvations)},
        16);
  }
}

}  // namespace

int main() {
  std::printf("E9 — design-choice ablations (one flag per row)\n");

  // Sized so the unmemoized configurations stay under ~30 s.
  Rng rng(9);
  Nfa random_nfa = RandomNfa(6, 0.3, 0.25, rng);
  AblationTable(random_nfa, 8, "random m=6 n=8");

  Nfa substring = SubstringNfa(Word{1, 0, 1, 1});
  AblationTable(substring, 12, "substring('1011') n=12");

  std::printf(
      "\nReading guide: no_memoize multiplies AppUnion trials (the n^10 term\n"
      "without sharing); no_amortize multiplies membership cost; no_recycle\n"
      "exposes starvation bias whenever trial demand exceeds list length;\n"
      "no_perturb is statistically invisible at these sizes (the branch fires\n"
      "w.p. eta/2n) — it exists for the coupling analysis, not performance.\n");
  return 0;
}
