// E15 — Cross-batch descent cache: extend-vs-recompute and draws/s, cache
// on vs off.
//
// The lockstep sampler re-derives the same per-(level, frontier) work —
// union sizes for the descent distribution and the expanded predecessor
// row — every time a refill batch (or a later post-run draw) walks through
// a frontier set it has already visited. The descent cache memoizes both
// by content key, so repeated descents pay one hash probe instead of a
// union-size scan plus a CSR row expansion. Because UnionSizes draws from
// a counter-based substream keyed by (purpose, level, P-set content) and
// PredSet expansion is a pure function of (level, frontier, symbol), the
// cached results are bit-identical to recomputation — asserted here per
// row across estimates, per-level counts, and draw streams.
//
// Measured on the E3 automaton family (RandomNfa(m, 0.3, 0.25)) at
// m = 64..128, n = 6, horizon = 2n:
//   build      t(create + sweep 0..2n), cache on vs off — the sweep's
//              refill walks also descend through repeated frontiers.
//   extend     t(recompute 0..2n) / t(extend n→2n), per cache setting —
//              the E14 marginal-sweep ratio re-measured with the cache.
//   draws/s    post-run almost-uniform draws at the top level (the
//              high-level cells, where a walk descends all 2n levels) —
//              the acceptance metric: >= 1.5x at m = 128 cache on vs off.

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

/// The E3 time-scaling automaton at m states (same constructor as
/// bench_e3_scaling_n.cpp and bench_e14_incremental.cpp).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

constexpr int64_t kDraws = 256;   ///< draws per timed repetition
constexpr int kDrawReps = 3;      ///< best-of repetitions for draws/s

/// One cache setting's measurements on one automaton.
struct Setting {
  double t_build = 0.0;      ///< create + ExtendTo(2n) from nothing
  double t_extend = 0.0;     ///< ExtendTo(2n) on a session already at n
  double t_draws = 0.0;      ///< kDraws post-run draws at level 2n
  double draws_per_s = 0.0;
  std::vector<double> counts;  ///< CountAtLength(0..2n)
  std::vector<Word> draws;
  int64_t descent_hits = 0;
  int64_t descent_misses = 0;
  int64_t descent_entries = 0;
  int64_t descent_bytes = 0;
  bool ok = false;
};

Setting MeasureSetting(const Nfa& nfa, int n, int horizon, uint64_t seed,
                       int64_t capacity) {
  Setting s;
  CountOptions options = DefaultOptions(seed);
  options.descent_cache_capacity = capacity;

  // Full build (the recompute baseline for the extend ratio).
  WallTimer build_timer;
  Result<EngineSession> session = EngineSession::Create(nfa, horizon, options);
  if (!session.ok() || !session->ExtendTo(horizon).ok()) return s;
  s.t_build = build_timer.ElapsedSeconds();

  // Marginal sweep: a second session stops at n, then extends in place.
  Result<EngineSession> partial = EngineSession::Create(nfa, horizon, options);
  if (!partial.ok() || !partial->ExtendTo(n).ok()) return s;
  WallTimer extend_timer;
  if (!partial->ExtendTo(horizon).ok()) return s;
  s.t_extend = extend_timer.ElapsedSeconds();

  // The acceptance metric: draws at the top level against the live tables.
  // Each draw descends all 2n levels, so this is where repeated frontiers
  // concentrate; with the cache on, the build already warmed it. Timed in
  // kDrawReps repetitions (best-of, to shed scheduler noise); the draw
  // streams of all repetitions feed the bit-identity check.
  s.t_draws = 1e300;
  for (int rep = 0; rep < kDrawReps; ++rep) {
    WallTimer draw_timer;
    Result<std::vector<Word>> draws = session->SampleWords(horizon, kDraws);
    if (!draws.ok()) return s;
    const double elapsed = draw_timer.ElapsedSeconds();
    s.t_draws = std::min(s.t_draws, elapsed);
    s.draws.insert(s.draws.end(), std::make_move_iterator(draws->begin()),
                   std::make_move_iterator(draws->end()));
  }
  s.draws_per_s =
      s.t_draws > 0.0 ? static_cast<double>(kDraws) / s.t_draws : 0.0;

  for (int level = 0; level <= horizon; ++level) {
    Result<double> c = session->CountAtLength(level);
    if (!c.ok()) return s;
    s.counts.push_back(*c);
  }
  const FprasDiagnostics& diag = session->diagnostics();
  s.descent_hits = diag.descent_hits;
  s.descent_misses = diag.descent_misses;
  s.descent_entries = diag.descent_entries;
  s.descent_bytes = diag.descent_bytes;
  s.ok = true;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("e15_descent_cache");
  const uint64_t seed = 20240615;
  const int n = 6;
  const int horizon = 2 * n;

  std::printf("E15 — descent cache on vs off (lockstep sampler)\n");
  std::printf("(E3 family, eps=0.3 delta=0.2, horizon=%d, draws=%lld, "
              "seed=%llu)\n",
              horizon, static_cast<long long>(kDraws),
              static_cast<unsigned long long>(seed));

  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25)")
      .Set("n", n)
      .Set("horizon", horizon)
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("draws", kDraws)
      .Set("draw_reps", kDrawReps)
      .Set("cache_capacity", FprasParams::kDefaultDescentCacheCapacity)
      .Set("seed", seed);

  Section("descent cache on vs off (times in seconds)");
  Row({"m", "build_off", "build_on", "x_build", "x_ext_off", "x_ext_on",
       "dps_off", "dps_on", "x_draws", "hit%", "identical"},
      /*width=*/11);
  double speedup_m128 = 0.0;
  bool all_identical = true;
  for (int m : {64, 96, 128}) {
    Nfa nfa = E3Automaton(m);
    Setting off = MeasureSetting(nfa, n, horizon, seed, /*capacity=*/0);
    Setting on = MeasureSetting(nfa, n, horizon, seed,
                                FprasParams::kDefaultDescentCacheCapacity);
    if (!off.ok || !on.ok) {
      std::fprintf(stderr, "E15: measurement failed at m=%d\n", m);
      return 1;
    }
    const bool identical = off.counts == on.counts && off.draws == on.draws;
    all_identical = all_identical && identical;
    const double x_build = on.t_build > 0.0 ? off.t_build / on.t_build : 0.0;
    const double x_ext_off =
        off.t_extend > 0.0 ? off.t_build / off.t_extend : 0.0;
    const double x_ext_on = on.t_extend > 0.0 ? on.t_build / on.t_extend : 0.0;
    const double x_draws =
        off.draws_per_s > 0.0 ? on.draws_per_s / off.draws_per_s : 0.0;
    if (m == 128) speedup_m128 = x_draws;
    const int64_t probes = on.descent_hits + on.descent_misses;
    const double hit_pct =
        probes > 0 ? 100.0 * static_cast<double>(on.descent_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    Row({FmtInt(m), Fmt(off.t_build, "%.2f"), Fmt(on.t_build, "%.2f"),
         Fmt(x_build, "%.2fx"), Fmt(x_ext_off, "%.2fx"),
         Fmt(x_ext_on, "%.2fx"), Fmt(off.draws_per_s, "%.1f"),
         Fmt(on.draws_per_s, "%.1f"), Fmt(x_draws, "%.2fx"),
         Fmt(hit_pct, "%.1f"), identical ? "yes" : "NO"},
        /*width=*/11);
    JsonObject row;
    row.Set("m", m)
        .Set("n", n)
        .Set("horizon", horizon)
        .Set("t_build_off_seconds", off.t_build)
        .Set("t_build_on_seconds", on.t_build)
        .Set("t_extend_off_seconds", off.t_extend)
        .Set("t_extend_on_seconds", on.t_extend)
        .Set("t_draws_off_seconds", off.t_draws)
        .Set("t_draws_on_seconds", on.t_draws)
        .Set("draws_per_s_off", off.draws_per_s)
        .Set("draws_per_s_on", on.draws_per_s)
        .Set("speedup_build", x_build)
        .Set("speedup_draws", x_draws)
        .Set("extend_vs_recompute_off", x_ext_off)
        .Set("extend_vs_recompute_on", x_ext_on)
        .Set("descent_hits", on.descent_hits)
        .Set("descent_misses", on.descent_misses)
        .Set("descent_entries", on.descent_entries)
        .Set("descent_bytes", on.descent_bytes)
        .Set("bit_identical", identical)
        .Set("estimate_2n",
             on.counts.empty() ? 0.0 : on.counts.back());
    report.AddRow("descent_cache", std::move(row));
  }
  report.metrics()
      .Set("speedup_draws_m128", speedup_m128)
      .Set("all_bit_identical", all_identical);

  std::printf(
      "\nReading: 'dps' is post-run draws per second at level %d — each draw\n"
      "descends the full unrolling, so repeated (level, frontier) work\n"
      "dominates and the cache (warmed by the build's refill walks) turns\n"
      "union-size scans and row expansions into hash probes. 'identical'\n"
      "asserts bit-equality of all per-level counts and every draw between\n"
      "the two settings; x_ext is the E14 extend-vs-recompute ratio under\n"
      "each setting.\n",
      horizon);

  report.WriteTo(JsonPathArg(argc, argv));
  return all_identical ? 0 : 1;
}
