// E4 — Time scaling in the automaton size m.
//
// Claims reproduced: (a) the per-state sample budget of the faster FPRAS is
// independent of m, so time grows only through the m·n table and the O(m)
// membership work per AppUnion trial (~m²-m³ overall, vs m¹⁷ for ACJR);
// (b) exact counting via determinization explodes exponentially in m on the
// k-th-from-end family while the FPRAS stays polynomial.

#include <cmath>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

void FasterSweep() {
  Section("E4a: faster schedule, n=10, m sweep (random NFAs)");
  Row({"m", "seconds", "ns(budget)", "appunion_trials", "memb_checks"});
  std::vector<double> xs, ys;
  for (int m : {4, 8, 16, 32, 64}) {
    Rng rng(100 + m);
    Nfa nfa = RandomNfa(m, 4.0 / m, 0.15, rng);  // ~constant out-degree
    TimedRun run = RunFpras(nfa, 10, DefaultOptions(m));
    Row({FmtInt(m), Fmt(run.seconds, "%.4f"), FmtInt(run.params.ns),
         FmtInt(run.diag.appunion_trials), FmtInt(run.diag.membership_checks)});
    xs.push_back(m);
    ys.push_back(std::max(run.seconds, 1e-6));
  }
  std::printf("fitted log-log slope (time ~ m^k): k = %.2f\n",
              LogLogSlope(xs, ys));
  std::printf("(ns column is constant: the paper's m-independence claim)\n");
}

void AcjrSweep() {
  // Haircut 1e-12 and m >= 6 so the κ⁷ budget clears the calibration floor
  // (below that the sweep would measure the floor, not the schedule).
  Section("E4b: ACJR-style schedule (haircut 1e-12), n=6, m sweep");
  Row({"m", "seconds", "ns(budget)"});
  std::vector<double> xs, ys;
  for (int m : {6, 7, 8, 9}) {
    Rng rng(200 + m);
    Nfa nfa = RandomNfa(m, 0.4, 0.3, rng);
    TimedRun run = RunFpras(nfa, 6, AcjrFeasibleOptions(m, 0.3, 0.2, 1e-12));
    Row({FmtInt(m), Fmt(run.seconds, "%.4f"), FmtInt(run.params.ns)});
    xs.push_back(m);
    ys.push_back(std::max(run.seconds, 1e-6));
  }
  std::printf("fitted log-log slope (time ~ m^k): k = %.2f (κ^7 budget)\n",
              LogLogSlope(xs, ys));
}

void ExactBlowup() {
  Section("E4c: exact determinization blow-up vs FPRAS (k-th-from-end)");
  Row({"k(=m-1)", "dfa_states", "exact_s", "fpras_s", "fpras_est", "truth"});
  for (int k : {8, 12, 16, 18}) {
    Nfa nfa = KthFromEndNfa(k);
    const int n = k + 4;
    WallTimer timer;
    Result<BigUint> exact = ExactCountViaDfa(nfa, n, /*max_dfa_states=*/1 << 20);
    double exact_s = timer.ElapsedSeconds();
    double truth = exact.ok() ? exact->ToDouble() : -1.0;
    int dfa_states = 1 << k;  // minimal DFA size for this language
    TimedRun fpras = RunFpras(nfa, n, DefaultOptions(k, 0.3, 0.2));
    Row({FmtInt(k), FmtInt(dfa_states), Fmt(exact_s, "%.3f"),
         Fmt(fpras.seconds, "%.3f"), Fmt(fpras.estimate), Fmt(truth)});
  }
  std::printf("(exact cost doubles per +1 in k; the FPRAS cost is polynomial\n"
              " — the crossover is the reason approximate #NFA exists)\n");
}

}  // namespace

int main() {
  std::printf("E4 — runtime scaling in m (n fixed)\n");
  FasterSweep();
  AcjrSweep();
  ExactBlowup();
  return 0;
}
