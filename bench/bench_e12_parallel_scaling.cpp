// E12 — parallel level-sweep scaling: end-to-end FPRAS Run() wall time vs
// worker-thread count on the E3/E4 scaling families. Because every (q,ℓ)
// cell draws from its own counter-based RNG substream, all thread counts
// produce bit-identical estimates — the bench asserts that equality on every
// cell, so a scheduling regression that leaks into results shows up here as
// well as in tests/test_parallel.cpp.
//
//   E12a: E3 family (RandomNfa(m, 0.3, 0.25), n = 8), m = 64..128, threads
//         swept over {1, 2, 4, 8}; speedup is T(1)/T(k) per m.
//   E12b: one E4-style deeper instance (m = 64, n = 16) for the long-level
//         shape (fewer, fatter levels stress the per-level barrier less).
//
// Methodology (bench/README.md): Release build, one warm-up run per (m,
// threads) cell, fixed seed. Speedup is hardware-bound: on a single-core
// container every thread count measures ~1.0x — record the host's nproc
// (reported in the JSON config) when reading the numbers.
//
// --json <path> writes the full trajectory (config + per-cell rows) as one
// JSON object, e.g. `bench_e12_parallel_scaling --json BENCH_e12.json`.

#include <cstdint>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

/// The E3 family instance (same generator as bench_e3/bench_e11).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

constexpr uint64_t kSeed = 31;

struct Cell {
  double seconds = 0.0;
  double estimate = 0.0;
};

Cell RunWithThreads(const Nfa& nfa, int n, int threads) {
  CountOptions o = DefaultOptions(kSeed);
  o.num_threads = threads;
  Cell cell;
  // Warm-up pass (page-in, allocator steady state), then the timed run.
  (void)RunFpras(nfa, n, o);
  TimedRun timed = RunFpras(nfa, n, o);
  cell.seconds = timed.seconds;
  cell.estimate = timed.estimate;
  return cell;
}

void SweepInstance(const char* family, int m, int n,
                   const std::vector<int>& thread_counts, BenchReport* report) {
  Nfa nfa = E3Automaton(m);
  std::vector<Cell> cells;
  cells.reserve(thread_counts.size());
  for (int threads : thread_counts) {
    cells.push_back(RunWithThreads(nfa, n, threads));
  }
  const double base_s = cells[0].seconds;
  bool identical = true;
  for (const Cell& c : cells) identical &= (c.estimate == cells[0].estimate);

  for (size_t i = 0; i < cells.size(); ++i) {
    Row({family, FmtInt(m), FmtInt(n), FmtInt(thread_counts[i]),
         Fmt(cells[i].seconds, "%.3f"), Fmt(base_s / cells[i].seconds, "%.2fx"),
         Fmt(cells[i].estimate), identical ? "yes" : "NO"});
    JsonObject row;
    row.Set("family", family)
        .Set("m", m)
        .Set("n", n)
        .Set("threads", thread_counts[i])
        .Set("wall_s", cells[i].seconds)
        .Set("speedup_vs_1", base_s / cells[i].seconds)
        .Set("estimate", cells[i].estimate)
        .Set("bit_identical", identical);
    report->AddRow("scaling", std::move(row));
  }
  if (!identical) {
    std::fprintf(stderr,
                 "E12: THREAD-COUNT INVARIANCE VIOLATED on %s m=%d n=%d\n",
                 family, m, n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathArg(argc, argv);
  BenchReport report("e12_parallel_scaling");

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("E12 — parallel level-sweep scaling (hardware threads: %u)\n",
              hw);

  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25)")
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("seed", kSeed)
      .Set("hardware_threads", static_cast<int>(hw))
      .SetRaw("thread_counts", "[1,2,4,8]");

  Section("E12a: Run() wall time vs threads, E3 family n=8");
  Row({"family", "m", "n", "threads", "wall_s", "speedup", "estimate",
       "identical"});
  for (int m : {64, 96, 128}) {
    SweepInstance("E3", m, 8, thread_counts, &report);
  }

  Section("E12b: deeper unroll (E4 shape), m=64 n=16");
  Row({"family", "m", "n", "threads", "wall_s", "speedup", "estimate",
       "identical"});
  SweepInstance("E4", 64, 16, thread_counts, &report);

  const bool json_ok = report.WriteTo(json_path);

  std::printf(
      "\nReading: 'speedup' is T(threads=1)/T(threads=k) for the identical\n"
      "workload — the estimates column must agree bit-for-bit across every\n"
      "row of one (m, n) block ('identical' = yes). Scaling saturates at the\n"
      "host's physical core count; per-level cell counts (≈ m) bound the\n"
      "available parallelism at small m.\n");
  return json_ok ? 0 : 1;
}
