// E10 — End-to-end application pipelines from the paper's introduction:
// probabilistic query evaluation (PQE) and regular path query (RPQ)
// counting/sampling. google-benchmark timings for the pipelines plus a
// correctness table against exact counts on small instances.
//
// The point reproduced: the reductions are linear (lineage/product sizes in
// the tables) — the counting step dominates, which is exactly why a faster
// FPRAS matters (paper §1).

#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/pqe.hpp"
#include "apps/rpq.hpp"
#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

// Layered random DAG database: `width` nodes per layer, 3 layers, 2 relations.
ProbGraphDb MakeDb(int width, uint64_t seed) {
  ProbGraphDb db(3 * width, 2);
  Rng rng(seed);
  for (int a = 0; a < width; ++a) {
    for (int b = width; b < 2 * width; ++b) {
      if (rng.Bernoulli(0.5)) (void)db.AddFact(0, a, b);
    }
  }
  for (int b = width; b < 2 * width; ++b) {
    for (int c = 2 * width; c < 3 * width; ++c) {
      if (rng.Bernoulli(0.5)) (void)db.AddFact(1, b, c);
    }
  }
  return db;
}

GraphDb MakeGraph(int nodes, uint64_t seed) {
  GraphDb db(nodes, 2);
  Rng rng(seed);
  for (int u = 0; u < nodes; ++u) {
    for (int label = 0; label < 2; ++label) {
      int degree = 1 + static_cast<int>(rng.UniformU64(2));
      for (int d = 0; d < degree; ++d) {
        (void)db.AddEdge(u, static_cast<Symbol>(label),
                         static_cast<int>(rng.UniformU64(nodes)));
      }
    }
  }
  return db;
}

void BM_PqePipeline(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  ProbGraphDb db = MakeDb(width, 77);
  PathQuery query{{0, 1}};
  CountOptions options = DefaultOptions(5);
  double clauses = 0, states = 0;
  for (auto _ : state) {
    Result<PqeResult> r = ApproxPqe(db, query, options);
    if (r.ok()) {
      benchmark::DoNotOptimize(r->probability);
      clauses = r->lineage_clauses;
      states = r->nfa_states;
    }
  }
  state.counters["facts"] = static_cast<double>(db.num_facts());
  state.counters["lineage_clauses"] = clauses;
  state.counters["nfa_states"] = states;
}
BENCHMARK(BM_PqePipeline)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);
// width=4 runs ~7s per count; one iteration is enough for the table.
BENCHMARK(BM_PqePipeline)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_RpqCount(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  GraphDb db = MakeGraph(nodes, 99);
  CountOptions options = DefaultOptions(6);
  const int n = 8;
  double product_states = 0;
  for (auto _ : state) {
    Result<CountEstimate> r = CountRpqAnswers(db, 0, nodes - 1, "(01)*(0|1)*", n,
                                              options);
    if (r.ok()) {
      benchmark::DoNotOptimize(r->estimate);
      product_states = r->params.m;
    }
  }
  state.counters["product_states"] = product_states;
}
BENCHMARK(BM_RpqCount)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_RpqSampleAnswers(benchmark::State& state) {
  GraphDb db = MakeGraph(16, 99);
  SamplerOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = 8;
  for (auto _ : state) {
    Result<std::vector<Word>> words =
        SampleRpqAnswers(db, 0, 15, "(0|1)*1", 8, 32, options);
    if (words.ok()) benchmark::DoNotOptimize(words->size());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_RpqSampleAnswers)->Unit(benchmark::kMillisecond);

void CorrectnessTables() {
  Section("E10a: PQE accuracy vs exact possible-world semantics");
  Row({"width", "facts", "clauses", "raw_states", "reduced", "exact_prob",
       "approx_prob", "relerr"},
      11);
  for (int width : {2, 3}) {
    ProbGraphDb db = MakeDb(width, 77);
    PathQuery query{{0, 1}};
    Result<double> exact = ExactPqe(db, query);
    Result<PqeResult> approx = ApproxPqe(db, query, DefaultOptions(5));
    if (!exact.ok() || !approx.ok()) continue;
    double relerr = exact.value() > 0
                        ? std::abs(approx->probability / exact.value() - 1.0)
                        : approx->probability;
    Row({FmtInt(width), FmtInt(db.num_facts()), FmtInt(approx->lineage_clauses),
         FmtInt(approx->nfa_states), FmtInt(approx->reduced_states),
         Fmt(exact.value(), "%.5f"), Fmt(approx->probability, "%.5f"),
         Fmt(relerr, "%.4f")},
        11);
  }
  std::printf("(reduced = after bisimulation quotient: the clause chains\n"
              " share suffixes, so the instance the FPRAS runs is smaller)\n");

  Section("E10c: weighted PQE (dyadic probabilities, threshold gadgets)");
  Row({"width", "bits", "raw_states", "reduced", "exact_prob", "approx_prob",
       "relerr"},
      11);
  for (int width : {2, 3}) {
    ProbGraphDb db(3 * width, 2);
    Rng rng(500 + width);
    const DyadicProb probs[] = {{3, 2}, {1, 3}, {7, 3}, {1, 1}};
    int idx = 0;
    for (int a = 0; a < width; ++a) {
      for (int b = width; b < 2 * width; ++b) {
        if (rng.Bernoulli(0.5)) (void)db.AddFactWithProb(0, a, b, probs[idx++ % 4]);
      }
    }
    for (int b = width; b < 2 * width; ++b) {
      for (int c = 2 * width; c < 3 * width; ++c) {
        if (rng.Bernoulli(0.5)) (void)db.AddFactWithProb(1, b, c, probs[idx++ % 4]);
      }
    }
    PathQuery query{{0, 1}};
    Result<double> exact = ExactPqeWeighted(db, query);
    Result<PqeResult> approx = ApproxPqeWeighted(db, query, DefaultOptions(7));
    if (!exact.ok() || !approx.ok()) continue;
    double relerr = exact.value() > 0
                        ? std::abs(approx->probability / exact.value() - 1.0)
                        : approx->probability;
    Row({FmtInt(width), FmtInt(approx->count.params.n),
         FmtInt(approx->nfa_states), FmtInt(approx->reduced_states),
         Fmt(exact.value(), "%.5f"), Fmt(approx->probability, "%.5f"),
         Fmt(relerr, "%.4f")},
        11);
  }

  Section("E10b: RPQ count accuracy vs brute-force enumeration");
  Row({"nodes", "n", "exact", "approx", "relerr"});
  for (int nodes : {8, 16}) {
    GraphDb db = MakeGraph(nodes, 99);
    const int n = 8;
    Result<Nfa> product = BuildRpqProduct(db, 0, nodes - 1, "(01)*(0|1)*");
    if (!product.ok()) continue;
    double truth = ExactOrNeg(*product, n);
    Result<CountEstimate> approx =
        CountRpqAnswers(db, 0, nodes - 1, "(01)*(0|1)*", n, DefaultOptions(6));
    if (!approx.ok()) continue;
    double relerr =
        truth > 0 ? std::abs(approx->estimate / truth - 1.0) : approx->estimate;
    Row({FmtInt(nodes), FmtInt(n), Fmt(truth), Fmt(approx->estimate),
         Fmt(relerr, "%.4f")});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E10 — application pipelines (PQE, RPQ)\n");
  CorrectnessTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
