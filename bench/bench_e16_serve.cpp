// E16 — Serve mode: the counting daemon vs per-request recomputation.
//
// Serving scenario: many clients ask |L(A_ℓ)| / draw words against the same
// automaton. The pre-serve policy pays a full FPRAS run per request (fresh
// EngineSession::Create + the level sweep); the daemon pays it once, then
// answers every subsequent request from the published LevelState prefix over
// a loopback socket. Measured on the E3 time-scaling family
// (RandomNfa(m, 0.3, 0.25), seed 2024) at m = 64 and 128, horizon 12, with
// ≥ 4 concurrent client connections, every served answer asserted
// bit-identical to a single-threaded reference session, and one
// evict-to-checkpoint + revive cycle asserted mid-run.
//
// Metrics per m:
//   cold_rate   requests/sec a recompute-per-request server could sustain
//               (1 / t(Create + CountAtLength(horizon)))
//   warm_qps    requests/sec the daemon sustains from 4 concurrent clients
//               (socket round trip + registry read, tables warm)
//   speedup     warm_qps / cold_rate — the serve-mode amortization headline
//   p50/p99_us  client-observed request latency percentiles
//
// Emits BENCH_e16.json via --json (the committed copy is refreshed by the
// command in bench/README.md).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

/// The E3 time-scaling automaton at m states (same constructor as
/// bench_e3_scaling_n.cpp and bench_e14_incremental.cpp).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

constexpr int kHorizon = 12;
constexpr int kClients = 4;
constexpr int kRequestsPerClient = 250;
constexpr uint64_t kSeed = 2024;

struct E16Row {
  int m = 0;
  double t_cold = 0.0;     ///< one recompute-from-scratch request (seconds)
  double cold_rate = 0.0;  ///< requests/sec under recompute-per-request
  double warm_qps = 0.0;   ///< daemon requests/sec, 4 concurrent clients
  double speedup = 0.0;    ///< warm_qps / cold_rate
  int64_t p50_us = 0;      ///< client-observed median latency
  int64_t p99_us = 0;      ///< client-observed tail latency
  bool identical = false;  ///< every served answer equals the reference
};

E16Row RunOne(int m, const std::string& spill_dir) {
  E16Row row;
  row.m = m;
  const Nfa nfa = E3Automaton(m);
  const std::string text = NfaToText(nfa);
  CountOptions opts = DefaultOptions(kSeed);

  // Reference (and the cold-path cost): a fresh session per request.
  WallTimer cold_timer;
  Result<EngineSession> reference = EngineSession::Create(nfa, kHorizon, opts);
  if (!reference.ok()) return row;
  Result<double> horizon_count = reference->CountAtLength(kHorizon);
  if (!horizon_count.ok()) return row;
  row.t_cold = cold_timer.ElapsedSeconds();
  row.cold_rate = row.t_cold > 0.0 ? 1.0 / row.t_cold : 0.0;
  std::vector<double> want(kHorizon + 1);
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> w = reference->CountAtLength(length);
    if (!w.ok()) return row;
    want[static_cast<size_t>(length)] = *w;
  }

  // The daemon, warmed through the horizon by one admin client.
  serve::RegistryOptions registry_options;
  registry_options.spill_dir = spill_dir;
  serve::SessionRegistry registry(registry_options);
  serve::ServeDaemon daemon(&registry, serve::ServerOptions());
  if (!daemon.Start().ok()) return row;
  {
    Result<serve::ServeClient> admin =
        serve::ServeClient::Connect(daemon.port());
    if (!admin.ok()) return row;
    serve::RegisterRequest req;
    req.name = "e16";
    req.nfa_text = text;
    req.horizon = kHorizon;
    req.seed = kSeed;
    req.eps = opts.eps;
    req.delta = opts.delta;
    if (!admin->Register(req).ok()) return row;
    Result<int> level = admin->ExtendTo("e16", kHorizon);
    if (!level.ok() || level.value() != kHorizon) return row;
    // One demote + transparent-revive cycle before the measurement: the
    // revived tables must serve the same bits.
    Result<bool> evicted = admin->Evict("e16");
    if (!evicted.ok() || !evicted.value()) return row;
    Result<double> revived = admin->CountAtLength("e16", kHorizon);
    if (!revived.ok() || *revived != want[kHorizon]) return row;
  }

  // Warm phase: kClients concurrent connections hammering counts across
  // the published prefix, each answer checked against the reference.
  LatencyHistogram latency;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> clients;
  WallTimer warm_timer;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<serve::ServeClient> client =
          serve::ServeClient::Connect(daemon.port());
      if (!client.ok()) {
        mismatch.store(true);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int length = (i + c) % (kHorizon + 1);
        WallTimer request_timer;
        Result<double> got = client->CountAtLength("e16", length);
        latency.Record(
            static_cast<int64_t>(request_timer.ElapsedSeconds() * 1e6));
        if (!got.ok() || *got != want[static_cast<size_t>(length)]) {
          mismatch.store(true);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double warm_seconds = warm_timer.ElapsedSeconds();
  daemon.Stop();

  const int64_t total = int64_t{kClients} * kRequestsPerClient;
  row.warm_qps =
      warm_seconds > 0.0 ? static_cast<double>(total) / warm_seconds : 0.0;
  row.speedup = row.cold_rate > 0.0 ? row.warm_qps / row.cold_rate : 0.0;
  row.p50_us = latency.PercentileMicros(0.50);
  row.p99_us = latency.PercentileMicros(0.99);
  row.identical = !mismatch.load();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("e16_serve");
  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25) seed 2024")
      .Set("horizon", int64_t{kHorizon})
      .Set("clients", int64_t{kClients})
      .Set("requests_per_client", int64_t{kRequestsPerClient})
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("seed", static_cast<int64_t>(kSeed));

  const std::string spill_dir = "/tmp/nfacount_e16_spill";
  std::system(("mkdir -p " + spill_dir).c_str());

  Section("E16: serve-mode daemon vs recompute-per-request (E3 family)");
  Row({"m", "t_cold_s", "cold_rate", "warm_qps", "speedup", "p50_us",
       "p99_us", "identical"});
  double headline_qps = 0.0;
  int64_t headline_p99 = 0;
  double headline_speedup = 0.0;
  for (int m : {64, 128}) {
    E16Row row = RunOne(m, spill_dir);
    Row({FmtInt(row.m), Fmt(row.t_cold), Fmt(row.cold_rate),
         Fmt(row.warm_qps), Fmt(row.speedup), FmtInt(row.p50_us),
         FmtInt(row.p99_us), row.identical ? "yes" : "NO"});
    JsonObject json_row;
    json_row.Set("m", int64_t{row.m})
        .Set("t_cold_s", row.t_cold)
        .Set("cold_rate_qps", row.cold_rate)
        .Set("warm_qps", row.warm_qps)
        .Set("speedup", row.speedup)
        .Set("p50_us", row.p50_us)
        .Set("p99_us", row.p99_us)
        .Set("identical", row.identical);
    report.AddRow("serve", std::move(json_row));
    if (m == 128) {
      headline_qps = row.warm_qps;
      headline_p99 = row.p99_us;
      headline_speedup = row.speedup;
    }
    if (!row.identical) {
      std::fprintf(stderr, "e16: served answers diverged at m=%d\n", row.m);
      return 1;
    }
  }
  report.metrics()
      .Set("warm_qps_m128", headline_qps)
      .Set("p99_us_m128", headline_p99)
      .Set("speedup_m128", headline_speedup);
  std::printf("\nheadline (m=128): %.4g qps warm, p99 %lld us, %.4g x over "
              "recompute-per-request\n",
              headline_qps, static_cast<long long>(headline_p99),
              headline_speedup);
  if (!report.WriteTo(JsonPathArg(argc, argv))) return 1;
  return 0;
}
