// E11 — CSR hot-path layout: old (pointer-walk adjacency) vs new (flat CSR +
// row masks + batched membership), measured, not asserted.
//
// Two views of the same change:
//   E11a: the raw predecessor-expansion primitive (UnrolledNfa::PredSet*) on
//         random frontiers — the inner loop of Algorithm 2's backward walk —
//         in million-expansions/sec.
//   E11b: end-to-end almost-uniform sampling throughput (WordSampler draws
//         per second) on the E3 scaling family (RandomNfa(m, 0.3, 0.25),
//         m >= 64), with the engine built once per layout from the same seed.
//         Both layouts consume identical RNG streams, so the drawn words are
//         identical — only the cost differs.
//
// Methodology (see bench/README.md "Performance methodology"): Release build,
// one warm-up pass before each timed region, >= ~0.5 s of work per cell, and
// a fixed seed so reruns are comparable.
//
// --json <path> records the full trajectory (both tables) as one JSON
// object, e.g. `bench_e11_csr_hotpath --json BENCH_e11.json`.

#include <cstdint>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "fpras/sampler.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

/// The E3 family instance (bench_e3_scaling_n.cpp uses the same generator).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

/// Random frontier of ~density·m states, at least one set.
Bitset RandomFrontier(int m, double density, Rng& rng) {
  Bitset f(m);
  for (int q = 0; q < m; ++q) {
    if (rng.Bernoulli(density)) f.Set(q);
  }
  if (f.None()) f.Set(static_cast<size_t>(rng.UniformU64(m)));
  return f;
}

void BenchPredSet(int m, BenchReport* report) {
  const int n = 4;
  Nfa nfa = E3Automaton(m);
  UnrolledNfa unr(&nfa, n);
  Rng rng(99);
  std::vector<Bitset> frontiers;
  for (int i = 0; i < 64; ++i) frontiers.push_back(RandomFrontier(m, 0.25, rng));

  // Scale iteration counts so each timed cell does comparable total work.
  const int64_t iters = std::max<int64_t>(20000, 4000000 / m);
  Bitset out(m);

  // PredSet* live in another TU, so the timed calls cannot be elided.
  auto run_legacy = [&]() {
    WallTimer t;
    for (int64_t i = 0; i < iters; ++i) {
      const Bitset& f = frontiers[i & 63];
      out = unr.PredSetLegacy(f, static_cast<Symbol>(i & 1), 1 + (i % n));
    }
    return t.ElapsedSeconds();
  };
  auto run_csr = [&]() {
    WallTimer t;
    for (int64_t i = 0; i < iters; ++i) {
      const Bitset& f = frontiers[i & 63];
      unr.PredSetInto(f, static_cast<Symbol>(i & 1), 1 + (i % n), &out);
    }
    return t.ElapsedSeconds();
  };

  run_legacy();  // warm-up
  const double legacy_s = run_legacy();
  run_csr();  // warm-up
  const double csr_s = run_csr();
  const double legacy_mops = iters / legacy_s / 1e6;
  const double csr_mops = iters / csr_s / 1e6;
  Row({FmtInt(m), FmtInt(iters), Fmt(legacy_mops, "%.2f"), Fmt(csr_mops, "%.2f"),
       Fmt(csr_mops / legacy_mops, "%.2fx")});
  JsonObject row;
  row.Set("m", m)
      .Set("iters", iters)
      .Set("legacy_mops", legacy_mops)
      .Set("csr_mops", csr_mops)
      .Set("speedup", csr_mops / legacy_mops);
  report->AddRow("predset", std::move(row));
}

struct SamplerCell {
  double build_s = 0.0;
  double draws_per_s = 0.0;
};

SamplerCell BenchSamplerLayout(const Nfa& nfa, int n, bool csr, int64_t draws) {
  SamplerOptions opts;
  opts.eps = 0.3;
  opts.delta = 0.2;
  opts.seed = 11;
  opts.csr_hot_path = csr;
  SamplerCell cell;
  WallTimer build_timer;
  Result<WordSampler> sampler = WordSampler::Build(nfa, n, opts);
  cell.build_s = build_timer.ElapsedSeconds();
  if (!sampler.ok()) {
    std::fprintf(stderr, "sampler build failed: %s\n",
                 sampler.status().ToString().c_str());
    return cell;
  }
  for (int i = 0; i < 32; ++i) (void)sampler->Sample();  // warm-up
  WallTimer draw_timer;
  int64_t ok_draws = 0;
  for (int64_t i = 0; i < draws; ++i) {
    if (sampler->Sample().ok()) ++ok_draws;
  }
  cell.draws_per_s = ok_draws / draw_timer.ElapsedSeconds();
  return cell;
}

void BenchSampler(int m, int n, int64_t draws, BenchReport* report) {
  Nfa nfa = E3Automaton(m);
  SamplerCell legacy = BenchSamplerLayout(nfa, n, /*csr=*/false, draws);
  SamplerCell csr = BenchSamplerLayout(nfa, n, /*csr=*/true, draws);
  Row({FmtInt(m), FmtInt(n), FmtInt(draws), Fmt(legacy.build_s, "%.2f"),
       Fmt(csr.build_s, "%.2f"), Fmt(legacy.draws_per_s, "%.1f"),
       Fmt(csr.draws_per_s, "%.1f"),
       Fmt(csr.draws_per_s / legacy.draws_per_s, "%.2fx")});
  JsonObject row;
  row.Set("m", m)
      .Set("n", n)
      .Set("draws", draws)
      .Set("legacy_build_s", legacy.build_s)
      .Set("csr_build_s", csr.build_s)
      .Set("legacy_draws_per_s", legacy.draws_per_s)
      .Set("csr_draws_per_s", csr.draws_per_s)
      .Set("speedup", csr.draws_per_s / legacy.draws_per_s);
  report->AddRow("sampler", std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathArg(argc, argv);
  BenchReport report("e11_csr_hotpath");
  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25)")
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("seed", 11);

  std::printf("E11 — CSR-unrolled hot path: old vs new transition layout\n");

  Section("E11a: PredSet expansion throughput (Mops/s), E3 family");
  Row({"m", "iters", "legacy", "csr", "speedup"});
  for (int m : {64, 128, 256}) BenchPredSet(m, &report);

  Section("E11b: sampler throughput (draws/s), E3 family, eps=0.3 delta=0.2");
  Row({"m", "n", "draws", "build_old", "build_new", "old_d/s", "new_d/s",
       "speedup"});
  BenchSampler(64, 8, 1500, &report);
  BenchSampler(96, 8, 1000, &report);
  BenchSampler(128, 8, 800, &report);
  BenchSampler(64, 12, 1000, &report);

  const bool json_ok = report.WriteTo(json_path);

  std::printf(
      "\nReading: 'speedup' is new/old samples-per-second on identical draw\n"
      "sequences (both layouts consume the same RNG stream). The E11a rows\n"
      "isolate the frontier-propagation primitive the sampler walk spends\n"
      "most of its time in; bench/README.md records reference numbers.\n");
  return json_ok ? 0 : 1;
}
