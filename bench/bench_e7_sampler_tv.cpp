// E7 — Sampler quality (Inv-2 / Theorem 2): the multiset S(q^ℓ) should be
// close in total variation distance to i.i.d. uniform over L(q^ℓ).
//
// We measure (a) the empirical TV of fresh Algorithm-2 draws to the uniform
// distribution over exactly-enumerated languages, per family, and (b) the TV
// across levels ℓ on one automaton — the quantity Lemma 5 bounds by η per
// (state, level).

#include <cmath>
#include <map>
#include <string>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "counting/exact.hpp"
#include "fpras/sampler.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr int64_t kDraws = 4000;

void FamilyTv() {
  Section("E7a: empirical TV of accepted-word sampling (4000 draws, n=7)");
  Row({"family", "|L|", "tv_uniform", "chi2", "sampling_floor"});
  const int n = 7;
  for (const FamilyInstance& family : StandardFamilies(5, n, 3)) {
    Result<std::vector<Word>> lang = EnumerateAccepted(family.nfa, n);
    if (!lang.ok() || lang->empty() || lang->size() > 600) continue;
    SamplerOptions options;
    options.eps = 0.3;
    options.delta = 0.2;
    options.seed = 101;
    Result<WordSampler> sampler = WordSampler::Build(family.nfa, n, options);
    if (!sampler.ok()) continue;
    std::map<std::string, int64_t> histogram;
    bool failed = false;
    for (int64_t i = 0; i < kDraws && !failed; ++i) {
      Result<Word> w = sampler.value().Sample();
      if (!w.ok()) failed = true;
      else ++histogram[WordToString(w.value())];
    }
    if (failed) continue;
    const int64_t support = static_cast<int64_t>(lang->size());
    // Even a perfect sampler shows TV ~ sqrt(support/draws)/2 from noise.
    double floor = 0.5 * std::sqrt(static_cast<double>(support) / kDraws);
    Row({family.name, FmtInt(support),
         Fmt(EmpiricalTvToUniform(histogram, kDraws, support), "%.4f"),
         Fmt(ChiSquareUniform(histogram, kDraws, support), "%.1f"),
         Fmt(floor, "%.4f")});
  }
  std::printf("(tv_uniform ≈ sampling_floor means the sampler is as uniform\n"
              " as statistically detectable at this draw count)\n");
}

void PerLevelTv() {
  Section("E7b: per-level TV on substring('101') — Inv-2 across levels");
  Row({"level", "|L(q,l)|", "tv_uniform", "floor"});
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 8;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.3, 0.2, Calibration::Practical());
  if (!params.ok()) return;
  FprasEngine engine(&nfa, *params, 7);
  if (!engine.Run().ok()) return;

  // Target: the accepting sink state (index 3 in SubstringNfa construction).
  const StateId target = 3;
  for (int level = 3; level <= n; ++level) {
    Result<std::vector<Word>> lang = EnumerateStateLevel(nfa, target, level);
    if (!lang.ok() || lang->empty()) continue;
    Bitset targets(nfa.num_states());
    targets.Set(target);
    std::map<std::string, int64_t> histogram;
    int64_t got = 0;
    for (int64_t i = 0; i < 3 * kDraws && got < kDraws; ++i) {
      std::optional<Word> w = engine.SampleWord(targets, level);
      if (!w.has_value()) continue;
      ++histogram[WordToString(*w)];
      ++got;
    }
    if (got == 0) continue;
    const int64_t support = static_cast<int64_t>(lang->size());
    double floor = 0.5 * std::sqrt(static_cast<double>(support) / got);
    Row({FmtInt(level), FmtInt(support),
         Fmt(EmpiricalTvToUniform(histogram, got, support), "%.4f"),
         Fmt(floor, "%.4f")});
  }
}

}  // namespace

int main() {
  std::printf("E7 — sampler closeness to uniform (TV distance, Inv-2)\n");
  FamilyTv();
  PerLevelTv();
  return 0;
}
