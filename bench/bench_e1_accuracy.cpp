// E1 — Headline accuracy census (Theorem 3).
//
// Claim reproduced: the FPRAS output lies within (1±ε)·|L(A_n)| with
// probability ≥ 1−δ, across structurally diverse automata. Also contrasts
// the naive Monte-Carlo baseline, which fails on sparse languages.
//
// Output: one row per (family, n) with mean/p95 relative error over seeds and
// the fraction of runs inside the ε envelope; then the sparse-language
// shootout versus naive MC.

#include <cmath>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "counting/naive_mc.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr double kEps = 0.3;
constexpr double kDelta = 0.2;
constexpr int kTrials = 8;

void AccuracyCensus() {
  Section("E1a: accuracy census, eps=0.3 delta=0.2, 8 seeds per row");
  Row({"family", "n", "truth", "mean_est", "mean_relerr", "p95_relerr",
       "frac_in_eps"});
  for (int n : {8, 12}) {
    for (const FamilyInstance& family : StandardFamilies(5, n, 77)) {
      double truth = ExactOrNeg(family.nfa, n);
      if (truth < 0.0) continue;
      std::vector<double> errors;
      RunningStat est_stat;
      int within = 0;
      for (int seed = 0; seed < kTrials; ++seed) {
        TimedRun run =
            RunFpras(family.nfa, n, DefaultOptions(1000 + seed, kEps, kDelta));
        est_stat.Add(run.estimate);
        if (truth == 0.0) {
          errors.push_back(run.estimate == 0.0 ? 0.0 : 1.0);
          if (run.estimate == 0.0) ++within;
          continue;
        }
        double ratio = run.estimate / truth;
        errors.push_back(std::abs(ratio - 1.0));
        if (ratio >= 1.0 / (1.0 + kEps) && ratio <= 1.0 + kEps) ++within;
      }
      RunningStat err_stat;
      for (double e : errors) err_stat.Add(e);
      Row({family.name, FmtInt(n), Fmt(truth), Fmt(est_stat.mean()),
           Fmt(err_stat.mean()), Fmt(Quantile(errors, 0.95)),
           Fmt(static_cast<double>(within) / kTrials, "%.2f")});
    }
  }
}

void SparseShootout() {
  Section("E1b: sparse language (|L|=1 of 2^n) — FPRAS vs naive MC");
  Row({"n", "fpras_est", "fpras_ms", "naive_est", "naive_ms",
       "naive_need"});
  for (int n : {12, 16, 20}) {
    Word needle;
    for (int i = 0; i < n; ++i) needle.push_back(static_cast<Symbol>((i / 3) % 2));
    Nfa nfa = SparseNeedle(needle);

    TimedRun fpras = RunFpras(nfa, n, DefaultOptions(9, kEps, kDelta));

    Rng rng(10);
    WallTimer timer;
    NaiveMcResult naive = NaiveMonteCarloCount(nfa, n, 200000, rng);
    double naive_ms = timer.ElapsedMillis();

    Row({FmtInt(n), Fmt(fpras.estimate), Fmt(fpras.seconds * 1e3, "%.1f"),
         Fmt(naive.estimate), Fmt(naive_ms, "%.1f"),
         Fmt(NaiveSamplesNeeded(kEps, kDelta, std::pow(0.5, n)), "%.3g")});
  }
  std::printf("(naive_need = samples naive MC requires for (eps,delta); the\n"
              " FPRAS needs none of that because it never dilutes into 2^n)\n");
}

}  // namespace

int main() {
  std::printf("E1 — Theorem 3 accuracy (paper claim: (1±eps) w.p. >= 1-delta)\n");
  AccuracyCensus();
  SparseShootout();
  return 0;
}
