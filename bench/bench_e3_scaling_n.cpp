// E3 — Time scaling in the word length n.
//
// Claim reproduced: total time ~O((m²n¹⁰ + m³n⁶)·ε⁻⁴) for this paper vs
// ~O(m¹⁷n¹⁷·ε⁻¹⁴) for ACJR — the n-exponent gap dominates feasible sizes.
// We sweep n at fixed m for both schedules (ACJR with the extra feasibility
// haircut recorded in EXPERIMENTS.md), fit log-log slopes, and run the exact
// determinization baseline for context (fast here, but exponential in the
// worst case — see E2/E4 families).

#include <cmath>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

Nfa TestAutomaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

void SweepSchedule(const char* label, bool acjr, const std::vector<int>& ns,
                   int m) {
  Nfa nfa = TestAutomaton(m);
  std::vector<double> xs, ys;
  Row({"n", "seconds", "ns(budget)", "estimate", "truth", "au_trials"});
  for (int n : ns) {
    CountOptions options =
        acjr ? AcjrFeasibleOptions(5 + n) : DefaultOptions(5 + n);
    TimedRun run = RunFpras(nfa, n, options);
    double truth = ExactOrNeg(nfa, n);
    Row({FmtInt(n), Fmt(run.seconds, "%.4f"), FmtInt(run.params.ns),
         Fmt(run.estimate), Fmt(truth), FmtInt(run.diag.appunion_trials)});
    xs.push_back(n);
    ys.push_back(std::max(run.seconds, 1e-6));
  }
  std::printf("%s fitted log-log slope (time ~ n^k): k = %.2f\n", label,
              LogLogSlope(xs, ys));
}

}  // namespace

int main() {
  std::printf("E3 — runtime scaling in n (m fixed)\n");

  Section("E3a: faster schedule (this paper), m=6, n sweep");
  SweepSchedule("faster", /*acjr=*/false, {6, 8, 10, 12, 14, 16}, 6);

  // The sweep starts where the haircut κ⁷ budget clears the calibration
  // floor, so the measured slope reflects the schedule, not the floor.
  Section("E3b: ACJR-style schedule (feasibility haircut 1e-13), m=5");
  SweepSchedule("acjr", /*acjr=*/true, {9, 10, 11, 12}, 5);

  std::printf(
      "\nShape check: the ACJR slope exceeds the faster slope — the n^7-vs-n^4\n"
      "sample budget shows up directly in runtime, matching the paper's gap.\n");
  return 0;
}
