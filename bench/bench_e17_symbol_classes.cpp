// E17 — Symbol-class alphabet compression: corpus-scale alphabets, classes
// on vs off.
//
// The per-symbol hot loops — UnionSizesInto's descent distribution and the
// lockstep sampler's draw step — iterate the alphabet once per (state,
// level) cell and once per walk level. Symbol-class compression
// (automata/symbol_classes.hpp) collapses Σ to its C distinct transition
// rows, making both loops O(C): one PredSet expansion + one AppUnion call
// per class, weighted by member count, and one C-ary discrete draw followed
// by a uniform member pick. On corpus-style automata C stays a handful while
// |Σ| grows to tokenizer-vocab sizes, so the win scales with |Σ|/C.
//
// Measured on CorpusTokenNfa(pattern_len=4, |Σ|, categories=4) — C = 4
// distinct rows at every alphabet size — at |Σ| = 2^8, 2^11, 2^14, n = 8:
//   build     t(create + sweep 0..n), classes on vs off — the acceptance
//             floor is >= 3x at |Σ| = 2^14.
//   draws/s   post-run almost-uniform draws at the top level — acceptance
//             floor >= 5x at |Σ| = 2^14.
//   agree     the two settings consume different content-keyed substreams
//             (same envelope, not bit-identical), so correctness is checked
//             as both estimates landing within the ±35% envelope of the
//             exact DFA count.
// Plus the no-regression guard: the E3 automaton (RandomNfa(128, 0.3,
// 0.25), binary alphabet, trivial partition) must not pay more than ~5%
// for the class layer it cannot compress.

#include <algorithm>
#include <string>
#include <vector>

#include "automata/generators.hpp"
#include "automata/symbol_classes.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr int64_t kDraws = 256;  ///< draws per timed repetition
constexpr int kDrawReps = 3;     ///< best-of repetitions for draws/s

/// One class setting's measurements on one automaton.
struct Setting {
  double t_build = 0.0;    ///< create + ExtendTo(n) from nothing
  double t_draws = 0.0;    ///< best-of kDraws post-run draws at level n
  double draws_per_s = 0.0;
  double estimate = 0.0;   ///< |L(A_n)| estimate
  bool ok = false;
};

Setting MeasureSetting(const Nfa& nfa, int n, uint64_t seed, bool classes) {
  Setting s;
  CountOptions options = DefaultOptions(seed);
  options.symbol_classes = classes;

  WallTimer build_timer;
  Result<EngineSession> session = EngineSession::Create(nfa, n, options);
  if (!session.ok() || !session->ExtendTo(n).ok()) return s;
  s.t_build = build_timer.ElapsedSeconds();

  Result<double> estimate = session->CountAtLength(n);
  if (!estimate.ok()) return s;
  s.estimate = *estimate;

  s.t_draws = 1e300;
  for (int rep = 0; rep < kDrawReps; ++rep) {
    WallTimer draw_timer;
    Result<std::vector<Word>> draws = session->SampleWords(n, kDraws);
    if (!draws.ok()) return s;
    s.t_draws = std::min(s.t_draws, draw_timer.ElapsedSeconds());
  }
  s.draws_per_s =
      s.t_draws > 0.0 ? static_cast<double>(kDraws) / s.t_draws : 0.0;
  s.ok = true;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("e17_symbol_classes");
  const uint64_t seed = 20240808;
  const int n = 8;
  const int pattern_len = 4;
  const int categories = 4;

  std::printf("E17 — symbol-class compression, classes on vs off\n");
  std::printf(
      "(CorpusTokenNfa(len=%d, |Sigma|, cats=%d), eps=0.3 delta=0.2, n=%d, "
      "draws=%lld, seed=%llu)\n",
      pattern_len, categories, n, static_cast<long long>(kDraws),
      static_cast<unsigned long long>(seed));

  report.config()
      .Set("family", "CorpusTokenNfa(4, sigma, 4)")
      .Set("n", n)
      .Set("pattern_len", pattern_len)
      .Set("categories", categories)
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("draws", kDraws)
      .Set("draw_reps", kDrawReps)
      .Set("seed", seed);

  Section("corpus family: classes on vs off (times in seconds)");
  Row({"sigma", "C", "build_off", "build_on", "x_build", "dps_off", "dps_on",
       "x_draws", "env_off", "env_on"},
      /*width=*/11);
  double x_build_top = 0.0;
  double x_draws_top = 0.0;
  bool all_in_envelope = true;
  for (int log2_sigma : {8, 11, 14}) {
    const int sigma = 1 << log2_sigma;
    const Nfa nfa = CorpusTokenNfa(pattern_len, sigma, categories);
    const int num_classes = SymbolClassIndex::Compute(nfa).num_classes();
    const double truth = ExactOrNeg(nfa, n);
    Setting off = MeasureSetting(nfa, n, seed, /*classes=*/false);
    Setting on = MeasureSetting(nfa, n, seed, /*classes=*/true);
    if (!off.ok || !on.ok || truth <= 0.0) {
      std::fprintf(stderr, "E17: measurement failed at sigma=%d\n", sigma);
      return 1;
    }
    const double x_build = on.t_build > 0.0 ? off.t_build / on.t_build : 0.0;
    const double x_draws =
        off.draws_per_s > 0.0 ? on.draws_per_s / off.draws_per_s : 0.0;
    if (log2_sigma == 14) {
      x_build_top = x_build;
      x_draws_top = x_draws;
    }
    const double env_off = off.estimate / truth - 1.0;
    const double env_on = on.estimate / truth - 1.0;
    const bool in_envelope =
        std::abs(env_off) <= 0.35 && std::abs(env_on) <= 0.35;
    all_in_envelope = all_in_envelope && in_envelope;
    Row({FmtInt(sigma), FmtInt(num_classes), Fmt(off.t_build, "%.3f"),
         Fmt(on.t_build, "%.3f"), Fmt(x_build, "%.1fx"),
         Fmt(off.draws_per_s, "%.0f"), Fmt(on.draws_per_s, "%.0f"),
         Fmt(x_draws, "%.1fx"), Fmt(env_off, "%+.3f"), Fmt(env_on, "%+.3f")},
        /*width=*/11);
    JsonObject row;
    row.Set("sigma", sigma)
        .Set("num_classes", num_classes)
        .Set("n", n)
        .Set("t_build_off_seconds", off.t_build)
        .Set("t_build_on_seconds", on.t_build)
        .Set("t_draws_off_seconds", off.t_draws)
        .Set("t_draws_on_seconds", on.t_draws)
        .Set("draws_per_s_off", off.draws_per_s)
        .Set("draws_per_s_on", on.draws_per_s)
        .Set("speedup_build", x_build)
        .Set("speedup_draws", x_draws)
        .Set("estimate_off", off.estimate)
        .Set("estimate_on", on.estimate)
        .Set("exact", truth)
        .Set("envelope_rel_off", env_off)
        .Set("envelope_rel_on", env_on)
        .Set("in_envelope", in_envelope);
    report.AddRow("corpus_alphabet", std::move(row));
  }

  // No-regression guard: a binary-alphabet automaton with (almost surely)
  // all-distinct rows gets the trivial partition — the class layer must be
  // within noise of the uncompressed loops (the two settings are also
  // bit-identical there, see tests/test_symbol_classes.cpp).
  Section("E3 no-regression row (trivial partition, m=128)");
  Row({"m", "build_off", "build_on", "t_on/t_off", "dps_off", "dps_on"},
      /*width=*/11);
  Rng rng(2024);
  const Nfa e3 = RandomNfa(128, 0.3, 0.25, rng);
  const int e3_n = 6;
  Setting e3_off = MeasureSetting(e3, e3_n, seed, /*classes=*/false);
  Setting e3_on = MeasureSetting(e3, e3_n, seed, /*classes=*/true);
  if (!e3_off.ok || !e3_on.ok) {
    std::fprintf(stderr, "E17: E3 regression row failed\n");
    return 1;
  }
  const double e3_ratio =
      e3_off.t_build > 0.0 ? e3_on.t_build / e3_off.t_build : 0.0;
  Row({FmtInt(128), Fmt(e3_off.t_build, "%.3f"), Fmt(e3_on.t_build, "%.3f"),
       Fmt(e3_ratio, "%.3f"), Fmt(e3_off.draws_per_s, "%.0f"),
       Fmt(e3_on.draws_per_s, "%.0f")},
      /*width=*/11);
  JsonObject e3_row;
  e3_row.Set("m", 128)
      .Set("n", e3_n)
      .Set("t_build_off_seconds", e3_off.t_build)
      .Set("t_build_on_seconds", e3_on.t_build)
      .Set("build_ratio_on_over_off", e3_ratio)
      .Set("draws_per_s_off", e3_off.draws_per_s)
      .Set("draws_per_s_on", e3_on.draws_per_s);
  report.AddRow("e3_no_regression", std::move(e3_row));

  report.metrics()
      .Set("speedup_build_sigma_2_14", x_build_top)
      .Set("speedup_draws_sigma_2_14", x_draws_top)
      .Set("e3_build_ratio_on_over_off", e3_ratio)
      .Set("all_in_envelope", all_in_envelope);

  std::printf(
      "\nReading: x_build and x_draws are off/on time ratios — the class\n"
      "layer's win from doing per-class instead of per-symbol work (C = 4\n"
      "distinct rows at every |Sigma| here). env_* is the signed relative\n"
      "error against the exact DFA count: the two settings draw different\n"
      "content-keyed substreams, so they agree in the envelope, not bit for\n"
      "bit. The E3 row is the degenerate case (trivial partition): the\n"
      "layer must cost nothing when there is nothing to compress.\n");

  report.WriteTo(JsonPathArg(argc, argv));
  return all_in_envelope ? 0 : 1;
}
