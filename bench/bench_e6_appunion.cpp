// E6 — AppUnion (Algorithm 1 / Theorem 1) in isolation.
//
// Claims reproduced: (ε,δ)(1+ε_sz) multiplicative accuracy of the union
// estimate, at O(k·(1+ε_sz)²·ε⁻²·log(k/δ)) membership calls, independent of
// the union's overlap structure — contrasted with the naive sum of sizes,
// whose error grows linearly with overlap.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "counting/union_mc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

struct IntSetInput {
  std::vector<int> members_sorted;
  std::vector<int> samples;
  double size;

  double size_estimate() const { return size; }
  int64_t num_samples() const { return static_cast<int64_t>(samples.size()); }
  const int& Sample(int64_t i) const { return samples[static_cast<size_t>(i)]; }
  bool Contains(const int& x) const {
    return std::binary_search(members_sorted.begin(), members_sorted.end(), x);
  }
};

// k sets of `size` elements each; consecutive sets share `overlap` fraction.
std::vector<IntSetInput> MakeChain(int k, int size, double overlap, Rng& rng) {
  std::vector<IntSetInput> out;
  int stride = static_cast<int>(size * (1.0 - overlap));
  for (int i = 0; i < k; ++i) {
    IntSetInput in;
    for (int x = 0; x < size; ++x) in.members_sorted.push_back(i * stride + x);
    in.size = size;
    for (int s = 0; s < 8192; ++s) {
      in.samples.push_back(
          in.members_sorted[rng.UniformU64(in.members_sorted.size())]);
    }
    out.push_back(std::move(in));
  }
  return out;
}

double TrueUnion(const std::vector<IntSetInput>& inputs) {
  std::set<int> u;
  for (const auto& in : inputs) {
    u.insert(in.members_sorted.begin(), in.members_sorted.end());
  }
  return static_cast<double>(u.size());
}

void OverlapSweep() {
  Section("E6a: accuracy vs overlap (k=8 sets of 512, eps=0.1 delta=0.05)");
  Row({"overlap", "truth", "appunion", "relerr", "naive_sum", "naive_err",
       "memb_calls"});
  Rng rng(1);
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    auto inputs = MakeChain(8, 512, overlap, rng);
    std::vector<const IntSetInput*> ptrs;
    for (const auto& in : inputs) ptrs.push_back(&in);
    AppUnionParams p;
    p.eps = 0.1;
    p.delta = 0.05;
    p.starvation = StarvationPolicy::kRecycle;
    AppUnionOutcome out = AppUnion(ptrs, p, rng);
    double truth = TrueUnion(inputs);
    double naive = 8.0 * 512.0;
    Row({Fmt(overlap, "%.2f"), Fmt(truth), Fmt(out.estimate),
         Fmt(std::abs(out.estimate / truth - 1.0), "%.4f"), Fmt(naive),
         Fmt(std::abs(naive / truth - 1.0), "%.4f"),
         FmtInt(out.membership_checks)});
  }
  std::printf("(AppUnion error is flat in overlap; naive-sum error explodes)\n");
}

void TrialScaling() {
  Section("E6b: membership calls vs k (Theorem 1 cost bound)");
  Row({"k", "trials", "memb_calls", "bound~k*t"});
  Rng rng(2);
  for (int k : {2, 4, 8, 16, 32}) {
    auto inputs = MakeChain(k, 256, 0.5, rng);
    std::vector<const IntSetInput*> ptrs;
    for (const auto& in : inputs) ptrs.push_back(&in);
    AppUnionParams p;
    p.eps = 0.2;
    p.delta = 0.1;
    p.starvation = StarvationPolicy::kRecycle;
    AppUnionOutcome out = AppUnion(ptrs, p, rng);
    Row({FmtInt(k), FmtInt(out.trials), FmtInt(out.membership_checks),
         FmtInt(out.trials * k)});
  }
}

void EpsSzPropagation() {
  Section("E6c: tolerance to size-estimate error (the (1+eps_sz) factor)");
  Row({"size_skew", "declared_eps_sz", "estimate", "truth", "ratio"});
  Rng rng(3);
  for (double skew : {1.0, 1.1, 1.25, 1.5}) {
    auto inputs = MakeChain(4, 512, 0.5, rng);
    for (size_t i = 0; i < inputs.size(); ++i) {
      inputs[i].size *= (i % 2 == 0) ? skew : 1.0 / skew;
    }
    std::vector<const IntSetInput*> ptrs;
    for (const auto& in : inputs) ptrs.push_back(&in);
    AppUnionParams p;
    p.eps = 0.1;
    p.delta = 0.05;
    p.eps_sz = skew - 1.0;
    p.starvation = StarvationPolicy::kRecycle;
    AppUnionOutcome out = AppUnion(ptrs, p, rng);
    double truth = TrueUnion(inputs);
    Row({Fmt(skew, "%.2f"), Fmt(p.eps_sz, "%.2f"), Fmt(out.estimate),
         Fmt(truth), Fmt(out.estimate / truth, "%.4f")});
  }
  std::printf("(ratios stay within the (1+eps)(1+eps_sz) envelope)\n");
}

}  // namespace

int main() {
  std::printf("E6 — Algorithm 1 (AppUnion) accuracy and cost\n");
  OverlapSweep();
  TrialScaling();
  EpsSzPropagation();
  return 0;
}
