// E8 — Rejection behavior of the sampling subroutine (Theorem 2(2)) and the
// rarity of the SmallS padding event (Lemma 5).
//
// Theory: each sample() attempt fails with probability ≤ 1 − 2/(3e²) ≈ 0.910
// given accurate tables (i.e. success rate ≥ 0.0902; the exact success rate
// is γ0·|L| ≈ 2/(3e) ≈ 0.245 when N ≈ |L|). The xns budget makes the chance
// that fewer than ns samples arrive (forcing padding) ≤ η/2.

#include <cmath>

#include "automata/generators.hpp"
#include "bench_common.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr double kE = 2.718281828459045;

void RejectionCensus() {
  Section("E8a: per-family rejection census (n=10)");
  Row({"family", "succ_rate", "fail_phi", "fail_bern", "fail_dead",
       "padded_frac", "theory_min"},
      13);
  const int n = 10;
  const double theory_min = 2.0 / (3.0 * kE * kE);
  for (const FamilyInstance& family : StandardFamilies(5, n, 21)) {
    TimedRun run = RunFpras(family.nfa, n, DefaultOptions(500));
    const FprasDiagnostics& d = run.diag;
    if (d.sample_calls == 0) continue;
    double calls = static_cast<double>(d.sample_calls);
    double padded_frac =
        d.padded_words > 0
            ? static_cast<double>(d.padded_words) /
                  static_cast<double>(d.padded_words + d.sample_success)
            : 0.0;
    Row({family.name, Fmt(d.sample_success / calls, "%.4f"),
         Fmt(d.fail_phi_gt_1 / calls, "%.4f"),
         Fmt(d.fail_bernoulli / calls, "%.4f"),
         Fmt(d.fail_dead_branch / calls, "%.4f"), Fmt(padded_frac, "%.4f"),
         Fmt(theory_min, "%.4f")},
        13);
  }
  std::printf("(succ_rate must exceed theory_min = 2/(3e^2); the ideal rate\n"
              " with exact N is 2/(3e) = %.4f — fail_bern absorbs the rest)\n",
              2.0 / (3.0 * kE));
}

void GammaCeiling() {
  Section("E8b: success rate vs language density (needle automata)");
  Row({"n", "|L|", "succ_rate", "padded_frac"});
  for (int n : {6, 10, 14}) {
    Word needle;
    for (int i = 0; i < n; ++i) needle.push_back(static_cast<Symbol>(i % 2));
    Nfa nfa = SparseNeedle(needle);
    TimedRun run = RunFpras(nfa, n, DefaultOptions(600 + n));
    const FprasDiagnostics& d = run.diag;
    double calls = std::max<double>(1.0, static_cast<double>(d.sample_calls));
    double padded_frac =
        d.padded_words > 0
            ? static_cast<double>(d.padded_words) /
                  static_cast<double>(d.padded_words + d.sample_success)
            : 0.0;
    Row({FmtInt(n), FmtInt(1), Fmt(d.sample_success / calls, "%.4f"),
         Fmt(padded_frac, "%.4f")});
  }
  std::printf("(singleton languages keep the same ~2/(3e) success rate: the\n"
              " rejection bound is density-independent, as the proof demands)\n");
}

}  // namespace

int main() {
  std::printf("E8 — rejection rates and padding (Theorem 2(2) / Lemma 5)\n");
  RejectionCensus();
  GammaCeiling();
  return 0;
}
