// E18 — Serve-mode scaling: event-driven reactor + worker pool vs the PR 7
// thread-per-connection baseline.
//
// Serving scenario: N clients hammer warm counts against one registered
// session, optionally pipelining P requests per connection. The legacy
// runtime pays one OS thread per connection and serial read→dispatch→write;
// the reactor runtime multiplexes every socket onto one event loop and a
// bounded worker pool, so connection count stops being a thread count and
// pipelined requests overlap with writeback. Measured on the E3 family
// (RandomNfa(64, 0.3, 0.25), seed 2024) at horizon 12 over the grid
// runtime {reactor, legacy} × clients {1, 4, 16, 64} × pipeline {1, 8},
// ~2000 warm requests per cell, every answer asserted bit-identical to a
// single-threaded reference session.
//
// Speedup is hardware-bound, like E12: on a single-core container the
// reactor cannot beat the baseline on raw qps (there is one CPU to share no
// matter how the runtime schedules it) — the wins measurable there are the
// thread-count reduction and pipelining. Record the host's nproc with the
// numbers; on a multi-core host expect the reactor to pull ahead from 16
// clients up.
//
// Metrics per cell:
//   qps         warm requests/sec across all clients in the cell
//   p50/p99_us  client-observed per-request latency percentiles (with
//               pipelining this includes queueing behind the window)
//   identical   every reply equals the reference count, bit for bit
//
// Plus one cross-runtime invariant asserted outside the grid: the raw reply
// bytes for a pipelined request train are identical at workers=1 and
// workers=4 (the pool must be invisible on the wire).
//
// Emits BENCH_e18.json via --json (the committed copy is refreshed by the
// command in bench/README.md).

#include <atomic>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr int kM = 64;
constexpr int kHorizon = 12;
constexpr int kRequestsPerCell = 2000;
constexpr uint64_t kSeed = 2024;

/// The E3 time-scaling automaton (same constructor as bench_e3/e14/e16).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

struct E18Row {
  std::string runtime;
  int clients = 0;
  int pipeline = 0;
  double qps = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  bool identical = false;
};

/// One client connection's share of a cell: a sliding window of `pipeline`
/// count requests on the wire, replies read in order and checked against
/// the reference.
void CellClient(uint16_t port, int client_index, long long requests,
                int pipeline, const std::vector<double>& want,
                LatencyHistogram* latency, std::atomic<bool>* failed) {
  Result<serve::ServeClient> connected = serve::ServeClient::Connect(port);
  if (!connected.ok()) {
    failed->store(true);
    return;
  }
  serve::ServeClient client = std::move(connected).value();
  std::deque<std::pair<int, WallTimer>> window;  // (length asked, timer)
  long long to_send = requests;
  long long to_read = requests;
  long long sent = 0;
  while (to_read > 0) {
    while (to_send > 0 && window.size() < static_cast<size_t>(pipeline)) {
      const int length =
          static_cast<int>((sent + client_index) % (kHorizon + 1));
      if (!client.SendCount("e18", length).ok()) {
        failed->store(true);
        return;
      }
      window.emplace_back(length, WallTimer());
      ++sent;
      --to_send;
    }
    Result<double> got = client.ReadCountReply();
    const int length = window.front().first;
    latency->Record(
        static_cast<int64_t>(window.front().second.ElapsedSeconds() * 1e6));
    window.pop_front();
    --to_read;
    if (!got.ok() || got.value() != want[static_cast<size_t>(length)]) {
      failed->store(true);
    }
  }
}

/// Runs one (clients, pipeline) cell against an already-warm daemon.
E18Row RunCell(const serve::ServeDaemon& daemon, const std::string& runtime,
               int clients, int pipeline, const std::vector<double>& want) {
  E18Row row;
  row.runtime = runtime;
  row.clients = clients;
  row.pipeline = pipeline;
  LatencyHistogram latency;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    const long long share = kRequestsPerCell / clients +
                            (c < kRequestsPerCell % clients ? 1 : 0);
    if (share == 0) continue;
    threads.emplace_back(CellClient, daemon.port(), c, share, pipeline,
                         std::cref(want), &latency, &failed);
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  row.qps = seconds > 0.0 ? kRequestsPerCell / seconds : 0.0;
  row.p50_us = latency.PercentileMicros(0.50);
  row.p99_us = latency.PercentileMicros(0.99);
  row.identical = !failed.load();
  return row;
}

/// Starts a daemon over `registry` with the named session already extended
/// to the horizon, serving with `legacy` or the reactor at `workers`.
std::unique_ptr<serve::ServeDaemon> StartDaemon(
    serve::SessionRegistry* registry, bool legacy, int workers) {
  serve::ServerOptions options;
  options.legacy_threads = legacy;
  options.workers = workers;
  auto daemon = std::make_unique<serve::ServeDaemon>(registry, options);
  if (!daemon->Start().ok()) return nullptr;
  return daemon;
}

/// The pool-invisibility invariant: the raw reply bytes for one pipelined
/// request train are identical at workers=1 and workers=4.
bool ReplyBytesIdenticalAcrossWorkers(serve::SessionRegistry* registry) {
  std::vector<std::string> transcripts;
  for (int workers : {1, 4}) {
    std::unique_ptr<serve::ServeDaemon> daemon =
        StartDaemon(registry, /*legacy=*/false, workers);
    if (!daemon) return false;
    Result<SocketFd> sock = ConnectLoopback(daemon->port());
    if (!sock.ok()) return false;
    for (int length = 0; length <= kHorizon; ++length) {
      serve::CountRequest req;
      req.name = "e18";
      req.length = length;
      if (!serve::WriteFrame(sock.value(), serve::MsgType::kCount,
                             serve::EncodeCount(req))
               .ok()) {
        return false;
      }
    }
    std::string transcript;
    for (int length = 0; length <= kHorizon; ++length) {
      Result<serve::Frame> reply = serve::ReadFrame(sock.value());
      if (!reply.ok() || reply.value().type != serve::MsgType::kReply) {
        return false;
      }
      transcript += reply.value().payload;
      transcript.push_back('\n');
    }
    transcripts.push_back(std::move(transcript));
    daemon->Stop();
  }
  return transcripts[0] == transcripts[1];
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t cores =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  BenchReport report("e18_serve_scaling");
  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25) seed 2024")
      .Set("m", int64_t{kM})
      .Set("horizon", int64_t{kHorizon})
      .Set("requests_per_cell", int64_t{kRequestsPerCell})
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("seed", static_cast<int64_t>(kSeed))
      .Set("host_cores", cores);

  // Reference counts and a warm shared registry.
  const Nfa nfa = E3Automaton(kM);
  CountOptions opts = DefaultOptions(kSeed);
  Result<EngineSession> reference = EngineSession::Create(nfa, kHorizon, opts);
  if (!reference.ok()) return 1;
  std::vector<double> want(kHorizon + 1);
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> w = reference->CountAtLength(length);
    if (!w.ok()) return 1;
    want[static_cast<size_t>(length)] = *w;
  }
  serve::SessionRegistry registry((serve::RegistryOptions()));
  if (!registry
           .Register("e18", NfaToText(nfa), kHorizon, kSeed, opts.eps,
                     opts.delta)
           .ok()) {
    return 1;
  }
  Result<int> warmed = registry.ExtendTo("e18", kHorizon);
  if (!warmed.ok() || warmed.value() != kHorizon) return 1;

  Section("E18: serve runtime scaling, reactor vs thread-per-connection");
  Row({"runtime", "clients", "pipeline", "qps", "p50_us", "p99_us",
       "identical"});
  double reactor_16c = 0.0;
  double legacy_16c = 0.0;
  double reactor_1c = 0.0;
  double legacy_1c = 0.0;
  for (const bool legacy : {false, true}) {
    const std::string runtime = legacy ? "legacy" : "reactor";
    std::unique_ptr<serve::ServeDaemon> daemon =
        StartDaemon(&registry, legacy, /*workers=*/0);
    if (!daemon) return 1;
    for (const int clients : {1, 4, 16, 64}) {
      for (const int pipeline : {1, 8}) {
        E18Row row = RunCell(*daemon, runtime, clients, pipeline, want);
        Row({row.runtime, FmtInt(row.clients), FmtInt(row.pipeline),
             Fmt(row.qps), FmtInt(row.p50_us), FmtInt(row.p99_us),
             row.identical ? "yes" : "NO"});
        JsonObject json_row;
        json_row.Set("runtime", row.runtime)
            .Set("clients", int64_t{row.clients})
            .Set("pipeline", int64_t{row.pipeline})
            .Set("qps", row.qps)
            .Set("p50_us", row.p50_us)
            .Set("p99_us", row.p99_us)
            .Set("identical", row.identical);
        report.AddRow("scaling", std::move(json_row));
        if (!row.identical) {
          std::fprintf(stderr, "e18: answers diverged (%s, %d clients)\n",
                       runtime.c_str(), row.clients);
          return 1;
        }
        if (row.pipeline == 1 && row.clients == 16) {
          (legacy ? legacy_16c : reactor_16c) = row.qps;
        }
        if (row.pipeline == 1 && row.clients == 1) {
          (legacy ? legacy_1c : reactor_1c) = row.qps;
        }
      }
    }
    daemon->Stop();
  }

  const bool pool_invisible = ReplyBytesIdenticalAcrossWorkers(&registry);
  if (!pool_invisible) {
    std::fprintf(stderr, "e18: reply bytes differ across worker counts\n");
    return 1;
  }

  const double ratio_16c =
      legacy_16c > 0.0 ? reactor_16c / legacy_16c : 0.0;
  const double ratio_1c = legacy_1c > 0.0 ? reactor_1c / legacy_1c : 0.0;
  report.metrics()
      .Set("reactor_qps_16c", reactor_16c)
      .Set("legacy_qps_16c", legacy_16c)
      .Set("reactor_over_legacy_16c", ratio_16c)
      .Set("reactor_over_legacy_1c", ratio_1c)
      .Set("pool_invisible_on_wire", pool_invisible);
  std::printf(
      "\nheadline (16 clients, pipeline 1): reactor %.4g qps vs legacy %.4g "
      "qps (%.2fx) on a %lld-core host\n",
      reactor_16c, legacy_16c, ratio_16c, static_cast<long long>(cores));
  if (cores <= 1) {
    std::printf(
        "note: single-core host — qps is physics-capped at every runtime; "
        "re-run on a multi-core host to see the reactor separation\n");
  }
  if (!report.WriteTo(JsonPathArg(argc, argv))) return 1;
  return 0;
}
