// Shared helpers for the experiment binaries (E1-E10): aligned table
// printing, timed FPRAS invocation, and the default calibrations used across
// experiments (recorded in EXPERIMENTS.md).

#ifndef NFACOUNT_BENCH_BENCH_COMMON_HPP_
#define NFACOUNT_BENCH_BENCH_COMMON_HPP_

#include <cstdio>
#include <string>
#include <vector>

#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "util/timer.hpp"

namespace nfacount {
namespace bench {

/// Prints a separator + title for one experiment section.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Fixed-width row printing: columns are given as already-formatted cells.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// One timed FPRAS run.
struct TimedRun {
  double seconds = 0.0;
  double estimate = 0.0;
  FprasDiagnostics diag;
  FprasParams params;
};

inline TimedRun RunFpras(const Nfa& nfa, int n, const CountOptions& options) {
  WallTimer timer;
  Result<CountEstimate> r = ApproxCount(nfa, n, options);
  TimedRun out;
  out.seconds = timer.ElapsedSeconds();
  if (r.ok()) {
    out.estimate = r->estimate;
    out.diag = r->diagnostics;
    out.params = r->params;
  } else {
    std::fprintf(stderr, "FPRAS failed: %s\n", r.status().ToString().c_str());
  }
  return out;
}

/// Exact count as double (−1 when infeasible within budgets).
inline double ExactOrNeg(const Nfa& nfa, int n) {
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  if (!exact.ok()) return -1.0;
  return exact->ToDouble();
}

/// The calibration used by default in all experiments (see EXPERIMENTS.md).
inline CountOptions DefaultOptions(uint64_t seed, double eps = 0.3,
                                   double delta = 0.2) {
  CountOptions o;
  o.eps = eps;
  o.delta = delta;
  o.calibration = Calibration::Practical();
  o.seed = seed;
  return o;
}

/// Extra haircut applied to the ACJR κ⁷ budget so runs terminate; the E2
/// schedule table reports the true (uncut) gap. Recorded in EXPERIMENTS.md.
/// Sweeps must pick sizes where the scaled budget clears the ns floor,
/// otherwise they measure the floor rather than the κ⁷ shape.
inline CountOptions AcjrFeasibleOptions(uint64_t seed, double eps = 0.3,
                                        double delta = 0.2,
                                        double haircut = 1.0e-13) {
  CountOptions o = DefaultOptions(seed, eps, delta);
  o.schedule = Schedule::kAcjr;
  o.calibration.ns_scale = haircut;
  return o;
}

}  // namespace bench
}  // namespace nfacount

#endif  // NFACOUNT_BENCH_BENCH_COMMON_HPP_
