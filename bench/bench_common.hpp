// Shared helpers for the experiment binaries (E1-E12): aligned table
// printing, timed FPRAS invocation, the default calibrations used across
// experiments (recorded in EXPERIMENTS.md), and a minimal JSON report writer
// so benches can record machine-readable trajectories (BENCH_*.json) next to
// their human-readable tables.

#ifndef NFACOUNT_BENCH_BENCH_COMMON_HPP_
#define NFACOUNT_BENCH_BENCH_COMMON_HPP_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace nfacount {
namespace bench {

/// Prints a separator + title for one experiment section.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Fixed-width row printing: columns are given as already-formatted cells.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

inline std::string FmtInt(int64_t v) { return std::to_string(v); }

/// One timed FPRAS run.
struct TimedRun {
  double seconds = 0.0;
  double estimate = 0.0;
  FprasDiagnostics diag;
  FprasParams params;
};

inline TimedRun RunFpras(const Nfa& nfa, int n, const CountOptions& options) {
  WallTimer timer;
  Result<CountEstimate> r = ApproxCount(nfa, n, options);
  TimedRun out;
  out.seconds = timer.ElapsedSeconds();
  if (r.ok()) {
    out.estimate = r->estimate;
    out.diag = r->diagnostics;
    out.params = r->params;
  } else {
    std::fprintf(stderr, "FPRAS failed: %s\n", r.status().ToString().c_str());
  }
  return out;
}

/// Exact count as double (−1 when infeasible within budgets).
inline double ExactOrNeg(const Nfa& nfa, int n) {
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  if (!exact.ok()) return -1.0;
  return exact->ToDouble();
}

// ---------------------------------------------------------------------------
// JSON trajectory output (--json <path>)
// ---------------------------------------------------------------------------

// The object renderer lives in util/json.hpp so non-bench tools (nfa_cli
// --json) share it; the alias keeps every bench's bench::JsonObject usage.
using nfacount::JsonObject;

/// One bench's machine-readable record: {"bench": ..., "config": {...},
/// "metrics": {...}, "tables": {"<name>": [row, ...], ...}}. Populate
/// config() once, append one row per printed table line, and call
/// WriteTo(JsonPathArg(...)) at the end — a no-op when --json was not given,
/// so every bench can wire it unconditionally.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

  JsonObject& config() { return config_; }
  JsonObject& metrics() { return metrics_; }

  void AddRow(const std::string& table, JsonObject row) {
    for (auto& t : tables_) {
      if (t.first == table) {
        t.second.push_back(std::move(row));
        return;
      }
    }
    tables_.emplace_back(table, std::vector<JsonObject>{std::move(row)});
  }

  std::string Render() const {
    JsonObject root;
    root.Set("bench", name_);
    if (!config_.empty()) root.SetRaw("config", config_.Render());
    if (!metrics_.empty()) root.SetRaw("metrics", metrics_.Render());
    if (!tables_.empty()) {
      JsonObject tables;
      for (const auto& t : tables_) {
        std::string arr = "[";
        for (size_t i = 0; i < t.second.size(); ++i) {
          if (i > 0) arr += ",";
          arr += t.second[i].Render();
        }
        arr += "]";
        tables.SetRaw(t.first, std::move(arr));
      }
      root.SetRaw("tables", tables.Render());
    }
    return root.Render();
  }

  /// Writes the report (one JSON object + newline). Empty path = no-op;
  /// returns false (with a stderr note) when the file cannot be written.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n",
                   path.c_str());
      return false;
    }
    const std::string body = Render() + "\n";
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\n[json written to %s]\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  JsonObject config_;
  JsonObject metrics_;
  std::vector<std::pair<std::string, std::vector<JsonObject>>> tables_;
};

/// Extracts the value of `--json <path>` from a bench's argv ("" if absent).
/// A trailing `--json` with no path is a usage error (exit 2) rather than a
/// silent no-op — a CI step recording trajectories must not pass green while
/// producing nothing.
inline std::string JsonPathArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench: --json requires a path argument\n");
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return "";
}

/// The calibration used by default in all experiments (see EXPERIMENTS.md).
inline CountOptions DefaultOptions(uint64_t seed, double eps = 0.3,
                                   double delta = 0.2) {
  CountOptions o;
  o.eps = eps;
  o.delta = delta;
  o.calibration = Calibration::Practical();
  o.seed = seed;
  return o;
}

/// Extra haircut applied to the ACJR κ⁷ budget so runs terminate; the E2
/// schedule table reports the true (uncut) gap. Recorded in EXPERIMENTS.md.
/// Sweeps must pick sizes where the scaled budget clears the ns floor,
/// otherwise they measure the floor rather than the κ⁷ shape.
inline CountOptions AcjrFeasibleOptions(uint64_t seed, double eps = 0.3,
                                        double delta = 0.2,
                                        double haircut = 1.0e-13) {
  CountOptions o = DefaultOptions(seed, eps, delta);
  o.schedule = Schedule::kAcjr;
  o.calibration.ns_scale = haircut;
  return o;
}

}  // namespace bench
}  // namespace nfacount

#endif  // NFACOUNT_BENCH_BENCH_COMMON_HPP_
