// E2 — Samples maintained per (state, level) pair.
//
// Claim reproduced (abstract/intro): ACJR maintain O(m^7 n^7 / ε^7) samples
// per state; this paper maintains ~O(n^4/ε^2) — independent of m. The first
// table evaluates both closed-form schedules (no calibration) over a
// (m, n, ε) grid; the second measures the calibrated in-memory footprint of
// an actual engine run.

#include <cmath>

#include "automata/generators.hpp"
#include "bench_common.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

void ScheduleTable() {
  Section("E2a: closed-form per-state sample budgets (uncalibrated)");
  Row({"m", "n", "eps", "ns_faster", "ns_acjr", "acjr/faster"});
  const double delta = 0.1;
  struct Cell {
    int m, n;
    double eps;
  };
  for (const Cell& c : {Cell{4, 8, 0.5}, Cell{16, 8, 0.5}, Cell{64, 8, 0.5},
                        Cell{16, 4, 0.5}, Cell{16, 16, 0.5}, Cell{16, 32, 0.5},
                        Cell{16, 8, 1.0}, Cell{16, 8, 0.25}, Cell{16, 8, 0.125}}) {
    double fast = FasterScheduleNs(c.m, c.n, c.eps, delta);
    double acjr = AcjrScheduleNs(c.m, c.n, c.eps);
    Row({FmtInt(c.m), FmtInt(c.n), Fmt(c.eps, "%.3f"), Fmt(fast, "%.3e"),
         Fmt(acjr, "%.3e"), Fmt(acjr / fast, "%.3e")});
  }
  std::printf("(rows vary one knob at a time: ns_faster is flat in m — the\n"
              " paper's headline — while ns_acjr grows ~m^7)\n");
}

void MeasuredFootprint() {
  Section("E2b: measured calibrated footprint (Practical calibration)");
  Row({"m", "n", "ns", "xns", "samples_tot", "approx_MB"});
  Rng rng(3);
  for (int m : {6, 12, 24}) {
    Nfa nfa = RandomNfa(m, 0.25, 0.2, rng);
    const int n = 10;
    Result<FprasParams> params = FprasParams::Make(
        Schedule::kFaster, nfa.num_states(), n, 0.3, 0.2, Calibration::Practical());
    if (!params.ok()) continue;
    FprasEngine engine(&nfa, *params, 11);
    if (!engine.Run().ok()) continue;
    // Count stored samples and the bytes their flat per-cell slabs reserve
    // (symbol slab + reach-profile slab; see SampleBlock).
    int64_t total_samples = 0, bytes = 0;
    for (int level = 0; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        const SampleBlock& block = engine.SampleBlockFor(q, level);
        total_samples += block.count();
        bytes += block.bytes_reserved();
      }
    }
    Row({FmtInt(m), FmtInt(n), FmtInt(params->ns), FmtInt(params->xns),
         FmtInt(total_samples), Fmt(bytes / 1048576.0, "%.2f")});
  }
  std::printf("(ns is m-independent: the total grows only with the number of\n"
              " live (state, level) pairs)\n");
}

}  // namespace

int main() {
  std::printf("E2 — per-state sample complexity: n^4/eps^2 vs (mn/eps)^7\n");
  ScheduleTable();
  MeasuredFootprint();
  return 0;
}
