// E13 — Batched sampling plane: post-run draw throughput across lockstep
// batch widths, plus the bitset-kernel microbench.
//
// Claim measured: advancing B candidate walks in lockstep on the
// FrontierPlane amortizes the per-call union estimate and group-shares the
// per-level union-size lookups and predecessor expansions, so end-to-end
// sampler draws/sec grows with B — while the draw sequence stays
// bit-identical for every B (asserted here, not assumed). Family and sizes
// follow E3 (RandomNfa density 0.3, accept 0.25) at m = 64..128.
//
// The kernel section times the dispatched SIMD table against the scalar
// reference on the three frontier-row widths the engine actually touches.

#include <cinttypes>
#include <cstring>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

constexpr int kN = 12;                     // word length (E3 regime)
constexpr int kBatchWidths[] = {1, 4, 16, 64};
constexpr int kIdentityDraws = 200;        // draws compared bit-for-bit
constexpr int64_t kMinDraws = 1000;
constexpr double kMinSeconds = 0.25;

Nfa E3Automaton(int m) {
  Rng rng(2024);  // the E3 generator seed
  return RandomNfa(m, 0.3, 0.25, rng);
}

struct SweepPoint {
  int batch_width = 0;
  double build_seconds = 0.0;
  double draws_per_sec = 0.0;
  int64_t draws = 0;
  double estimate = 0.0;
  std::vector<Word> prefix;  // first kIdentityDraws draws
  FprasDiagnostics diag;
};

SweepPoint MeasureOne(const Nfa& nfa, int batch_width) {
  SweepPoint point;
  point.batch_width = batch_width;
  SamplerOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = 17;
  options.batch_width = batch_width;

  WallTimer build_timer;
  Result<WordSampler> sampler = WordSampler::Build(nfa, kN, options);
  point.build_seconds = build_timer.ElapsedSeconds();
  if (!sampler.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 sampler.status().ToString().c_str());
    std::exit(1);
  }
  point.estimate = sampler->CountEstimate();

  for (int i = 0; i < kIdentityDraws; ++i) {
    Result<Word> w = sampler->Sample();
    if (!w.ok()) {
      std::fprintf(stderr, "draw failed: %s\n", w.status().ToString().c_str());
      std::exit(1);
    }
    point.prefix.push_back(*std::move(w));
  }

  WallTimer timer;
  int64_t draws = 0;
  while (draws < kMinDraws || timer.ElapsedSeconds() < kMinSeconds) {
    if (!sampler->Sample().ok()) std::exit(1);
    ++draws;
  }
  const double seconds = timer.ElapsedSeconds();
  point.draws = draws;
  point.draws_per_sec = static_cast<double>(draws) / seconds;
  point.diag = sampler->diagnostics();
  return point;
}

double SweepFamily(int m, BenchReport* report) {
  Section("E13: e3 family m=" + std::to_string(m) + ", n=" +
          std::to_string(kN) + ", batch sweep");
  Nfa nfa = E3Automaton(m);
  Row({"B", "build_s", "draws", "draws/s", "speedup", "memo_hit%",
       "arena_KB", "arena_allocs"});

  std::vector<SweepPoint> points;
  for (int b : kBatchWidths) points.push_back(MeasureOne(nfa, b));
  const SweepPoint& base = points[0];

  double best_speedup = 0.0;
  for (const SweepPoint& p : points) {
    // Bit-identity across batch widths: same estimate, same draw sequence.
    if (p.estimate != base.estimate || p.prefix != base.prefix) {
      std::fprintf(stderr,
                   "FATAL: batch width %d changed the draw sequence at m=%d\n",
                   p.batch_width, m);
      std::exit(1);
    }
    const double speedup = p.draws_per_sec / base.draws_per_sec;
    best_speedup = std::max(best_speedup, speedup);
    const double memo_total =
        static_cast<double>(p.diag.memo_hits + p.diag.memo_misses);
    Row({FmtInt(p.batch_width), Fmt(p.build_seconds, "%.2f"),
         FmtInt(p.draws), Fmt(p.draws_per_sec, "%.0f"),
         Fmt(speedup, "%.2fx"),
         Fmt(memo_total > 0 ? 100.0 * p.diag.memo_hits / memo_total : 0.0,
             "%.1f"),
         Fmt(p.diag.arena_bytes_reserved / 1024.0, "%.1f"),
         FmtInt(p.diag.arena_alloc_events)});
    JsonObject row;
    row.Set("m", m)
        .Set("n", kN)
        .Set("batch_width", p.batch_width)
        .Set("build_seconds", p.build_seconds)
        .Set("draws", p.draws)
        .Set("draws_per_sec", p.draws_per_sec)
        .Set("speedup_vs_b1", speedup)
        .Set("estimate", p.estimate)
        .Set("bit_identical_to_b1", true)
        .Set("memo_hits", p.diag.memo_hits)
        .Set("memo_misses", p.diag.memo_misses)
        .Set("arena_bytes_reserved", p.diag.arena_bytes_reserved)
        .Set("arena_alloc_events", p.diag.arena_alloc_events)
        .Set("sample_calls", p.diag.sample_calls);
    report->AddRow("batch_sweep", std::move(row));
  }
  std::printf("best speedup at m=%d: %.2fx (draw sequences bit-identical "
              "across all B)\n", m, best_speedup);
  return best_speedup;
}

void KernelMicrobench(BenchReport* report) {
  Section("E13k: bitset kernel microbench (ns/op, dispatched vs scalar)");
  const simd::BitsetKernels& active = simd::ActiveKernels();
  const simd::BitsetKernels& scalar = simd::ScalarKernels();
  std::printf("active kernel table: %s\n", active.name);
  Row({"words", "kernel", "or_masked", "intersects", "popcount"});

  Rng rng(99);
  for (size_t words : {size_t{2}, size_t{16}, size_t{64}}) {
    std::vector<uint64_t> dst(words), src(words), mask(words);
    for (size_t i = 0; i < words; ++i) {
      dst[i] = rng.NextU64();
      src[i] = rng.NextU64();
      mask[i] = rng.NextU64();
    }
    for (const simd::BitsetKernels* k : {&active, &scalar}) {
      const int64_t iters = 2000000 / static_cast<int64_t>(words);
      WallTimer t1;
      for (int64_t i = 0; i < iters; ++i) {
        k->or_masked_into(dst.data(), src.data(), mask.data(), words);
      }
      const double or_masked_ns = t1.ElapsedSeconds() * 1e9 / iters;
      volatile bool sink = false;
      WallTimer t2;
      for (int64_t i = 0; i < iters; ++i) {
        sink = k->intersects(dst.data(), src.data(), words);
      }
      const double intersects_ns = t2.ElapsedSeconds() * 1e9 / iters;
      volatile size_t psink = 0;
      WallTimer t3;
      for (int64_t i = 0; i < iters; ++i) {
        psink = k->popcount(dst.data(), words);
      }
      const double popcount_ns = t3.ElapsedSeconds() * 1e9 / iters;
      (void)sink;
      (void)psink;
      Row({FmtInt(static_cast<int64_t>(words)), k->name,
           Fmt(or_masked_ns, "%.2f"), Fmt(intersects_ns, "%.2f"),
           Fmt(popcount_ns, "%.2f")});
      JsonObject row;
      row.Set("words", static_cast<int64_t>(words))
          .Set("kernel", k->name)
          .Set("or_masked_ns", or_masked_ns)
          .Set("intersects_ns", intersects_ns)
          .Set("popcount_ns", popcount_ns);
      report->AddRow("kernel_microbench", std::move(row));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E13 — batched sampling plane: draws/sec vs lockstep width B\n");
  BenchReport report("e13_batched_sampling");
  report.config()
      .Set("family", "RandomNfa(density=0.3, accept=0.25), E3 generator")
      .Set("n", kN)
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("seed", static_cast<int64_t>(17))
      .Set("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Set("active_kernels", simd::ActiveKernels().name);

  double best = 0.0;
  for (int m : {64, 96, 128}) {
    best = std::max(best, SweepFamily(m, &report));
  }
  KernelMicrobench(&report);
  report.metrics().Set("best_speedup_overall", best);

  std::printf("\nOverall best draws/sec speedup vs B=1: %.2fx\n", best);
  report.WriteTo(JsonPathArg(argc, argv));
  return 0;
}
