// E14 — Incremental sessions vs the recompute-from-level-0 policy.
//
// Serving scenario: a session answered queries at length n; work at length
// 2n arrives. The pre-session system recomputes every level 0..2n from
// scratch for each request (UnrolledNfa construction, level-0 base, the full
// sweep); the LevelState pipeline resumes the sweep at level n+1, serves
// every later query at 2n straight from the frozen tables, and survives
// process restarts through binary checkpoints. Measured on the E3 automaton
// family (RandomNfa(m, 0.3, 0.25), the time-scaling family) at m = 64..128,
// with bit-identity asserted between the extended, resumed, and recomputed
// sessions.
//
// Three metrics, one per amortization layer:
//   extend     t(recompute 0..2n) / t(extend n→2n) — the marginal sweep.
//              Structural note: per-level cost is non-decreasing in ℓ (a
//              refill walk at level ℓ descends ℓ levels), so this ratio is
//              mathematically capped at 2x and lands below it; the FPRAS's
//              own cost shape, not an implementation artifact.
//   resume     t(recompute 0..2n) / t(load checkpoint + answer at 2n) —
//              what a restart costs with vs without saved state.
//   requery    t(recompute 0..2n) / t(answer count + k draws from the live
//              tables) — the steady-state serving win the ROADMAP's
//              multi-query traffic sees per repeated request.

#include <string>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "fpras/fpras.hpp"

using namespace nfacount;
using namespace nfacount::bench;

namespace {

/// The E3 time-scaling automaton at m states (same constructor as
/// bench_e3_scaling_n.cpp, larger m).
Nfa E3Automaton(int m) {
  Rng rng(2024);
  return RandomNfa(m, 0.3, 0.25, rng);
}

constexpr int64_t kRequeryDraws = 8;

struct E14Row {
  int m = 0;
  int n = 0;
  double t_fresh = 0.0;         ///< Create + ExtendTo(2n) from nothing
  double t_first = 0.0;         ///< Create + ExtendTo(n) (the serving prefix)
  double t_extend = 0.0;        ///< ExtendTo(2n) on the live session
  double t_save = 0.0;          ///< checkpoint serialization + write (at 2n)
  double t_resume = 0.0;        ///< load + CountAtLength(2n) on the restart
  double t_requery = 0.0;       ///< count + kRequeryDraws draws, live tables
  int64_t ckpt_bytes = 0;
  bool identical = false;       ///< extended == resumed == recomputed
  double estimate = 0.0;
};

E14Row MeasureOne(int m, int n, uint64_t seed, const std::string& tmp_dir) {
  E14Row row;
  row.m = m;
  row.n = n;
  const int horizon = 2 * n;
  Nfa nfa = E3Automaton(m);
  CountOptions options = DefaultOptions(seed);

  // Recompute baseline: rebuild everything from level 0 at the moment the
  // 2n request arrives — construction included, exactly what a session-less
  // server pays per request.
  WallTimer fresh_timer;
  Result<EngineSession> fresh = EngineSession::Create(nfa, horizon, options);
  if (!fresh.ok() || !fresh->ExtendTo(horizon).ok()) return row;
  row.t_fresh = fresh_timer.ElapsedSeconds();

  // Incremental: the session that already served length n extends in place.
  WallTimer first_timer;
  Result<EngineSession> session = EngineSession::Create(nfa, horizon, options);
  if (!session.ok() || !session->ExtendTo(n).ok()) return row;
  row.t_first = first_timer.ElapsedSeconds();

  WallTimer extend_timer;
  if (!session->ExtendTo(horizon).ok()) return row;
  row.t_extend = extend_timer.ElapsedSeconds();

  // Checkpoint the fully-extended session; a restarted process then answers
  // at 2n from disk instead of recomputing the sweep.
  const std::string ckpt = tmp_dir + "/e14_m" + std::to_string(m) + ".ckpt";
  WallTimer save_timer;
  if (!session->Save(ckpt).ok()) return row;
  row.t_save = save_timer.ElapsedSeconds();

  WallTimer resume_timer;
  Result<EngineSession> resumed = EngineSession::Load(ckpt);
  if (!resumed.ok()) return row;
  Result<double> resumed_estimate = resumed->CountAtLength(horizon);
  if (!resumed_estimate.ok()) return row;
  row.t_resume = resume_timer.ElapsedSeconds();

  // Steady-state re-query against the live tables: one count refresh plus a
  // batch of almost-uniform draws (the JVV sampling application).
  WallTimer requery_timer;
  Result<double> requery_estimate = session->CountAtLength(horizon);
  Result<std::vector<Word>> draws =
      session->SampleWords(horizon, kRequeryDraws);
  if (!requery_estimate.ok() || !draws.ok()) return row;
  row.t_requery = requery_timer.ElapsedSeconds();

  {
    std::FILE* f = std::fopen(ckpt.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      row.ckpt_bytes = std::ftell(f);
      std::fclose(f);
    }
    std::remove(ckpt.c_str());
  }

  // Bit-identity across all three paths, at both the original and the
  // extended length.
  Result<double> fresh_2n = fresh->CountAtLength(horizon);
  Result<double> ext_2n = session->CountAtLength(horizon);
  Result<double> fresh_n = fresh->CountAtLength(n);
  Result<double> ext_n = session->CountAtLength(n);
  row.identical = fresh_2n.ok() && ext_2n.ok() && fresh_n.ok() &&
                  ext_n.ok() && *fresh_2n == *ext_2n &&
                  *fresh_2n == *resumed_estimate && *fresh_n == *ext_n;
  row.estimate = ext_2n.ok() ? *ext_2n : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("e14_incremental");
  const uint64_t seed = 20240614;
  const int n = 6;  // extension n -> 2n; E3 family sweeps m
  const std::string tmp_dir = ".";

  std::printf("E14 — incremental sessions vs recompute-from-level-0\n");
  std::printf("(E3 family, eps=0.3 delta=0.2, horizon=2n, n=%d, seed=%llu)\n",
              n, static_cast<unsigned long long>(seed));

  report.config()
      .Set("family", "E3 RandomNfa(m, 0.3, 0.25)")
      .Set("n", n)
      .Set("horizon", 2 * n)
      .Set("eps", 0.3)
      .Set("delta", 0.2)
      .Set("requery_draws", kRequeryDraws)
      .Set("seed", seed);

  Section("extend / resume / requery vs recompute (times in seconds)");
  Row({"m", "recompute", "extend", "x_extend", "resume", "x_resume",
       "requery", "x_requery", "ckpt_KiB", "identical"},
      /*width=*/11);
  double min_extend = 1e300, min_resume = 1e300, min_requery = 1e300;
  for (int m : {64, 96, 128}) {
    E14Row r = MeasureOne(m, n, seed, tmp_dir);
    const double x_extend = r.t_extend > 0.0 ? r.t_fresh / r.t_extend : 0.0;
    const double x_resume = r.t_resume > 0.0 ? r.t_fresh / r.t_resume : 0.0;
    const double x_requery =
        r.t_requery > 0.0 ? r.t_fresh / r.t_requery : 0.0;
    min_extend = std::min(min_extend, x_extend);
    min_resume = std::min(min_resume, x_resume);
    min_requery = std::min(min_requery, x_requery);
    Row({FmtInt(r.m), Fmt(r.t_fresh, "%.2f"), Fmt(r.t_extend, "%.2f"),
         Fmt(x_extend, "%.2fx"), Fmt(r.t_resume, "%.3f"),
         Fmt(x_resume, "%.0fx"), Fmt(r.t_requery, "%.3f"),
         Fmt(x_requery, "%.0fx"), FmtInt(r.ckpt_bytes / 1024),
         r.identical ? "yes" : "NO"},
        /*width=*/11);
    JsonObject row;
    row.Set("m", r.m)
        .Set("n", r.n)
        .Set("horizon", 2 * r.n)
        .Set("t_recompute_seconds", r.t_fresh)
        .Set("t_first_half_seconds", r.t_first)
        .Set("t_extend_seconds", r.t_extend)
        .Set("t_save_seconds", r.t_save)
        .Set("t_resume_answer_seconds", r.t_resume)
        .Set("t_requery_seconds", r.t_requery)
        .Set("speedup_extend_vs_recompute", x_extend)
        .Set("speedup_resume_vs_recompute", x_resume)
        .Set("speedup_requery_vs_recompute", x_requery)
        .Set("checkpoint_bytes", r.ckpt_bytes)
        .Set("bit_identical", r.identical)
        .Set("estimate_2n", r.estimate);
    report.AddRow("incremental", std::move(row));
  }
  report.metrics()
      .Set("min_speedup_extend", min_extend)
      .Set("min_speedup_resume", min_resume)
      .Set("min_speedup_requery", min_requery);

  std::printf(
      "\nReading: 'recompute' rebuilds levels 0..2n from nothing — the\n"
      "per-request cost of the recompute-from-level-0 policy. 'extend'\n"
      "resumes the live sweep at level n+1 (capped below 2x structurally:\n"
      "level-ℓ refill walks descend ℓ levels, so the upper half of the sweep\n"
      "costs at least as much as the lower half). 'resume' answers at 2n\n"
      "from a loaded checkpoint; 'requery' answers count + %lld draws from\n"
      "the live tables — these are the >=2x amortization wins, by orders of\n"
      "magnitude.\n",
      static_cast<long long>(kRequeryDraws));

  report.WriteTo(JsonPathArg(argc, argv));
  return 0;
}
