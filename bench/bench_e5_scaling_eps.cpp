// E5 — Time scaling in the accuracy parameter 1/ε.
//
// Claim reproduced: ε⁻⁴ total dependence for this paper (ε⁻² from the sample
// budget × ε⁻² from AppUnion trials) versus ε⁻¹⁴ for ACJR — measured as
// log-log slopes of runtime against 1/ε, with the measured relative error
// shown to confirm the extra work buys accuracy.

#include <cmath>
#include <vector>

#include "automata/generators.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace nfacount;
using namespace nfacount::bench;

int main() {
  std::printf("E5 — runtime scaling in 1/eps (m=6, n=10)\n");

  Rng rng(55);
  Nfa nfa = RandomNfa(6, 0.3, 0.25, rng);
  const int n = 10;
  const double truth = ExactOrNeg(nfa, n);

  // Sweep ranges start where the calibrated budgets clear their floors so
  // the slopes reflect the ε-structure of the schedules.
  Section("E5a: faster schedule, eps sweep");
  Row({"eps", "seconds", "relerr", "ns", "appunion_trials"});
  std::vector<double> xs, ys;
  for (double eps : {0.5, 0.35, 0.25, 0.18, 0.125}) {
    TimedRun run = RunFpras(nfa, n, DefaultOptions(31, eps, 0.2));
    double relerr = truth > 0 ? std::abs(run.estimate / truth - 1.0) : 0.0;
    Row({Fmt(eps, "%.3f"), Fmt(run.seconds, "%.4f"), Fmt(relerr, "%.4f"),
         FmtInt(run.params.ns), FmtInt(run.diag.appunion_trials)});
    xs.push_back(1.0 / eps);
    ys.push_back(std::max(run.seconds, 1e-6));
  }
  std::printf("fitted log-log slope (time ~ (1/eps)^k): k = %.2f\n",
              LogLogSlope(xs, ys));

  Section("E5b: ACJR-style schedule (haircut 1e-12), m=6, n=8, eps sweep");
  Rng rng2(56);
  Nfa small = RandomNfa(6, 0.4, 0.3, rng2);
  std::vector<double> xs2, ys2;
  Row({"eps", "seconds", "ns"});
  for (double eps : {0.5, 0.4, 0.3, 0.25}) {
    TimedRun run = RunFpras(small, 8, AcjrFeasibleOptions(32, eps, 0.2, 1e-12));
    Row({Fmt(eps, "%.3f"), Fmt(run.seconds, "%.4f"), FmtInt(run.params.ns)});
    xs2.push_back(1.0 / eps);
    ys2.push_back(std::max(run.seconds, 1e-6));
  }
  std::printf("fitted log-log slope (time ~ (1/eps)^k): k = %.2f (κ^7 budget)\n",
              LogLogSlope(xs2, ys2));

  std::printf("\nShape check: the ACJR slope is far above the faster slope,\n"
              "consistent with the eps^-7-per-state budget (eps^-14 total)\n"
              "versus eps^-2 per state (eps^-4 total) of this paper.\n");
  return 0;
}
