# Resolve a GoogleTest dependency without assuming network access.
#
# Resolution order:
#   1. An installed package (find_package(GTest)) — e.g. Debian's libgtest-dev
#      built binaries, or a vcpkg/conan toolchain file.
#   2. Vendored / distro sources (e.g. /usr/src/googletest on Debian/Ubuntu
#      when only the source half of libgtest-dev is present), built in-tree.
#   3. FetchContent from GitHub — the only step that needs the network; pinned
#      to a release tag so CI caching is stable.
#
# Defines the imported targets GTest::gtest and GTest::gtest_main either way.

if(TARGET GTest::gtest)
  return()
endif()

find_package(GTest QUIET)
if(GTest_FOUND)
  message(STATUS "nfacount: using installed GoogleTest (${GTEST_INCLUDE_DIRS})")
  return()
endif()

set(NFACOUNT_GTEST_SOURCE_DIR "/usr/src/googletest" CACHE PATH
  "Fallback GoogleTest source tree used when no installed package is found")
if(EXISTS "${NFACOUNT_GTEST_SOURCE_DIR}/CMakeLists.txt")
  message(STATUS
    "nfacount: building GoogleTest from ${NFACOUNT_GTEST_SOURCE_DIR}")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  # For shared-CRT consistency on Windows; harmless elsewhere.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  add_subdirectory("${NFACOUNT_GTEST_SOURCE_DIR}"
    "${CMAKE_BINARY_DIR}/_deps/googletest-build" EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  return()
endif()

message(STATUS "nfacount: fetching GoogleTest v1.14.0 via FetchContent")
include(FetchContent)
FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
