// Property-based sweeps: randomized structural invariants that must hold for
// every automaton/regex/run, checked over seeded grids. These complement the
// per-module unit tests with cross-cutting algebraic laws.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "automata/dfa.hpp"
#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

// ---------------------------------------------------------------------------
// Random regex generation (for compiler fuzzing against the AST matcher)
// ---------------------------------------------------------------------------

std::string RandomRegex(Rng& rng, int depth, int alphabet) {
  if (depth <= 0 || rng.Bernoulli(0.35)) {
    // Leaf: symbol, dot, or class.
    double u = rng.UniformDouble();
    if (u < 0.6) {
      return std::string(1, SymbolToChar(static_cast<Symbol>(
                                rng.UniformU64(alphabet))));
    }
    if (u < 0.8) return ".";
    std::string cls = "[";
    if (rng.Bernoulli(0.3)) cls += "^";
    int count = 1 + static_cast<int>(rng.UniformU64(alphabet));
    for (int i = 0; i < count; ++i) {
      cls += SymbolToChar(static_cast<Symbol>(rng.UniformU64(alphabet)));
    }
    return cls + "]";
  }
  switch (rng.UniformU64(6)) {
    case 0:
      return RandomRegex(rng, depth - 1, alphabet) +
             RandomRegex(rng, depth - 1, alphabet);
    case 1:
      return "(" + RandomRegex(rng, depth - 1, alphabet) + "|" +
             RandomRegex(rng, depth - 1, alphabet) + ")";
    case 2:
      return "(" + RandomRegex(rng, depth - 1, alphabet) + ")*";
    case 3:
      return "(" + RandomRegex(rng, depth - 1, alphabet) + ")+";
    case 4:
      return "(" + RandomRegex(rng, depth - 1, alphabet) + ")?";
    default: {
      int lo = static_cast<int>(rng.UniformU64(3));
      int hi = lo + static_cast<int>(rng.UniformU64(3));
      return "(" + RandomRegex(rng, depth - 1, alphabet) + "){" +
             std::to_string(lo) + "," + std::to_string(hi) + "}";
    }
  }
}

class RegexFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RegexFuzz, CompiledNfaAgreesWithAstMatcherOnAllShortWords) {
  Rng rng(TestSeed(1000 + GetParam()));
  const int alphabet = 2 + GetParam() % 2;
  std::string pattern = RandomRegex(rng, 3, alphabet);
  SCOPED_TRACE(pattern);
  Result<std::unique_ptr<RegexNode>> ast = ParseRegex(pattern, alphabet);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  Nfa nfa = CompileRegexAst(*ast.value(), alphabet);

  Word w;
  const int max_len = 6;
  // Iterate all words up to max_len via odometer per length.
  for (int n = 0; n <= max_len; ++n) {
    w.assign(n, 0);
    int64_t total = 1;
    for (int i = 0; i < n; ++i) total *= alphabet;
    for (int64_t x = 0; x < total; ++x) {
      int64_t v = x;
      for (int i = 0; i < n; ++i) {
        w[i] = static_cast<Symbol>(v % alphabet);
        v /= alphabet;
      }
      ASSERT_EQ(nfa.Accepts(w), RegexMatches(*ast.value(), w))
          << "pattern=" << pattern << " word=" << WordToString(w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexFuzz, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Counting algebra over random automata
// ---------------------------------------------------------------------------

class CountingAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CountingAlgebra, InclusionExclusionAcrossUnionAndIntersection) {
  // |L_n(A)| + |L_n(B)| = |L_n(A ∪ B)| + |L_n(A ∩ B)| for every n.
  Rng rng(TestSeed(2000 + GetParam()));
  Nfa a = RandomNfa(5, 0.3, 0.3, rng);
  Nfa b = RandomNfa(4, 0.35, 0.3, rng);
  Nfa u = Union(a, b);
  Nfa i = Intersect(a, b);
  for (int n = 0; n <= 7; ++n) {
    BigUint lhs = BruteForceCount(a, n).value() + BruteForceCount(b, n).value();
    BigUint rhs = BruteForceCount(u, n).value() + BruteForceCount(i, n).value();
    EXPECT_EQ(lhs, rhs) << "n=" << n;
  }
}

TEST_P(CountingAlgebra, ReversePreservesCounts) {
  Rng rng(TestSeed(3000 + GetParam()));
  Nfa a = RandomNfa(5, 0.3, 0.3, rng);
  Nfa r = Reverse(a);
  for (int n = 0; n <= 7; ++n) {
    EXPECT_EQ(BruteForceCount(a, n).value(), BruteForceCount(r, n).value())
        << "n=" << n;
  }
}

TEST_P(CountingAlgebra, ComplementCountsSumToAlphabetPower) {
  Rng rng(TestSeed(4000 + GetParam()));
  Nfa a = RandomNfa(5, 0.3, 0.3, rng);
  Result<Dfa> dfa = Determinize(a);
  ASSERT_TRUE(dfa.ok());
  Dfa comp = Complement(*dfa);
  for (int n = 0; n <= 16; ++n) {
    EXPECT_EQ(dfa->CountWordsOfLength(n) + comp.CountWordsOfLength(n),
              BigUint::Pow2(static_cast<uint32_t>(n)));
  }
}

TEST_P(CountingAlgebra, MinimizationPreservesCounts) {
  Rng rng(TestSeed(5000 + GetParam()));
  Nfa a = RandomNfa(6, 0.25, 0.3, rng);
  Result<Dfa> dfa = Determinize(a);
  ASSERT_TRUE(dfa.ok());
  Dfa min = Minimize(*dfa);
  for (int n = 0; n <= 12; ++n) {
    EXPECT_EQ(dfa->CountWordsOfLength(n), min.CountWordsOfLength(n));
  }
}

TEST_P(CountingAlgebra, TextRoundTripPreservesCounts) {
  Rng rng(TestSeed(6000 + GetParam()));
  Nfa a = RandomNfa(5, 0.3, 0.3, rng);
  Result<Nfa> round = ParseNfaText(NfaToText(a));
  ASSERT_TRUE(round.ok());
  for (int n = 0; n <= 8; ++n) {
    EXPECT_EQ(BruteForceCount(a, n).value(),
              BruteForceCount(*round, n).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingAlgebra, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// FPRAS invariants under randomized instances
// ---------------------------------------------------------------------------

class FprasProperties : public ::testing::TestWithParam<int> {};

TEST_P(FprasProperties, EstimateNonNegativeFiniteAndSeedStable) {
  Rng rng(TestSeed(7000 + GetParam()));
  Nfa a = RandomNfa(4 + GetParam() % 4, 0.3, 0.3, rng);
  CountOptions options;
  options.eps = 0.4;
  options.delta = 0.25;
  options.seed = TestSeed(42 + GetParam());
  Result<CountEstimate> r1 = ApproxCount(a, 6, options);
  Result<CountEstimate> r2 = ApproxCount(a, 6, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(std::isfinite(r1->estimate));
  EXPECT_GE(r1->estimate, 0.0);
  EXPECT_DOUBLE_EQ(r1->estimate, r2->estimate);
}

TEST_P(FprasProperties, EstimateZeroIffLanguageEmpty) {
  Rng rng(TestSeed(8000 + GetParam()));
  Nfa a = RandomNfa(5, 0.2, 0.15, rng);
  const int n = 6;
  Result<BigUint> exact = BruteForceCount(a, n);
  ASSERT_TRUE(exact.ok());
  CountOptions options;
  options.eps = 0.4;
  options.delta = 0.25;
  options.seed = TestSeed(5 + GetParam());
  Result<CountEstimate> r = ApproxCount(a, n, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->estimate == 0.0, exact->IsZero());
}

TEST_P(FprasProperties, SchedulesAgreeWithinTolerance) {
  Rng rng(TestSeed(9000 + GetParam()));
  Nfa a = RandomNfa(4, 0.35, 0.3, rng);
  const int n = 6;
  Result<BigUint> exact = BruteForceCount(a, n);
  ASSERT_TRUE(exact.ok());
  if (exact->IsZero()) return;
  const double truth = exact->ToDouble();
  CountOptions options;
  options.eps = 0.4;
  options.delta = 0.25;
  options.seed = TestSeed(77 + GetParam());
  options.calibration.ns_scale = 1e-11;  // keep the κ⁷ budget feasible
  Result<CountEstimate> fast = ApproxCount(a, n, options);
  Result<CountEstimate> acjr = ApproxCountAcjr(a, n, options);
  ASSERT_TRUE(fast.ok() && acjr.ok());
  EXPECT_NEAR(fast->estimate / truth, 1.0, 0.8);
  EXPECT_NEAR(acjr->estimate / truth, 1.0, 0.8);
}

TEST_P(FprasProperties, AllLengthsMonotoneUnderPrefixClosedLanguages) {
  // For the substring family the language slice sizes are nondecreasing in n
  // (any accepted word extends to an accepted longer one, and counts grow).
  Word pattern{1, static_cast<Symbol>(GetParam() % 2)};
  Nfa a = SubstringNfa(pattern);
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(88 + GetParam());
  Result<std::vector<double>> lengths = ApproxCountAllLengths(a, 9, options);
  ASSERT_TRUE(lengths.ok());
  for (size_t i = 3; i < lengths->size(); ++i) {
    EXPECT_GE((*lengths)[i] * 1.6, (*lengths)[i - 1])
        << "slice sizes should not collapse (i=" << i << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FprasProperties, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Sampler properties
// ---------------------------------------------------------------------------

class SamplerProperties : public ::testing::TestWithParam<int> {};

TEST_P(SamplerProperties, EverySampleIsAccepted) {
  Rng rng(TestSeed(10000 + GetParam()));
  Nfa a = RandomNfa(5, 0.3, 0.35, rng);
  const int n = 6;
  Result<BigUint> exact = BruteForceCount(a, n);
  ASSERT_TRUE(exact.ok());
  if (exact->IsZero()) return;
  SamplerOptions options;
  options.eps = 0.35;
  options.delta = 0.25;
  options.seed = TestSeed(3 + GetParam());
  Result<WordSampler> sampler = WordSampler::Build(a, n, options);
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 60; ++i) {
    Result<Word> w = sampler.value().Sample();
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(a.Accepts(w.value())) << WordToString(w.value());
    EXPECT_EQ(static_cast<int>(w.value().size()), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerProperties, ::testing::Range(0, 10));

}  // namespace
}  // namespace nfacount
