// Tests for the flat CSR transition layout and the batched membership path:
// construction equivalence against the legacy per-state adjacency, PredSet
// equivalence on random frontiers, per-level counts cross-checked against the
// exact subset DP, MembershipBatch prefix coverage, and end-to-end engine
// equality between the CSR and legacy hot paths (both consume the same RNG
// stream, so estimates must match bit-for-bit).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "automata/generators.hpp"
#include "automata/unrolled.hpp"
#include "counting/exact.hpp"
#include "counting/union_mc.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

// CSR rows must list exactly the legacy adjacency, in the same order.
TEST(Csr, RowsMatchLegacyAdjacency) {
  Rng rng(TestSeed(101));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa nfa = RandomNfa(5 + static_cast<int>(rng.UniformU64(12)), 0.25, 0.3, rng);
    CsrTransitions fwd = CsrTransitions::FromSuccessors(nfa);
    CsrTransitions bwd = CsrTransitions::FromPredecessors(nfa);
    ASSERT_EQ(fwd.num_states, nfa.num_states());
    ASSERT_EQ(fwd.alphabet_size, nfa.alphabet_size());
    ASSERT_EQ(static_cast<int64_t>(fwd.targets.size()), nfa.num_transitions());
    ASSERT_EQ(static_cast<int64_t>(bwd.targets.size()), nfa.num_transitions());
    ASSERT_EQ(fwd.targets.size(), fwd.symbols.size());
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      for (int a = 0; a < nfa.alphabet_size(); ++a) {
        const Symbol s = static_cast<Symbol>(a);
        std::vector<StateId> fwd_row(fwd.RowBegin(q, s), fwd.RowEnd(q, s));
        EXPECT_EQ(fwd_row, nfa.Successors(q, s)) << "q=" << q << " a=" << a;
        std::vector<StateId> bwd_row(bwd.RowBegin(q, s), bwd.RowEnd(q, s));
        EXPECT_EQ(bwd_row, nfa.Predecessors(q, s)) << "q=" << q << " a=" << a;
        for (const StateId* e = fwd.RowBegin(q, s); e != fwd.RowEnd(q, s); ++e) {
          EXPECT_EQ(fwd.symbols[static_cast<size_t>(e - fwd.targets.data())], s);
        }
      }
    }
  }
}

// Row masks (when materialized) hold exactly the row's target set, and
// StepInto equals the legacy one-step image either way.
TEST(Csr, StepIntoMatchesNfaStep) {
  Rng rng(TestSeed(102));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa nfa = RandomNfa(4 + static_cast<int>(rng.UniformU64(16)), 0.3, 0.3, rng);
    CsrTransitions fwd = CsrTransitions::FromSuccessors(nfa);
    ASSERT_TRUE(fwd.has_masks());  // tiny automata are always under budget
    Bitset out(nfa.num_states());
    for (int rep = 0; rep < 10; ++rep) {
      Bitset from(nfa.num_states());
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        if (rng.Bernoulli(0.3)) from.Set(q);
      }
      for (int a = 0; a < nfa.alphabet_size(); ++a) {
        fwd.StepInto(from, static_cast<Symbol>(a), &out);
        EXPECT_EQ(out, nfa.Step(from, static_cast<Symbol>(a)));
      }
    }
  }
}

// The CSR predecessor expansion must equal the legacy pointer-walk expansion
// for every level and random frontier.
TEST(Csr, PredSetMatchesLegacy) {
  Rng rng(TestSeed(103));
  for (int trial = 0; trial < 6; ++trial) {
    Nfa nfa = RandomNfa(6 + static_cast<int>(rng.UniformU64(10)), 0.25, 0.3, rng);
    const int n = 7;
    UnrolledNfa unr(&nfa, n);
    Bitset out(nfa.num_states());
    for (int level = 1; level <= n; ++level) {
      for (int rep = 0; rep < 6; ++rep) {
        Bitset frontier(nfa.num_states());
        for (StateId q = 0; q < nfa.num_states(); ++q) {
          if (rng.Bernoulli(0.4)) frontier.Set(q);
        }
        for (int a = 0; a < nfa.alphabet_size(); ++a) {
          const Symbol s = static_cast<Symbol>(a);
          Bitset legacy = unr.PredSetLegacy(frontier, s, level);
          EXPECT_EQ(unr.PredSet(frontier, s, level), legacy);
          unr.PredSetInto(frontier, s, level, &out);
          EXPECT_EQ(out, legacy);
        }
      }
    }
  }
}

// Level reachability built on the CSR must agree with a from-scratch legacy
// computation (Nfa::Step) and with per-level counts under the exact DP:
// |L(q^ℓ)| > 0 exactly for the reachable copies.
TEST(Csr, ReachableSetsAndLevelCountsMatchExact) {
  Rng rng(TestSeed(104));
  for (int trial = 0; trial < 5; ++trial) {
    Nfa nfa = RandomNfa(6, 0.25, 0.3, rng);
    const int n = 6;
    UnrolledNfa unr(&nfa, n);

    // Legacy recomputation of the level frontiers.
    Bitset cur(nfa.num_states());
    cur.Set(nfa.initial());
    EXPECT_EQ(unr.ReachableAt(0), cur);
    for (int level = 1; level <= n; ++level) {
      Bitset next(nfa.num_states());
      for (int a = 0; a < nfa.alphabet_size(); ++a) {
        next |= nfa.Step(cur, static_cast<Symbol>(a));
      }
      EXPECT_EQ(unr.ReachableAt(level), next) << "level=" << level;
      cur = next;
    }

    Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
    ASSERT_TRUE(dp.ok());
    for (int level = 0; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        const bool nonempty = !dp->StateLevelCount(q, level).IsZero();
        EXPECT_EQ(unr.IsReachable(q, level), nonempty)
            << "trial=" << trial << " q=" << q << " level=" << level;
      }
    }
  }
}

// Reach profiles computed by forward-CSR stepping must match Nfa::Reach.
TEST(Csr, ReachProfileMatchesNfaReach) {
  Rng rng(TestSeed(105));
  Nfa nfa = RandomNfa(9, 0.3, 0.3, rng);
  UnrolledNfa unr(&nfa, 6);
  for (int trial = 0; trial < 40; ++trial) {
    Word w;
    const int len = static_cast<int>(rng.UniformU64(7));
    for (int i = 0; i < len; ++i) {
      w.push_back(static_cast<Symbol>(rng.UniformU64(2)));
    }
    EXPECT_EQ(unr.ReachProfile(w), nfa.Reach(w)) << WordToString(w);
  }
}

// MembershipBatch::CoveredBefore must equal the naive prefix loop.
TEST(Csr, MembershipBatchMatchesNaivePrefixScan) {
  Rng rng(TestSeed(106));
  const size_t universe = 70;  // straddles a word boundary
  for (int trial = 0; trial < 10; ++trial) {
    const int k = 1 + static_cast<int>(rng.UniformU64(12));
    std::vector<int> owners;
    for (int i = 0; i < k; ++i) {
      owners.push_back(static_cast<int>(rng.UniformU64(universe)));
    }
    MembershipBatch batch;
    batch.Rebuild(universe, owners);
    ASSERT_EQ(batch.size(), static_cast<size_t>(k));
    for (int rep = 0; rep < 20; ++rep) {
      Bitset profile(universe);
      for (size_t b = 0; b < universe; ++b) {
        if (rng.Bernoulli(0.1)) profile.Set(b);
      }
      for (int i = 1; i < k; ++i) {
        bool naive = false;
        for (int j = 0; j < i && !naive; ++j) {
          naive = profile.Test(static_cast<size_t>(owners[j]));
        }
        EXPECT_EQ(batch.CoveredBefore(profile, static_cast<size_t>(i)), naive)
            << "trial=" << trial << " i=" << i;
      }
    }
  }
}

// The CSR hot path and the legacy layout consume identical RNG streams, so a
// full FPRAS run must produce the exact same estimate and trial counts under
// both — the strongest form of construction equivalence.
TEST(Csr, EngineEstimateIdenticalAcrossLayouts) {
  Rng rng(TestSeed(107));
  for (int trial = 0; trial < 3; ++trial) {
    Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
    const int n = 7;
    CountOptions csr_opts;
    csr_opts.seed = TestSeed(108) + trial;
    CountOptions legacy_opts = csr_opts;
    legacy_opts.csr_hot_path = false;

    Result<CountEstimate> with_csr = ApproxCount(nfa, n, csr_opts);
    Result<CountEstimate> with_legacy = ApproxCount(nfa, n, legacy_opts);
    ASSERT_TRUE(with_csr.ok());
    ASSERT_TRUE(with_legacy.ok());
    EXPECT_EQ(with_csr->estimate, with_legacy->estimate) << "trial=" << trial;
    EXPECT_EQ(with_csr->diagnostics.appunion_trials,
              with_legacy->diagnostics.appunion_trials);
    EXPECT_EQ(with_csr->diagnostics.sample_calls,
              with_legacy->diagnostics.sample_calls);
    EXPECT_EQ(with_csr->diagnostics.padded_words,
              with_legacy->diagnostics.padded_words);
  }
}

// Same equality through the sampler facade: the draw sequence is unchanged.
TEST(Csr, SamplerDrawsIdenticalAcrossLayouts) {
  Rng rng(TestSeed(109));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  SamplerOptions csr_opts;
  csr_opts.seed = TestSeed(110);
  SamplerOptions legacy_opts = csr_opts;
  legacy_opts.csr_hot_path = false;

  Result<WordSampler> a = WordSampler::Build(nfa, 6, csr_opts);
  Result<WordSampler> b = WordSampler::Build(nfa, 6, legacy_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->CountEstimate(), b->CountEstimate());
  for (int i = 0; i < 10; ++i) {
    Result<Word> wa = a->Sample();
    Result<Word> wb = b->Sample();
    ASSERT_TRUE(wa.ok());
    ASSERT_TRUE(wb.ok());
    EXPECT_EQ(*wa, *wb) << "draw " << i;
  }
}

// SampleStored must return the drawn word's true reach profile.
TEST(Csr, SampleStoredCarriesReachProfile) {
  Rng rng(TestSeed(111));
  Nfa nfa = RandomNfa(6, 0.35, 0.4, rng);
  SamplerOptions opts;
  opts.seed = TestSeed(112);
  Result<WordSampler> sampler = WordSampler::Build(nfa, 5, opts);
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 8; ++i) {
    Result<StoredSample> s = sampler->SampleStored();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->reach, nfa.Reach(s->word)) << WordToString(s->word);
    EXPECT_TRUE(s->reach.Intersects(nfa.accepting()));
  }
}

}  // namespace
}  // namespace nfacount
