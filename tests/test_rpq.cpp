// Tests for regular path queries: product construction semantics, answer
// counting against brute-force enumeration, up-to-length counting, answer
// sampling, and witness-path extraction.

#include <gtest/gtest.h>

#include <set>

#include "apps/rpq.hpp"
#include "automata/regex.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

// Small social-style graph over labels {0: "knows", 1: "works_with"}.
GraphDb DemoGraph() {
  GraphDb db(6, 2);
  EXPECT_TRUE(db.AddEdge(0, 0, 1).ok());
  EXPECT_TRUE(db.AddEdge(1, 0, 2).ok());
  EXPECT_TRUE(db.AddEdge(2, 0, 0).ok());
  EXPECT_TRUE(db.AddEdge(0, 1, 3).ok());
  EXPECT_TRUE(db.AddEdge(3, 1, 4).ok());
  EXPECT_TRUE(db.AddEdge(4, 0, 5).ok());
  EXPECT_TRUE(db.AddEdge(1, 1, 5).ok());
  EXPECT_TRUE(db.AddEdge(5, 0, 5).ok());
  return db;
}

// All label words of length n realizable from src to dst that the regex
// matches — brute force over words, path-checked via WitnessPaths.
std::set<Word> BruteForceAnswers(const GraphDb& db, int src, int dst,
                                 const std::string& regex, int n) {
  auto ast = ParseRegex(regex, db.num_labels());
  EXPECT_TRUE(ast.ok());
  std::set<Word> out;
  Word w(n, 0);
  int64_t total = 1;
  for (int i = 0; i < n; ++i) total *= db.num_labels();
  for (int64_t x = 0; x < total; ++x) {
    int64_t v = x;
    for (int i = 0; i < n; ++i) {
      w[i] = static_cast<Symbol>(v % db.num_labels());
      v /= db.num_labels();
    }
    if (!RegexMatches(*ast.value(), w)) continue;
    Result<std::vector<std::vector<int>>> paths = WitnessPaths(db, src, dst, w, 1);
    EXPECT_TRUE(paths.ok());
    if (!paths->empty()) out.insert(w);
  }
  return out;
}

TEST(GraphDb, EdgeValidation) {
  GraphDb db(3, 2);
  EXPECT_FALSE(db.AddEdge(3, 0, 0).ok());
  EXPECT_FALSE(db.AddEdge(0, 2, 0).ok());
  EXPECT_TRUE(db.AddEdge(0, 1, 2).ok());
  EXPECT_EQ(db.num_edges(), 1);
  EXPECT_EQ(db.Neighbors(0, 1), std::vector<int>{2});
}

TEST(GraphDb, ToNfaSimulatesGraph) {
  GraphDb db = DemoGraph();
  Result<Nfa> nfa = db.ToNfa(0, 5);
  ASSERT_TRUE(nfa.ok());
  // 0 -1-> 3 -1-> 4 -0-> 5 is a path: word "110".
  EXPECT_TRUE(nfa->Accepts(Word{1, 1, 0}));
  // 0 -0-> 1 -0-> 2: ends at 2, not 5.
  EXPECT_FALSE(nfa->Accepts(Word{0, 0}));
  EXPECT_FALSE(db.ToNfa(-1, 5).ok());
  EXPECT_FALSE(db.ToNfa(0, 6).ok());
}

TEST(Product, LanguageIsGraphWordsIntersectRegex) {
  GraphDb db = DemoGraph();
  const std::string regex = "(0|1)*0";  // anything ending with label 0
  Result<Nfa> product = BuildRpqProduct(db, 0, 5, regex);
  ASSERT_TRUE(product.ok());
  for (int n = 1; n <= 6; ++n) {
    std::set<Word> expect = BruteForceAnswers(db, 0, 5, regex, n);
    Result<std::vector<Word>> got = EnumerateAccepted(*product, n);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::set<Word>(got->begin(), got->end()), expect) << "n=" << n;
  }
}

TEST(CountRpq, MatchesBruteForce) {
  GraphDb db = DemoGraph();
  const std::string regex = "0*1{0,2}0*";
  const int n = 6;
  std::set<Word> expect = BruteForceAnswers(db, 0, 5, regex, n);
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(17);
  Result<CountEstimate> count = CountRpqAnswers(db, 0, 5, regex, n, options);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  if (expect.empty()) {
    EXPECT_EQ(count->estimate, 0.0);
  } else {
    EXPECT_NEAR(count->estimate / static_cast<double>(expect.size()), 1.0, 0.5);
  }
}

TEST(CountRpq, UpToLengthSumsLevels) {
  GraphDb db = DemoGraph();
  const std::string regex = "(0|1)*";
  const int n = 5;
  double expect = 0;
  for (int len = 0; len <= n; ++len) {
    expect += static_cast<double>(BruteForceAnswers(db, 0, 5, regex, len).size());
  }
  ASSERT_GT(expect, 0);
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(23);
  Result<double> total = CountRpqAnswersUpTo(db, 0, 5, regex, n, options);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total.value() / expect, 1.0, 0.5);
}

TEST(CountRpq, RejectsBadRegex) {
  GraphDb db = DemoGraph();
  EXPECT_FALSE(CountRpqAnswers(db, 0, 5, "((", 4).ok());
}

TEST(SampleRpq, AnswersMatchRegexAndGraph) {
  GraphDb db = DemoGraph();
  const std::string regex = "(0|1)*0";
  const int n = 5;
  std::set<Word> valid = BruteForceAnswers(db, 0, 5, regex, n);
  ASSERT_FALSE(valid.empty());
  SamplerOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(29);
  Result<std::vector<Word>> samples =
      SampleRpqAnswers(db, 0, 5, regex, n, 100, options);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), 100u);
  for (const Word& w : *samples) {
    EXPECT_TRUE(valid.count(w)) << WordToString(w);
  }
}

TEST(WitnessPaths, EnumeratesAllRealizations) {
  // Diamond: two distinct paths with the same label word.
  GraphDb db(4, 1);
  ASSERT_TRUE(db.AddEdge(0, 0, 1).ok());
  ASSERT_TRUE(db.AddEdge(0, 0, 2).ok());
  ASSERT_TRUE(db.AddEdge(1, 0, 3).ok());
  ASSERT_TRUE(db.AddEdge(2, 0, 3).ok());
  Result<std::vector<std::vector<int>>> paths =
      WitnessPaths(db, 0, 3, Word{0, 0});
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 2u);
  std::set<std::vector<int>> set(paths->begin(), paths->end());
  EXPECT_TRUE(set.count({0, 1, 3}));
  EXPECT_TRUE(set.count({0, 2, 3}));
}

TEST(WitnessPaths, RespectsLimitAndEmptyWord) {
  GraphDb db(4, 1);
  ASSERT_TRUE(db.AddEdge(0, 0, 1).ok());
  ASSERT_TRUE(db.AddEdge(0, 0, 2).ok());
  ASSERT_TRUE(db.AddEdge(1, 0, 3).ok());
  ASSERT_TRUE(db.AddEdge(2, 0, 3).ok());
  Result<std::vector<std::vector<int>>> limited =
      WitnessPaths(db, 0, 3, Word{0, 0}, /*limit=*/1);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 1u);

  // Empty word: a path exists iff src == dst.
  Result<std::vector<std::vector<int>>> self = WitnessPaths(db, 2, 2, Word{});
  ASSERT_TRUE(self.ok());
  ASSERT_EQ(self->size(), 1u);
  EXPECT_EQ(self->front(), std::vector<int>{2});
  Result<std::vector<std::vector<int>>> cross = WitnessPaths(db, 0, 3, Word{});
  ASSERT_TRUE(cross.ok());
  EXPECT_TRUE(cross->empty());
}

TEST(WitnessPaths, NoPathForUnrealizableWord) {
  GraphDb db = DemoGraph();
  Result<std::vector<std::vector<int>>> paths =
      WitnessPaths(db, 0, 5, Word{1, 1, 1});
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());
}

TEST(Rpq, ThreeLabelAlphabet) {
  GraphDb db(4, 3);
  ASSERT_TRUE(db.AddEdge(0, 0, 1).ok());
  ASSERT_TRUE(db.AddEdge(1, 1, 2).ok());
  ASSERT_TRUE(db.AddEdge(2, 2, 3).ok());
  ASSERT_TRUE(db.AddEdge(3, 0, 3).ok());
  const std::string regex = "01(2)+0*";
  Result<Nfa> product = BuildRpqProduct(db, 0, 3, regex);
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(product->Accepts(Word{0, 1, 2}));
  EXPECT_TRUE(product->Accepts(Word{0, 1, 2, 0, 0}));
  EXPECT_FALSE(product->Accepts(Word{0, 1, 0}));
}

}  // namespace
}  // namespace nfacount
