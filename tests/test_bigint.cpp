// Unit and property tests for the arbitrary-precision naturals. Cross-checked
// against native 64-bit arithmetic on random operands and against known
// closed forms (powers of two, factorials).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "test_seed.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(BigUint, ZeroProperties) {
  BigUint z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToDouble(), 0.0);
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToU64(), 0u);
  EXPECT_EQ(BigUint(0), z);
}

TEST(BigUint, FromU64RoundTrip) {
  for (uint64_t v : {1ull, 42ull, (1ull << 31), (1ull << 32), (1ull << 33),
                     0xffffffffffffffffull}) {
    BigUint b(v);
    EXPECT_TRUE(b.FitsU64());
    EXPECT_EQ(b.ToU64(), v);
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigUint, AdditionMatchesNative) {
  Rng rng(TestSeed(1));
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.NextU64() >> 1;  // avoid native overflow
    uint64_t b = rng.NextU64() >> 1;
    EXPECT_EQ((BigUint(a) + BigUint(b)).ToU64(), a + b);
  }
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint max32(0xffffffffull);
  BigUint one(1);
  EXPECT_EQ((max32 + one).ToU64(), 0x100000000ull);
  // 2^64 - 1 + 1 = 2^64 (needs a third limb).
  BigUint max64(0xffffffffffffffffull);
  BigUint r = max64 + one;
  EXPECT_EQ(r, BigUint::Pow2(64));
  EXPECT_EQ(r.ToString(), "18446744073709551616");
}

TEST(BigUint, SubtractionMatchesNative) {
  Rng rng(TestSeed(2));
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t b = rng.NextU64();
    if (a < b) std::swap(a, b);
    EXPECT_EQ((BigUint(a) - BigUint(b)).ToU64(), a - b);
  }
}

TEST(BigUint, SubtractionBorrowsAcrossLimbs) {
  BigUint p = BigUint::Pow2(96);
  BigUint r = p - BigUint(1);
  EXPECT_EQ(r.BitLength(), 96u);
  EXPECT_EQ(r + BigUint(1), p);
}

TEST(BigUint, MultiplicationMatchesNative) {
  Rng rng(TestSeed(3));
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.NextU64() & 0xffffffffull;
    uint64_t b = rng.NextU64() & 0xffffffffull;
    EXPECT_EQ((BigUint(a) * BigUint(b)).ToU64(), a * b);
  }
}

TEST(BigUint, MulSmallMatchesFullMul) {
  Rng rng(TestSeed(4));
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t f = rng.NextU64() & 0xffffull;
    BigUint via_small(a);
    via_small.MulSmall(f);
    EXPECT_EQ(via_small, BigUint(a) * BigUint(f));
  }
}

TEST(BigUint, MulByZeroAndOne) {
  BigUint x(12345);
  EXPECT_TRUE((x * BigUint()).IsZero());
  EXPECT_EQ(x * BigUint(1), x);
  BigUint y(99);
  y.MulSmall(0);
  EXPECT_TRUE(y.IsZero());
}

TEST(BigUint, Pow2MatchesShifts) {
  for (uint32_t k : {0u, 1u, 31u, 32u, 33u, 63u, 64u, 100u, 200u}) {
    BigUint p = BigUint::Pow2(k);
    EXPECT_EQ(p.BitLength(), k + 1);
    if (k < 64) {
      EXPECT_EQ(p.ToU64(), 1ull << k);
    }
  }
}

TEST(BigUint, PowMatchesKnownValues) {
  EXPECT_EQ(BigUint::Pow(2, 10).ToU64(), 1024u);
  EXPECT_EQ(BigUint::Pow(3, 0).ToU64(), 1u);
  EXPECT_EQ(BigUint::Pow(10, 20).ToString(), "100000000000000000000");
  EXPECT_EQ(BigUint::Pow(2, 64), BigUint::Pow2(64));
}

TEST(BigUint, FactorialOf30) {
  // 30! — a classic cross-library anchor value.
  BigUint f(1);
  for (uint64_t i = 2; i <= 30; ++i) f.MulSmall(i);
  EXPECT_EQ(f.ToString(), "265252859812191058636308480000000");
}

TEST(BigUint, DivSmallMatchesNative) {
  Rng rng(TestSeed(5));
  for (int i = 0; i < 300; ++i) {
    uint64_t a = rng.NextU64();
    uint32_t d = static_cast<uint32_t>(rng.UniformU64(1000000) + 1);
    BigUint b(a);
    uint32_t rem = b.DivSmall(d);
    EXPECT_EQ(b.ToU64(), a / d);
    EXPECT_EQ(rem, a % d);
  }
}

TEST(BigUint, CompareTotalOrder) {
  BigUint a(5), b(7), c = BigUint::Pow2(100);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(c, b);
  EXPECT_GE(c, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.Compare(b), -1);
  EXPECT_EQ(b.Compare(a), 1);
  EXPECT_EQ(a.Compare(BigUint(5)), 0);
}

TEST(BigUint, ToDoubleLargeValues) {
  EXPECT_DOUBLE_EQ(BigUint::Pow2(100).ToDouble(), std::pow(2.0, 100));
  EXPECT_DOUBLE_EQ(BigUint::Pow2(500).ToDouble(), std::pow(2.0, 500));
}

TEST(BigUint, FromDecimalRoundTrip) {
  for (const char* s : {"0", "1", "999999999", "1000000000",
                        "123456789012345678901234567890"}) {
    EXPECT_EQ(BigUint::FromDecimal(s).ToString(), s);
  }
}

TEST(BigUint, ToStringPadsInnerChunks) {
  // Values whose base-1e9 chunks need zero padding.
  BigUint b = BigUint(1000000000ull) * BigUint(1000000000ull);  // 10^18
  EXPECT_EQ(b.ToString(), "1000000000000000000");
  BigUint c = BigUint(2000000001ull);
  EXPECT_EQ(c.ToString(), "2000000001");
}

TEST(BigUint, AssociativityProperty) {
  Rng rng(TestSeed(6));
  for (int i = 0; i < 100; ++i) {
    BigUint a(rng.NextU64()), b(rng.NextU64()), c(rng.NextU64());
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);  // distributivity
  }
}

TEST(BigUint, CarryChainsThroughSaturatedLimbs) {
  // 2^k - 1 is all-ones in every limb: adding 1 must ripple the carry across
  // the whole limb vector and grow it by one.
  for (uint32_t k : {32u, 64u, 96u, 160u, 1024u}) {
    BigUint all_ones = BigUint::Pow2(k) - BigUint(1);
    EXPECT_EQ(all_ones.BitLength(), k);
    BigUint bumped = all_ones + BigUint(1);
    EXPECT_EQ(bumped, BigUint::Pow2(k));
    EXPECT_EQ(bumped.BitLength(), k + 1);
  }
}

TEST(BigUint, SubtractionToZeroNormalizes) {
  BigUint big = BigUint::Pow2(200);
  BigUint r = big - big;
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.ToString(), "0");
  EXPECT_EQ(r, BigUint());
  // Result of an underflow-free chain dropping back into one limb.
  BigUint small = (BigUint::Pow2(64) + BigUint(7)) - BigUint::Pow2(64);
  EXPECT_EQ(small.ToU64(), 7u);
  EXPECT_EQ(small.BitLength(), 3u);
}

TEST(BigUint, AliasedAdditionAndSubtraction) {
  BigUint a = BigUint::Pow2(90) + BigUint(12345);
  BigUint expected = a * BigUint(2);
  a += a;  // self-aliased operand
  EXPECT_EQ(a, expected);
  a -= a;
  EXPECT_TRUE(a.IsZero());
}

TEST(BigUint, CompareAtLimbBoundaries) {
  // Same limb count, difference only in the lowest limb.
  BigUint hi_equal_a = BigUint::Pow2(64) + BigUint(1);
  BigUint hi_equal_b = BigUint::Pow2(64) + BigUint(2);
  EXPECT_EQ(hi_equal_a.Compare(hi_equal_b), -1);
  EXPECT_EQ(hi_equal_b.Compare(hi_equal_a), 1);
  // Limb-count difference dominates limb values.
  BigUint three_limbs = BigUint::Pow2(64);
  BigUint two_limbs_max = BigUint(0xffffffffffffffffull);
  EXPECT_GT(three_limbs, two_limbs_max);
  EXPECT_LT(two_limbs_max, three_limbs);
  // Adjacent values straddling a 32-bit limb boundary.
  EXPECT_LT(BigUint(0xffffffffull), BigUint(0x100000000ull));
}

TEST(BigUint, FitsU64Boundary) {
  EXPECT_TRUE(BigUint(0xffffffffffffffffull).FitsU64());
  EXPECT_EQ((BigUint::Pow2(64) - BigUint(1)).ToU64(), 0xffffffffffffffffull);
  EXPECT_FALSE(BigUint::Pow2(64).FitsU64());
  EXPECT_FALSE((BigUint::Pow2(64) + BigUint(1)).FitsU64());
}

TEST(BigUint, MulSmallWithWideFactorMatchesFullMul) {
  // factor >= 2^32 takes the full-multiplication path inside MulSmall.
  Rng rng(TestSeed(7));
  for (int i = 0; i < 100; ++i) {
    uint64_t factor = rng.NextU64() | (1ull << 32);  // force the wide path
    BigUint base = BigUint(rng.NextU64()) * BigUint(rng.NextU64());
    BigUint via_small = base;
    via_small.MulSmall(factor);
    EXPECT_EQ(via_small, base * BigUint(factor));
  }
}

TEST(BigUint, DivSmallReconstructsMultiLimbValues) {
  Rng rng(TestSeed(8));
  for (int i = 0; i < 100; ++i) {
    BigUint value = BigUint(rng.NextU64()) * BigUint(rng.NextU64()) +
                    BigUint(rng.NextU64());
    uint32_t divisor = static_cast<uint32_t>(rng.UniformU64(0xfffffffeull) + 1);
    BigUint quotient = value;
    uint32_t rem = quotient.DivSmall(divisor);
    EXPECT_LT(rem, divisor);
    BigUint back = quotient;
    back.MulSmall(divisor);
    EXPECT_EQ(back + BigUint(rem), value);
  }
}

TEST(BigUint, DivSmallCollapsingQuotient) {
  // Quotient loses limbs: 2^64 / 2^32 = 2^32, then / 2^32 again = 1.
  BigUint v = BigUint::Pow2(64);
  EXPECT_EQ(v.DivSmall(0x80000000u), 0u);  // 2^64 / 2^31 = 2^33
  EXPECT_EQ(v, BigUint::Pow2(33));
  BigUint one = BigUint(3);
  EXPECT_EQ(one.DivSmall(4), 3u);  // divisor larger than value
  EXPECT_TRUE(one.IsZero());
}

TEST(BigUint, ToDoubleOverflowsToInfinity) {
  // 2^2000 far exceeds DBL_MAX (~1.8e308 = 2^1024): documented as inf.
  EXPECT_TRUE(std::isinf(BigUint::Pow2(2000).ToDouble()));
  // Just below the double range still finite.
  EXPECT_TRUE(std::isfinite(BigUint::Pow2(1000).ToDouble()));
}

TEST(BigUint, BitLengthAtWordBoundaries) {
  EXPECT_EQ(BigUint(0xffffffffull).BitLength(), 32u);
  EXPECT_EQ(BigUint(0x100000000ull).BitLength(), 33u);
  EXPECT_EQ((BigUint::Pow2(128) - BigUint(1)).BitLength(), 128u);
  EXPECT_EQ(BigUint::Pow2(128).BitLength(), 129u);
}

}  // namespace
}  // namespace nfacount
