// Regex compiler tests: parser acceptance/rejection, and semantic agreement
// between the compiled NFA and the independent AST reference matcher on
// exhaustive short-word sweeps.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "automata/regex.hpp"

namespace nfacount {
namespace {

// All words of length up to `max_len` over the given alphabet.
std::vector<Word> AllWordsUpTo(int alphabet, int max_len) {
  std::vector<Word> out = {Word{}};
  std::vector<Word> frontier = {Word{}};
  for (int len = 1; len <= max_len; ++len) {
    std::vector<Word> next;
    for (const Word& w : frontier) {
      for (int s = 0; s < alphabet; ++s) {
        Word e = w;
        e.push_back(static_cast<Symbol>(s));
        next.push_back(e);
        out.push_back(std::move(e));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(RegexParser, AcceptsValidPatterns) {
  for (const char* pattern :
       {"0", "01", "0|1", "(0|1)*", "1+0?", "0{3}", "0{2,5}", "1{2,}", "[01]",
        "[^0]", ".", ".*1.*", "((0))", "", "0|", "(0|1){2,3}(01)*"}) {
    Result<std::unique_ptr<RegexNode>> ast = ParseRegex(pattern, 2);
    EXPECT_TRUE(ast.ok()) << pattern << ": " << ast.status().ToString();
  }
}

TEST(RegexParser, RejectsInvalidPatterns) {
  for (const char* pattern :
       {"(", ")", "(0", "0)", "[0", "0{", "0{a}", "0{3,2}", "2", "*", "0{,3}"}) {
    EXPECT_FALSE(ParseRegex(pattern, 2).ok()) << pattern;
  }
}

TEST(RegexParser, AlphabetBoundsEnforced) {
  EXPECT_FALSE(ParseRegex("2", 2).ok());
  EXPECT_TRUE(ParseRegex("2", 3).ok());
  EXPECT_FALSE(ParseRegex("a", 5).ok());
  EXPECT_TRUE(ParseRegex("a", 11).ok());
  EXPECT_FALSE(ParseRegex("0", 0).ok());
  EXPECT_FALSE(ParseRegex("0", kMaxAlphabetSize + 1).ok());
}

TEST(RegexParser, ToStringRoundTripsSemantics) {
  // Rendering an AST and re-parsing it must give the same language.
  for (const char* pattern : {"0|1", "(01)*", "1{2,4}", "[01]+0"}) {
    Result<std::unique_ptr<RegexNode>> ast1 = ParseRegex(pattern, 2);
    ASSERT_TRUE(ast1.ok());
    Result<std::unique_ptr<RegexNode>> ast2 =
        ParseRegex(ast1.value()->ToString(), 2);
    ASSERT_TRUE(ast2.ok()) << ast1.value()->ToString();
    for (const Word& w : AllWordsUpTo(2, 6)) {
      EXPECT_EQ(RegexMatches(*ast1.value(), w), RegexMatches(*ast2.value(), w))
          << pattern << " vs " << ast1.value()->ToString() << " on "
          << WordToString(w);
    }
  }
}

struct RegexCase {
  const char* pattern;
  int alphabet;
  int max_len;
};

class RegexSemanticsTest : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexSemanticsTest, CompiledNfaAgreesWithReferenceMatcher) {
  const RegexCase& c = GetParam();
  Result<std::unique_ptr<RegexNode>> ast = ParseRegex(c.pattern, c.alphabet);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  Nfa nfa = CompileRegexAst(*ast.value(), c.alphabet);
  ASSERT_TRUE(nfa.Validate().ok());
  for (const Word& w : AllWordsUpTo(c.alphabet, c.max_len)) {
    EXPECT_EQ(nfa.Accepts(w), RegexMatches(*ast.value(), w))
        << "pattern=" << c.pattern << " word=\"" << WordToString(w) << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexSemanticsTest,
    ::testing::Values(
        RegexCase{"0", 2, 5},               // single symbol
        RegexCase{"", 2, 4},                // empty pattern = empty word
        RegexCase{"01", 2, 5},              // concatenation
        RegexCase{"0|1", 2, 5},             // alternation
        RegexCase{"0*", 2, 6},              // star
        RegexCase{"0+", 2, 6},              // plus
        RegexCase{"0?1", 2, 5},             // optional
        RegexCase{"(01)*", 2, 8},           // grouped star
        RegexCase{"(0|1)*11", 2, 7},        // suffix condition
        RegexCase{".*101.*", 2, 8},         // substring
        RegexCase{"0{3}", 2, 6},            // exact repeat
        RegexCase{"0{2,4}", 2, 6},          // bounded repeat
        RegexCase{"1{2,}", 2, 6},           // unbounded repeat
        RegexCase{"(0|1){2}0", 2, 6},       // repeat of group
        RegexCase{"[01]1[01]", 2, 5},       // classes
        RegexCase{"[^1]*", 2, 6},           // negated class
        RegexCase{"0(1|00)*1", 2, 8},       // nested
        RegexCase{"((0|1)(0|1))*", 2, 8},   // even length
        RegexCase{"0?1?0?1?", 2, 6},        // chained optionals
        RegexCase{"(012)*", 3, 6},          // ternary alphabet
        RegexCase{"[02]*1[02]*", 3, 6},     // ternary classes
        RegexCase{".{2,3}", 3, 5},          // dot with repeats
        RegexCase{"(0{2}|1{3})+", 2, 8},    // repeats under plus
        RegexCase{"(|0)1*", 2, 6}));        // empty alternative

TEST(RegexCompile, NeverMatchesEmptyClass) {
  Result<Nfa> nfa = CompileRegex("[]", 2);
  ASSERT_TRUE(nfa.ok());
  for (const Word& w : AllWordsUpTo(2, 4)) {
    EXPECT_FALSE(nfa->Accepts(w));
  }
}

TEST(RegexCompile, RepeatZeroTimes) {
  Result<Nfa> nfa = CompileRegex("1{0}", 2);
  ASSERT_TRUE(nfa.ok());
  EXPECT_TRUE(nfa->Accepts(Word{}));
  EXPECT_FALSE(nfa->Accepts(Word{1}));
}

TEST(RegexCompile, RepeatZeroToTwo) {
  Result<Nfa> nfa = CompileRegex("1{0,2}", 2);
  ASSERT_TRUE(nfa.ok());
  EXPECT_TRUE(nfa->Accepts(Word{}));
  EXPECT_TRUE(nfa->Accepts(Word{1}));
  EXPECT_TRUE(nfa->Accepts(Word{1, 1}));
  EXPECT_FALSE(nfa->Accepts(Word{1, 1, 1}));
  EXPECT_FALSE(nfa->Accepts(Word{0}));
}

TEST(RegexCompile, ResultIsEpsilonFreeAndTrimmed) {
  Result<Nfa> nfa = CompileRegex("(0|1)*101", 2);
  ASSERT_TRUE(nfa.ok());
  // Trimmed: every state reachable and co-reachable.
  Bitset useful = nfa->ReachableStates();
  useful &= nfa->CoReachableStates();
  EXPECT_EQ(useful.Count(), static_cast<size_t>(nfa->num_states()));
}

TEST(RegexCompile, LongPatternStressCompiles) {
  std::string pattern;
  for (int i = 0; i < 30; ++i) pattern += (i % 2) ? "(0|1)" : "1?";
  Result<Nfa> nfa = CompileRegex(pattern, 2);
  ASSERT_TRUE(nfa.ok());
  EXPECT_GT(nfa->num_states(), 0);
}

}  // namespace
}  // namespace nfacount
