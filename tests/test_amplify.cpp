// Tests for the practical-confidence wrappers: median-of-k amplification and
// adaptive calibration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "fpras/amplify.hpp"
#include "test_seed.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

CountOptions Opts(uint64_t seed) {
  CountOptions o;
  o.eps = 0.3;
  o.delta = 0.2;
  o.seed = seed;
  return o;
}

TEST(Median, MedianOfRunsIsAccurate) {
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 10;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  Result<AmplifiedEstimate> amplified = ApproxCountMedian(nfa, n, Opts(TestSeed(1)), 5);
  ASSERT_TRUE(amplified.ok());
  EXPECT_EQ(amplified->runs.size(), 5u);
  EXPECT_TRUE(std::is_sorted(amplified->runs.begin(), amplified->runs.end()));
  EXPECT_NEAR(amplified->estimate / exact->ToDouble(), 1.0, 0.35);
  EXPECT_GE(amplified->spread, 0.0);
  // The median is one of the runs for odd k.
  EXPECT_NE(std::find(amplified->runs.begin(), amplified->runs.end(),
                      amplified->estimate),
            amplified->runs.end());
}

TEST(Median, EvenRunCountAveragesMiddlePair) {
  Nfa nfa = ParityNfa(2);
  Result<AmplifiedEstimate> amplified = ApproxCountMedian(nfa, 8, Opts(TestSeed(2)), 4);
  ASSERT_TRUE(amplified.ok());
  EXPECT_EQ(amplified->runs.size(), 4u);
  EXPECT_DOUBLE_EQ(amplified->estimate,
                   0.5 * (amplified->runs[1] + amplified->runs[2]));
}

TEST(Median, MedianTightensSpreadVersusSingleRun) {
  // The median's error across seeds should not exceed the worst single-run
  // error; check on a family with real variance.
  Nfa nfa = UnionOfLocks(5, 4);
  const int n = 9;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  const double truth = exact->ToDouble();
  Result<AmplifiedEstimate> amplified = ApproxCountMedian(nfa, n, Opts(TestSeed(3)), 7);
  ASSERT_TRUE(amplified.ok());
  double median_err = std::abs(amplified->estimate / truth - 1.0);
  double worst_err = 0.0;
  for (double run : amplified->runs) {
    worst_err = std::max(worst_err, std::abs(run / truth - 1.0));
  }
  EXPECT_LE(median_err, worst_err + 1e-12);
}

TEST(Median, DiagnosticsAccumulateAcrossRuns) {
  Nfa nfa = CombinationLock(Word{1, 0});
  Result<AmplifiedEstimate> one = ApproxCountMedian(nfa, 6, Opts(TestSeed(4)), 1);
  Result<AmplifiedEstimate> three = ApproxCountMedian(nfa, 6, Opts(TestSeed(4)), 3);
  ASSERT_TRUE(one.ok() && three.ok());
  EXPECT_GT(three->total_diag.sample_calls, one->total_diag.sample_calls);
  EXPECT_GT(three->total_diag.appunion_calls, one->total_diag.appunion_calls);
}

TEST(Median, RejectsBadRunCount) {
  Nfa nfa = CombinationLock(Word{1});
  EXPECT_FALSE(ApproxCountMedian(nfa, 4, Opts(TestSeed(5)), 0).ok());
}

TEST(Median, RunsForConfidenceFormula) {
  EXPECT_EQ(MedianRunsForConfidence(0.5) % 2, 1);
  EXPECT_GT(MedianRunsForConfidence(0.01), MedianRunsForConfidence(0.2));
  EXPECT_EQ(MedianRunsForConfidence(1.5), 1);  // degenerate input
}

TEST(Adaptive, ConvergesOnStableInstances) {
  Nfa nfa = ParityNfa(2);
  const int n = 9;
  AdaptiveOptions options;
  options.base = Opts(TestSeed(6));
  options.agreement = 0.15;
  Result<AdaptiveEstimate> adaptive = ApproxCountAdaptive(nfa, n, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->converged);
  EXPECT_GE(adaptive->rounds, 2);
  EXPECT_NEAR(adaptive->estimate / 256.0, 1.0, 0.3);  // 2^{n-1}
  EXPECT_EQ(adaptive->trajectory.size(), static_cast<size_t>(adaptive->rounds));
}

TEST(Adaptive, EmptyLanguageConvergesToZero) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);  // unreachable
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  AdaptiveOptions options;
  options.base = Opts(TestSeed(7));
  Result<AdaptiveEstimate> adaptive = ApproxCountAdaptive(nfa, 6, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->converged);
  EXPECT_EQ(adaptive->estimate, 0.0);
  EXPECT_EQ(adaptive->rounds, 2);  // two zero rounds agree immediately
}

TEST(Adaptive, BudgetsGrowAcrossRounds) {
  Nfa nfa = SubstringNfa(Word{1, 1});
  AdaptiveOptions options;
  options.base = Opts(TestSeed(8));
  options.agreement = 1e-9;  // unreachably tight: force all rounds
  options.max_rounds = 3;
  Result<AdaptiveEstimate> adaptive = ApproxCountAdaptive(nfa, 7, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_FALSE(adaptive->converged);
  EXPECT_EQ(adaptive->rounds, 3);
  EXPECT_GT(adaptive->final_calibration.ns_floor,
            options.base.calibration.ns_floor);
  EXPECT_GT(adaptive->final_calibration.ns_scale,
            options.base.calibration.ns_scale);
}

TEST(Adaptive, ValidatesOptions) {
  Nfa nfa = CombinationLock(Word{1});
  AdaptiveOptions bad_agreement;
  bad_agreement.base = Opts(TestSeed(9));
  bad_agreement.agreement = 0.0;
  EXPECT_FALSE(ApproxCountAdaptive(nfa, 4, bad_agreement).ok());
  AdaptiveOptions bad_rounds;
  bad_rounds.base = Opts(TestSeed(9));
  bad_rounds.max_rounds = 1;
  EXPECT_FALSE(ApproxCountAdaptive(nfa, 4, bad_rounds).ok());
}

}  // namespace
}  // namespace nfacount
