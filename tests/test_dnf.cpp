// Tests for the DNF module: evaluation, exact counting, the classic
// Karp-Luby counter, and the linear DNF → NFA encoding (model counts must
// transfer exactly, then approximately through the FPRAS).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/dnf.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

Dnf SmallDnf() {
  // (x0 & x1) | (!x2) over 4 variables.
  Dnf dnf(4);
  EXPECT_TRUE(dnf.AddClause({{0, 1}, {}}).ok());
  EXPECT_TRUE(dnf.AddClause({{}, {2}}).ok());
  return dnf;
}

Dnf RandomDnf(int vars, int clauses, int width, Rng& rng) {
  Dnf dnf(vars);
  for (int c = 0; c < clauses; ++c) {
    DnfClause clause;
    for (int l = 0; l < width; ++l) {
      int v = static_cast<int>(rng.UniformU64(vars));
      bool pos = rng.Bernoulli(0.5);
      bool in_pos = std::find(clause.positive.begin(), clause.positive.end(), v) !=
                    clause.positive.end();
      bool in_neg = std::find(clause.negative.begin(), clause.negative.end(), v) !=
                    clause.negative.end();
      if (in_pos || in_neg) continue;  // avoid contradictions
      (pos ? clause.positive : clause.negative).push_back(v);
    }
    EXPECT_TRUE(dnf.AddClause(std::move(clause)).ok());
  }
  return dnf;
}

// Independent exact counter: brute force over assignments.
uint64_t BruteForceModels(const Dnf& dnf) {
  uint64_t count = 0;
  std::vector<bool> assignment(dnf.num_vars());
  for (uint64_t mask = 0; mask < (uint64_t{1} << dnf.num_vars()); ++mask) {
    for (int i = 0; i < dnf.num_vars(); ++i) assignment[i] = (mask >> i) & 1;
    if (dnf.Evaluate(assignment)) ++count;
  }
  return count;
}

TEST(Dnf, ClauseValidation) {
  Dnf dnf(3);
  EXPECT_FALSE(dnf.AddClause({{3}, {}}).ok());   // var out of range
  EXPECT_FALSE(dnf.AddClause({{}, {-1}}).ok());  // negative var id
  EXPECT_FALSE(dnf.AddClause({{1}, {1}}).ok());  // x & !x
  EXPECT_TRUE(dnf.AddClause({{0, 0}, {}}).ok()); // duplicates deduped
  EXPECT_EQ(dnf.clause(0).positive.size(), 1u);
}

TEST(Dnf, EvaluateSmall) {
  Dnf dnf = SmallDnf();
  // x = (1,1,1,0): clause 0 satisfied.
  EXPECT_TRUE(dnf.Evaluate({true, true, true, false}));
  // x = (0,0,0,0): clause 1 (!x2) satisfied.
  EXPECT_TRUE(dnf.Evaluate({false, false, false, false}));
  // x = (1,0,1,1): neither.
  EXPECT_FALSE(dnf.Evaluate({true, false, true, true}));
}

TEST(Dnf, ClauseModelCount) {
  Dnf dnf = SmallDnf();
  EXPECT_EQ(dnf.ClauseModelCount(0).ToU64(), 4u);  // 2^(4-2)
  EXPECT_EQ(dnf.ClauseModelCount(1).ToU64(), 8u);  // 2^(4-1)
}

TEST(Dnf, ExactCountMatchesBruteForce) {
  Rng rng(TestSeed(5));
  for (int trial = 0; trial < 10; ++trial) {
    Dnf dnf = RandomDnf(8, 4, 3, rng);
    Result<BigUint> exact = ExactDnfCount(dnf);
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(exact->ToU64(), BruteForceModels(dnf)) << dnf.ToString();
  }
}

TEST(Dnf, ExactCountRespectsBudget) {
  Dnf dnf(30);
  ASSERT_TRUE(dnf.AddClause({{0}, {}}).ok());
  EXPECT_FALSE(ExactDnfCount(dnf, /*max_vars=*/26).ok());
}

TEST(Dnf, EmptyDnfIsUnsatisfiable) {
  Dnf dnf(5);
  Result<BigUint> exact = ExactDnfCount(dnf);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->IsZero());
  Rng rng(TestSeed(1));
  Result<DnfCountResult> kl = KarpLubyDnfCount(dnf, 0.2, 0.1, rng);
  ASSERT_TRUE(kl.ok());
  EXPECT_EQ(kl->estimate, 0.0);
}

TEST(Dnf, EmptyClauseMatchesEverything) {
  Dnf dnf(4);
  ASSERT_TRUE(dnf.AddClause({{}, {}}).ok());
  Result<BigUint> exact = ExactDnfCount(dnf);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->ToU64(), 16u);
}

TEST(KarpLuby, AccurateOnOverlappingClauses) {
  Rng rng(TestSeed(7));
  for (int trial = 0; trial < 5; ++trial) {
    Dnf dnf = RandomDnf(12, 6, 3, rng);
    uint64_t truth = BruteForceModels(dnf);
    if (truth == 0) continue;
    Result<DnfCountResult> kl = KarpLubyDnfCount(dnf, 0.15, 0.05, rng);
    ASSERT_TRUE(kl.ok());
    EXPECT_NEAR(kl->estimate / static_cast<double>(truth), 1.0, 0.2)
        << dnf.ToString();
  }
}

TEST(KarpLuby, ValidatesParameters) {
  Dnf dnf(2);
  ASSERT_TRUE(dnf.AddClause({{0}, {}}).ok());
  Rng rng(TestSeed(1));
  EXPECT_FALSE(KarpLubyDnfCount(dnf, 0.0, 0.1, rng).ok());
  EXPECT_FALSE(KarpLubyDnfCount(dnf, 0.1, 1.5, rng).ok());
}

TEST(DnfToNfa, LanguageIsExactlyTheModels) {
  Rng rng(TestSeed(9));
  for (int trial = 0; trial < 8; ++trial) {
    Dnf dnf = RandomDnf(7, 3, 2, rng);
    Result<Nfa> nfa = DnfToNfa(dnf);
    ASSERT_TRUE(nfa.ok());
    // Word w (bit i = var i) accepted iff w satisfies the DNF.
    std::vector<bool> assignment(dnf.num_vars());
    Word w(dnf.num_vars());
    for (uint64_t mask = 0; mask < (uint64_t{1} << dnf.num_vars()); ++mask) {
      for (int i = 0; i < dnf.num_vars(); ++i) {
        assignment[i] = (mask >> i) & 1;
        w[i] = assignment[i] ? 1 : 0;
      }
      ASSERT_EQ(nfa->Accepts(w), dnf.Evaluate(assignment))
          << dnf.ToString() << " @ " << WordToString(w);
    }
  }
}

TEST(DnfToNfa, StateCountIsLinear) {
  Dnf dnf(10);
  for (int c = 0; c < 5; ++c) {
    ASSERT_TRUE(dnf.AddClause({{c}, {}}).ok());
  }
  Result<Nfa> nfa = DnfToNfa(dnf);
  ASSERT_TRUE(nfa.ok());
  EXPECT_EQ(nfa->num_states(), 1 + 5 * 10);  // start + clauses × vars
}

TEST(DnfToNfa, RejectsZeroVariables) {
  Dnf dnf(0);
  EXPECT_FALSE(DnfToNfa(dnf).ok());
}

TEST(DnfPipeline, ExactCountsTransferThroughNfa) {
  Rng rng(TestSeed(11));
  for (int trial = 0; trial < 6; ++trial) {
    Dnf dnf = RandomDnf(8, 4, 3, rng);
    Result<Nfa> nfa = DnfToNfa(dnf);
    ASSERT_TRUE(nfa.ok());
    Result<BigUint> via_nfa = ExactCountViaDfa(*nfa, dnf.num_vars());
    Result<BigUint> direct = ExactDnfCount(dnf);
    ASSERT_TRUE(via_nfa.ok() && direct.ok());
    EXPECT_EQ(*via_nfa, *direct) << dnf.ToString();
  }
}

TEST(DnfPipeline, FprasApproximatesModelCount) {
  Rng rng(TestSeed(13));
  Dnf dnf = RandomDnf(10, 5, 3, rng);
  uint64_t truth = BruteForceModels(dnf);
  ASSERT_GT(truth, 0u);
  Result<Nfa> nfa = DnfToNfa(dnf);
  ASSERT_TRUE(nfa.ok());
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(2025);
  Result<CountEstimate> approx = ApproxCount(*nfa, dnf.num_vars(), options);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / static_cast<double>(truth), 1.0, 0.5);
}

TEST(Dnf, ToStringReadable) {
  Dnf dnf = SmallDnf();
  EXPECT_EQ(dnf.ToString(), "(x0&x1) | (!x2)");
  EXPECT_EQ(Dnf(3).ToString(), "false");
}

}  // namespace
}  // namespace nfacount
