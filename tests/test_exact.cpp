// Cross-validation of the three exact counters (brute force, subset DP, DFA
// DP) against each other and against closed forms, plus budget-failure paths
// and the per-(q,ℓ) counts the FPRAS invariants are tested against.

#include <gtest/gtest.h>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

class ExactCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(ExactCrossValidation, AllThreeCountersAgreeOnRandomNfas) {
  Rng rng(GetParam());
  Nfa nfa = RandomNfa(4 + GetParam() % 5, 0.3, 0.3, rng);
  const int n = 8;
  Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
  ASSERT_TRUE(dp.ok());
  for (int len = 0; len <= n; ++len) {
    Result<BigUint> brute = BruteForceCount(nfa, len);
    Result<BigUint> via_dfa = ExactCountViaDfa(nfa, len);
    ASSERT_TRUE(brute.ok());
    ASSERT_TRUE(via_dfa.ok());
    EXPECT_EQ(*brute, *via_dfa) << "len=" << len;
    EXPECT_EQ(*brute, dp->AcceptedCount(len)) << "len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactCrossValidation,
                         ::testing::Range(1, 13));

TEST(SubsetDp, StateLevelCountsMatchEnumeration) {
  Rng rng(TestSeed(99));
  for (int trial = 0; trial < 6; ++trial) {
    Nfa nfa = RandomNfa(6, 0.25, 0.3, rng);
    const int n = 6;
    Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
    ASSERT_TRUE(dp.ok());
    for (int level = 0; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        Result<std::vector<Word>> words = EnumerateStateLevel(nfa, q, level);
        ASSERT_TRUE(words.ok());
        EXPECT_EQ(dp->StateLevelCount(q, level), BigUint(words->size()))
            << "q=" << q << " level=" << level;
      }
    }
  }
}

TEST(SubsetDp, PartitionProperty) {
  // The level tables partition the live words: summing over all subsets at
  // level ℓ counts exactly the words with nonempty frontier.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 10;
  Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
  ASSERT_TRUE(dp.ok());
  // This automaton is complete (every word has a nonempty frontier), so the
  // widths partition 2^ℓ. Check level n via the accepting + complement split.
  Result<BigUint> accepted = BruteForceCount(nfa, n);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(dp->AcceptedCount(n), *accepted);
}

TEST(SubsetDp, BudgetEnforced) {
  Nfa nfa = KthFromEndNfa(10);
  Result<SubsetDp> dp = SubsetDp::Run(nfa, 12, /*max_subsets=*/8);
  EXPECT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForce, BudgetEnforced) {
  Nfa nfa = DenseCompleteNfa(2);
  Result<BigUint> count = BruteForceCount(nfa, 30, /*max_words=*/1000);
  EXPECT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForce, TernaryAlphabet) {
  Nfa nfa = DenseCompleteNfa(2, 3);
  Result<BigUint> count = BruteForceCount(nfa, 7);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToU64(), 2187u);  // 3^7
}

TEST(EnumerateAccepted, SortedAndComplete) {
  Nfa nfa = ParityNfa(2);  // even # of ones
  Result<std::vector<Word>> words = EnumerateAccepted(nfa, 4);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), 8u);  // 2^3
  EXPECT_TRUE(std::is_sorted(words->begin(), words->end()));
  for (const Word& w : *words) {
    int ones = 0;
    for (Symbol s : w) ones += s;
    EXPECT_EQ(ones % 2, 0) << WordToString(w);
  }
}

TEST(EnumerateAccepted, EmptyLanguage) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);  // unreachable
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  Result<std::vector<Word>> words = EnumerateAccepted(nfa, 5);
  ASSERT_TRUE(words.ok());
  EXPECT_TRUE(words->empty());
}

TEST(EnumerateAccepted, LengthZero) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddAccepting(q);
  Result<std::vector<Word>> words = EnumerateAccepted(nfa, 0);
  ASSERT_TRUE(words.ok());
  ASSERT_EQ(words->size(), 1u);
  EXPECT_TRUE(words->front().empty());
}

TEST(EnumerateAccepted, BudgetEnforced) {
  Nfa nfa = DenseCompleteNfa(2);
  Result<std::vector<Word>> words = EnumerateAccepted(nfa, 12, /*max_words=*/100);
  EXPECT_FALSE(words.ok());
}

TEST(EnumerateStateLevel, MatchesReachOracle) {
  Rng rng(TestSeed(7));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  const int level = 5;
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    Result<std::vector<Word>> words = EnumerateStateLevel(nfa, q, level);
    ASSERT_TRUE(words.ok());
    std::set<Word> set(words->begin(), words->end());
    // Exhaustive check against the frontier-simulation oracle.
    Word w(level, 0);
    for (int64_t x = 0; x < (int64_t{1} << level); ++x) {
      for (int i = 0; i < level; ++i) w[i] = static_cast<Symbol>((x >> i) & 1);
      EXPECT_EQ(set.count(w) > 0, nfa.Reach(w).Test(q)) << WordToString(w);
    }
  }
}

TEST(ExactCountViaDfa, PropagatesDeterminizeFailure) {
  // "1 at the 14th position from the end": minimal DFA has 2^14 states.
  Nfa nfa = KthFromEndNfa(14);
  Result<BigUint> count = ExactCountViaDfa(nfa, 5, /*max_dfa_states=*/32);
  EXPECT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace nfacount
