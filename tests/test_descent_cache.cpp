// Descent-cache correctness: unit behavior of the sharded DescentCache
// (insert/lookup roundtrips, the shared-budget capacity discipline under
// concurrency, the disabled state), the matching no-overshoot fix in
// UnionSizeMemo, and the identity grid — estimates, per-(q,ℓ) tables, and
// draw streams must be bit-identical with the cache on, off, or at any
// capacity, across num_threads and batch_width (the purity contract the
// cache is built on; see fpras/estimator.hpp DescentCache).

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::ExpectTablesIdentical;
using testing_support::SessionTestOptions;
using testing_support::TestSeed;

Bitset MakeSet(size_t bits, std::initializer_list<int> members) {
  Bitset set(bits);
  for (int q : members) set.Set(static_cast<size_t>(q));
  return set;
}

TEST(DescentCacheUnit, SizesRoundTripAndCounters) {
  DescentCache cache;
  cache.Reset(/*capacity=*/8, /*row_words=*/1, /*alphabet_size=*/2);
  ASSERT_TRUE(cache.enabled());

  const Bitset set = MakeSet(10, {1, 4, 7});
  const std::vector<double> sizes = {3.5, 0.25};
  std::vector<double> out;
  EXPECT_FALSE(cache.LookupSizes(3, set, &out));
  EXPECT_EQ(cache.misses(), 1);

  cache.InsertSizes(3, set, sizes);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_GT(cache.bytes(), 0);
  ASSERT_TRUE(cache.LookupSizes(3, set, &out));
  EXPECT_EQ(out, sizes);
  EXPECT_EQ(cache.hits(), 1);

  // Same frontier at another level is a distinct key.
  EXPECT_FALSE(cache.LookupSizes(4, set, &out));
  // Re-inserting an existing key neither duplicates nor spends budget.
  cache.InsertSizes(3, set, sizes);
  EXPECT_EQ(cache.entries(), 1);
}

TEST(DescentCacheUnit, RowsPiggybackOnAdmittedEntries) {
  DescentCache cache;
  cache.Reset(/*capacity=*/8, /*row_words=*/2, /*alphabet_size=*/2);
  const Bitset set = MakeSet(70, {0, 65});
  const std::vector<double> sizes = {1.0, 2.0};
  const uint64_t row[2] = {0x12345678u, 0x9abcdef0u};
  uint64_t got[2] = {0, 0};

  // InsertRow on a never-admitted key is a no-op (budget already spent or
  // sizes never inserted) — the next lookup still misses.
  cache.InsertRow(2, set, 1, row);
  EXPECT_FALSE(cache.LookupRow(2, set, 1, got));

  cache.InsertSizes(2, set, sizes);
  EXPECT_FALSE(cache.LookupRow(2, set, 1, got));  // sizes only, row unfilled
  cache.InsertRow(2, set, 1, row);
  ASSERT_TRUE(cache.LookupRow(2, set, 1, got));
  EXPECT_EQ(got[0], row[0]);
  EXPECT_EQ(got[1], row[1]);
  // The other symbol of the same entry is still unfilled.
  EXPECT_FALSE(cache.LookupRow(2, set, 0, got));
  // Row storage is accounted once per entry.
  const int64_t bytes_after_rows = cache.bytes();
  cache.InsertRow(2, set, 1, row);
  EXPECT_EQ(cache.bytes(), bytes_after_rows);
}

TEST(DescentCacheUnit, CapacityZeroDisables) {
  DescentCache cache;
  cache.Reset(/*capacity=*/0, /*row_words=*/1, /*alphabet_size=*/2);
  EXPECT_FALSE(cache.enabled());
  const Bitset set = MakeSet(8, {2});
  cache.InsertSizes(1, set, {1.0, 1.0});
  EXPECT_EQ(cache.entries(), 0);
  std::vector<double> out;
  EXPECT_FALSE(cache.LookupSizes(1, set, &out));
}

TEST(DescentCacheUnit, ConcurrentInsertersNeverOvershootCapacity) {
  // The ISSUE-6 memo bug, applied to the descent cache: with the capacity
  // check done before the shard lock, T concurrent inserters could admit up
  // to capacity + T - 1 entries. The CAS-reserve discipline must hold the
  // bound exactly even when every thread hammers distinct keys.
  constexpr int64_t kCapacity = 64;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 256;
  DescentCache cache;
  cache.Reset(kCapacity, /*row_words=*/1, /*alphabet_size=*/2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const std::vector<double> sizes = {1.0, 2.0};
      for (int i = 0; i < kKeysPerThread; ++i) {
        Bitset set(4096);
        set.Set(static_cast<size_t>(t * kKeysPerThread + i));
        cache.InsertSizes(1, set, sizes);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(cache.entries(), kCapacity);
}

TEST(UnionSizeMemoUnit, ConcurrentInsertersNeverOvershootCapacity) {
  // The original bug site (satellite 2): UnionSizeMemo::Insert checked
  // entries_ >= capacity_ before taking the shard lock, so concurrent
  // inserters overshot the budget. Same bound, same discipline.
  constexpr int64_t kCapacity = 64;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 256;
  UnionSizeMemo memo;
  memo.Reset(kCapacity);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, t] {
      const std::vector<double> sizes = {1.0, 2.0};
      for (int i = 0; i < kKeysPerThread; ++i) {
        Bitset set(4096);
        set.Set(static_cast<size_t>(t * kKeysPerThread + i));
        memo.Insert(1, set, sizes);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(memo.entries(), kCapacity);
}

// ---------------------------------------------------------------------------
// Identity grid: cache on/off × capacity × num_threads × batch_width
// ---------------------------------------------------------------------------

TEST(DescentCacheIdentity, GridBitIdenticalAcrossCapacityThreadsAndWidth) {
  Rng rng(TestSeed(1501));
  Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
  const int n = 6;

  // Baseline: cache off, sequential, narrowest batches.
  CountOptions base = SessionTestOptions(TestSeed(1502));
  base.descent_cache_capacity = 0;
  base.num_threads = 1;
  base.batch_width = 1;
  Result<EngineSession> baseline = EngineSession::Create(nfa, n, base);
  ASSERT_TRUE(baseline.ok());
  std::vector<double> base_counts;
  for (int level = 0; level <= n; ++level) {
    Result<double> c = baseline->CountAtLength(level);
    ASSERT_TRUE(c.ok());
    base_counts.push_back(*c);
  }
  Result<std::vector<Word>> base_draws = baseline->SampleWords(n, 12);
  ASSERT_TRUE(base_draws.ok());

  const int64_t capacities[] = {0, 4, int64_t{1} << 20};
  const int thread_counts[] = {1, 4};
  const int widths[] = {1, 32};
  for (int64_t capacity : capacities) {
    for (int threads : thread_counts) {
      for (int width : widths) {
        CountOptions opts = SessionTestOptions(TestSeed(1502));
        opts.descent_cache_capacity = capacity;
        opts.num_threads = threads;
        opts.batch_width = width;
        Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
        ASSERT_TRUE(session.ok())
            << "capacity=" << capacity << " threads=" << threads
            << " width=" << width;
        for (int level = 0; level <= n; ++level) {
          Result<double> c = session->CountAtLength(level);
          ASSERT_TRUE(c.ok());
          EXPECT_EQ(*c, base_counts[static_cast<size_t>(level)])
              << "capacity=" << capacity << " threads=" << threads
              << " width=" << width << " level=" << level;
        }
        ExpectTablesIdentical(session->engine(), baseline->engine(), nfa, n);
        Result<std::vector<Word>> draws = session->SampleWords(n, 12);
        ASSERT_TRUE(draws.ok());
        ASSERT_EQ(draws->size(), base_draws->size());
        for (size_t i = 0; i < draws->size(); ++i) {
          EXPECT_EQ((*draws)[i], (*base_draws)[i])
              << "capacity=" << capacity << " threads=" << threads
              << " width=" << width << " draw=" << i;
        }
      }
    }
  }
}

TEST(DescentCacheIdentity, CacheActuallyHitsOnRepeatedDescents) {
  // Not just "identical": on a run with refills and post-run draws the cache
  // must actually serve repeated (level, frontier) work, or the tentpole is
  // wired to nothing.
  Rng rng(TestSeed(1511));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  const int n = 6;
  CountOptions opts = SessionTestOptions(TestSeed(1512));
  Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(n).ok());
  Result<std::vector<Word>> draws = session->SampleWords(n, 16);
  ASSERT_TRUE(draws.ok());
  const FprasDiagnostics& diag = session->diagnostics();
  if (std::getenv("NFACOUNT_DESCENT_CACHE") == nullptr) {
    EXPECT_GT(diag.descent_hits, 0);
    EXPECT_GT(diag.descent_entries, 0);
    EXPECT_GT(diag.descent_bytes, 0);
  }
  EXPECT_GE(diag.descent_hits + diag.descent_misses, diag.descent_entries);
}

TEST(DescentCacheIdentity, ResumedSessionMatchesWithDifferentCacheKnob) {
  // The capacity is a runtime knob like threads/width: a session saved with
  // the cache on and resumed with it off (or vice versa) must continue the
  // identical draw stream. Exercised in memory via serialize/deserialize.
  Rng rng(TestSeed(1521));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  const int n = 5;
  CountOptions opts = SessionTestOptions(TestSeed(1522));
  Result<EngineSession> a = EngineSession::Create(nfa, n, opts);
  CountOptions off = opts;
  off.descent_cache_capacity = 0;
  Result<EngineSession> b = EngineSession::Create(nfa, n, off);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->ExtendTo(n).ok());
  ASSERT_TRUE(b->ExtendTo(n).ok());
  Result<std::vector<Word>> da = a->SampleWords(n, 6);
  Result<std::vector<Word>> db = b->SampleWords(n, 6);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(*da, *db);
}

}  // namespace
}  // namespace nfacount
