// Tests for the FPRAS parameter schedules: the paper's closed-form values,
// monotonicity/shape properties, the ACJR comparison, and calibration knobs.

#include <gtest/gtest.h>

#include <cmath>

#include "fpras/params.hpp"

namespace nfacount {
namespace {

TEST(Params, MakeValidatesInputs) {
  EXPECT_FALSE(FprasParams::Make(Schedule::kFaster, 0, 5, 0.1, 0.1).ok());
  EXPECT_FALSE(FprasParams::Make(Schedule::kFaster, 3, -1, 0.1, 0.1).ok());
  EXPECT_FALSE(FprasParams::Make(Schedule::kFaster, 3, 5, 0.0, 0.1).ok());
  EXPECT_FALSE(FprasParams::Make(Schedule::kFaster, 3, 5, 0.1, 0.0).ok());
  EXPECT_FALSE(FprasParams::Make(Schedule::kFaster, 3, 5, 0.1, 1.0).ok());
  EXPECT_TRUE(FprasParams::Make(Schedule::kFaster, 3, 5, 0.1, 0.1).ok());
}

TEST(Params, BetaAndEtaMatchAlgorithmThreeLineOne) {
  Result<FprasParams> p = FprasParams::Make(Schedule::kFaster, 7, 9, 0.3, 0.05);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->beta, 0.3 / (4.0 * 81.0));
  EXPECT_DOUBLE_EQ(p->eta, 0.05 / (2.0 * 9.0 * 7.0));
}

TEST(Params, FaithfulNsMatchesClosedForm) {
  const int m = 5, n = 6;
  const double eps = 0.25, delta = 0.1;
  const double e = std::exp(1.0);
  double inner = std::max(std::log(1.0 / (eps * eps)), 1.0);
  double expect = 4096.0 * e * std::pow(n, 4) / (eps * eps) *
                  std::log(4096.0 * m * m * n * n * inner / delta);
  EXPECT_NEAR(FasterScheduleNs(m, n, eps, delta) / expect, 1.0, 1e-12);
}

TEST(Params, FaithfulNsIsAstronomical) {
  // The motivation for calibration: even a small instance needs > 10^9
  // samples per (state, level) at the paper's constants.
  EXPECT_GT(FasterScheduleNs(8, 10, 0.2, 0.1), 1e9);
}

TEST(Params, AcjrNsIsKappaSeventh) {
  const double kappa = 6.0 * 8.0 / 0.5;
  EXPECT_DOUBLE_EQ(AcjrScheduleNs(6, 8, 0.5), std::pow(kappa, 7));
}

TEST(Params, SampleBudgetIndependentOfMForFaster) {
  // The headline structural claim: ns does not grow polynomially with m
  // (only logarithmically), while the ACJR budget grows ~m^7.
  double ns_small = FasterScheduleNs(4, 10, 0.2, 0.1);
  double ns_large = FasterScheduleNs(400, 10, 0.2, 0.1);
  EXPECT_LT(ns_large / ns_small, 2.0);  // log factor only

  double acjr_ratio = AcjrScheduleNs(400, 10, 0.2) / AcjrScheduleNs(4, 10, 0.2);
  EXPECT_NEAR(acjr_ratio, std::pow(100.0, 7), std::pow(100.0, 7) * 1e-9);
}

TEST(Params, ScheduleGapGrowsWithEverything) {
  // ns_acjr / ns_faster increases in m, n and 1/ε.
  struct Case {
    int m, n;
    double eps;
  };
  double prev = 0;
  for (const Case& c :
       {Case{4, 6, 0.5}, Case{8, 6, 0.5}, Case{8, 12, 0.5}, Case{8, 12, 0.25}}) {
    double ratio = AcjrScheduleNs(c.m, c.n, c.eps) /
                   FasterScheduleNs(c.m, c.n, c.eps, 0.1);
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
  EXPECT_GT(prev, 1e6);  // the gap is enormous already at toy sizes
}

TEST(Params, NsGrowsAsFourthPowerOfN) {
  // log-log slope of the uncalibrated schedule ~ 4 (up to the log factor).
  double r = FasterScheduleNs(5, 32, 0.2, 0.1) / FasterScheduleNs(5, 16, 0.2, 0.1);
  EXPECT_GT(r, 15.5);  // 2^4 = 16 modulo the slowly-growing log
  EXPECT_LT(r, 18.0);
}

TEST(Params, NsGrowsAsInverseSquareOfEps) {
  double r = FasterScheduleNs(5, 10, 0.1, 0.1) / FasterScheduleNs(5, 10, 0.2, 0.1);
  EXPECT_NEAR(r, 4.0, 0.5);
}

TEST(Params, CalibrationScalesAndFloors) {
  Calibration cal;
  cal.ns_scale = 1e-12;
  cal.ns_floor = 123;
  Result<FprasParams> p = FprasParams::Make(Schedule::kFaster, 5, 6, 0.3, 0.1, cal);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ns, 123);
  EXPECT_GE(p->xns, p->ns * 4);  // multiplier floor

  Calibration faithful;  // scale 1.0
  Result<FprasParams> f =
      FprasParams::Make(Schedule::kFaster, 5, 6, 0.3, 0.1, faithful);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ns, static_cast<int64_t>(std::ceil(FasterScheduleNs(5, 6, 0.3, 0.1))));
}

TEST(Params, XnsMatchesLineThreeAtFaithfulScale) {
  Result<FprasParams> p = FprasParams::Make(Schedule::kFaster, 4, 5, 0.4, 0.2);
  ASSERT_TRUE(p.ok());
  const double e = std::exp(1.0);
  double mult = 12.0 / (1.0 - 2.0 / (3.0 * e * e)) * std::log(8.0 / p->eta);
  EXPECT_EQ(p->xns, static_cast<int64_t>(std::ceil(p->ns * mult)));
}

TEST(Params, EpsSzAtLevelMatchesAlgorithmTwoLineThree) {
  Result<FprasParams> p = FprasParams::Make(Schedule::kFaster, 4, 8, 0.2, 0.1);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->EpsSzAtLevel(1), 0.0);
  EXPECT_DOUBLE_EQ(p->EpsSzAtLevel(4), std::pow(1.0 + p->beta, 3) - 1.0);
  // Bounded across all levels: (1+β)^{n-1} ≤ e^{ε/4n} (small).
  EXPECT_LT(p->EpsSzAtLevel(8), 0.01);
}

TEST(Params, DeltaSplitsMatchAlgorithmThree) {
  Result<FprasParams> p = FprasParams::Make(Schedule::kFaster, 4, 6, 0.2, 0.1);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->DeltaForCountUnion(),
                   p->eta / (2.0 * (1.0 - std::pow(2.0, -7.0))));
  EXPECT_DOUBLE_EQ(p->EtaForSampleCall(), p->eta / (2.0 * p->xns));
}

TEST(Params, PresetsAreOrdered) {
  Calibration practical = Calibration::Practical();
  Calibration thorough = Calibration::Thorough();
  EXPECT_LT(practical.ns_scale, thorough.ns_scale);
  EXPECT_LT(practical.trial_scale, thorough.trial_scale);
  EXPECT_LE(practical.ns_floor, thorough.ns_floor);
}

TEST(Params, ToStringMentionsKeyFields) {
  Result<FprasParams> p = FprasParams::Make(Schedule::kAcjr, 4, 6, 0.2, 0.1,
                                            Calibration::Practical());
  ASSERT_TRUE(p.ok());
  std::string s = p->ToString();
  EXPECT_NE(s.find("acjr"), std::string::npos);
  EXPECT_NE(s.find("m=4"), std::string::npos);
  EXPECT_NE(s.find("n=6"), std::string::npos);
}

TEST(Params, ScheduleNames) {
  EXPECT_STREQ(ScheduleName(Schedule::kFaster), "faster(MCM24)");
  EXPECT_STREQ(ScheduleName(Schedule::kAcjr), "acjr(ACJR21)");
}

}  // namespace
}  // namespace nfacount
