// Wire-protocol fault injection: every way a peer can violate the framing —
// truncated frames, oversized declared lengths, bad magic / version /
// message type, mid-request disconnects, slow-loris stalls — must resolve
// to a clean error classification (InvalidArgument / DataLoss /
// DeadlineExceeded) and a connection teardown. The daemon itself must
// never crash, leak a wedged thread, or stop answering other connections:
// every test ends by proving a fresh client still round-trips.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "test_seed.hpp"
#include "util/failpoint.hpp"
#include "util/net.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using serve::Frame;
using serve::MsgType;
using serve::ReadFrame;
using serve::RegistryOptions;
using serve::ServeClient;
using serve::ServeDaemon;
using serve::ServerOptions;
using serve::SessionRegistry;
using serve::WriteFrame;
using testing_support::TestSeed;

/// Daemon + registry with one registered session, shared by the suite.
class ServeProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<SessionRegistry>(RegistryOptions());
    Rng rng(TestSeed(971));
    ASSERT_TRUE(registry_
                    ->Register("s", NfaToText(RandomNfa(5, 0.3, 0.3, rng)),
                               /*horizon=*/6, TestSeed(972), 0.3, 0.2)
                    .ok());
    ServerOptions options;
    options.read_timeout_ms = 500;  // fast slow-loris cutoff for tests
    daemon_ = std::make_unique<ServeDaemon>(registry_.get(), options);
    ASSERT_TRUE(daemon_->Start().ok());
  }

  void TearDown() override { daemon_->Stop(); }

  /// The liveness probe every fault test ends with: a fresh connection
  /// still answers a real query.
  void ExpectDaemonAlive() {
    Result<ServeClient> client = ServeClient::Connect(daemon_->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(client->Ping().ok());
    Result<double> count = client->CountAtLength("s", 3);
    EXPECT_TRUE(count.ok());
  }

  /// Opens a raw connection to the daemon.
  SocketFd RawConnect() {
    Result<SocketFd> sock = ConnectLoopback(daemon_->port());
    EXPECT_TRUE(sock.ok());
    return std::move(sock).value();
  }

  /// Reads the daemon's error reply off a raw socket and returns its
  /// embedded status code (the daemon sends a best-effort kReply before
  /// closing a protocol-violating connection).
  StatusCode ReadErrorReplyCode(const SocketFd& sock) {
    Result<Frame> reply = ReadFrame(sock);
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) return StatusCode::kInternal;
    EXPECT_EQ(MsgType::kReply, reply.value().type);
    ByteReader r(reply.value().payload.data(), reply.value().payload.size());
    Status remote = Status::Ok();
    EXPECT_TRUE(serve::ReadReplyStatus(&r, &remote).ok());
    return remote.code();
  }

  std::unique_ptr<SessionRegistry> registry_;
  std::unique_ptr<ServeDaemon> daemon_;
};

TEST_F(ServeProtocolTest, BadMagicIsInvalidAndConnectionCloses) {
  SocketFd sock = RawConnect();
  const char junk[12] = {'B', 'O', 'G', 'U', 'S', '!', 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(WriteFull(sock, junk, sizeof(junk)).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, ReadErrorReplyCode(sock));
  // After the error reply the daemon hangs up: the next read is a clean
  // end-of-stream, not a hang.
  char byte = 0;
  EXPECT_EQ(StatusCode::kNotFound, ReadFull(sock, &byte, 1).code());
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, WrongVersionIsInvalid) {
  SocketFd sock = RawConnect();
  // Valid magic, version 9, type kPing, empty payload.
  const char frame[12] = {'N', 'F', 'S', 'V', 9, 0, 1, 0, 0, 0, 0, 0};
  ASSERT_TRUE(WriteFull(sock, frame, sizeof(frame)).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, UnknownMessageTypeIsInvalid) {
  SocketFd sock = RawConnect();
  const char frame[12] = {'N', 'F', 'S', 'V', 2, 0, 99, 0, 0, 0, 0, 0};
  ASSERT_TRUE(WriteFull(sock, frame, sizeof(frame)).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  SocketFd sock = RawConnect();
  // Declares a 4 GiB payload: must be refused from the header alone.
  unsigned char frame[12] = {'N', 'F', 'S', 'V', 2,    0,
                             1,   0,   0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(WriteFull(sock, frame, sizeof(frame)).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, MidFrameDisconnectIsHandledQuietly) {
  {
    SocketFd sock = RawConnect();
    // Header promising 100 payload bytes, then only 10 arrive, then close:
    // the daemon's read classifies this as DataLoss and tears down.
    const char header[12] = {'N', 'F', 'S', 'V', 1, 0, 3, 0, 100, 0, 0, 0};
    ASSERT_TRUE(WriteFull(sock, header, sizeof(header)).ok());
    const char partial[10] = {0};
    ASSERT_TRUE(WriteFull(sock, partial, sizeof(partial)).ok());
  }  // destructor closes mid-frame
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, GarbagePayloadIsDataLossReply) {
  SocketFd sock = RawConnect();
  // A well-framed kCount whose payload is not a decodable CountRequest.
  ASSERT_TRUE(WriteFrame(sock, MsgType::kCount, "garbage-bytes").ok());
  EXPECT_EQ(StatusCode::kDataLoss, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, TrailingBytesInPayloadAreDataLoss) {
  SocketFd sock = RawConnect();
  serve::CountRequest req;
  req.name = "s";
  req.length = 3;
  std::string payload = serve::EncodeCount(req) + "extra";
  ASSERT_TRUE(WriteFrame(sock, MsgType::kCount, payload).ok());
  EXPECT_EQ(StatusCode::kDataLoss, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, SlowLorisIsCutOffByReadTimeout) {
  SocketFd sock = RawConnect();
  // Half a header, then stall. The daemon's 500 ms receive timeout must
  // cut the connection off rather than pinning a thread forever.
  const char half[6] = {'N', 'F', 'S', 'V', 1, 0};
  ASSERT_TRUE(WriteFull(sock, half, sizeof(half)).ok());
  // The daemon sends a DeadlineExceeded reply and closes; reading until
  // end-of-stream must terminate well within the test timeout.
  std::string drained;
  char byte = 0;
  for (int i = 0; i < 1 << 20; ++i) {
    Status read = ReadFull(sock, &byte, 1);
    if (!read.ok()) break;
    drained.push_back(byte);
  }
  // Whatever arrived, the socket is now closed — and the daemon is free.
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, ClientDeathMidFrameViaInjectedFault) {
  {
    SocketFd sock = RawConnect();
    serve::CountRequest req;
    req.name = "s";
    req.length = 3;
    // The net.write failpoint truncates our request frame partway,
    // simulating a peer process dying mid-send.
    ASSERT_TRUE(failpoint::Set("net.write", "short-write(15):1").ok());
    Status sent = WriteFrame(sock, MsgType::kCount, serve::EncodeCount(req));
    failpoint::Clear("net.write");
    EXPECT_EQ(StatusCode::kUnavailable, sent.code());
    EXPECT_GE(failpoint::Hits("net.write"), 1);
  }  // close with the daemon mid-read of our frame
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, ImmediateDisconnectIsQuiet) {
  for (int i = 0; i < 8; ++i) {
    SocketFd sock = RawConnect();
    ASSERT_TRUE(sock.valid());
  }  // open/close churn, no bytes sent
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, ReplyTypeFromClientIsRejected) {
  SocketFd sock = RawConnect();
  ASSERT_TRUE(WriteFrame(sock, MsgType::kReply, "").ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, ReadErrorReplyCode(sock));
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, AbsurdSampleCountsAreCleanErrors) {
  Result<ServeClient> client = ServeClient::Connect(daemon_->port());
  ASSERT_TRUE(client.ok());
  // 2^60 words can neither be allocated nor fit one reply frame: the
  // daemon must refuse at the dispatch boundary, not die in the sampler's
  // reserve (bad_alloc) or overflow the rejection-attempt budget.
  EXPECT_EQ(
      StatusCode::kResourceExhausted,
      client->SampleWords("s", 3, int64_t{1} << 60).status().code());
  // A count that fits the frame but exceeds the session's per-call draw
  // cap is rejected by the session layer instead.
  EXPECT_EQ(StatusCode::kInvalidArgument,
            client->SampleWords("s", 3, EngineSession::kMaxDrawsPerCall + 1)
                .status()
                .code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            client->SampleWords("s", 3, -5).status().code());
  // Application-level rejections keep the connection usable.
  Result<serve::SampleResult> small = client->SampleWords("s", 3, 2);
  EXPECT_TRUE(small.ok() ||
              small.status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());
  ExpectDaemonAlive();
}

TEST_F(ServeProtocolTest, RequestsOnUnknownSessionsAreCleanErrors) {
  Result<ServeClient> client = ServeClient::Connect(daemon_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(StatusCode::kNotFound,
            client->CountAtLength("missing", 3).status().code());
  EXPECT_EQ(StatusCode::kNotFound,
            client->SampleWords("missing", 3, 1).status().code());
  // The connection survives application-level errors (unlike framing
  // violations): the same client keeps working.
  EXPECT_TRUE(client->Ping().ok());
  Result<double> count = client->CountAtLength("s", 3);
  EXPECT_TRUE(count.ok());
  // Malformed register via the typed client: bad name, clean error.
  serve::RegisterRequest req;
  req.name = "../../etc/passwd";
  req.nfa_text = "nfa 1 1\ninitial 0\naccepting 0\n";
  req.horizon = 2;
  EXPECT_EQ(StatusCode::kInvalidArgument, client->Register(req).code());
  EXPECT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace nfacount
