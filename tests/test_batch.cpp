// Batch-width invariance of the lockstep sampling plane: because every
// candidate walk draws from its own attempt-indexed RNG substream, the same
// (nfa, n, seed) must produce bit-identical estimates, per-(q,ℓ) tables, and
// post-run draw sequences for every batch_width — and for the SIMD vs scalar
// kernel tables, whose operations compute identical bits by construction.
// Also covers the arena reuse contract (no per-sample allocations once the
// slabs are warm) and the batch_width validation surface.

#include <gtest/gtest.h>

#include <vector>

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nfacount {
namespace {

using testing_support::ExpectTablesIdentical;
using testing_support::TestSeed;

CountOptions BatchOpts(uint64_t seed, int batch_width) {
  CountOptions o;
  o.eps = 0.3;
  o.delta = 0.2;
  o.seed = seed;
  o.batch_width = batch_width;
  return o;
}

TEST(Batch, EstimateBitIdenticalAcrossBatchWidths) {
  Rng rng(TestSeed(701));
  for (int trial = 0; trial < 3; ++trial) {
    Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
    const int n = 6;
    const uint64_t seed = TestSeed(702) + trial;
    Result<CountEstimate> narrow = ApproxCount(nfa, n, BatchOpts(seed, 1));
    Result<CountEstimate> medium = ApproxCount(nfa, n, BatchOpts(seed, 4));
    Result<CountEstimate> wide = ApproxCount(nfa, n, BatchOpts(seed, 16));
    ASSERT_TRUE(narrow.ok() && medium.ok() && wide.ok());
    EXPECT_EQ(narrow->estimate, medium->estimate) << "trial=" << trial;
    EXPECT_EQ(narrow->estimate, wide->estimate) << "trial=" << trial;
    // Every deterministic counter must agree — including the per-walk
    // attempt counters (sample_calls, fail_*): the engine consumes outcomes
    // exactly up to the attempt that fills each sample set, so speculative
    // lockstep surplus never leaks into the diagnostics at any width.
    for (const CountEstimate* other : {&*medium, &*wide}) {
      EXPECT_EQ(narrow->diagnostics.states_processed,
                other->diagnostics.states_processed);
      EXPECT_EQ(narrow->diagnostics.padded_words,
                other->diagnostics.padded_words);
      EXPECT_EQ(narrow->diagnostics.perturbed_counts,
                other->diagnostics.perturbed_counts);
      EXPECT_EQ(narrow->diagnostics.sample_calls,
                other->diagnostics.sample_calls);
      EXPECT_EQ(narrow->diagnostics.sample_success,
                other->diagnostics.sample_success);
      EXPECT_EQ(narrow->diagnostics.fail_phi_gt_1,
                other->diagnostics.fail_phi_gt_1);
      EXPECT_EQ(narrow->diagnostics.fail_bernoulli,
                other->diagnostics.fail_bernoulli);
      EXPECT_EQ(narrow->diagnostics.fail_dead_branch,
                other->diagnostics.fail_dead_branch);
      // Accounting identity: every consumed attempt has exactly one fate.
      EXPECT_EQ(other->diagnostics.sample_calls,
                other->diagnostics.sample_success +
                    other->diagnostics.fail_phi_gt_1 +
                    other->diagnostics.fail_bernoulli +
                    other->diagnostics.fail_dead_branch);
    }
  }
}

TEST(Batch, TablesAndDrawsBitIdenticalAcrossBatchWidths) {
  Rng rng(TestSeed(711));
  Nfa nfa = RandomNfa(6, 0.3, 0.35, rng);
  const int n = 6;
  Result<FprasParams> params =
      FprasParams::Make(Schedule::kFaster, nfa.num_states(), n, 0.35, 0.2,
                        Calibration::Practical());
  ASSERT_TRUE(params.ok());

  FprasParams p1 = *params;
  p1.batch_width = 1;
  FprasParams p16 = *params;
  p16.batch_width = 16;
  FprasEngine one(&nfa, p1, TestSeed(712));
  FprasEngine sixteen(&nfa, p16, TestSeed(712));
  ASSERT_TRUE(one.Run().ok());
  ASSERT_TRUE(sixteen.Run().ok());

  EXPECT_EQ(one.Estimate(), sixteen.Estimate());
  ExpectTablesIdentical(one, sixteen, nfa, n);

  // The post-run draw sequence is counter-keyed per attempt: the j-th
  // accepted word is the same no matter how attempts were batched. B=1
  // consumes exactly one attempt per SampleAcceptedWord call; harvest the
  // wide engine's accepts in bulk and compare the sequences.
  std::vector<Word> wide_words;
  sixteen.SampleAcceptedInto(nfa.accepting(), n, /*max_attempts=*/64,
                             /*min_accepts=*/64, &wide_words);
  std::vector<Word> narrow_words;
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::optional<Word> w = one.SampleAcceptedWord();
    if (w.has_value()) narrow_words.push_back(*w);
  }
  EXPECT_EQ(narrow_words, wide_words);
}

TEST(Batch, SamplerFacadeIdenticalAcrossBatchWidthsAndKernels) {
  Rng rng(TestSeed(721));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  SamplerOptions base;
  base.seed = TestSeed(722);
  SamplerOptions narrow = base;
  narrow.batch_width = 1;
  SamplerOptions wide = base;
  wide.batch_width = 64;
  SamplerOptions scalar = base;
  scalar.batch_width = 64;
  scalar.simd_kernels = false;

  Result<WordSampler> a = WordSampler::Build(nfa, 6, narrow);
  Result<WordSampler> b = WordSampler::Build(nfa, 6, wide);
  Result<WordSampler> c = WordSampler::Build(nfa, 6, scalar);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->CountEstimate(), b->CountEstimate());
  EXPECT_EQ(a->CountEstimate(), c->CountEstimate());
  for (int i = 0; i < 20; ++i) {
    Result<Word> wa = a->Sample();
    Result<Word> wb = b->Sample();
    Result<Word> wc = c->Sample();
    ASSERT_TRUE(wa.ok() && wb.ok() && wc.ok());
    EXPECT_EQ(*wa, *wb) << "draw " << i;
    EXPECT_EQ(*wa, *wc) << "draw " << i;
  }
}

TEST(Batch, ForcedScalarDispatchIdenticalEstimates) {
  // Process-wide kernel redirection (the NFACOUNT_FORCE_SCALAR / --no-simd
  // path) must be invisible in every estimate.
  Rng rng(TestSeed(731));
  Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
  Result<CountEstimate> active = ApproxCount(nfa, 6, BatchOpts(TestSeed(732), 8));
  simd::SetForceScalar(true);
  Result<CountEstimate> scalar = ApproxCount(nfa, 6, BatchOpts(TestSeed(732), 8));
  simd::SetForceScalar(false);
  ASSERT_TRUE(active.ok() && scalar.ok());
  EXPECT_EQ(active->estimate, scalar->estimate);
}

TEST(Batch, BatchWidthComposesWithThreadsAndLayout) {
  // The three determinism contracts must hold jointly: (threads, batch,
  // layout) all flip at once, results stay put.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  CountOptions base = BatchOpts(TestSeed(741), 1);
  CountOptions flipped = BatchOpts(TestSeed(741), 32);
  flipped.num_threads = 4;
  flipped.csr_hot_path = false;
  Result<CountEstimate> a = ApproxCount(nfa, 8, base);
  Result<CountEstimate> b = ApproxCount(nfa, 8, flipped);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
}

TEST(Batch, ArenaStopsAllocatingAfterWarmup) {
  // The zero-per-sample-allocation contract: once the engine run has warmed
  // the per-worker arena slabs, drawing many more samples must not grow any
  // arena capacity.
  Rng rng(TestSeed(751));
  Nfa nfa = RandomNfa(6, 0.35, 0.4, rng);
  SamplerOptions opts;
  opts.seed = TestSeed(752);
  opts.batch_width = 16;
  Result<WordSampler> sampler = WordSampler::Build(nfa, 6, opts);
  ASSERT_TRUE(sampler.ok());

  // Warmup: the build itself ran thousands of batches; one more draw batch
  // settles any post-run scratch.
  ASSERT_TRUE(sampler->Sample().ok());
  const int64_t warm_allocs = sampler->diagnostics().arena_alloc_events;
  const int64_t warm_bytes = sampler->diagnostics().arena_bytes_reserved;
  ASSERT_GT(warm_bytes, 0);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(sampler->Sample().ok());
  }
  EXPECT_EQ(sampler->diagnostics().arena_alloc_events, warm_allocs)
      << "drawing 200 samples grew an arena slab";
  EXPECT_EQ(sampler->diagnostics().arena_bytes_reserved, warm_bytes);
}

TEST(Batch, InvalidBatchWidthIsStatusNotCrash) {
  Nfa nfa = ParityNfa(2);
  CountOptions bad = BatchOpts(TestSeed(761), -1);
  Result<CountEstimate> r = ApproxCount(nfa, 5, bad);
  EXPECT_FALSE(r.ok());
  bad.batch_width = FprasParams::kMaxBatchWidth + 1;
  r = ApproxCount(nfa, 5, bad);
  EXPECT_FALSE(r.ok());
  // 0 = engine default: valid.
  bad.batch_width = 0;
  r = ApproxCount(nfa, 5, bad);
  EXPECT_TRUE(r.ok());
}

TEST(Batch, SampleBlockViewsMatchMaterializedSamples) {
  // SampleBlockFor and SamplesFor expose the same data: spans vs copies.
  Rng rng(TestSeed(771));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  const int n = 5;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.4, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, TestSeed(772));
  ASSERT_TRUE(engine.Run().ok());
  for (int level = 0; level <= n; ++level) {
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      const SampleBlock& block = engine.SampleBlockFor(q, level);
      const auto samples = engine.SamplesFor(q, level);
      ASSERT_EQ(static_cast<size_t>(block.count()), samples.size());
      for (int64_t i = 0; i < block.count(); ++i) {
        const SampleRef ref = block.At(i);
        EXPECT_EQ(ref.ToWord(), samples[static_cast<size_t>(i)].word);
        for (StateId s = 0; s < nfa.num_states(); ++s) {
          EXPECT_EQ(ref.ProfileTest(s),
                    samples[static_cast<size_t>(i)].reach.Test(s));
        }
      }
    }
  }
}

}  // namespace
}  // namespace nfacount
