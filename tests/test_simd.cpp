// SIMD kernel equivalence: every AVX2 kernel must produce bit-identical
// results to the scalar reference on exhaustive small sizes (0..~3 vector
// widths, hitting every tail-word count) and on randomized large arrays.
// Also covers the dispatch switches (SetForceScalar and the Bitset routing)
// — flipping tables mid-process must never change a Bitset operation's
// result.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "test_seed.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nfacount {
namespace {

using simd::ActiveKernels;
using simd::Avx2Kernels;
using simd::BitsetKernels;
using simd::ScalarKernels;
using simd::SetForceScalar;
using testing_support::TestSeed;

std::vector<uint64_t> RandomWords(size_t n, Rng& rng) {
  std::vector<uint64_t> out(n);
  for (auto& w : out) w = rng.NextU64();
  return out;
}

/// Runs every kernel of `a` and `b` on the same inputs of `n` words and
/// asserts identical outputs/results.
void ExpectKernelsAgree(const BitsetKernels& a, const BitsetKernels& b,
                        size_t n, Rng& rng) {
  SCOPED_TRACE(std::string(a.name) + " vs " + b.name + " n=" +
               std::to_string(n));
  const std::vector<uint64_t> x = RandomWords(n, rng);
  const std::vector<uint64_t> y = RandomWords(n, rng);
  const std::vector<uint64_t> m = RandomWords(n, rng);

  std::vector<uint64_t> da = x, db = x;
  a.or_into(da.data(), y.data(), n);
  b.or_into(db.data(), y.data(), n);
  EXPECT_EQ(da, db) << "or_into";

  da = x;
  db = x;
  a.and_into(da.data(), y.data(), n);
  b.and_into(db.data(), y.data(), n);
  EXPECT_EQ(da, db) << "and_into";

  da = x;
  db = x;
  a.andnot_into(da.data(), y.data(), n);
  b.andnot_into(db.data(), y.data(), n);
  EXPECT_EQ(da, db) << "andnot_into";

  da = x;
  db = x;
  a.or_masked_into(da.data(), y.data(), m.data(), n);
  b.or_masked_into(db.data(), y.data(), m.data(), n);
  EXPECT_EQ(da, db) << "or_masked_into";

  EXPECT_EQ(a.intersects(x.data(), y.data(), n),
            b.intersects(x.data(), y.data(), n));
  EXPECT_EQ(a.popcount(x.data(), n), b.popcount(x.data(), n));
}

TEST(Simd, ScalarKernelsMatchDirectComputation) {
  Rng rng(TestSeed(601));
  const BitsetKernels& k = ScalarKernels();
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{17}}) {
    const std::vector<uint64_t> x = RandomWords(n, rng);
    const std::vector<uint64_t> y = RandomWords(n, rng);
    const std::vector<uint64_t> m = RandomWords(n, rng);
    std::vector<uint64_t> got = x;
    k.or_masked_into(got.data(), y.data(), m.data(), n);
    size_t pop = 0;
    bool inter = false;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], x[i] | (y[i] & m[i])) << i;
      pop += static_cast<size_t>(__builtin_popcountll(x[i]));
      inter = inter || (x[i] & y[i]) != 0;
    }
    EXPECT_EQ(k.popcount(x.data(), n), pop);
    EXPECT_EQ(k.intersects(x.data(), y.data(), n), inter);
  }
}

TEST(Simd, Avx2MatchesScalarExhaustiveSmallSizes) {
  const BitsetKernels* avx2 = Avx2Kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  Rng rng(TestSeed(602));
  // 0..13 words covers empty input, pure-tail inputs (1..3 words), exactly
  // one vector (4), and every vector+tail combination up to three vectors.
  for (size_t n = 0; n <= 13; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      ExpectKernelsAgree(ScalarKernels(), *avx2, n, rng);
    }
  }
}

TEST(Simd, Avx2MatchesScalarRandomizedLargeSizes) {
  const BitsetKernels* avx2 = Avx2Kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  Rng rng(TestSeed(603));
  for (int rep = 0; rep < 40; ++rep) {
    // Large spans with every tail-word residue mod 4.
    const size_t n = 64 + rng.UniformU64(256);
    ExpectKernelsAgree(ScalarKernels(), *avx2, n, rng);
  }
}

TEST(Simd, Avx2IntersectsFindsSingleSharedBit) {
  const BitsetKernels* avx2 = Avx2Kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this host";
  // Randomized agreement rarely exercises the all-zero overlap case; plant
  // exactly one shared bit at every position of a 9-word span.
  const size_t n = 9;
  for (size_t bit = 0; bit < n * 64; ++bit) {
    std::vector<uint64_t> a(n, 0), b(n, 0);
    a[bit / 64] = uint64_t{1} << (bit % 64);
    b[bit / 64] = uint64_t{1} << (bit % 64);
    EXPECT_TRUE(avx2->intersects(a.data(), b.data(), n)) << bit;
    b[bit / 64] = 0;
    EXPECT_FALSE(avx2->intersects(a.data(), b.data(), n)) << bit;
  }
}

TEST(Simd, ForceScalarSwitchRedirectsDispatchWithoutChangingResults) {
  Rng rng(TestSeed(604));
  Bitset a(200), b(200), mask(200);
  for (size_t i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.4)) a.Set(i);
    if (rng.Bernoulli(0.4)) b.Set(i);
    if (rng.Bernoulli(0.5)) mask.Set(i);
  }
  Bitset active_result = a;
  active_result.OrMasked(b, mask);
  const size_t active_count = a.Count();
  const bool active_inter = a.Intersects(b);

  SetForceScalar(true);
  EXPECT_STREQ(ActiveKernels().name, "scalar");
  Bitset scalar_result = a;
  scalar_result.OrMasked(b, mask);
  EXPECT_EQ(scalar_result, active_result);
  EXPECT_EQ(a.Count(), active_count);
  EXPECT_EQ(a.Intersects(b), active_inter);
  SetForceScalar(false);  // restore auto-detection for the rest of the suite

  if (Avx2Kernels() != nullptr && std::getenv("NFACOUNT_FORCE_SCALAR") == nullptr) {
    EXPECT_STREQ(ActiveKernels().name, "avx2");
  }
}

TEST(Simd, BitsetAndNotMatchesNaive) {
  Rng rng(TestSeed(605));
  for (size_t bits : {size_t{1}, size_t{63}, size_t{64}, size_t{257}}) {
    Bitset a(bits), b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.Bernoulli(0.5)) a.Set(i);
      if (rng.Bernoulli(0.5)) b.Set(i);
    }
    Bitset expected(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (a.Test(i) && !b.Test(i)) expected.Set(i);
    }
    Bitset got = a;
    got.AndNot(b);
    EXPECT_EQ(got, expected) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace nfacount
