// Tests for Algorithm 1 (AppUnion): trial-count formulas, estimator accuracy
// under exact and perturbed size estimates, overlap handling, starvation
// policies, and the fresh-draw Karp-Luby variant.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "counting/union_mc.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

/// Test input: an explicit integer set with a pre-drawn uniform sample list.
struct IntSetInput {
  std::set<int> elements;
  std::vector<int> samples;  // pre-drawn uniformly with replacement
  double reported_size;      // possibly perturbed estimate

  double size_estimate() const { return reported_size; }
  int64_t num_samples() const { return static_cast<int64_t>(samples.size()); }
  const int& Sample(int64_t i) const { return samples[static_cast<size_t>(i)]; }
  bool Contains(const int& x) const { return elements.count(x) > 0; }
};

IntSetInput MakeInput(std::set<int> elements, int64_t num_samples, Rng& rng,
                      double size_factor = 1.0) {
  IntSetInput input;
  input.elements = std::move(elements);
  std::vector<int> pool(input.elements.begin(), input.elements.end());
  for (int64_t i = 0; i < num_samples; ++i) {
    input.samples.push_back(pool[rng.UniformU64(pool.size())]);
  }
  input.reported_size = static_cast<double>(input.elements.size()) * size_factor;
  return input;
}

double TrueUnionSize(const std::vector<IntSetInput>& inputs) {
  std::set<int> u;
  for (const auto& in : inputs) u.insert(in.elements.begin(), in.elements.end());
  return static_cast<double>(u.size());
}

AppUnionOutcome RunAppUnion(const std::vector<IntSetInput>& inputs,
                            const AppUnionParams& params, Rng& rng) {
  std::vector<const IntSetInput*> ptrs;
  for (const auto& in : inputs) ptrs.push_back(&in);
  return AppUnion(ptrs, params, rng);
}

TEST(TrialCount, MatchesFormula) {
  AppUnionParams p;
  p.eps = 0.5;
  p.delta = 0.25;
  p.eps_sz = 0.0;
  p.min_trials = 1;
  // m̄ = ceil(10/4) = 3; t = ceil(12·3/0.25·ln(16)).
  int64_t t = AppUnionTrialCount(p, /*sum_sz=*/10.0, /*max_sz=*/4.0);
  EXPECT_EQ(t, static_cast<int64_t>(std::ceil(12.0 * 3 / 0.25 * std::log(16.0))));
}

TEST(TrialCount, ScaleAndFloors) {
  AppUnionParams p;
  p.eps = 0.1;
  p.delta = 0.1;
  p.trial_scale = 1e-9;
  p.min_trials = 77;
  EXPECT_EQ(AppUnionTrialCount(p, 10, 10), 77);
  p.min_trials = 1;
  p.max_trials = 1000;
  p.trial_scale = 1e12;
  EXPECT_EQ(AppUnionTrialCount(p, 10, 10), 1000);
}

TEST(Thresh, MatchesTheoremFormula) {
  AppUnionParams p;
  p.eps = 0.5;
  p.delta = 0.2;
  p.eps_sz = 0.1;
  double expect = 24.0 * 1.1 * 1.1 / 0.25 * std::log(4.0 * 3 / 0.2);
  EXPECT_NEAR(AppUnionThresh(p, 3), expect, 1e-9);
}

TEST(AppUnion, EmptyInputsGiveZero) {
  Rng rng(TestSeed(1));
  std::vector<IntSetInput> inputs;
  AppUnionParams p;
  EXPECT_EQ(RunAppUnion(inputs, p, rng).estimate, 0.0);
  // All-zero size estimates: union is (estimated) empty.
  inputs.push_back(IntSetInput{{}, {}, 0.0});
  EXPECT_EQ(RunAppUnion(inputs, p, rng).estimate, 0.0);
}

TEST(AppUnion, SingleSetIsItsSize) {
  Rng rng(TestSeed(2));
  std::set<int> s;
  for (int i = 0; i < 100; ++i) s.insert(i);
  std::vector<IntSetInput> inputs = {MakeInput(s, 4096, rng)};
  AppUnionParams p;
  p.eps = 0.2;
  p.delta = 0.1;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  // Every sampled pair is in U_unique for a single set: estimate == sum_sz.
  EXPECT_DOUBLE_EQ(out.estimate, 100.0);
  EXPECT_EQ(out.hits, out.completed_trials);
}

class AppUnionAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(AppUnionAccuracy, DisjointSetsSumUp) {
  Rng rng(GetParam());
  std::vector<IntSetInput> inputs;
  int base = 0;
  double total = 0;
  for (int i = 0; i < 4; ++i) {
    std::set<int> s;
    int size = 20 * (i + 1);
    for (int x = 0; x < size; ++x) s.insert(base + x);
    base += 1000;
    total += size;
    inputs.push_back(MakeInput(std::move(s), 8192, rng));
  }
  AppUnionParams p;
  p.eps = 0.15;
  p.delta = 0.05;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  EXPECT_NEAR(out.estimate / total, 1.0, 0.15);
}

TEST_P(AppUnionAccuracy, HeavyOverlapIsNotOvercounted) {
  Rng rng(GetParam() + 100);
  // Four sets that are 90% shared: naive summing overcounts ~3.4x.
  std::set<int> shared;
  for (int x = 0; x < 90; ++x) shared.insert(x);
  std::vector<IntSetInput> inputs;
  for (int i = 0; i < 4; ++i) {
    std::set<int> s = shared;
    for (int x = 0; x < 10; ++x) s.insert(1000 + 10 * i + x);
    inputs.push_back(MakeInput(std::move(s), 8192, rng));
  }
  const double truth = TrueUnionSize(inputs);  // 90 + 40 = 130
  ASSERT_EQ(truth, 130.0);
  AppUnionParams p;
  p.eps = 0.15;
  p.delta = 0.05;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  EXPECT_NEAR(out.estimate / truth, 1.0, 0.15);
}

TEST_P(AppUnionAccuracy, NestedSetsCollapseToLargest) {
  Rng rng(GetParam() + 200);
  // T1 ⊂ T2 ⊂ T3: union = T3.
  std::vector<IntSetInput> inputs;
  for (int size : {25, 50, 100}) {
    std::set<int> s;
    for (int x = 0; x < size; ++x) s.insert(x);
    inputs.push_back(MakeInput(std::move(s), 8192, rng));
  }
  AppUnionParams p;
  p.eps = 0.15;
  p.delta = 0.05;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  EXPECT_NEAR(out.estimate / 100.0, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppUnionAccuracy, ::testing::Range(1, 6));

TEST(AppUnion, ToleratesPerturbedSizeEstimates) {
  // Size estimates off by (1±ε_sz) still give (1+ε)(1+ε_sz) accuracy
  // (Theorem 1). Perturb sizes by ±20% and pass eps_sz = 0.2.
  Rng rng(TestSeed(42));
  std::vector<IntSetInput> inputs;
  inputs.push_back(MakeInput([] {
                     std::set<int> s;
                     for (int x = 0; x < 80; ++x) s.insert(x);
                     return s;
                   }(),
                   8192, rng, /*size_factor=*/1.2));
  inputs.push_back(MakeInput([] {
                     std::set<int> s;
                     for (int x = 40; x < 140; ++x) s.insert(x);
                     return s;
                   }(),
                   8192, rng, /*size_factor=*/0.8333));
  AppUnionParams p;
  p.eps = 0.15;
  p.delta = 0.05;
  p.eps_sz = 0.2;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  const double truth = 140.0;
  // Combined guarantee: within (1+0.15)(1+0.2) multiplicative.
  EXPECT_GT(out.estimate, truth / (1.15 * 1.2) * 0.9);
  EXPECT_LT(out.estimate, truth * 1.15 * 1.2 * 1.1);
}

TEST(AppUnion, StarvationBreakUndercounts) {
  // Tiny sample lists + kBreak: the Y/t estimate collapses (the failure mode
  // the paper's thresh bound protects against; see union_mc.hpp).
  Rng rng(TestSeed(7));
  std::set<int> s;
  for (int x = 0; x < 50; ++x) s.insert(x);
  std::vector<IntSetInput> inputs = {MakeInput(s, /*num_samples=*/5, rng)};
  AppUnionParams p;
  p.eps = 0.1;
  p.delta = 0.1;
  p.starvation = StarvationPolicy::kBreak;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  EXPECT_TRUE(out.starved);
  EXPECT_LT(out.estimate, 50.0 * 0.5);
}

TEST(AppUnion, StarvationRecycleStaysAccurate) {
  Rng rng(TestSeed(8));
  std::set<int> s;
  for (int x = 0; x < 50; ++x) s.insert(x);
  std::vector<IntSetInput> inputs = {MakeInput(s, /*num_samples=*/64, rng)};
  AppUnionParams p;
  p.eps = 0.1;
  p.delta = 0.1;
  p.starvation = StarvationPolicy::kRecycle;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  EXPECT_TRUE(out.starved);  // the event is still reported
  EXPECT_DOUBLE_EQ(out.estimate, 50.0);
}

TEST(AppUnion, StarvationScaleByCompletedSingleSet) {
  Rng rng(TestSeed(9));
  std::set<int> s;
  for (int x = 0; x < 50; ++x) s.insert(x);
  std::vector<IntSetInput> inputs = {MakeInput(s, /*num_samples=*/16, rng)};
  AppUnionParams p;
  p.eps = 0.1;
  p.delta = 0.1;
  p.starvation = StarvationPolicy::kScaleByCompleted;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  // Single set: every completed trial hits, so Y/completed = 1 exactly.
  EXPECT_DOUBLE_EQ(out.estimate, 50.0);
}

TEST(AppUnion, MembershipChecksOnlyAgainstEarlierSets) {
  Rng rng(TestSeed(10));
  std::vector<IntSetInput> inputs;
  std::set<int> s = {1, 2, 3};
  inputs.push_back(MakeInput(s, 4096, rng));
  inputs.push_back(MakeInput(s, 4096, rng));
  AppUnionParams p;
  p.eps = 0.2;
  p.delta = 0.1;
  AppUnionOutcome out = RunAppUnion(inputs, p, rng);
  // Identical sets: union = 3. Checks happen only for draws from input 1.
  EXPECT_NEAR(out.estimate, 3.0, 0.8);
  EXPECT_GT(out.membership_checks, 0);
  EXPECT_LT(out.membership_checks, out.trials);  // never 2 checks per trial
}

/// Fresh-draw input for the classic variant.
struct DrawInput {
  std::set<int> elements;
  double size_estimate() const { return static_cast<double>(elements.size()); }
  int Draw(Rng& rng) const {
    std::vector<int> pool(elements.begin(), elements.end());
    return pool[rng.UniformU64(pool.size())];
  }
  bool Contains(const int& x) const { return elements.count(x) > 0; }
};

TEST(AppUnionResample, ClassicKarpLubyAccurate) {
  Rng rng(TestSeed(11));
  std::vector<DrawInput> inputs;
  std::set<int> a, b, c;
  for (int x = 0; x < 60; ++x) a.insert(x);
  for (int x = 30; x < 90; ++x) b.insert(x);
  for (int x = 60; x < 150; ++x) c.insert(x);
  inputs.push_back(DrawInput{a});
  inputs.push_back(DrawInput{b});
  inputs.push_back(DrawInput{c});
  std::vector<const DrawInput*> ptrs;
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams p;
  p.eps = 0.1;
  p.delta = 0.05;
  AppUnionOutcome out = AppUnionResample(ptrs, p, rng);
  EXPECT_NEAR(out.estimate / 150.0, 1.0, 0.1);
}

TEST(AppUnion, DeterministicUnderSeed) {
  Rng build(12);
  std::set<int> s;
  for (int x = 0; x < 40; ++x) s.insert(x);
  std::vector<IntSetInput> inputs = {MakeInput(s, 2048, build)};
  AppUnionParams p;
  p.eps = 0.2;
  p.delta = 0.2;
  Rng r1(77), r2(77);
  EXPECT_DOUBLE_EQ(RunAppUnion(inputs, p, r1).estimate,
                   RunAppUnion(inputs, p, r2).estimate);
}

}  // namespace
}  // namespace nfacount
