// Tests for probabilistic query evaluation: lineage construction against
// hand-computed homomorphism sets, exact probabilities against possible-world
// enumeration, and the full approximate pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "apps/pqe.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

// A 2-layer path database: R0 edges a->b, R1 edges b->c.
//   nodes: 0,1 (layer A), 2,3 (layer B), 4 (layer C)
ProbGraphDb TwoHopDb() {
  ProbGraphDb db(5, 2);
  EXPECT_TRUE(db.AddFact(0, 0, 2).ok());  // fact 0
  EXPECT_TRUE(db.AddFact(0, 1, 2).ok());  // fact 1
  EXPECT_TRUE(db.AddFact(0, 1, 3).ok());  // fact 2
  EXPECT_TRUE(db.AddFact(1, 2, 4).ok());  // fact 3
  EXPECT_TRUE(db.AddFact(1, 3, 4).ok());  // fact 4
  return db;
}

// Independent exact PQE: enumerate all 2^facts worlds, evaluate the path
// query by direct graph search in each world.
double WorldEnumerationPqe(const ProbGraphDb& db, const PathQuery& query) {
  const int f = db.num_facts();
  int64_t satisfied = 0;
  for (uint64_t world = 0; world < (uint64_t{1} << f); ++world) {
    // Does a path a0 -R1-> a1 ... exist using only facts in `world`?
    std::vector<int> frontier;
    for (int v = 0; v < db.num_nodes(); ++v) frontier.push_back(v);
    for (int relation : query.relations) {
      std::set<int> next;
      for (int src : frontier) {
        for (int fact_id : db.FactsFrom(relation, src)) {
          if ((world >> fact_id) & 1) next.insert(db.fact(fact_id).dst);
        }
      }
      frontier.assign(next.begin(), next.end());
      if (frontier.empty()) break;
    }
    if (!frontier.empty()) ++satisfied;
  }
  return static_cast<double>(satisfied) / std::pow(2.0, f);
}

TEST(ProbGraphDb, FactBookkeeping) {
  ProbGraphDb db = TwoHopDb();
  EXPECT_EQ(db.num_facts(), 5);
  EXPECT_EQ(db.fact(2).relation, 0);
  EXPECT_EQ(db.fact(2).src, 1);
  EXPECT_EQ(db.fact(2).dst, 3);
  EXPECT_EQ(db.FactsFrom(0, 1), (std::vector<int>{1, 2}));
  EXPECT_TRUE(db.FactsFrom(1, 0).empty());
}

TEST(ProbGraphDb, AddFactValidates) {
  ProbGraphDb db(3, 1);
  EXPECT_FALSE(db.AddFact(1, 0, 1).ok());   // relation out of range
  EXPECT_FALSE(db.AddFact(0, 3, 1).ok());   // node out of range
  EXPECT_FALSE(db.AddFact(0, 0, -1).ok());
  EXPECT_TRUE(db.AddFact(0, 0, 1).ok());
}

TEST(PathQuery, Validation) {
  ProbGraphDb db = TwoHopDb();
  EXPECT_TRUE(ValidatePathQuery(db, PathQuery{{0, 1}}).ok());
  EXPECT_FALSE(ValidatePathQuery(db, PathQuery{{}}).ok());
  EXPECT_FALSE(ValidatePathQuery(db, PathQuery{{0, 0}}).ok());  // self join
  EXPECT_FALSE(ValidatePathQuery(db, PathQuery{{0, 5}}).ok());
}

TEST(Lineage, EnumeratesExactlyTheHomomorphisms) {
  ProbGraphDb db = TwoHopDb();
  Result<Dnf> lineage = LineageDnf(db, PathQuery{{0, 1}});
  ASSERT_TRUE(lineage.ok());
  // Paths: 0-2-4 (facts 0,3), 1-2-4 (facts 1,3), 1-3-4 (facts 2,4).
  EXPECT_EQ(lineage->num_clauses(), 3);
  std::set<std::vector<int>> clauses;
  for (int i = 0; i < lineage->num_clauses(); ++i) {
    clauses.insert(lineage->clause(i).positive);
    EXPECT_TRUE(lineage->clause(i).negative.empty());  // monotone lineage
  }
  EXPECT_TRUE(clauses.count({0, 3}));
  EXPECT_TRUE(clauses.count({1, 3}));
  EXPECT_TRUE(clauses.count({2, 4}));
}

TEST(Lineage, SingleRelationQuery) {
  ProbGraphDb db = TwoHopDb();
  Result<Dnf> lineage = LineageDnf(db, PathQuery{{1}});
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->num_clauses(), 2);  // facts 3 and 4
}

TEST(Lineage, NoHomomorphismGivesEmptyDnf) {
  ProbGraphDb db(3, 2);
  ASSERT_TRUE(db.AddFact(0, 0, 1).ok());
  // R1 has no facts: query R0;R1 has no homomorphism.
  Result<Dnf> lineage = LineageDnf(db, PathQuery{{0, 1}});
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->num_clauses(), 0);
}

TEST(Lineage, ClauseBudgetEnforced) {
  // Complete bipartite layers: k² homomorphisms for a 2-hop query.
  ProbGraphDb db(12, 2);
  for (int a = 0; a < 4; ++a) {
    for (int b = 4; b < 8; ++b) ASSERT_TRUE(db.AddFact(0, a, b).ok());
  }
  for (int b = 4; b < 8; ++b) {
    for (int c = 8; c < 12; ++c) ASSERT_TRUE(db.AddFact(1, b, c).ok());
  }
  Result<Dnf> bounded = LineageDnf(db, PathQuery{{0, 1}}, /*max_clauses=*/10);
  EXPECT_FALSE(bounded.ok());
  Result<Dnf> full = LineageDnf(db, PathQuery{{0, 1}});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_clauses(), 64);  // 4 starts × 4 mids × 4 ends
}

TEST(ExactPqe, MatchesWorldEnumeration) {
  ProbGraphDb db = TwoHopDb();
  for (PathQuery query : {PathQuery{{0, 1}}, PathQuery{{0}}, PathQuery{{1}}}) {
    Result<double> exact = ExactPqe(db, query);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(exact.value(), WorldEnumerationPqe(db, query), 1e-12);
  }
}

TEST(ExactPqe, KnownHandValue) {
  // Single fact, single-relation query: Pr = 1/2.
  ProbGraphDb db(2, 1);
  ASSERT_TRUE(db.AddFact(0, 0, 1).ok());
  Result<double> p = ExactPqe(db, PathQuery{{0}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
}

TEST(ApproxPqe, TracksExactOnRandomDatabases) {
  Rng rng(TestSeed(3));
  for (int trial = 0; trial < 4; ++trial) {
    // Random 3-layer DAG with ~10 facts.
    ProbGraphDb db(9, 2);
    for (int a = 0; a < 3; ++a) {
      for (int b = 3; b < 6; ++b) {
        if (rng.Bernoulli(0.6)) {
          ASSERT_TRUE(db.AddFact(0, a, b).ok());
        }
      }
    }
    for (int b = 3; b < 6; ++b) {
      for (int c = 6; c < 9; ++c) {
        if (rng.Bernoulli(0.6)) {
          ASSERT_TRUE(db.AddFact(1, b, c).ok());
        }
      }
    }
    PathQuery query{{0, 1}};
    Result<double> exact = ExactPqe(db, query);
    ASSERT_TRUE(exact.ok());

    CountOptions options;
    options.eps = 0.3;
    options.delta = 0.2;
    options.seed = TestSeed(400 + trial);
    Result<PqeResult> approx = ApproxPqe(db, query, options);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    if (exact.value() == 0.0) {
      EXPECT_EQ(approx->probability, 0.0);
    } else {
      EXPECT_NEAR(approx->probability / exact.value(), 1.0, 0.5)
          << "trial=" << trial << " exact=" << exact.value();
    }
    EXPECT_EQ(approx->nfa_states,
              1 + approx->lineage_clauses * db.num_facts());
  }
}

TEST(ApproxPqe, EmptyLineageGivesZero) {
  ProbGraphDb db(3, 2);
  ASSERT_TRUE(db.AddFact(0, 0, 1).ok());
  Result<PqeResult> r = ApproxPqe(db, PathQuery{{0, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->probability, 0.0);
  EXPECT_EQ(r->lineage_clauses, 0);
}

TEST(DyadicProb, Validation) {
  ProbGraphDb db(2, 1);
  EXPECT_FALSE(db.AddFactWithProb(0, 0, 1, DyadicProb{0, 1}).ok());   // p = 0
  EXPECT_FALSE(db.AddFactWithProb(0, 0, 1, DyadicProb{5, 2}).ok());   // p > 1
  EXPECT_FALSE(db.AddFactWithProb(0, 0, 1, DyadicProb{1, 0}).ok());   // no bits
  EXPECT_FALSE(db.AddFactWithProb(0, 0, 1, DyadicProb{1, 25}).ok());  // too fine
  EXPECT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{3, 2}).ok());    // 3/4
  EXPECT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{4, 2}).ok());    // 1
  EXPECT_TRUE(db.HasNonUniformProbs());
  EXPECT_FALSE(TwoHopDb().HasNonUniformProbs());
  const DyadicProb three_eighths{3, 3};
  EXPECT_DOUBLE_EQ(three_eighths.Value(), 0.375);
}

TEST(WeightedPqe, SingleFactProbabilityTransfersExactly) {
  // One fact with p = c/2^b: Pr[Q] must equal p exactly in expectation; the
  // threshold-gadget NFA has exactly c·2^{B-b}... here B = b so |L| = c.
  for (uint32_t c : {1u, 3u, 5u, 7u, 8u}) {
    ProbGraphDb db(2, 1);
    ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{c, 3}).ok());
    PathQuery query{{0}};
    Result<WeightedPqeInstance> instance = BuildWeightedPqeNfa(db, query);
    ASSERT_TRUE(instance.ok());
    EXPECT_EQ(instance->word_length, 3);
    Result<BigUint> exact_count = BruteForceCount(instance->nfa, 3);
    ASSERT_TRUE(exact_count.ok());
    EXPECT_EQ(exact_count->ToU64(), c) << "c=" << c;
  }
}

TEST(WeightedPqe, ExactMatchesClosedFormTwoFacts) {
  // Two parallel facts with p1 = 3/4, p2 = 1/8; Pr[Q] = 1-(1-p1)(1-p2).
  ProbGraphDb db(2, 1);
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{3, 2}).ok());
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{1, 3}).ok());
  PathQuery query{{0}};
  Result<double> exact = ExactPqeWeighted(db, query);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact.value(), 1.0 - 0.25 * 0.875, 1e-12);

  // And the NFA path reproduces it exactly: |L(A_5)| / 2^5.
  Result<WeightedPqeInstance> instance = BuildWeightedPqeNfa(db, query);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->word_length, 5);
  Result<BigUint> count = BruteForceCount(instance->nfa, 5);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->ToDouble() / 32.0, exact.value(), 1e-12);
}

TEST(WeightedPqe, ApproxTracksExactOnMixedProbabilities) {
  // Two-hop query with a mix of probabilities 1/2, 3/4, 1/8, 15/16.
  ProbGraphDb db(5, 2);
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 2, DyadicProb{3, 2}).ok());
  ASSERT_TRUE(db.AddFactWithProb(0, 1, 2, DyadicProb{1, 3}).ok());
  ASSERT_TRUE(db.AddFact(0, 1, 3).ok());
  ASSERT_TRUE(db.AddFactWithProb(1, 2, 4, DyadicProb{15, 4}).ok());
  ASSERT_TRUE(db.AddFact(1, 3, 4).ok());
  PathQuery query{{0, 1}};

  Result<double> exact = ExactPqeWeighted(db, query);
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact.value(), 0.0);

  CountOptions options;
  options.eps = 0.25;
  options.delta = 0.2;
  options.seed = TestSeed(11);
  Result<PqeResult> approx = ApproxPqeWeighted(db, query, options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_NEAR(approx->probability / exact.value(), 1.0, 0.4)
      << "exact=" << exact.value() << " approx=" << approx->probability;
}

TEST(WeightedPqe, UniformSpecialCaseAgreesWithUnweightedPipeline) {
  ProbGraphDb db = TwoHopDb();
  PathQuery query{{0, 1}};
  Result<double> exact_weighted = ExactPqeWeighted(db, query);
  Result<double> exact_plain = ExactPqe(db, query);
  ASSERT_TRUE(exact_weighted.ok() && exact_plain.ok());
  EXPECT_DOUBLE_EQ(exact_weighted.value(), exact_plain.value());

  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(12);
  Result<PqeResult> weighted = ApproxPqeWeighted(db, query, options);
  ASSERT_TRUE(weighted.ok());
  EXPECT_NEAR(weighted->probability / exact_plain.value(), 1.0, 0.45);
}

TEST(WeightedPqe, ProbabilityOneFactsAlwaysPresent) {
  // p = 1 facts make the query certain when they form a full path.
  ProbGraphDb db(3, 2);
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{2, 1}).ok());  // p = 1
  ASSERT_TRUE(db.AddFactWithProb(1, 1, 2, DyadicProb{4, 2}).ok());  // p = 1
  PathQuery query{{0, 1}};
  Result<double> exact = ExactPqeWeighted(db, query);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact.value(), 1.0);
  Result<PqeResult> approx = ApproxPqeWeighted(db, query, CountOptions());
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->probability, 1.0, 0.3);
}

TEST(WeightedPqe, NoHomomorphismIsZero) {
  ProbGraphDb db(3, 2);
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{3, 2}).ok());
  Result<PqeResult> r = ApproxPqeWeighted(db, PathQuery{{0, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->probability, 0.0);
}

TEST(WeightedPqe, PlainApproxPqeRejectsNonUniform) {
  ProbGraphDb db(2, 1);
  ASSERT_TRUE(db.AddFactWithProb(0, 0, 1, DyadicProb{3, 2}).ok());
  Result<PqeResult> r = ApproxPqe(db, PathQuery{{0}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApproxPqe, ProbabilityIsAtMostOne) {
  // A query that is almost surely true: many disjoint witnesses.
  ProbGraphDb db(8, 1);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(db.AddFact(0, i, i + 1).ok());
  CountOptions options;
  options.eps = 0.3;
  options.seed = TestSeed(5);
  Result<PqeResult> r = ApproxPqe(db, PathQuery{{0}}, options);
  ASSERT_TRUE(r.ok());
  Result<double> exact = ExactPqe(db, PathQuery{{0}});
  ASSERT_TRUE(exact.ok());
  // Pr[at least one of 7 fair-coin facts] = 1 - 2^-7.
  EXPECT_NEAR(exact.value(), 1.0 - std::pow(2.0, -7), 1e-12);
  EXPECT_NEAR(r->probability, exact.value(), 0.35);
}

}  // namespace
}  // namespace nfacount
