// Failure-injection tests: corrupted size estimates, starved sample lists,
// adversarial membership oracles, forced perturbation, and degenerate
// automata — the FPRAS stack must degrade gracefully (never crash, report
// diagnostics, and stay sound where the theory says it must).

#include <gtest/gtest.h>

#include <cmath>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "counting/union_mc.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

/// AppUnion input whose membership oracle lies.
struct LyingInput {
  std::vector<int> samples;
  double size;
  bool always_contains;

  double size_estimate() const { return size; }
  int64_t num_samples() const { return static_cast<int64_t>(samples.size()); }
  const int& Sample(int64_t i) const { return samples[static_cast<size_t>(i)]; }
  bool Contains(const int&) const { return always_contains; }
};

TEST(FailureInjection, OracleAlwaysYesCollapsesUnionToFirstSet) {
  // If every "earlier set" claims to contain every sample, only draws from
  // input 0 count: the estimate collapses to ~sz_0. This documents the
  // sensitivity of Alg. 1 to oracle soundness.
  Rng rng(TestSeed(1));
  std::vector<LyingInput> inputs;
  for (int i = 0; i < 3; ++i) {
    LyingInput in;
    in.size = 100.0;
    in.always_contains = true;
    for (int s = 0; s < 2048; ++s) in.samples.push_back(s);
    inputs.push_back(std::move(in));
  }
  std::vector<const LyingInput*> ptrs;
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams p;
  p.eps = 0.2;
  p.delta = 0.1;
  AppUnionOutcome out = AppUnion(ptrs, p, rng);
  EXPECT_NEAR(out.estimate, 100.0, 25.0);  // only the i=0 share survives
}

TEST(FailureInjection, OracleAlwaysNoSumsSizes) {
  Rng rng(TestSeed(2));
  std::vector<LyingInput> inputs;
  for (int i = 0; i < 3; ++i) {
    LyingInput in;
    in.size = 100.0;
    in.always_contains = false;
    for (int s = 0; s < 2048; ++s) in.samples.push_back(s);
    inputs.push_back(std::move(in));
  }
  std::vector<const LyingInput*> ptrs;
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams p;
  p.eps = 0.2;
  p.delta = 0.1;
  AppUnionOutcome out = AppUnion(ptrs, p, rng);
  EXPECT_DOUBLE_EQ(out.estimate, 300.0);  // every trial is a "unique" hit
}

TEST(FailureInjection, WildlyWrongSizeEstimatesStillBounded) {
  // Sizes inflated 10x with eps_sz declared honestly: Theorem 1's
  // (1+ε)(1+ε_sz) guarantee is vacuous at ε_sz = 9, but the estimator must
  // not produce NaN/negative/unbounded output.
  Rng rng(TestSeed(3));
  std::vector<LyingInput> inputs;
  LyingInput in;
  in.size = 1000.0;  // true support is 100 samples
  in.always_contains = false;
  for (int s = 0; s < 4096; ++s) in.samples.push_back(s % 100);
  inputs.push_back(std::move(in));
  std::vector<const LyingInput*> ptrs = {&inputs[0]};
  AppUnionParams p;
  p.eps = 0.3;
  p.delta = 0.1;
  p.eps_sz = 9.0;
  AppUnionOutcome out = AppUnion(ptrs, p, rng);
  EXPECT_TRUE(std::isfinite(out.estimate));
  EXPECT_GE(out.estimate, 0.0);
  EXPECT_LE(out.estimate, 1000.0);
}

TEST(FailureInjection, ForcedPerturbationStaysFinite) {
  // Drive the perturbation branch hard by inflating eta: estimates get
  // garbled (that is the point of the branch's probability budget) but the
  // run must complete and stay finite.
  Rng rng(TestSeed(4));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  const int n = 5;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.3, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasParams forced = *params;
  forced.eta = 2.0 * n;  // perturbation probability η/2n = 1: always perturb
  FprasEngine engine(&nfa, forced, 5);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(std::isfinite(engine.Estimate()));
  EXPECT_GE(engine.Estimate(), 0.0);
  EXPECT_GT(engine.diagnostics().perturbed_counts, 0);
}

TEST(FailureInjection, PerturbationRateMatchesEta) {
  // With the real η the branch fires with probability η/2n per (q,ℓ):
  // essentially never at test sizes.
  Rng rng(TestSeed(5));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(6);
  Result<CountEstimate> r = ApproxCount(nfa, 6, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->diagnostics.perturbed_counts, 0);
}

TEST(FailureInjection, StarvedEngineBreakModeStillRuns) {
  // Faithful break-out starvation with lists much shorter than trial
  // demands: accuracy degrades (documented) but the run completes and the
  // diagnostics expose the starvation count.
  Nfa nfa = SubstringNfa(Word{1, 0});
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(7);
  options.recycle_samples = false;
  options.calibration.ns_floor = 16;     // tiny lists
  options.calibration.trial_floor = 512; // big trial demand
  options.calibration.ns_scale = 1e-12;
  Result<CountEstimate> r = ApproxCount(nfa, 8, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->diagnostics.starvations, 0);
  EXPECT_TRUE(std::isfinite(r->estimate));
}

TEST(FailureInjection, DeadStatesDoNotPoisonEstimates) {
  // Add unreachable and dead states around a working automaton.
  Nfa core = SubstringNfa(Word{1, 1});
  Nfa padded(2);
  StateId base = padded.AddStates(core.num_states());
  (void)base;
  StateId dead1 = padded.AddState();
  StateId dead2 = padded.AddState();
  padded.SetInitial(core.initial());
  core.accepting().ForEachSet([&](int q) { padded.AddAccepting(q); });
  for (StateId q = 0; q < core.num_states(); ++q) {
    for (int a = 0; a < 2; ++a) {
      for (StateId r : core.Successors(q, static_cast<Symbol>(a))) {
        padded.AddTransition(q, static_cast<Symbol>(a), r);
      }
    }
  }
  padded.AddTransition(dead1, 0, dead2);  // unreachable island
  padded.AddTransition(0, 0, dead2);      // reachable dead end (no accept)

  const int n = 8;
  Result<BigUint> exact = ExactCountViaDfa(padded, n);
  ASSERT_TRUE(exact.ok());
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(8);
  Result<CountEstimate> r = ApproxCount(padded, n, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate / exact->ToDouble(), 1.0, 0.5);
}

TEST(FailureInjection, SelfLoopOnlyInitialNoAccept) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddTransition(q, 0, q);
  nfa.AddTransition(q, 1, q);
  // No accepting states at all.
  Result<CountEstimate> r = ApproxCount(nfa, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->estimate, 0.0);
}

TEST(FailureInjection, StateWithNoOutgoingEdges) {
  // The accepting sink has no outgoing edges: levels past its depth lose it.
  Nfa nfa(2);
  nfa.AddStates(3);
  nfa.SetInitial(0);
  nfa.AddAccepting(2);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 1, 2);
  // L = {01} only at n = 2; empty for other n.
  Result<CountEstimate> r2 = ApproxCount(nfa, 2);
  Result<CountEstimate> r3 = ApproxCount(nfa, 3);
  ASSERT_TRUE(r2.ok() && r3.ok());
  EXPECT_NEAR(r2->estimate, 1.0, 0.4);
  EXPECT_EQ(r3->estimate, 0.0);
}

TEST(FailureInjection, MemoCapacityZeroStillCorrect) {
  Nfa nfa = ParityNfa(2);
  const int n = 7;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.35, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasParams no_memo = *params;
  no_memo.memo_capacity = 0;  // cache always misses
  FprasEngine engine(&nfa, no_memo, 9);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.Estimate() / 64.0, 1.0, 0.5);  // 2^{n-1}
}

TEST(FailureInjection, RerunningEngineIsIdempotent) {
  Rng rng(TestSeed(10));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), 6, 0.3, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, 11);
  ASSERT_TRUE(engine.Run().ok());
  double first = engine.Estimate();
  ASSERT_TRUE(engine.Run().ok());  // re-run resets and recomputes
  EXPECT_TRUE(std::isfinite(engine.Estimate()));
  EXPECT_GT(engine.Estimate(), 0.0);
  (void)first;
}

}  // namespace
}  // namespace nfacount
