// Unit and statistical tests for the PRNG suite. Statistical bounds are set
// for negligible flake probability (many sigma).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace nfacount {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, ZeroSeedIsFine) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextU64());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64BoundOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(21);
  const int buckets = 10;
  const int trials = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformU64(buckets)];
  // Expected 10000 per bucket, sigma ~ 95; allow 8 sigma.
  for (int c : counts) EXPECT_NEAR(c, trials / buckets, 800);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);  // ~10 sigma
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.015);
}

TEST(Rng, DiscreteIndexMatchesWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    int idx = rng.DiscreteIndex(weights);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 4);
    ++counts[idx];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, weights[i] / 10.0, 0.02);
  }
}

TEST(Rng, DiscreteIndexSkipsZeroWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 500; ++i) EXPECT_EQ(rng.DiscreteIndex(weights), 1);
}

TEST(Rng, DiscreteIndexAllZeroReturnsMinusOne) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.DiscreteIndex(weights), -1);
  EXPECT_EQ(rng.DiscreteIndex({}), -1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StdShuffleInterface) {
  Rng rng(37);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);  // a permutation
}

}  // namespace
}  // namespace nfacount
