// EngineSession: the incremental multi-query surface must be invisible in
// every result — a session extended in any number of steps, under any
// runtime-knob combination, equals one uninterrupted run at the same
// (nfa, horizon, eps, delta, seed) point, bit for bit; and its per-length
// answers equal the facade's.

#include <gtest/gtest.h>

#include <vector>

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::ExpectTablesIdentical;
using testing_support::SessionTestOptions;
using testing_support::TestSeed;

TEST(Session, HorizonCountEqualsApproxCount) {
  // A session queried at its horizon is exactly the facade run: same params
  // derivation, same streams, same estimate — not approximately, equal.
  Rng rng(TestSeed(801));
  for (int trial = 0; trial < 3; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    const int n = 6;
    CountOptions opts = SessionTestOptions(TestSeed(802) + trial);
    Result<CountEstimate> direct = ApproxCount(nfa, n, opts);
    Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
    ASSERT_TRUE(direct.ok() && session.ok());
    Result<double> at_horizon = session->CountAtLength(n);
    ASSERT_TRUE(at_horizon.ok());
    EXPECT_EQ(direct->estimate, *at_horizon) << "trial=" << trial;
  }
}

TEST(Session, IncrementalExtensionBitIdenticalToOneShot) {
  Rng rng(TestSeed(811));
  Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
  const int n = 8;
  CountOptions opts = SessionTestOptions(TestSeed(812));

  Result<EngineSession> one_shot = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(one_shot.ok());
  ASSERT_TRUE(one_shot->ExtendTo(n).ok());

  // Level-by-level, with queries interleaved between extensions: neither the
  // step granularity nor the reads may perturb anything.
  Result<EngineSession> stepped = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(stepped.ok());
  for (int level = 1; level <= n; ++level) {
    ASSERT_TRUE(stepped->ExtendTo(level).ok());
    Result<double> count = stepped->CountAtLength(level);
    ASSERT_TRUE(count.ok());
  }

  EXPECT_EQ(one_shot->computed_level(), stepped->computed_level());
  for (int level = 0; level <= n; ++level) {
    Result<double> a = one_shot->CountAtLength(level);
    Result<double> b = stepped->CountAtLength(level);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "level=" << level;
  }
  ExpectTablesIdentical(one_shot->engine(), stepped->engine(), nfa, n);
}

TEST(Session, ExtensionComposesWithKnobFlips) {
  // The determinism contracts must hold jointly with incrementality:
  // extend-in-steps on (4 threads, batch 32, scalar, legacy layout) equals
  // one-shot on the defaults.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 8;
  CountOptions base = SessionTestOptions(TestSeed(821));
  CountOptions flipped = base;
  flipped.num_threads = 4;
  flipped.batch_width = 32;
  flipped.simd_kernels = false;
  flipped.csr_hot_path = false;

  Result<EngineSession> a = EngineSession::Create(nfa, n, base);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->ExtendTo(n).ok());

  Result<EngineSession> b = EngineSession::Create(nfa, n, flipped);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->ExtendTo(3).ok());
  ASSERT_TRUE(b->ExtendTo(5).ok());
  ASSERT_TRUE(b->ExtendTo(n).ok());

  for (int level = 0; level <= n; ++level) {
    Result<double> ca = a->CountAtLength(level);
    Result<double> cb = b->CountAtLength(level);
    ASSERT_TRUE(ca.ok() && cb.ok());
    EXPECT_EQ(*ca, *cb) << "level=" << level;
  }
  ExpectTablesIdentical(a->engine(), b->engine(), nfa, n);
}

TEST(Session, DrawSequenceSurvivesExtensionSplits) {
  Rng rng(TestSeed(831));
  Nfa nfa = RandomNfa(6, 0.3, 0.35, rng);
  const int n = 6;
  CountOptions opts = SessionTestOptions(TestSeed(832));

  Result<EngineSession> a = EngineSession::Create(nfa, n, opts);
  Result<EngineSession> b = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(a.ok() && b.ok());

  ASSERT_TRUE(a->ExtendTo(n).ok());
  Result<std::vector<Word>> wa = a->SampleWords(n, 8);

  ASSERT_TRUE(b->ExtendTo(2).ok());
  ASSERT_TRUE(b->ExtendTo(n).ok());
  Result<std::vector<Word>> wb = b->SampleWords(n, 8);

  ASSERT_TRUE(wa.ok() && wb.ok());
  EXPECT_EQ(*wa, *wb);

  // Continuations of the two draw streams stay aligned too.
  Result<std::vector<Word>> wa2 = a->SampleWords(n, 5);
  Result<std::vector<Word>> wb2 = b->SampleWords(n, 5);
  ASSERT_TRUE(wa2.ok() && wb2.ok());
  EXPECT_EQ(*wa2, *wb2);
}

TEST(Session, DrawStreamInvariantAcrossBatchWidthsAndLengths) {
  // The session consumes draw attempts exactly (never batch-rounded), so
  // repeated SampleWords calls — even interleaved across lengths — yield
  // one identical sequence for every batch width, and the exact per-walk
  // counters stay aligned call by call.
  Rng rng(TestSeed(891));
  Nfa nfa = RandomNfa(6, 0.3, 0.35, rng);
  const int n = 6;
  CountOptions narrow_opts = SessionTestOptions(TestSeed(892));
  narrow_opts.batch_width = 1;
  CountOptions wide_opts = SessionTestOptions(TestSeed(892));
  wide_opts.batch_width = 32;

  Result<EngineSession> narrow = EngineSession::Create(nfa, n, narrow_opts);
  Result<EngineSession> wide = EngineSession::Create(nfa, n, wide_opts);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  ASSERT_TRUE(narrow->ExtendTo(n).ok());
  ASSERT_TRUE(wide->ExtendTo(n).ok());

  const int lengths[] = {n, n, n - 2, n, n - 2};
  const int64_t counts[] = {2, 3, 1, 4, 2};
  for (size_t i = 0; i < 5; ++i) {
    Result<std::vector<Word>> wn = narrow->SampleWords(lengths[i], counts[i]);
    Result<std::vector<Word>> ww = wide->SampleWords(lengths[i], counts[i]);
    ASSERT_TRUE(wn.ok() && ww.ok()) << "call " << i;
    EXPECT_EQ(*wn, *ww) << "call " << i;
    EXPECT_EQ(narrow->diagnostics().sample_calls,
              wide->diagnostics().sample_calls)
        << "call " << i;
    EXPECT_EQ(narrow->diagnostics().sample_success,
              wide->diagnostics().sample_success)
        << "call " << i;
  }
}

TEST(Session, QueriesAtEarlierLengthsNeedNoRecomputation) {
  Rng rng(TestSeed(841));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  const int n = 7;
  Result<EngineSession> session =
      EngineSession::Create(nfa, n, SessionTestOptions(TestSeed(842)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(n).ok());
  const int64_t states_after_sweep =
      session->diagnostics().states_processed;
  for (int level = 0; level <= n; ++level) {
    ASSERT_TRUE(session->CountAtLength(level).ok());
  }
  // No cell was reprocessed by the queries.
  EXPECT_EQ(session->diagnostics().states_processed, states_after_sweep);
}

TEST(Session, CountForMatchesEngineTable) {
  Rng rng(TestSeed(851));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  const int n = 5;
  Result<EngineSession> session =
      EngineSession::Create(nfa, n, SessionTestOptions(TestSeed(852)));
  ASSERT_TRUE(session.ok());
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    Result<double> c = session->CountFor(q, 4);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*c, session->engine().CountEstimateFor(q, 4));
  }
}

TEST(Session, LengthValidationIsStatusNotCrash) {
  Nfa nfa = ParityNfa(2);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(861)));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->ExtendTo(6).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(session->ExtendTo(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session->CountAtLength(99).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(session->SampleWords(6, 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(session->CountFor(99, 2).status().code(),
            StatusCode::kInvalidArgument);
  // The failed calls must not have advanced anything.
  EXPECT_EQ(session->computed_level(), 2);  // CountFor extended to 2
}

TEST(Session, EmptyLanguageAndLengthZeroEdges) {
  // Needle NFA: exactly one word at n = 3, empty at other lengths.
  Nfa nfa = SparseNeedle(Word{1, 0, 1});
  Result<EngineSession> session =
      EngineSession::Create(nfa, 4, SessionTestOptions(TestSeed(871)));
  ASSERT_TRUE(session.ok());
  Result<std::vector<Word>> empty = session->SampleWords(4, 2);
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
  Result<std::vector<Word>> hit = session->SampleWords(3, 2);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0], (Word{1, 0, 1}));
  EXPECT_EQ((*hit)[1], (Word{1, 0, 1}));
  // Length 0: L(A_0) is empty unless the initial state accepts.
  Result<std::vector<Word>> zero = session->SampleWords(0, 1);
  EXPECT_EQ(zero.status().code(), StatusCode::kNotFound);
}

TEST(Session, ZeroHorizonSession) {
  Nfa nfa = DenseCompleteNfa(3);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 0, SessionTestOptions(TestSeed(881)));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->computed_level(), 0);
  Result<double> c = session->CountAtLength(0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0);
}

}  // namespace
}  // namespace nfacount
