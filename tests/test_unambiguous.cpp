// Tests for the unambiguous-NFA exact counter: the ambiguity decision
// procedure against structural ground truth, run counting against brute
// force, and the word-vs-run distinction on ambiguous automata.

#include <gtest/gtest.h>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "counting/unambiguous.hpp"
#include "fpras/estimator.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(IsUnambiguous, DfasAreUnambiguous) {
  // Every deterministic automaton is trivially unambiguous.
  for (const Nfa& nfa : {CombinationLock(Word{1, 0, 1}), ParityNfa(3),
                         DivisibilityNfa(5), SparseNeedle(Word{1, 1, 0})}) {
    Result<bool> r = IsUnambiguous(nfa);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value());
  }
}

TEST(IsUnambiguous, SubstringNfaIsAmbiguous) {
  // "contains 1": a word with two 1s has two accepting runs (two guesses).
  Result<bool> r = IsUnambiguous(SubstringNfa(Word{1}));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(IsUnambiguous, AmbiguousChainIsAmbiguous) {
  Result<bool> r = IsUnambiguous(AmbiguousChain(4));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(IsUnambiguous, TwoAcceptingStatesOnSameWordIsAmbiguous) {
  // Word "1" reaches two distinct accepting states: ambiguous even though
  // every single run is deterministic up to the last step.
  Nfa nfa(2);
  nfa.AddStates(3);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);
  nfa.AddAccepting(2);
  nfa.AddTransition(0, 1, 1);
  nfa.AddTransition(0, 1, 2);
  Result<bool> r = IsUnambiguous(nfa);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(IsUnambiguous, NondeterministicButUnambiguous) {
  // Nondeterministic branching whose branches accept disjoint languages:
  // from the start, symbol 1 goes to "then 0" or "then 1" checkers.
  Nfa nfa(2);
  nfa.AddStates(4);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 1, 1);  // branch A: expect 0 next
  nfa.AddTransition(0, 1, 2);  // branch B: expect 1 next
  nfa.AddTransition(1, 0, 3);
  nfa.AddTransition(2, 1, 3);
  nfa.AddAccepting(3);
  Result<bool> r = IsUnambiguous(nfa);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  // And the counter agrees with brute force.
  Result<BigUint> exact = ExactCountUnambiguous(nfa, 2);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->ToU64(), 2u);  // "10" and "11"
}

TEST(CountAcceptingRuns, MatchesWordsOnDeterministicFamilies) {
  for (int n = 0; n <= 10; ++n) {
    EXPECT_EQ(CountAcceptingRuns(ParityNfa(2), n),
              BruteForceCount(ParityNfa(2), n).value());
    EXPECT_EQ(CountAcceptingRuns(DivisibilityNfa(3), n),
              BruteForceCount(DivisibilityNfa(3), n).value());
  }
}

TEST(CountAcceptingRuns, OvercountsOnAmbiguousAutomata) {
  // AmbiguousChain accepts all long words but has exponentially many runs:
  // run count must strictly exceed the word count.
  Nfa nfa = AmbiguousChain(3);
  const int n = 8;
  BigUint runs = CountAcceptingRuns(nfa, n);
  BigUint words = BruteForceCount(nfa, n).value();
  EXPECT_GT(runs, words);
  EXPECT_EQ(words, BigUint::Pow2(n));
}

TEST(ExactCountUnambiguous, RefusesAmbiguousInput) {
  Result<BigUint> r = ExactCountUnambiguous(SubstringNfa(Word{1, 0}), 6);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExactCountUnambiguous, AgreesWithDfaCountingOnRandomReverseDfas) {
  // Reversals of DFAs are unambiguous (co-deterministic + one initial run
  // per word... verified via the decision procedure, not assumed).
  Rng rng(TestSeed(7));
  for (int trial = 0; trial < 6; ++trial) {
    Nfa nfa = ReverseDeterministic(6, rng);
    Result<bool> unambiguous = IsUnambiguous(nfa);
    ASSERT_TRUE(unambiguous.ok());
    if (!unambiguous.value()) continue;  // duplicated accepting sets can alias
    for (int n = 0; n <= 8; ++n) {
      Result<BigUint> via_runs = ExactCountUnambiguous(nfa, n);
      ASSERT_TRUE(via_runs.ok());
      EXPECT_EQ(*via_runs, BruteForceCount(nfa, n).value())
          << "trial=" << trial << " n=" << n;
    }
  }
}

TEST(ExactCountUnambiguous, FprasAgreesOnUnambiguousInstance) {
  Nfa nfa = CombinationLock(Word{1, 0, 1});
  const int n = 12;
  Result<BigUint> exact = ExactCountUnambiguous(nfa, n);
  ASSERT_TRUE(exact.ok());
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(404);
  Result<CountEstimate> approx = ApproxCount(nfa, n, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / exact->ToDouble(), 1.0, 0.4);
}

TEST(CountAcceptingRuns, LengthZero) {
  Nfa accepting(2);
  StateId q = accepting.AddState();
  accepting.SetInitial(q);
  accepting.AddAccepting(q);
  EXPECT_EQ(CountAcceptingRuns(accepting, 0).ToU64(), 1u);

  Nfa rejecting = CombinationLock(Word{1});
  EXPECT_TRUE(CountAcceptingRuns(rejecting, 0).IsZero());
}

}  // namespace
}  // namespace nfacount
