// Tests for the naive Monte-Carlo baseline, including a demonstration of the
// sparse-language failure mode that motivates the FPRAS.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "counting/naive_mc.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(NaiveMc, AccurateOnDenseLanguage) {
  // Half of all words (parity): acceptance prob 0.5, naive MC works fine.
  Nfa nfa = ParityNfa(2);
  const int n = 12;
  Rng rng(TestSeed(1));
  NaiveMcResult result = NaiveMonteCarloCount(nfa, n, 40000, rng);
  const double truth = std::pow(2.0, n - 1);
  EXPECT_NEAR(result.estimate / truth, 1.0, 0.05);
  EXPECT_EQ(result.samples, 40000);
  EXPECT_EQ(result.accepted,
            static_cast<int64_t>(result.acceptance_rate * 40000 + 0.5));
}

TEST(NaiveMc, FullAndEmptyLanguages) {
  Rng rng(TestSeed(2));
  NaiveMcResult all = NaiveMonteCarloCount(DenseCompleteNfa(3), 10, 1000, rng);
  EXPECT_DOUBLE_EQ(all.acceptance_rate, 1.0);
  EXPECT_DOUBLE_EQ(all.estimate, 1024.0);

  Nfa empty(2);
  empty.AddStates(2);
  empty.SetInitial(0);
  empty.AddAccepting(1);  // unreachable
  empty.AddTransition(0, 0, 0);
  empty.AddTransition(0, 1, 0);
  NaiveMcResult none = NaiveMonteCarloCount(empty, 10, 1000, rng);
  EXPECT_DOUBLE_EQ(none.estimate, 0.0);
}

TEST(NaiveMc, FailsOnSparseLanguage) {
  // Singleton language among 2^24 words: any feasible sample budget almost
  // surely sees zero hits — the estimate is 0, relative error 100%. This is
  // the regime where only the FPRAS remains accurate (benchmark E1).
  Word needle;
  for (int i = 0; i < 24; ++i) needle.push_back(static_cast<Symbol>(i % 2));
  Nfa nfa = SparseNeedle(needle);
  Rng rng(TestSeed(3));
  NaiveMcResult result = NaiveMonteCarloCount(nfa, 24, 20000, rng);
  EXPECT_EQ(result.accepted, 0);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);  // truth is 1
}

TEST(NaiveMc, DeterministicUnderSeed) {
  Nfa nfa = SubstringNfa(Word{1, 0});
  Rng rng1(7), rng2(7);
  NaiveMcResult a = NaiveMonteCarloCount(nfa, 10, 5000, rng1);
  NaiveMcResult b = NaiveMonteCarloCount(nfa, 10, 5000, rng2);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.estimate, b.estimate);
}

TEST(NaiveMc, TernaryAlphabetScaling) {
  Nfa nfa = DenseCompleteNfa(2, 3);
  Rng rng(TestSeed(11));
  NaiveMcResult result = NaiveMonteCarloCount(nfa, 6, 2000, rng);
  EXPECT_DOUBLE_EQ(result.estimate, std::pow(3.0, 6));
}

TEST(NaiveSamplesNeeded, InverseInAcceptanceProb) {
  double dense = NaiveSamplesNeeded(0.1, 0.1, 0.5);
  double sparse = NaiveSamplesNeeded(0.1, 0.1, 1e-6);
  EXPECT_GT(sparse, dense * 1e5);
  EXPECT_TRUE(std::isinf(NaiveSamplesNeeded(0.1, 0.1, 0.0)));
  // 1/eps^2 scaling.
  EXPECT_NEAR(NaiveSamplesNeeded(0.05, 0.1, 0.5) / NaiveSamplesNeeded(0.1, 0.1, 0.5),
              4.0, 1e-9);
}

}  // namespace
}  // namespace nfacount
