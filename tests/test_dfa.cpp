// Unit tests for determinization, minimization, complement, equivalence, and
// the exact DFA counting DP.

#include <gtest/gtest.h>

#include <cmath>

#include "automata/dfa.hpp"
#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(Dfa, ValidateRequiresCompleteTransitions) {
  Dfa dfa(2, 2);
  dfa.SetInitial(0);
  EXPECT_FALSE(dfa.Validate().ok());
  for (StateId q = 0; q < 2; ++q) {
    for (int a = 0; a < 2; ++a) dfa.SetTransition(q, static_cast<Symbol>(a), q);
  }
  EXPECT_TRUE(dfa.Validate().ok());
}

TEST(Determinize, AgreesWithNfaOnAllShortWords) {
  Rng rng(TestSeed(1));
  for (int trial = 0; trial < 10; ++trial) {
    Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
    Result<Dfa> dfa = Determinize(nfa);
    ASSERT_TRUE(dfa.ok());
    EXPECT_TRUE(dfa->Validate().ok());
    // All words up to length 8.
    for (int n = 0; n <= 8; ++n) {
      Word w(n, 0);
      int64_t total = int64_t{1} << n;
      for (int64_t x = 0; x < total; ++x) {
        for (int i = 0; i < n; ++i) w[i] = static_cast<Symbol>((x >> i) & 1);
        ASSERT_EQ(dfa->Accepts(w), nfa.Accepts(w))
            << "trial=" << trial << " word=" << WordToString(w);
      }
    }
  }
}

TEST(Determinize, BudgetIsEnforced) {
  // "1 at the 12th position from the end" needs 2^12 DFA states; with a tiny
  // budget determinization must fail gracefully.
  Nfa nfa = KthFromEndNfa(12);
  Result<Dfa> dfa = Determinize(nfa, /*max_states=*/16);
  EXPECT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
}

TEST(Determinize, KthFromEndBlowupIsExactlyExponential) {
  // The minimal DFA for the k-th-from-the-end language has exactly 2^k
  // states (it must remember the last k symbols).
  for (int k = 1; k <= 8; ++k) {
    Result<Dfa> dfa = Determinize(KthFromEndNfa(k));
    ASSERT_TRUE(dfa.ok());
    EXPECT_EQ(Minimize(*dfa).num_states(), 1 << k) << "k=" << k;
  }
}

TEST(Minimize, ReducesKnownRedundancy) {
  // Two states that are language-equivalent must merge.
  Dfa dfa(3, 2);
  dfa.SetInitial(0);
  dfa.AddAccepting(1);
  dfa.AddAccepting(2);
  // 1 and 2 behave identically (absorbing accept states).
  dfa.SetTransition(0, 0, 1);
  dfa.SetTransition(0, 1, 2);
  for (StateId q : {1, 2}) {
    dfa.SetTransition(q, 0, q);
    dfa.SetTransition(q, 1, q);
  }
  Dfa min = Minimize(dfa);
  EXPECT_EQ(min.num_states(), 2);
}

TEST(Minimize, PreservesLanguage) {
  Rng rng(TestSeed(2));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    Result<Dfa> dfa = Determinize(nfa);
    ASSERT_TRUE(dfa.ok());
    Dfa min = Minimize(*dfa);
    EXPECT_LE(min.num_states(), dfa->num_states());
    Result<bool> eq = LanguageEquivalent(dfa->ToNfa(), min.ToNfa());
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value());
  }
}

TEST(Minimize, MinimalDfaIsFixpoint) {
  Nfa nfa = ParityNfa(3);
  Result<Dfa> dfa = Determinize(nfa);
  ASSERT_TRUE(dfa.ok());
  Dfa min1 = Minimize(*dfa);
  Dfa min2 = Minimize(min1);
  EXPECT_EQ(min1.num_states(), min2.num_states());
}

TEST(Complement, FlipsAcceptance) {
  Nfa nfa = SubstringNfa(Word{1, 1});
  Result<Dfa> dfa = Determinize(nfa);
  ASSERT_TRUE(dfa.ok());
  Dfa comp = Complement(*dfa);
  for (int n = 0; n <= 8; ++n) {
    Word w(n, 0);
    int64_t total = int64_t{1} << n;
    for (int64_t x = 0; x < total; ++x) {
      for (int i = 0; i < n; ++i) w[i] = static_cast<Symbol>((x >> i) & 1);
      EXPECT_NE(dfa->Accepts(w), comp.Accepts(w));
    }
  }
}

TEST(Complement, CountsAreComplementary) {
  Nfa nfa = ParityNfa(2);
  Result<Dfa> dfa = Determinize(nfa);
  ASSERT_TRUE(dfa.ok());
  Dfa comp = Complement(*dfa);
  for (int n = 0; n <= 20; ++n) {
    BigUint a = dfa->CountWordsOfLength(n);
    BigUint b = comp.CountWordsOfLength(n);
    EXPECT_EQ(a + b, BigUint::Pow2(static_cast<uint32_t>(n))) << "n=" << n;
  }
}

TEST(LanguageEquivalent, DetectsEquality) {
  Nfa a = SubstringNfa(Word{1, 0});
  Nfa b = SubstringNfa(Word{1, 0});
  Result<bool> eq = LanguageEquivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(LanguageEquivalent, DetectsInequality) {
  Result<bool> eq =
      LanguageEquivalent(SubstringNfa(Word{1, 0}), SubstringNfa(Word{0, 1}));
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());
}

TEST(CountWords, CombinationLockClosedForm) {
  // Lock of length 3: |L(A_n)| = 2^{n-3} for n >= 3, else 0.
  Nfa lock = CombinationLock(Word{1, 0, 1});
  Result<Dfa> dfa = Determinize(lock);
  ASSERT_TRUE(dfa.ok());
  std::vector<BigUint> counts = dfa->CountWordsUpToLength(10);
  for (int n = 0; n <= 10; ++n) {
    if (n < 3) {
      EXPECT_TRUE(counts[n].IsZero()) << "n=" << n;
    } else {
      EXPECT_EQ(counts[n], BigUint::Pow2(static_cast<uint32_t>(n - 3)));
    }
  }
}

TEST(CountWords, ParityClosedForm) {
  // Even number of 1s: exactly 2^{n-1} words for n >= 1.
  Nfa parity = ParityNfa(2);
  Result<Dfa> dfa = Determinize(parity);
  ASSERT_TRUE(dfa.ok());
  for (int n = 1; n <= 30; ++n) {
    EXPECT_EQ(dfa->CountWordsOfLength(n), BigUint::Pow2(static_cast<uint32_t>(n - 1)));
  }
  EXPECT_EQ(dfa->CountWordsOfLength(0).ToU64(), 1u);  // empty word has 0 ones
}

TEST(CountWords, DivisibilityClosedForm) {
  // Binary numerals (with leading zeros) divisible by 3 among all 2^n:
  // count = (2^n + 2)/3 for even n, (2^n + 1)/3 for odd n.
  Nfa div3 = DivisibilityNfa(3);
  Result<Dfa> dfa = Determinize(div3);
  ASSERT_TRUE(dfa.ok());
  for (int n = 1; n <= 24; ++n) {
    uint64_t total = (uint64_t{1} << n);
    uint64_t expect = (n % 2 == 0) ? (total + 2) / 3 : (total + 1) / 3;
    EXPECT_EQ(dfa->CountWordsOfLength(n).ToU64(), expect) << "n=" << n;
  }
}

TEST(CountWords, LargeNUsesBigints) {
  Nfa all = DenseCompleteNfa(1);
  Result<Dfa> dfa = Determinize(all);
  ASSERT_TRUE(dfa.ok());
  BigUint count = dfa->CountWordsOfLength(200);
  EXPECT_EQ(count, BigUint::Pow2(200));  // far beyond uint64
}

TEST(ToNfa, RoundTripPreservesLanguage) {
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  Result<Dfa> dfa = Determinize(nfa);
  ASSERT_TRUE(dfa.ok());
  Result<bool> eq = LanguageEquivalent(nfa, dfa->ToNfa());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

}  // namespace
}  // namespace nfacount
