// Event-driven serve runtime (reactor + bounded worker pool): pipelined
// requests answer strictly in request order and bit-identical at every
// worker count; partial writes, half-closes, mid-frame disconnects, and
// in-flight caps all resolve without wedging or leaking a connection; the
// accept-side backpressure parks the listener instead of shedding; and the
// PR 9 drain contract survives the runtime swap. Runs under TSan in CI
// (ctest -R 'test_serve'): this suite is the data-race probe for the
// reactor / worker-pool seam.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "test_seed.hpp"
#include "util/net.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using serve::Frame;
using serve::MsgType;
using serve::ReadFrame;
using serve::RegistryOptions;
using serve::ServeClient;
using serve::ServeDaemon;
using serve::ServerOptions;
using serve::SessionRegistry;
using serve::WriteFrame;
using testing_support::TestSeed;

constexpr int kHorizon = 7;

/// Polls `cond` every 2 ms for up to `timeout_ms`; true iff it held.
bool PollUntil(int timeout_ms, const std::function<bool()>& cond) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

/// A deterministic test automaton in the io.hpp text format.
std::string TestNfaText() {
  Rng rng(TestSeed(1501));
  return NfaToText(RandomNfa(6, 0.3, 0.3, rng));
}

/// Registry with one session "s" at kHorizon, plus the reference counts at
/// every length (registry answers are deterministic in (text, seed), so a
/// second identical registry is its own reference).
struct Fixture {
  Fixture() : registry(RegistryOptions()) {
    const std::string text = TestNfaText();
    EXPECT_TRUE(
        registry.Register("s", text, kHorizon, TestSeed(1502), 0.3, 0.2).ok());
    for (int length = 0; length <= kHorizon; ++length) {
      Result<double> want = registry.CountAtLength("s", length);
      EXPECT_TRUE(want.ok());
      counts.push_back(want.value());
    }
  }
  SessionRegistry registry;
  std::vector<double> counts;
};

TEST(Pipeline, RepliesComeBackInRequestOrder) {
  Fixture fx;
  ServerOptions options;
  options.workers = 2;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(2, daemon.worker_count());

  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());
  // All requests hit the wire before any reply is read; the k-th reply must
  // answer the k-th request.
  const int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    for (int length = 0; length <= kHorizon; ++length) {
      ASSERT_TRUE(client->SendCount("s", length).ok());
    }
  }
  for (int round = 0; round < kRounds; ++round) {
    for (int length = 0; length <= kHorizon; ++length) {
      Result<double> got = client->ReadCountReply();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(fx.counts[static_cast<size_t>(length)], got.value())
          << "round=" << round << " length=" << length;
    }
  }
  daemon.Stop();
}

// The raw reply bytes — not just the decoded values — are identical no
// matter how many workers serve the connection: per-connection in-order
// scheduling makes the pool invisible on the wire.
TEST(Pipeline, ReplyBytesIdenticalAcrossWorkerCounts) {
  std::vector<std::string> transcripts;
  for (int workers : {1, 4}) {
    Fixture fx;
    ServerOptions options;
    options.workers = workers;
    ServeDaemon daemon(&fx.registry, options);
    ASSERT_TRUE(daemon.Start().ok());
    Result<SocketFd> sock = ConnectLoopback(daemon.port());
    ASSERT_TRUE(sock.ok());
    for (int length = 0; length <= kHorizon; ++length) {
      serve::CountRequest req;
      req.name = "s";
      req.length = length;
      ASSERT_TRUE(WriteFrame(sock.value(), MsgType::kCount,
                             serve::EncodeCount(req))
                      .ok());
    }
    std::string transcript;
    for (int length = 0; length <= kHorizon; ++length) {
      Result<Frame> reply = ReadFrame(sock.value());
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_EQ(MsgType::kReply, reply.value().type);
      transcript += reply.value().payload;
      transcript.push_back('\n');
    }
    transcripts.push_back(std::move(transcript));
    daemon.Stop();
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
}

TEST(Pipeline, MixedOpsKeepOrderAndErrorsDoNotKillTheConnection) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->SendRequest(MsgType::kPing, "").ok());
  ASSERT_TRUE(client->SendCount("s", 3).ok());
  ASSERT_TRUE(client->SendCount("missing", 3).ok());  // application error
  ASSERT_TRUE(client->SendRequest(MsgType::kStats, "").ok());

  EXPECT_TRUE(client->ReadReplyBody().ok());  // ping
  Result<double> count = client->ReadCountReply();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(fx.counts[3], count.value());
  EXPECT_EQ(StatusCode::kNotFound, client->ReadCountReply().status().code());
  EXPECT_TRUE(client->ReadReplyBody().ok());  // stats, after the error
  EXPECT_TRUE(client->Ping().ok());           // connection still healthy
  daemon.Stop();
}

// Frame assembly across arbitrarily small reads: a peer dribbling one byte
// per segment still gets its reply.
TEST(Pipeline, ByteDribbledFrameIsAssembled) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<SocketFd> sock = ConnectLoopback(daemon.port());
  ASSERT_TRUE(sock.ok());

  serve::CountRequest req;
  req.name = "s";
  req.length = 4;
  // Build the exact frame bytes, then dribble them.
  Result<std::string> frame =
      serve::EncodeFrame(MsgType::kCount, serve::EncodeCount(req));
  ASSERT_TRUE(frame.ok());
  for (char byte : frame.value()) {
    ASSERT_TRUE(WriteFull(sock.value(), &byte, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<Frame> reply = ReadFrame(sock.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(MsgType::kReply, reply.value().type);
  daemon.Stop();
}

// Connection reaping is immediate, not lazy: a closed connection leaves
// active_connections() without any new connection arriving to flush it out.
TEST(Pipeline, ClosedConnectionsAreReclaimedImmediately) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());

  {  // clean close between frames
    Result<ServeClient> client = ServeClient::Connect(daemon.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Ping().ok());
    EXPECT_EQ(1, daemon.active_connections());
  }
  EXPECT_TRUE(PollUntil(2000, [&] { return daemon.active_connections() == 0; }))
      << "clean close not reclaimed, active="
      << daemon.active_connections();

  {  // mid-frame disconnect
    Result<SocketFd> sock = ConnectLoopback(daemon.port());
    ASSERT_TRUE(sock.ok());
    const char half[6] = {'N', 'F', 'S', 'V', 2, 0};
    ASSERT_TRUE(WriteFull(sock.value(), half, sizeof(half)).ok());
    EXPECT_TRUE(
        PollUntil(2000, [&] { return daemon.active_connections() == 1; }));
  }
  EXPECT_TRUE(PollUntil(2000, [&] { return daemon.active_connections() == 0; }))
      << "mid-frame close not reclaimed";
  daemon.Stop();
}

// The in-flight cap bounds decoded-but-unanswered requests per connection:
// a client pipelining far past the cap just experiences backpressure — every
// reply still arrives, in order, bit-identical.
TEST(Pipeline, InflightCapBackpressuresWithoutLosingReplies) {
  Fixture fx;
  ServerOptions options;
  options.workers = 2;
  options.max_inflight_per_conn = 4;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  const int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client->SendCount("s", i % (kHorizon + 1)).ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    Result<double> got = client->ReadCountReply();
    ASSERT_TRUE(got.ok()) << "request " << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(fx.counts[static_cast<size_t>(i % (kHorizon + 1))], got.value())
        << "request " << i;
  }
  daemon.Stop();
}

// EOF is not death: a peer may write all its requests, half-close, and
// collect every reply off the still-open other half.
TEST(Pipeline, HalfClosedConnectionStillGetsAllReplies) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  const int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client->SendCount("s", i).ok());
  }
  client->socket().ShutdownWrite();
  for (int i = 0; i < kRequests; ++i) {
    Result<double> got = client->ReadCountReply();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(fx.counts[static_cast<size_t>(i)], got.value());
  }
  // After the owed replies the daemon hangs up cleanly.
  char byte = 0;
  EXPECT_EQ(StatusCode::kNotFound,
            ReadFull(client->socket(), &byte, 1).code());
  daemon.Stop();
}

// max_connections in the reactor runtime is accept-side backpressure: the
// listener parks at the cap, a waiting connect sits in the kernel backlog
// (never shed), and is served as soon as a slot frees.
TEST(Pipeline, AcceptBackpressureParksListenerAndResumes) {
  Fixture fx;
  ServerOptions options;
  options.max_connections = 1;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());

  Result<ServeClient> first = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Ping().ok());
  EXPECT_TRUE(PollUntil(
      2000, [&] { return daemon.accept_backpressure_events() >= 1; }));

  // The second connect lands in the backlog; its request waits, unanswered
  // but not rejected, until the first connection goes away.
  Result<SocketFd> second = ConnectLoopback(daemon.port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(WriteFrame(second.value(), MsgType::kPing, "").ok());
  { ServeClient discard = std::move(first).value(); }  // closes slot holder
  Result<Frame> reply = ReadFrame(second.value());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(MsgType::kReply, reply.value().type);
  const std::string stats = daemon.StatsJson();
  EXPECT_NE(std::string::npos, stats.find("\"accept_backpressure\"")) << stats;
  // Backpressure, not shedding: nobody was turned away.
  EXPECT_NE(std::string::npos, stats.find("\"connections_shed\":0")) << stats;
  daemon.Stop();
}

// Many clients, each pipelining, against a small pool: every answer on
// every connection is the reference answer. The TSan target for the
// reactor / worker seam.
TEST(Pipeline, WorkerPoolServesManyPipeliningClients) {
  Fixture fx;
  ServerOptions options;
  options.workers = 4;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Result<ServeClient> client = ServeClient::Connect(daemon.port());
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (int round = 0; round < 4; ++round) {
        const int depth = 1 + (c + round) % 6;
        for (int i = 0; i < depth; ++i) {
          if (!client->SendCount("s", (c + i) % (kHorizon + 1)).ok()) {
            failed.store(true);
            return;
          }
        }
        for (int i = 0; i < depth; ++i) {
          Result<double> got = client->ReadCountReply();
          const size_t want = static_cast<size_t>((c + i) % (kHorizon + 1));
          if (!got.ok() || got.value() != fx.counts[want]) failed.store(true);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(failed.load());
  daemon.Stop();
}

// kShutdown pipelined behind real work: the count answers first, the
// shutdown OK is flushed, and only then does the daemon stop.
TEST(Pipeline, ShutdownReplyFlushesAfterPipelinedWork) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->SendCount("s", 3).ok());
  ASSERT_TRUE(client->SendRequest(MsgType::kShutdown, "").ok());
  Result<double> count = client->ReadCountReply();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(fx.counts[3], count.value());
  EXPECT_TRUE(client->ReadReplyBody().ok());  // the shutdown OK
  EXPECT_TRUE(daemon.WaitUntilStopRequestedFor(2000));
  daemon.Stop();
}

// The PR 9 drain contract on the reactor: Stop() serves the decoded
// backlog, flushes every reply, and reports a clean drain.
TEST(Pipeline, DrainServesDecodedBacklogAndReportsClean) {
  Fixture fx;
  ServeDaemon daemon(&fx.registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  const int kRequests = 8;
  int64_t sent_bytes = 0;
  for (int i = 0; i < kRequests; ++i) {
    serve::CountRequest req;
    req.name = "s";
    req.length = i % (kHorizon + 1);
    const std::string payload = serve::EncodeCount(req);
    sent_bytes +=
        static_cast<int64_t>(serve::kFrameHeaderBytes + payload.size());
    ASSERT_TRUE(client->SendRequest(MsgType::kCount, payload).ok());
  }
  // Wait until every frame is inside the daemon, then drain under it.
  ASSERT_TRUE(
      PollUntil(2000, [&] { return daemon.bytes_in() >= sent_bytes; }));
  std::thread stopper([&] { daemon.Stop(); });
  for (int i = 0; i < kRequests; ++i) {
    Result<double> got = client->ReadCountReply();
    ASSERT_TRUE(got.ok()) << "request " << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(fx.counts[static_cast<size_t>(i % (kHorizon + 1))],
              got.value());
  }
  stopper.join();
  const std::string stats = daemon.StatsJson();
  EXPECT_NE(std::string::npos, stats.find("\"drained_clean\":true")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"drain_duration_ms\"")) << stats;
}

TEST(Pipeline, StatsExposeRuntimeQueueAndByteCounters) {
  Fixture fx;
  ServerOptions options;
  options.workers = 2;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->CountAtLength("s", 3).ok());

  const std::string stats = daemon.StatsJson();
  EXPECT_NE(std::string::npos, stats.find("\"runtime\":\"reactor\"")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"workers\":2")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"queue_depth\"")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"queue_wait\"")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"bytes_in\"")) << stats;
  EXPECT_NE(std::string::npos, stats.find("\"bytes_out\"")) << stats;
  EXPECT_GT(daemon.bytes_in(), 0);
  // The byte/queue gauges update just after the write syscall, so the
  // client can hold its reply a beat before the counters land: poll.
  EXPECT_TRUE(PollUntil(2000, [&] {
    return daemon.bytes_out() > 0 && daemon.queue_depth() == 0;
  }));
  daemon.Stop();
}

// The legacy thread-per-connection runtime still serves correctly behind
// its flag, and its reaper now reclaims finished connections immediately
// (the old lazy path only freed them when the NEXT connection arrived).
TEST(Pipeline, LegacyRuntimeServesAndReapsImmediately) {
  Fixture fx;
  ServerOptions options;
  options.legacy_threads = true;
  ServeDaemon daemon(&fx.registry, options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(0, daemon.worker_count());

  for (int round = 0; round < 3; ++round) {
    Result<ServeClient> client = ServeClient::Connect(daemon.port());
    ASSERT_TRUE(client.ok());
    Result<double> got = client->CountAtLength("s", 3);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(fx.counts[3], got.value());
  }
  // All three connections are gone without a fourth connect to trigger the
  // old lazy sweep.
  EXPECT_TRUE(PollUntil(2000, [&] { return daemon.active_connections() == 0; }))
      << "legacy reaper left connections, active="
      << daemon.active_connections();
  EXPECT_NE(std::string::npos,
            daemon.StatsJson().find("\"runtime\":\"threads\""));
  daemon.Stop();
}

}  // namespace
}  // namespace nfacount
