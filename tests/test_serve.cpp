// Serve-mode registry: concurrent readers against an extending writer must
// be invisible in every result — every answer the registry ever gives, under
// any thread interleaving, knob combination, or demote/revive cycle, equals
// the single-threaded EngineSession answer at the same (nfa, horizon, eps,
// delta, seed) point, bit for bit. Runs under TSan in CI: these tests are
// also the data-race probe for the whole serve seam.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "fpras/fpras.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using serve::RegistryOptions;
using serve::ServeClient;
using serve::ServeDaemon;
using serve::ServerOptions;
using serve::SessionRegistry;
using testing_support::SessionTestOptions;
using testing_support::TestSeed;

/// A deterministic small automaton in the io.hpp text format.
std::string TestNfaText(uint64_t seed, int m) {
  Rng rng(seed);
  return NfaToText(RandomNfa(m, 0.3, 0.3, rng));
}

/// The single-threaded reference: a fresh EngineSession at the same
/// parameter point the registry uses for (seed, eps, delta, horizon).
EngineSession ReferenceSession(const std::string& nfa_text, int horizon,
                               uint64_t seed) {
  Result<Nfa> nfa = ParseNfaText(nfa_text);
  EXPECT_TRUE(nfa.ok());
  CountOptions opts = SessionTestOptions(seed);
  Result<EngineSession> session =
      EngineSession::Create(nfa.value(), horizon, opts);
  EXPECT_TRUE(session.ok());
  return std::move(session).value();
}

TEST(Serve, RegistryAnswersMatchSessionBitIdentical) {
  const int kHorizon = 8;
  const std::string text = TestNfaText(TestSeed(901), 6);
  EngineSession reference = ReferenceSession(text, kHorizon, TestSeed(902));

  SessionRegistry registry((RegistryOptions()));
  ASSERT_TRUE(
      registry.Register("s", text, kHorizon, TestSeed(902), 0.3, 0.2).ok());
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> got = registry.CountAtLength("s", length);
    Result<double> want = reference.CountAtLength(length);
    ASSERT_TRUE(got.ok() && want.ok()) << "length=" << length;
    EXPECT_EQ(*want, *got) << "length=" << length;
  }
  // Per-state counts go through the same shared surface.
  for (StateId q = 0; q < 6; ++q) {
    Result<double> got = registry.CountFor("s", q, kHorizon);
    Result<double> want = reference.CountFor(q, kHorizon);
    ASSERT_TRUE(got.ok() && want.ok()) << "q=" << q;
    EXPECT_EQ(*want, *got) << "q=" << q;
  }
}

TEST(Serve, RegistryRejectsBadNamesDuplicatesAndUnknowns) {
  SessionRegistry registry((RegistryOptions()));
  const std::string text = TestNfaText(TestSeed(911), 5);

  EXPECT_EQ(StatusCode::kInvalidArgument,
            registry.Register("", text, 4, 1, 0.3, 0.2).code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            registry.Register("../evil", text, 4, 1, 0.3, 0.2).code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            registry.Register("has space", text, 4, 1, 0.3, 0.2).code());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            registry.Register(std::string(129, 'a'), text, 4, 1, 0.3, 0.2)
                .code());

  ASSERT_TRUE(registry.Register("ok-name_1.x", text, 4, 1, 0.3, 0.2).ok());
  EXPECT_EQ(StatusCode::kInvalidArgument,
            registry.Register("ok-name_1.x", text, 4, 1, 0.3, 0.2).code());
  EXPECT_EQ(StatusCode::kNotFound,
            registry.CountAtLength("missing", 2).status().code());
}

// The tentpole invariant: N reader threads answer counts and draws against
// the shared prefix while one writer extends the horizon, across the
// knob grid (worker threads × batch width × descent cache), and every
// single answer is bit-identical to the single-threaded session.
TEST(Serve, ConcurrentReadersVsExtendingWriterGrid) {
  struct Config {
    int num_threads;
    int batch_width;
    int64_t descent_capacity;  // 0 disables the descent cache
  };
  const Config kGrid[] = {
      {1, 0, -1},
      {2, 8, -1},
      {2, 0, 0},
  };
  const int kHorizon = 8;
  const int kReaders = 3;
  const int kSampleLength = 5;
  const int kChunk = 2;
  const int kChunksPerReader = 4;

  const std::string text = TestNfaText(TestSeed(921), 6);
  EngineSession reference =
      ReferenceSession(text, kHorizon, TestSeed(922));
  std::vector<double> want_counts(kHorizon + 1);
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> want = reference.CountAtLength(length);
    ASSERT_TRUE(want.ok());
    want_counts[static_cast<size_t>(length)] = *want;
  }
  const int kTotalWords = kReaders * kChunksPerReader * kChunk;
  Result<std::vector<Word>> want_words =
      reference.SampleWords(kSampleLength, kTotalWords);
  ASSERT_TRUE(want_words.ok());

  for (const Config& config : kGrid) {
    RegistryOptions options;
    options.knobs.num_threads = config.num_threads;
    options.knobs.batch_width = config.batch_width;
    options.knobs.descent_cache_capacity = config.descent_capacity;
    SessionRegistry registry(options);
    ASSERT_TRUE(
        registry.Register("s", text, kHorizon, TestSeed(922), 0.3, 0.2).ok());

    std::atomic<bool> failed{false};
    // Each reader's chunks, tagged with their draw-stream start cursor.
    std::vector<std::vector<std::pair<int64_t, std::vector<Word>>>> chunks(
        kReaders);

    std::thread writer([&] {
      for (int level = 1; level <= kHorizon; ++level) {
        Result<int> computed = registry.ExtendTo("s", level);
        if (!computed.ok() || computed.value() < level) failed.store(true);
      }
    });
    std::vector<std::thread> readers;
    for (int reader = 0; reader < kReaders; ++reader) {
      readers.emplace_back([&, reader] {
        // Counts at every length, racing the writer: lengths past the
        // published prefix take the writer path and extend themselves.
        for (int pass = 0; pass < 2; ++pass) {
          for (int length = 0; length <= kHorizon; ++length) {
            const int probe = (length + reader + pass) % (kHorizon + 1);
            Result<double> got = registry.CountAtLength("s", probe);
            if (!got.ok() ||
                *got != want_counts[static_cast<size_t>(probe)]) {
              failed.store(true);
            }
          }
        }
        for (int i = 0; i < kChunksPerReader; ++i) {
          int64_t cursor = 0;
          Result<std::vector<Word>> words =
              registry.SampleWords("s", kSampleLength, kChunk, &cursor);
          if (!words.ok() ||
              words.value().size() != static_cast<size_t>(kChunk)) {
            failed.store(true);
            continue;
          }
          chunks[static_cast<size_t>(reader)].emplace_back(
              cursor, std::move(words).value());
        }
      });
    }
    writer.join();
    for (std::thread& t : readers) t.join();
    EXPECT_FALSE(failed.load())
        << "threads=" << config.num_threads
        << " batch=" << config.batch_width
        << " descent=" << config.descent_capacity;

    // The draw stream is chunk-invariant: the concurrent chunks, ordered by
    // their cursor ranges, are exactly the single-threaded draw sequence.
    std::map<int64_t, std::vector<Word>> by_cursor;
    for (auto& reader_chunks : chunks) {
      for (auto& chunk : reader_chunks) {
        EXPECT_TRUE(
            by_cursor.emplace(chunk.first, std::move(chunk.second)).second)
            << "duplicate draw cursor " << chunk.first;
      }
    }
    std::vector<Word> got_words;
    for (auto& entry : by_cursor) {
      for (Word& word : entry.second) got_words.push_back(std::move(word));
    }
    ASSERT_EQ(want_words->size(), got_words.size());
    for (size_t i = 0; i < got_words.size(); ++i) {
      EXPECT_EQ((*want_words)[i], got_words[i]) << "draw index " << i;
    }
  }
}

// Demote-to-checkpoint and transparent revival must preserve everything:
// counts, per-state counts, and the draw-stream position.
TEST(Serve, EvictionReviveRoundTripBitIdentical) {
  const int kHorizon = 7;
  const std::string text_a = TestNfaText(TestSeed(931), 6);
  const std::string text_b = TestNfaText(TestSeed(932), 5);
  EngineSession reference = ReferenceSession(text_a, kHorizon, TestSeed(933));

  RegistryOptions options;
  options.spill_dir = ::testing::TempDir();
  // A budget no resident session fits under: every EnforceBudget pass
  // demotes whatever is idle, so queries constantly revive from disk.
  options.memory_budget_bytes = 1;
  SessionRegistry registry(options);
  ASSERT_TRUE(
      registry.Register("a", text_a, kHorizon, TestSeed(933), 0.3, 0.2).ok());
  ASSERT_TRUE(
      registry.Register("b", text_b, kHorizon, TestSeed(934), 0.3, 0.2).ok());

  // Alternate sessions so each query revives a demoted slot.
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> got = registry.CountAtLength("a", length);
    Result<double> want = reference.CountAtLength(length);
    ASSERT_TRUE(got.ok() && want.ok()) << "length=" << length;
    EXPECT_EQ(*want, *got) << "length=" << length;
    ASSERT_TRUE(registry.CountAtLength("b", length).ok());
  }
  EXPECT_GT(registry.demotions(), 0);
  // A NFACOUNT_FAILPOINTS chaos schedule may force every revive onto the
  // recompute path (counts above stay bit-identical regardless — that is
  // the point); revive counters and checkpoint-carried draw cursors are
  // only meaningful without one.
  if (failpoint::EnvScheduleActive()) return;
  EXPECT_GT(registry.revives(), 0);

  // Draw-stream continuity across an explicit evict: 2 words, demote +
  // revive, 2 more words — one uninterrupted 4-word reference sequence.
  Result<std::vector<Word>> want_words = reference.SampleWords(4, 4);
  ASSERT_TRUE(want_words.ok());
  Result<std::vector<Word>> first = registry.SampleWords("a", 4, 2);
  ASSERT_TRUE(first.ok());
  Result<bool> evicted = registry.Evict("a");
  ASSERT_TRUE(evicted.ok());
  Result<std::vector<Word>> second = registry.SampleWords("a", 4, 2);
  ASSERT_TRUE(second.ok());
  std::vector<Word> got_words = std::move(first).value();
  for (Word& word : second.value()) got_words.push_back(std::move(word));
  ASSERT_EQ(want_words->size(), got_words.size());
  for (size_t i = 0; i < got_words.size(); ++i) {
    EXPECT_EQ((*want_words)[i], got_words[i]) << "draw index " << i;
  }
}

TEST(Serve, EvictWithoutSpillDirIsFailedPrecondition) {
  SessionRegistry registry((RegistryOptions()));
  const std::string text = TestNfaText(TestSeed(941), 5);
  ASSERT_TRUE(registry.Register("s", text, 4, 1, 0.3, 0.2).ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            registry.Evict("s").status().code());
  // Without a spill dir nothing is ever demoted, budget or not.
  EXPECT_TRUE(registry.CountAtLength("s", 4).ok());
  EXPECT_EQ(0, registry.demotions());
}

// A corrupted checkpoint must never take down the daemon OR the session:
// the revive path quarantines the bad file (<name>.ckpt.corrupt) and
// transparently recomputes the session from its registration tuple, so the
// query succeeds — bit-identical to the pre-corruption answer — and other
// sessions never notice.
TEST(Serve, ReviveFromCorruptedCheckpointQuarantinesAndRecomputes) {
  const int kHorizon = 6;
  const std::string text = TestNfaText(TestSeed(951), 6);
  RegistryOptions options;
  options.spill_dir = ::testing::TempDir();
  SessionRegistry registry(options);
  ASSERT_TRUE(
      registry.Register("frail", text, kHorizon, TestSeed(952), 0.3, 0.2)
          .ok());
  ASSERT_TRUE(
      registry.Register("hale", text, kHorizon, TestSeed(953), 0.3, 0.2)
          .ok());
  Result<double> want = registry.CountAtLength("frail", kHorizon);
  ASSERT_TRUE(want.ok());

  ServeDaemon daemon(&registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());

  Result<bool> evicted = client->Evict("frail");
  ASSERT_TRUE(evicted.ok());
  EXPECT_TRUE(evicted.value());

  // Truncate the checkpoint: the trailer checksum can no longer verify.
  const std::string ckpt = options.spill_dir + "/frail.ckpt";
  {
    std::FILE* f = std::fopen(ckpt.c_str(), "rb+");
    ASSERT_NE(nullptr, f);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 16);
    ASSERT_EQ(0, std::fclose(f));
    ASSERT_EQ(0, ::truncate(ckpt.c_str(), size / 2));
  }

  Result<double> got = client->CountAtLength("frail", kHorizon);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(want.value(), got.value());
  EXPECT_EQ(1, registry.checkpoints_quarantined());
  EXPECT_GE(registry.recomputes(), 1);
  // The bad file moved aside for postmortems instead of being clobbered.
  std::FILE* corrupt = std::fopen((ckpt + ".corrupt").c_str(), "rb");
  EXPECT_NE(nullptr, corrupt);
  if (corrupt != nullptr) std::fclose(corrupt);
  // Same connection, same daemon: everything else is untouched.
  EXPECT_TRUE(client->CountAtLength("hale", kHorizon).ok());
  EXPECT_TRUE(client->Ping().ok());
  daemon.Stop();
}

// End-to-end over the socket: daemon answers equal the in-process registry
// reference, concurrently from several client connections.
TEST(Serve, DaemonAnswersBitIdenticalAcrossConcurrentClients) {
  const int kHorizon = 7;
  const std::string text = TestNfaText(TestSeed(961), 6);
  EngineSession reference = ReferenceSession(text, kHorizon, TestSeed(962));
  std::vector<double> want_counts(kHorizon + 1);
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> want = reference.CountAtLength(length);
    ASSERT_TRUE(want.ok());
    want_counts[static_cast<size_t>(length)] = *want;
  }

  SessionRegistry registry((RegistryOptions()));
  ServeDaemon daemon(&registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  {
    Result<ServeClient> admin = ServeClient::Connect(daemon.port());
    ASSERT_TRUE(admin.ok());
    serve::RegisterRequest req;
    req.name = "s";
    req.nfa_text = text;
    req.horizon = kHorizon;
    req.seed = TestSeed(962);
    req.eps = 0.3;
    req.delta = 0.2;
    ASSERT_TRUE(admin->Register(req).ok());
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Result<ServeClient> client = ServeClient::Connect(daemon.port());
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (int length = 0; length <= kHorizon; ++length) {
        const int probe = (length + c) % (kHorizon + 1);
        Result<double> got = client->CountAtLength("s", probe);
        if (!got.ok() || *got != want_counts[static_cast<size_t>(probe)]) {
          failed.store(true);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(failed.load());
  daemon.Stop();
}

}  // namespace
}  // namespace nfacount
