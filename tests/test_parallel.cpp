// Thread-count invariance of the parallel level-sweep engine: with
// counter-based per-(q,ℓ) RNG substreams, the same (nfa, n, seed) must
// produce bit-identical estimates, per-(q,ℓ) tables, and sampler draws for
// every num_threads value — the thread knob may only change wall-clock time.
// Also covers the NFA_CHECK bounds enforcement on the table accessors and
// the Rng::ForSubstream determinism contract these guarantees rest on.

#include <gtest/gtest.h>

#include <vector>

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

CountOptions ThreadedOpts(uint64_t seed, int threads) {
  CountOptions o;
  o.eps = 0.3;
  o.delta = 0.2;
  o.seed = seed;
  o.num_threads = threads;
  return o;
}

// Full per-(q,ℓ) table equality: count estimates, sample words, and reach
// profiles must match bit-for-bit between two engines.
void ExpectTablesIdentical(FprasEngine& a, FprasEngine& b, const Nfa& nfa,
                           int n) {
  for (int level = 0; level <= n; ++level) {
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      EXPECT_EQ(a.CountEstimateFor(q, level), b.CountEstimateFor(q, level))
          << "q=" << q << " level=" << level;
      const auto& sa = a.SamplesFor(q, level);
      const auto& sb = b.SamplesFor(q, level);
      ASSERT_EQ(sa.size(), sb.size()) << "q=" << q << " level=" << level;
      for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].word, sb[i].word)
            << "q=" << q << " level=" << level << " i=" << i;
        EXPECT_EQ(sa[i].reach, sb[i].reach)
            << "q=" << q << " level=" << level << " i=" << i;
      }
    }
  }
}

TEST(Parallel, SubstreamIsPositionIndependent) {
  // ForSubstream(seed, a, b) depends only on its arguments — not on any
  // generator state — and distinct cells get distinct streams.
  Rng s1 = Rng::ForSubstream(42, 3, 5);
  Rng warm(7);
  for (int i = 0; i < 100; ++i) warm.NextU64();
  Rng s2 = Rng::ForSubstream(42, 3, 5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(s1.NextU64(), s2.NextU64());

  Rng other_cell = Rng::ForSubstream(42, 5, 3);    // swapped coordinates
  Rng other_seed = Rng::ForSubstream(43, 3, 5);
  Rng base = Rng::ForSubstream(42, 3, 5);
  EXPECT_NE(base.NextU64(), other_cell.NextU64());
  Rng base2 = Rng::ForSubstream(42, 3, 5);
  EXPECT_NE(base2.NextU64(), other_seed.NextU64());
}

TEST(Parallel, EstimateBitIdenticalAcrossThreadCounts) {
  Rng rng(TestSeed(301));
  for (int trial = 0; trial < 3; ++trial) {
    Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
    const int n = 6;
    Result<CountEstimate> one =
        ApproxCount(nfa, n, ThreadedOpts(TestSeed(302) + trial, 1));
    Result<CountEstimate> two =
        ApproxCount(nfa, n, ThreadedOpts(TestSeed(302) + trial, 2));
    Result<CountEstimate> eight =
        ApproxCount(nfa, n, ThreadedOpts(TestSeed(302) + trial, 8));
    ASSERT_TRUE(one.ok() && two.ok() && eight.ok());
    EXPECT_EQ(one->estimate, two->estimate) << "trial=" << trial;
    EXPECT_EQ(one->estimate, eight->estimate) << "trial=" << trial;
    // Deterministic (scheduling-independent) counters must also agree; the
    // memo hit/miss split and appunion_calls may legitimately differ.
    EXPECT_EQ(one->diagnostics.states_processed,
              eight->diagnostics.states_processed);
    EXPECT_EQ(one->diagnostics.sample_calls, eight->diagnostics.sample_calls);
    EXPECT_EQ(one->diagnostics.padded_words, eight->diagnostics.padded_words);
    EXPECT_EQ(one->diagnostics.perturbed_counts,
              eight->diagnostics.perturbed_counts);
  }
}

TEST(Parallel, TablesAndSamplesBitIdenticalAcrossThreadCounts) {
  Rng rng(TestSeed(311));
  Nfa nfa = RandomNfa(6, 0.3, 0.35, rng);
  const int n = 6;
  Result<FprasParams> params =
      FprasParams::Make(Schedule::kFaster, nfa.num_states(), n, 0.35, 0.2,
                        Calibration::Practical());
  ASSERT_TRUE(params.ok());

  FprasParams p1 = *params;
  p1.num_threads = 1;
  FprasParams p8 = *params;
  p8.num_threads = 8;
  FprasEngine sequential(&nfa, p1, TestSeed(312));
  FprasEngine parallel(&nfa, p8, TestSeed(312));
  ASSERT_TRUE(sequential.Run().ok());
  ASSERT_TRUE(parallel.Run().ok());

  EXPECT_EQ(sequential.Estimate(), parallel.Estimate());
  ExpectTablesIdentical(sequential, parallel, nfa, n);
  // Per-length slices and post-run draws ride on the same tables and the
  // same (content-keyed / post-run) streams: identical too.
  for (int level = 0; level <= n; ++level) {
    EXPECT_EQ(sequential.EstimateAtLength(level),
              parallel.EstimateAtLength(level))
        << "level=" << level;
  }
  for (int i = 0; i < 16; ++i) {
    std::optional<Word> a = sequential.SampleAcceptedWord();
    std::optional<Word> b = parallel.SampleAcceptedWord();
    ASSERT_EQ(a.has_value(), b.has_value()) << "draw " << i;
    if (a.has_value()) EXPECT_EQ(*a, *b) << "draw " << i;
  }
}

TEST(Parallel, SamplerFacadeIdenticalAcrossThreadCounts) {
  Rng rng(TestSeed(321));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  SamplerOptions seq_opts;
  seq_opts.seed = TestSeed(322);
  SamplerOptions par_opts = seq_opts;
  par_opts.num_threads = 4;

  Result<WordSampler> a = WordSampler::Build(nfa, 6, seq_opts);
  Result<WordSampler> b = WordSampler::Build(nfa, 6, par_opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->CountEstimate(), b->CountEstimate());
  for (int i = 0; i < 10; ++i) {
    Result<Word> wa = a->Sample();
    Result<Word> wb = b->Sample();
    ASSERT_TRUE(wa.ok() && wb.ok());
    EXPECT_EQ(*wa, *wb) << "draw " << i;
  }
}

TEST(Parallel, MemoIsAPureCache) {
  // Union-size randomness is keyed by content, not by call order, so
  // disabling memoization changes only the work done — never an estimate.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  CountOptions with_memo = ThreadedOpts(TestSeed(331), 2);
  CountOptions without_memo = with_memo;
  without_memo.memoize_unions = false;
  Result<CountEstimate> a = ApproxCount(nfa, 8, with_memo);
  Result<CountEstimate> b = ApproxCount(nfa, 8, without_memo);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
}

TEST(Parallel, AllLengthsBitIdenticalAcrossThreadCounts) {
  Nfa nfa = ParityNfa(2);
  const int n = 7;
  Result<std::vector<double>> one =
      ApproxCountAllLengths(nfa, n, ThreadedOpts(TestSeed(341), 1));
  Result<std::vector<double>> eight =
      ApproxCountAllLengths(nfa, n, ThreadedOpts(TestSeed(341), 8));
  ASSERT_TRUE(one.ok() && eight.ok());
  for (int len = 0; len <= n; ++len) {
    EXPECT_EQ((*one)[len], (*eight)[len]) << "len=" << len;
  }
}

TEST(Parallel, AutoThreadCountAlsoIdentical) {
  // num_threads = 0 resolves to the hardware count; results must not move.
  Nfa nfa = SubstringNfa(Word{0, 1});
  Result<CountEstimate> one = ApproxCount(nfa, 7, ThreadedOpts(TestSeed(351), 1));
  Result<CountEstimate> automatic =
      ApproxCount(nfa, 7, ThreadedOpts(TestSeed(351), 0));
  ASSERT_TRUE(one.ok() && automatic.ok());
  EXPECT_EQ(one->estimate, automatic->estimate);
}

using ParallelDeathTest = ::testing::Test;

TEST(ParallelDeathTest, AccessorsBoundCheckLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(TestSeed(361));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), 4, 0.4, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, TestSeed(362));

  // Before Run(): every accessor must refuse, not read garbage.
  EXPECT_DEATH(engine.CountEstimateFor(0, 0), "NFA_CHECK failed");

  ASSERT_TRUE(engine.Run().ok());
  EXPECT_DEATH(engine.CountEstimateFor(0, 5), "level out of");
  EXPECT_DEATH(engine.CountEstimateFor(0, -1), "level out of");
  EXPECT_DEATH(engine.CountEstimateFor(99, 2), "state out of");
  EXPECT_DEATH(engine.SamplesFor(-1, 2), "state out of");
  EXPECT_DEATH(engine.SamplesFor(0, 17), "level out of");
  EXPECT_DEATH(engine.EstimateAtLength(-2), "level out of");
  EXPECT_DEATH(engine.EstimateAtLength(5), "level out of");
}

}  // namespace
}  // namespace nfacount
