// Symbol-class alphabet compression: partition correctness against a brute-
// force row comparison, bit-identical predecessor/successor expansion for
// every class member, the degenerate all-distinct-rows case (classes on vs
// off must be bit-identical because the trivial partition leaves every
// content-keyed substream unchanged), the identity grid at a fixed class
// setting, the accuracy envelope on the corpus-scale family, and the
// checkpoint knob flip (envelope-preserving, prefix untouched).

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "automata/generators.hpp"
#include "automata/symbol_classes.hpp"
#include "automata/unrolled.hpp"
#include "counting/exact.hpp"
#include "fpras/checkpoint.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::ExpectTablesIdentical;
using testing_support::SessionTestOptions;
using testing_support::TestSeed;

/// True when symbols a and b have identical successor rows in `nfa` — the
/// definition the partition must reproduce, computed the slow way.
bool RowsEqual(const Nfa& nfa, Symbol a, Symbol b) {
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    Bitset ra(static_cast<size_t>(nfa.num_states()));
    Bitset rb(static_cast<size_t>(nfa.num_states()));
    for (StateId r : nfa.Successors(q, a)) ra.Set(static_cast<size_t>(r));
    for (StateId r : nfa.Successors(q, b)) rb.Set(static_cast<size_t>(r));
    if (!(ra == rb)) return false;
  }
  return true;
}

/// Checks every structural invariant of a computed partition against the
/// brute-force equivalence: same-class iff equal rows, representatives are
/// the strictly increasing smallest members, weights/members consistent.
void ExpectPartitionMatchesBruteForce(const Nfa& nfa) {
  const SymbolClassIndex classes = SymbolClassIndex::Compute(nfa);
  const int sigma = nfa.alphabet_size();
  ASSERT_EQ(classes.alphabet_size(), sigma);
  ASSERT_GE(classes.num_classes(), 1);
  ASSERT_LE(classes.num_classes(), sigma);

  // Equivalence agreement for every symbol pair.
  for (int a = 0; a < sigma; ++a) {
    for (int b = a; b < sigma; ++b) {
      const bool same_class = classes.ClassOf(static_cast<Symbol>(a)) ==
                              classes.ClassOf(static_cast<Symbol>(b));
      EXPECT_EQ(same_class,
                RowsEqual(nfa, static_cast<Symbol>(a), static_cast<Symbol>(b)))
          << "a=" << a << " b=" << b;
    }
  }

  // Representative = smallest member, strictly increasing across classes;
  // members enumerate the whole alphabet exactly once, ascending per class.
  int total_weight = 0;
  Symbol prev_rep = 0;
  for (int c = 0; c < classes.num_classes(); ++c) {
    const Symbol rep = classes.Representative(c);
    if (c > 0) {
      EXPECT_GT(rep, prev_rep) << "c=" << c;
    }
    prev_rep = rep;
    const int weight = classes.Weight(c);
    ASSERT_GE(weight, 1);
    total_weight += weight;
    EXPECT_EQ(classes.Member(c, 0), rep) << "c=" << c;
    for (int i = 0; i < weight; ++i) {
      const Symbol member = classes.Member(c, i);
      if (i > 0) {
        EXPECT_GT(member, classes.Member(c, i - 1)) << "c=" << c;
      }
      EXPECT_EQ(classes.ClassOf(member), c) << "member=" << member;
    }
  }
  EXPECT_EQ(total_weight, sigma);
}

TEST(SymbolClassPartition, MatchesBruteForceAcrossFamilies) {
  ExpectPartitionMatchesBruteForce(CorpusTokenNfa(4, 96, 4));
  ExpectPartitionMatchesBruteForce(SubstringNfa(Word{1, 0, 1}, 8));
  ExpectPartitionMatchesBruteForce(ParityNfa(3, 0, 12));
  ExpectPartitionMatchesBruteForce(DivisibilityNfa(7, 4));
  Rng rng(TestSeed(1601));
  ExpectPartitionMatchesBruteForce(RandomNfa(6, 0.3, 0.3, rng));
}

TEST(SymbolClassPartition, CorpusFamilyCollapsesToCategoryCount) {
  // Every category appears in the pattern: one class per category.
  EXPECT_EQ(SymbolClassIndex::Compute(CorpusTokenNfa(4, 512, 4)).num_classes(),
            4);
  // pattern_len=2 uses only categories 0 and 1; categories 2 and 3 share the
  // loop-only row and must merge into one class: 3 classes total.
  EXPECT_EQ(SymbolClassIndex::Compute(CorpusTokenNfa(2, 64, 4)).num_classes(),
            3);
  // The compression the tentpole targets: C stays put as |Σ| grows.
  EXPECT_EQ(
      SymbolClassIndex::Compute(CorpusTokenNfa(4, 1 << 14, 4)).num_classes(),
      4);
}

TEST(SymbolClassPartition, TrivialPartitionAndDegenerateFamily) {
  const SymbolClassIndex trivial = SymbolClassIndex::Trivial(5);
  EXPECT_TRUE(trivial.trivial());
  EXPECT_EQ(trivial.num_classes(), 5);
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(trivial.ClassOf(static_cast<Symbol>(a)), a);
    EXPECT_EQ(trivial.Representative(a), static_cast<Symbol>(a));
    EXPECT_EQ(trivial.Weight(a), 1);
  }
  // DivisibilityNfa(7, 4): row (q, a) targets (4q+a) mod 7, distinct per
  // symbol — the computed partition must degenerate to C == |Σ|.
  const SymbolClassIndex computed =
      SymbolClassIndex::Compute(DivisibilityNfa(7, 4));
  EXPECT_TRUE(computed.trivial());
  EXPECT_EQ(computed.num_classes(), 4);
}

// Bit-identical expansion for every class member: Pred(P, member) must equal
// Pred(P, representative) for every frontier P the engine could pass, at
// every level — the invariant that makes the per-class rewrite exact rather
// than approximate.
TEST(SymbolClassPartition, MemberExpansionBitIdenticalAtEveryLevel) {
  const Nfa nfa = CorpusTokenNfa(3, 48, 3);
  const int n = 5;
  const UnrolledNfa unrolled(&nfa, n, /*symbol_classes=*/true);
  const SymbolClassIndex& classes = unrolled.symbol_classes();
  ASSERT_LT(classes.num_classes(), nfa.alphabet_size());

  const size_t m = static_cast<size_t>(nfa.num_states());
  Rng rng(TestSeed(1611));
  for (int level = 1; level <= n; ++level) {
    // Frontiers: the full reachable set plus a few random subsets of it.
    std::vector<Bitset> frontiers;
    frontiers.push_back(unrolled.ReachableAt(level));
    for (int trial = 0; trial < 4; ++trial) {
      Bitset subset(m);
      for (size_t q = 0; q < m; ++q) {
        if (unrolled.ReachableAt(level).Test(q) && rng.Bernoulli(0.6)) {
          subset.Set(q);
        }
      }
      frontiers.push_back(std::move(subset));
    }
    for (const Bitset& frontier : frontiers) {
      for (int c = 0; c < classes.num_classes(); ++c) {
        const Symbol rep = classes.Representative(c);
        const Bitset rep_pred = unrolled.PredSet(frontier, rep, level);
        Bitset rep_succ(m);
        unrolled.SuccSetInto(frontier, rep, &rep_succ);
        for (int i = 1; i < classes.Weight(c); ++i) {
          const Symbol member = classes.Member(c, i);
          EXPECT_TRUE(rep_pred == unrolled.PredSet(frontier, member, level))
              << "level=" << level << " class=" << c << " member=" << member;
          Bitset member_succ(m);
          unrolled.SuccSetInto(frontier, member, &member_succ);
          EXPECT_TRUE(rep_succ == member_succ)
              << "level=" << level << " class=" << c << " member=" << member;
        }
      }
    }
  }
}

// Degenerate all-distinct-rows automaton: the computed partition is trivial,
// so classes on and off key every RNG substream identically — the two
// settings must agree bit for bit (the only regime where the flip is
// bit-preserving rather than merely envelope-preserving).
TEST(SymbolClasses, TrivialPartitionMakesOnOffBitIdentical) {
  const Nfa nfa = DivisibilityNfa(7, 4);
  const int n = 6;
  CountOptions on = SessionTestOptions(TestSeed(1621));
  on.symbol_classes = true;
  on.num_threads = 1;
  on.batch_width = 1;
  Result<EngineSession> base = EngineSession::Create(nfa, n, on);
  ASSERT_TRUE(base.ok());
  std::vector<double> base_counts;
  for (int level = 0; level <= n; ++level) {
    Result<double> c = base->CountAtLength(level);
    ASSERT_TRUE(c.ok());
    base_counts.push_back(*c);
  }
  Result<std::vector<Word>> base_draws = base->SampleWords(n, 12);
  ASSERT_TRUE(base_draws.ok());

  for (bool enabled : {true, false}) {
    for (int threads : {1, 4}) {
      for (int width : {1, 32}) {
        CountOptions opts = SessionTestOptions(TestSeed(1621));
        opts.symbol_classes = enabled;
        opts.num_threads = threads;
        opts.batch_width = width;
        Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
        ASSERT_TRUE(session.ok());
        for (int level = 0; level <= n; ++level) {
          Result<double> c = session->CountAtLength(level);
          ASSERT_TRUE(c.ok());
          EXPECT_EQ(*c, base_counts[static_cast<size_t>(level)])
              << "classes=" << enabled << " threads=" << threads
              << " width=" << width << " level=" << level;
        }
        ExpectTablesIdentical(session->engine(), base->engine(), nfa, n);
        Result<std::vector<Word>> draws = session->SampleWords(n, 12);
        ASSERT_TRUE(draws.ok());
        ASSERT_EQ(draws->size(), base_draws->size());
        for (size_t i = 0; i < draws->size(); ++i) {
          EXPECT_EQ((*draws)[i], (*base_draws)[i])
              << "classes=" << enabled << " threads=" << threads
              << " width=" << width << " draw=" << i;
        }
      }
    }
  }
}

// Identity grid at a fixed class setting on a genuinely compressed family:
// estimates, per-(q,ℓ) tables, and draw streams must not move across
// num_threads × batch_width × descent-cache capacity.
TEST(SymbolClasses, GridBitIdenticalAtFixedClassSetting) {
  const Nfa nfa = CorpusTokenNfa(3, 64, 3);
  const int n = 6;
  CountOptions base = SessionTestOptions(TestSeed(1631));
  base.descent_cache_capacity = 0;
  base.num_threads = 1;
  base.batch_width = 1;
  Result<EngineSession> baseline = EngineSession::Create(nfa, n, base);
  ASSERT_TRUE(baseline.ok());
  std::vector<double> base_counts;
  for (int level = 0; level <= n; ++level) {
    Result<double> c = baseline->CountAtLength(level);
    ASSERT_TRUE(c.ok());
    base_counts.push_back(*c);
  }
  Result<std::vector<Word>> base_draws = baseline->SampleWords(n, 12);
  ASSERT_TRUE(base_draws.ok());

  const int64_t capacities[] = {0, int64_t{1} << 20};
  for (int64_t capacity : capacities) {
    for (int threads : {1, 4}) {
      for (int width : {1, 32}) {
        CountOptions opts = SessionTestOptions(TestSeed(1631));
        opts.descent_cache_capacity = capacity;
        opts.num_threads = threads;
        opts.batch_width = width;
        Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
        ASSERT_TRUE(session.ok());
        for (int level = 0; level <= n; ++level) {
          Result<double> c = session->CountAtLength(level);
          ASSERT_TRUE(c.ok());
          EXPECT_EQ(*c, base_counts[static_cast<size_t>(level)])
              << "capacity=" << capacity << " threads=" << threads
              << " width=" << width << " level=" << level;
        }
        ExpectTablesIdentical(session->engine(), baseline->engine(), nfa, n);
        Result<std::vector<Word>> draws = session->SampleWords(n, 12);
        ASSERT_TRUE(draws.ok());
        ASSERT_EQ(draws->size(), base_draws->size());
        for (size_t i = 0; i < draws->size(); ++i) {
          EXPECT_EQ((*draws)[i], (*base_draws)[i])
              << "capacity=" << capacity << " threads=" << threads
              << " width=" << width << " draw=" << i;
        }
      }
    }
  }
}

// Accuracy on the corpus-scale family: both class settings must land inside
// the envelope of the exact count at an alphabet far past what the
// uncompressed per-symbol loops were tested on. Sampled words must be
// accepted and of the right length.
TEST(SymbolClasses, EnvelopeVsExactOnCorpusFamily) {
  const Nfa nfa = CorpusTokenNfa(4, 512, 4);
  const int n = 8;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const double truth = exact->ToDouble();
  ASSERT_GT(truth, 0.0);

  for (bool enabled : {true, false}) {
    CountOptions opts = SessionTestOptions(TestSeed(1641));
    opts.symbol_classes = enabled;
    Result<EngineSession> session = EngineSession::Create(nfa, n, opts);
    ASSERT_TRUE(session.ok());
    Result<double> estimate = session->CountAtLength(n);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(*estimate / truth, 1.0, 0.35) << "classes=" << enabled;
    Result<std::vector<Word>> draws = session->SampleWords(n, 8);
    ASSERT_TRUE(draws.ok()) << draws.status().ToString();
    for (const Word& w : *draws) {
      ASSERT_EQ(static_cast<int>(w.size()), n);
      EXPECT_TRUE(nfa.Accepts(w));
    }
  }
}

// Flipping the symbol_classes knob on resume: the already-computed prefix is
// bit-identical (it is data, not a function of the knob), and levels computed
// after the flip stay inside the accuracy envelope — the contract documented
// on SessionKnobs::symbol_classes.
TEST(SymbolClasses, CheckpointKnobFlipKeepsPrefixAndEnvelope) {
  const Nfa nfa = CorpusTokenNfa(3, 64, 3);
  const int n = 6;
  const int mid = 3;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  const double truth = exact->ToDouble();

  CountOptions opts = SessionTestOptions(TestSeed(1651));
  Result<EngineSession> original = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(original.ok());
  Result<double> mid_count = original->CountAtLength(mid);
  ASSERT_TRUE(mid_count.ok());
  const std::string bytes = SerializeSessionCheckpoint(*original);

  // Resume with the layer flipped off and extend past the save point.
  SessionKnobs flipped;
  flipped.symbol_classes = 0;
  Result<EngineSession> resumed = DeserializeSessionCheckpoint(bytes, &flipped);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->params().symbol_classes &&
               std::getenv("NFACOUNT_SYMBOL_CLASSES") == nullptr);
  Result<double> mid_again = resumed->CountAtLength(mid);
  ASSERT_TRUE(mid_again.ok());
  EXPECT_EQ(*mid_again, *mid_count);  // computed prefix is knob-independent
  Result<double> extended = resumed->CountAtLength(n);
  ASSERT_TRUE(extended.ok());
  EXPECT_NEAR(*extended / truth, 1.0, 0.35);

  // Resume with -1 (keep): the run must continue bit-identically to an
  // uninterrupted session at the same options.
  Result<EngineSession> kept = DeserializeSessionCheckpoint(bytes, nullptr);
  ASSERT_TRUE(kept.ok());
  Result<EngineSession> straight = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(straight.ok());
  Result<double> kept_count = kept->CountAtLength(n);
  Result<double> straight_count = straight->CountAtLength(n);
  ASSERT_TRUE(kept_count.ok() && straight_count.ok());
  EXPECT_EQ(*kept_count, *straight_count);
  ExpectTablesIdentical(kept->engine(), straight->engine(), nfa, n);
}

}  // namespace
}  // namespace nfacount
