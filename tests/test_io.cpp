// Tests for automaton text serialization and DOT export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

constexpr char kSample[] =
    "# words containing '1'\n"
    "nfa 2 2\n"
    "initial 0\n"
    "accepting 1\n"
    "trans 0 0 0\n"
    "trans 0 1 0\n"
    "trans 0 1 1\n"
    "trans 1 0 1\n"
    "trans 1 1 1\n";

TEST(ParseNfaText, ParsesSample) {
  Result<Nfa> nfa = ParseNfaText(kSample);
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  EXPECT_EQ(nfa->num_states(), 2);
  EXPECT_EQ(nfa->alphabet_size(), 2);
  EXPECT_EQ(nfa->initial(), 0);
  EXPECT_TRUE(nfa->IsAccepting(1));
  EXPECT_TRUE(nfa->Accepts(Word{0, 1, 0}));
  EXPECT_FALSE(nfa->Accepts(Word{0, 0}));
}

TEST(ParseNfaText, CommentsAndBlankLines) {
  Result<Nfa> nfa = ParseNfaText(
      "\n# leading comment\n\nnfa 1 2   # trailing comment\ninitial 0\n"
      "accepting 0\n\n# done\n");
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  EXPECT_TRUE(nfa->Accepts(Word{}));
}

TEST(ParseNfaText, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* fragment;
  };
  const Case cases[] = {
      {"initial 0\n", "header must come first"},
      {"nfa 0 2\n", "need >= 1 state"},
      {"nfa 2 99999\n", "alphabet size out of range"},
      {"nfa 2 2\nnfa 2 2\n", "duplicate header"},
      {"nfa 2 2\ninitial 5\n", "bad initial"},
      {"nfa 2 2\ninitial 0\naccepting 7\n", "out of range"},
      {"nfa 2 2\ninitial 0\naccepting\n", "at least one state"},
      {"nfa 2 2\ninitial 0\ntrans 0 2 1\n", "outside the alphabet"},
      {"nfa 2 100\ninitial 0\ntrans 0 517 1\n", "outside the alphabet"},
      {"nfa 2 2\ninitial 0\ntrans 0 1\n", "expected 'trans"},
      {"nfa 2 2\ninitial 0\nfrobnicate\n", "unknown keyword"},
      {"nfa 2 2\n", "missing initial"},
      {"", "missing header"},
  };
  for (const Case& c : cases) {
    Result<Nfa> nfa = ParseNfaText(c.text);
    ASSERT_FALSE(nfa.ok()) << c.text;
    EXPECT_NE(nfa.status().message().find(c.fragment), std::string::npos)
        << "text=<" << c.text << "> got: " << nfa.status().ToString();
  }
}

// The two worked examples of docs/FILE_FORMATS.md, verbatim: both must
// parse, match their documented language, and round-trip through NfaToText.
TEST(ParseNfaText, FileFormatsDocExamplesRoundTrip) {
  // Example 1 — words containing '1' (same automaton as kSample above).
  {
    Result<Nfa> nfa = ParseNfaText(kSample);
    ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
    Result<BigUint> count = BruteForceCount(*nfa, 10);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->ToDouble(), 1023.0);  // 2^10 - 1
    Result<Nfa> reparsed = ParseNfaText(NfaToText(*nfa));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(nfa->ToString(), reparsed->ToString());
  }
  // Example 2 — base-2 numerals divisible by 3 (mod-3 tracking DFA).
  {
    constexpr char kDivisibleBy3[] =
        "# MSB-first binary numerals divisible by 3\n"
        "nfa 3 2\n"
        "initial 0\n"
        "accepting 0\n"
        "trans 0 0 0      # 2*0+0 = 0\n"
        "trans 0 1 1      # 2*0+1 = 1\n"
        "trans 1 0 2      # 2*1+0 = 2\n"
        "trans 1 1 0      # 2*1+1 = 0\n"
        "trans 2 0 1      # 2*2+0 = 1\n"
        "trans 2 1 2      # 2*2+1 = 2\n";
    Result<Nfa> nfa = ParseNfaText(kDivisibleBy3);
    ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
    EXPECT_TRUE(nfa->Accepts(Word{}));            // value 0
    EXPECT_TRUE(nfa->Accepts(Word{1, 1, 0}));     // 6
    EXPECT_FALSE(nfa->Accepts(Word{1, 0, 0}));    // 4
    Result<bool> eq = LanguageEquivalent(*nfa, DivisibilityNfa(3));
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value());
    Result<Nfa> reparsed = ParseNfaText(NfaToText(*nfa));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(nfa->ToString(), reparsed->ToString());
  }
}

TEST(NfaToText, RoundTripPreservesEverything) {
  Rng rng(TestSeed(5));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa original = RandomNfa(6, 0.3, 0.3, rng);
    Result<Nfa> reparsed = ParseNfaText(NfaToText(original));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(original.ToString(), reparsed->ToString());
    Result<bool> eq = LanguageEquivalent(original, *reparsed);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value());
  }
}

TEST(NfaToText, LargerAlphabetSymbols) {
  Nfa nfa(12);  // symbols 0-9, a, b
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);
  nfa.AddTransition(0, Symbol{11}, 1);
  std::string text = NfaToText(nfa);
  EXPECT_NE(text.find("trans 0 b 1"), std::string::npos);
  Result<Nfa> reparsed = ParseNfaText(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->Accepts(Word{11}));
}

TEST(Files, SaveAndLoadRoundTrip) {
  Nfa nfa = SubstringNfa(Word{1, 0});
  const std::string path = ::testing::TempDir() + "/nfa_io_test.nfa";
  ASSERT_TRUE(SaveNfaFile(nfa, path).ok());
  Result<Nfa> loaded = LoadNfaFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Result<bool> eq = LanguageEquivalent(nfa, *loaded);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
  std::remove(path.c_str());
}

TEST(Files, LoadMissingFileFails) {
  Result<Nfa> loaded = LoadNfaFile("/nonexistent/path/x.nfa");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(Dot, ContainsStructure) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);
  nfa.AddTransition(0, 1, 1);
  std::string dot = NfaToDot(nfa, "demo");
  EXPECT_NE(dot.find("digraph demo"), std::string::npos);
  EXPECT_NE(dot.find("q1 [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("q0 [shape=circle]"), std::string::npos);
  EXPECT_NE(dot.find("__start -> q0"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1 [label=\"1\"]"), std::string::npos);
}

}  // namespace
}  // namespace nfacount
