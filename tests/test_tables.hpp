// Shared table-equality support for the determinism suites (test_batch,
// test_session, test_checkpoint): one definition of "two engines hold
// bit-identical per-(q,ℓ) state", so every suite asserts the same notion of
// identical when StateLevelData grows a field.

#ifndef NFACOUNT_TESTS_TEST_TABLES_HPP_
#define NFACOUNT_TESTS_TEST_TABLES_HPP_

#include <gtest/gtest.h>

#include "fpras/estimator.hpp"

namespace nfacount {
namespace testing_support {

/// Full per-(q,ℓ) table equality between two engines over levels
/// 0..max_level: count estimates, stored words, and reach profiles, bit for
/// bit.
inline void ExpectTablesIdentical(const FprasEngine& a, const FprasEngine& b,
                                  const Nfa& nfa, int max_level) {
  for (int level = 0; level <= max_level; ++level) {
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      EXPECT_EQ(a.CountEstimateFor(q, level), b.CountEstimateFor(q, level))
          << "q=" << q << " level=" << level;
      const auto sa = a.SamplesFor(q, level);
      const auto sb = b.SamplesFor(q, level);
      ASSERT_EQ(sa.size(), sb.size()) << "q=" << q << " level=" << level;
      for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].word, sb[i].word)
            << "q=" << q << " level=" << level << " i=" << i;
        EXPECT_EQ(sa[i].reach, sb[i].reach)
            << "q=" << q << " level=" << level << " i=" << i;
      }
    }
  }
}

/// The session/checkpoint suites' common options point (moderate accuracy,
/// fast at unit-test sizes).
inline CountOptions SessionTestOptions(uint64_t seed) {
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = seed;
  return options;
}

}  // namespace testing_support
}  // namespace nfacount

#endif  // NFACOUNT_TESTS_TEST_TABLES_HPP_
