// Deterministic seeding for every randomized test in the suite.
//
// Each randomized call site asks for TestSeed(<site offset>) instead of
// hard-coding an Rng seed. With no environment override the base is 0, so
// TestSeed(k) == k and tier-1 runs are bit-for-bit reproducible across
// machines and runs. Setting NFACOUNT_TEST_SEED=<uint64> (decimal, or 0x-hex)
// shifts every call site onto a fresh — still deterministic — stream, which
// is how we hunt for envelope-tolerance flakiness without touching code.
// The sole opt-out is test_rng.cpp: it unit-tests the generator itself
// against seed-specific golden values, where shifting seeds would be wrong.

#ifndef NFACOUNT_TESTS_TEST_SEED_HPP_
#define NFACOUNT_TESTS_TEST_SEED_HPP_

#include <cstdint>
#include <cstdlib>

namespace nfacount {
namespace testing_support {

/// Global base seed: 0 unless overridden via NFACOUNT_TEST_SEED.
inline uint64_t TestSeedBase() {
  static const uint64_t base = [] {
    const char* env = std::getenv("NFACOUNT_TEST_SEED");
    if (env == nullptr || *env == '\0') return static_cast<uint64_t>(0);
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
  }();
  return base;
}

/// Seed for one randomized call site: global base plus a stable per-site
/// offset (the historical literal seed, so default runs match the seed repo).
inline uint64_t TestSeed(uint64_t site_offset) {
  return TestSeedBase() + site_offset;
}

}  // namespace testing_support
}  // namespace nfacount

#endif  // NFACOUNT_TESTS_TEST_SEED_HPP_
