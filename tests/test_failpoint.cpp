// Unit tests for util/failpoint.hpp — spec parsing, arming/disarming,
// counted firings, the environment schedule, and Check() under concurrent
// arming (the daemon's connection threads race test threads in the chaos
// suites, so the registry itself must be race-free).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/failpoint.hpp"

namespace nfacount {
namespace failpoint {
namespace {

// MUST run first in this binary: the environment schedule is folded in
// lazily on the first Set/Check/Clear of the process, so this test owns
// that first call. Later tests only exercise programmatic arming.
TEST(Failpoint, EnvScheduleFoldsInOnFirstUse) {
  const char* old = std::getenv("NFACOUNT_FAILPOINTS");
  const std::string saved = old == nullptr ? "" : old;
  // One counted arming, one malformed entry (ignored), one empty item.
  ASSERT_EQ(0, ::setenv("NFACOUNT_FAILPOINTS",
                        "env.point=error:2,,bogus,also=not-an-action", 1));
  EXPECT_TRUE(EnvScheduleActive());

  Eval first = Check("env.point");
  EXPECT_EQ(Action::kError, first.action);
  EXPECT_EQ(Action::kError, Check("env.point").action);
  EXPECT_EQ(Action::kOff, Check("env.point").action);  // count exhausted
  EXPECT_EQ(2, Hits("env.point"));
  EXPECT_EQ(Action::kOff, Check("also").action);  // malformed spec dropped

  if (old == nullptr) {
    ASSERT_EQ(0, ::unsetenv("NFACOUNT_FAILPOINTS"));
    EXPECT_FALSE(EnvScheduleActive());
  } else {
    ASSERT_EQ(0, ::setenv("NFACOUNT_FAILPOINTS", saved.c_str(), 1));
  }
  ClearAll();
}

TEST(Failpoint, UnarmedCheckIsOff) {
  EXPECT_FALSE(Check("never.armed").fires());
  EXPECT_EQ(0, Hits("never.armed"));
}

TEST(Failpoint, SpecParsing) {
  // Accepted shapes.
  EXPECT_TRUE(Set("p", "error").ok());
  EXPECT_TRUE(Set("p", "error:3").ok());
  EXPECT_TRUE(Set("p", "short-write(16)").ok());
  EXPECT_TRUE(Set("p", "short-write(16):1").ok());
  EXPECT_TRUE(Set("p", "off").ok());
  // Rejected shapes — each reports Invalid instead of arming garbage.
  EXPECT_FALSE(Set("p", "").ok());
  EXPECT_FALSE(Set("p", "nonsense").ok());
  EXPECT_FALSE(Set("p", "error:").ok());
  EXPECT_FALSE(Set("p", "error:-1").ok());
  EXPECT_FALSE(Set("p", "error:x").ok());
  EXPECT_FALSE(Set("p", "short-write()").ok());
  EXPECT_FALSE(Set("p", "short-write(abc)").ok());
  EXPECT_FALSE(Set("p", "short-write(-5)").ok());
  EXPECT_FALSE(Set("", "error").ok());
  ClearAll();
}

TEST(Failpoint, ErrorActionFiresUntilCleared) {
  ASSERT_TRUE(Set("a.b", "error").ok());
  EXPECT_EQ(Action::kError, Check("a.b").action);
  EXPECT_EQ(Action::kError, Check("a.b").action);
  Clear("a.b");
  EXPECT_FALSE(Check("a.b").fires());
  EXPECT_EQ(2, Hits("a.b"));  // hit count survives the disarm
  ClearAll();
}

TEST(Failpoint, ShortWriteCarriesItsByteBudget) {
  ASSERT_TRUE(Set("w", "short-write(23)").ok());
  Eval eval = Check("w");
  EXPECT_EQ(Action::kShortWrite, eval.action);
  EXPECT_EQ(23, eval.arg);
  ClearAll();
}

TEST(Failpoint, CountedArmingSelfDisarms) {
  ASSERT_TRUE(Set("c", "error:3").ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(Check("c").fires()) << "firing " << i;
  }
  EXPECT_FALSE(Check("c").fires());
  EXPECT_FALSE(Check("c").fires());
  EXPECT_EQ(3, Hits("c"));
  ClearAll();
}

TEST(Failpoint, SetReplacesExistingArming) {
  ASSERT_TRUE(Set("r", "error").ok());
  ASSERT_TRUE(Set("r", "short-write(4):1").ok());
  Eval eval = Check("r");
  EXPECT_EQ(Action::kShortWrite, eval.action);
  EXPECT_EQ(4, eval.arg);
  EXPECT_FALSE(Check("r").fires());
  // Re-arming after exhaustion works and keeps accumulating hits.
  ASSERT_TRUE(Set("r", "error:1").ok());
  EXPECT_TRUE(Check("r").fires());
  EXPECT_EQ(2, Hits("r"));
  ClearAll();
}

TEST(Failpoint, ClearAllDisarmsEverything) {
  ASSERT_TRUE(Set("x", "error").ok());
  ASSERT_TRUE(Set("y", "short-write(8)").ok());
  ClearAll();
  EXPECT_FALSE(Check("x").fires());
  EXPECT_FALSE(Check("y").fires());
}

// Exactly `count` firings total even when many threads race the point, and
// concurrent Set/Clear of other points never corrupts the registry. Run
// under TSan in CI.
TEST(Failpoint, CountedFiringsAreExactUnderConcurrency) {
  ASSERT_TRUE(Set("race", "error:100").ok());
  constexpr int kThreads = 8;
  constexpr int kChecksPerThread = 1000;
  std::vector<int64_t> fired(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &fired] {
      for (int i = 0; i < kChecksPerThread; ++i) {
        if (Check("race").fires()) fired[static_cast<size_t>(t)]++;
      }
    });
  }
  // One more thread churns an unrelated point the whole time.
  threads.emplace_back([] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(Set("churn", "error").ok());
      Check("churn");
      Clear("churn");
    }
  });
  for (std::thread& thread : threads) thread.join();
  int64_t total = 0;
  for (int64_t f : fired) total += f;
  EXPECT_EQ(100, total);
  EXPECT_EQ(100, Hits("race"));
  ClearAll();
}

}  // namespace
}  // namespace failpoint
}  // namespace nfacount
