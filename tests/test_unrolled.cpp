// Tests for the unrolled-automaton view: level reachability, predecessor
// expansion (the self-reducible-union decomposition of the paper), witness
// extraction, and the amortized membership oracle.

#include <gtest/gtest.h>

#include <set>

#include "automata/generators.hpp"
#include "automata/unrolled.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(Unrolled, Level0IsInitialOnly) {
  Rng rng(TestSeed(1));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  UnrolledNfa unr(&nfa, 5);
  EXPECT_EQ(unr.ReachableAt(0).ToIndices(),
            std::vector<int>{static_cast<int>(nfa.initial())});
}

TEST(Unrolled, ReachabilityMatchesEnumeration) {
  Rng rng(TestSeed(2));
  for (int trial = 0; trial < 6; ++trial) {
    Nfa nfa = RandomNfa(6, 0.25, 0.3, rng);
    const int n = 6;
    UnrolledNfa unr(&nfa, n);
    for (int level = 0; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        Result<std::vector<Word>> words = EnumerateStateLevel(nfa, q, level);
        ASSERT_TRUE(words.ok());
        EXPECT_EQ(unr.IsReachable(q, level), !words->empty())
            << "trial=" << trial << " q=" << q << " level=" << level;
      }
    }
  }
}

TEST(Unrolled, PredSetDecompositionIdentity) {
  // The self-reducible union property behind the whole algorithm:
  // L(q^ℓ) = ⊎_b L(Pred(q,b)^{ℓ-1})·b. Verify exact counts both sides.
  Rng rng(TestSeed(3));
  for (int trial = 0; trial < 5; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    const int n = 6;
    UnrolledNfa unr(&nfa, n);
    Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
    ASSERT_TRUE(dp.ok());
    for (int level = 1; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        if (!unr.IsReachable(q, level)) continue;
        Bitset singleton(nfa.num_states());
        singleton.Set(q);
        // Count words in L(q^ℓ) ending with b = words of L(P_b^{ℓ-1}) where
        // P_b = PredSet(q, b). The per-b sets are computed by enumeration.
        size_t total = 0;
        for (int b = 0; b < 2; ++b) {
          Bitset preds = unr.PredSet(singleton, static_cast<Symbol>(b), level);
          // |∪_{p∈preds} L(p^{ℓ-1})| by brute-force de-dup.
          std::set<Word> prefix_union;
          preds.ForEachSet([&](int p) {
            Result<std::vector<Word>> words =
                EnumerateStateLevel(nfa, p, level - 1);
            ASSERT_TRUE(words.ok());
            prefix_union.insert(words->begin(), words->end());
          });
          total += prefix_union.size();
        }
        EXPECT_EQ(BigUint(total), dp->StateLevelCount(q, level))
            << "trial=" << trial << " q=" << q << " level=" << level;
      }
    }
  }
}

TEST(Unrolled, WitnessWordIsInStateLanguage) {
  Rng rng(TestSeed(4));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa nfa = RandomNfa(7, 0.25, 0.3, rng);
    const int n = 7;
    UnrolledNfa unr(&nfa, n);
    for (int level = 0; level <= n; ++level) {
      for (StateId q = 0; q < nfa.num_states(); ++q) {
        std::optional<Word> w = unr.WitnessWord(q, level);
        EXPECT_EQ(w.has_value(), unr.IsReachable(q, level));
        if (w.has_value()) {
          EXPECT_EQ(static_cast<int>(w->size()), level);
          EXPECT_TRUE(nfa.Reach(*w).Test(q))
              << "witness " << WordToString(*w) << " not in L(" << q << "^"
              << level << ")";
        }
      }
    }
  }
}

TEST(Unrolled, WitnessWordIsDeterministic) {
  Rng rng(TestSeed(5));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  UnrolledNfa a(&nfa, 6), b(&nfa, 6);
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    EXPECT_EQ(a.WitnessWord(q, 6), b.WitnessWord(q, 6));
  }
}

TEST(Unrolled, MakeSampleReachProfileMatchesSlowOracle) {
  Rng rng(TestSeed(6));
  Nfa nfa = RandomNfa(8, 0.3, 0.3, rng);
  UnrolledNfa unr(&nfa, 6);
  Rng words_rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Word w;
    for (int i = 0; i < 6; ++i) {
      w.push_back(static_cast<Symbol>(words_rng.UniformU64(2)));
    }
    StoredSample sample = unr.MakeSample(w);
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      EXPECT_EQ(sample.reach.Test(q), unr.MemberSlow(w, q));
    }
  }
}

TEST(Unrolled, EmptyWordSample) {
  Nfa nfa = ParityNfa(2);
  UnrolledNfa unr(&nfa, 3);
  StoredSample s = unr.MakeSample(Word{});
  EXPECT_TRUE(s.reach.Test(nfa.initial()));
  EXPECT_EQ(s.reach.Count(), 1u);
}

TEST(Unrolled, PredSetRespectsLevelReachability) {
  // Build an NFA where state 2 is reachable only at even levels.
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 0, 0);
  UnrolledNfa unr(&nfa, 4);
  // State 0 reachable at even levels, state 1 at odd.
  EXPECT_TRUE(unr.IsReachable(0, 0));
  EXPECT_FALSE(unr.IsReachable(1, 0));
  EXPECT_TRUE(unr.IsReachable(1, 1));
  EXPECT_FALSE(unr.IsReachable(0, 1));
  EXPECT_TRUE(unr.IsReachable(0, 2));

  Bitset target(2);
  target.Set(1);
  // Pred(1, 0) = {0}; at level 1 the previous level is 0 where only state 0
  // lives — fine. At level 2, state 0 is NOT reachable at level 1, so empty.
  EXPECT_EQ(unr.PredSet(target, 0, 1).ToIndices(), std::vector<int>{0});
  EXPECT_TRUE(unr.PredSet(target, 0, 2).None());
}

TEST(Unrolled, NZeroOnlyLevelZero) {
  Nfa nfa = DenseCompleteNfa(3);
  UnrolledNfa unr(&nfa, 0);
  EXPECT_EQ(unr.n(), 0);
  EXPECT_TRUE(unr.IsReachable(nfa.initial(), 0));
}

}  // namespace
}  // namespace nfacount
