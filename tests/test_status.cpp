// Unit tests for the Status/Result error model.

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "util/status.hpp"

namespace nfacount {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::Invalid("a"), StatusCode::kInvalidArgument, "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("c"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::ResourceExhausted("d"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::NotFound("e"), StatusCode::kNotFound, "NotFound"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented, "Unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
      {Status::DataLoss("h"), StatusCode::kDataLoss, "DataLoss"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::NotFound("x"));
}

TEST(Status, CopyingSharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;  // shallow copy of the shared rep
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::Invalid("negative");
  return Status::Ok();
}

Status UseReturnNotOk(int x) {
  NFA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::Ok();
}

TEST(Macros, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_EQ(UseReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h = 0;
  NFA_ASSIGN_OR_RETURN(h, Half(x));
  NFA_ASSIGN_OR_RETURN(h, Half(h));
  return h;
}

TEST(Macros, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

// Three-layer propagation pipeline: the code AND message of the innermost
// failure must survive unchanged through both macro kinds and a change of
// Result value type.
Result<std::string> Innermost(int x) {
  if (x == 1) return Status::NotFound("layer-0 miss");
  if (x == 2) return Status::ResourceExhausted("layer-0 budget");
  return std::string("payload");
}

Result<int> MiddleLayer(int x) {
  std::string s;
  NFA_ASSIGN_OR_RETURN(s, Innermost(x));
  return static_cast<int>(s.size());
}

Status OuterLayer(int x) {
  int n = 0;
  NFA_ASSIGN_OR_RETURN(n, MiddleLayer(x));
  (void)n;
  return Status::Ok();
}

TEST(Macros, CodeAndMessageSurviveMultiLayerPropagation) {
  EXPECT_TRUE(OuterLayer(0).ok());
  Status not_found = OuterLayer(1);
  EXPECT_EQ(not_found.code(), StatusCode::kNotFound);
  EXPECT_EQ(not_found.message(), "layer-0 miss");
  Status exhausted = OuterLayer(2);
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.message(), "layer-0 budget");
}

TEST(Status, ToStringFormatsCodeColonMessage) {
  EXPECT_EQ(Status::NotFound("no such nfa").ToString(), "NotFound: no such nfa");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal: ");
  EXPECT_EQ(Status().ToString(), "OK");
}

TEST(Status, EveryCodeHasAStableName) {
  // StatusCodeName must return a distinct, non-empty literal for every code.
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted, StatusCode::kNotFound,
      StatusCode::kUnimplemented, StatusCode::kInternal,
  };
  std::set<std::string> names;
  for (StatusCode c : codes) {
    const char* name = StatusCodeName(c);
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(codes));
}

TEST(Status, ErrorWithEmptyMessageIsNotOk) {
  Status st = Status::Invalid("");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "");
  // Distinct from OK even though both messages are empty.
  EXPECT_FALSE(st == Status());
}

TEST(Result, CopyAndAssignPreserveState) {
  Result<int> ok(9);
  Result<int> err(Status::OutOfRange("past the end"));
  Result<int> ok_copy = ok;
  Result<int> err_copy = err;
  EXPECT_TRUE(ok_copy.ok());
  EXPECT_EQ(ok_copy.value(), 9);
  EXPECT_FALSE(err_copy.ok());
  EXPECT_EQ(err_copy.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err_copy.status().message(), "past the end");
  // Assignment flips a value Result into an error Result and back.
  ok_copy = err;
  EXPECT_FALSE(ok_copy.ok());
  ok_copy = Result<int>(11);
  ASSERT_TRUE(ok_copy.ok());
  EXPECT_EQ(ok_copy.value(), 11);
}

TEST(Result, ValueOrOnErrorPreservesFallbackOnly) {
  Result<std::string> err(Status::NotFound("gone"));
  EXPECT_EQ(err.value_or("fallback"), "fallback");
  Result<std::string> ok(std::string("present"));
  EXPECT_EQ(ok.value_or("fallback"), "present");
}

TEST(Result, MutableAccessThroughReferenceAndArrow) {
  Result<std::string> r(std::string("abc"));
  *r += "d";
  r->push_back('e');
  EXPECT_EQ(r.value(), "abcde");
}

}  // namespace
}  // namespace nfacount
