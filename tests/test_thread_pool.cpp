// Unit tests for the level-sweep executor's thread pool: exactly-once item
// execution, worker-index ranges, Status/exception propagation, batch reuse,
// and the thread-count resolution knob.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace nfacount {
namespace {

TEST(ThreadPool, ExecutesEveryItemExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (int64_t count : {0, 1, 7, 64, 1000}) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.num_threads(), threads);
      std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
      for (auto& h : hits) h.store(0);
      Status st = pool.ParallelFor(count, [&](int64_t item, int worker) {
        EXPECT_GE(item, 0);
        EXPECT_LT(item, count);
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, threads);
        hits[static_cast<size_t>(item)].fetch_add(1);
        return Status::Ok();
      });
      EXPECT_TRUE(st.ok()) << st.ToString();
      for (int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "threads=" << threads << " item=" << i;
      }
    }
  }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<int64_t> sum{0};
    const int64_t count = 10 + batch;
    Status st = pool.ParallelFor(count, [&](int64_t item, int) {
      sum.fetch_add(item);
      return Status::Ok();
    });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(sum.load(), count * (count - 1) / 2) << "batch=" << batch;
  }
}

TEST(ThreadPool, PropagatesFirstErrorStatus) {
  for (int threads : {1, 3}) {
    ThreadPool pool(threads);
    std::atomic<int64_t> executed{0};
    Status st = pool.ParallelFor(200, [&](int64_t item, int) {
      executed.fetch_add(1);
      if (item == 5) return Status::Invalid("item 5 failed");
      return Status::Ok();
    });
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(st.message(), "item 5 failed");
    // Items not yet started when the error landed are skipped.
    EXPECT_LE(executed.load(), 200);
    EXPECT_GE(executed.load(), 6);
  }
}

TEST(ThreadPool, ConvertsExceptionsToInternalStatus) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(50, [&](int64_t item, int) -> Status {
    if (item == 3) throw std::runtime_error("boom");
    return Status::Ok();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos) << st.ToString();
}

TEST(ThreadPool, SingleThreadRunsInline) {
  // num_threads == 1 must execute on the calling thread (worker index 0),
  // in item order — the sequential semantics the engine relies on when the
  // knob is 1.
  ThreadPool pool(1);
  std::vector<int64_t> order;
  Status st = pool.ParallelFor(10, [&](int64_t item, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(item);  // safe: single-threaded by construction
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);   // hardware threads
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);  // clamped
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(3);
  bool ran = false;
  Status st = pool.ParallelFor(0, [&](int64_t, int) {
    ran = true;
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace nfacount
