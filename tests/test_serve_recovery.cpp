// Durability & crash recovery for serve mode (docs/ARCHITECTURE.md
// "Durability & crash recovery"): the MANIFEST journal's torn-tail and
// compaction behavior, SessionRegistry::Recover()'s revive / quarantine /
// recompute fallback chain, graceful drain, overload shedding with client
// retry, and a TSan-safe in-process chaos scenario (a real kill -9 version
// runs in CI's chaos-smoke job; process-level SIGKILL plus threads is
// undefined under TSan, so here the "crash" is dropping a registry without
// SaveAll — byte-for-byte the same disk state a SIGKILL leaves).
//
// Bit-identity assertions that a NFACOUNT_FAILPOINTS chaos schedule
// legitimately perturbs (checkpoint-carried draw cursors when the schedule
// forces the recompute path) are guarded with EnvScheduleActive(); counts
// are asserted unconditionally — no schedule may ever change an estimate.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "automata/generators.hpp"
#include "automata/io.hpp"
#include "fpras/fpras.hpp"
#include "serve/client.hpp"
#include "serve/manifest.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "test_seed.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using serve::ManifestJournal;
using serve::ManifestRecord;
using serve::RegistryOptions;
using serve::RetryPolicy;
using serve::ServeClient;
using serve::ServeDaemon;
using serve::ServerOptions;
using serve::SessionRegistry;
using testing_support::TestSeed;

/// A fresh, empty per-test spill directory (prior runs' leftovers removed).
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nfarecovery_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  EXPECT_FALSE(ec) << "cannot create " << dir;
  return dir;
}

/// A deterministic small automaton in the io.hpp text format.
std::string TestNfaText(uint64_t seed, int m) {
  Rng rng(seed);
  return NfaToText(RandomNfa(m, 0.3, 0.3, rng));
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

int64_t FileSize(const std::string& path) {
  std::error_code ec;
  return static_cast<int64_t>(std::filesystem::file_size(path, ec));
}

ManifestRecord TestRecord(const std::string& name, uint64_t seed) {
  ManifestRecord record;
  record.name = name;
  record.nfa_text = TestNfaText(seed, 4);
  record.horizon = 5;
  record.seed = seed;
  record.eps = 0.25;
  record.delta = 0.125;
  record.flags = serve::kManifestFlagSymbolClasses;
  return record;
}

// ---------------------------------------------------------------------------
// ManifestJournal unit tests
// ---------------------------------------------------------------------------

TEST(Manifest, RoundTripsRecordsExactly) {
  const std::string dir = FreshDir("roundtrip");
  {
    Result<ManifestJournal> opened = ManifestJournal::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ManifestJournal journal = std::move(opened).value();
    ASSERT_TRUE(journal.AppendRegister(TestRecord("a", 11)).ok());
    ASSERT_TRUE(journal.AppendRegister(TestRecord("b", 22)).ok());
    EXPECT_EQ(2u, journal.live().size());
  }
  Result<ManifestJournal> reopened = ManifestJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  const ManifestJournal& journal = reopened.value();
  EXPECT_EQ(2, journal.replayed_records());
  EXPECT_EQ(0, journal.dropped_tail_bytes());
  ASSERT_EQ(2u, journal.live().size());
  const ManifestRecord want = TestRecord("b", 22);
  const ManifestRecord& got = journal.live().at("b");
  EXPECT_EQ(want.nfa_text, got.nfa_text);
  EXPECT_EQ(want.horizon, got.horizon);
  EXPECT_EQ(want.seed, got.seed);
  EXPECT_EQ(want.eps, got.eps);
  EXPECT_EQ(want.delta, got.delta);
  EXPECT_EQ(want.flags, got.flags);
}

TEST(Manifest, TruncatedTailIsDroppedAndHealed) {
  const std::string dir = FreshDir("torntail");
  {
    Result<ManifestJournal> opened = ManifestJournal::Open(dir);
    ASSERT_TRUE(opened.ok());
    ManifestJournal journal = std::move(opened).value();
    ASSERT_TRUE(journal.AppendRegister(TestRecord("keep1", 1)).ok());
    ASSERT_TRUE(journal.AppendRegister(TestRecord("keep2", 2)).ok());
    ASSERT_TRUE(journal.AppendRegister(TestRecord("torn", 3)).ok());
  }
  // Cut into the last record: the classic crash-mid-append shape.
  const std::string path = dir + "/MANIFEST";
  const int64_t size = FileSize(path);
  ASSERT_GT(size, 8);
  ASSERT_EQ(0, ::truncate(path.c_str(), size - 5));

  Result<ManifestJournal> reopened = ManifestJournal::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ManifestJournal journal = std::move(reopened).value();
  EXPECT_EQ(2u, journal.live().size());
  EXPECT_EQ(1u, journal.live().count("keep1"));
  EXPECT_EQ(1u, journal.live().count("keep2"));
  EXPECT_EQ(0u, journal.live().count("torn"));
  EXPECT_GT(journal.dropped_tail_bytes(), 0);
  // The torn bytes were compacted away; appending works and a third open
  // sees a clean file with all three records.
  ASSERT_TRUE(journal.AppendRegister(TestRecord("torn", 3)).ok());
  Result<ManifestJournal> third = ManifestJournal::Open(dir);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(3u, third.value().live().size());
  EXPECT_EQ(0, third.value().dropped_tail_bytes());
}

TEST(Manifest, CompactionKeepsOnlyLiveRecords) {
  const std::string dir = FreshDir("compact");
  {
    Result<ManifestJournal> opened = ManifestJournal::Open(dir);
    ASSERT_TRUE(opened.ok());
    ManifestJournal journal = std::move(opened).value();
    ASSERT_TRUE(journal.AppendRegister(TestRecord("a", 1)).ok());
    ASSERT_TRUE(journal.AppendRegister(TestRecord("b", 2)).ok());
    ASSERT_TRUE(journal.AppendRegister(TestRecord("c", 3)).ok());
    ASSERT_TRUE(journal.AppendUnregister("b").ok());
    EXPECT_EQ(2u, journal.live().size());
    const int64_t before = FileSize(dir + "/MANIFEST");
    ASSERT_TRUE(journal.Compact().ok());
    EXPECT_LT(FileSize(dir + "/MANIFEST"), before);
    EXPECT_FALSE(FileExists(dir + "/MANIFEST.tmp"));
  }
  Result<ManifestJournal> reopened = ManifestJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(2, reopened.value().replayed_records());
  EXPECT_EQ(2u, reopened.value().live().size());
  EXPECT_EQ(1u, reopened.value().live().count("a"));
  EXPECT_EQ(1u, reopened.value().live().count("c"));
}

TEST(Manifest, UnregisterForUnknownNameIsHarmlessTombstone) {
  const std::string dir = FreshDir("tombstone");
  Result<ManifestJournal> opened = ManifestJournal::Open(dir);
  ASSERT_TRUE(opened.ok());
  ManifestJournal journal = std::move(opened).value();
  ASSERT_TRUE(journal.AppendUnregister("ghost").ok());
  EXPECT_EQ(0u, journal.live().size());
}

// ---------------------------------------------------------------------------
// Registry durability
// ---------------------------------------------------------------------------

TEST(Recovery, RecoverNeedsSpillDirAndEmptyRegistry) {
  SessionRegistry no_dir((RegistryOptions()));
  EXPECT_EQ(StatusCode::kFailedPrecondition, no_dir.Recover().code());

  RegistryOptions options;
  options.spill_dir = FreshDir("precond");
  SessionRegistry populated(options);
  ASSERT_TRUE(populated
                  .Register("s", TestNfaText(TestSeed(1301), 5), 4,
                            TestSeed(1302), 0.3, 0.2)
                  .ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, populated.Recover().code());
}

TEST(Recovery, SweepsOrphanedTmpFilesAtConstruction) {
  const std::string dir = FreshDir("tmpsweep");
  {
    std::FILE* f = std::fopen((dir + "/ghost.ckpt.tmp").c_str(), "wb");
    ASSERT_NE(nullptr, f);
    std::fputs("half a checkpoint", f);
    std::fclose(f);
    f = std::fopen((dir + "/other.ckpt.tmp").c_str(), "wb");
    ASSERT_NE(nullptr, f);
    std::fclose(f);
    f = std::fopen((dir + "/keep.ckpt").c_str(), "wb");
    ASSERT_NE(nullptr, f);
    std::fclose(f);
  }
  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry registry(options);
  EXPECT_EQ(2, registry.tmp_swept());
  EXPECT_FALSE(FileExists(dir + "/ghost.ckpt.tmp"));
  EXPECT_FALSE(FileExists(dir + "/other.ckpt.tmp"));
  EXPECT_TRUE(FileExists(dir + "/keep.ckpt"));
}

// The centerpiece: a crash between operations loses nothing that was
// durable. Counts after Recover() are bit-identical to an uninterrupted
// run, and the draw stream continues exactly where the last checkpoint put
// its cursor.
TEST(Recovery, RecoverAfterCrashIsBitIdentical) {
  const int kHorizon = 8;
  const std::string text = TestNfaText(TestSeed(1311), 6);
  const uint64_t seed = TestSeed(1312);
  const std::string dir = FreshDir("bitident");

  // Uninterrupted reference: same tuple, no crash, 5 + 5 draws.
  SessionRegistry reference((RegistryOptions()));
  ASSERT_TRUE(reference.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
  std::vector<double> want_counts(static_cast<size_t>(kHorizon) + 1);
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> want = reference.CountAtLength("s", length);
    ASSERT_TRUE(want.ok());
    want_counts[static_cast<size_t>(length)] = *want;
  }
  Result<std::vector<Word>> first5 = reference.SampleWords("s", kHorizon, 5);
  Result<std::vector<Word>> second5 = reference.SampleWords("s", kHorizon, 5);
  ASSERT_TRUE(first5.ok());
  ASSERT_TRUE(second5.ok());

  {  // The doomed daemon: register, query, draw 5, checkpoint, "crash".
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry doomed(options);
    ASSERT_TRUE(doomed.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
    Result<double> got = doomed.CountAtLength("s", kHorizon);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want_counts[static_cast<size_t>(kHorizon)], got.value());
    Result<std::vector<Word>> got5 = doomed.SampleWords("s", kHorizon, 5);
    ASSERT_TRUE(got5.ok());
    EXPECT_EQ(first5.value(), got5.value());
    ASSERT_TRUE(doomed.Evict("s").ok());  // durable: ckpt carries cursor 5
  }  // no SaveAll, no farewell — the disk now looks exactly post-SIGKILL

  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(1, revived.sessions_recovered());
  for (int length = 0; length <= kHorizon; ++length) {
    Result<double> got = revived.CountAtLength("s", length);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want_counts[static_cast<size_t>(length)], got.value())
        << "length " << length;
  }
  if (!failpoint::EnvScheduleActive()) {
    // The checkpoint carried the draw cursor: the next 5 draws are the
    // reference's draws 5..9. (A chaos schedule that forces the recompute
    // path legitimately resets the cursor, hence the guard.)
    Result<std::vector<Word>> got5 = revived.SampleWords("s", kHorizon, 5);
    ASSERT_TRUE(got5.ok());
    EXPECT_EQ(second5.value(), got5.value());
    EXPECT_EQ(0, revived.checkpoints_quarantined());
  }
}

// Deleting the checkpoint behind a recovered registry's back must cost a
// recompute, never the session: counts stay bit-identical (the tuple is a
// complete recipe) and the draw stream restarts at the cursor the lost
// checkpoint would have carried from birth — zero.
TEST(Recovery, RecomputesBitIdenticalWhenCheckpointDeleted) {
  const int kHorizon = 7;
  const std::string text = TestNfaText(TestSeed(1321), 6);
  const uint64_t seed = TestSeed(1322);
  const std::string dir = FreshDir("recompute");

  SessionRegistry reference((RegistryOptions()));
  ASSERT_TRUE(reference.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
  Result<double> want = reference.CountAtLength("s", kHorizon);
  Result<std::vector<Word>> want5 = reference.SampleWords("s", kHorizon, 5);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(want5.ok());

  {
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry doomed(options);
    ASSERT_TRUE(doomed.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
    ASSERT_TRUE(doomed.CountAtLength("s", kHorizon).ok());
    ASSERT_TRUE(doomed.SampleWords("s", kHorizon, 3).ok());
    ASSERT_TRUE(doomed.Evict("s").ok());
  }
  ASSERT_EQ(0, std::remove((dir + "/s.ckpt").c_str()));

  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  Result<double> got = revived.CountAtLength("s", kHorizon);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(want.value(), got.value());
  EXPECT_GE(revived.recomputes(), 1);
  Result<std::vector<Word>> got5 = revived.SampleWords("s", kHorizon, 5);
  ASSERT_TRUE(got5.ok());
  EXPECT_EQ(want5.value(), got5.value());  // cursor restarted at 0
}

// A corrupt checkpoint found during Recover() is quarantined to
// <name>.ckpt.corrupt (kept for postmortems) and the session recomputes.
TEST(Recovery, QuarantinesCorruptCheckpointAndRecomputes) {
  const int kHorizon = 6;
  const std::string text = TestNfaText(TestSeed(1331), 6);
  const uint64_t seed = TestSeed(1332);
  const std::string dir = FreshDir("quarantine");

  SessionRegistry reference((RegistryOptions()));
  ASSERT_TRUE(reference.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
  Result<double> want = reference.CountAtLength("s", kHorizon);
  ASSERT_TRUE(want.ok());

  {
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry doomed(options);
    ASSERT_TRUE(doomed.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
    ASSERT_TRUE(doomed.CountAtLength("s", kHorizon).ok());
    ASSERT_TRUE(doomed.Evict("s").ok());
  }
  const std::string ckpt = dir + "/s.ckpt";
  const int64_t size = FileSize(ckpt);
  ASSERT_GT(size, 16);
  ASSERT_EQ(0, ::truncate(ckpt.c_str(), size / 2));

  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(1, revived.sessions_recovered());
  EXPECT_EQ(1, revived.checkpoints_quarantined());
  EXPECT_FALSE(FileExists(ckpt));
  EXPECT_TRUE(FileExists(ckpt + ".corrupt"));
  Result<double> got = revived.CountAtLength("s", kHorizon);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(want.value(), got.value());
  EXPECT_GE(revived.recomputes(), 1);
}

// Unregister must be durable (the tombstone survives a crash) and the name
// must be reusable — with the NEW tuple winning after recovery.
TEST(Recovery, ReRegisterAfterUnregisterSurvivesCrash) {
  const int kHorizon = 6;
  const std::string text = TestNfaText(TestSeed(1341), 5);
  const uint64_t old_seed = TestSeed(1342);
  const uint64_t new_seed = TestSeed(1343);
  const std::string dir = FreshDir("reregister");

  SessionRegistry reference((RegistryOptions()));
  ASSERT_TRUE(
      reference.Register("dup", text, kHorizon, new_seed, 0.3, 0.2).ok());
  Result<double> want = reference.CountAtLength("dup", kHorizon);
  ASSERT_TRUE(want.ok());

  {
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry doomed(options);
    ASSERT_TRUE(
        doomed.Register("dup", text, kHorizon, old_seed, 0.3, 0.2).ok());
    ASSERT_TRUE(doomed.CountAtLength("dup", kHorizon).ok());
    // Duplicate while live is still rejected.
    EXPECT_FALSE(
        doomed.Register("dup", text, kHorizon, new_seed, 0.3, 0.2).ok());
    ASSERT_TRUE(doomed.Unregister("dup").ok());
    EXPECT_EQ(StatusCode::kNotFound,
              doomed.CountAtLength("dup", kHorizon).status().code());
    ASSERT_TRUE(
        doomed.Register("dup", text, kHorizon, new_seed, 0.3, 0.2).ok());
  }

  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(1, revived.sessions_recovered());
  Result<double> got = revived.CountAtLength("dup", kHorizon);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(want.value(), got.value());  // the re-registration's tuple won
}

// A manifest append failure must fail the Register cleanly (nothing
// half-registered), and the journal must heal for the next append — even
// when the failure was a crash-like torn write.
TEST(Recovery, FailedManifestAppendFailsRegisterCleanly) {
  const std::string text = TestNfaText(TestSeed(1351), 5);
  const std::string dir = FreshDir("tornappend");
  {
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry registry(options);

    ASSERT_TRUE(failpoint::Set("manifest.append", "error:1").ok());
    EXPECT_FALSE(
        registry.Register("a", text, 5, TestSeed(1352), 0.3, 0.2).ok());
    EXPECT_EQ(StatusCode::kNotFound,
              registry.CountAtLength("a", 0).status().code());

    // Torn write: bytes really land on disk, then the append "crashes".
    ASSERT_TRUE(failpoint::Set("manifest.append", "short-write(7):1").ok());
    EXPECT_FALSE(
        registry.Register("b", text, 5, TestSeed(1353), 0.3, 0.2).ok());
    failpoint::ClearAll();
    EXPECT_GE(failpoint::Hits("manifest.append"), 2);

    // Both names are free and the healed journal accepts appends.
    ASSERT_TRUE(
        registry.Register("a", text, 5, TestSeed(1352), 0.3, 0.2).ok());
    ASSERT_TRUE(
        registry.Register("b", text, 5, TestSeed(1353), 0.3, 0.2).ok());
    EXPECT_TRUE(registry.CountAtLength("a", 5).ok());
  }
  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(2, revived.sessions_recovered());
  EXPECT_TRUE(revived.CountAtLength("a", 5).ok());
  EXPECT_TRUE(revived.CountAtLength("b", 5).ok());
}

// The in-process chaos scenario: "SIGKILL" mid-extension — the session had
// extended well past its last checkpoint and drawn samples when the process
// dies. Recovery restarts from the last durable state and every re-asked
// answer is bit-identical; the work since the checkpoint replays, it is not
// lost or corrupted. Also arms checkpoint.write to prove a failing
// checkpoint save can never poison the durable state it would replace.
TEST(Recovery, ChaosCrashMidExtensionRecoversBitIdentical) {
  const int kCheckpointLevel = 5;
  const int kHorizon = 8;
  const std::string text = TestNfaText(TestSeed(1361), 6);
  const uint64_t seed = TestSeed(1362);
  const std::string dir = FreshDir("chaos");

  SessionRegistry reference((RegistryOptions()));
  ASSERT_TRUE(reference.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
  Result<double> want_mid = reference.CountAtLength("s", kCheckpointLevel);
  Result<double> want_full = reference.CountAtLength("s", kHorizon);
  Result<std::vector<Word>> want5 = reference.SampleWords("s", kHorizon, 5);
  ASSERT_TRUE(want_mid.ok());
  ASSERT_TRUE(want_full.ok());
  ASSERT_TRUE(want5.ok());

  {
    RegistryOptions options;
    options.spill_dir = dir;
    SessionRegistry doomed(options);
    ASSERT_TRUE(doomed.Register("s", text, kHorizon, seed, 0.3, 0.2).ok());
    ASSERT_TRUE(doomed.CountAtLength("s", kCheckpointLevel).ok());
    ASSERT_TRUE(doomed.Evict("s").ok());  // durable state: level 5, cursor 0
    const int64_t ckpt_size = FileSize(dir + "/s.ckpt");

    // Back to work: extend past the checkpoint and draw — none of this
    // becomes durable before the "crash".
    Result<double> got_full = doomed.CountAtLength("s", kHorizon);
    ASSERT_TRUE(got_full.ok());
    EXPECT_EQ(want_full.value(), got_full.value());
    ASSERT_TRUE(doomed.SampleWords("s", kHorizon, 5).ok());

    // A checkpoint attempt that dies mid-write must leave the old durable
    // state byte-identical (tmp + rename: the real file is never touched).
    ASSERT_TRUE(failpoint::Set("checkpoint.write", "short-write(40):1").ok());
    EXPECT_FALSE(doomed.Evict("s").ok());
    failpoint::ClearAll();
    EXPECT_EQ(ckpt_size, FileSize(dir + "/s.ckpt"));
    EXPECT_TRUE(doomed.CountAtLength("s", kHorizon).ok());  // still resident
  }  // SIGKILL

  RegistryOptions options;
  options.spill_dir = dir;
  SessionRegistry revived(options);
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(1, revived.sessions_recovered());
  Result<double> got_mid = revived.CountAtLength("s", kCheckpointLevel);
  Result<double> got_full = revived.CountAtLength("s", kHorizon);
  ASSERT_TRUE(got_mid.ok());
  ASSERT_TRUE(got_full.ok());
  EXPECT_EQ(want_mid.value(), got_mid.value());
  EXPECT_EQ(want_full.value(), got_full.value());
  // The checkpoint predates every draw, so the stream replays from the
  // start — the same five words, whether the checkpoint revives or a chaos
  // schedule forces a recompute (both restart the cursor at 0).
  Result<std::vector<Word>> got5 = revived.SampleWords("s", kHorizon, 5);
  ASSERT_TRUE(got5.ok());
  EXPECT_EQ(want5.value(), got5.value());
}

// ---------------------------------------------------------------------------
// Daemon: drain, shedding, retry
// ---------------------------------------------------------------------------

TEST(Drain, StopFinishesInFlightRequestsAndSavesAll) {
  const int kHorizon = 8;
  const std::string text = TestNfaText(TestSeed(1371), 6);
  const std::string dir = FreshDir("drain");
  RegistryOptions registry_options;
  registry_options.spill_dir = dir;
  SessionRegistry registry(registry_options);
  ASSERT_TRUE(
      registry.Register("d", text, kHorizon, TestSeed(1372), 0.3, 0.2).ok());

  ServerOptions server_options;
  server_options.drain_timeout_ms = 10000;
  ServeDaemon daemon(&registry, server_options);
  ASSERT_TRUE(daemon.Start().ok());

  Result<ServeClient> connected = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(connected.ok());
  ServeClient client = std::move(connected).value();
  ASSERT_TRUE(client.Ping().ok());  // the connection is fully established

  Status in_flight_result = Status::Ok();
  std::thread requester([&client, &in_flight_result] {
    // Extension work: long enough that Stop() below lands mid-request on
    // any realistic scheduler; drain must still let it finish.
    in_flight_result = client.ExtendTo("d", 8).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon.Stop();
  requester.join();

  EXPECT_TRUE(in_flight_result.ok()) << in_flight_result.ToString();
  // SaveAll ran: the session is durable on disk and no longer resident.
  EXPECT_TRUE(FileExists(dir + "/d.ckpt"));
  EXPECT_EQ(0, registry.resident_bytes());
  // A drain ran and was recorded.
  const std::string stats = daemon.StatsJson();
  EXPECT_NE(std::string::npos, stats.find("\"drain_duration_ms\""));
  EXPECT_NE(std::string::npos, stats.find("\"drained_clean\":true"));
}

TEST(Drain, WaitUntilStopRequestedForIsABoundedPoll) {
  SessionRegistry registry((RegistryOptions()));
  ServeDaemon daemon(&registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_FALSE(daemon.WaitUntilStopRequestedFor(10));
  daemon.RequestStop();
  EXPECT_TRUE(daemon.WaitUntilStopRequestedFor(1000));
  daemon.Stop();
}

TEST(Shedding, OverCapConnectionsGetUnavailableAndRetryConverges) {
  SessionRegistry registry((RegistryOptions()));
  ServerOptions server_options;
  server_options.max_connections = 1;
  // Connect-time shedding is the legacy runtime's behavior; the reactor
  // parks the listener instead (covered in test_serve_pipeline.cpp).
  server_options.legacy_threads = true;
  ServeDaemon daemon(&registry, server_options);
  ASSERT_TRUE(daemon.Start().ok());

  // Occupy the only slot.
  Result<ServeClient> first = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().Ping().ok());

  // The next connection is accepted, told Unavailable, and closed.
  Result<ServeClient> shed = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(shed.ok());  // TCP connect succeeds — shedding is a reply
  Status probe = shed.value().Ping();
  EXPECT_FALSE(probe.ok());
  EXPECT_TRUE(probe.code() == StatusCode::kUnavailable ||
              probe.code() == StatusCode::kDataLoss)
      << probe.ToString();

  // Bounded retry against a saturated daemon exhausts and reports.
  RetryPolicy short_policy;
  short_policy.max_attempts = 2;
  short_policy.base_delay_ms = 1;
  short_policy.max_delay_ms = 4;
  Result<ServeClient> exhausted =
      ServeClient::ConnectWithRetry(daemon.port(), short_policy);
  EXPECT_FALSE(exhausted.ok());

  const std::string stats = daemon.StatsJson();
  EXPECT_NE(std::string::npos, stats.find("\"connections_shed\""));

  // Free the slot mid-retry: a patient client converges.
  RetryPolicy patient;
  patient.max_attempts = 40;
  patient.base_delay_ms = 2;
  patient.max_delay_ms = 50;
  patient.seed = TestSeed(1381);
  std::thread releaser([&first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ServeClient discard = std::move(first).value();  // closes the socket
  });
  Result<ServeClient> eventually =
      ServeClient::ConnectWithRetry(daemon.port(), patient);
  releaser.join();
  ASSERT_TRUE(eventually.ok()) << eventually.status().ToString();
  EXPECT_TRUE(eventually.value().Ping().ok());
  daemon.Stop();
}

// End-to-end daemon restart: everything a client registered through one
// daemon is there — bit-identical — after a crash-restart onto the same
// spill directory, including over the wire.
TEST(Recovery, DaemonRestartServesRecoveredSessions) {
  const int kHorizon = 7;
  const std::string text = TestNfaText(TestSeed(1391), 6);
  const std::string dir = FreshDir("daemonrestart");

  double want = 0.0;
  {
    RegistryOptions registry_options;
    registry_options.spill_dir = dir;
    SessionRegistry registry(registry_options);
    ServeDaemon daemon(&registry, ServerOptions());
    ASSERT_TRUE(daemon.Start().ok());
    Result<ServeClient> client = ServeClient::Connect(daemon.port());
    ASSERT_TRUE(client.ok());
    serve::RegisterRequest req;
    req.name = "r";
    req.nfa_text = text;
    req.horizon = kHorizon;
    req.seed = TestSeed(1392);
    ASSERT_TRUE(client->Register(req).ok());
    Result<double> got = client->CountAtLength("r", kHorizon);
    ASSERT_TRUE(got.ok());
    want = got.value();
    ASSERT_TRUE(client->Evict("r").ok());
    daemon.RequestStop();  // hard stop — no drain, no SaveAll: a "crash"
    daemon.Stop();
  }

  RegistryOptions registry_options;
  registry_options.spill_dir = dir;
  SessionRegistry registry(registry_options);
  ASSERT_TRUE(registry.Recover().ok());
  ServeDaemon daemon(&registry, ServerOptions());
  ASSERT_TRUE(daemon.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(daemon.port());
  ASSERT_TRUE(client.ok());
  Result<double> got = client->CountAtLength("r", kHorizon);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(want, got.value());
  // Unregister over the wire is durable too.
  ASSERT_TRUE(client->Unregister("r").ok());
  EXPECT_EQ(StatusCode::kNotFound,
            client->CountAtLength("r", kHorizon).status().code());
  EXPECT_FALSE(FileExists(dir + "/r.ckpt"));
  daemon.Stop();
}

}  // namespace
}  // namespace nfacount
