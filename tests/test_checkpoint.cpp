// Binary session checkpoints: save→load→extend must be bit-identical to an
// uninterrupted run at the same (seed, knob) point — across every
// num_threads × batch_width × simd × csr_hot_path combination — and every
// defective file (truncated, corrupted, wrong magic/version/endianness) must
// be rejected with a precise Status, never loaded partially. A committed
// golden file pins the on-disk format against accidental layout changes.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "test_tables.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

#ifndef NFACOUNT_TEST_DATA_DIR
#define NFACOUNT_TEST_DATA_DIR "tests/data"
#endif

namespace nfacount {
namespace {

using testing_support::ExpectTablesIdentical;
using testing_support::SessionTestOptions;
using testing_support::TestSeed;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, RoundTripRestoresFullState) {
  // Property: save → load reproduces every structural field, every table
  // cell, and the draw-cursor position (so draw streams continue in step).
  Rng rng(TestSeed(901));
  for (int trial = 0; trial < 3; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    const int horizon = 7;
    const int computed = 4;
    Result<EngineSession> original =
        EngineSession::Create(nfa, horizon, SessionTestOptions(TestSeed(902) + trial));
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(original->ExtendTo(computed).ok());
    // Advance the draw cursor before saving: resume must continue it.
    Result<std::vector<Word>> pre = original->SampleWords(computed, 3);
    ASSERT_TRUE(pre.ok());

    const std::string path = TempPath("roundtrip.ckpt");
    ASSERT_TRUE(original->Save(path).ok());
    Result<EngineSession> loaded = EngineSession::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    EXPECT_EQ(loaded->horizon(), horizon);
    EXPECT_EQ(loaded->computed_level(), computed);
    EXPECT_EQ(loaded->seed(), original->seed());
    EXPECT_EQ(loaded->params().ns, original->params().ns);
    EXPECT_EQ(loaded->params().xns, original->params().xns);
    EXPECT_EQ(loaded->params().beta, original->params().beta);
    EXPECT_EQ(loaded->params().eta, original->params().eta);
    EXPECT_EQ(loaded->nfa().num_states(), nfa.num_states());
    ExpectTablesIdentical(original->engine(), loaded->engine(), nfa,
                          computed);

    // Draw-stream continuity: the next draws agree between the session that
    // never stopped and the one that went through disk.
    Result<std::vector<Word>> a = original->SampleWords(computed, 4);
    Result<std::vector<Word>> b = loaded->SampleWords(computed, 4);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "trial=" << trial;
  }
}

TEST(Checkpoint, SaveLoadExtendBitIdenticalToFreshAcrossKnobGrid) {
  // The acceptance matrix: a session saved at n/2 and resumed under every
  // (threads, batch, simd, csr) combination, then extended to n, must equal
  // a fresh uninterrupted run — estimates, tables, and draws.
  Rng rng(TestSeed(911));
  Nfa nfa = RandomNfa(6, 0.3, 0.35, rng);
  const int n = 8;
  const int half = 4;
  CountOptions opts = SessionTestOptions(TestSeed(912));

  Result<EngineSession> fresh = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->ExtendTo(n).ok());
  Result<std::vector<Word>> fresh_words = fresh->SampleWords(n, 6);
  Result<std::vector<Word>> fresh_words2 = fresh->SampleWords(n, 4);
  ASSERT_TRUE(fresh_words.ok() && fresh_words2.ok());

  Result<EngineSession> half_way = EngineSession::Create(nfa, n, opts);
  ASSERT_TRUE(half_way.ok());
  ASSERT_TRUE(half_way->ExtendTo(half).ok());
  const std::string path = TempPath("grid.ckpt");
  ASSERT_TRUE(half_way->Save(path).ok());

  const int threads_grid[] = {1, 4};
  const int batch_grid[] = {1, 32};
  const bool simd_grid[] = {true, false};
  const bool csr_grid[] = {true, false};
  for (int threads : threads_grid) {
    for (int batch : batch_grid) {
      for (bool simd : simd_grid) {
        for (bool csr : csr_grid) {
          SessionKnobs knobs;
          knobs.num_threads = threads;
          knobs.batch_width = batch;
          knobs.simd_kernels = simd;
          knobs.csr_hot_path = csr;
          Result<EngineSession> resumed = EngineSession::Load(path, &knobs);
          ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
          ASSERT_TRUE(resumed->ExtendTo(n).ok());
          SCOPED_TRACE(::testing::Message()
                       << "threads=" << threads << " batch=" << batch
                       << " simd=" << simd << " csr=" << csr);
          for (int level = 0; level <= n; ++level) {
            Result<double> a = fresh->CountAtLength(level);
            Result<double> b = resumed->CountAtLength(level);
            ASSERT_TRUE(a.ok() && b.ok());
            EXPECT_EQ(*a, *b) << "level=" << level;
          }
          ExpectTablesIdentical(fresh->engine(), resumed->engine(), nfa, n);
          // The draw stream must track the fresh session's across repeated
          // calls — the cursor advances exactly, never batch-rounded.
          Result<std::vector<Word>> words = resumed->SampleWords(n, 6);
          Result<std::vector<Word>> words2 = resumed->SampleWords(n, 4);
          ASSERT_TRUE(words.ok() && words2.ok());
          EXPECT_EQ(*fresh_words, *words);
          EXPECT_EQ(*fresh_words2, *words2);
        }
      }
    }
  }
}

TEST(Checkpoint, InMemorySerializationMatchesFile) {
  Rng rng(TestSeed(921));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(922)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(3).ok());

  const std::string bytes = SerializeSessionCheckpoint(*session);
  const std::string path = TempPath("inmem.ckpt");
  ASSERT_TRUE(session->Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string file_bytes(bytes.size() + 64, '\0');
  const size_t got = std::fread(&file_bytes[0], 1, file_bytes.size(), f);
  std::fclose(f);
  file_bytes.resize(got);
  EXPECT_EQ(bytes, file_bytes);

  Result<EngineSession> loaded = DeserializeSessionCheckpoint(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->computed_level(), 3);
}

TEST(Checkpoint, TruncationIsDataLoss) {
  Rng rng(TestSeed(931));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(932)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(3).ok());
  const std::string bytes = SerializeSessionCheckpoint(*session);

  // Every proper prefix must be rejected as data loss (a handful of cut
  // points covers the preamble, the header, the tables, and the checksum).
  for (size_t cut : {size_t{0}, size_t{5}, size_t{11}, size_t{40},
                     bytes.size() / 2, bytes.size() - 1}) {
    Result<EngineSession> r =
        DeserializeSessionCheckpoint(bytes.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(Checkpoint, BitCorruptionIsDetected) {
  Rng rng(TestSeed(941));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(942)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(3).ok());
  const std::string bytes = SerializeSessionCheckpoint(*session);

  // Flip one bit at a spread of positions past the preamble: the checksum
  // must catch every one (the preamble fields have their own diagnostics,
  // tested below).
  Rng flip_rng(TestSeed(943));
  for (int i = 0; i < 24; ++i) {
    const size_t pos =
        12 + static_cast<size_t>(
                 flip_rng.UniformU64(static_cast<uint64_t>(bytes.size() - 12)));
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (i % 8)));
    Result<EngineSession> r = DeserializeSessionCheckpoint(corrupt);
    ASSERT_FALSE(r.ok()) << "pos=" << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "pos=" << pos;
  }
}

TEST(Checkpoint, PreambleDefectsGetPreciseDiagnostics) {
  Rng rng(TestSeed(951));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(952)));
  ASSERT_TRUE(session.ok());
  const std::string bytes = SerializeSessionCheckpoint(*session);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  Result<EngineSession> r1 = DeserializeSessionCheckpoint(bad_magic);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("magic"), std::string::npos);

  std::string bad_version = bytes;
  bad_version[4] = 99;  // version precedes the checksum check by design
  Result<EngineSession> r2 = DeserializeSessionCheckpoint(bad_version);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r2.status().message().find("version"), std::string::npos);

  // The canonical marker 0x01020304 serializes little-endian as the byte
  // run 04 03 02 01; a writer emitting native big-endian order would
  // produce the reverse, which the loader must name precisely.
  std::string bad_endian = bytes;
  bad_endian[8] = 0x01;
  bad_endian[9] = 0x02;
  bad_endian[10] = 0x03;
  bad_endian[11] = 0x04;
  Result<EngineSession> r3 = DeserializeSessionCheckpoint(bad_endian);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r3.status().message().find("endian"), std::string::npos);
}

TEST(Checkpoint, MissingFileIsNotFound) {
  Result<EngineSession> r =
      EngineSession::Load(TempPath("no_such_file.ckpt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Checkpoint, GoldenFileReadsBackAndExtends) {
  // The committed fixture pins format version 1: header geometry, parameter
  // block layout, level-table packing. Regenerate it with
  //   example_nfa_cli count tests/data/golden.nfa 4 0.3 0.2 12345
  //       --horizon 6 --save-state tests/data/golden_session.ckpt
  // (one line) and update the constants below ONLY on a deliberate format
  // bump.
  const std::string path =
      std::string(NFACOUNT_TEST_DATA_DIR) + "/golden_session.ckpt";
  Result<EngineSession> golden = EngineSession::Load(path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_EQ(golden->nfa().num_states(), 4);
  EXPECT_EQ(golden->horizon(), 6);
  EXPECT_EQ(golden->computed_level(), 4);
  EXPECT_EQ(golden->seed(), 12345u);
  EXPECT_EQ(golden->params().eps, 0.3);
  EXPECT_EQ(golden->params().delta, 0.2);

  // The stored tables must answer exactly what the writer recorded (the
  // value is data read back, not recomputed, so the comparison is exact).
  Result<double> at4 = golden->CountAtLength(4);
  ASSERT_TRUE(at4.ok());
  // golden.nfa guesses a '1' three positions before the end: |L_4| = 2³ = 8.
  EXPECT_NEAR(*at4 / 8.0, 1.0, 0.35);

  // And the session must remain a live, extensible run.
  ASSERT_TRUE(golden->ExtendTo(6).ok());
  Result<double> at6 = golden->CountAtLength(6);
  ASSERT_TRUE(at6.ok());
  EXPECT_GT(*at6, 0.0);
  Result<std::vector<Word>> words = golden->SampleWords(6, 3);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), 3u);
}

// ---------------------------------------------------------------------------
// Crash safety (ISSUE 6 satellite): a failed or interrupted save must never
// corrupt or remove a pre-existing checkpoint.
// ---------------------------------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return std::string();
  std::string bytes;
  char buf[1 << 14];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

/// RAII arming of the checkpoint.write failpoint's short-write action.
struct WriteLimitGuard {
  explicit WriteLimitGuard(int64_t limit) {
    EXPECT_TRUE(failpoint::Set("checkpoint.write",
                               "short-write(" + std::to_string(limit) + ")")
                    .ok());
  }
  ~WriteLimitGuard() { failpoint::Clear("checkpoint.write"); }
};

TEST(CheckpointCrashSafety, FailedSaveLeavesExistingCheckpointIntact) {
  // A good checkpoint exists; a later save dies mid-write (simulated as a
  // short write via the injection hook — what a crash, kill, or full disk
  // looks like to the writer). The original file must survive byte-for-byte
  // and still load; the temp file must be cleaned up.
  Rng rng(TestSeed(951));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 7, SessionTestOptions(TestSeed(952)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(3).ok());

  const std::string path = TempPath("crash_safe.ckpt");
  std::remove(path.c_str());
  ASSERT_TRUE(session->Save(path).ok());
  const std::string good_bytes = ReadFileBytes(path);
  ASSERT_FALSE(good_bytes.empty());

  // Advance the session so the failed save would have written new content.
  ASSERT_TRUE(session->ExtendTo(6).ok());
  {
    WriteLimitGuard limit(16);  // die 16 bytes into the temp file
    Status failed = session->Save(path);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kDataLoss)
        << failed.ToString();
  }

  EXPECT_EQ(ReadFileBytes(path), good_bytes);  // old checkpoint untouched
  EXPECT_FALSE(FileExists(path + ".tmp"));     // partial temp cleaned up
  Result<EngineSession> reloaded = EngineSession::Load(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->computed_level(), 3);

  // After the failure the same session saves fine, atomically replacing the
  // old file, and the reloaded state reflects the new computed level.
  ASSERT_TRUE(session->Save(path).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  Result<EngineSession> extended = EngineSession::Load(path);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->computed_level(), 6);
  std::remove(path.c_str());
}

TEST(CheckpointCrashSafety, UnwritableTempPathFailsWithoutTouchingCheckpoint) {
  // Block the <path>.tmp slot with a directory so the temp file cannot even
  // be opened: the save must fail cleanly and the existing checkpoint must
  // not be modified or removed (the CI session-identity job runs the same
  // scenario through the CLI).
  Rng rng(TestSeed(961));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(962)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(2).ok());

  const std::string path = TempPath("blocked_tmp.ckpt");
  std::remove(path.c_str());
  ASSERT_TRUE(session->Save(path).ok());
  const std::string good_bytes = ReadFileBytes(path);

#ifndef _WIN32
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp.c_str(), 0755), 0);
  Status failed = session->Save(path);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument) << failed.ToString();
  EXPECT_EQ(ReadFileBytes(path), good_bytes);
  Result<EngineSession> reloaded = EngineSession::Load(path);
  EXPECT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);
#endif
  std::remove(path.c_str());
}

TEST(CheckpointCrashSafety, StaleTempFromKilledWriterIsReplacedBySave) {
  // A writer killed between fwrite and rename leaves <path>.tmp behind. A
  // later save must simply overwrite it and complete; the stale partial
  // bytes must never end up at the destination.
  Rng rng(TestSeed(971));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<EngineSession> session =
      EngineSession::Create(nfa, 5, SessionTestOptions(TestSeed(972)));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ExtendTo(4).ok());

  const std::string path = TempPath("stale_tmp.ckpt");
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NFCK garbage from a killed writer", f);
    std::fclose(f);
  }
  ASSERT_TRUE(session->Save(path).ok());
  EXPECT_FALSE(FileExists(tmp));
  Result<EngineSession> loaded = EngineSession::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->computed_level(), 4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfacount
