// Tests for the forward-bisimulation quotient: language preservation on
// random automata, exact count preservation per length, redundancy collapse
// on the structured instances the reductions produce, and idempotence.

#include <gtest/gtest.h>

#include "apps/dnf.hpp"
#include "automata/generators.hpp"
#include "automata/reduce.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(Reduce, PreservesLanguageOnRandomNfas) {
  Rng rng(TestSeed(1));
  for (int trial = 0; trial < 12; ++trial) {
    Nfa nfa = RandomNfa(7, 0.3, 0.3, rng);
    ReductionResult red = BisimulationQuotient(nfa);
    EXPECT_LE(red.reduced_states, nfa.num_states());
    Result<bool> eq = LanguageEquivalent(nfa, red.nfa);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value()) << "trial=" << trial;
  }
}

TEST(Reduce, PreservesCountsPerLength) {
  Rng rng(TestSeed(2));
  for (int trial = 0; trial < 8; ++trial) {
    Nfa nfa = RandomNfa(6, 0.25, 0.3, rng);
    ReductionResult red = BisimulationQuotient(nfa);
    for (int n = 0; n <= 8; ++n) {
      EXPECT_EQ(BruteForceCount(nfa, n).value(),
                BruteForceCount(red.nfa, n).value())
          << "trial=" << trial << " n=" << n;
    }
  }
}

TEST(Reduce, CollapsesDuplicatedStates) {
  // Two parallel identical chains from the start must merge completely.
  Nfa nfa(2);
  StateId start = nfa.AddState();
  nfa.SetInitial(start);
  for (int copy = 0; copy < 2; ++copy) {
    StateId prev = start;
    for (int i = 0; i < 4; ++i) {
      StateId next = nfa.AddState();
      nfa.AddTransition(prev, Symbol{1}, next);
      prev = next;
    }
    nfa.AddAccepting(prev);
  }
  ReductionResult red = BisimulationQuotient(nfa);
  EXPECT_EQ(red.reduced_states, 5);  // one chain's worth
  EXPECT_TRUE(LanguageEquivalent(nfa, red.nfa).value());
}

TEST(Reduce, ShrinksDnfEncodingsSubstantially) {
  // Clause chains share free-tail structure: the quotient must merge them.
  Dnf dnf(10);
  for (int c = 0; c < 6; ++c) {
    ASSERT_TRUE(dnf.AddClause({{c}, {}}).ok());
  }
  Result<Nfa> nfa = DnfToNfa(dnf);
  ASSERT_TRUE(nfa.ok());
  ASSERT_EQ(nfa->num_states(), 61);  // 1 + 6 clauses × 10 vars
  ReductionResult red = ReduceNfa(*nfa);
  EXPECT_LT(red.reduced_states, 31);  // > 2x reduction from suffix sharing
  for (int n = 0; n <= 10; ++n) {
    EXPECT_EQ(BruteForceCount(*nfa, n).value(),
              BruteForceCount(red.nfa, n).value());
  }
}

TEST(Reduce, QuotientIsIdempotent) {
  Rng rng(TestSeed(3));
  Nfa nfa = RandomNfa(8, 0.3, 0.3, rng);
  ReductionResult once = BisimulationQuotient(nfa);
  ReductionResult twice = BisimulationQuotient(once.nfa);
  EXPECT_EQ(once.reduced_states, twice.reduced_states);
}

TEST(Reduce, StateClassMapIsConsistent) {
  Rng rng(TestSeed(4));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  ReductionResult red = BisimulationQuotient(nfa);
  ASSERT_EQ(red.state_class.size(), static_cast<size_t>(nfa.num_states()));
  // The initial state's class is the quotient initial.
  EXPECT_EQ(red.state_class[nfa.initial()], red.nfa.initial());
  // Accepting states map to accepting classes and vice versa.
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    if (nfa.IsAccepting(q)) {
      EXPECT_TRUE(red.nfa.IsAccepting(red.state_class[q]));
    }
  }
}

TEST(Reduce, SingleStateAutomaton) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddAccepting(q);
  nfa.AddTransition(q, 0, q);
  ReductionResult red = BisimulationQuotient(nfa);
  EXPECT_EQ(red.reduced_states, 1);
  EXPECT_TRUE(red.nfa.Accepts(Word{0, 0}));
  EXPECT_FALSE(red.nfa.Accepts(Word{1}));
}

TEST(Reduce, DeterministicInputMatchesDfaMinimizationSize) {
  // On a DFA, bisimulation coincides with Myhill-Nerode refinement of the
  // reachable part, so the quotient size equals the minimized DFA size.
  Nfa parity = ParityNfa(4);
  ReductionResult red = ReduceNfa(parity);
  Result<Dfa> dfa = Determinize(parity);
  ASSERT_TRUE(dfa.ok());
  EXPECT_EQ(red.reduced_states, Minimize(*dfa).num_states());
}

}  // namespace
}  // namespace nfacount
