// Cross-module integration: the full FPRAS pipeline against exact counts on
// the standard families, plus end-to-end determinism and multi-final-state
// handling.

#include <gtest/gtest.h>

#include <cmath>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/stats.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

CountOptions TestOptions(uint64_t seed) {
  CountOptions options;
  options.eps = 0.35;
  options.delta = 0.2;
  options.calibration = Calibration::Practical();
  options.seed = TestSeed(seed);
  return options;
}

TEST(Integration, FprasMatchesExactOnStandardFamilies) {
  const int n = 8;
  for (const FamilyInstance& family : StandardFamilies(5, n, /*seed=*/TestSeed(11))) {
    SCOPED_TRACE(family.name);
    Result<BigUint> exact = ExactCountViaDfa(family.nfa, n);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    Result<CountEstimate> approx = ApproxCount(family.nfa, n, TestOptions(101));
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();

    const double truth = exact->ToDouble();
    if (truth == 0.0) {
      EXPECT_EQ(approx->estimate, 0.0);
    } else {
      // Generous envelope: 2x the requested eps, to keep flake rate ~0 while
      // still catching real estimator bugs (systematic bias shows up far
      // beyond this).
      EXPECT_NEAR(approx->estimate / truth, 1.0, 2 * 0.35)
          << "estimate=" << approx->estimate << " truth=" << truth;
    }
  }
}

TEST(Integration, DeterministicUnderFixedSeed) {
  Rng rng(TestSeed(3));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  Result<CountEstimate> a = ApproxCount(nfa, 7, TestOptions(555));
  Result<CountEstimate> b = ApproxCount(nfa, 7, TestOptions(555));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
}

TEST(Integration, DifferentSeedsGiveDifferentButCloseEstimates) {
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  Result<BigUint> exact = ExactCountViaDfa(nfa, 10);
  ASSERT_TRUE(exact.ok());
  const double truth = exact->ToDouble();
  double est1 = ApproxCount(nfa, 10, TestOptions(1))->estimate;
  double est2 = ApproxCount(nfa, 10, TestOptions(2))->estimate;
  EXPECT_NE(est1, est2);  // genuinely randomized
  EXPECT_NEAR(est1 / truth, 1.0, 0.7);
  EXPECT_NEAR(est2 / truth, 1.0, 0.7);
}

TEST(Integration, MultiFinalStateUnionHandling) {
  // L = words ending in 1 (state f1) OR words ending in 0 (state f2):
  // the union is everything, 2^n words; per-state sums would double-count
  // words... here the two languages are disjoint, so also check an
  // overlapping variant below.
  Nfa nfa(2);
  StateId s = nfa.AddState();
  StateId f1 = nfa.AddState();
  StateId f2 = nfa.AddState();
  nfa.SetInitial(s);
  nfa.AddAccepting(f1);
  nfa.AddAccepting(f2);
  for (StateId q : {s, f1, f2}) {
    nfa.AddTransition(q, Symbol{1}, f1);
    nfa.AddTransition(q, Symbol{0}, f2);
  }
  const int n = 9;
  Result<CountEstimate> approx = ApproxCount(nfa, n, TestOptions(77));
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / std::pow(2.0, n), 1.0, 0.7);
}

TEST(Integration, MultiFinalOverlappingLanguages) {
  // f1: contains "11"; f2: contains "1" (superset!) — heavy union overlap.
  Nfa a = SubstringNfa(Word{1, 1});
  Nfa b = SubstringNfa(Word{1});
  Nfa u = Union(a, b);
  const int n = 8;
  Result<BigUint> exact = ExactCountViaDfa(u, n);
  ASSERT_TRUE(exact.ok());
  Result<CountEstimate> approx = ApproxCount(u, n, TestOptions(88));
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / exact->ToDouble(), 1.0, 0.7);
}

TEST(Integration, EmptyLanguageGivesZero) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  StateId dead = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddAccepting(dead);  // unreachable accepting state
  nfa.AddTransition(q, Symbol{0}, q);
  nfa.AddTransition(q, Symbol{1}, q);
  Result<CountEstimate> approx = ApproxCount(nfa, 6, TestOptions(5));
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->estimate, 0.0);
}

TEST(Integration, LengthZero) {
  Nfa accepting(2);
  StateId q = accepting.AddState();
  accepting.SetInitial(q);
  accepting.AddAccepting(q);
  accepting.AddTransition(q, Symbol{0}, q);
  EXPECT_EQ(ApproxCount(accepting, 0, TestOptions(1))->estimate, 1.0);

  Nfa rejecting(2);
  StateId a = rejecting.AddState();
  StateId b = rejecting.AddState();
  rejecting.SetInitial(a);
  rejecting.AddAccepting(b);
  rejecting.AddTransition(a, Symbol{0}, b);
  EXPECT_EQ(ApproxCount(rejecting, 0, TestOptions(1))->estimate, 0.0);
}

TEST(Integration, SingletonLanguage) {
  // Exactly one accepted word: estimate should be very close to 1.
  Word needle{1, 0, 1, 1, 0, 0, 1};
  Nfa nfa = SparseNeedle(needle);
  Result<CountEstimate> approx =
      ApproxCount(nfa, static_cast<int>(needle.size()), TestOptions(9));
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate, 1.0, 0.5);
}

}  // namespace
}  // namespace nfacount
