// Shared gtest main linked into every nfacount test binary (instead of
// gtest_main) so all suites report the active base seed and understand the
// `--smoke` alias.
//
//   --smoke   expands to --gtest_filter=-*/* : skips every value-parameterized
//             sweep instance (names contain '/'), leaving the fast
//             deterministic core of each binary. Handy for a sub-second
//             sanity pass: ./build/tests/test_fpras --smoke
//             (A binary whose tests are all parameterized sweeps — e.g.
//             test_properties — runs 0 tests under --smoke and exits 0.)
//
// NFACOUNT_TEST_SEED=<uint64> shifts every randomized call site's seed; see
// tests/test_seed.hpp.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "test_seed.hpp"

int main(int argc, char** argv) {
  static char smoke_filter[] = "--gtest_filter=-*/*";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) argv[i] = smoke_filter;
  }
  ::testing::InitGoogleTest(&argc, argv);
  const uint64_t base = nfacount::testing_support::TestSeedBase();
  if (base != 0) {
    std::printf("[nfacount] NFACOUNT_TEST_SEED base = %" PRIu64 "\n", base);
  }
  return RUN_ALL_TESTS();
}
