// Tests for the ACJR-style baseline schedule and the schedule-gap helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(Acjr, ScheduleRatioMatchesHeadlineGap) {
  // ns_acjr/ns_faster = (mn/ε)⁷ / ~O(n⁴/ε² log) — grows with every knob.
  double r1 = ScheduleSampleRatio(4, 8, 0.5, 0.1);
  double r2 = ScheduleSampleRatio(8, 8, 0.5, 0.1);
  double r3 = ScheduleSampleRatio(8, 16, 0.5, 0.1);
  double r4 = ScheduleSampleRatio(8, 16, 0.25, 0.1);
  EXPECT_GT(r2, r1 * 100);  // m⁷ effect (ours is m-free)
  EXPECT_GT(r3, r2 * 4);    // n⁷ vs n⁴
  EXPECT_GT(r4, r3 * 10);   // ε⁻⁷ vs ε⁻²
}

TEST(Acjr, BudgetsAtEqualCalibrationAreLarger) {
  Calibration cal = Calibration::Practical();
  Result<FprasParams> fast = FprasParams::Make(Schedule::kFaster, 6, 8, 0.3,
                                               0.2, cal);
  Result<FprasParams> acjr = FprasParams::Make(Schedule::kAcjr, 6, 8, 0.3,
                                               0.2, cal);
  ASSERT_TRUE(fast.ok() && acjr.ok());
  EXPECT_GT(acjr->ns, fast->ns);
  EXPECT_GT(acjr->xns, fast->xns);
}

TEST(Acjr, EndToEndAccurateOnSmallInstances) {
  // Correctness of the template does not depend on the schedule; the ACJR
  // budget must also land within the envelope (it is just slower).
  Nfa nfa = SubstringNfa(Word{1, 0});
  const int n = 7;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  CountOptions options;
  options.eps = 0.4;
  options.delta = 0.2;
  options.seed = TestSeed(64);
  // Trim the ACJR budget so the test stays fast: the κ⁷ formula under the
  // practical scale still dwarfs the fast schedule.
  options.calibration.ns_scale = 1e-11;
  Result<CountEstimate> r = ApproxCountAcjr(nfa, n, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimate / exact->ToDouble(), 1.0, 0.6);
}

TEST(Acjr, OptionsScheduleFieldIsOverridden) {
  Nfa nfa = CombinationLock(Word{1});
  CountOptions options;
  options.schedule = Schedule::kFaster;  // should be ignored by the facade
  options.calibration.ns_scale = 1e-12;
  Result<CountEstimate> r = ApproxCountAcjr(nfa, 4, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->params.schedule, Schedule::kAcjr);
}

TEST(Acjr, SampleBudgetIndependenceClaim) {
  // The paper's abstract: our per-state budget is independent of m. Verify
  // through FprasParams at faithful scale: growing m by 16x changes ns by
  // < 5% for kFaster but by 16⁷ for kAcjr.
  Result<FprasParams> fast_small =
      FprasParams::Make(Schedule::kFaster, 4, 10, 0.2, 0.1);
  Result<FprasParams> fast_large =
      FprasParams::Make(Schedule::kFaster, 64, 10, 0.2, 0.1);
  ASSERT_TRUE(fast_small.ok() && fast_large.ok());
  EXPECT_LT(static_cast<double>(fast_large->ns) / fast_small->ns, 1.3);

  // The κ⁷ budget at m=64 overflows the int64 clamp inside FprasParams, so
  // compare the raw (unclamped) schedule functions.
  EXPECT_NEAR(AcjrScheduleNs(64, 10, 0.2) / AcjrScheduleNs(4, 10, 0.2),
              std::pow(16.0, 7), std::pow(16.0, 7) * 1e-9);
}

}  // namespace
}  // namespace nfacount
