// Tier-2 concurrency stress for the parallel level-sweep engine. With the
// union memo disabled, every (q,ℓ) cell recomputes all of its union sizes —
// maximum concurrent pressure on the shared read-only tables, the per-worker
// scratch, and the pool itself — and the result must still be bit-identical
// to the sequential run. Sized to stay minutes-cheap under ThreadSanitizer
// on a single core while still crossing every lock/atomic in the pool, the
// sharded memo, and the per-worker scratch thousands of times per run.

#include <gtest/gtest.h>

#include "automata/generators.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(ParallelStress, MemoDisabledManyThreadsMatchesSequential) {
  Rng rng(TestSeed(371));
  for (int trial = 0; trial < 2; ++trial) {
    Nfa nfa = RandomNfa(10, 0.25, 0.3, rng);
    const int n = 7;
    CountOptions base;
    base.eps = 0.35;
    base.delta = 0.2;
    base.seed = TestSeed(372) + trial;
    base.memoize_unions = false;  // force every cell to recompute unions
    // The descent cache also skips union estimations on a hit, and its hit
    // pattern is scheduling-dependent — results stay bit-identical (the
    // identity grid in test_descent_cache.cpp) but the appunion_trials
    // work counter below would not. Off, so every walk recomputes.
    base.descent_cache_capacity = 0;

    CountOptions sequential = base;
    sequential.num_threads = 1;
    CountOptions parallel = base;
    parallel.num_threads = 8;

    Result<CountEstimate> a = ApproxCount(nfa, n, sequential);
    Result<CountEstimate> b = ApproxCount(nfa, n, parallel);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->estimate, b->estimate) << "trial=" << trial;
    EXPECT_EQ(a->diagnostics.sample_calls, b->diagnostics.sample_calls);
    EXPECT_EQ(a->diagnostics.appunion_trials, b->diagnostics.appunion_trials);
    EXPECT_EQ(a->diagnostics.memo_hits, 0);
    EXPECT_EQ(b->diagnostics.memo_hits, 0);
  }
}

TEST(ParallelStress, RepeatedParallelRunsAreStable) {
  // Same engine configuration run three times at 8 threads: scheduling noise
  // across runs must never leak into any estimate.
  Rng rng(TestSeed(381));
  Nfa nfa = RandomNfa(9, 0.3, 0.3, rng);
  const int n = 7;
  CountOptions o;
  o.eps = 0.35;
  o.delta = 0.2;
  o.seed = TestSeed(382);
  o.num_threads = 8;

  Result<CountEstimate> first = ApproxCount(nfa, n, o);
  ASSERT_TRUE(first.ok());
  for (int rep = 0; rep < 2; ++rep) {
    Result<CountEstimate> again = ApproxCount(nfa, n, o);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first->estimate, again->estimate) << "rep=" << rep;
  }
}

TEST(ParallelStress, ParallelAcrossAblationGrid) {
  // The invariance must hold in every ablation corner, not just the default
  // configuration (each flag changes which code runs on the workers).
  Rng rng(TestSeed(391));
  Nfa nfa = RandomNfa(8, 0.3, 0.3, rng);
  const int n = 6;
  for (bool csr : {true, false}) {
    for (bool amortize : {true, false}) {
      CountOptions o;
      o.eps = 0.35;
      o.delta = 0.2;
      o.seed = TestSeed(392);
      o.csr_hot_path = csr;
      o.amortize_oracle = amortize;
      CountOptions par = o;
      par.num_threads = 6;
      Result<CountEstimate> a = ApproxCount(nfa, n, o);
      Result<CountEstimate> b = ApproxCount(nfa, n, par);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->estimate, b->estimate)
          << "csr=" << csr << " amortize=" << amortize;
    }
  }
}

}  // namespace
}  // namespace nfacount
