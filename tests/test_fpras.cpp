// Core FPRAS tests (Algorithm 3 / Theorem 3): per-(q,ℓ) estimate accuracy
// (Inv-1) against exact subset-DP counts, end-to-end accuracy sweeps across
// families and sizes, diagnostics sanity, and option plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

CountOptions Opts(uint64_t seed, double eps = 0.3, double delta = 0.2) {
  CountOptions o;
  o.eps = eps;
  o.delta = delta;
  o.seed = seed;
  return o;
}

TEST(Fpras, Inv1HoldsPerStateAndLevel) {
  // AccurateN_{q,ℓ}: N(q^ℓ) within (1±β)^ℓ ≈ (1 ± ε/2n²)·ℓ of |L(q^ℓ)|.
  // Empirically (calibrated constants) we verify a generous multiplicative
  // envelope per (q, ℓ) — systematic estimator bugs blow far past it.
  Rng rng(TestSeed(17));
  Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
  const int n = 7;
  Result<SubsetDp> dp = SubsetDp::Run(nfa, n);
  ASSERT_TRUE(dp.ok());

  Result<FprasParams> params =
      FprasParams::Make(Schedule::kFaster, nfa.num_states(), n, 0.3, 0.2,
                        Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, /*seed=*/TestSeed(2024));
  ASSERT_TRUE(engine.Run().ok());

  for (int level = 1; level <= n; ++level) {
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      const double truth = dp->StateLevelCount(q, level).ToDouble();
      const double est = engine.CountEstimateFor(q, level);
      if (truth == 0.0) {
        EXPECT_EQ(est, 0.0) << "q=" << q << " level=" << level;
      } else {
        EXPECT_GT(est / truth, 0.55) << "q=" << q << " level=" << level;
        EXPECT_LT(est / truth, 1.8) << "q=" << q << " level=" << level;
      }
    }
  }
}

TEST(Fpras, SampleSetsHaveExactlyNsEntriesInLanguage) {
  Rng rng(TestSeed(23));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  const int n = 6;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.4, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, TestSeed(7));
  ASSERT_TRUE(engine.Run().ok());
  const UnrolledNfa& unr = engine.unrolled();
  for (int level = 0; level <= n; ++level) {
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      const auto& samples = engine.SamplesFor(q, level);
      if (!unr.IsReachable(q, level)) {
        EXPECT_TRUE(samples.empty());
        continue;
      }
      if (level == 0) continue;  // base case: ns copies of λ at the initial
      ASSERT_EQ(static_cast<int64_t>(samples.size()), params->ns)
          << "q=" << q << " level=" << level;
      for (const StoredSample& s : samples) {
        ASSERT_EQ(static_cast<int>(s.word.size()), level);
        // Support invariant: every stored word is genuinely in L(q^ℓ).
        ASSERT_TRUE(nfa.Reach(s.word).Test(q))
            << WordToString(s.word) << " not in L(" << q << "^" << level << ")";
        // Cached reach profile matches recomputation.
        ASSERT_EQ(s.reach, nfa.Reach(s.word));
      }
    }
  }
}

struct FamilyCase {
  std::string family;
  int n;
};

class FprasFamilyAccuracy
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FprasFamilyAccuracy, EstimateWithinEnvelope) {
  const auto [family_idx, n] = GetParam();
  auto families = StandardFamilies(5, n, 31);
  ASSERT_LT(static_cast<size_t>(family_idx), families.size());
  const FamilyInstance& family = families[family_idx];
  SCOPED_TRACE(family.name + " n=" + std::to_string(n));

  Result<BigUint> exact = ExactCountViaDfa(family.nfa, n);
  ASSERT_TRUE(exact.ok());
  Result<CountEstimate> approx =
      ApproxCount(family.nfa, n, Opts(TestSeed(1234 + n)));
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();

  const double truth = exact->ToDouble();
  if (truth == 0.0) {
    EXPECT_EQ(approx->estimate, 0.0);
  } else {
    EXPECT_NEAR(approx->estimate / truth, 1.0, 0.6)
        << "estimate=" << approx->estimate << " truth=" << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndLengths, FprasFamilyAccuracy,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(4, 8, 11)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Fpras, RepeatedRunsConcentrateAroundTruth) {
  // δ-style census: over 20 seeds, the large majority must fall within
  // (1±ε); the mean must be nearly unbiased.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 10;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  const double truth = exact->ToDouble();

  int within = 0;
  double sum = 0.0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    Result<CountEstimate> approx =
        ApproxCount(nfa, n, Opts(TestSeed(9000 + i), 0.3, 0.2));
    ASSERT_TRUE(approx.ok());
    const double ratio = approx->estimate / truth;
    sum += ratio;
    if (ratio >= 1.0 / 1.3 && ratio <= 1.3) ++within;
  }
  EXPECT_GE(within, 17) << "too many runs outside (1±eps)";
  EXPECT_NEAR(sum / trials, 1.0, 0.12);
}

TEST(Fpras, DiagnosticsAreConsistent) {
  Rng rng(TestSeed(3));
  Nfa nfa = RandomNfa(5, 0.3, 0.3, rng);
  Result<CountEstimate> r = ApproxCount(nfa, 6, Opts(TestSeed(5)));
  ASSERT_TRUE(r.ok());
  const FprasDiagnostics& d = r->diagnostics;
  EXPECT_GT(d.appunion_calls, 0);
  EXPECT_GT(d.appunion_trials, 0);
  EXPECT_GT(d.sample_calls, 0);
  EXPECT_EQ(d.sample_calls,
            d.sample_success + d.fail_phi_gt_1 + d.fail_bernoulli +
                d.fail_dead_branch);
  EXPECT_GT(d.states_processed, 0);
  EXPECT_GE(d.wall_seconds, 0.0);
  EXPECT_GT(d.memo_hits + d.memo_misses, 0);
}

TEST(Fpras, MemoizationDoesNotChangeAccuracyButSavesWork) {
  Nfa nfa = SubstringNfa(Word{1, 1, 0});
  const int n = 9;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  const double truth = exact->ToDouble();

  CountOptions with_memo = Opts(TestSeed(77));
  CountOptions without_memo = Opts(TestSeed(77));
  without_memo.memoize_unions = false;
  // The descent cache sits in front of the memo and would serve the repeated
  // sample-path unions either way; disable it so this test isolates the memo
  // ablation (the descent cache has its own suite, test_descent_cache.cpp).
  with_memo.descent_cache_capacity = 0;
  without_memo.descent_cache_capacity = 0;

  Result<CountEstimate> a = ApproxCount(nfa, n, with_memo);
  Result<CountEstimate> b = ApproxCount(nfa, n, without_memo);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->estimate / truth, 1.0, 0.5);
  EXPECT_NEAR(b->estimate / truth, 1.0, 0.5);
  EXPECT_GT(a->diagnostics.memo_hits, 0);
  EXPECT_EQ(b->diagnostics.memo_hits, 0);
  EXPECT_LT(a->diagnostics.appunion_trials, b->diagnostics.appunion_trials);
}

TEST(Fpras, OracleAmortizationAblationAgrees) {
  Nfa nfa = ParityNfa(3);
  const int n = 7;
  CountOptions amortized = Opts(TestSeed(11));
  CountOptions slow = Opts(TestSeed(11));
  slow.amortize_oracle = false;
  Result<CountEstimate> a = ApproxCount(nfa, n, amortized);
  Result<CountEstimate> b = ApproxCount(nfa, n, slow);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same seed, same draw sequence: membership answers are identical, so the
  // two modes must produce the exact same estimate.
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
}

TEST(Fpras, PerturbationBranchOffIsCleanRun) {
  Nfa nfa = SubstringNfa(Word{0, 1});
  CountOptions o = Opts(TestSeed(13));
  o.perturb_support = false;
  Result<CountEstimate> r = ApproxCount(nfa, 8, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->diagnostics.perturbed_counts, 0);
}

TEST(Fpras, AcjrScheduleAlsoAccurateOnTinyInstance) {
  // The ACJR budget is larger at equal calibration; on a tiny instance both
  // schedules must land near the truth.
  Nfa nfa = CombinationLock(Word{1, 0});
  const int n = 6;  // truth = 2^4 = 16
  Result<CountEstimate> fast = ApproxCount(nfa, n, Opts(TestSeed(21)));
  Result<CountEstimate> acjr = ApproxCountAcjr(nfa, n, Opts(TestSeed(21)));
  ASSERT_TRUE(fast.ok() && acjr.ok());
  EXPECT_NEAR(fast->estimate, 16.0, 8.0);
  EXPECT_NEAR(acjr->estimate, 16.0, 8.0);
  EXPECT_EQ(acjr->params.schedule, Schedule::kAcjr);
  EXPECT_GE(acjr->params.ns, fast->params.ns);
}

TEST(Fpras, InvalidInputsRejected) {
  Nfa no_initial(2);
  no_initial.AddState();
  EXPECT_FALSE(ApproxCount(no_initial, 5).ok());

  Nfa ok(2);
  StateId q = ok.AddState();
  ok.SetInitial(q);
  ok.AddAccepting(q);
  ok.AddTransition(q, 0, q);
  EXPECT_FALSE(ApproxCount(ok, -1).ok());
  CountOptions bad_eps;
  bad_eps.eps = 0.0;
  EXPECT_FALSE(ApproxCount(ok, 3, bad_eps).ok());
}

TEST(Fpras, UnaryAlphabet) {
  // |Σ| = 1: the only length-n word is 0^n; L(A_n) is {0^n} or empty.
  Nfa nfa(1);
  nfa.AddStates(3);
  nfa.SetInitial(0);
  nfa.AddAccepting(2);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 0, 2);
  nfa.AddTransition(2, 0, 0);
  // Accepts 0^n iff n ≡ 2 (mod 3).
  Result<CountEstimate> r5 = ApproxCount(nfa, 5, Opts(TestSeed(3)));
  Result<CountEstimate> r6 = ApproxCount(nfa, 6, Opts(TestSeed(3)));
  ASSERT_TRUE(r5.ok() && r6.ok());
  EXPECT_NEAR(r5->estimate, 1.0, 0.4);
  EXPECT_EQ(r6->estimate, 0.0);
}

TEST(Fpras, QuaternaryAlphabet) {
  // Σ = {0,1,2,3}; words containing symbol 3.
  Nfa nfa = SubstringNfa(Word{3}, 4);
  const int n = 6;
  Result<BigUint> exact = BruteForceCount(nfa, n);
  ASSERT_TRUE(exact.ok());
  Result<CountEstimate> approx = ApproxCount(nfa, n, Opts(TestSeed(19)));
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / exact->ToDouble(), 1.0, 0.5);
}

TEST(Fpras, AllLengthsFromOneRunMatchExact) {
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 10;
  Result<std::vector<double>> lengths =
      ApproxCountAllLengths(nfa, n, Opts(TestSeed(404)));
  ASSERT_TRUE(lengths.ok());
  ASSERT_EQ(lengths->size(), static_cast<size_t>(n + 1));
  Result<Dfa> dfa = Determinize(nfa);
  ASSERT_TRUE(dfa.ok());
  std::vector<BigUint> exact = dfa->CountWordsUpToLength(n);
  for (int len = 0; len <= n; ++len) {
    const double truth = exact[len].ToDouble();
    if (truth == 0.0) {
      EXPECT_EQ((*lengths)[len], 0.0) << "len=" << len;
    } else {
      EXPECT_NEAR((*lengths)[len] / truth, 1.0, 0.6) << "len=" << len;
    }
  }
}

TEST(Fpras, AllLengthsLengthZeroAndEmpty) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddAccepting(q);
  nfa.AddTransition(q, 0, q);
  // Accepts 0* only: |L(A_len)| = 1 for every length.
  Result<std::vector<double>> lengths =
      ApproxCountAllLengths(nfa, 5, Opts(TestSeed(1)));
  ASSERT_TRUE(lengths.ok());
  for (double est : *lengths) EXPECT_NEAR(est, 1.0, 0.4);

  Result<std::vector<double>> zero =
      ApproxCountAllLengths(nfa, 0, Opts(TestSeed(1)));
  ASSERT_TRUE(zero.ok());
  ASSERT_EQ(zero->size(), 1u);
  EXPECT_EQ((*zero)[0], 1.0);
}

TEST(Fpras, AllLengthsConsistentWithSingleCount) {
  // The level-n entry of the all-lengths run and a dedicated ApproxCount run
  // with the same seed share the same DP, so they must agree exactly.
  Nfa nfa = ParityNfa(3);
  const int n = 8;
  Result<std::vector<double>> lengths =
      ApproxCountAllLengths(nfa, n, Opts(TestSeed(777)));
  Result<CountEstimate> single = ApproxCount(nfa, n, Opts(TestSeed(777)));
  ASSERT_TRUE(lengths.ok() && single.ok());
  EXPECT_DOUBLE_EQ((*lengths)[n], single->estimate);
}

TEST(Fpras, LongerWordsStillAccurate) {
  // n = 24 with an exactly-known language size: divisible-by-3 numerals.
  Nfa nfa = DivisibilityNfa(3);
  const int n = 24;
  Result<BigUint> exact = ExactCountViaDfa(nfa, n);
  ASSERT_TRUE(exact.ok());
  Result<CountEstimate> approx =
      ApproxCount(nfa, n, Opts(TestSeed(1001), 0.25, 0.2));
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate / exact->ToDouble(), 1.0, 0.4);
}

}  // namespace
}  // namespace nfacount
