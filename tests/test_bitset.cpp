// Unit tests for the dynamic bitset, including the word-boundary edge cases
// (sizes 63/64/65) the state-set operations rely on.

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/bitset.hpp"

namespace nfacount {
namespace {

TEST(Bitset, EmptyDefault) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.FirstSet(), -1);
}

TEST(Bitset, SetTestReset) {
  Bitset b(10);
  EXPECT_FALSE(b.Test(3));
  b.Set(3);
  EXPECT_TRUE(b.Test(3));
  EXPECT_TRUE(b.Any());
  b.Reset(3);
  EXPECT_FALSE(b.Test(3));
  EXPECT_TRUE(b.None());
}

class BitsetSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetSizeTest, SetAllCountsExactlySize) {
  Bitset b(GetParam());
  b.SetAll();
  EXPECT_EQ(b.Count(), GetParam());
  // No stray bits: clearing every valid index empties it.
  for (size_t i = 0; i < GetParam(); ++i) b.Reset(i);
  EXPECT_TRUE(b.None());
}

TEST_P(BitsetSizeTest, LastBitWorks) {
  size_t size = GetParam();
  if (size == 0) return;
  Bitset b(size);
  b.Set(size - 1);
  EXPECT_TRUE(b.Test(size - 1));
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_EQ(b.FirstSet(), static_cast<int>(size - 1));
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitsetSizeTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129, 200));

TEST(Bitset, FromIndicesAndToIndicesRoundTrip) {
  std::vector<int> indices = {0, 5, 63, 64, 99};
  Bitset b = Bitset::FromIndices(100, indices);
  EXPECT_EQ(b.ToIndices(), indices);
  EXPECT_EQ(b.Count(), indices.size());
}

TEST(Bitset, IntersectsAndSubset) {
  Bitset a = Bitset::FromIndices(70, {1, 65});
  Bitset b = Bitset::FromIndices(70, {65});
  Bitset c = Bitset::FromIndices(70, {2, 3});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(Bitset(70).IsSubsetOf(b));  // empty set is a subset of anything
}

TEST(Bitset, OrAndOperators) {
  Bitset a = Bitset::FromIndices(80, {1, 70});
  Bitset b = Bitset::FromIndices(80, {2, 70});
  Bitset o = a;
  o |= b;
  EXPECT_EQ(o.ToIndices(), (std::vector<int>{1, 2, 70}));
  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.ToIndices(), (std::vector<int>{70}));
}

TEST(Bitset, EqualityIncludesSize) {
  Bitset a(64), b(65);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a != b);
  Bitset c(64);
  EXPECT_TRUE(a == c);
  c.Set(0);
  EXPECT_FALSE(a == c);
}

TEST(Bitset, ForEachSetAscending) {
  Bitset b = Bitset::FromIndices(130, {129, 0, 64, 63});
  std::vector<int> seen;
  b.ForEachSet([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 63, 64, 129}));
}

TEST(Bitset, ClearResetsEverything) {
  Bitset b = Bitset::FromIndices(100, {1, 99});
  b.Clear();
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.size(), 100u);  // size preserved
}

TEST(Bitset, ToStringFormat) {
  EXPECT_EQ(Bitset::FromIndices(10, {1, 3}).ToString(), "{1,3}");
  EXPECT_EQ(Bitset(10).ToString(), "{}");
}

TEST(Bitset, HashDistinguishesContentAndWorksInMaps) {
  std::unordered_set<Bitset, BitsetHash> set;
  for (int i = 0; i < 50; ++i) {
    set.insert(Bitset::FromIndices(64, {i}));
  }
  EXPECT_EQ(set.size(), 50u);
  // Reinserting a duplicate does not grow the set.
  set.insert(Bitset::FromIndices(64, {7}));
  EXPECT_EQ(set.size(), 50u);
}

TEST(Bitset, HashDependsOnSize) {
  Bitset a(64), b(128);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(Bitset, FirstSetScansAcrossWords) {
  Bitset b(200);
  b.Set(150);
  EXPECT_EQ(b.FirstSet(), 150);
  b.Set(20);
  EXPECT_EQ(b.FirstSet(), 20);
}

}  // namespace
}  // namespace nfacount
