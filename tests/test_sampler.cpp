// Tests for the almost-uniform word sampler (Algorithm 2 / Theorem 2 /
// Inv-2): support correctness, empirical closeness to uniform in TV distance
// on exactly-enumerable languages, rejection-rate bounds, and the public
// WordSampler facade.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "fpras/fpras.hpp"
#include "test_seed.hpp"
#include "util/stats.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

SamplerOptions Opts(uint64_t seed) {
  SamplerOptions o;
  o.eps = 0.3;
  o.delta = 0.2;
  o.seed = seed;
  return o;
}

TEST(Sampler, SamplesAreAlwaysInLanguage) {
  Rng rng(TestSeed(2));
  for (int trial = 0; trial < 4; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    const int n = 7;
    Result<std::vector<Word>> lang = EnumerateAccepted(nfa, n);
    ASSERT_TRUE(lang.ok());
    if (lang->empty()) continue;
    Result<WordSampler> sampler =
        WordSampler::Build(nfa, n, Opts(TestSeed(50 + trial)));
    ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
    std::set<Word> language(lang->begin(), lang->end());
    for (int i = 0; i < 200; ++i) {
      Result<Word> w = sampler.value().Sample();
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      ASSERT_TRUE(language.count(w.value()))
          << WordToString(w.value()) << " not in L(A_n)";
    }
  }
}

TEST(Sampler, EmpiricallyCloseToUniformInTv) {
  // Inv-2 check on a small language (|L| = 11 words of length 5 containing
  // "101"): empirical TV to uniform over ~6000 draws should be small.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  const int n = 5;
  Result<std::vector<Word>> lang = EnumerateAccepted(nfa, n);
  ASSERT_TRUE(lang.ok());
  const int64_t support = static_cast<int64_t>(lang->size());
  ASSERT_GT(support, 0);

  Result<WordSampler> sampler = WordSampler::Build(nfa, n, Opts(TestSeed(404)));
  ASSERT_TRUE(sampler.ok());
  std::map<std::string, int64_t> histogram;
  const int64_t draws = 6000;
  for (int64_t i = 0; i < draws; ++i) {
    Result<Word> w = sampler.value().Sample();
    ASSERT_TRUE(w.ok());
    ++histogram[WordToString(w.value())];
  }
  EXPECT_EQ(static_cast<int64_t>(histogram.size()), support)
      << "sampler missed part of the support";
  // Sampling noise alone gives TV ~ sqrt(|L|/draws)/2 ~ 0.02; the sampler's
  // own bias (eps-calibrated) adds a bit. 0.12 catches real skew.
  EXPECT_LT(EmpiricalTvToUniform(histogram, draws, support), 0.12);
}

TEST(Sampler, UniformAcrossDisjointBranchesOfUnevenSize) {
  // Language = {00xx...} ∪ {1yyy..}: branch proportions must follow language
  // sizes, not branch counts. Words: 0 0 w (w free, 2^3) plus 1 w (2^4):
  // proportions 8/24 vs 16/24.
  Nfa nfa(2);
  StateId s = nfa.AddState();
  StateId a1 = nfa.AddState();
  StateId a2 = nfa.AddState();
  StateId free_a = nfa.AddState();
  StateId free_b = nfa.AddState();
  nfa.SetInitial(s);
  nfa.AddTransition(s, 0, a1);
  nfa.AddTransition(a1, 0, a2);
  nfa.AddTransition(a2, 0, free_a);
  nfa.AddTransition(a2, 1, free_a);
  nfa.AddTransition(free_a, 0, free_a);
  nfa.AddTransition(free_a, 1, free_a);
  nfa.AddTransition(s, 1, free_b);
  nfa.AddTransition(free_b, 0, free_b);
  nfa.AddTransition(free_b, 1, free_b);
  nfa.AddAccepting(free_a);
  nfa.AddAccepting(free_b);
  const int n = 5;
  // L = 00 + 3 free (8 words) ∪ 1 + 4 free (16 words); disjoint.
  Result<WordSampler> sampler = WordSampler::Build(nfa, n, Opts(TestSeed(777)));
  ASSERT_TRUE(sampler.ok());
  int64_t zeros = 0, ones = 0;
  const int64_t draws = 4000;
  for (int64_t i = 0; i < draws; ++i) {
    Result<Word> w = sampler.value().Sample();
    ASSERT_TRUE(w.ok());
    (w.value()[0] == 0 ? zeros : ones) += 1;
  }
  EXPECT_NEAR(static_cast<double>(ones) / draws, 16.0 / 24.0, 0.05);
  EXPECT_NEAR(static_cast<double>(zeros) / draws, 8.0 / 24.0, 0.05);
}

TEST(Sampler, RejectionRateRespectsTheorem2Bound) {
  // Theorem 2(2): per-attempt failure ≤ 1 − 2/(3e²) ≈ 0.9098 given accurate
  // tables; empirically the success rate should be near 2/(3e)·L/N ≈ 0.245
  // for accurate N. Check the diagnostic counters of a full run.
  Nfa nfa = SubstringNfa(Word{1, 0, 1});
  CountOptions options;
  options.eps = 0.3;
  options.delta = 0.2;
  options.seed = TestSeed(31337);
  Result<CountEstimate> r = ApproxCount(nfa, 10, options);
  ASSERT_TRUE(r.ok());
  const FprasDiagnostics& d = r->diagnostics;
  const double success_rate =
      static_cast<double>(d.sample_success) / static_cast<double>(d.sample_calls);
  EXPECT_GT(success_rate, 0.12);  // comfortably above catastrophic rejection
  EXPECT_LT(success_rate, 0.45);  // and below the γ0 ceiling 2/(3e) ≈ 0.245 + noise
}

TEST(Sampler, EmptyLanguageReportsNotFound) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);  // unreachable
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  Result<WordSampler> sampler = WordSampler::Build(nfa, 5, Opts(TestSeed(1)));
  ASSERT_TRUE(sampler.ok());
  Result<Word> w = sampler.value().Sample();
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kNotFound);
}

TEST(Sampler, LengthZeroLanguage) {
  Nfa nfa(2);
  StateId q = nfa.AddState();
  nfa.SetInitial(q);
  nfa.AddAccepting(q);
  nfa.AddTransition(q, 0, q);
  Result<WordSampler> sampler = WordSampler::Build(nfa, 0, Opts(TestSeed(1)));
  ASSERT_TRUE(sampler.ok());
  Result<Word> w = sampler.value().Sample();
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.value().empty());
}

TEST(Sampler, SampleManyCountsAndDeterminism) {
  Nfa nfa = ParityNfa(2);
  Result<WordSampler> s1 = WordSampler::Build(nfa, 6, Opts(TestSeed(99)));
  Result<WordSampler> s2 = WordSampler::Build(nfa, 6, Opts(TestSeed(99)));
  ASSERT_TRUE(s1.ok() && s2.ok());
  Result<std::vector<Word>> w1 = s1.value().SampleMany(25);
  Result<std::vector<Word>> w2 = s2.value().SampleMany(25);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_EQ(w1->size(), 25u);
  EXPECT_EQ(*w1, *w2);  // same seed, same words
}

TEST(Sampler, CountEstimateExposedMatchesFprasAccuracy) {
  Nfa nfa = ParityNfa(2);
  const int n = 8;
  Result<WordSampler> sampler = WordSampler::Build(nfa, n, Opts(TestSeed(5)));
  ASSERT_TRUE(sampler.ok());
  EXPECT_NEAR(sampler.value().CountEstimate() / 128.0, 1.0, 0.45);
}

TEST(Sampler, SingletonLanguageAlwaysReturnsTheWord) {
  Word needle{1, 1, 0, 1, 0, 0};
  Nfa nfa = SparseNeedle(needle);
  Result<WordSampler> sampler =
      WordSampler::Build(nfa, static_cast<int>(needle.size()), Opts(TestSeed(8)));
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 20; ++i) {
    Result<Word> w = sampler.value().Sample();
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), needle);
  }
}

TEST(Sampler, EngineSampleWordTargetsArbitraryStateSets) {
  // Directly exercise FprasEngine::SampleWord on an interior level/state set.
  Rng rng(TestSeed(10));
  Nfa nfa = RandomNfa(6, 0.35, 0.3, rng);
  const int n = 6;
  Result<FprasParams> params = FprasParams::Make(
      Schedule::kFaster, nfa.num_states(), n, 0.3, 0.2, Calibration::Practical());
  ASSERT_TRUE(params.ok());
  FprasEngine engine(&nfa, *params, TestSeed(44));
  ASSERT_TRUE(engine.Run().ok());

  const int level = 4;
  Bitset targets = engine.unrolled().ReachableAt(level);
  ASSERT_TRUE(targets.Any());
  int successes = 0;
  for (int i = 0; i < 300; ++i) {
    std::optional<Word> w = engine.SampleWord(targets, level);
    if (!w.has_value()) continue;
    ++successes;
    ASSERT_EQ(static_cast<int>(w->size()), level);
    // Word must reach at least one target state.
    EXPECT_TRUE(nfa.Reach(*w).Intersects(targets));
  }
  EXPECT_GT(successes, 30);
}

}  // namespace
}  // namespace nfacount
