// Unit tests for the NFA core: construction, adjacency indexes, simulation,
// reachability, trimming, and the language operations (validated against
// brute-force word enumeration).

#include <gtest/gtest.h>

#include <cmath>

#include "automata/generators.hpp"
#include "automata/nfa.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

// Enumerates all words of length n over the alphabet and returns those
// `accept` approves — an oracle independent of Nfa::Accepts internals.
template <typename AcceptFn>
std::vector<Word> WordsWhere(int alphabet, int n, AcceptFn&& accept) {
  std::vector<Word> out;
  Word w(n, 0);
  int64_t total = 1;
  for (int i = 0; i < n; ++i) total *= alphabet;
  for (int64_t x = 0; x < total; ++x) {
    int64_t v = x;
    for (int i = 0; i < n; ++i) {
      w[i] = static_cast<Symbol>(v % alphabet);
      v /= alphabet;
    }
    if (accept(w)) out.push_back(w);
  }
  return out;
}

Nfa Contains101() {
  return SubstringNfa(Word{1, 0, 1});
}

TEST(Alphabet, SymbolCharRoundTrip) {
  for (int s = 0; s < kMaxCharAlphabetSize; ++s) {
    EXPECT_EQ(CharToSymbol(SymbolToChar(static_cast<Symbol>(s))), s);
  }
  EXPECT_EQ(CharToSymbol('#'), -1);
  EXPECT_EQ(CharToSymbol('Z'), -1);
}

TEST(Alphabet, SymbolTokenRoundTrip) {
  // Char-renderable symbols keep their single-character token; large symbols
  // round-trip through the decimal form.
  for (int s : {0, 9, 10, 35, 36, 517, kMaxAlphabetSize - 1}) {
    EXPECT_EQ(ParseSymbolToken(SymbolToken(static_cast<Symbol>(s))), s)
        << "s=" << s;
  }
  EXPECT_EQ(ParseSymbolToken(""), -1);
  EXPECT_EQ(ParseSymbolToken("1x"), -1);
  EXPECT_EQ(ParseSymbolToken("999999"), -1);
  EXPECT_EQ(ParseSymbolToken(std::to_string(kMaxAlphabetSize)), -1);
  EXPECT_EQ(WordToString(Word{0, 517, 1}), "0[517]1");
}

TEST(Alphabet, WordStringRoundTrip) {
  Word w{0, 1, 1, 0, 1};
  EXPECT_EQ(WordToString(w), "01101");
  Result<Word> parsed = ParseWord("01101", 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), w);
  EXPECT_EQ(WordToString(Word{}), "");
}

TEST(Alphabet, ParseRejectsOutOfAlphabet) {
  EXPECT_FALSE(ParseWord("012", 2).ok());
  EXPECT_TRUE(ParseWord("012", 3).ok());
  EXPECT_FALSE(ParseWord("0a1", 2).ok());
  EXPECT_TRUE(ParseWord("0a1", 12).ok());
}

TEST(Nfa, ValidationCatchesMissingInitial) {
  Nfa nfa(2);
  EXPECT_FALSE(nfa.Validate().ok());  // no states
  nfa.AddState();
  EXPECT_FALSE(nfa.Validate().ok());  // no initial
  nfa.SetInitial(0);
  EXPECT_TRUE(nfa.Validate().ok());
}

TEST(Nfa, TransitionsDeduplicated) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddTransition(0, 1, 1);
  nfa.AddTransition(0, 1, 1);
  nfa.AddTransition(0, 1, 1);
  EXPECT_EQ(nfa.num_transitions(), 1);
  EXPECT_EQ(nfa.Successors(0, 1).size(), 1u);
  EXPECT_EQ(nfa.Predecessors(1, 1).size(), 1u);
}

TEST(Nfa, PredecessorsMirrorSuccessors) {
  Rng rng(TestSeed(5));
  Nfa nfa = RandomNfa(10, 0.3, 0.2, rng);
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
        const auto& preds = nfa.Predecessors(r, static_cast<Symbol>(a));
        EXPECT_NE(std::find(preds.begin(), preds.end(), q), preds.end())
            << q << " -" << a << "-> " << r;
      }
    }
  }
}

TEST(Nfa, AcceptsMatchesManualOracle) {
  Nfa nfa = Contains101();
  auto oracle = [](const Word& w) {
    for (size_t i = 0; i + 2 < w.size(); ++i) {
      if (w[i] == 1 && w[i + 1] == 0 && w[i + 2] == 1) return true;
    }
    return false;
  };
  for (int n = 0; n <= 10; ++n) {
    std::vector<Word> expect = WordsWhere(2, n, oracle);
    std::vector<Word> got =
        WordsWhere(2, n, [&](const Word& w) { return nfa.Accepts(w); });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(Nfa, ReachMatchesStepComposition) {
  Rng rng(TestSeed(7));
  Nfa nfa = RandomNfa(8, 0.25, 0.3, rng);
  Word w{1, 0, 0, 1, 1};
  Bitset via_reach = nfa.Reach(w);
  Bitset cur(nfa.num_states());
  cur.Set(nfa.initial());
  for (Symbol s : w) cur = nfa.Step(cur, s);
  EXPECT_EQ(via_reach, cur);
}

TEST(Nfa, StepBackIsAdjointOfStep) {
  Rng rng(TestSeed(11));
  Nfa nfa = RandomNfa(9, 0.3, 0.2, rng);
  // For singletons {p}, {q}: q in Step({p}, a) iff p in StepBack({q}, a).
  for (StateId p = 0; p < nfa.num_states(); ++p) {
    Bitset from(nfa.num_states());
    from.Set(p);
    for (int a = 0; a < 2; ++a) {
      Bitset img = nfa.Step(from, static_cast<Symbol>(a));
      img.ForEachSet([&](int q) {
        Bitset into(nfa.num_states());
        into.Set(q);
        EXPECT_TRUE(nfa.StepBack(into, static_cast<Symbol>(a)).Test(p));
      });
    }
  }
}

TEST(Nfa, ReachableAndCoReachable) {
  // 0 -> 1 -> 2(acc), 3 isolated, 4 -> 2 (not reachable from 0).
  Nfa nfa(2);
  nfa.AddStates(5);
  nfa.SetInitial(0);
  nfa.AddAccepting(2);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 0, 2);
  nfa.AddTransition(4, 0, 2);
  Bitset reach = nfa.ReachableStates();
  EXPECT_EQ(reach.ToIndices(), (std::vector<int>{0, 1, 2}));
  Bitset coreach = nfa.CoReachableStates();
  EXPECT_EQ(coreach.ToIndices(), (std::vector<int>{0, 1, 2, 4}));
}

TEST(Nfa, TrimmedPreservesLanguage) {
  Nfa nfa(2);
  nfa.AddStates(6);
  nfa.SetInitial(0);
  nfa.AddAccepting(2);
  nfa.AddTransition(0, 1, 1);
  nfa.AddTransition(1, 0, 2);
  nfa.AddTransition(2, 1, 2);
  nfa.AddTransition(0, 0, 3);  // 3 is a dead end
  nfa.AddTransition(4, 0, 2);  // 4 unreachable
  nfa.AddTransition(3, 0, 5);  // 5 dead
  Nfa trimmed = nfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 3);
  for (int n = 0; n <= 8; ++n) {
    EXPECT_EQ(WordsWhere(2, n, [&](const Word& w) { return nfa.Accepts(w); }),
              WordsWhere(2, n, [&](const Word& w) { return trimmed.Accepts(w); }))
        << "n=" << n;
  }
}

TEST(Nfa, TrimmedEmptyLanguageCollapses) {
  Nfa nfa(2);
  nfa.AddStates(3);
  nfa.SetInitial(0);
  nfa.AddAccepting(2);  // unreachable
  nfa.AddTransition(0, 0, 1);
  Nfa trimmed = nfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 1);
  EXPECT_FALSE(trimmed.Accepts(Word{0}));
  EXPECT_FALSE(trimmed.Accepts(Word{}));
}

TEST(LanguageOps, IntersectMatchesAndOfAccepts) {
  Nfa a = Contains101();
  Nfa b = ParityNfa(2);  // even number of 1s
  Nfa prod = Intersect(a, b);
  for (int n = 0; n <= 9; ++n) {
    std::vector<Word> expect = WordsWhere(
        2, n, [&](const Word& w) { return a.Accepts(w) && b.Accepts(w); });
    std::vector<Word> got =
        WordsWhere(2, n, [&](const Word& w) { return prod.Accepts(w); });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(LanguageOps, UnionMatchesOrOfAccepts) {
  Nfa a = SubstringNfa(Word{1, 1});
  Nfa b = CombinationLock(Word{0, 0});
  Nfa u = Union(a, b);
  for (int n = 0; n <= 9; ++n) {
    std::vector<Word> expect = WordsWhere(
        2, n, [&](const Word& w) { return a.Accepts(w) || b.Accepts(w); });
    std::vector<Word> got =
        WordsWhere(2, n, [&](const Word& w) { return u.Accepts(w); });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(LanguageOps, UnionHandlesEmptyWordAcceptance) {
  Nfa a(2);  // accepts λ
  StateId qa = a.AddState();
  a.SetInitial(qa);
  a.AddAccepting(qa);

  Nfa b(2);  // accepts {1}
  StateId qb0 = b.AddState();
  StateId qb1 = b.AddState();
  b.SetInitial(qb0);
  b.AddAccepting(qb1);
  b.AddTransition(qb0, 1, qb1);

  Nfa u = Union(a, b);
  EXPECT_TRUE(u.Accepts(Word{}));
  EXPECT_TRUE(u.Accepts(Word{1}));
  EXPECT_FALSE(u.Accepts(Word{0}));
}

TEST(LanguageOps, ReverseMatchesReversedWords) {
  Rng rng(TestSeed(13));
  for (int trial = 0; trial < 5; ++trial) {
    Nfa nfa = RandomNfa(6, 0.3, 0.3, rng);
    Nfa rev = Reverse(nfa);
    for (int n = 0; n <= 7; ++n) {
      std::vector<Word> expect = WordsWhere(2, n, [&](const Word& w) {
        Word r(w.rbegin(), w.rend());
        return nfa.Accepts(r);
      });
      std::vector<Word> got =
          WordsWhere(2, n, [&](const Word& w) { return rev.Accepts(w); });
      EXPECT_EQ(got, expect) << "trial=" << trial << " n=" << n;
    }
  }
}

TEST(LanguageOps, DoubleReverseSameLanguage) {
  Rng rng(TestSeed(17));
  Nfa nfa = RandomNfa(5, 0.35, 0.3, rng);
  Nfa rr = Reverse(Reverse(nfa));
  for (int n = 0; n <= 7; ++n) {
    EXPECT_EQ(WordsWhere(2, n, [&](const Word& w) { return nfa.Accepts(w); }),
              WordsWhere(2, n, [&](const Word& w) { return rr.Accepts(w); }));
  }
}

TEST(LanguageOps, ConcatMatchesSplitOracle) {
  Nfa a = CombinationLock(Word{1, 0});  // 10·Σ*
  Nfa b = SubstringNfa(Word{1, 1});     // contains 11
  Nfa cat = Concat(a, b);
  for (int n = 0; n <= 9; ++n) {
    std::vector<Word> expect = WordsWhere(2, n, [&](const Word& w) {
      for (int split = 0; split <= n; ++split) {
        Word left(w.begin(), w.begin() + split);
        Word right(w.begin() + split, w.end());
        if (a.Accepts(left) && b.Accepts(right)) return true;
      }
      return false;
    });
    std::vector<Word> got =
        WordsWhere(2, n, [&](const Word& w) { return cat.Accepts(w); });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(LanguageOps, ConcatEmptyWordCases) {
  // a accepts λ; b = {1}: λ·1 = 1 must be accepted from the very start.
  Nfa a(2);
  StateId qa = a.AddState();
  a.SetInitial(qa);
  a.AddAccepting(qa);
  a.AddTransition(qa, 0, qa);  // 0*
  Nfa b = SparseNeedle(Word{1});
  Nfa cat = Concat(a, b);
  EXPECT_TRUE(cat.Accepts(Word{1}));
  EXPECT_TRUE(cat.Accepts(Word{0, 0, 1}));
  EXPECT_FALSE(cat.Accepts(Word{}));
  EXPECT_FALSE(cat.Accepts(Word{0}));
  // b accepting λ: concat accepts L(a) itself.
  Nfa lambda(2);
  StateId ql = lambda.AddState();
  lambda.SetInitial(ql);
  lambda.AddAccepting(ql);
  Nfa cat2 = Concat(a, lambda);
  EXPECT_TRUE(cat2.Accepts(Word{}));
  EXPECT_TRUE(cat2.Accepts(Word{0, 0}));
}

TEST(LanguageOps, StarMatchesFactorization) {
  // a = {01, 1}: L(a)* over length <= 8 by dynamic programming oracle.
  Nfa a(2);
  StateId s0 = a.AddState();
  StateId s1 = a.AddState();
  StateId s2 = a.AddState();
  a.SetInitial(s0);
  a.AddAccepting(s2);
  a.AddTransition(s0, 0, s1);
  a.AddTransition(s1, 1, s2);
  a.AddTransition(s0, 1, s2);
  Nfa star = Star(a);
  for (int n = 0; n <= 8; ++n) {
    std::vector<Word> expect = WordsWhere(2, n, [&](const Word& w) {
      // dp[i] = w[0..i) decomposes into factors.
      std::vector<bool> dp(w.size() + 1, false);
      dp[0] = true;
      for (size_t i = 1; i <= w.size(); ++i) {
        for (size_t j = 0; j < i; ++j) {
          if (!dp[j]) continue;
          Word factor(w.begin() + j, w.begin() + i);
          if (a.Accepts(factor)) {
            dp[i] = true;
            break;
          }
        }
      }
      return static_cast<bool>(dp[w.size()]);  // avoid vector<bool> proxy
    });
    std::vector<Word> got =
        WordsWhere(2, n, [&](const Word& w) { return star.Accepts(w); });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(LanguageOps, StarAlwaysAcceptsEmptyWord) {
  Nfa needle = SparseNeedle(Word{1, 0, 1});
  Nfa star = Star(needle);
  EXPECT_TRUE(star.Accepts(Word{}));
  EXPECT_TRUE(star.Accepts(Word{1, 0, 1}));
  EXPECT_TRUE(star.Accepts(Word{1, 0, 1, 1, 0, 1}));
  EXPECT_FALSE(star.Accepts(Word{1, 0}));
  EXPECT_FALSE(star.Accepts(Word{1, 0, 1, 1}));
}

TEST(Nfa, LargerAlphabet) {
  // Over {0,1,2}: words where symbol 2 appears at least once.
  Nfa nfa = SubstringNfa(Word{2}, 3);
  auto oracle = [](const Word& w) {
    return std::find(w.begin(), w.end(), Symbol{2}) != w.end();
  };
  for (int n = 0; n <= 6; ++n) {
    EXPECT_EQ(WordsWhere(3, n, [&](const Word& w) { return nfa.Accepts(w); }),
              WordsWhere(3, n, oracle));
  }
}

TEST(Nfa, ToStringContainsTransitions) {
  Nfa nfa(2);
  nfa.AddStates(2);
  nfa.SetInitial(0);
  nfa.AddAccepting(1);
  nfa.AddTransition(0, 1, 1);
  std::string s = nfa.ToString();
  EXPECT_NE(s.find("0 --1--> 1"), std::string::npos);
  EXPECT_NE(s.find("accepting={1}"), std::string::npos);
}

}  // namespace
}  // namespace nfacount
