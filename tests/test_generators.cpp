// Tests for the workload-family generators: structural validity plus the
// closed-form language sizes each family is designed to have.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "automata/generators.hpp"
#include "counting/exact.hpp"
#include "test_seed.hpp"
#include "util/rng.hpp"

namespace nfacount {
namespace {

using testing_support::TestSeed;

TEST(Generators, RandomNfaIsValidAndLive) {
  Rng rng(TestSeed(1));
  for (int trial = 0; trial < 20; ++trial) {
    Nfa nfa = RandomNfa(5 + trial % 7, 0.2, 0.3, rng);
    ASSERT_TRUE(nfa.Validate().ok());
    EXPECT_TRUE(nfa.accepting().Any());
    // Forced liveness: every state has an outgoing edge on every symbol.
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      for (int a = 0; a < 2; ++a) {
        EXPECT_FALSE(nfa.Successors(q, static_cast<Symbol>(a)).empty());
      }
    }
  }
}

TEST(Generators, RandomNfaDeterministicPerRngState) {
  Rng rng1(9), rng2(9);
  Nfa a = RandomNfa(6, 0.3, 0.2, rng1);
  Nfa b = RandomNfa(6, 0.3, 0.2, rng2);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(Generators, CombinationLockClosedForm) {
  Nfa lock = CombinationLock(Word{1, 0, 1, 1});
  for (int n = 0; n <= 10; ++n) {
    Result<BigUint> count = BruteForceCount(lock, n);
    ASSERT_TRUE(count.ok());
    if (n < 4) {
      EXPECT_TRUE(count->IsZero());
    } else {
      EXPECT_EQ(*count, BigUint::Pow2(static_cast<uint32_t>(n - 4)));
    }
  }
}

TEST(Generators, SubstringNfaMatchesNaiveSearch) {
  Word pattern{1, 1, 0};
  Nfa nfa = SubstringNfa(pattern);
  for (int n = 0; n <= 9; ++n) {
    Word w(n, 0);
    int64_t total = int64_t{1} << n;
    for (int64_t x = 0; x < total; ++x) {
      for (int i = 0; i < n; ++i) w[i] = static_cast<Symbol>((x >> i) & 1);
      bool found = false;
      for (int i = 0; i + 3 <= n && !found; ++i) {
        found = (w[i] == 1 && w[i + 1] == 1 && w[i + 2] == 0);
      }
      ASSERT_EQ(nfa.Accepts(w), found) << WordToString(w);
    }
  }
}

TEST(Generators, ParityNfaCountsOnes) {
  Nfa nfa = ParityNfa(3, 1);
  for (int n = 0; n <= 8; ++n) {
    Word w(n, 0);
    int64_t total = int64_t{1} << n;
    for (int64_t x = 0; x < total; ++x) {
      int ones = 0;
      for (int i = 0; i < n; ++i) {
        w[i] = static_cast<Symbol>((x >> i) & 1);
        ones += w[i];
      }
      ASSERT_EQ(nfa.Accepts(w), ones % 3 == 1);
    }
  }
}

TEST(Generators, UnionOfLocksOverlapStructure) {
  // Lock j's language is {w : w[j] = 1}: the union over j = 0..k-1 of
  // length-n words is 2^n − 2^{n-k} (inclusion-exclusion), while the naive
  // sum of per-lock sizes is k·2^{n-1} — heavy overlap by design.
  Nfa nfa = UnionOfLocks(3, 4);
  ASSERT_TRUE(nfa.Validate().ok());
  const int n = 6;
  Result<BigUint> exact = BruteForceCount(nfa, n);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->ToU64(), 64u - 8u);  // 2^6 - 2^{6-3}
  // Naive sum would report 3·2^5 = 96 > 64: overlap is real.
  // With count > len the special positions wrap: locks 0/2 and 1/3 coincide,
  // union = {w0=1 or w1=1} over length 4 = 16 - 4.
  Nfa wrap = UnionOfLocks(4, 2);
  Result<BigUint> wrap_count = BruteForceCount(wrap, 4);
  ASSERT_TRUE(wrap_count.ok());
  EXPECT_EQ(wrap_count->ToU64(), 12u);
}

TEST(Generators, AmbiguousChainAcceptsEverythingLongEnough) {
  Nfa nfa = AmbiguousChain(4);
  // Needs at least 3 steps to move 0 -> 3.
  EXPECT_FALSE(nfa.Accepts(Word{1, 1}));
  Word w(8, 0);
  EXPECT_TRUE(nfa.Accepts(w));
  Result<BigUint> count = BruteForceCount(nfa, 8);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, BigUint::Pow2(8));  // every length-8 word accepted
}

TEST(Generators, DivisibilityNfaIsCorrectNumerically) {
  Nfa nfa = DivisibilityNfa(5);
  for (int n = 1; n <= 10; ++n) {
    Word w(n, 0);
    int64_t total = int64_t{1} << n;
    for (int64_t x = 0; x < total; ++x) {
      uint64_t value = 0;
      for (int i = 0; i < n; ++i) {
        w[i] = static_cast<Symbol>((x >> i) & 1);
        value = value * 2 + w[i];  // MSB-first numeral
      }
      ASSERT_EQ(nfa.Accepts(w), value % 5 == 0) << WordToString(w);
    }
  }
}

TEST(Generators, ReverseDeterministicHasUniquePredecessors) {
  Rng rng(TestSeed(3));
  Nfa nfa = ReverseDeterministic(8, rng);
  ASSERT_TRUE(nfa.Validate().ok());
  // Reversal of a DFA: each (state, symbol) has at most one predecessor
  // among non-initial mirror states (the fresh initial may add more edges,
  // but mirror states inherit DFA-function edges backwards).
  // Weaker functional check: the language is nonempty and the automaton trims
  // cleanly (it was trimmed by the generator).
  Bitset useful = nfa.ReachableStates();
  useful &= nfa.CoReachableStates();
  EXPECT_EQ(useful.Count(), static_cast<size_t>(nfa.num_states()));
}

TEST(Generators, DenseCompleteNfaCountsPowers) {
  Nfa nfa = DenseCompleteNfa(4);
  for (int n = 0; n <= 10; ++n) {
    Result<BigUint> count = BruteForceCount(nfa, n);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, BigUint::Pow2(static_cast<uint32_t>(n)));
  }
}

TEST(Generators, SparseNeedleSingleton) {
  Word needle{1, 0, 0, 1, 1};
  Nfa nfa = SparseNeedle(needle);
  Result<BigUint> count = BruteForceCount(nfa, 5);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->ToU64(), 1u);
  EXPECT_TRUE(nfa.Accepts(needle));
  EXPECT_FALSE(nfa.Accepts(Word{1, 0, 0, 1, 0}));
  // Wrong lengths are rejected.
  Result<BigUint> count4 = BruteForceCount(nfa, 4);
  ASSERT_TRUE(count4.ok());
  EXPECT_TRUE(count4->IsZero());
}

TEST(Generators, StandardFamiliesAllValid) {
  for (const FamilyInstance& family : StandardFamilies(5, 8, 42)) {
    SCOPED_TRACE(family.name);
    EXPECT_TRUE(family.nfa.Validate().ok());
    EXPECT_GE(family.nfa.num_states(), 1);
  }
  // Family list is stable in size and names are unique.
  auto families = StandardFamilies(5, 8, 42);
  std::set<std::string> names;
  for (const auto& f : families) names.insert(f.name);
  EXPECT_EQ(names.size(), families.size());
  EXPECT_EQ(families.size(), 10u);
}

}  // namespace
}  // namespace nfacount
