// Unit tests for the statistics helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace nfacount {
namespace {

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.1), 1.4);
}

TEST(Quantile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(Quantile({5, 1, 3}, 0.5), 3.0);
}

TEST(Quantile, EmptyReturnsZero) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(RelativeError(1, 0)));
  EXPECT_DOUBLE_EQ(RelativeError(-50, -100), 0.5);
}

TEST(EmpiricalTvToUniform, PerfectUniformIsZero) {
  std::map<std::string, int64_t> h = {{"a", 25}, {"b", 25}, {"c", 25}, {"d", 25}};
  EXPECT_NEAR(EmpiricalTvToUniform(h, 100, 4), 0.0, 1e-12);
}

TEST(EmpiricalTvToUniform, PointMassVsUniform) {
  std::map<std::string, int64_t> h = {{"a", 100}};
  // TV(point mass, uniform over 4) = 1 - 1/4.
  EXPECT_NEAR(EmpiricalTvToUniform(h, 100, 4), 0.75, 1e-12);
}

TEST(EmpiricalTvToUniform, MissingOutcomesCount) {
  std::map<std::string, int64_t> h = {{"a", 50}, {"b", 50}};
  // p = (1/2, 1/2, 0, 0) vs (1/4 x4): TV = (1/4+1/4+1/4+1/4)/2 = 1/2... wait:
  // sum |p-u| = 2*(1/4) + 2*(1/4) = 1, halved = 1/2.
  EXPECT_NEAR(EmpiricalTvToUniform(h, 100, 4), 0.5, 1e-12);
}

TEST(EmpiricalTv, IdenticalDistributionsZero) {
  std::map<std::string, int64_t> a = {{"x", 10}, {"y", 30}};
  std::map<std::string, int64_t> b = {{"x", 20}, {"y", 60}};  // same after norm
  EXPECT_NEAR(EmpiricalTv(a, b), 0.0, 1e-12);
}

TEST(EmpiricalTv, DisjointSupportsIsOne) {
  std::map<std::string, int64_t> a = {{"x", 10}};
  std::map<std::string, int64_t> b = {{"y", 10}};
  EXPECT_NEAR(EmpiricalTv(a, b), 1.0, 1e-12);
}

TEST(EmpiricalTv, PartialOverlap) {
  std::map<std::string, int64_t> a = {{"x", 50}, {"y", 50}};
  std::map<std::string, int64_t> b = {{"y", 50}, {"z", 50}};
  // |1/2-0| + |1/2-1/2| + |0-1/2| = 1, halved = 1/2.
  EXPECT_NEAR(EmpiricalTv(a, b), 0.5, 1e-12);
}

TEST(ChiSquareUniform, UniformHistogramIsZero) {
  std::map<std::string, int64_t> h = {{"a", 10}, {"b", 10}};
  EXPECT_NEAR(ChiSquareUniform(h, 20, 2), 0.0, 1e-12);
}

TEST(ChiSquareUniform, KnownValue) {
  std::map<std::string, int64_t> h = {{"a", 30}, {"b", 10}};
  // expected 20 each: (10^2 + 10^2)/20 = 10.
  EXPECT_NEAR(ChiSquareUniform(h, 40, 2), 10.0, 1e-12);
}

TEST(HoeffdingSamples, MatchesFormula) {
  // n = ln(2/δ)/(2ε²)
  EXPECT_EQ(HoeffdingSamples(0.1, 0.05),
            static_cast<int64_t>(std::ceil(std::log(40.0) / 0.02)));
  EXPECT_GT(HoeffdingSamples(0.01, 0.05), HoeffdingSamples(0.1, 0.05));
}

TEST(LogLogSlope, RecoversPolynomialDegree) {
  std::vector<double> xs = {1, 2, 4, 8, 16};
  std::vector<double> cubes, squares;
  for (double x : xs) {
    cubes.push_back(x * x * x);
    squares.push_back(7.0 * x * x);  // scale factor must not matter
  }
  EXPECT_NEAR(LogLogSlope(xs, cubes), 3.0, 1e-9);
  EXPECT_NEAR(LogLogSlope(xs, squares), 2.0, 1e-9);
}

TEST(LogLogSlope, NoisyDataApproximates) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, 4.0) * (1.0 + 0.01 * ((i % 2) ? 1 : -1)));
  }
  EXPECT_NEAR(LogLogSlope(xs, ys), 4.0, 0.05);
}

}  // namespace
}  // namespace nfacount
