#include "counting/exact.hpp"

#include <cassert>
#include <cmath>

namespace nfacount {

Result<BigUint> BruteForceCount(const Nfa& nfa, int n, int64_t max_words) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  double total = std::pow(static_cast<double>(nfa.alphabet_size()), n);
  if (total > static_cast<double>(max_words)) {
    return Status::ResourceExhausted("brute force over " + std::to_string(total) +
                                     " words exceeds budget");
  }
  BigUint count;
  Word word(n, 0);
  const int k = nfa.alphabet_size();
  while (true) {
    if (nfa.Accepts(word)) count += BigUint(1);
    // Odometer increment.
    int i = n - 1;
    while (i >= 0 && word[i] == k - 1) {
      word[i] = 0;
      --i;
    }
    if (i < 0) break;
    ++word[i];
  }
  return count;
}

Result<BigUint> ExactCountViaDfa(const Nfa& nfa, int n, int max_dfa_states) {
  Dfa dfa(1, 1);
  NFA_ASSIGN_OR_RETURN(dfa, Determinize(nfa, max_dfa_states));
  return dfa.CountWordsOfLength(n);
}

Result<SubsetDp> SubsetDp::Run(const Nfa& nfa, int n, int max_subsets) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  SubsetDp dp;
  dp.nfa_ = &nfa;
  dp.n_ = n;
  dp.levels_.resize(n + 1);

  Bitset start(nfa.num_states());
  start.Set(nfa.initial());
  dp.levels_[0].emplace(std::move(start), BigUint(1));

  for (int level = 1; level <= n; ++level) {
    auto& cur = dp.levels_[level];
    for (const auto& [subset, count] : dp.levels_[level - 1]) {
      for (int a = 0; a < nfa.alphabet_size(); ++a) {
        Bitset next = nfa.Step(subset, static_cast<Symbol>(a));
        if (next.None()) continue;  // dead words need no tracking
        cur[next] += count;
      }
    }
    if (static_cast<int>(cur.size()) > max_subsets) {
      return Status::ResourceExhausted("subset DP exceeded " +
                                       std::to_string(max_subsets) +
                                       " subsets at level " + std::to_string(level));
    }
  }
  return dp;
}

BigUint SubsetDp::StateLevelCount(StateId q, int level) const {
  assert(level >= 0 && level <= n_);
  BigUint total;
  for (const auto& [subset, count] : levels_[level]) {
    if (subset.Test(q)) total += count;
  }
  return total;
}

BigUint SubsetDp::AcceptedCount(int level) const {
  assert(level >= 0 && level <= n_);
  BigUint total;
  for (const auto& [subset, count] : levels_[level]) {
    if (subset.Intersects(nfa_->accepting())) total += count;
  }
  return total;
}

namespace {

// Shared frontier-pruned enumeration; `accept` decides on the final frontier.
template <typename AcceptFn>
Status EnumerateWithPruning(const Nfa& nfa, int n, int64_t max_words,
                            AcceptFn&& accept, std::vector<Word>* out) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  Word word;
  word.reserve(n);
  std::vector<Bitset> frontiers;
  frontiers.reserve(n + 1);
  Bitset start(nfa.num_states());
  start.Set(nfa.initial());
  frontiers.push_back(std::move(start));

  // Iterative DFS in lexicographic order.
  struct Level {
    int next_symbol = 0;
  };
  std::vector<Level> stack(1);
  while (!stack.empty()) {
    if (static_cast<int>(word.size()) == n) {
      if (accept(frontiers.back())) {
        if (static_cast<int64_t>(out->size()) >= max_words) {
          return Status::ResourceExhausted("enumeration exceeded word budget");
        }
        out->push_back(word);
      }
      stack.pop_back();
      if (!word.empty()) {
        word.pop_back();
        frontiers.pop_back();
      }
      continue;
    }
    Level& top = stack.back();
    if (top.next_symbol >= nfa.alphabet_size()) {
      stack.pop_back();
      if (!word.empty()) {
        word.pop_back();
        frontiers.pop_back();
      }
      continue;
    }
    Symbol s = static_cast<Symbol>(top.next_symbol++);
    Bitset next = nfa.Step(frontiers.back(), s);
    if (next.None()) continue;  // prune dead branch
    word.push_back(s);
    frontiers.push_back(std::move(next));
    stack.emplace_back();
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Word>> EnumerateAccepted(const Nfa& nfa, int n,
                                            int64_t max_words) {
  std::vector<Word> out;
  NFA_RETURN_NOT_OK(EnumerateWithPruning(
      nfa, n, max_words,
      [&](const Bitset& frontier) { return frontier.Intersects(nfa.accepting()); },
      &out));
  return out;
}

Result<std::vector<Word>> EnumerateStateLevel(const Nfa& nfa, StateId q, int level,
                                              int64_t max_words) {
  std::vector<Word> out;
  NFA_RETURN_NOT_OK(EnumerateWithPruning(
      nfa, level, max_words,
      [&](const Bitset& frontier) { return frontier.Test(q); }, &out));
  return out;
}

}  // namespace nfacount
