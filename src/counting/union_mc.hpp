// Algorithm 1 of the paper: AppUnion — Monte-Carlo estimation of |∪ T_i| from
// per-set (membership oracle, pre-drawn sample list, size estimate) triples.
// A modification of the classic Karp-Luby union/DNF estimator [12]: instead
// of drawing fresh uniform samples from T_i, it consumes a pre-drawn list
// S_i; Theorem 1 gives the (ε,δ)(1+ε_sz) guarantee under the entangled
// uniform distribution.
//
// The estimator is templated over an Input type providing:
//   double  size_estimate() const;            // sz_i
//   int64_t num_samples()   const;            // |S_i|
//   const SampleT& Sample(int64_t idx) const; // S_i in draw order
//   bool    Contains(const SampleT&) const;   // membership oracle O_i
//
// A resampling variant (fresh draws, classic Karp-Luby) is provided for the
// DNF application and as a test oracle.

#ifndef NFACOUNT_COUNTING_UNION_MC_HPP_
#define NFACOUNT_COUNTING_UNION_MC_HPP_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nfacount {

/// Batched membership oracle for AppUnion's covered-earlier checks.
///
/// Algorithm 1 asks, for a trial sample σ drawn from input i, whether σ lies
/// in any earlier set T_0..T_{i-1} — classically a loop of up to i individual
/// membership probes. When every sample carries a membership *profile* (a
/// Bitset with bit q set iff σ ∈ T-of-owner-q, cf. StoredSample::reach) the
/// whole loop collapses to one word-parallel intersection against a
/// precomputed prefix mask {owner_0, ..., owner_{i-1}}: O(m/64) instead of
/// O(i) dependent probes.
///
/// The object is a reusable scratch: Rebuild() re-derives the prefix masks
/// for one AppUnionBatched call without reallocating when sizes repeat.
class MembershipBatch {
 public:
  MembershipBatch() = default;

  /// Prepares prefix masks over a universe of `universe_bits` owner ids for
  /// the ordered owner list of one AppUnion call: prefix i covers
  /// owners[0..i).
  void Rebuild(size_t universe_bits, const std::vector<int>& owners);

  /// Covered-earlier check for a trial drawn from input `i`: true iff the
  /// sample's membership profile intersects {owners[0..i)}. Answers i probes
  /// in one scan.
  bool CoveredBefore(const Bitset& profile, size_t i) const {
    return profile.Intersects(prefix_[i]);
  }

  /// Same check over a raw profile-word span (the SampleBlock slab form; no
  /// per-sample Bitset needs to exist). The caller passes the kernel table
  /// so a trial loop fetches the dispatch once, not once per trial.
  bool CoveredBefore(const uint64_t* profile, size_t profile_words,
                     size_t i, const simd::BitsetKernels& kern) const {
    assert(profile_words == prefix_[i].words().size());
    return kern.intersects(profile, prefix_[i].words().data(), profile_words);
  }

  /// Number of inputs the current prefix masks cover.
  size_t size() const { return prefix_.size(); }

 private:
  std::vector<Bitset> prefix_;
};

/// Caller-owned scratch for AppUnionBatched, reused across the thousands of
/// calls one FPRAS run makes: the prefix-mask membership index and the flat
/// trial-draw table (both rebuild in place without reallocating when sizes
/// repeat).
///
/// Thread safety: the AppUnion* estimators are pure functions of (inputs,
/// params, scratch, rng) — concurrent calls are safe iff each thread owns
/// its scratch and its Rng (the level-sweep executor keeps one
/// AppUnionScratch per worker slot; see FprasEngine::WorkerScratch).
struct AppUnionScratch {
  MembershipBatch batch;  ///< covered-earlier prefix masks
  DiscreteTable table;    ///< prefix-sum index-draw table over the k sizes
};

/// What to do when an input's sample list runs out mid-call.
///
/// At faithful constants this is the low-probability Line-8 event of Alg. 1
/// (Theorem 1 Part 2 bounds it): the paper breaks out, and the Y/t estimate
/// silently loses the missing trials. Under calibrated constants ns can be
/// smaller than t, making starvation systematic — and the Y/t bias compounds
/// multiplicatively per level. kRecycle wraps the cursor (the list is an
/// empirical stand-in for "uniform with replacement", so re-reading it is the
/// natural calibrated semantics); kScaleByCompleted renormalizes by the
/// completed trial count instead.
enum class StarvationPolicy {
  kBreak,            ///< paper-faithful: stop, divide by the full t
  kScaleByCompleted, ///< stop, divide by completed trials
  kRecycle,          ///< wrap the cursor and keep drawing (calibrated default)
};

/// Parameters of one AppUnion invocation.
struct AppUnionParams {
  double eps = 0.1;    ///< multiplicative accuracy ε of this call
  double delta = 0.1;  ///< failure probability δ of this call
  double eps_sz = 0.0; ///< accuracy (1+ε_sz) of the input size estimates

  /// Calibration multiplier on the worst-case trial count (DESIGN.md §2,
  /// "Substitutions"). 1.0 = the paper's constant.
  double trial_scale = 1.0;
  int64_t min_trials = 8;               ///< floor applied after scaling
  int64_t max_trials = int64_t{1} << 40;///< cap applied after scaling

  /// What to do when a sample list runs out (see StarvationPolicy).
  StarvationPolicy starvation = StarvationPolicy::kBreak;
};

/// Diagnostics of one AppUnion invocation.
struct AppUnionOutcome {
  double estimate = 0.0;        ///< (Y/t)·Σ sz
  int64_t trials = 0;           ///< t
  int64_t completed_trials = 0; ///< < t only when starved
  int64_t hits = 0;             ///< Y
  bool starved = false;         ///< some S_i ran out (Line 8 of Alg. 1)
  int64_t membership_checks = 0;
};

/// Trial count t = trial_scale · ceil(12·(1+ε_sz)²·m̄/ε²·ln(4/δ)), clamped,
/// with m̄ = ceil(Σ sz / max sz) (Alg. 1 lines 2-3).
int64_t AppUnionTrialCount(const AppUnionParams& params, double sum_sz,
                           double max_sz);

/// Sample-list length the analysis requires:
/// thresh = 24·(1+ε_sz)²/ε²·ln(4k/δ) (Theorem 1).
double AppUnionThresh(const AppUnionParams& params, int64_t k);

/// Algorithm 1. `inputs` are non-owning pointers; per-input read cursors are
/// local to this call (lists are not mutated, see DESIGN.md §4).
template <typename Input>
AppUnionOutcome AppUnion(const std::vector<const Input*>& inputs,
                         const AppUnionParams& params, Rng& rng) {
  AppUnionOutcome out;
  const int k = static_cast<int>(inputs.size());
  if (k == 0) return out;

  std::vector<double> sizes(k);
  double sum_sz = 0.0, max_sz = 0.0;
  for (int i = 0; i < k; ++i) {
    sizes[i] = inputs[i]->size_estimate();
    sum_sz += sizes[i];
    max_sz = std::max(max_sz, sizes[i]);
  }
  if (!(sum_sz > 0.0)) return out;  // all inputs empty: the union is empty

  const int64_t t = AppUnionTrialCount(params, sum_sz, max_sz);
  out.trials = t;

  std::vector<int64_t> cursor(k, 0);
  for (int64_t trial = 0; trial < t; ++trial) {
    int i = rng.DiscreteIndex(sizes);
    if (i < 0) break;
    if (cursor[i] >= inputs[i]->num_samples()) {  // Line 8: starvation
      out.starved = true;
      if (params.starvation == StarvationPolicy::kRecycle &&
          inputs[i]->num_samples() > 0) {
        cursor[i] = 0;  // wrap: re-read the list from the front
      } else {
        break;
      }
    }
    const auto& sample = inputs[i]->Sample(cursor[i]++);
    bool covered_earlier = false;
    for (int j = 0; j < i; ++j) {
      ++out.membership_checks;
      if (inputs[j]->Contains(sample)) {
        covered_earlier = true;
        break;
      }
    }
    if (!covered_earlier) ++out.hits;
    ++out.completed_trials;
  }

  const double denom =
      (params.starvation == StarvationPolicy::kScaleByCompleted &&
       out.completed_trials > 0)
          ? static_cast<double>(out.completed_trials)
          : static_cast<double>(t);
  out.estimate = (static_cast<double>(out.hits) / denom) * sum_sz;
  return out;
}

/// Membership-profile customization point for AppUnionBatched: where a
/// sample's profile words live. The default template handles
/// StoredSample-likes (a `.reach` Bitset member); span-backed sample types
/// (e.g. SampleRef in automata/unrolled.hpp) declare non-template overloads
/// next to their definition, which win at instantiation time.
template <typename S>
inline const uint64_t* ProfileWordsData(const S& s) {
  return s.reach.words().data();
}
template <typename S>
inline size_t ProfileWordsCount(const S& s) {
  return s.reach.words().size();
}

/// Algorithm 1 with batched membership (the CSR-hot-path variant of
/// AppUnion). Identical estimator and identical RNG stream — given the same
/// inputs, params, and rng state it returns the same estimate as AppUnion —
/// but the covered-earlier loop is replaced by one word-parallel prefix-mask
/// intersection per trial (see MembershipBatch). Input extends the AppUnion
/// concept with:
///   int    owner()    const;  // dense id of the set's owning state
///   size_t universe() const;  // owner-id universe size (m for NFA states)
/// and Sample(idx) must return a value whose membership profile over that
/// universe (true at bit q iff the sample lies in the set owned by q) is
/// reachable via ProfileWordsData/ProfileWordsCount — a StoredSample's
/// `.reach` Bitset, or a SampleRef's raw slab span.
///
/// `scratch` is caller-owned so repeated calls (one per (q, ℓ, b) in
/// Algorithm 3) reuse the prefix-mask and draw-table storage.
/// `membership_checks` counts answered probes (i per trial) to stay
/// comparable with the legacy loop's upper bound.
template <typename Input>
AppUnionOutcome AppUnionBatched(const std::vector<const Input*>& inputs,
                                const AppUnionParams& params,
                                AppUnionScratch& scratch, Rng& rng) {
  AppUnionOutcome out;
  const int k = static_cast<int>(inputs.size());
  if (k == 0) return out;

  std::vector<double> sizes(k);
  std::vector<int> owners(k);
  double sum_sz = 0.0, max_sz = 0.0;
  for (int i = 0; i < k; ++i) {
    sizes[i] = inputs[i]->size_estimate();
    owners[i] = inputs[i]->owner();
    sum_sz += sizes[i];
    max_sz = std::max(max_sz, sizes[i]);
  }
  if (!(sum_sz > 0.0)) return out;  // all inputs empty: the union is empty
  scratch.batch.Rebuild(inputs[0]->universe(), owners);
  // The k size estimates are fixed for all t trials: draw through a flat
  // prefix-sum table (O(log k), bit-identical selection to DiscreteIndex).
  scratch.table.Rebuild(sizes);

  const int64_t t = AppUnionTrialCount(params, sum_sz, max_sz);
  out.trials = t;

  const simd::BitsetKernels& kern = simd::ActiveKernels();
  std::vector<int64_t> cursor(k, 0);
  for (int64_t trial = 0; trial < t; ++trial) {
    int i = scratch.table.Draw(rng);
    if (i < 0) break;
    if (cursor[i] >= inputs[i]->num_samples()) {  // Line 8: starvation
      out.starved = true;
      if (params.starvation == StarvationPolicy::kRecycle &&
          inputs[i]->num_samples() > 0) {
        cursor[i] = 0;  // wrap: re-read the list from the front
      } else {
        break;
      }
    }
    const auto& sample = inputs[i]->Sample(cursor[i]++);
    out.membership_checks += i;
    const bool covered_earlier =
        i > 0 && scratch.batch.CoveredBefore(ProfileWordsData(sample),
                                             ProfileWordsCount(sample),
                                             static_cast<size_t>(i), kern);
    if (!covered_earlier) ++out.hits;
    ++out.completed_trials;
  }

  const double denom =
      (params.starvation == StarvationPolicy::kScaleByCompleted &&
       out.completed_trials > 0)
          ? static_cast<double>(out.completed_trials)
          : static_cast<double>(t);
  out.estimate = (static_cast<double>(out.hits) / denom) * sum_sz;
  return out;
}

/// Classic Karp-Luby variant: draws fresh samples via Input::Draw(rng) with
/// exact sizes — the [12] algorithm AppUnion modifies. Input requirements:
///   double size_estimate() const;
///   SampleT Draw(Rng&) const;
///   bool Contains(const SampleT&) const;
template <typename Input>
AppUnionOutcome AppUnionResample(const std::vector<const Input*>& inputs,
                                 const AppUnionParams& params, Rng& rng) {
  AppUnionOutcome out;
  const int k = static_cast<int>(inputs.size());
  if (k == 0) return out;

  std::vector<double> sizes(k);
  double sum_sz = 0.0, max_sz = 0.0;
  for (int i = 0; i < k; ++i) {
    sizes[i] = inputs[i]->size_estimate();
    sum_sz += sizes[i];
    max_sz = std::max(max_sz, sizes[i]);
  }
  if (!(sum_sz > 0.0)) return out;

  const int64_t t = AppUnionTrialCount(params, sum_sz, max_sz);
  out.trials = t;
  for (int64_t trial = 0; trial < t; ++trial) {
    int i = rng.DiscreteIndex(sizes);
    if (i < 0) break;
    auto sample = inputs[i]->Draw(rng);
    bool covered_earlier = false;
    for (int j = 0; j < i; ++j) {
      ++out.membership_checks;
      if (inputs[j]->Contains(sample)) {
        covered_earlier = true;
        break;
      }
    }
    if (!covered_earlier) ++out.hits;
    ++out.completed_trials;
  }
  out.estimate =
      (static_cast<double>(out.hits) / static_cast<double>(t)) * sum_sz;
  return out;
}

}  // namespace nfacount

#endif  // NFACOUNT_COUNTING_UNION_MC_HPP_
