// Exact #NFA counters. All are worst-case exponential (the problem is
// #P-hard); they exist to anchor tests and accuracy benchmarks on instances
// small enough to count exactly.
//
// Three independent implementations cross-validate each other:
//  1. brute-force word enumeration (ground truth for tiny n),
//  2. on-the-fly subset-construction DP (also yields per-(q,ℓ) counts
//     |L(q^ℓ)| — the quantities the FPRAS estimates via Inv-1),
//  3. determinize-then-DP via the Dfa module.

#ifndef NFACOUNT_COUNTING_EXACT_HPP_
#define NFACOUNT_COUNTING_EXACT_HPP_

#include <unordered_map>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "util/bigint.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Exact |L(A_n)| by enumerating all |Σ|^n words. Fails with
/// ResourceExhausted when |Σ|^n exceeds `max_words`.
Result<BigUint> BruteForceCount(const Nfa& nfa, int n,
                                int64_t max_words = 1 << 22);

/// Exact |L(A_n)| via Determinize + DFA transfer DP.
Result<BigUint> ExactCountViaDfa(const Nfa& nfa, int n,
                                 int max_dfa_states = 1 << 20);

/// On-the-fly subset DP over levels 0..n. A level's table maps each distinct
/// reach-set R (a DFA state) to the number of length-ℓ words w with
/// Reach(w) = R; since each word contributes to exactly one R, the counts
/// partition Σ^ℓ and
///     |L(q^ℓ)| = Σ_{R ∋ q} table[R],   |L(A_ℓ)| = Σ_{R ∩ F ≠ ∅} table[R].
class SubsetDp {
 public:
  /// Runs the DP; fails with ResourceExhausted if any level materializes more
  /// than `max_subsets` distinct reach sets.
  static Result<SubsetDp> Run(const Nfa& nfa, int n, int max_subsets = 1 << 16);

  int n() const { return n_; }

  /// Exact |L(q^ℓ)| (the target of the FPRAS per-state estimates N(q^ℓ)).
  BigUint StateLevelCount(StateId q, int level) const;

  /// Exact |L(A_ℓ)|.
  BigUint AcceptedCount(int level) const;

  /// Number of distinct reach sets at `level` (DFA width of the level).
  int64_t NumSubsets(int level) const {
    return static_cast<int64_t>(levels_[level].size());
  }

 private:
  SubsetDp() = default;
  const Nfa* nfa_ = nullptr;
  int n_ = 0;
  std::vector<std::unordered_map<Bitset, BigUint, BitsetHash>> levels_;
};

/// All length-n words accepted by the NFA, lexicographically sorted. Prunes
/// on empty frontiers; fails if more than `max_words` accepted words exist.
Result<std::vector<Word>> EnumerateAccepted(const Nfa& nfa, int n,
                                            int64_t max_words = 1 << 20);

/// All words of L(q^ℓ) (length-ℓ words whose reach set contains q), sorted.
Result<std::vector<Word>> EnumerateStateLevel(const Nfa& nfa, StateId q, int level,
                                              int64_t max_words = 1 << 20);

}  // namespace nfacount

#endif  // NFACOUNT_COUNTING_EXACT_HPP_
