// Exact counting for unambiguous NFAs (UFAs) — the tractable frontier that
// frames the paper's hardness story: counting accepting *paths* is a trivial
// DP, and for a UFA (no word has two accepting runs) paths and words
// coincide, so #UFA ∈ FP while general #NFA is #P-hard. The library uses
// this as a fast exact anchor whenever the instance happens to be
// unambiguous, and to cross-check the FPRAS.

#ifndef NFACOUNT_COUNTING_UNAMBIGUOUS_HPP_
#define NFACOUNT_COUNTING_UNAMBIGUOUS_HPP_

#include "automata/nfa.hpp"
#include "util/bigint.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Decides whether the NFA is unambiguous: no word (of any length) has two
/// distinct accepting runs. Self-product construction over reachable state
/// pairs — O(m²·|Δ|) time/space.
Result<bool> IsUnambiguous(const Nfa& nfa);

/// Number of accepting runs over all length-n words: the plain path-counting
/// transfer DP (each accepting run counted once). Always exact for what it
/// counts; equals |L(A_n)| exactly when the automaton is unambiguous.
BigUint CountAcceptingRuns(const Nfa& nfa, int n);

/// Exact |L(A_n)| for unambiguous automata; fails with FailedPrecondition if
/// the automaton is ambiguous (then only the FPRAS or determinization apply).
Result<BigUint> ExactCountUnambiguous(const Nfa& nfa, int n);

}  // namespace nfacount

#endif  // NFACOUNT_COUNTING_UNAMBIGUOUS_HPP_
