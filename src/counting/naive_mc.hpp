// Naive Monte-Carlo baseline: sample uniform length-n words, multiply the
// acceptance rate by |Σ|^n. Cheap per sample but NOT an FPRAS — the sample
// complexity needed for relative error blows up as |L(A_n)| / |Σ|^n → 0
// (benchmark E1/E3 demonstrate the failure regime the paper motivates).

#ifndef NFACOUNT_COUNTING_NAIVE_MC_HPP_
#define NFACOUNT_COUNTING_NAIVE_MC_HPP_

#include <cstdint>

#include "automata/nfa.hpp"
#include "util/rng.hpp"

namespace nfacount {

/// Result of a naive Monte-Carlo run.
struct NaiveMcResult {
  double estimate = 0.0;         ///< acceptance_rate · |Σ|^n
  double acceptance_rate = 0.0;  ///< fraction of sampled words accepted
  int64_t samples = 0;
  int64_t accepted = 0;
};

/// Draws `samples` uniform words of length n and scales the hit rate.
NaiveMcResult NaiveMonteCarloCount(const Nfa& nfa, int n, int64_t samples,
                                   Rng& rng);

/// Number of naive samples needed for (ε, δ) relative accuracy given the
/// acceptance probability p = |L|/|Σ|^n (multiplicative Chernoff):
/// ~ 3·ln(2/δ)/(ε²·p). Illustrates the 1/p blow-up.
double NaiveSamplesNeeded(double eps, double delta, double acceptance_prob);

}  // namespace nfacount

#endif  // NFACOUNT_COUNTING_NAIVE_MC_HPP_
