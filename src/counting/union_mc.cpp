#include "counting/union_mc.hpp"

#include <algorithm>
#include <cassert>

namespace nfacount {

int64_t AppUnionTrialCount(const AppUnionParams& params, double sum_sz,
                           double max_sz) {
  assert(params.eps > 0.0 && params.delta > 0.0);
  assert(sum_sz > 0.0 && max_sz > 0.0);
  const double m_bar = std::ceil(sum_sz / max_sz);
  const double one_plus = 1.0 + params.eps_sz;
  double t = 12.0 * one_plus * one_plus * m_bar / (params.eps * params.eps) *
             std::log(4.0 / params.delta);
  t *= params.trial_scale;
  t = std::ceil(t);
  const double clamped =
      std::min(static_cast<double>(params.max_trials),
               std::max(static_cast<double>(params.min_trials), t));
  return static_cast<int64_t>(clamped);
}

double AppUnionThresh(const AppUnionParams& params, int64_t k) {
  assert(params.eps > 0.0 && params.delta > 0.0 && k >= 1);
  const double one_plus = 1.0 + params.eps_sz;
  return 24.0 * one_plus * one_plus / (params.eps * params.eps) *
         std::log(4.0 * static_cast<double>(k) / params.delta);
}

}  // namespace nfacount
