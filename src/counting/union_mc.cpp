#include "counting/union_mc.hpp"

#include <algorithm>
#include <cassert>

namespace nfacount {

void MembershipBatch::Rebuild(size_t universe_bits,
                              const std::vector<int>& owners) {
  prefix_.resize(owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    if (prefix_[i].size() != universe_bits) {
      prefix_[i] = Bitset(universe_bits);
    } else {
      prefix_[i].Clear();
    }
    if (i > 0) {
      prefix_[i].CopyFrom(prefix_[i - 1]);
      prefix_[i].Set(static_cast<size_t>(owners[i - 1]));
    }
  }
}

int64_t AppUnionTrialCount(const AppUnionParams& params, double sum_sz,
                           double max_sz) {
  assert(params.eps > 0.0 && params.delta > 0.0);
  assert(sum_sz > 0.0 && max_sz > 0.0);
  const double m_bar = std::ceil(sum_sz / max_sz);
  const double one_plus = 1.0 + params.eps_sz;
  double t = 12.0 * one_plus * one_plus * m_bar / (params.eps * params.eps) *
             std::log(4.0 / params.delta);
  t *= params.trial_scale;
  t = std::ceil(t);
  const double clamped =
      std::min(static_cast<double>(params.max_trials),
               std::max(static_cast<double>(params.min_trials), t));
  return static_cast<int64_t>(clamped);
}

double AppUnionThresh(const AppUnionParams& params, int64_t k) {
  assert(params.eps > 0.0 && params.delta > 0.0 && k >= 1);
  const double one_plus = 1.0 + params.eps_sz;
  return 24.0 * one_plus * one_plus / (params.eps * params.eps) *
         std::log(4.0 * static_cast<double>(k) / params.delta);
}

}  // namespace nfacount
