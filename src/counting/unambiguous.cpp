#include "counting/unambiguous.hpp"

#include <cassert>
#include <queue>
#include <vector>

namespace nfacount {

Result<bool> IsUnambiguous(const Nfa& nfa) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  const int m = nfa.num_states();

  // Pair graph over states (p, q) reachable from (I, I) by the same word.
  // The automaton is ambiguous iff some reachable off-diagonal pair can
  // complete to a pair of accepting states with a common suffix (two runs on
  // the same word that differ somewhere — possibly only at the end).
  auto pair_id = [m](int p, int q) { return p * m + q; };
  std::vector<bool> forward(static_cast<size_t>(m) * m, false);
  std::queue<std::pair<int, int>> frontier;
  forward[pair_id(nfa.initial(), nfa.initial())] = true;
  frontier.emplace(nfa.initial(), nfa.initial());
  while (!frontier.empty()) {
    auto [p, q] = frontier.front();
    frontier.pop();
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      for (StateId pn : nfa.Successors(p, static_cast<Symbol>(a))) {
        for (StateId qn : nfa.Successors(q, static_cast<Symbol>(a))) {
          if (!forward[pair_id(pn, qn)]) {
            forward[pair_id(pn, qn)] = true;
            frontier.emplace(pn, qn);
          }
        }
      }
    }
  }

  // Backward: pairs that can reach (f1, f2) with both accepting by a common
  // suffix.
  std::vector<bool> backward(static_cast<size_t>(m) * m, false);
  nfa.accepting().ForEachSet([&](int f1) {
    nfa.accepting().ForEachSet([&](int f2) {
      if (!backward[pair_id(f1, f2)]) {
        backward[pair_id(f1, f2)] = true;
        frontier.emplace(f1, f2);
      }
    });
  });
  while (!frontier.empty()) {
    auto [p, q] = frontier.front();
    frontier.pop();
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      for (StateId pp : nfa.Predecessors(p, static_cast<Symbol>(a))) {
        for (StateId qp : nfa.Predecessors(q, static_cast<Symbol>(a))) {
          if (!backward[pair_id(pp, qp)]) {
            backward[pair_id(pp, qp)] = true;
            frontier.emplace(pp, qp);
          }
        }
      }
    }
  }

  for (int p = 0; p < m; ++p) {
    for (int q = 0; q < m; ++q) {
      if (p != q && forward[pair_id(p, q)] && backward[pair_id(p, q)]) {
        return false;
      }
    }
  }
  return true;
}

BigUint CountAcceptingRuns(const Nfa& nfa, int n) {
  assert(nfa.Validate().ok());
  assert(n >= 0);
  // runs[q] = number of length-ℓ runs from the initial state ending in q.
  std::vector<BigUint> runs(nfa.num_states());
  runs[nfa.initial()] = BigUint(1);
  for (int step = 0; step < n; ++step) {
    std::vector<BigUint> next(nfa.num_states());
    for (StateId q = 0; q < nfa.num_states(); ++q) {
      if (runs[q].IsZero()) continue;
      for (int a = 0; a < nfa.alphabet_size(); ++a) {
        for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
          next[r] += runs[q];
        }
      }
    }
    runs = std::move(next);
  }
  BigUint total;
  nfa.accepting().ForEachSet([&](int f) { total += runs[f]; });
  return total;
}

Result<BigUint> ExactCountUnambiguous(const Nfa& nfa, int n) {
  bool unambiguous = false;
  NFA_ASSIGN_OR_RETURN(unambiguous, IsUnambiguous(nfa));
  if (!unambiguous) {
    return Status::FailedPrecondition(
        "automaton is ambiguous: run counting would overcount words");
  }
  return CountAcceptingRuns(nfa, n);
}

}  // namespace nfacount
