#include "counting/naive_mc.hpp"

#include <cassert>
#include <cmath>

namespace nfacount {

NaiveMcResult NaiveMonteCarloCount(const Nfa& nfa, int n, int64_t samples,
                                   Rng& rng) {
  assert(nfa.Validate().ok());
  assert(samples > 0);
  NaiveMcResult out;
  out.samples = samples;
  Word word(n);
  const uint64_t k = static_cast<uint64_t>(nfa.alphabet_size());
  for (int64_t i = 0; i < samples; ++i) {
    for (int j = 0; j < n; ++j) {
      word[j] = static_cast<Symbol>(rng.UniformU64(k));
    }
    if (nfa.Accepts(word)) ++out.accepted;
  }
  out.acceptance_rate =
      static_cast<double>(out.accepted) / static_cast<double>(out.samples);
  out.estimate = out.acceptance_rate *
                 std::pow(static_cast<double>(nfa.alphabet_size()), n);
  return out;
}

double NaiveSamplesNeeded(double eps, double delta, double acceptance_prob) {
  assert(eps > 0.0 && delta > 0.0 && delta < 1.0);
  if (acceptance_prob <= 0.0) return INFINITY;
  return 3.0 * std::log(2.0 / delta) / (eps * eps * acceptance_prob);
}

}  // namespace nfacount
