#include "fpras/plane.hpp"

#include <algorithm>

namespace nfacount {

void SampleArena::EnsureGroupSizes(int rows, int num_classes) {
  if (static_cast<size_t>(rows) > group_sizes.capacity()) {
    ++vector_alloc_events_;
  }
  if (group_sizes.size() < static_cast<size_t>(rows)) {
    group_sizes.resize(static_cast<size_t>(rows));
  }
  for (auto& sizes : group_sizes) {
    if (static_cast<size_t>(num_classes) > sizes.capacity()) {
      ++vector_alloc_events_;
      sizes.reserve(static_cast<size_t>(num_classes));
    }
  }
}

void SampleArena::PrepareRun(int max_batch, int max_word_len, size_t bits,
                             int num_classes) {
  const int b = std::max(max_batch, 1);
  const int len = std::max(max_word_len, 1);
  cur.Reshape(b, bits);
  next.Reshape(b, bits);
  word_stride_ = static_cast<size_t>(len);
  Ensure(symbols, static_cast<size_t>(b) * word_stride_);
  Ensure(phi, static_cast<size_t>(b));
  Ensure(rng, static_cast<size_t>(b));
  Ensure(group_of, static_cast<size_t>(b));
  Ensure(next_group_of, static_cast<size_t>(b));
  Ensure(state_of, static_cast<size_t>(b));
  Ensure(outcome_of, static_cast<size_t>(b));
  Ensure(group_total, static_cast<size_t>(b));
  Ensure(group_ready, static_cast<size_t>(b));
  Ensure(child_of, static_cast<size_t>(b) * num_classes);
  EnsureGroupSizes(b, num_classes);
  accepted.reserve(static_cast<size_t>(b));
  if (frontier_scratch.size() != bits) {
    frontier_scratch = Bitset(bits);
    descent_scratch = Bitset(bits);
    expand_scratch = Bitset(bits);
    profile_cur = Bitset(bits);
    profile_next = Bitset(bits);
  }
}

void SampleArena::BeginBatch(int batch, int word_len, size_t bits,
                             int num_classes) {
  // PrepareRun reserved for the widest batch; reshaping within that capacity
  // never allocates.
  cur.Reshape(batch, bits);
  next.Reshape(batch, bits);
  word_stride_ = static_cast<size_t>(std::max(word_len, 1));
  Ensure(symbols, static_cast<size_t>(batch) * word_stride_);
  Ensure(phi, static_cast<size_t>(batch));
  Ensure(rng, static_cast<size_t>(batch));
  Ensure(group_of, static_cast<size_t>(batch));
  Ensure(next_group_of, static_cast<size_t>(batch));
  Ensure(state_of, static_cast<size_t>(batch));
  Ensure(outcome_of, static_cast<size_t>(batch));
  Ensure(group_total, static_cast<size_t>(batch));
  Ensure(group_ready, static_cast<size_t>(batch));
  Ensure(child_of, static_cast<size_t>(batch) * num_classes);
  EnsureGroupSizes(batch, num_classes);
  accepted.clear();
}

int64_t SampleArena::bytes_reserved() const {
  int64_t total = cur.bytes_reserved() + next.bytes_reserved();
  total += static_cast<int64_t>(symbols.capacity() * sizeof(Symbol));
  total += static_cast<int64_t>(phi.capacity() * sizeof(double));
  total += static_cast<int64_t>(rng.capacity() * sizeof(Rng));
  total += static_cast<int64_t>((group_of.capacity() +
                                 next_group_of.capacity() +
                                 child_of.capacity() + accepted.capacity()) *
                                sizeof(int32_t));
  total += static_cast<int64_t>(
      (state_of.capacity() + outcome_of.capacity() + group_ready.capacity()) *
      sizeof(uint8_t));
  total += static_cast<int64_t>(group_total.capacity() * sizeof(double));
  for (const auto& sizes : group_sizes) {
    total += static_cast<int64_t>(sizes.capacity() * sizeof(double));
  }
  return total;
}

int64_t SampleArena::alloc_events() const {
  return vector_alloc_events_ + cur.alloc_events() + next.alloc_events();
}

}  // namespace nfacount
