// Almost-uniform generation from L(A_n) — the companion problem the FPRAS is
// built from (Jerrum-Valiant-Vazirani inter-reducibility, §1.1 of the paper).
// WordSampler owns one FPRAS engine run and serves repeated draws; each draw
// retries Algorithm 2 until it returns a word (Theorem 2(2): each attempt
// succeeds with probability ≥ 2/(3e²) given accurate tables).
//
// Draws run on the engine's flat CSR hot path (see automata/unrolled.hpp) by
// default; SamplerOptions::csr_hot_path re-enables the legacy pointer-walk
// layout for the E11 old-vs-new benchmark.

#ifndef NFACOUNT_FPRAS_SAMPLER_HPP_
#define NFACOUNT_FPRAS_SAMPLER_HPP_

#include <memory>
#include <optional>
#include <vector>

#include "fpras/estimator.hpp"

namespace nfacount {

/// Options for building a WordSampler.
struct SamplerOptions {
  /// TV-closeness parameter of the sample distribution (plays the role of ε).
  double eps = 0.2;
  /// Failure probability of the table-building FPRAS run.
  double delta = 0.1;
  /// Constant-factor calibration of the worst-case budgets (params.hpp).
  Calibration calibration = Calibration::Practical();
  /// Seed of the engine run and of all draws.
  uint64_t seed = 0xa110ca7eULL;
  /// Give up after this many rejected attempts per draw (well beyond the
  /// Theorem 2(2) bound; exceeding it indicates inaccurate tables).
  int max_attempts_per_draw = 4096;
  /// Run draws on the CSR/batched-membership hot path (false = legacy
  /// layout; identical distribution, only slower — see FprasParams).
  bool csr_hot_path = true;
  /// Worker threads of the table-building FPRAS run (1 = sequential, 0 = all
  /// hardware threads). Tables, estimates, and every subsequent draw are
  /// bit-identical for any value — see FprasParams::num_threads.
  int num_threads = 1;
  /// Candidate walks advanced in lockstep per plane sweep (0 = engine
  /// default). The draw sequence is bit-identical for every value — wider
  /// batches only let one sweep amortize the per-call union estimate over
  /// more accepted draws. See FprasParams::batch_width.
  int batch_width = 0;
  /// SIMD kernel table for the sampling plane (false = scalar; identical
  /// draws either way). See FprasParams::simd_kernels.
  bool simd_kernels = true;
  /// Cross-batch descent-cache entry budget (0 disables, -1 = engine
  /// default). Draw streams are bit-identical at every value — the cache
  /// only removes repeated per-(level, frontier) descent work. See
  /// FprasParams::descent_cache_capacity.
  int64_t descent_cache_capacity = -1;
  /// Symbol-class alphabet compression (same envelope either way; the two
  /// settings draw from different substreams). See
  /// FprasParams::symbol_classes.
  bool symbol_classes = true;
};

/// Draws words almost-uniformly from L(A_n).
class WordSampler {
 public:
  /// Runs the FPRAS once to build tables. Fails if the NFA is invalid.
  static Result<WordSampler> Build(const Nfa& nfa, int n,
                                   const SamplerOptions& options = {});

  /// One almost-uniform word, or NotFound if the language is empty /
  /// ResourceExhausted if every attempt was rejected.
  Result<Word> Sample();

  /// One draw returned together with its reach profile (the membership-
  /// oracle row AppUnion consumers store), computed on the forward CSR in
  /// one pass — the form downstream union estimates want, without a second
  /// simulation of the word.
  Result<StoredSample> SampleStored();

  /// `count` independent draws (each retried as in Sample()).
  Result<std::vector<Word>> SampleMany(int64_t count);

  /// Estimate of |L(A_n)| from the underlying FPRAS run.
  double CountEstimate() const { return engine_->Estimate(); }

  /// Counters of the underlying engine run plus all draws so far.
  const FprasDiagnostics& diagnostics() const { return engine_->diagnostics(); }

 private:
  WordSampler(const Nfa* nfa, std::unique_ptr<FprasEngine> engine,
              SamplerOptions options)
      : nfa_(nfa), engine_(std::move(engine)), options_(options) {}

  const Nfa* nfa_;
  std::unique_ptr<FprasEngine> engine_;
  SamplerOptions options_;
  /// Accepted words already produced by the engine's lockstep batches but
  /// not yet handed out: one plane sweep typically accepts several walks,
  /// and each Sample() call pops the next one in attempt order (so the draw
  /// sequence is independent of the batch width).
  std::vector<Word> queue_;
  size_t queue_next_ = 0;
};

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_SAMPLER_HPP_
