// Almost-uniform generation from L(A_n) — the companion problem the FPRAS is
// built from (Jerrum-Valiant-Vazirani inter-reducibility, §1.1 of the paper).
// WordSampler owns one FPRAS engine run and serves repeated draws; each draw
// retries Algorithm 2 until it returns a word (Theorem 2(2): each attempt
// succeeds with probability ≥ 2/(3e²) given accurate tables).

#ifndef NFACOUNT_FPRAS_SAMPLER_HPP_
#define NFACOUNT_FPRAS_SAMPLER_HPP_

#include <memory>
#include <optional>
#include <vector>

#include "fpras/estimator.hpp"

namespace nfacount {

/// Options for building a WordSampler.
struct SamplerOptions {
  /// TV-closeness parameter of the sample distribution (plays the role of ε).
  double eps = 0.2;
  double delta = 0.1;
  Calibration calibration = Calibration::Practical();
  uint64_t seed = 0xa110ca7eULL;
  /// Give up after this many rejected attempts per draw (well beyond the
  /// Theorem 2(2) bound; exceeding it indicates inaccurate tables).
  int max_attempts_per_draw = 4096;
};

/// Draws words almost-uniformly from L(A_n).
class WordSampler {
 public:
  /// Runs the FPRAS once to build tables. Fails if the NFA is invalid.
  static Result<WordSampler> Build(const Nfa& nfa, int n,
                                   const SamplerOptions& options = {});

  /// One almost-uniform word, or NotFound if the language is empty /
  /// ResourceExhausted if every attempt was rejected.
  Result<Word> Sample();

  /// `count` independent draws (each retried as in Sample()).
  Result<std::vector<Word>> SampleMany(int64_t count);

  /// Estimate of |L(A_n)| from the underlying FPRAS run.
  double CountEstimate() const { return engine_->Estimate(); }

  const FprasDiagnostics& diagnostics() const { return engine_->diagnostics(); }

 private:
  WordSampler(const Nfa* nfa, std::unique_ptr<FprasEngine> engine,
              SamplerOptions options)
      : nfa_(nfa), engine_(std::move(engine)), options_(options) {}

  const Nfa* nfa_;
  std::unique_ptr<FprasEngine> engine_;
  SamplerOptions options_;
};

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_SAMPLER_HPP_
