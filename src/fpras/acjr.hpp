// ACJR-style baseline (Arenas, Croquevielle, Jayaram, Riveros; STOC'19 /
// JACM'21): the comparator the paper improves on.
//
// Substitution note (DESIGN.md §2): no public implementation of the ACJR
// FPRAS exists, and its worst-case constants are even further from feasible
// than this paper's. Both algorithms instantiate the template of Fig. 1; the
// complexity gap the paper reports is driven by (a) the per-(state,level)
// sample budget — O(m⁷n⁷/ε⁷) for ACJR vs ~O(n⁴/ε²) here — and (b) the union
// bound regime (2^{mn} events vs mn events). This module therefore runs the
// shared template with the ACJR budget (Schedule::kAcjr), which reproduces
// the quantity the paper actually compares (samples per state and the time
// blow-up it induces). Benchmarks E2-E5 sweep both schedules.

#ifndef NFACOUNT_FPRAS_ACJR_HPP_
#define NFACOUNT_FPRAS_ACJR_HPP_

#include "fpras/estimator.hpp"

namespace nfacount {

/// ApproxCount with the ACJR sample schedule (identical template otherwise).
/// Calibration applies the same way as for the fast schedule, so the two are
/// directly comparable at equal calibration.
Result<CountEstimate> ApproxCountAcjr(const Nfa& nfa, int n,
                                      CountOptions options = CountOptions());

/// Ratio ns_acjr / ns_faster at the given parameters (uncalibrated): the
/// sample-complexity gap reported in the paper's abstract.
double ScheduleSampleRatio(int m, int n, double eps, double delta);

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_ACJR_HPP_
