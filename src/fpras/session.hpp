// EngineSession — the incremental, multi-query surface over the resumable
// LevelState pipeline (fpras/estimator.hpp).
//
// Algorithm 3's invariants make every prefix of a run reusable: after the
// sweep has computed levels 0..ℓ, the Inv-1 count estimates answer |L(A_j)|
// for every j ≤ ℓ and the Inv-2 sample multisets serve almost-uniform word
// draws at every j ≤ ℓ — and computing level ℓ+1 needs only level ℓ. A
// session therefore amortizes one expensive sweep across many queries:
//
//   auto session = EngineSession::Create(nfa, /*horizon=*/64, options);
//   session->CountAtLength(16);   // runs levels 1..16, answers
//   session->CountAtLength(12);   // already computed: O(1) + one union
//   session->SampleWords(16, 10); // draws against the same tables
//   session->CountAtLength(32);   // extends 17..32 — no recomputation
//   session->Save("run.ckpt");    // binary checkpoint (fpras/checkpoint.hpp)
//
// The horizon fixes the parameter derivation (β = ε/4n², ns, xns are
// functions of n): every answer the session ever gives carries the accuracy
// envelope of a fresh ApproxCount at the horizon, and extension past the
// horizon is refused rather than silently degrading the guarantee.
//
// Determinism contract (inherited from the engine's content-keyed RNG
// substreams): a session extended incrementally, resumed from a checkpoint —
// even on different num_threads / batch_width / SIMD / layout knobs — and a
// fresh uninterrupted run at the same (nfa, horizon, eps, delta, schedule,
// calibration, seed) produce bit-identical estimates, per-(q,ℓ) tables, and
// draw sequences (tests/test_session.cpp, tests/test_checkpoint.cpp).
//
// Concurrent-read seam (serve mode, docs/ARCHITECTURE.md "Serve mode"): the
// Shared* accessors answer queries from the published prefix of computed
// levels while at most ONE thread extends the session (ExtendTo /
// CountAtLength / CountFor / SampleWords are writer-side). ExtendTo
// publishes each level — and its cached |L(A_ℓ)| estimate — with release
// ordering as soon as the sweep finishes it, so readers see level-complete
// prefixes mid-extension and never block each other: SharedCountAtLength /
// SharedCountFor are lock-free, and SharedSampleWords serializes only
// against other draws (one internal mutex around the shared draw cursor),
// never against counts. Reader answers are bit-identical to a quiesced
// session at the same length — the published values ARE the single-threaded
// values, cached rather than recomputed.

#ifndef NFACOUNT_FPRAS_SESSION_HPP_
#define NFACOUNT_FPRAS_SESSION_HPP_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpras/estimator.hpp"

namespace nfacount {

/// Runtime knobs that may be changed when resuming a session: worker
/// threads, lockstep batch width, kernel table, transition layout, and the
/// symbol-class layer. All except `symbol_classes` can never change a result
/// — only wall-clock time; `symbol_classes` is envelope-preserving rather
/// than bit-preserving (see FprasParams::symbol_classes).
struct SessionKnobs {
  int num_threads = 1;       ///< see FprasParams::num_threads
  int batch_width = 0;       ///< see FprasParams::batch_width (0 = default)
  bool simd_kernels = true;  ///< see FprasParams::simd_kernels
  bool csr_hot_path = true;  ///< see FprasParams::csr_hot_path
  /// Descent-cache entry budget for the resumed session (-1 keeps the
  /// built-in default). Runtime-only like the other knobs: checkpoints do
  /// not serialize it, and results are bit-identical at every value. See
  /// FprasParams::descent_cache_capacity.
  int64_t descent_cache_capacity = -1;
  /// Tri-state symbol-class override: -1 keeps the checkpointed setting
  /// (checkpoints DO serialize this one), 0 disables the class layer, 1
  /// enables it. Flipping the setting mid-session changes which
  /// content-keyed RNG substreams future levels and draws consume, so
  /// resumed results stay within the accuracy envelope but are not
  /// bit-identical to the unflipped run.
  int symbol_classes = -1;
};

class EngineSession;

/// Forward declaration of the checkpoint loader (fpras/checkpoint.hpp).
Result<EngineSession> LoadSessionCheckpoint(const std::string& path,
                                            const SessionKnobs* knobs);

/// A long-lived FPRAS run serving count and sampling queries at any computed
/// length, extensible level by level up to its horizon, and persistable as a
/// binary checkpoint. Owns a private copy of the automaton, so the session
/// (and its checkpoints) are self-contained. Movable, not copyable.
class EngineSession {
 public:
  /// Hard cap on `count` per SampleWords / SharedSampleWords call. Bounds
  /// the result-vector allocation and keeps the per-call rejection budget
  /// (kAttemptsPerDraw * count) far from int64 overflow, so an absurd count
  /// is a clean InvalidArgument instead of a bad_alloc. Larger requests
  /// chunk into multiple calls — the draw stream concatenates seamlessly.
  static constexpr int64_t kMaxDrawsPerCall = int64_t{1} << 20;

  /// Builds a session for `nfa` with parameters derived at `horizon` and
  /// computes level 0 only — level sweeps run lazily on the first query or
  /// ExtendTo. All CountOptions fields apply (eps, delta, schedule,
  /// calibration, seed, behavior flags, threads/batch/simd).
  static Result<EngineSession> Create(const Nfa& nfa, int horizon,
                                      const CountOptions& options);

  /// Advances the level sweep until `level` is computed; no-op when already
  /// there. OutOfRange when level exceeds the horizon (the parameter
  /// derivation cannot be extended in place — create a session with a larger
  /// horizon instead).
  Status ExtendTo(int level);

  /// (ε,δ)-estimate of |L(A_length)| — extends the sweep as needed. Every
  /// length shares the horizon's accuracy envelope.
  Result<double> CountAtLength(int length);

  /// N(q^length), the per-state count estimate (0 for unreachable copies);
  /// extends the sweep as needed.
  Result<double> CountFor(StateId q, int length);

  /// Draws `count` almost-uniform words from L(A_length), extending the
  /// sweep as needed. Consumes the session's counter-keyed draw streams, so
  /// the concatenation of all SampleWords results is one deterministic
  /// sequence — checkpoint save/restore continues it seamlessly. NotFound
  /// when the language at this length is estimated empty; ResourceExhausted
  /// when the per-draw rejection budget is exceeded (inaccurate tables);
  /// Invalid when `count` is negative or exceeds kMaxDrawsPerCall.
  Result<std::vector<Word>> SampleWords(int length, int64_t count);

  /// Writes the full session state to `path` as a versioned binary
  /// checkpoint (see docs/FILE_FORMATS.md "Session checkpoints").
  Status Save(const std::string& path) const;

  /// Restores a session from a checkpoint written by Save(). The optional
  /// `knobs` override the saved runtime knobs (results are knob-invariant).
  static Result<EngineSession> Load(const std::string& path,
                                    const SessionKnobs* knobs = nullptr);

  /// Rebuilds a session from already-deserialized parts (the checkpoint
  /// loader's entry point; usable by any other storage backend). Validates
  /// via FprasEngine::RestoreComputedState.
  static Result<EngineSession> Restore(std::unique_ptr<Nfa> nfa,
                                       const FprasParams& params,
                                       uint64_t seed, int computed_level,
                                       std::vector<LevelState> levels,
                                       int64_t draw_cursor);

  // --- Concurrent-read surface (serve mode) -------------------------------
  //
  // Safe to call from any number of reader threads while one other thread
  // extends the session; see the "Concurrent-read seam" file comment. All
  // other mutating entry points (ExtendTo and the query methods above,
  // Save) are writer-side: callers must ensure at most one of them runs at
  // a time, and none runs concurrently with itself.

  /// Highest level whose estimate is published to readers (acquire-load;
  /// trails computed_level() only inside an ExtendTo step).
  int published_level() const;

  /// |L(A_length)| from the published estimate cache. Never extends and
  /// never blocks: FailedPrecondition when `length` is beyond the published
  /// prefix (the caller decides whether to extend or fail the query).
  Result<double> SharedCountAtLength(int length) const;

  /// N(q^length) read directly from the frozen published level (lock-free).
  /// Same visibility rule as SharedCountAtLength.
  Result<double> SharedCountFor(StateId q, int length) const;

  /// Draws `count` words from L(A_length) against the published prefix,
  /// serialized against other draws by an internal mutex (counts are never
  /// blocked). The chunk consumes the same counter-keyed draw stream as
  /// SampleWords: if `cursor_start` is non-null it receives the draw-cursor
  /// value at which this chunk began, so concurrent callers can reassemble
  /// their chunks into the deterministic single-threaded sequence.
  Result<std::vector<Word>> SharedSampleWords(int length, int64_t count,
                                              int64_t* cursor_start = nullptr);

  /// Approximate bytes held live by the computed tables (the eviction
  /// budget's input). Reads only published levels, so it may run while an
  /// extension is in flight — the number then trails by the level in flight.
  int64_t ApproxResidentBytes() const;

  /// Thread-safe snapshot of the shared caches' atomic counters — the
  /// serve-mode stats surface (diagnostics() requires quiescence).
  FprasEngine::CacheCounters cache_counters() const {
    return engine_->cache_counters();
  }

  // ------------------------------------------------------------------------

  /// Highest level computed so far (0 right after Create).
  int computed_level() const { return engine_->computed_level(); }
  /// The immutable maximum level of this session.
  int horizon() const { return engine_->horizon(); }
  /// The session's private automaton copy.
  const Nfa& nfa() const { return *nfa_; }
  /// Fully derived parameters (fixed at the horizon).
  const FprasParams& params() const { return engine_->params(); }
  /// Seed of the whole randomized session.
  uint64_t seed() const { return seed_; }
  /// Counters accumulated over every extension and draw so far. Not part of
  /// checkpoints: a resumed session restarts its counters at zero.
  const FprasDiagnostics& diagnostics() const {
    return engine_->diagnostics();
  }
  /// The underlying engine (table inspection, invariant tests).
  const FprasEngine& engine() const { return *engine_; }

 private:
  /// Reader-visible state published by the writer: the level fence and the
  /// per-level estimate cache behind it. Held by unique_ptr so the session
  /// stays movable (atomics and mutexes are not) and so reader threads keep
  /// a stable address across moves of the session object itself.
  struct ReadPlane {
    /// Highest level whose estimate (and frozen LevelState) readers may
    /// touch. Release-stored by the writer after estimates[ℓ] is written.
    std::atomic<int> published{-1};
    /// estimates[ℓ] = |L(A_ℓ)| for ℓ <= published; written once, then
    /// immutable (the engine's content-keyed estimate is deterministic, so
    /// the cached value equals any recomputation bit for bit).
    std::vector<double> estimates;
    /// Serializes SharedSampleWords chunks: the draw cursor is one shared
    /// sequential stream (that is the determinism contract, not a limit).
    std::mutex draw_mu;
  };

  EngineSession(std::unique_ptr<Nfa> nfa, std::unique_ptr<FprasEngine> engine,
                uint64_t seed);

  /// Validates a query length against the horizon as Status (the session
  /// surface reports misuse as errors, not NFA_CHECK aborts).
  Status CheckLength(int length) const;

  std::unique_ptr<Nfa> nfa_;         ///< owned copy; engine_ points into it
  std::unique_ptr<FprasEngine> engine_;
  uint64_t seed_ = 0;
  std::unique_ptr<ReadPlane> plane_; ///< never null after construction
};

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_SESSION_HPP_
