#include "fpras/amplify.hpp"

#include <algorithm>
#include <cmath>

namespace nfacount {

namespace {

void AccumulateDiagnostics(FprasDiagnostics* total, const FprasDiagnostics& d) {
  total->appunion_calls += d.appunion_calls;
  total->appunion_trials += d.appunion_trials;
  total->membership_checks += d.membership_checks;
  total->starvations += d.starvations;
  total->memo_hits += d.memo_hits;
  total->memo_misses += d.memo_misses;
  total->sample_calls += d.sample_calls;
  total->sample_success += d.sample_success;
  total->fail_phi_gt_1 += d.fail_phi_gt_1;
  total->fail_bernoulli += d.fail_bernoulli;
  total->fail_dead_branch += d.fail_dead_branch;
  total->padded_words += d.padded_words;
  total->perturbed_counts += d.perturbed_counts;
  total->states_processed += d.states_processed;
  total->wall_seconds += d.wall_seconds;
}

}  // namespace

int MedianRunsForConfidence(double delta) {
  if (!(delta > 0.0 && delta < 1.0)) return 1;
  int k = static_cast<int>(std::ceil(8.0 * std::log(1.0 / delta)));
  if (k < 1) k = 1;
  if (k % 2 == 0) ++k;
  return k;
}

Result<AmplifiedEstimate> ApproxCountMedian(const Nfa& nfa, int n,
                                            const CountOptions& options,
                                            int runs) {
  if (runs < 1) return Status::Invalid("runs must be >= 1");
  AmplifiedEstimate out;
  out.runs.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    CountOptions per_run = options;
    // Independent streams; golden-ratio stride keeps seeds well-separated.
    per_run.seed = options.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    CountEstimate estimate;
    NFA_ASSIGN_OR_RETURN(estimate, ApproxCount(nfa, n, per_run));
    out.runs.push_back(estimate.estimate);
    AccumulateDiagnostics(&out.total_diag, estimate.diagnostics);
  }
  std::sort(out.runs.begin(), out.runs.end());
  const size_t mid = out.runs.size() / 2;
  out.estimate = (out.runs.size() % 2 == 1)
                     ? out.runs[mid]
                     : 0.5 * (out.runs[mid - 1] + out.runs[mid]);
  if (out.estimate > 0.0) {
    out.spread = (out.runs.back() - out.runs.front()) / out.estimate;
  }
  return out;
}

Result<AdaptiveEstimate> ApproxCountAdaptive(const Nfa& nfa, int n,
                                             const AdaptiveOptions& options) {
  if (!(options.agreement > 0.0)) {
    return Status::Invalid("agreement must be > 0");
  }
  if (options.max_rounds < 2) {
    return Status::Invalid("max_rounds must be >= 2 (need two rounds to agree)");
  }
  AdaptiveEstimate out;
  Calibration cal = options.base.calibration;
  double previous = -1.0;
  for (int round = 0; round < options.max_rounds; ++round) {
    CountOptions per_round = options.base;
    per_round.calibration = cal;
    per_round.seed = options.base.seed + 0x517cc1b727220a95ULL * round;
    CountEstimate estimate;
    NFA_ASSIGN_OR_RETURN(estimate, ApproxCount(nfa, n, per_round));
    out.trajectory.push_back(estimate.estimate);
    out.estimate = estimate.estimate;
    out.final_calibration = cal;
    out.rounds = round + 1;

    if (round > 0) {
      const bool both_zero = previous == 0.0 && estimate.estimate == 0.0;
      const bool close =
          previous > 0.0 &&
          std::abs(estimate.estimate / previous - 1.0) <= options.agreement;
      if (both_zero || close) {
        out.converged = true;
        return out;
      }
    }
    previous = estimate.estimate;
    // Double the budgets (floors double too, so small instances progress).
    cal.ns_scale *= 2.0;
    cal.trial_scale *= 2.0;
    cal.ns_floor *= 2;
    cal.trial_floor *= 2;
  }
  return out;
}

}  // namespace nfacount
