#include "fpras/sampler.hpp"

namespace nfacount {

Result<WordSampler> WordSampler::Build(const Nfa& nfa, int n,
                                       const SamplerOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(Schedule::kFaster, nfa.num_states(),
                                         std::max(n, 1), options.eps,
                                         options.delta, options.calibration));
  params.n = n == 0 ? 0 : params.n;
  params.csr_hot_path = options.csr_hot_path;
  params.num_threads = options.num_threads;
  auto engine = std::make_unique<FprasEngine>(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine->Run());
  return WordSampler(&nfa, std::move(engine), options);
}

Result<Word> WordSampler::Sample() {
  const int n = engine_->params().n;
  if (n == 0) {
    if (nfa_->IsAccepting(nfa_->initial())) return Word{};
    return Status::NotFound("L(A_0) is empty");
  }
  if (!(engine_->Estimate() > 0.0)) {
    return Status::NotFound("language estimated empty");
  }
  for (int attempt = 0; attempt < options_.max_attempts_per_draw; ++attempt) {
    std::optional<Word> word = engine_->SampleAcceptedWord();
    if (word.has_value()) return *std::move(word);
  }
  return Status::ResourceExhausted(
      "all sampling attempts rejected; tables likely inaccurate");
}

Result<StoredSample> WordSampler::SampleStored() {
  Word word;
  NFA_ASSIGN_OR_RETURN(word, Sample());
  return engine_->unrolled().MakeSample(std::move(word));
}

Result<std::vector<Word>> WordSampler::SampleMany(int64_t count) {
  std::vector<Word> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Word w;
    NFA_ASSIGN_OR_RETURN(w, Sample());
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace nfacount
