#include "fpras/sampler.hpp"

namespace nfacount {

Result<WordSampler> WordSampler::Build(const Nfa& nfa, int n,
                                       const SamplerOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(Schedule::kFaster, nfa.num_states(),
                                         std::max(n, 1), options.eps,
                                         options.delta, options.calibration));
  params.n = n == 0 ? 0 : params.n;
  params.csr_hot_path = options.csr_hot_path;
  params.num_threads = options.num_threads;
  params.batch_width = options.batch_width;
  params.simd_kernels = options.simd_kernels;
  if (options.descent_cache_capacity >= 0) {
    params.descent_cache_capacity = options.descent_cache_capacity;
  }
  params.symbol_classes = options.symbol_classes;
  auto engine = std::make_unique<FprasEngine>(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine->Run());
  return WordSampler(&nfa, std::move(engine), options);
}

Result<Word> WordSampler::Sample() {
  const int n = engine_->params().n;
  if (n == 0) {
    if (nfa_->IsAccepting(nfa_->initial())) return Word{};
    return Status::NotFound("L(A_0) is empty");
  }
  if (!(engine_->Estimate() > 0.0)) {
    return Status::NotFound("language estimated empty");
  }
  if (queue_next_ >= queue_.size()) {
    // Refill: run lockstep batches until at least one walk accepts. Every
    // accepted walk of the executed batches is an independent almost-
    // uniform draw, so the surplus serves the following Sample() calls.
    queue_.clear();
    queue_next_ = 0;
    const int64_t got = engine_->SampleAcceptedInto(
        nfa_->accepting(), n, options_.max_attempts_per_draw,
        /*min_accepts=*/1, &queue_);
    if (got == 0) {
      return Status::ResourceExhausted(
          "all sampling attempts rejected; tables likely inaccurate");
    }
  }
  return std::move(queue_[queue_next_++]);
}

Result<StoredSample> WordSampler::SampleStored() {
  Word word;
  NFA_ASSIGN_OR_RETURN(word, Sample());
  return engine_->unrolled().MakeSample(std::move(word));
}

Result<std::vector<Word>> WordSampler::SampleMany(int64_t count) {
  std::vector<Word> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Word w;
    NFA_ASSIGN_OR_RETURN(w, Sample());
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace nfacount
