// Umbrella header for the FPRAS public API:
//   ApproxCount()      — (ε,δ)-approximate |L(A_n)|        (Theorem 3)
//   WordSampler        — almost-uniform words from L(A_n)  (Theorem 2)
//   EngineSession      — incremental multi-query runs + binary checkpoints
//   ApproxCountAcjr()  — ACJR-schedule baseline            (comparator)

#ifndef NFACOUNT_FPRAS_FPRAS_HPP_
#define NFACOUNT_FPRAS_FPRAS_HPP_

#include "fpras/acjr.hpp"       // IWYU pragma: export
#include "fpras/amplify.hpp"    // IWYU pragma: export
#include "fpras/checkpoint.hpp" // IWYU pragma: export
#include "fpras/estimator.hpp"  // IWYU pragma: export
#include "fpras/params.hpp"     // IWYU pragma: export
#include "fpras/sampler.hpp"    // IWYU pragma: export
#include "fpras/session.hpp"    // IWYU pragma: export

#endif  // NFACOUNT_FPRAS_FPRAS_HPP_
