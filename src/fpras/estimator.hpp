// The FPRAS for #NFA (Algorithm 3 of the paper) and its sampling subroutine
// (Algorithm 2), implemented over the unrolled automaton.
//
// Execution outline (matching Fig. 1 / Algorithm 3):
//   level 0:  N(I⁰) = 1, S(I⁰) = [λ,...]; all other states empty;
//   level ℓ:  for each reachable q:
//       sz_b  = AppUnion over {(S(p^{ℓ-1}), N(p^{ℓ-1})) : p ∈ Pred(q,b)}
//       N(qℓ) = Σ_b sz_b          (w.p. 1−η/2n; else perturbed — line 16-19)
//       S(qℓ) = up to ns words from sample(ℓ, {q}, λ, 2/(3e·N(qℓ)), β, ·),
//               padded with a fixed witness word on shortfall (lines 27-30);
//   output:   N(q_F^n), or an AppUnion over accepting states when |F| > 1
//             (the paper's single-final-state assumption is WLOG).
//
// sample() (Algorithm 2) extends a suffix backwards: at level i it estimates
// sz_b = |∪_{p∈P_b} L(p^{i-1})| for each symbol b, draws b proportionally,
// divides the acceptance probability φ by pr_b, and recurses; at level 0 it
// returns the built word with probability φ (γ0·Π pr_b⁻¹ telescopes to the
// uniform γ0 per word — Theorem 2(1)).

#ifndef NFACOUNT_FPRAS_ESTIMATOR_HPP_
#define NFACOUNT_FPRAS_ESTIMATOR_HPP_

#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/nfa.hpp"
#include "automata/unrolled.hpp"
#include "counting/union_mc.hpp"
#include "fpras/params.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Counters accumulated over one engine run (all levels).
struct FprasDiagnostics {
  int64_t appunion_calls = 0;   ///< AppUnion invocations (Alg. 1 entries)
  int64_t appunion_trials = 0;  ///< completed AppUnion trials across calls
  /// Membership probes answered. On the batched hot path each trial counts
  /// its full prefix length i (the probes one mask intersection answers);
  /// the legacy loop counts probes until the first hit, so the batched
  /// number is an upper bound of the legacy one on the same run.
  int64_t membership_checks = 0;
  int64_t starvations = 0;      ///< AppUnion Line-8 events
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t sample_calls = 0;     ///< invocations of Algorithm 2
  int64_t sample_success = 0;
  int64_t fail_phi_gt_1 = 0;    ///< Fail1: φ > 1 at the base (Alg. 2 line 5)
  int64_t fail_bernoulli = 0;   ///< Fail2: returned ⊥ at the base (line 6)
  int64_t fail_dead_branch = 0; ///< all sz_b = 0 mid-walk (perturbation echo)
  int64_t padded_words = 0;     ///< Alg. 3 lines 27-30 (SmallS events)
  int64_t perturbed_counts = 0; ///< Alg. 3 line 19 events
  int64_t states_processed = 0; ///< reachable (q, ℓ) copies visited
  double wall_seconds = 0.0;    ///< wall-clock time of the Run() call
};

/// Per-(state, level) FPRAS state: the estimate N(q^ℓ) and sample set S(q^ℓ).
struct StateLevelData {
  double count_estimate = 0.0;       ///< N(q^ℓ)
  std::vector<StoredSample> samples; ///< S(q^ℓ), |S| == ns once filled
};

/// One full run of the FPRAS over a fixed (NFA, n). After Run() succeeds the
/// engine exposes the estimate, the per-(q,ℓ) table (for invariant tests) and
/// almost-uniform word sampling from any level set (the paper's uniform
/// generation application).
class FprasEngine {
 public:
  /// The NFA must outlive the engine.
  FprasEngine(const Nfa* nfa, FprasParams params, uint64_t seed);

  /// Executes Algorithm 3 over all levels. Idempotent (re-runs reset state).
  Status Run();

  /// Final estimate of |L(A_n)| (AppUnion over accepting states if |F| > 1).
  double Estimate() const { return final_estimate_; }

  /// Estimate of |L(A_ℓ)| for any ℓ ≤ n, from the same run: the DP maintains
  /// AccurateN at every level, so per-length counts come for free (each
  /// carries the same per-level (1±β)^ℓ ⊆ (1±ε) envelope). Run() must have
  /// succeeded.
  double EstimateAtLength(int level);

  /// N(q^ℓ); 0 for unreachable copies. Run() must have succeeded.
  double CountEstimateFor(StateId q, int level) const;

  /// S(q^ℓ) (empty for unreachable copies).
  const std::vector<StoredSample>& SamplesFor(StateId q, int level) const;

  /// Draws one word almost-uniformly from ∪_{q ∈ targets} L(q^level) using
  /// Algorithm 2 against the tables built by Run(); nullopt = rejection
  /// (caller retries; Theorem 2(2) bounds the rejection rate).
  std::optional<Word> SampleWord(const Bitset& targets, int level);

  /// Convenience: almost-uniform word from L(A_n) (accepting states at n).
  std::optional<Word> SampleAcceptedWord();

  const FprasParams& params() const { return params_; }
  const FprasDiagnostics& diagnostics() const { return diag_; }
  const UnrolledNfa& unrolled() const { return unrolled_; }

 private:
  /// sz_b for every symbol b of the decomposition of ∪_{q∈P} L(q^level)
  /// (Alg. 2 lines 8-11), via AppUnion with parameters (β, delta_param).
  /// `use_memo` joins the (level, P)-keyed cache shared by sample() calls.
  std::vector<double> UnionSizes(int level, const Bitset& state_set,
                                 double delta_param, bool use_memo);

  /// Algorithm 2 (iterative form). γ0 = phi0.
  std::optional<Word> SampleInternal(int level, const Bitset& state_set,
                                     double phi0);

  /// Refills S(q^ℓ) with xns attempts, padding to ns (Alg. 3 lines 20-30).
  void RefillSamples(StateId q, int level);

  /// StoredSample for `word` on the layout csr_hot_path selects.
  StoredSample MakeStored(Word word) const;

  double PerturbedCount(int level);

  /// |∪_{q ∈ targets∩reachable(level)} L(q^level)| estimate: N for a
  /// singleton, AppUnion over the members otherwise.
  double EstimateUnionOfStates(const Bitset& targets, int level);

  const Nfa* nfa_;
  FprasParams params_;
  UnrolledNfa unrolled_;
  Rng rng_;
  // Hot-path scratch: predecessor-expansion buffer (PredSetInto target) and
  // the reusable prefix-mask/draw-table scratch for AppUnionBatched. Both
  // avoid per-call allocation in the inner loops of Algorithms 2 and 3.
  Bitset pred_scratch_;
  AppUnionScratch union_scratch_;
  std::vector<std::vector<StateLevelData>> table_;  // [level][state]
  // Memo for sample()-context union sizes: per level, P-set -> sz vector.
  std::vector<std::unordered_map<Bitset, std::vector<double>, BitsetHash>> memo_;
  int64_t memo_entries_ = 0;
  double final_estimate_ = 0.0;
  FprasDiagnostics diag_;
  bool ran_ok_ = false;
};

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

/// User-facing options for ApproxCount.
struct CountOptions {
  double eps = 0.2;    ///< multiplicative accuracy ε of the estimate
  double delta = 0.1;  ///< failure probability δ
  Schedule schedule = Schedule::kFaster;  ///< sample-budget schedule to run
  /// Practical() by default: the faithful worst-case constants are
  /// infeasible on any hardware (DESIGN.md §2) — opt in via Faithful().
  Calibration calibration = Calibration::Practical();
  uint64_t seed = 0x5eedf00dULL;  ///< seed of the whole randomized run
  bool perturb_support = true;  ///< see FprasParams::perturb_support
  bool memoize_unions = true;   ///< see FprasParams::memoize_unions
  bool amortize_oracle = true;  ///< see FprasParams::amortize_oracle
  bool recycle_samples = true;  ///< see FprasParams::recycle_samples
  bool csr_hot_path = true;     ///< see FprasParams::csr_hot_path
};

/// Result of ApproxCount.
struct CountEstimate {
  double estimate = 0.0;        ///< ≈ |L(A_n)| within (1±ε) w.p. ≥ 1−δ
  FprasParams params;           ///< fully derived parameters of the run
  FprasDiagnostics diagnostics; ///< counters accumulated over the run
};

/// The headline API: (ε,δ)-approximation of |L(A_n)| (Theorem 3).
Result<CountEstimate> ApproxCount(const Nfa& nfa, int n,
                                  const CountOptions& options = CountOptions());

/// Estimates |L(A_ℓ)| for every ℓ in 0..n from a single FPRAS run (index ℓ
/// of the result holds the length-ℓ estimate). One engine execution: the
/// level-by-level dynamic program computes all slices on the way to n, so
/// this costs the same as ApproxCount(nfa, n) plus n cheap union estimates.
Result<std::vector<double>> ApproxCountAllLengths(
    const Nfa& nfa, int n, const CountOptions& options = CountOptions());

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_ESTIMATOR_HPP_
