// The FPRAS for #NFA (Algorithm 3 of the paper) and its sampling subroutine
// (Algorithm 2), implemented over the unrolled automaton.
//
// Execution outline (matching Fig. 1 / Algorithm 3):
//   level 0:  N(I⁰) = 1, S(I⁰) = [λ,...]; all other states empty;
//   level ℓ:  for each reachable q:
//       sz_b  = AppUnion over {(S(p^{ℓ-1}), N(p^{ℓ-1})) : p ∈ Pred(q,b)}
//       N(qℓ) = Σ_b sz_b          (w.p. 1−η/2n; else perturbed — line 16-19)
//       S(qℓ) = up to ns words from sample(ℓ, {q}, λ, 2/(3e·N(qℓ)), β, ·),
//               padded with a fixed witness word on shortfall (lines 27-30);
//   output:   N(q_F^n), or an AppUnion over accepting states when |F| > 1
//             (the paper's single-final-state assumption is WLOG).
//
// sample() (Algorithm 2) extends a suffix backwards: at level i it estimates
// sz_b = |∪_{p∈P_b} L(p^{i-1})| for each symbol b, draws b proportionally,
// divides the acceptance probability φ by pr_b, and recurses; at level 0 it
// returns the built word with probability φ (γ0·Π pr_b⁻¹ telescopes to the
// uniform γ0 per word — Theorem 2(1)).
//
// Batched sampling plane (docs/ARCHITECTURE.md "Memory layout & SIMD
// dispatch"): instead of one rejection walk at a time, the engine advances
// batch_width candidate walks in lockstep down the levels on a per-worker
// FrontierPlane (fpras/plane.hpp). Walks with identical symbol histories
// share one frontier row ("group"), so each level costs one union-size
// estimation and one predecessor expansion per group — not per walk — and
// the reach profile of each accepted walk is built by a fused forward pass
// over the same plane scratch, never by re-simulating the stored word. Each
// candidate walk draws exclusively from its own attempt-indexed RNG
// substream, which makes every estimate, table, sample, and post-run draw
// bit-identical for every batch width (B = 1 included), exactly as the
// per-cell substreams make them thread-count-invariant.
//
// Concurrency model (docs/ARCHITECTURE.md "Concurrency model"): within level
// ℓ every (q, ℓ) cell depends only on the frozen level ℓ−1 tables, so the
// sweep fans the cells of each level out over a fixed ThreadPool and joins at
// a level barrier (AdvanceLevel). Determinism does not come from execution
// order: every cell draws from its own counter-based RNG substream
// (Rng::ForSubstream(seed, q, ℓ)), and every union-size estimation draws from
// a substream keyed by its *content* (purpose, level, P-set). Estimates,
// samples, and per-(q,ℓ) tables are therefore bit-identical for every
// num_threads value, including 1; only scheduling-dependent counters (memo
// hits/misses, appunion_calls) may differ between thread counts.
//
// Resumable pipeline (docs/ARCHITECTURE.md "Engine lifecycle & incremental
// extension"): the per-(q,ℓ) table is organized as one LevelState object per
// level, advanced strictly in level order by AdvanceLevel — a step that reads
// only the frozen LevelState below it. Because every random draw is keyed by
// content or by (q, ℓ) coordinates, the sweep can stop after any level and
// resume later (RunToLevel), in another process (checkpoint restore via
// RestoreComputedState), or with different num_threads / batch_width / SIMD
// knobs, and still produce bit-identical tables, estimates, and post-run
// draws to one uninterrupted Run(). EngineSession (fpras/session.hpp) is the
// user-facing wrapper over this contract.
//
// Serve-mode seam (docs/ARCHITECTURE.md "Serve mode"): the post-run draw
// path owns a dedicated scratch bundle (draw_) distinct from the sweep
// workers, and computed_level_ is an atomic, so ONE extending thread
// (RunToLevel) may run concurrently with draw/read threads as long as the
// readers only touch levels the extender has already finished: frozen
// LevelStates are immutable, the union memo and descent cache are internally
// locked, and every estimate is content-keyed, so the interleaving is
// invisible in all results. Callers provide the level-visibility fence (the
// EngineSession read plane publishes levels with release/acquire ordering)
// and must serialize draws among themselves (post_attempt_counter_ is a
// plain cursor); diagnostics() still requires quiescence.

#ifndef NFACOUNT_FPRAS_ESTIMATOR_HPP_
#define NFACOUNT_FPRAS_ESTIMATOR_HPP_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/nfa.hpp"
#include "automata/unrolled.hpp"
#include "counting/union_mc.hpp"
#include "fpras/params.hpp"
#include "fpras/plane.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace nfacount {

/// Counters accumulated over one engine run (all levels).
struct FprasDiagnostics {
  int64_t appunion_calls = 0;   ///< AppUnion invocations (Alg. 1 entries)
  int64_t appunion_trials = 0;  ///< completed AppUnion trials across calls
  /// Membership probes answered. On the batched hot path each trial counts
  /// its full prefix length i (the probes one mask intersection answers);
  /// the legacy loop counts probes until the first hit, so the batched
  /// number is an upper bound of the legacy one on the same run.
  int64_t membership_checks = 0;
  int64_t starvations = 0;      ///< AppUnion Line-8 events
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  /// DescentCache probes answered from the cache (sizes and predecessor
  /// rows combined) vs computed fresh. Scheduling-dependent like the memo
  /// counters; additionally, a descent hit bypasses the union memo entirely,
  /// so memo traffic shrinks when the descent cache is enabled (results
  /// never move — both are pure caches of content-keyed computations).
  int64_t descent_hits = 0;
  int64_t descent_misses = 0;
  int64_t descent_entries = 0;  ///< admitted (level, frontier) cache entries
  int64_t descent_bytes = 0;    ///< approximate descent-cache footprint
  /// Candidate walks launched (Algorithm 2 attempts), counted exactly per
  /// consumed attempt: a lockstep batch may execute speculative walks past
  /// the attempt that fills S(q^ℓ) (or past the accept that satisfies a
  /// draw request), but those surplus walks are discarded unseen and are
  /// NOT counted. Table-building refills and the session draw path
  /// (SampleAcceptedInto's exact mode) therefore match what a sequential
  /// batch_width = 1 run reports for every batch width, thread count, and
  /// kernel table (asserted by tests/test_batch.cpp); WordSampler's bulk
  /// harvests count every attempt through the final batch's last accept,
  /// which agrees across widths whenever its queue has been drained. Only
  /// walk_batches is inherently batch-shaped.
  int64_t sample_calls = 0;
  int64_t sample_success = 0;
  int64_t fail_phi_gt_1 = 0;    ///< Fail1: φ > 1 at the base (Alg. 2 line 5)
  int64_t fail_bernoulli = 0;   ///< Fail2: returned ⊥ at the base (line 6)
  int64_t fail_dead_branch = 0; ///< all sz_b = 0 mid-walk (perturbation echo)
  int64_t padded_words = 0;     ///< Alg. 3 lines 27-30 (SmallS events)
  int64_t perturbed_counts = 0; ///< Alg. 3 line 19 events
  int64_t states_processed = 0; ///< reachable (q, ℓ) copies visited
  int64_t walk_batches = 0;     ///< lockstep plane sweeps launched
  /// Bytes reserved by the per-worker SampleArenas (snapshot at the
  /// diagnostics() call, summed over workers).
  int64_t arena_bytes_reserved = 0;
  /// Arena capacity-growth events since engine construction: flat after the
  /// first batches warm the slabs (the zero-per-sample-allocation contract).
  int64_t arena_alloc_events = 0;
  double wall_seconds = 0.0;    ///< wall-clock time of the Run() call
};

/// Per-(state, level) FPRAS state: the estimate N(q^ℓ) and sample set S(q^ℓ)
/// in flat struct-of-arrays form (two slabs per cell, no per-sample heap
/// vectors — see SampleBlock in automata/unrolled.hpp).
struct StateLevelData {
  double count_estimate = 0.0; ///< N(q^ℓ)
  SampleBlock samples;         ///< S(q^ℓ), count() == ns once filled
};

/// AppUnion input adapter over one predecessor's (S, N) pair. Samples come
/// out of the cell's flat SampleBlock as SampleRef spans; membership of a
/// stored word σ in L(p^{|σ|}) is a bit probe on its reach-profile span, or
/// a full re-simulation when oracle amortization is ablated.
/// owner()/universe() additionally satisfy the AppUnionBatched concept
/// (prefix-mask coverage over the state-id universe). Engine-internal; lives
/// here only so WorkerScratch can hold reusable vectors of it.
struct PredecessorInput {
  const StateLevelData* data;
  StateId state;
  const Nfa* nfa;
  bool amortized;

  double size_estimate() const { return data->count_estimate; }
  int64_t num_samples() const { return data->samples.count(); }
  SampleRef Sample(int64_t idx) const { return data->samples.At(idx); }
  bool Contains(const SampleRef& sample) const {
    if (amortized) return sample.ProfileTest(state);
    return nfa->Reach(sample.ToWord()).Test(state);
  }
  int owner() const { return static_cast<int>(state); }
  size_t universe() const { return static_cast<size_t>(nfa->num_states()); }
};

/// Everything one level of the unrolled DP contributes: the Inv-1 count
/// estimates and Inv-2 sample multisets of every state copy q^ℓ. A
/// LevelState is written exactly once (by the AdvanceLevel step that computes
/// its level, or by a checkpoint restore) and is immutable afterwards —
/// levels above it only read it. This is the unit of checkpoint
/// serialization (fpras/checkpoint.hpp).
struct LevelState {
  int level = -1;                    ///< ℓ, or -1 when not yet computed
  std::vector<StateLevelData> cells; ///< indexed by state id, size m

  /// True once AdvanceLevel (or a restore) has produced this level.
  bool computed() const { return level >= 0; }
};

/// Sharded, thread-safe cache of sample-context union-size vectors keyed by
/// (level, P-set). Because UnionSizes draws from a content-keyed RNG
/// substream, a cached vector is exactly what recomputation would produce —
/// the memo is a pure cache shared freely across worker threads without
/// affecting any estimate. Only the atomic hit/miss counters are
/// scheduling-dependent (two threads can both miss on a key a sequential run
/// would hit once).
class UnionSizeMemo {
 public:
  /// Clears all shards and counters; caps the total entry count.
  void Reset(int64_t capacity);

  /// If (level, set) is cached, copies the sizes into *out and returns true.
  /// Counts one hit or miss.
  bool Lookup(int level, const Bitset& set, std::vector<double>* out);

  /// Caches (level, set) → sizes unless capacity is reached (first writer
  /// wins; concurrent inserts of the same key carry identical values).
  void Insert(int level, const Bitset& set, const std::vector<double>& sizes);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t entries() const { return entries_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    int level;
    Bitset set;
    bool operator==(const Key& other) const {
      return level == other.level && set == other.set;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(key.level), key.set.Hash()));
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, std::vector<double>, KeyHash> map;
  };

  static constexpr int kNumShards = 16;

  Shard& ShardFor(int level, const Bitset& set) {
    return shards_[static_cast<size_t>(
        HashCombine(static_cast<uint64_t>(level), set.Hash()) %
        kNumShards)];
  }

  std::array<Shard, kNumShards> shards_;
  int64_t capacity_ = 0;
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

/// Sharded, capacity-bounded cache of the per-(level, frontier-set) descent
/// work the lockstep sampling plane repeats across refill batches, cells, and
/// post-run draws: the per-symbol-class union-size vector (what Alg. 2 lines
/// 8-11 recompute for every group that reaches the same frontier) and the
/// expanded predecessor rows Pred(P, c) (the PredSetInto result per chosen
/// symbol class — one row covers every member of the class).
///
/// Purity argument (why this never changes a result): UnionSizes draws from a
/// substream keyed by (purpose, level, P-set content) — never from caller
/// state — so recomputation reproduces the cached vector bit for bit; and the
/// predecessor expansion is a pure function of (level, frontier, class) over
/// the fixed unrolled automaton. Estimates, tables, and draw streams are
/// therefore bit-identical with the cache on, off, or at any capacity; only
/// the atomic hit/miss counters are scheduling-dependent.
///
/// Capacity discipline: entries are admitted by InsertSizes under the shard
/// lock against a shared budget (a CAS reservation on entries_, the fix the
/// union memo also received — no overshoot under concurrency). Predecessor
/// rows piggyback on already-admitted entries only (InsertRow never creates
/// an entry), so one budget bounds both. A capacity of 0 disables the cache.
class DescentCache {
 public:
  /// Clears all shards and counters and fixes the geometry: row_words words
  /// per predecessor row, symbol_rows rows per entry (one per symbol class —
  /// |Σ| under the trivial partition). Capacity caps the number of
  /// (level, frontier) entries; 0 disables the cache entirely.
  void Reset(int64_t capacity, size_t row_words, int symbol_rows);

  bool enabled() const { return capacity_ > 0; }

  /// If (level, set) is cached, copies its per-class sizes into *out and
  /// returns true. Counts one hit or miss.
  bool LookupSizes(int level, const Bitset& set, std::vector<double>* out);

  /// Admits (level, set) → sizes unless the budget is exhausted (first
  /// writer wins; concurrent inserts of the same key carry identical
  /// values because UnionSizes is content-keyed).
  void InsertSizes(int level, const Bitset& set,
                   const std::vector<double>& sizes);

  /// If the expanded row of symbol class `symbol_class` at `level` is
  /// cached, copies its row_words words into out_row and returns true.
  /// Counts one hit or miss.
  bool LookupRow(int level, const Bitset& set, int symbol_class,
                 uint64_t* out_row);

  /// Stores the expanded row for an already-admitted (level, set) entry;
  /// no-op when the entry was never admitted (budget exhausted). Concurrent
  /// fills write identical bits (pure function of the key).
  void InsertRow(int level, const Bitset& set, int symbol_class,
                 const uint64_t* row);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t entries() const { return entries_.load(std::memory_order_relaxed); }
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    int level;
    Bitset set;
    bool operator==(const Key& other) const {
      return level == other.level && set == other.set;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(
          HashCombine(static_cast<uint64_t>(key.level), key.set.Hash()));
    }
  };
  /// One admitted (level, frontier) entry. `rows` is allocated lazily on the
  /// first InsertRow (symbol_rows × row_words flat words); row_filled[c]
  /// marks which symbol classes have been expanded.
  struct Entry {
    std::vector<double> sizes;
    std::vector<uint64_t> rows;
    std::vector<uint8_t> row_filled;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  static constexpr int kNumShards = 16;

  Shard& ShardFor(int level, const Bitset& set) {
    return shards_[static_cast<size_t>(
        HashCombine(static_cast<uint64_t>(level), set.Hash()) %
        kNumShards)];
  }

  std::array<Shard, kNumShards> shards_;
  int64_t capacity_ = 0;
  size_t row_words_ = 0;
  int symbol_rows_ = 0;
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

/// The FPRAS over a fixed (NFA, horizon n), organized as a resumable
/// level-state pipeline. The classic one-shot entry point is Run(); the
/// incremental surface is Prepare() + RunToLevel(ℓ), which advances the DP
/// one LevelState at a time and may stop and resume anywhere — every query
/// accessor works for any already-computed level, and RestoreComputedState()
/// installs levels recovered from a binary checkpoint. All three paths
/// produce bit-identical tables, estimates, and draws for the same
/// (seed, params) point.
class FprasEngine {
 public:
  /// The NFA must outlive the engine.
  FprasEngine(const Nfa* nfa, FprasParams params, uint64_t seed);

  /// Executes Algorithm 3 over all levels, fanning each level's reachable
  /// cells out over params.num_threads workers (see the concurrency model in
  /// the file comment). Idempotent (re-runs reset state). Equivalent to
  /// Prepare() followed by RunToLevel(horizon()).
  Status Run();

  /// Validates parameters, allocates the per-worker scratch and the level
  /// table, and installs LevelState 0 (Alg. 3 lines 6-10: L(I⁰) = {λ}).
  /// After success computed_level() == 0 and every query accessor is live
  /// for level 0. Idempotent: calling it again resets the pipeline.
  Status Prepare();

  /// Advances the pipeline level by level until `target` is computed
  /// (no-op when target <= computed_level()). Requires Prepare(); target
  /// must be in [0, horizon()] or Status::OutOfRange is returned. Reaching
  /// the horizon finalizes Estimate(). Splitting the sweep across any
  /// sequence of RunToLevel calls — or across a checkpoint save/load — is
  /// invisible in every estimate, table, and draw.
  Status RunToLevel(int target);

  /// Highest level whose LevelState is computed; -1 before Prepare().
  /// Safe to call from reader threads while another thread runs RunToLevel
  /// (acquire-load; pairs with the release store at the end of each
  /// AdvanceLevel, so a reader that observes level ℓ also observes every
  /// byte of levels_[0..ℓ]).
  int computed_level() const {
    return computed_level_.load(std::memory_order_acquire);
  }

  /// The maximum level this engine can compute (params().n): parameter
  /// derivation fixed β, ns, xns for this horizon at construction.
  int horizon() const { return params_.n; }

  /// Final estimate of |L(A_n)| (AppUnion over accepting states if |F| > 1).
  /// 0.0 until the horizon level has been computed.
  double Estimate() const { return final_estimate_; }

  /// Estimate of |L(A_ℓ)| for any computed ℓ: the DP maintains AccurateN at
  /// every level, so per-length counts come for free (each carries the same
  /// per-level (1±β)^ℓ ⊆ (1±ε) envelope). `level` must be in
  /// [0, computed_level()] — violations abort via NFA_CHECK instead of
  /// reading out of bounds.
  double EstimateAtLength(int level);

  /// N(q^ℓ); 0 for unreachable copies. The level must be computed; q and
  /// level are range-checked (NFA_CHECK).
  double CountEstimateFor(StateId q, int level) const;

  /// S(q^ℓ) materialized as StoredSamples (empty for unreachable copies) —
  /// the invariant-test / inspection view of the flat block. The level must
  /// be computed; q and level are range-checked (NFA_CHECK).
  std::vector<StoredSample> SamplesFor(StateId q, int level) const;

  /// S(q^ℓ) in its native flat form (what the hot path reads). Same
  /// preconditions as SamplesFor.
  const SampleBlock& SampleBlockFor(StateId q, int level) const;

  /// The whole computed LevelState of one level (checkpoint serialization
  /// and structural tests). Same preconditions as SamplesFor.
  const LevelState& LevelStateAt(int level) const;

  /// Installs externally recovered levels 0..computed_level (checkpoint
  /// load): levels[ℓ] must hold exactly m cells whose SampleBlocks carry
  /// word length ℓ and this automaton's profile stride, and `draw_cursor`
  /// restores the post-run attempt counter so resumed draw streams continue
  /// where the saved session stopped. Requires a successful Prepare();
  /// validation failures leave the engine prepared-at-level-0.
  Status RestoreComputedState(int computed_level,
                              std::vector<LevelState> levels,
                              int64_t draw_cursor);

  /// Next post-run sampling attempt id (the "RNG cursor" of the draw
  /// streams): checkpoint state, advanced by SampleWord/SampleAcceptedInto.
  int64_t draw_cursor() const { return post_attempt_counter_; }

  /// Draws one word almost-uniformly from ∪_{q ∈ targets} L(q^level) using
  /// Algorithm 2 against the tables built by Run(); nullopt = rejection
  /// (caller retries; Theorem 2(2) bounds the rejection rate). Consumes one
  /// attempt of the counter-keyed post-run stream.
  std::optional<Word> SampleWord(const Bitset& targets, int level);

  /// Batched post-run draws: launches candidate walks in lockstep batches of
  /// the engine's batch width until at least `min_accepts` walks accept (or
  /// `max_attempts` walks have been tried), appending accepted words to
  /// `out` in attempt order. Returns the number appended. Because each
  /// attempt draws from its own counter-keyed substream, the appended
  /// sequence is bit-identical for every batch width, thread count, and
  /// kernel table. Two consumption modes govern what happens to the tail of
  /// the final batch:
  ///
  /// - bulk (`consume_exact` false, the default): every accepted walk of
  ///   every executed batch is appended (possibly more than `min_accepts`)
  ///   and the draw cursor advances past all executed attempts. Callers
  ///   that queue the surplus and serve it in order (WordSampler) keep a
  ///   width-invariant draw stream while amortizing one union estimate
  ///   over many draws.
  /// - exact (`consume_exact` true): appending stops at the accept that
  ///   satisfies `min_accepts`, and the cursor, the attempt budget, and the
  ///   per-walk diagnostics advance only through that attempt — exactly a
  ///   sequential batch_width = 1 run. Speculative later walks are
  ///   discarded unseen and will be re-derived bit-identically if a later
  ///   call reaches their attempt ids, so the draw stream is invariant
  ///   across batch widths even for arbitrary call/length interleavings
  ///   (the EngineSession contract).
  ///
  /// Same preconditions as SampleWord.
  int64_t SampleAcceptedInto(const Bitset& targets, int level,
                             int64_t max_attempts, int64_t min_accepts,
                             std::vector<Word>* out,
                             bool consume_exact = false);

  /// Convenience: almost-uniform word from L(A_n) (accepting states at n).
  std::optional<Word> SampleAcceptedWord();

  const FprasParams& params() const { return params_; }

  /// Merged snapshot of the per-worker counters plus the memo's atomic
  /// hit/miss counts; includes post-Run() sampling activity.
  const FprasDiagnostics& diagnostics() const;

  const UnrolledNfa& unrolled() const { return unrolled_; }

  /// Snapshot of the shared caches' atomic counters (union memo + descent
  /// cache). Unlike diagnostics(), this reads only atomics and is safe to
  /// call from any thread at any time — it is the serve-mode stats surface.
  struct CacheCounters {
    int64_t memo_hits = 0;       ///< UnionSizeMemo hits
    int64_t memo_misses = 0;     ///< UnionSizeMemo misses
    int64_t descent_hits = 0;    ///< DescentCache hits (sizes + rows)
    int64_t descent_misses = 0;  ///< DescentCache misses
    int64_t descent_entries = 0; ///< admitted DescentCache entries
    int64_t descent_bytes = 0;   ///< approximate DescentCache footprint
  };

  /// Thread-safe cache-counter snapshot (see CacheCounters).
  CacheCounters cache_counters() const;

  /// Approximate bytes held live by the computed LevelStates (the flat
  /// sample slabs plus the cell array itself). Reads only levels that are
  /// already published by computed_level(), so it is safe concurrently with
  /// an extending RunToLevel — the number trails by at most the level in
  /// flight. Serve-mode eviction budgets are fed from this.
  int64_t ApproxTableBytes() const;

 private:
  /// Per-worker scratch bundle: everything a cell computation mutates other
  /// than its own levels_[ℓ].cells[q] slot. One instance per ThreadPool worker slot
  /// keeps the hot path allocation-free and race-free under concurrency.
  struct WorkerScratch {
    Bitset pred_scratch;          ///< PredSetInto target (UnionSizes)
    Bitset target_scratch;        ///< singleton {q} for RefillSamples
    AppUnionScratch union_scratch;///< batched-membership + draw-table scratch
    /// AppUnion input adapters, rebuilt per estimation but never reallocated
    /// once warm (capacity persists across UnionSizesInto calls).
    std::vector<PredecessorInput> union_inputs;
    std::vector<const PredecessorInput*> union_ptrs;
    SampleArena arena;            ///< lockstep walk batch slab (plane.hpp)
    FprasDiagnostics diag;        ///< merged into diagnostics() on demand
  };

  /// Which substream family a union-size estimation draws from. The count
  /// path (Alg. 3 line 15) and the sample path (Alg. 2 lines 8-11) use
  /// distinct δ parameters and must not share randomness; only the sample
  /// path is memo-shared.
  enum class UnionPurpose { kCount, kSample };

  /// The per-symbol-class decomposition of ∪_{q∈P} L(q^level) (Alg. 2 lines
  /// 8-11 compressed over the symbol partition): out[c] = weight_c · sz_c,
  /// where sz_c is one AppUnion estimate of the class's shared predecessor
  /// slice — every member of a class has the same Pred(P, b), so one PredSet
  /// expansion and one AppUnion cover weight_c symbols and Σ_c out[c] is the
  /// full per-symbol total. Runs with parameters (β, delta_param); capacity
  /// of *out is reused across calls. Each class draws from a substream keyed
  /// by (purpose, level, predecessor-set content), so the result is a
  /// deterministic function of the engine seed and the arguments —
  /// independent of caller, thread, and memo state — and classes that share
  /// a predecessor set share the draws (duplicate content costs no fresh
  /// randomness).
  void UnionSizesInto(int level, const Bitset& state_set, double delta_param,
                      UnionPurpose purpose, WorkerScratch& ws,
                      std::vector<double>* out);

  /// Algorithm 2 over a lockstep batch: advances `count` candidate walks
  /// (attempt ids first_attempt..first_attempt+count) down the levels on the
  /// worker's FrontierPlane, group-sharing union-size estimations and
  /// predecessor expansions between walks with identical symbol histories,
  /// and applies the base-case accept/reject per walk. Walk j draws only
  /// from Rng::ForSubstream(seed, walk_key, first_attempt + j), which is
  /// what makes results invariant to the batch width. Accepted walk ids land
  /// in ws.arena.accepted in attempt order.
  void RunWalkBatch(int level, const Bitset& state_set, double phi0,
                    uint64_t walk_key, int64_t first_attempt, int count,
                    WorkerScratch& ws);

  /// Fused reach-profile pass: computes the profile of accepted walk `w`
  /// (in ws.arena) forward over the plane scratch — MakeSample never
  /// re-simulates a word on this path — and appends (word, profile) to
  /// `block`.
  void AppendAcceptedWalk(int level, int walk, WorkerScratch& ws,
                          SampleBlock* block);

  /// Folds the outcomes of the first `consumed` walks of the last
  /// RunWalkBatch into ws.diag (sample_calls, sample_success, fail_*).
  /// Callers pass exactly the attempts a sequential batch_width = 1 run
  /// would have executed, which is what makes the per-walk counters
  /// batch-width-exact (see FprasDiagnostics::sample_calls).
  void ConsumeWalkDiagnostics(int consumed, WorkerScratch& ws);

  /// Refills S(q^ℓ) with up to xns lockstep attempts, padding to ns
  /// (Alg. 3 lines 20-30).
  void RefillSamples(StateId q, int level, WorkerScratch& ws);

  /// One (q, ℓ) cell of Algorithm 3 (lines 12-30): count union, perturbation
  /// branch, sample refill. Reads only level ℓ−1 tables; writes only
  /// levels_[ℓ].cells[q] and `ws`.
  void ProcessCell(StateId q, int level, WorkerScratch& ws);

  /// One pipeline step: computes LevelState computed_level_+1 by fanning its
  /// reachable cells over the pool and joining (the level barrier), reading
  /// only the frozen LevelState below, then advances the cursor. Reaching
  /// the horizon finalizes final_estimate_.
  Status AdvanceLevel(ThreadPool& pool);

  double PerturbedCount(int level, Rng& rng);

  /// |∪_{q ∈ targets∩reachable(level)} L(q^level)| estimate: N for a
  /// singleton, AppUnion over the members otherwise (drawn from the
  /// content-keyed final-union substream, so repeated calls agree —
  /// regardless of which scratch bundle `ws` the caller lends).
  double EstimateUnionOfStates(const Bitset& targets, int level,
                               WorkerScratch& ws);

  const Nfa* nfa_;
  FprasParams params_;
  UnrolledNfa unrolled_;
  uint64_t seed_;
  /// Next post-run attempt id: every SampleWord/SampleAcceptedInto attempt
  /// draws from Rng::ForSubstream(seed, draw-tag, counter++), so the draw
  /// sequence depends only on how many attempts ran before — not on batch
  /// width, thread count, or kernel table.
  int64_t post_attempt_counter_ = 0;
  /// Kernel table the sampling plane uses (params.simd_kernels selects
  /// scalar vs the runtime-dispatched table; set by Run()).
  const simd::BitsetKernels* kernels_ = nullptr;
  int batch_width_ = FprasParams::kDefaultBatchWidth;  ///< resolved by Run()
  /// Worker slot scratch; workers_[i] is owned by pool worker slot i during
  /// AdvanceLevel, and workers_[0] serves the sequential query accessors
  /// (EstimateAtLength and friends) between sweeps.
  std::vector<WorkerScratch> workers_;
  /// Dedicated scratch for the post-run draw path (SampleWord /
  /// SampleAcceptedInto): draws never share scratch with the sweep workers,
  /// so serve-mode readers may draw against published levels while one
  /// writer thread runs AdvanceLevel above them (see the "Serve-mode seam"
  /// file comment).
  WorkerScratch draw_;
  /// Lazily-created level-sweep pool, reused across every RunToLevel call of
  /// one prepared run (incremental extensions must not respawn threads per
  /// step). Reset by Prepare(); idle (condition-wait) between sweeps.
  std::unique_ptr<ThreadPool> pool_;
  /// The pipeline: levels_[ℓ] is frozen once computed (ℓ <= computed_level_).
  /// Pre-sized to horizon()+1 by Prepare(), so extension never reallocates —
  /// concurrent readers of frozen levels hold stable pointers.
  std::vector<LevelState> levels_;
  /// Highest computed level; -1 until Prepare() installs level 0. Atomic so
  /// serve-mode readers can poll it against a concurrently extending writer;
  /// AdvanceLevel stores with release ordering after freezing the level.
  std::atomic<int> computed_level_{-1};
  UnionSizeMemo memo_;  ///< sample-context union sizes, shared across workers
  /// Cross-batch descent cache (sizes + predecessor rows per (level,
  /// frontier)), shared across workers like the memo. Reset by Prepare()
  /// from params_.descent_cache_capacity.
  DescentCache descent_;
  double final_estimate_ = 0.0;
  double run_wall_seconds_ = 0.0;
  mutable FprasDiagnostics diag_;  ///< diagnostics() merge target
  bool prepared_ = false;  ///< Prepare() succeeded (accessor precondition)
};

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

/// User-facing options for ApproxCount.
struct CountOptions {
  double eps = 0.2;    ///< multiplicative accuracy ε of the estimate
  double delta = 0.1;  ///< failure probability δ
  Schedule schedule = Schedule::kFaster;  ///< sample-budget schedule to run
  /// Practical() by default: the faithful worst-case constants are
  /// infeasible on any hardware (DESIGN.md §2) — opt in via Faithful().
  Calibration calibration = Calibration::Practical();
  uint64_t seed = 0x5eedf00dULL;  ///< seed of the whole randomized run
  bool perturb_support = true;  ///< see FprasParams::perturb_support
  bool memoize_unions = true;   ///< see FprasParams::memoize_unions
  bool amortize_oracle = true;  ///< see FprasParams::amortize_oracle
  bool recycle_samples = true;  ///< see FprasParams::recycle_samples
  bool csr_hot_path = true;     ///< see FprasParams::csr_hot_path
  /// Level-sweep worker threads (1 = sequential, 0 = all hardware threads).
  /// Bit-identical results for every value; see FprasParams::num_threads.
  int num_threads = 1;
  /// Lockstep candidate-walk batch width (0 = built-in default). Bit-
  /// identical results for every value; see FprasParams::batch_width.
  int batch_width = 0;
  /// SIMD kernel table for the sampling plane (false = scalar). Bit-
  /// identical results either way; see FprasParams::simd_kernels.
  bool simd_kernels = true;
  /// Cross-batch descent-cache entry budget (0 disables the cache, -1 = use
  /// the built-in default). Bit-identical results at every value; see
  /// FprasParams::descent_cache_capacity.
  int64_t descent_cache_capacity = -1;
  /// Symbol-class alphabet compression: collapse symbols with identical
  /// transition rows and run the per-symbol hot loops per class. Same (ε, δ)
  /// envelope either way, but the two settings draw from different RNG
  /// substreams (results at a fixed setting stay bit-identical across every
  /// other knob); see FprasParams::symbol_classes.
  bool symbol_classes = true;
};

/// Result of ApproxCount.
struct CountEstimate {
  double estimate = 0.0;        ///< ≈ |L(A_n)| within (1±ε) w.p. ≥ 1−δ
  FprasParams params;           ///< fully derived parameters of the run
  FprasDiagnostics diagnostics; ///< counters accumulated over the run
};

/// The headline API: (ε,δ)-approximation of |L(A_n)| (Theorem 3).
Result<CountEstimate> ApproxCount(const Nfa& nfa, int n,
                                  const CountOptions& options = CountOptions());

/// Estimates |L(A_ℓ)| for every ℓ in 0..n from a single FPRAS run (index ℓ
/// of the result holds the length-ℓ estimate). One engine execution: the
/// level-by-level dynamic program computes all slices on the way to n, so
/// this costs the same as ApproxCount(nfa, n) plus n cheap union estimates.
Result<std::vector<double>> ApproxCountAllLengths(
    const Nfa& nfa, int n, const CountOptions& options = CountOptions());

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_ESTIMATOR_HPP_
