#include "fpras/session.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "fpras/checkpoint.hpp"

namespace nfacount {

namespace {

/// Rejection budget per requested draw (matches SamplerOptions' default:
/// well beyond the Theorem 2(2) bound, so exhausting it indicates
/// inaccurate tables rather than bad luck).
constexpr int64_t kAttemptsPerDraw = 4096;

static_assert(kAttemptsPerDraw <= std::numeric_limits<int64_t>::max() /
                                      EngineSession::kMaxDrawsPerCall,
              "kAttemptsPerDraw * count must not overflow for capped counts");

}  // namespace

EngineSession::EngineSession(std::unique_ptr<Nfa> nfa,
                             std::unique_ptr<FprasEngine> engine,
                             uint64_t seed)
    : nfa_(std::move(nfa)),
      engine_(std::move(engine)),
      seed_(seed),
      plane_(std::make_unique<ReadPlane>()) {
  // Publish whatever the engine already computed (level 0 after Create, the
  // restored prefix after Restore). The warm-up estimates are content-keyed,
  // so they equal — bit for bit — what any later query would compute.
  plane_->estimates.assign(static_cast<size_t>(engine_->horizon()) + 1, 0.0);
  const int computed = engine_->computed_level();
  for (int level = 0; level <= computed; ++level) {
    plane_->estimates[static_cast<size_t>(level)] =
        engine_->EstimateAtLength(level);
  }
  plane_->published.store(computed, std::memory_order_release);
}

Result<EngineSession> EngineSession::Create(const Nfa& nfa, int horizon,
                                            const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (horizon < 0) return Status::Invalid("horizon must be >= 0");

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(
      params, FprasParams::Make(options.schedule, nfa.num_states(), horizon,
                                options.eps, options.delta,
                                options.calibration));
  params.perturb_support = options.perturb_support;
  params.memoize_unions = options.memoize_unions;
  params.amortize_oracle = options.amortize_oracle;
  params.recycle_samples = options.recycle_samples;
  params.csr_hot_path = options.csr_hot_path;
  params.num_threads = options.num_threads;
  params.batch_width = options.batch_width;
  params.simd_kernels = options.simd_kernels;
  if (options.descent_cache_capacity >= 0) {
    params.descent_cache_capacity = options.descent_cache_capacity;
  }
  params.symbol_classes = options.symbol_classes;

  auto owned = std::make_unique<Nfa>(nfa);
  auto engine =
      std::make_unique<FprasEngine>(owned.get(), params, options.seed);
  NFA_RETURN_NOT_OK(engine->Prepare());
  return EngineSession(std::move(owned), std::move(engine), options.seed);
}

Result<EngineSession> EngineSession::Restore(std::unique_ptr<Nfa> nfa,
                                             const FprasParams& params,
                                             uint64_t seed, int computed_level,
                                             std::vector<LevelState> levels,
                                             int64_t draw_cursor) {
  if (nfa == nullptr) return Status::Invalid("Restore: null automaton");
  NFA_RETURN_NOT_OK(nfa->Validate());
  if (params.m != nfa->num_states()) {
    return Status::Invalid("Restore: params.m does not match the automaton");
  }
  auto engine = std::make_unique<FprasEngine>(nfa.get(), params, seed);
  NFA_RETURN_NOT_OK(engine->Prepare());
  NFA_RETURN_NOT_OK(engine->RestoreComputedState(
      computed_level, std::move(levels), draw_cursor));
  return EngineSession(std::move(nfa), std::move(engine), seed);
}

Status EngineSession::CheckLength(int length) const {
  if (length < 0) return Status::Invalid("length must be >= 0");
  if (length > horizon()) {
    return Status::OutOfRange(
        "length exceeds the session horizon; the horizon fixed the "
        "parameter derivation — create a session with a larger horizon");
  }
  return Status::Ok();
}

Status EngineSession::ExtendTo(int level) {
  NFA_RETURN_NOT_OK(CheckLength(level));
  // Level-by-level so each finished level becomes reader-visible as soon as
  // the sweep leaves it: cache its estimate first, then release-publish the
  // fence (a reader that acquire-loads `published >= ℓ` sees both the frozen
  // LevelState and estimates[ℓ]).
  for (int next = engine_->computed_level() + 1; next <= level; ++next) {
    NFA_RETURN_NOT_OK(engine_->RunToLevel(next));
    plane_->estimates[static_cast<size_t>(next)] =
        engine_->EstimateAtLength(next);
    plane_->published.store(next, std::memory_order_release);
  }
  return Status::Ok();
}

Result<double> EngineSession::CountAtLength(int length) {
  NFA_RETURN_NOT_OK(ExtendTo(length));
  return engine_->EstimateAtLength(length);
}

Result<double> EngineSession::CountFor(StateId q, int length) {
  NFA_RETURN_NOT_OK(ExtendTo(length));
  if (q < 0 || q >= nfa_->num_states()) {
    return Status::Invalid("CountFor: state out of [0, m)");
  }
  return engine_->CountEstimateFor(q, length);
}

Result<std::vector<Word>> EngineSession::SampleWords(int length,
                                                     int64_t count) {
  NFA_RETURN_NOT_OK(ExtendTo(length));
  if (count < 0) return Status::Invalid("SampleWords: count must be >= 0");
  if (count > kMaxDrawsPerCall) {
    return Status::Invalid(
        "SampleWords: count exceeds kMaxDrawsPerCall; split the request "
        "into chunks (the draw stream concatenates seamlessly)");
  }
  std::vector<Word> out;
  if (count == 0) return out;
  if (length == 0) {
    if (!nfa_->IsAccepting(nfa_->initial())) {
      return Status::NotFound("L(A_0) is empty");
    }
    out.assign(static_cast<size_t>(count), Word{});
    return out;
  }
  if (!(engine_->EstimateAtLength(length) > 0.0)) {
    return Status::NotFound("language estimated empty at this length");
  }
  out.reserve(static_cast<size_t>(count));
  // Exact consumption: the draw cursor advances only through the accept
  // that completes the request, so the concatenation of all SampleWords
  // results — across any interleaving of lengths, extensions, checkpoint
  // save/resume boundaries, and runtime-knob changes — is one deterministic
  // sequence (see FprasEngine::SampleAcceptedInto).
  const int64_t appended = engine_->SampleAcceptedInto(
      nfa_->accepting(), length, kAttemptsPerDraw * count, count, &out,
      /*consume_exact=*/true);
  if (appended < count) {
    return Status::ResourceExhausted(
        "sampling attempts exhausted; tables likely inaccurate");
  }
  return out;
}

int EngineSession::published_level() const {
  return plane_->published.load(std::memory_order_acquire);
}

Result<double> EngineSession::SharedCountAtLength(int length) const {
  NFA_RETURN_NOT_OK(CheckLength(length));
  if (length > published_level()) {
    return Status::FailedPrecondition(
        "length not yet published; extend the session first");
  }
  return plane_->estimates[static_cast<size_t>(length)];
}

Result<double> EngineSession::SharedCountFor(StateId q, int length) const {
  NFA_RETURN_NOT_OK(CheckLength(length));
  if (q < 0 || q >= nfa_->num_states()) {
    return Status::Invalid("SharedCountFor: state out of [0, m)");
  }
  if (length > published_level()) {
    return Status::FailedPrecondition(
        "length not yet published; extend the session first");
  }
  // The acquire above makes level `length` frozen and fully visible.
  return engine_->CountEstimateFor(q, length);
}

Result<std::vector<Word>> EngineSession::SharedSampleWords(
    int length, int64_t count, int64_t* cursor_start) {
  NFA_RETURN_NOT_OK(CheckLength(length));
  if (count < 0) {
    return Status::Invalid("SharedSampleWords: count must be >= 0");
  }
  if (count > kMaxDrawsPerCall) {
    return Status::Invalid(
        "SharedSampleWords: count exceeds kMaxDrawsPerCall; split the "
        "request into chunks (the draw stream concatenates seamlessly)");
  }
  if (length > published_level()) {
    return Status::FailedPrecondition(
        "length not yet published; extend the session first");
  }
  // One draw chunk at a time: the counter-keyed draw stream is a single
  // sequential sequence, and each chunk consumes a contiguous attempt range
  // starting at the cursor we report back to the caller.
  std::lock_guard<std::mutex> lock(plane_->draw_mu);
  if (cursor_start != nullptr) *cursor_start = engine_->draw_cursor();
  std::vector<Word> out;
  if (count == 0) return out;
  if (length == 0) {
    if (!nfa_->IsAccepting(nfa_->initial())) {
      return Status::NotFound("L(A_0) is empty");
    }
    out.assign(static_cast<size_t>(count), Word{});
    return out;
  }
  if (!(plane_->estimates[static_cast<size_t>(length)] > 0.0)) {
    return Status::NotFound("language estimated empty at this length");
  }
  out.reserve(static_cast<size_t>(count));
  const int64_t appended = engine_->SampleAcceptedInto(
      nfa_->accepting(), length, kAttemptsPerDraw * count, count, &out,
      /*consume_exact=*/true);
  if (appended < count) {
    return Status::ResourceExhausted(
        "sampling attempts exhausted; tables likely inaccurate");
  }
  return out;
}

int64_t EngineSession::ApproxResidentBytes() const {
  return engine_->ApproxTableBytes();
}

Status EngineSession::Save(const std::string& path) const {
  return SaveSessionCheckpoint(*this, path);
}

Result<EngineSession> EngineSession::Load(const std::string& path,
                                          const SessionKnobs* knobs) {
  return LoadSessionCheckpoint(path, knobs);
}

}  // namespace nfacount
