// Practical-confidence wrappers over the FPRAS — the tooling direction the
// paper's conclusion motivates ("a promising avenue ... towards practical
// implementation of tools for approximate #NFA").
//
//  * Median-of-k amplification: run k independent FPRAS instances and return
//    the median. If a single run lands in (1±ε) with probability ≥ 3/4, the
//    median fails only if half the runs fail: k = O(log 1/δ) runs drive the
//    confidence to 1−δ (standard Chernoff amplification) — often cheaper
//    than tightening a single run's internal δ, and embarrassingly
//    independent.
//
//  * Adaptive calibration: repeatedly double the calibrated sample budgets
//    until two consecutive estimates agree within a tolerance. This gives a
//    practical stopping rule when the worst-case constants are out of reach
//    and the right calibration is instance-dependent.

#ifndef NFACOUNT_FPRAS_AMPLIFY_HPP_
#define NFACOUNT_FPRAS_AMPLIFY_HPP_

#include <vector>

#include "fpras/estimator.hpp"

namespace nfacount {

/// Result of a median-of-k amplified count.
struct AmplifiedEstimate {
  double estimate = 0.0;          ///< median of the runs
  std::vector<double> runs;       ///< individual estimates (sorted)
  double spread = 0.0;            ///< (max-min)/median, 0 if median is 0
  FprasDiagnostics total_diag;    ///< summed diagnostics
};

/// Runs `runs` independent FPRAS instances (seeds derived from options.seed)
/// and returns the median estimate. `runs` must be >= 1; odd values avoid
/// midpoint averaging.
Result<AmplifiedEstimate> ApproxCountMedian(const Nfa& nfa, int n,
                                            const CountOptions& options,
                                            int runs = 5);

/// Recommended run count for confidence delta given per-run confidence 3/4:
/// k = ceil(8·ln(1/delta)) | 1 (made odd).
int MedianRunsForConfidence(double delta);

/// Result of an adaptive-calibration count.
struct AdaptiveEstimate {
  double estimate = 0.0;
  int rounds = 0;                 ///< calibration doublings performed
  Calibration final_calibration;  ///< budget that produced the estimate
  std::vector<double> trajectory; ///< estimate after each round
  bool converged = false;         ///< consecutive agreement reached
};

/// Options for ApproxCountAdaptive.
struct AdaptiveOptions {
  CountOptions base;              ///< eps/delta/seed/flags; calibration is the
                                  ///< starting point and is scaled upward
  double agreement = 0.1;         ///< stop when |est_i/est_{i-1} - 1| <= this
  int max_rounds = 6;             ///< budget doublings before giving up
};

/// Doubles ns/trial budgets until two consecutive rounds agree within
/// `agreement` (relative). Returns the last estimate either way; `converged`
/// tells whether the stopping rule fired. Zero estimates on two consecutive
/// rounds count as agreement (empty language).
Result<AdaptiveEstimate> ApproxCountAdaptive(const Nfa& nfa, int n,
                                             const AdaptiveOptions& options = {});

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_AMPLIFY_HPP_
