// Parameter schedules of the FPRAS (Algorithm 3, lines 1-3) and of the
// ACJR-style baseline, plus the calibration knobs described in DESIGN.md §2.
//
// Faithful formulas (calibration = 1):
//   β    = ε / (4n²)                                       (per-level accuracy)
//   η    = δ / (2·n·m)                                     (per-(q,ℓ) failure)
//   ns   = 4096·e·n⁴/ε² · ln(4096·m²·n²·ln(ε⁻²)/δ)         (samples kept)
//   xns  = ns · 12·(1 − 2/(3e²))⁻¹ · ln(8/η)               (sampling attempts)
//   t    = 12·(1+ε_sz)²·m̄/ε'² · ln(4/δ')                  (AppUnion trials)
//
// The paper's constants are worst-case and infeasible at any interesting size
// (ns ≥ 10^10 for n = 10); the Calibration struct scales the *leading
// constants only* — the structural dependence on m, n, ε, δ is preserved so
// the scaling benchmarks (E3-E5) still measure the claimed shapes, and the
// accuracy benchmarks (E1) verify the (1±ε, δ) guarantee empirically.

#ifndef NFACOUNT_FPRAS_PARAMS_HPP_
#define NFACOUNT_FPRAS_PARAMS_HPP_

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace nfacount {

/// Which per-(state,level) sample-budget schedule to run the template with.
enum class Schedule {
  kFaster,  ///< this paper: ns = ~O(n⁴/ε²), independent of m
  kAcjr,    ///< ACJR-style baseline: ns = (m·n/ε)⁷ (see acjr.hpp)
};

const char* ScheduleName(Schedule schedule);

/// Scaling knobs on the worst-case constants. 1.0 everywhere = faithful.
struct Calibration {
  double ns_scale = 1.0;     ///< multiplies the ns formula
  double xns_log_scale = 1.0;///< multiplies the ln(8/η) attempt multiplier
  double trial_scale = 1.0;  ///< multiplies AppUnion's trial count t
  int64_t ns_floor = 8;      ///< lower bound after scaling
  int64_t trial_floor = 8;   ///< lower bound after scaling
  double xns_multiplier_floor = 4.0;  ///< xns >= this · ns after scaling

  /// Faithful paper constants (only feasible for micro instances).
  static Calibration Faithful() { return Calibration{}; }

  /// Laptop-scale preset used by the test suite and benchmarks; chosen so a
  /// (m=8, n=10) instance runs in milliseconds while the empirical accuracy
  /// stays well inside (1±ε) (verified by tests/test_fpras.cpp and E1).
  static Calibration Practical();

  /// Heavier preset for the accuracy census benches (more samples/trials).
  static Calibration Thorough();
};

/// Fully derived parameters for one FPRAS run.
struct FprasParams {
  Schedule schedule = Schedule::kFaster;
  int m = 0;          ///< number of NFA states
  int n = 0;          ///< word length
  double eps = 0.2;   ///< overall accuracy ε
  double delta = 0.1; ///< overall confidence δ

  double beta = 0.0;  ///< ε/(4n²)
  double eta = 0.0;   ///< δ/(2nm)
  int64_t ns = 0;     ///< per-(q,ℓ) samples kept
  int64_t xns = 0;    ///< per-(q,ℓ) sampling attempts

  Calibration calibration;

  // Behavior flags (DESIGN.md §4; each ablated in E9).
  bool perturb_support = true; ///< Alg. 3 lines 16-19 resampling branch
  bool memoize_unions = true;  ///< cache sz_b by (level, P-set) across samples
  bool amortize_oracle = true; ///< reach-profile membership (vs recompute)
  /// Under calibration, AppUnion trial counts can exceed sample-list lengths,
  /// which would make the paper's Line-8 starvation systematic; recycling the
  /// lists keeps the Y/t estimator unbiased (see union_mc.hpp). Set false to
  /// get the paper's literal break-out behavior.
  bool recycle_samples = true;
  /// Run the per-operation hot path on the flat layout: CSR/mask predecessor
  /// expansion (UnrolledNfa::PredSetInto), batched membership + prefix-sum
  /// trial draws in AppUnion (AppUnionBatched), and CSR reach profiles for
  /// stored samples. Set false for the legacy pointer-walk versions of those
  /// operations — the E11 old-vs-new baseline. One-time work (CSR
  /// construction, level reachability, witness extraction) always uses the
  /// flat layout. Both settings consume identical RNG streams, so flipping
  /// this never changes an estimate, only its cost.
  bool csr_hot_path = true;
  /// Worker threads of the level-sweep executor (Algorithm 3's per-level
  /// (q,ℓ) fan-out). 1 = sequential in the calling thread; 0 = all hardware
  /// threads. Estimates, samples, and per-(q,ℓ) tables are bit-identical for
  /// every value — each cell draws from its own counter-based RNG substream
  /// (Rng::ForSubstream), so the thread count only changes wall-clock time.
  int num_threads = 1;

  /// Candidate walks Algorithm 2 advances in lockstep on the FrontierPlane
  /// (fpras/plane.hpp). 0 = the built-in default (kDefaultBatchWidth).
  /// Estimates, tables, samples, and draws are bit-identical for every
  /// value — each candidate walk draws from its own attempt-indexed RNG
  /// substream, so the batch width only changes wall-clock time (and the
  /// batch-granular tail of per-walk failure counters; see
  /// FprasDiagnostics).
  int batch_width = 0;

  /// Run the sampling plane's frontier/profile kernels on the runtime-
  /// dispatched SIMD table (util/simd.hpp); false pins this engine to the
  /// scalar table. Kernels compute identical bits either way, so this flag
  /// can never change a result. NFACOUNT_FORCE_SCALAR=1 (or
  /// simd::SetForceScalar) forces scalar process-wide regardless.
  bool simd_kernels = true;

  /// Default lockstep batch width (batch_width = 0). 16 keeps the overshoot
  /// past a filled sample set small while amortizing per-batch costs.
  static constexpr int kDefaultBatchWidth = 16;
  /// Upper bound accepted for batch_width (validated by FprasEngine::Run).
  static constexpr int kMaxBatchWidth = 4096;

  /// The lockstep width Run() actually uses: batch_width, or the default
  /// when 0.
  int ResolvedBatchWidth() const {
    return batch_width == 0 ? kDefaultBatchWidth : batch_width;
  }

  int64_t memo_capacity = int64_t{1} << 20;  ///< max cached (level, P) entries

  /// Default entry budget of the cross-batch descent cache.
  static constexpr int64_t kDefaultDescentCacheCapacity = int64_t{1} << 20;

  /// Max (level, frontier-set) entries of the cross-batch descent cache
  /// (fpras/estimator.hpp DescentCache): memoized per-symbol union sizes and
  /// predecessor-row expansions shared across refill batches, cells, and
  /// post-run draws. 0 disables the cache. Like the union memo, the cache is
  /// pure — estimates, tables, and draws are bit-identical at every
  /// capacity; the knob only trades memory for repeated descent work.
  /// Runtime-only (not serialized into checkpoints — carried by
  /// SessionKnobs on restore); NFACOUNT_DESCENT_CACHE overrides it
  /// process-wide.
  int64_t descent_cache_capacity = kDefaultDescentCacheCapacity;

  /// Run the per-symbol hot loops over symbol equivalence classes
  /// (automata/symbol_classes.hpp): symbols with identical transition rows
  /// share one PredSet + one AppUnion per level, and the lockstep sampler
  /// draws a class then a uniform member. Estimates stay inside the same
  /// (ε,δ) envelope at either setting — each class's size estimate is
  /// mathematically the per-symbol value every member would get — but the
  /// two settings consume different content-keyed RNG substreams, so
  /// per-seed results are NOT bit-identical across the flip (unlike
  /// threads/batch/simd/cache knobs; at a FIXED setting all of those remain
  /// bit-identical). Serialized into checkpoints (v2); overridable on
  /// resume via SessionKnobs::symbol_classes and process-wide via
  /// NFACOUNT_SYMBOL_CLASSES=0.
  bool symbol_classes = true;

  /// δ parameter of the AppUnion calls that compute N(q^ℓ)
  /// (Alg. 3 line 15): η / (2·(1 − 2^{-(n+1)})).
  double DeltaForCountUnion() const;

  /// δ parameter handed to sample() by Alg. 3 line 23: η / (2·xns).
  double EtaForSampleCall() const;

  /// ε_sz at level ℓ: (1+β)^{ℓ-1} − 1 (Alg. 2 line 3 / Alg. 3 line 14).
  double EpsSzAtLevel(int level) const;

  /// Derives all parameters. Validates ranges (0 < ε, 0 < δ < 1, n ≥ 0,
  /// m ≥ 1) and guards the formulas for ε ≥ 1 (inner log clamped).
  static Result<FprasParams> Make(Schedule schedule, int m, int n, double eps,
                                  double delta,
                                  const Calibration& calibration = Calibration());

  std::string ToString() const;
};

/// The paper's sample budget ns(m, n, ε, δ) before calibration — exposed
/// separately so benchmark E2 can tabulate schedules without running anything.
double FasterScheduleNs(int m, int n, double eps, double delta);

/// The ACJR-style budget (m·n/ε)⁷ before calibration (see acjr.hpp).
double AcjrScheduleNs(int m, int n, double eps);

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_PARAMS_HPP_
