#include "fpras/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "automata/io.hpp"
#include "util/failpoint.hpp"
#include "util/wire.hpp"

namespace nfacount {

namespace {

// Preamble layout: 4 magic bytes, u32 version, u32 endianness marker. The
// body is canonical little-endian regardless of host order; the marker exists
// to reject files produced by a hypothetical writer emitting native
// big-endian, with a clear message instead of a checksum mismatch.
constexpr char kMagic[4] = {'N', 'F', 'C', 'K'};
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kPreambleBytes = 12;
constexpr size_t kChecksumBytes = 8;

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// The byte codec lives in util/wire.hpp (ByteWriter/ByteReader), shared with
// the serve-mode wire protocol — identical byte semantics to the original
// in-file classes, so existing checkpoints load unchanged.

void WriteParams(const FprasParams& p, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(p.schedule));
  w->I32(p.m);
  w->I32(p.n);
  w->F64(p.eps);
  w->F64(p.delta);
  // Derived values are stored verbatim rather than re-derived on load:
  // libm differences across platforms must not perturb a restored run.
  w->F64(p.beta);
  w->F64(p.eta);
  w->I64(p.ns);
  w->I64(p.xns);
  w->F64(p.calibration.ns_scale);
  w->F64(p.calibration.xns_log_scale);
  w->F64(p.calibration.trial_scale);
  w->I64(p.calibration.ns_floor);
  w->I64(p.calibration.trial_floor);
  w->F64(p.calibration.xns_multiplier_floor);
  w->U8(p.perturb_support ? 1 : 0);
  w->U8(p.memoize_unions ? 1 : 0);
  w->U8(p.amortize_oracle ? 1 : 0);
  w->U8(p.recycle_samples ? 1 : 0);
  w->U8(p.csr_hot_path ? 1 : 0);
  w->U8(p.simd_kernels ? 1 : 0);
  w->I32(p.num_threads);
  w->I32(p.batch_width);
  w->I64(p.memo_capacity);
  // v2 extension: the symbol-class knob changes which RNG substreams a run
  // consumes, so a resumed session must keep the saved setting by default.
  w->U8(p.symbol_classes ? 1 : 0);
}

Status ReadParams(ByteReader* r, uint32_t version, FprasParams* p) {
  uint32_t schedule = 0;
  NFA_RETURN_NOT_OK(r->U32(&schedule));
  if (schedule > static_cast<uint32_t>(Schedule::kAcjr)) {
    return Status::Invalid("checkpoint: unknown schedule id");
  }
  p->schedule = static_cast<Schedule>(schedule);
  NFA_RETURN_NOT_OK(r->I32(&p->m));
  NFA_RETURN_NOT_OK(r->I32(&p->n));
  NFA_RETURN_NOT_OK(r->F64(&p->eps));
  NFA_RETURN_NOT_OK(r->F64(&p->delta));
  NFA_RETURN_NOT_OK(r->F64(&p->beta));
  NFA_RETURN_NOT_OK(r->F64(&p->eta));
  NFA_RETURN_NOT_OK(r->I64(&p->ns));
  NFA_RETURN_NOT_OK(r->I64(&p->xns));
  NFA_RETURN_NOT_OK(r->F64(&p->calibration.ns_scale));
  NFA_RETURN_NOT_OK(r->F64(&p->calibration.xns_log_scale));
  NFA_RETURN_NOT_OK(r->F64(&p->calibration.trial_scale));
  NFA_RETURN_NOT_OK(r->I64(&p->calibration.ns_floor));
  NFA_RETURN_NOT_OK(r->I64(&p->calibration.trial_floor));
  NFA_RETURN_NOT_OK(r->F64(&p->calibration.xns_multiplier_floor));
  uint8_t flag = 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->perturb_support = flag != 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->memoize_unions = flag != 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->amortize_oracle = flag != 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->recycle_samples = flag != 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->csr_hot_path = flag != 0;
  NFA_RETURN_NOT_OK(r->U8(&flag));
  p->simd_kernels = flag != 0;
  NFA_RETURN_NOT_OK(r->I32(&p->num_threads));
  NFA_RETURN_NOT_OK(r->I32(&p->batch_width));
  NFA_RETURN_NOT_OK(r->I64(&p->memo_capacity));
  if (version >= 2) {
    NFA_RETURN_NOT_OK(r->U8(&flag));
    p->symbol_classes = flag != 0;
  } else {
    p->symbol_classes = true;  // v1 predates the knob
  }
  if (p->m < 1 || p->n < 0 || !(p->eps > 0.0) ||
      !(p->delta > 0.0 && p->delta < 1.0) || p->ns < 1 || p->xns < p->ns) {
    return Status::Invalid("checkpoint: parameter block fails validation");
  }
  // Allocation guards: engine construction sizes tables by these fields
  // before any level data is read, so a crafted file must not be able to
  // demand absurd allocations (the failure model is Status, not bad_alloc).
  // 2^24 (q, ℓ) cells / 2^30 samples per cell are far beyond any session
  // this loader's machine could have produced.
  if (p->n > (1 << 24) ||
      static_cast<int64_t>(p->m) * (static_cast<int64_t>(p->n) + 1) >
          (int64_t{1} << 24) ||
      p->ns > (int64_t{1} << 30)) {
    return Status::Invalid("checkpoint: dimensions exceed loader limits");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeSessionCheckpoint(const EngineSession& session) {
  const FprasEngine& engine = session.engine();
  const int m = session.nfa().num_states();
  const int computed = session.computed_level();

  ByteWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kCheckpointVersion);
  w.U32(kEndianMarker);

  w.U64(session.seed());
  WriteParams(session.params(), &w);
  w.I32(computed);
  w.I64(engine.draw_cursor());
  w.String(NfaToText(session.nfa()));

  for (int level = 0; level <= computed; ++level) {
    const LevelState& state = engine.LevelStateAt(level);
    for (int q = 0; q < m; ++q) {
      const StateLevelData& cell = state.cells[static_cast<size_t>(q)];
      w.F64(cell.count_estimate);
      w.I64(cell.samples.count());
      // One u16 LE per symbol (canonical byte order on any host; v1 files
      // stored one byte per symbol).
      for (Symbol s : cell.samples.symbols_slab()) w.U16(s);
      const std::vector<uint64_t>& profiles = cell.samples.profiles_slab();
      for (uint64_t word : profiles) w.U64(word);
    }
  }

  w.U64(Fnv1a64(w.buffer().data(), w.buffer().size()));
  return std::move(w.buffer());
}

Result<EngineSession> DeserializeSessionCheckpoint(const std::string& bytes,
                                                   const SessionKnobs* knobs) {
  if (bytes.size() < kPreambleBytes + kChecksumBytes) {
    return Status::DataLoss("checkpoint truncated: shorter than preamble");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("not a session checkpoint (bad magic)");
  }
  ByteReader preamble(bytes.data() + sizeof(kMagic), 8);
  uint32_t version = 0;
  uint32_t endian = 0;
  NFA_RETURN_NOT_OK(preamble.U32(&version));
  NFA_RETURN_NOT_OK(preamble.U32(&endian));
  if (version < 1 || version > kCheckpointVersion) {
    return Status::Invalid("unsupported checkpoint version " +
                           std::to_string(version) + " (expected <= " +
                           std::to_string(kCheckpointVersion) + ")");
  }
  if (endian != kEndianMarker) {
    return Status::Invalid(
        "checkpoint byte order is not canonical little-endian");
  }

  const size_t body_size = bytes.size() - kChecksumBytes;
  ByteReader tail(bytes.data() + body_size, kChecksumBytes);
  uint64_t stored_sum = 0;
  NFA_RETURN_NOT_OK(tail.U64(&stored_sum));
  if (Fnv1a64(bytes.data(), body_size) != stored_sum) {
    return Status::DataLoss("checkpoint integrity checksum mismatch");
  }

  ByteReader r(bytes.data() + kPreambleBytes,
               body_size - kPreambleBytes);
  uint64_t seed = 0;
  NFA_RETURN_NOT_OK(r.U64(&seed));
  FprasParams params;
  NFA_RETURN_NOT_OK(ReadParams(&r, version, &params));
  int32_t computed = 0;
  NFA_RETURN_NOT_OK(r.I32(&computed));
  int64_t draw_cursor = 0;
  NFA_RETURN_NOT_OK(r.I64(&draw_cursor));
  if (computed < 0 || computed > params.n) {
    return Status::Invalid("checkpoint: computed level outside [0, horizon]");
  }

  std::string nfa_text;
  NFA_RETURN_NOT_OK(r.String(&nfa_text, bytes.size()));
  Result<Nfa> parsed = ParseNfaText(nfa_text);
  if (!parsed.ok()) {
    return Status::Invalid("checkpoint: embedded automaton unreadable: " +
                           parsed.status().message());
  }
  auto nfa = std::make_unique<Nfa>(std::move(parsed).value());
  if (nfa->num_states() != params.m) {
    return Status::Invalid(
        "checkpoint: automaton size disagrees with parameter block");
  }

  const int m = params.m;
  const size_t profile_words = (static_cast<size_t>(m) + 63) / 64;
  // Every serialized cell occupies at least 16 bytes (count estimate +
  // sample count), so the claimed level range must fit the bytes actually
  // present before anything is allocated for it.
  if ((static_cast<uint64_t>(computed) + 1) * static_cast<uint64_t>(m) * 16 >
      r.remaining()) {
    return Status::DataLoss("checkpoint truncated: level data missing");
  }
  std::vector<LevelState> levels(static_cast<size_t>(computed) + 1);
  for (int level = 0; level <= computed; ++level) {
    LevelState& state = levels[static_cast<size_t>(level)];
    state.level = level;
    state.cells.resize(static_cast<size_t>(m));
    for (int q = 0; q < m; ++q) {
      StateLevelData& cell = state.cells[static_cast<size_t>(q)];
      NFA_RETURN_NOT_OK(r.F64(&cell.count_estimate));
      int64_t count = 0;
      NFA_RETURN_NOT_OK(r.I64(&count));
      // Bound the claimed sample count by the bytes remaining for this
      // cell's slabs (level symbols + profile words per sample) before
      // sizing any vector by it. v1 files store one byte per symbol, v2
      // files two (u16 LE).
      const uint64_t symbol_bytes = version >= 2 ? 2 : 1;
      const uint64_t per_sample =
          static_cast<uint64_t>(level) * symbol_bytes +
          profile_words * sizeof(uint64_t);
      if (count < 0 ||
          static_cast<uint64_t>(count) > r.remaining() / per_sample) {
        return Status::DataLoss("checkpoint: sample count corrupt");
      }
      std::vector<Symbol> symbols(static_cast<size_t>(count) *
                                  static_cast<size_t>(level));
      if (version >= 2) {
        for (Symbol& s : symbols) NFA_RETURN_NOT_OK(r.U16(&s));
      } else {
        for (Symbol& s : symbols) {
          uint8_t narrow = 0;
          NFA_RETURN_NOT_OK(r.U8(&narrow));
          s = narrow;
        }
      }
      std::vector<uint64_t> profiles(static_cast<size_t>(count) *
                                     profile_words);
      for (uint64_t& word : profiles) {
        NFA_RETURN_NOT_OK(r.U64(&word));
      }
      NFA_RETURN_NOT_OK(cell.samples.Restore(level, static_cast<size_t>(m),
                                             count, std::move(symbols),
                                             std::move(profiles)));
    }
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("checkpoint: trailing bytes after level data");
  }

  if (knobs != nullptr) {
    params.num_threads = knobs->num_threads;
    params.batch_width = knobs->batch_width;
    params.simd_kernels = knobs->simd_kernels;
    params.csr_hot_path = knobs->csr_hot_path;
    if (knobs->descent_cache_capacity >= 0) {
      params.descent_cache_capacity = knobs->descent_cache_capacity;
    }
    // Unlike the knobs above, flipping symbol classes changes which RNG
    // substreams future work consumes (envelope-preserving, not
    // bit-preserving) — the tri-state default keeps the saved setting.
    if (knobs->symbol_classes >= 0) {
      params.symbol_classes = knobs->symbol_classes != 0;
    }
  }
  return EngineSession::Restore(std::move(nfa), params, seed, computed,
                                std::move(levels), draw_cursor);
}

Status SaveSessionCheckpoint(const EngineSession& session,
                             const std::string& path) {
  const std::string bytes = SerializeSessionCheckpoint(session);
  // Crash-safe save: write the complete checkpoint to <path>.tmp, flush it
  // to stable storage, then atomically rename over the destination. A crash,
  // kill, or I/O failure at any point leaves `path` holding either the old
  // checkpoint or the new one in full — never a truncated file — and a
  // failed save never removes a pre-existing checkpoint (the old in-place
  // writer clobbered it mid-fwrite and std::remove'd it on short writes).
  const std::string tmp_path = path + ".tmp";
  const failpoint::Eval fault = failpoint::Check("checkpoint.write");
  if (fault.action == failpoint::Action::kError) {
    return Status::DataLoss("failpoint checkpoint.write: injected failure: " +
                            tmp_path);
  }
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Invalid("cannot open checkpoint temp file for writing: " +
                           tmp_path);
  }
  size_t to_write = bytes.size();
  if (fault.action == failpoint::Action::kShortWrite &&
      static_cast<size_t>(fault.arg) < to_write) {
    to_write = static_cast<size_t>(fault.arg);
  }
  bool ok = std::fwrite(bytes.data(), 1, to_write, f) == bytes.size();
  if (ok && std::fflush(f) != 0) ok = false;
#ifndef _WIN32
  // fflush only moves bytes into the kernel; fsync makes the rename below a
  // durable old-or-new choice even across power loss.
  if (ok && fsync(fileno(f)) != 0) ok = false;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp_path.c_str());  // the checkpoint at `path` is untouched
    return Status::DataLoss("short write while saving checkpoint: " +
                            tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::DataLoss("cannot move checkpoint into place: " + path);
  }
  return Status::Ok();
}

namespace {

Status ReadCheckpointBytes(const std::string& path, std::string* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open checkpoint file: " + path);
  }
  bytes->clear();
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes->append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::DataLoss("read error while loading checkpoint: " + path);
  }
  return Status::Ok();
}

}  // namespace

Result<EngineSession> LoadSessionCheckpoint(const std::string& path,
                                            const SessionKnobs* knobs) {
  std::string bytes;
  NFA_RETURN_NOT_OK(ReadCheckpointBytes(path, &bytes));
  return DeserializeSessionCheckpoint(bytes, knobs);
}

Status ValidateSessionCheckpoint(const std::string& path) {
  std::string bytes;
  NFA_RETURN_NOT_OK(ReadCheckpointBytes(path, &bytes));
  if (bytes.size() < kPreambleBytes + kChecksumBytes) {
    return Status::DataLoss("checkpoint truncated: shorter than preamble: " +
                            path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("not a session checkpoint (bad magic): " + path);
  }
  ByteReader preamble(bytes.data() + sizeof(kMagic), 8);
  uint32_t version = 0;
  uint32_t endian = 0;
  NFA_RETURN_NOT_OK(preamble.U32(&version));
  NFA_RETURN_NOT_OK(preamble.U32(&endian));
  if (version < 1 || version > kCheckpointVersion) {
    return Status::Invalid("unsupported checkpoint version " +
                           std::to_string(version) + ": " + path);
  }
  if (endian != kEndianMarker) {
    return Status::Invalid(
        "checkpoint byte order is not canonical little-endian: " + path);
  }
  const size_t body_size = bytes.size() - kChecksumBytes;
  ByteReader tail(bytes.data() + body_size, kChecksumBytes);
  uint64_t stored_sum = 0;
  NFA_RETURN_NOT_OK(tail.U64(&stored_sum));
  if (Fnv1a64(bytes.data(), body_size) != stored_sum) {
    return Status::DataLoss("checkpoint integrity checksum mismatch: " + path);
  }
  return Status::Ok();
}

}  // namespace nfacount
