#include "fpras/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nfacount {

namespace {

constexpr double kE = 2.718281828459045;

/// Clamps x into [lo, hi] after ceil(), as an int64.
int64_t CeilClamp(double x, int64_t lo) {
  if (!(x > 0.0)) return lo;
  double c = std::ceil(x);
  if (c >= 9.0e18) return int64_t{9000000000000000000};
  return std::max(lo, static_cast<int64_t>(c));
}

}  // namespace

const char* ScheduleName(Schedule schedule) {
  switch (schedule) {
    case Schedule::kFaster: return "faster(MCM24)";
    case Schedule::kAcjr:   return "acjr(ACJR21)";
  }
  return "?";
}

Calibration Calibration::Practical() {
  Calibration cal;
  cal.ns_scale = 1.0e-8;
  cal.xns_log_scale = 0.6;
  cal.trial_scale = 4.0e-7;
  cal.ns_floor = 128;
  cal.trial_floor = 256;
  cal.xns_multiplier_floor = 6.0;
  return cal;
}

Calibration Calibration::Thorough() {
  Calibration cal;
  cal.ns_scale = 6.0e-8;
  cal.xns_log_scale = 0.8;
  cal.trial_scale = 2.0e-6;
  cal.ns_floor = 256;
  cal.trial_floor = 768;
  cal.xns_multiplier_floor = 6.0;
  return cal;
}

double FasterScheduleNs(int m, int n, double eps, double delta) {
  // ns = 4096·e·n⁴/ε² · ln(4096·m²·n²·ln(ε⁻²)/δ)   (Alg. 3 line 2)
  const double n4 = std::pow(static_cast<double>(std::max(n, 1)), 4);
  double inner = std::log(1.0 / (eps * eps));  // ln(ε⁻²)
  inner = std::max(inner, 1.0);                // guard ε >= 0.6 regimes
  const double log_arg =
      std::max(4096.0 * m * m * std::max(n, 1) * std::max(n, 1) * inner / delta, kE);
  return 4096.0 * kE * n4 / (eps * eps) * std::log(log_arg);
}

double AcjrScheduleNs(int m, int n, double eps) {
  // κ = m·n/ε; ACJR maintain O(κ⁷) samples per (state, level).
  const double kappa =
      static_cast<double>(m) * static_cast<double>(std::max(n, 1)) / eps;
  return std::pow(kappa, 7);
}

double FprasParams::DeltaForCountUnion() const {
  const double denom = 2.0 * (1.0 - std::pow(2.0, -(n + 1.0)));
  return eta / denom;
}

double FprasParams::EtaForSampleCall() const {
  return eta / (2.0 * static_cast<double>(xns));
}

double FprasParams::EpsSzAtLevel(int level) const {
  if (level <= 1) return 0.0;
  return std::pow(1.0 + beta, level - 1) - 1.0;
}

Result<FprasParams> FprasParams::Make(Schedule schedule, int m, int n, double eps,
                                      double delta, const Calibration& calibration) {
  if (m < 1) return Status::Invalid("m must be >= 1");
  if (n < 0) return Status::Invalid("n must be >= 0");
  if (!(eps > 0.0)) return Status::Invalid("eps must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) return Status::Invalid("delta must be in (0,1)");

  FprasParams p;
  p.schedule = schedule;
  p.m = m;
  p.n = n;
  p.eps = eps;
  p.delta = delta;
  p.calibration = calibration;

  const double nn = static_cast<double>(std::max(n, 1));
  p.beta = eps / (4.0 * nn * nn);
  p.eta = delta / (2.0 * nn * static_cast<double>(m));

  const double raw_ns = (schedule == Schedule::kFaster)
                            ? FasterScheduleNs(m, n, eps, delta)
                            : AcjrScheduleNs(m, n, eps);
  p.ns = CeilClamp(raw_ns * calibration.ns_scale, calibration.ns_floor);

  // xns = ns · 12·(1 − 2/(3e²))⁻¹ · ln(8/η)   (Alg. 3 line 3)
  const double reject_factor = 12.0 / (1.0 - 2.0 / (3.0 * kE * kE));
  double multiplier =
      reject_factor * std::log(8.0 / p.eta) * calibration.xns_log_scale;
  multiplier = std::max(multiplier, calibration.xns_multiplier_floor);
  p.xns = CeilClamp(static_cast<double>(p.ns) * multiplier, p.ns);
  return p;
}

std::string FprasParams::ToString() const {
  std::ostringstream os;
  os << "FprasParams{" << ScheduleName(schedule) << ", m=" << m << ", n=" << n
     << ", eps=" << eps << ", delta=" << delta << ", beta=" << beta
     << ", eta=" << eta << ", ns=" << ns << ", xns=" << xns
     << ", perturb=" << (perturb_support ? 1 : 0)
     << ", memoize=" << (memoize_unions ? 1 : 0)
     << ", amortize=" << (amortize_oracle ? 1 : 0)
     << ", csr=" << (csr_hot_path ? 1 : 0)
     << ", classes=" << (symbol_classes ? 1 : 0)
     << ", threads=" << num_threads
     << ", batch=" << ResolvedBatchWidth()
     << ", simd=" << (simd_kernels ? 1 : 0) << "}";
  return os.str();
}

}  // namespace nfacount
