// Binary session checkpoints: persist an EngineSession's full computed state
// (automaton, derived parameters, every computed LevelState, and the post-run
// draw cursor) and restore it in another process, on another machine, or
// under different runtime knobs — with bit-identical results.
//
// Format (docs/FILE_FORMATS.md "Session checkpoints (.ckpt)"): a fixed
// preamble — magic "NFCK", format version, endianness marker — followed by a
// canonical little-endian body and a trailing FNV-1a 64 integrity checksum.
// The file is self-contained: the automaton rides along as its text
// serialization (automata/io.hpp), so a checkpoint needs no side files.
//
// Failure model: every defect is a Status, never UB or a partial session —
//   InvalidArgument  not a checkpoint (bad magic) / unsupported version /
//                    non-canonical byte order / inconsistent dimensions
//   DataLoss         truncated file or checksum mismatch (bit corruption)
//
// Deliberately NOT serialized: the union-size memo (a pure cache whose
// entries are content-keyed — recomputation reproduces them exactly, so a
// resumed session is merely cache-cold, never different) and the
// diagnostics counters (a resumed session restarts them at zero).

#ifndef NFACOUNT_FPRAS_CHECKPOINT_HPP_
#define NFACOUNT_FPRAS_CHECKPOINT_HPP_

#include <string>

#include "fpras/session.hpp"

namespace nfacount {

/// Current checkpoint format version (bumped on any layout change; readers
/// reject other versions rather than guessing).
inline constexpr uint32_t kCheckpointVersion = 1;

/// Serializes `session` to `path` (atomically overwrites on success is NOT
/// guaranteed — write to a temp path and rename for that). The session's
/// computed prefix, not the horizon, bounds the file size.
Status SaveSessionCheckpoint(const EngineSession& session,
                             const std::string& path);

/// Restores a session saved by SaveSessionCheckpoint. `knobs`, when given,
/// replaces the saved runtime knobs (threads, batch width, SIMD, layout) —
/// the determinism contract makes this invisible in every result.
Result<EngineSession> LoadSessionCheckpoint(const std::string& path,
                                            const SessionKnobs* knobs = nullptr);

/// In-memory variants (testing, alternative transports): the byte string is
/// exactly the file contents.
std::string SerializeSessionCheckpoint(const EngineSession& session);
Result<EngineSession> DeserializeSessionCheckpoint(const std::string& bytes,
                                                   const SessionKnobs* knobs =
                                                       nullptr);

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_CHECKPOINT_HPP_
