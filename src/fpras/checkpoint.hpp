// Binary session checkpoints: persist an EngineSession's full computed state
// (automaton, derived parameters, every computed LevelState, and the post-run
// draw cursor) and restore it in another process, on another machine, or
// under different runtime knobs — with bit-identical results.
//
// Format (docs/FILE_FORMATS.md "Session checkpoints (.ckpt)"): a fixed
// preamble — magic "NFCK", format version, endianness marker — followed by a
// canonical little-endian body and a trailing FNV-1a 64 integrity checksum.
// The file is self-contained: the automaton rides along as its text
// serialization (automata/io.hpp), so a checkpoint needs no side files.
//
// Failure model: every defect is a Status, never UB or a partial session —
//   InvalidArgument  not a checkpoint (bad magic) / unsupported version /
//                    non-canonical byte order / inconsistent dimensions
//   DataLoss         truncated file or checksum mismatch (bit corruption)
//
// Deliberately NOT serialized: the union-size memo and the descent cache
// (pure caches whose entries are content-keyed — recomputation reproduces
// them exactly, so a resumed session is merely cache-cold, never different;
// the descent-cache capacity is a runtime knob carried by SessionKnobs, not
// by the format) and the diagnostics counters (a resumed session restarts
// them at zero).

#ifndef NFACOUNT_FPRAS_CHECKPOINT_HPP_
#define NFACOUNT_FPRAS_CHECKPOINT_HPP_

#include <string>

#include "fpras/session.hpp"

namespace nfacount {

/// Current checkpoint format version (bumped on any layout change; readers
/// reject unknown versions rather than guessing). v2 widened stored-word
/// symbols from one byte to u16 LE and appended the `symbol_classes` flag to
/// the parameter block; v1 files still load (1-byte symbols, flag defaults
/// to on).
inline constexpr uint32_t kCheckpointVersion = 2;

/// Serializes `session` to `path` crash-safely: the checkpoint is written to
/// `<path>.tmp`, flushed and fsynced, then atomically renamed over `path`.
/// On any failure (and across crashes or kills mid-save) a pre-existing
/// checkpoint at `path` survives untouched, and the temp file is removed on
/// every failure this process observes. The session's computed prefix, not
/// the horizon, bounds the file size.
Status SaveSessionCheckpoint(const EngineSession& session,
                             const std::string& path);

/// Integrity probe without the cost (or side effects) of a full restore:
/// reads `path`, verifies the preamble (magic, supported version, canonical
/// byte order) and the trailing FNV-1a checksum over the body. Ok means the
/// bytes are exactly what a writer produced; registry recovery uses this to
/// decide revive-vs-quarantine before any session state is built. Errors
/// match LoadSessionCheckpoint's taxonomy (NotFound / InvalidArgument /
/// DataLoss).
///
/// Fault injection: SaveSessionCheckpoint honors the `checkpoint.write`
/// failpoint (util/failpoint.hpp) — error and short-write actions on the
/// temp-file write, replacing the old internal::g_checkpoint_write_limit
/// hook.
Status ValidateSessionCheckpoint(const std::string& path);

/// Restores a session saved by SaveSessionCheckpoint. `knobs`, when given,
/// replaces the saved runtime knobs (threads, batch width, SIMD, layout) —
/// the determinism contract makes this invisible in every result.
Result<EngineSession> LoadSessionCheckpoint(const std::string& path,
                                            const SessionKnobs* knobs = nullptr);

/// In-memory variants (testing, alternative transports): the byte string is
/// exactly the file contents.
std::string SerializeSessionCheckpoint(const EngineSession& session);
Result<EngineSession> DeserializeSessionCheckpoint(const std::string& bytes,
                                                   const SessionKnobs* knobs =
                                                       nullptr);

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_CHECKPOINT_HPP_
