#include "fpras/acjr.hpp"

namespace nfacount {

Result<CountEstimate> ApproxCountAcjr(const Nfa& nfa, int n,
                                      CountOptions options) {
  options.schedule = Schedule::kAcjr;
  return ApproxCount(nfa, n, options);
}

double ScheduleSampleRatio(int m, int n, double eps, double delta) {
  return AcjrScheduleNs(m, n, eps) / FasterScheduleNs(m, n, eps, delta);
}

}  // namespace nfacount
