// Data plane of the batched multi-walk sampler (Algorithm 2 in lockstep).
//
// A batch of B candidate walks descends the levels together. Their frontiers
// live in a FrontierPlane — a row-major B×m bit-matrix stored as one
// contiguous uint64 slab — and walks whose symbol histories coincide share a
// single row ("group"): all walks start in one group at the target frontier,
// and a group splits only when members draw different symbols, so every
// predecessor expansion and union-size estimation runs once per (group,
// symbol) instead of once per walk. The SampleArena bundles the two
// ping-pong planes with all per-walk and per-group state (symbol staging,
// acceptance weights, RNG substreams, group maps, size vectors) into one
// per-worker slab that is reused across cells and batches: after the first
// few batches warm its capacity, a walk allocates nothing.
//
// Everything here is inert storage plus capacity accounting; the sweep logic
// lives in FprasEngine::RunWalkBatch (fpras/estimator.cpp).

#ifndef NFACOUNT_FPRAS_PLANE_HPP_
#define NFACOUNT_FPRAS_PLANE_HPP_

#include <cstdint>
#include <vector>

#include "automata/alphabet.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace nfacount {

/// Row-major bit-matrix of walk-group frontiers: `rows` rows of `bits` bits,
/// each row padded to whole words, all rows in one contiguous buffer.
/// Reshape() keeps the underlying capacity, so a plane sized once for the
/// widest batch never allocates again.
class FrontierPlane {
 public:
  /// Resizes to `rows` rows of `bits` bits. Contents become unspecified
  /// (rows are fully overwritten by the sweep before being read).
  void Reshape(int rows, size_t bits) {
    row_words_ = (bits + 63) / 64;
    rows_ = rows;
    const size_t need = static_cast<size_t>(rows) * row_words_;
    if (need > words_.capacity()) ++alloc_events_;
    words_.resize(need);
  }

  uint64_t* Row(int r) {
    return words_.data() + static_cast<size_t>(r) * row_words_;
  }
  const uint64_t* Row(int r) const {
    return words_.data() + static_cast<size_t>(r) * row_words_;
  }

  int rows() const { return rows_; }
  size_t row_words() const { return row_words_; }

  int64_t bytes_reserved() const {
    return static_cast<int64_t>(words_.capacity() * sizeof(uint64_t));
  }
  int64_t alloc_events() const { return alloc_events_; }

 private:
  std::vector<uint64_t> words_;
  size_t row_words_ = 0;
  int rows_ = 0;
  int64_t alloc_events_ = 0;
};

/// Per-worker slab backing one in-flight walk batch. PrepareRun() sizes
/// everything once for the engine's (batch width, n, m); BeginBatch() then
/// only rewinds counters and reshapes within reserved capacity. The arena is
/// plain data — the engine indexes it directly.
class SampleArena {
 public:
  /// Walk status codes (state_of values).
  static constexpr uint8_t kAlive = 0;
  static constexpr uint8_t kDead = 1;
  static constexpr uint8_t kAccepted = 2;

  /// Per-walk outcome codes (outcome_of values), staged by the sweep and
  /// folded into the engine diagnostics only for the attempts the caller
  /// actually consumes — the mechanism that keeps the per-walk counters
  /// exact for every batch width.
  static constexpr uint8_t kOutcomeAccepted = 0;  ///< base-case accept
  static constexpr uint8_t kOutcomePhi = 1;       ///< Fail1: φ > 1
  static constexpr uint8_t kOutcomeBernoulli = 2; ///< Fail2: ⊥ at the base
  static constexpr uint8_t kOutcomeDead = 3;      ///< dead branch mid-walk

  /// One-time (per Run) sizing for batches of up to `max_batch` walks over
  /// words of length up to `max_word_len` and frontiers of `bits` bits.
  /// `num_classes` is the per-group symbol stride — the number of symbol
  /// classes (|Σ| under the trivial partition): child_of rows and sz
  /// vectors hold one slot per class.
  void PrepareRun(int max_batch, int max_word_len, size_t bits,
                  int num_classes);

  /// Rewinds the arena for one batch of `batch` walks of word length
  /// `word_len` (≥ 0). Does not touch plane row contents.
  void BeginBatch(int batch, int word_len, size_t bits, int num_classes);

  /// Walk w's staged symbol buffer (stride = the batch's word length).
  Symbol* WordOf(int w) {
    return symbols.data() + static_cast<size_t>(w) * word_stride_;
  }
  const Symbol* WordOf(int w) const {
    return symbols.data() + static_cast<size_t>(w) * word_stride_;
  }

  /// Bytes reserved across the planes and slabs (memory diagnostics).
  int64_t bytes_reserved() const;
  /// Capacity-growth events since construction: stays flat after warmup —
  /// the "zero per-sample allocations" contract asserted by tests.
  int64_t alloc_events() const;

  // Ping-pong frontier planes, rows indexed by group id at the current /
  // next level of the sweep.
  FrontierPlane cur;
  FrontierPlane next;

  // Per-walk state, indexed by walk slot [0, batch).
  std::vector<Symbol> symbols;      ///< batch × word_len staging slab
  std::vector<double> phi;          ///< acceptance weight φ per walk
  std::vector<Rng> rng;             ///< per-attempt content-keyed substream
  std::vector<int32_t> group_of;    ///< current group id per walk
  std::vector<int32_t> next_group_of;
  std::vector<uint8_t> state_of;    ///< kAlive / kDead / kAccepted
  std::vector<uint8_t> outcome_of;  ///< kOutcome* fate per walk
  std::vector<int32_t> accepted;    ///< accepted walk ids, attempt order

  // Per-group state at the current level, indexed by group id.
  std::vector<std::vector<double>> group_sizes;  ///< weighted sz_c per group
  std::vector<double> group_total;               ///< Σ_c weight_c·sz_c
  std::vector<uint8_t> group_ready;              ///< sizes computed yet?
  std::vector<int32_t> child_of;  ///< group × C → next-level group id

  // Scratch bitsets bridging plane rows into Bitset-taking APIs.
  Bitset frontier_scratch;  ///< group frontier view (UnionSizes, memo key)
  /// Descent-cache row-probe key. Separate from frontier_scratch because a
  /// group's symbol expansions can run after later groups have already
  /// overwritten frontier_scratch with their own size-estimation keys.
  Bitset descent_scratch;
  Bitset expand_scratch;    ///< legacy-layout expansion input
  Bitset profile_cur;       ///< fused forward reach-profile pass
  Bitset profile_next;

 private:
  template <typename T>
  void Ensure(std::vector<T>& v, size_t n) {
    if (n > v.capacity()) ++vector_alloc_events_;
    if (v.size() < n) v.resize(n);
  }

  /// Single up-front sizing of the per-group sz vectors: `rows` group slots,
  /// each holding capacity for `num_classes` entries. Shared by PrepareRun
  /// and BeginBatch so a batch wider than the PrepareRun reservation can
  /// never index past group_sizes (the old BeginBatch skipped this slab).
  void EnsureGroupSizes(int rows, int num_classes);

  size_t word_stride_ = 0;
  int64_t vector_alloc_events_ = 0;
};

}  // namespace nfacount

#endif  // NFACOUNT_FPRAS_PLANE_HPP_
