#include "fpras/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "counting/union_mc.hpp"
#include "util/timer.hpp"

namespace nfacount {

namespace {

constexpr double kE = 2.718281828459045;
constexpr double kGammaNumerator = 2.0 / (3.0 * kE);  // γ0·N = 2/(3e)

/// AppUnion input adapter over one predecessor's (S, N) pair. Membership of a
/// stored word σ in L(p^{|σ|}) is a bit probe on its reach profile, or a full
/// re-simulation when oracle amortization is ablated. owner()/universe()
/// additionally satisfy the AppUnionBatched concept (prefix-mask coverage
/// over the state-id universe).
struct PredecessorInput {
  const StateLevelData* data;
  StateId state;
  const Nfa* nfa;
  bool amortized;

  double size_estimate() const { return data->count_estimate; }
  int64_t num_samples() const {
    return static_cast<int64_t>(data->samples.size());
  }
  const StoredSample& Sample(int64_t idx) const {
    return data->samples[static_cast<size_t>(idx)];
  }
  bool Contains(const StoredSample& sample) const {
    if (amortized) return sample.reach.Test(state);
    return nfa->Reach(sample.word).Test(state);
  }
  int owner() const { return static_cast<int>(state); }
  size_t universe() const { return static_cast<size_t>(nfa->num_states()); }
};

/// Shared AppUnion parameterization for a given level and δ.
AppUnionParams MakeUnionParams(const FprasParams& p, double delta_param,
                               int level) {
  AppUnionParams au;
  au.eps = p.beta;
  au.delta = delta_param;
  au.eps_sz = p.EpsSzAtLevel(level);
  au.trial_scale = p.calibration.trial_scale;
  au.min_trials = p.calibration.trial_floor;
  au.starvation = p.recycle_samples ? StarvationPolicy::kRecycle
                                    : StarvationPolicy::kBreak;
  return au;
}

}  // namespace

FprasEngine::FprasEngine(const Nfa* nfa, FprasParams params, uint64_t seed)
    : nfa_(nfa),
      params_(params),
      unrolled_(nfa, params.n),
      rng_(seed),
      pred_scratch_(nfa->num_states()) {
  assert(nfa != nullptr && nfa->Validate().ok());
  assert(params.m == nfa->num_states());
}

double FprasEngine::CountEstimateFor(StateId q, int level) const {
  assert(level >= 0 && level <= params_.n);
  return table_[level][q].count_estimate;
}

const std::vector<StoredSample>& FprasEngine::SamplesFor(StateId q,
                                                         int level) const {
  assert(level >= 0 && level <= params_.n);
  return table_[level][q].samples;
}

std::vector<double> FprasEngine::UnionSizes(int level, const Bitset& state_set,
                                            double delta_param, bool use_memo) {
  assert(level >= 1 && level <= params_.n);
  use_memo = use_memo && params_.memoize_unions;
  if (use_memo) {
    auto it = memo_[level].find(state_set);
    if (it != memo_[level].end()) {
      ++diag_.memo_hits;
      return it->second;
    }
    ++diag_.memo_misses;
  }

  const int k = nfa_->alphabet_size();
  std::vector<double> sizes(k, 0.0);
  AppUnionParams au = MakeUnionParams(params_, delta_param, level);

  for (int b = 0; b < k; ++b) {
    // Predecessor expansion on the flat layout (or the legacy pointer walk
    // when ablated); `pred_scratch_` avoids a per-(symbol, call) allocation.
    Bitset& preds = pred_scratch_;
    if (params_.csr_hot_path) {
      unrolled_.PredSetInto(state_set, static_cast<Symbol>(b), level, &preds);
    } else {
      preds = unrolled_.PredSetLegacy(state_set, static_cast<Symbol>(b), level);
    }
    if (preds.None()) continue;
    std::vector<PredecessorInput> inputs;
    inputs.reserve(preds.Count());
    preds.ForEachSet([&](int p) {
      inputs.push_back(PredecessorInput{&table_[level - 1][p],
                                        static_cast<StateId>(p), nfa_,
                                        params_.amortize_oracle});
    });
    std::vector<const PredecessorInput*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& in : inputs) ptrs.push_back(&in);

    // Batched membership needs reach profiles, which only exist when the
    // oracle is amortized; the E9 ablation path keeps the per-probe loop.
    AppUnionOutcome outcome =
        (params_.csr_hot_path && params_.amortize_oracle)
            ? AppUnionBatched(ptrs, au, union_scratch_, rng_)
            : AppUnion(ptrs, au, rng_);
    ++diag_.appunion_calls;
    diag_.appunion_trials += outcome.completed_trials;
    diag_.membership_checks += outcome.membership_checks;
    if (outcome.starved) ++diag_.starvations;
    sizes[b] = outcome.estimate;
  }

  if (use_memo && memo_entries_ < params_.memo_capacity) {
    memo_[level].emplace(state_set, sizes);
    ++memo_entries_;
  }
  return sizes;
}

std::optional<Word> FprasEngine::SampleInternal(int level,
                                                const Bitset& state_set,
                                                double phi0) {
  ++diag_.sample_calls;
  const double eta_call = params_.EtaForSampleCall();
  const double delta_union = eta_call / (4.0 * std::max(params_.n, 1));

  double phi = phi0;
  Word word(level);
  // Two ping-pong frontier buffers: the backward walk allocates once per
  // draw instead of once per level step.
  Bitset cur = state_set;
  Bitset next(nfa_->num_states());
  for (int i = level; i >= 1; --i) {
    std::vector<double> sizes = UnionSizes(i, cur, delta_union, /*use_memo=*/true);
    double total = 0.0;
    for (double s : sizes) total += s;
    if (!(total > 0.0)) {
      // Every symbol slice estimated empty: reachable only through a
      // perturbed/failed estimate; treat as rejection.
      ++diag_.fail_dead_branch;
      return std::nullopt;
    }
    int b = rng_.DiscreteIndex(sizes);
    assert(b >= 0);
    const double pr_b = sizes[b] / total;
    if (params_.csr_hot_path) {
      unrolled_.PredSetInto(cur, static_cast<Symbol>(b), i, &next);
      std::swap(cur, next);
    } else {
      cur = unrolled_.PredSetLegacy(cur, static_cast<Symbol>(b), i);
    }
    assert(cur.Any());
    word[i - 1] = static_cast<Symbol>(b);
    phi /= pr_b;
  }

  // Base case (Alg. 2 lines 4-6). The walk is guaranteed to land on the
  // initial state when it lands anywhere (PredSet intersects level-0
  // reachability = {initial}).
  if (!cur.Test(nfa_->initial())) {
    ++diag_.fail_dead_branch;
    return std::nullopt;
  }
  if (phi > 1.0) {
    ++diag_.fail_phi_gt_1;  // Fail1
    return std::nullopt;
  }
  if (!rng_.Bernoulli(phi)) {
    ++diag_.fail_bernoulli;  // Fail2
    return std::nullopt;
  }
  ++diag_.sample_success;
  return word;
}

double FprasEngine::PerturbedCount(int level) {
  // N(q^ℓ) ← Uniform{0, 1, ..., |Σ|^ℓ} (Alg. 3 line 19). |Σ|^ℓ can exceed any
  // integer type; the estimate is a double throughout, so draw a uniform real
  // over [0, |Σ|^ℓ] and round — identical for feasible ℓ, and the event has
  // probability η/2n anyway.
  const double top = std::pow(static_cast<double>(nfa_->alphabet_size()), level);
  if (top < 9.0e15) {
    return static_cast<double>(
        rng_.UniformU64(static_cast<uint64_t>(top) + 1));
  }
  return std::floor(rng_.UniformDouble() * top);
}

StoredSample FprasEngine::MakeStored(Word word) const {
  return params_.csr_hot_path ? unrolled_.MakeSample(std::move(word))
                              : unrolled_.MakeSampleLegacy(std::move(word));
}

void FprasEngine::RefillSamples(StateId q, int level) {
  StateLevelData& slot = table_[level][q];
  slot.samples.clear();
  const double count = slot.count_estimate;

  if (count > 0.0) {
    const double gamma0 = kGammaNumerator / count;
    Bitset target(nfa_->num_states());
    target.Set(q);
    for (int64_t attempt = 0;
         attempt < params_.xns &&
         static_cast<int64_t>(slot.samples.size()) < params_.ns;
         ++attempt) {
      std::optional<Word> word = SampleInternal(level, target, gamma0);
      if (word.has_value()) {
        slot.samples.push_back(MakeStored(std::move(*word)));
      }
    }
  }

  // Padding (Alg. 3 lines 27-30): duplicate one fixed witness word.
  const int64_t shortfall =
      params_.ns - static_cast<int64_t>(slot.samples.size());
  if (shortfall > 0) {
    std::optional<Word> witness = unrolled_.WitnessWord(q, level);
    assert(witness.has_value());  // q is reachable at this level
    StoredSample pad = MakeStored(std::move(*witness));
    diag_.padded_words += shortfall;
    for (int64_t i = 0; i < shortfall; ++i) slot.samples.push_back(pad);
  }
}

Status FprasEngine::Run() {
  WallTimer timer;
  NFA_RETURN_NOT_OK(nfa_->Validate());
  diag_ = FprasDiagnostics{};
  ran_ok_ = false;
  memo_entries_ = 0;

  const int n = params_.n;
  const int m = nfa_->num_states();
  table_.assign(n + 1, std::vector<StateLevelData>(m));
  memo_.assign(n + 1, {});

  // Level 0 (Alg. 3 lines 6-10): L(I⁰) = {λ}, everything else empty. The
  // sample list holds ns copies of λ — "uniform with replacement" from a
  // singleton language — so AppUnion cursors cannot starve at level 1.
  StateLevelData& base = table_[0][nfa_->initial()];
  base.count_estimate = 1.0;
  base.samples.assign(static_cast<size_t>(params_.ns), MakeStored(Word{}));

  const double delta_count_union = params_.DeltaForCountUnion();
  for (int level = 1; level <= n; ++level) {
    const Bitset& alive = unrolled_.ReachableAt(level);
    std::vector<int> states = alive.ToIndices();
    for (int q : states) {
      Bitset singleton(m);
      singleton.Set(q);
      // N(q^ℓ) = Σ_b sz_b (lines 12-17). This union-size computation uses its
      // own δ and fresh randomness — it is not memo-shared with sample().
      std::vector<double> sizes =
          UnionSizes(level, singleton, delta_count_union, /*use_memo=*/false);
      double total = 0.0;
      for (double s : sizes) total += s;

      if (params_.perturb_support &&
          rng_.Bernoulli(params_.eta / (2.0 * std::max(n, 1)))) {
        total = PerturbedCount(level);  // lines 18-19
        ++diag_.perturbed_counts;
      }
      table_[level][q].count_estimate = total;
      RefillSamples(q, level);
      ++diag_.states_processed;
    }
  }

  // Final answer. Single accepting state: N(q_F^n) (Alg. 3 line 31).
  // Multiple accepting states: |L(A_n)| = |∪_{f∈F} L(f^n)| via one more
  // AppUnion over the accepting states' (S, N) pairs (footnote 1: the single
  // final state assumption is WLOG).
  ran_ok_ = true;
  final_estimate_ = EstimateUnionOfStates(nfa_->accepting(), n);

  diag_.wall_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

double FprasEngine::EstimateUnionOfStates(const Bitset& targets, int level) {
  assert(ran_ok_);
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  const size_t count = alive.Count();
  if (count == 0) return 0.0;
  if (count == 1) return table_[level][alive.FirstSet()].count_estimate;

  std::vector<PredecessorInput> inputs;
  alive.ForEachSet([&](int q) {
    inputs.push_back(PredecessorInput{&table_[level][q], static_cast<StateId>(q),
                                      nfa_, params_.amortize_oracle});
  });
  std::vector<const PredecessorInput*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams au = MakeUnionParams(params_, params_.eta, level + 1);
  AppUnionOutcome outcome =
      (params_.csr_hot_path && params_.amortize_oracle)
          ? AppUnionBatched(ptrs, au, union_scratch_, rng_)
          : AppUnion(ptrs, au, rng_);
  ++diag_.appunion_calls;
  diag_.appunion_trials += outcome.completed_trials;
  diag_.membership_checks += outcome.membership_checks;
  if (outcome.starved) ++diag_.starvations;
  return outcome.estimate;
}

double FprasEngine::EstimateAtLength(int level) {
  assert(level >= 0 && level <= params_.n);
  if (level == 0) {
    return nfa_->IsAccepting(nfa_->initial()) ? 1.0 : 0.0;
  }
  return EstimateUnionOfStates(nfa_->accepting(), level);
}

std::optional<Word> FprasEngine::SampleWord(const Bitset& targets, int level) {
  assert(ran_ok_);
  assert(level >= 0 && level <= params_.n);
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  if (alive.None()) return std::nullopt;

  // γ0 = 2/(3e) · 1/N where N estimates |∪ L(q^level)|.
  double union_estimate = EstimateUnionOfStates(alive, level);
  if (!(union_estimate > 0.0)) return std::nullopt;
  return SampleInternal(level, alive, kGammaNumerator / union_estimate);
}

std::optional<Word> FprasEngine::SampleAcceptedWord() {
  return SampleWord(nfa_->accepting(), params_.n);
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Result<CountEstimate> ApproxCount(const Nfa& nfa, int n,
                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");

  CountEstimate out;
  if (n == 0) {
    // L(A_0) = {λ} iff the initial state accepts.
    out.estimate = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    FprasParams p;
    NFA_ASSIGN_OR_RETURN(p, FprasParams::Make(options.schedule, nfa.num_states(), 0,
                                              options.eps, options.delta,
                                              options.calibration));
    out.params = p;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  params.perturb_support = options.perturb_support;
  params.memoize_unions = options.memoize_unions;
  params.amortize_oracle = options.amortize_oracle;
  params.recycle_samples = options.recycle_samples;
  params.csr_hot_path = options.csr_hot_path;

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  out.estimate = engine.Estimate();
  out.params = engine.params();
  out.diagnostics = engine.diagnostics();
  return out;
}

Result<std::vector<double>> ApproxCountAllLengths(const Nfa& nfa, int n,
                                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");
  std::vector<double> out(n + 1, 0.0);
  if (n == 0) {
    out[0] = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  params.perturb_support = options.perturb_support;
  params.memoize_unions = options.memoize_unions;
  params.amortize_oracle = options.amortize_oracle;
  params.recycle_samples = options.recycle_samples;
  params.csr_hot_path = options.csr_hot_path;

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  for (int level = 0; level <= n; ++level) {
    out[level] = engine.EstimateAtLength(level);
  }
  return out;
}

}  // namespace nfacount
