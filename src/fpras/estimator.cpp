#include "fpras/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "counting/union_mc.hpp"
#include "util/timer.hpp"

namespace nfacount {

namespace {

constexpr double kE = 2.718281828459045;
constexpr double kGammaNumerator = 2.0 / (3.0 * kE);  // γ0·N = 2/(3e)

// Substream family tags (first ForSubstream coordinate, or HashCombine base).
// Cell streams use (a=q, b=ℓ) with small q, so the tags are large constants:
// a collision with a cell coordinate has probability ~2⁻⁶⁴ per key.
constexpr uint64_t kCountUnionTag = 0xC0C0C0C0C0C0C0C0ULL;
constexpr uint64_t kSampleUnionTag = 0x5A5A5A5A5A5A5A5AULL;
constexpr uint64_t kFinalUnionTag = 0xF1F1F1F1F1F1F1F1ULL;
constexpr uint64_t kDrawStreamTag = 0xD12AD12AD12AD12AULL;
constexpr uint64_t kRefillWalkTag = 0xB47CB47CB47CB47CULL;

/// Process-wide engine-parameter overrides, applied once at construction
/// because symbol_classes shapes the UnrolledNfa itself (the class index is
/// built with the automaton). NFACOUNT_SYMBOL_CLASSES=0 disables the class
/// layer for a whole test run (the CI fallback sweep, same idiom as
/// NFACOUNT_DESCENT_CACHE); any other integer enables it.
FprasParams ResolveEngineParams(FprasParams params) {
  if (const char* env = std::getenv("NFACOUNT_SYMBOL_CLASSES")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0') params.symbol_classes = parsed != 0;
  }
  return params;
}

/// Shared AppUnion parameterization for a given level and δ.
AppUnionParams MakeUnionParams(const FprasParams& p, double delta_param,
                               int level) {
  AppUnionParams au;
  au.eps = p.beta;
  au.delta = delta_param;
  au.eps_sz = p.EpsSzAtLevel(level);
  au.trial_scale = p.calibration.trial_scale;
  au.min_trials = p.calibration.trial_floor;
  au.starvation = p.recycle_samples ? StarvationPolicy::kRecycle
                                    : StarvationPolicy::kBreak;
  return au;
}

/// Field-wise sum of the int64 counters (wall_seconds is run-level and
/// handled by the caller).
void AccumulateDiag(const FprasDiagnostics& from, FprasDiagnostics* into) {
  into->appunion_calls += from.appunion_calls;
  into->appunion_trials += from.appunion_trials;
  into->membership_checks += from.membership_checks;
  into->starvations += from.starvations;
  into->sample_calls += from.sample_calls;
  into->sample_success += from.sample_success;
  into->fail_phi_gt_1 += from.fail_phi_gt_1;
  into->fail_bernoulli += from.fail_bernoulli;
  into->fail_dead_branch += from.fail_dead_branch;
  into->padded_words += from.padded_words;
  into->perturbed_counts += from.perturbed_counts;
  into->states_processed += from.states_processed;
  into->walk_batches += from.walk_batches;
}

}  // namespace

// ---------------------------------------------------------------------------
// UnionSizeMemo
// ---------------------------------------------------------------------------

void UnionSizeMemo::Reset(int64_t capacity) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  capacity_ = capacity;
  entries_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

bool UnionSizeMemo::Lookup(int level, const Bitset& set,
                           std::vector<double>* out) {
  Shard& shard = ShardFor(level, set);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(Key{level, set});
    if (it != shard.map.end()) {
      *out = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void UnionSizeMemo::Insert(int level, const Bitset& set,
                           const std::vector<double>& sizes) {
  Shard& shard = ShardFor(level, set);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.find(Key{level, set}) != shard.map.end()) return;
  // Reserve one entry of the shared budget before emplacing: a CAS loop on
  // the counter cannot overshoot capacity_, unlike the old pre-lock
  // `entries_ >= capacity_` check, where every concurrent inserter passed
  // the gate and then all of them emplaced.
  int64_t current = entries_.load(std::memory_order_relaxed);
  do {
    if (current >= capacity_) return;
  } while (!entries_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_relaxed));
  shard.map.emplace(Key{level, set}, sizes);
}

// ---------------------------------------------------------------------------
// DescentCache
// ---------------------------------------------------------------------------

void DescentCache::Reset(int64_t capacity, size_t row_words,
                         int symbol_rows) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  capacity_ = capacity;
  row_words_ = row_words;
  symbol_rows_ = symbol_rows;
  entries_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

bool DescentCache::LookupSizes(int level, const Bitset& set,
                               std::vector<double>* out) {
  // thread_local probe: the Bitset copy-assign reuses its vector capacity, so
  // a lookup allocates nothing once the key is warm (hot-path contract).
  thread_local Key probe;
  probe.level = level;
  probe.set = set;
  Shard& shard = ShardFor(level, set);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(probe);
    if (it != shard.map.end()) {
      *out = it->second.sizes;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DescentCache::InsertSizes(int level, const Bitset& set,
                               const std::vector<double>& sizes) {
  if (!enabled()) return;
  Shard& shard = ShardFor(level, set);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.find(Key{level, set}) != shard.map.end()) return;
  // Same no-overshoot discipline as UnionSizeMemo::Insert: reserve one entry
  // of the shared budget via CAS before emplacing.
  int64_t current = entries_.load(std::memory_order_relaxed);
  do {
    if (current >= capacity_) return;
  } while (!entries_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_relaxed));
  Entry entry;
  entry.sizes = sizes;
  bytes_.fetch_add(
      static_cast<int64_t>(sizeof(Entry) +
                           set.words().size() * sizeof(uint64_t) +
                           sizes.size() * sizeof(double)),
      std::memory_order_relaxed);
  shard.map.emplace(Key{level, set}, std::move(entry));
}

bool DescentCache::LookupRow(int level, const Bitset& set, int symbol_class,
                             uint64_t* out_row) {
  thread_local Key probe;
  probe.level = level;
  probe.set = set;
  Shard& shard = ShardFor(level, set);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(probe);
    if (it != shard.map.end() && !it->second.row_filled.empty() &&
        it->second.row_filled[static_cast<size_t>(symbol_class)]) {
      const uint64_t* src = it->second.rows.data() +
                            static_cast<size_t>(symbol_class) * row_words_;
      std::copy(src, src + row_words_, out_row);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DescentCache::InsertRow(int level, const Bitset& set, int symbol_class,
                             const uint64_t* row) {
  if (!enabled()) return;
  Shard& shard = ShardFor(level, set);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(Key{level, set});
  if (it == shard.map.end()) return;  // entry never admitted (budget spent)
  Entry& entry = it->second;
  if (entry.rows.empty()) {
    entry.rows.assign(static_cast<size_t>(symbol_rows_) * row_words_, 0);
    entry.row_filled.assign(static_cast<size_t>(symbol_rows_), 0);
    bytes_.fetch_add(
        static_cast<int64_t>(entry.rows.size() * sizeof(uint64_t) +
                             entry.row_filled.size()),
        std::memory_order_relaxed);
  }
  if (entry.row_filled[static_cast<size_t>(symbol_class)]) return;
  std::copy(row, row + row_words_,
            entry.rows.data() +
                static_cast<size_t>(symbol_class) * row_words_);
  entry.row_filled[static_cast<size_t>(symbol_class)] = 1;
}

// ---------------------------------------------------------------------------
// FprasEngine
// ---------------------------------------------------------------------------

FprasEngine::FprasEngine(const Nfa* nfa, FprasParams params, uint64_t seed)
    : nfa_(nfa),
      params_(ResolveEngineParams(std::move(params))),
      unrolled_(nfa, params_.n, params_.symbol_classes),
      seed_(seed) {
  assert(nfa != nullptr && nfa->Validate().ok());
  assert(params_.m == nfa->num_states());
  workers_.resize(1);
  workers_[0].pred_scratch = Bitset(static_cast<size_t>(nfa->num_states()));
  draw_.pred_scratch = Bitset(static_cast<size_t>(nfa->num_states()));
}

const FprasDiagnostics& FprasEngine::diagnostics() const {
  diag_ = FprasDiagnostics{};
  for (const WorkerScratch& ws : workers_) {
    AccumulateDiag(ws.diag, &diag_);
    diag_.arena_bytes_reserved += ws.arena.bytes_reserved();
    diag_.arena_alloc_events += ws.arena.alloc_events();
  }
  // The draw path's dedicated scratch: its counters are part of the same
  // totals (a sequential run would have accumulated them on worker 0).
  AccumulateDiag(draw_.diag, &diag_);
  diag_.arena_bytes_reserved += draw_.arena.bytes_reserved();
  diag_.arena_alloc_events += draw_.arena.alloc_events();
  // The memo's and descent cache's counters are authoritative (shared across
  // workers); they are the only scheduling-dependent diagnostics.
  diag_.memo_hits = memo_.hits();
  diag_.memo_misses = memo_.misses();
  diag_.descent_hits = descent_.hits();
  diag_.descent_misses = descent_.misses();
  diag_.descent_entries = descent_.entries();
  diag_.descent_bytes = descent_.bytes();
  diag_.wall_seconds = run_wall_seconds_;
  return diag_;
}

double FprasEngine::CountEstimateFor(StateId q, int level) const {
  NFA_CHECK(prepared_, "CountEstimateFor requires a prepared engine (Run)");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "CountEstimateFor: level out of [0, n]");
  NFA_CHECK(level <= computed_level_,
            "CountEstimateFor: level not yet computed");
  NFA_CHECK(q >= 0 && q < nfa_->num_states(),
            "CountEstimateFor: state out of [0, m)");
  return levels_[level].cells[q].count_estimate;
}

const SampleBlock& FprasEngine::SampleBlockFor(StateId q, int level) const {
  NFA_CHECK(prepared_, "SamplesFor requires a prepared engine (Run)");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "SamplesFor: level out of [0, n]");
  NFA_CHECK(level <= computed_level_, "SamplesFor: level not yet computed");
  NFA_CHECK(q >= 0 && q < nfa_->num_states(),
            "SamplesFor: state out of [0, m)");
  return levels_[level].cells[q].samples;
}

const LevelState& FprasEngine::LevelStateAt(int level) const {
  NFA_CHECK(prepared_, "LevelStateAt requires a prepared engine (Run)");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "LevelStateAt: level out of [0, n]");
  NFA_CHECK(level <= computed_level_, "LevelStateAt: level not yet computed");
  return levels_[level];
}

std::vector<StoredSample> FprasEngine::SamplesFor(StateId q, int level) const {
  const SampleBlock& block = SampleBlockFor(q, level);
  std::vector<StoredSample> out;
  out.reserve(static_cast<size_t>(block.count()));
  for (int64_t i = 0; i < block.count(); ++i) {
    SampleRef ref = block.At(i);
    out.push_back(StoredSample{
        ref.ToWord(),
        Bitset::FromWords(static_cast<size_t>(nfa_->num_states()),
                          ref.profile)});
  }
  return out;
}

void FprasEngine::UnionSizesInto(int level, const Bitset& state_set,
                                 double delta_param, UnionPurpose purpose,
                                 WorkerScratch& ws, std::vector<double>* out) {
  assert(level >= 1 && level <= params_.n);
  const bool use_memo =
      purpose == UnionPurpose::kSample && params_.memoize_unions;
  std::vector<double>& sizes = *out;
  if (use_memo && memo_.Lookup(level, state_set, &sizes)) return;

  const uint64_t family =
      purpose == UnionPurpose::kCount ? kCountUnionTag : kSampleUnionTag;
  const SymbolClassIndex& classes = unrolled_.symbol_classes();
  const int num_classes = classes.num_classes();
  sizes.assign(static_cast<size_t>(num_classes), 0.0);
  AppUnionParams au = MakeUnionParams(params_, delta_param, level);

  for (int c = 0; c < num_classes; ++c) {
    // One predecessor expansion per class: every member of a class has
    // identical reverse rows, so Pred(P, b) is the same set for all of them.
    // The flat layout (or the legacy pointer walk when ablated) expands the
    // representative; `ws.pred_scratch` avoids a per-(class, call) allocation.
    const Symbol rep = classes.Representative(c);
    Bitset& preds = ws.pred_scratch;
    if (params_.csr_hot_path) {
      unrolled_.PredSetInto(state_set, rep, level, &preds);
    } else {
      preds = unrolled_.PredSetLegacy(state_set, rep, level);
    }
    if (preds.None()) continue;
    std::vector<PredecessorInput>& inputs = ws.union_inputs;
    inputs.clear();
    preds.ForEachSet([&](int p) {
      inputs.push_back(PredecessorInput{&levels_[level - 1].cells[p],
                                        static_cast<StateId>(p), nfa_,
                                        params_.amortize_oracle});
    });
    std::vector<const PredecessorInput*>& ptrs = ws.union_ptrs;
    ptrs.clear();
    for (const auto& in : inputs) ptrs.push_back(&in);

    // Content-keyed substream: the draws depend only on (seed, purpose,
    // level, predecessor-set content) — never on the calling cell, the
    // worker thread, the memo state, or which class produced the set.
    // Recomputing an uncached entry therefore reproduces byte-for-byte what
    // a cache hit would have returned (the shared memo and the parallel
    // sweep stay result-invariant), and classes whose predecessor sets
    // coincide reuse the exact same draw stream — a duplicate class costs
    // AppUnion work but no fresh randomness.
    Rng rng = Rng::ForSubstream(seed_, HashCombine(family, preds.Hash()),
                                static_cast<uint64_t>(level));

    // Batched membership needs reach profiles, which only exist when the
    // oracle is amortized; the E9 ablation path keeps the per-probe loop.
    AppUnionOutcome outcome =
        (params_.csr_hot_path && params_.amortize_oracle)
            ? AppUnionBatched(ptrs, au, ws.union_scratch, rng)
            : AppUnion(ptrs, au, rng);
    ++ws.diag.appunion_calls;
    ws.diag.appunion_trials += outcome.completed_trials;
    ws.diag.membership_checks += outcome.membership_checks;
    if (outcome.starved) ++ws.diag.starvations;
    // The stored slice is WEIGHTED: out[c] = weight_c · sz_c, so the vector
    // still sums to the full per-symbol total N = Σ_b sz_b and a discrete
    // draw over it picks a class with the probability mass of all its
    // members combined.
    sizes[static_cast<size_t>(c)] =
        static_cast<double>(classes.Weight(c)) * outcome.estimate;
  }

  if (use_memo) memo_.Insert(level, state_set, sizes);
}

void FprasEngine::RunWalkBatch(int level, const Bitset& state_set, double phi0,
                               uint64_t walk_key, int64_t first_attempt,
                               int count, WorkerScratch& ws) {
  SampleArena& ar = ws.arena;
  const size_t m_bits = static_cast<size_t>(nfa_->num_states());
  const size_t row_words = (m_bits + 63) / 64;
  const SymbolClassIndex& classes = unrolled_.symbol_classes();
  const int num_classes = classes.num_classes();
  ar.BeginBatch(count, level, m_bits, num_classes);
  ++ws.diag.walk_batches;

  // All walks start in one group whose frontier is the target set.
  std::copy(state_set.words().data(), state_set.words().data() + row_words,
            ar.cur.Row(0));
  for (int w = 0; w < count; ++w) {
    ar.rng[w] = Rng::ForSubstream(
        seed_, walk_key, static_cast<uint64_t>(first_attempt + w));
    ar.phi[w] = phi0;
    ar.group_of[w] = 0;
    ar.state_of[w] = SampleArena::kAlive;
  }
  int group_count = 1;

  const double eta_call = params_.EtaForSampleCall();
  const double delta_union = eta_call / (4.0 * std::max(params_.n, 1));
  // Cross-batch descent cache: both per-group computations below — the
  // union-size vector and the predecessor expansion — are pure functions of
  // (level, frontier content[, symbol]), so a hit replaces the recomputation
  // with a copy of bit-identical data (see DescentCache's purity argument).
  const bool use_descent = descent_.enabled();

  for (int i = level; i >= 1; --i) {
    std::fill(ar.group_ready.begin(), ar.group_ready.begin() + group_count, 0);
    std::fill(ar.child_of.begin(),
              ar.child_of.begin() +
                  static_cast<size_t>(group_count) * num_classes,
              -1);
    int next_group_count = 0;
    bool any_alive = false;
    for (int w = 0; w < count; ++w) {
      if (ar.state_of[w] != SampleArena::kAlive) continue;
      const int g = ar.group_of[w];
      std::vector<double>& sizes = ar.group_sizes[static_cast<size_t>(g)];
      if (!ar.group_ready[g]) {
        // One union-size estimation per group — every member shares it, and
        // the descent cache shares it across batches, cells, and draws.
        ar.frontier_scratch.AssignWords(ar.cur.Row(g), row_words);
        if (!use_descent ||
            !descent_.LookupSizes(i, ar.frontier_scratch, &sizes)) {
          UnionSizesInto(i, ar.frontier_scratch, delta_union,
                         UnionPurpose::kSample, ws, &sizes);
          if (use_descent) descent_.InsertSizes(i, ar.frontier_scratch, sizes);
        }
        double total = 0.0;
        for (double s : sizes) total += s;
        ar.group_total[g] = total;
        ar.group_ready[g] = 1;
      }
      const double total = ar.group_total[g];
      if (!(total > 0.0)) {
        // Every symbol slice estimated empty: reachable only through a
        // perturbed/failed estimate; treat as rejection. Outcomes are staged
        // per walk and folded into the diagnostics by the caller only for
        // the attempts it consumes (ConsumeWalkDiagnostics).
        ar.outcome_of[w] = SampleArena::kOutcomeDead;
        ar.state_of[w] = SampleArena::kDead;
        continue;
      }
      // Two-stage symbol draw over the partition: a class with probability
      // weight_c·sz_c / N (the sizes vector stores the weighted slices),
      // then a uniform member of the class — so a specific symbol b of
      // class c lands with probability sz_c / N, exactly the per-symbol
      // distribution of the uncompressed loop.
      const int c = ar.rng[w].DiscreteIndex(sizes);
      assert(c >= 0);
      const int weight = classes.Weight(c);
      const Symbol b =
          weight == 1 ? classes.Representative(c)
                      : classes.Member(c, static_cast<int>(ar.rng[w].UniformU64(
                                             static_cast<uint64_t>(weight))));
      const double pr_b = sizes[static_cast<size_t>(c)] /
                          (static_cast<double>(weight) * total);
      int32_t& child = ar.child_of[static_cast<size_t>(g) * num_classes + c];
      if (child < 0) {
        // First member to draw class c: expand (frontier, c) once into the
        // next plane's row for the child group. All members of the class
        // share the row (identical reverse rows), so walks that drew
        // different symbols of one class still share the child group.
        child = next_group_count++;
        uint64_t* out_row = ar.next.Row(child);
        // Descent-cache row probe before expanding. ar.cur rows are stable
        // for the whole level pass, but ar.frontier_scratch is overwritten by
        // later groups' size estimations, so the probe key is re-materialized
        // into its own scratch.
        const Symbol rep = classes.Representative(c);
        bool row_cached = false;
        if (use_descent) {
          ar.descent_scratch.AssignWords(ar.cur.Row(g), row_words);
          row_cached = descent_.LookupRow(i, ar.descent_scratch, c, out_row);
        }
        if (!row_cached) {
          if (params_.csr_hot_path) {
            unrolled_.PredSetWordsInto(ar.cur.Row(g), rep, i, out_row,
                                       *kernels_);
          } else {
            ar.expand_scratch.AssignWords(ar.cur.Row(g), row_words);
            Bitset preds = unrolled_.PredSetLegacy(ar.expand_scratch, rep, i);
            std::copy(preds.words().data(), preds.words().data() + row_words,
                      out_row);
          }
          if (use_descent) {
            descent_.InsertRow(i, ar.descent_scratch, c, out_row);
          }
        }
        // Invariant carried over from the sequential walk's assert(cur.Any()):
        // sizes[c] > 0 implies the class's predecessor slice is non-empty.
        assert(std::any_of(out_row, out_row + row_words,
                           [](uint64_t word) { return word != 0; }) &&
               "drawn class expanded to an empty frontier");
      }
      ar.WordOf(w)[i - 1] = b;
      ar.phi[w] /= pr_b;
      ar.next_group_of[w] = child;
      any_alive = true;
    }
    if (!any_alive) return;  // the whole batch died mid-walk
    std::swap(ar.cur, ar.next);
    std::swap(ar.group_of, ar.next_group_of);
    group_count = next_group_count;
  }

  // Base case (Alg. 2 lines 4-6), per walk. A group's frontier is shared,
  // so the initial-state test is per group; φ and the Bernoulli are per
  // walk. The walk is guaranteed to land on the initial state when it lands
  // anywhere (PredSet intersects level-0 reachability = {initial}).
  const size_t init = static_cast<size_t>(nfa_->initial());
  for (int w = 0; w < count; ++w) {
    if (ar.state_of[w] != SampleArena::kAlive) continue;
    const uint64_t* row = ar.cur.Row(ar.group_of[w]);
    if (!((row[init >> 6] >> (init & 63)) & 1)) {
      ar.outcome_of[w] = SampleArena::kOutcomeDead;
      ar.state_of[w] = SampleArena::kDead;
      continue;
    }
    if (ar.phi[w] > 1.0) {
      ar.outcome_of[w] = SampleArena::kOutcomePhi;  // Fail1
      ar.state_of[w] = SampleArena::kDead;
      continue;
    }
    if (!ar.rng[w].Bernoulli(ar.phi[w])) {
      ar.outcome_of[w] = SampleArena::kOutcomeBernoulli;  // Fail2
      ar.state_of[w] = SampleArena::kDead;
      continue;
    }
    ar.outcome_of[w] = SampleArena::kOutcomeAccepted;
    ar.state_of[w] = SampleArena::kAccepted;
    ar.accepted.push_back(w);
  }
}

void FprasEngine::ConsumeWalkDiagnostics(int consumed, WorkerScratch& ws) {
  const SampleArena& ar = ws.arena;
  ws.diag.sample_calls += consumed;
  for (int w = 0; w < consumed; ++w) {
    switch (ar.outcome_of[w]) {
      case SampleArena::kOutcomeAccepted: ++ws.diag.sample_success; break;
      case SampleArena::kOutcomePhi: ++ws.diag.fail_phi_gt_1; break;
      case SampleArena::kOutcomeBernoulli: ++ws.diag.fail_bernoulli; break;
      default: ++ws.diag.fail_dead_branch; break;
    }
  }
}

void FprasEngine::AppendAcceptedWalk(int level, int walk, WorkerScratch& ws,
                                     SampleBlock* block) {
  SampleArena& ar = ws.arena;
  const Symbol* word = ar.WordOf(walk);
  if (params_.csr_hot_path) {
    // Fused profile pass: forward over the arena scratch, no allocation and
    // no second simulation through MakeSample.
    ar.profile_cur.Clear();
    ar.profile_cur.Set(static_cast<size_t>(nfa_->initial()));
    for (int j = 0; j < level; ++j) {
      unrolled_.SuccSetWordsInto(ar.profile_cur.words().data(), word[j],
                                 ar.profile_next.mutable_words(), *kernels_);
      std::swap(ar.profile_cur, ar.profile_next);
    }
    block->Append(word, ar.profile_cur.words().data());
  } else {
    // Legacy layout: profile via the pointer-walk oracle (the E11 baseline
    // cost), same bits.
    Bitset reach = nfa_->Reach(Word(word, word + level));
    block->Append(word, reach.words().data());
  }
}

double FprasEngine::PerturbedCount(int level, Rng& rng) {
  // N(q^ℓ) ← Uniform{0, 1, ..., |Σ|^ℓ} (Alg. 3 line 19). |Σ|^ℓ can exceed any
  // integer type; the estimate is a double throughout, so draw a uniform real
  // over [0, |Σ|^ℓ] and round — identical for feasible ℓ, and the event has
  // probability η/2n anyway.
  const double top = std::pow(static_cast<double>(nfa_->alphabet_size()), level);
  if (top < 9.0e15) {
    return static_cast<double>(
        rng.UniformU64(static_cast<uint64_t>(top) + 1));
  }
  return std::floor(rng.UniformDouble() * top);
}

void FprasEngine::RefillSamples(StateId q, int level, WorkerScratch& ws) {
  StateLevelData& slot = levels_[level].cells[q];
  slot.samples.Reset(level, static_cast<size_t>(nfa_->num_states()));
  slot.samples.Reserve(params_.ns);
  const double count = slot.count_estimate;

  if (count > 0.0) {
    const double gamma0 = kGammaNumerator / count;
    Bitset& target = ws.target_scratch;
    target.Clear();
    target.Set(static_cast<size_t>(q));
    // This cell's walk-stream family: attempt a of (q, ℓ) always draws from
    // substream (walk-tag·q·ℓ, a), no matter how attempts are batched —
    // that is the batch-width-invariance contract.
    const uint64_t walk_key = HashCombine(
        HashCombine(kRefillWalkTag, static_cast<uint64_t>(q)),
        static_cast<uint64_t>(level));
    int64_t attempt = 0;
    while (attempt < params_.xns && slot.samples.count() < params_.ns) {
      const int batch = static_cast<int>(
          std::min<int64_t>(batch_width_, params_.xns - attempt));
      RunWalkBatch(level, target, gamma0, walk_key, attempt, batch, ws);
      // Keep the first accepted walks in attempt order; surplus accepts in
      // the final batch are discarded (they would be the next sequential
      // attempts' accepts, which a narrower batch never runs). Diagnostics
      // consume exactly through the attempt that fills S(q^ℓ) — the last
      // attempt a batch_width = 1 run executes — so the per-walk counters
      // are identical for every batch width.
      int consumed = batch;
      for (int32_t w : ws.arena.accepted) {
        AppendAcceptedWalk(level, w, ws, &slot.samples);
        if (slot.samples.count() >= params_.ns) {
          consumed = w + 1;
          break;
        }
      }
      ConsumeWalkDiagnostics(consumed, ws);
      attempt += batch;
    }
  }

  // Padding (Alg. 3 lines 27-30): duplicate one fixed witness word.
  const int64_t shortfall = params_.ns - slot.samples.count();
  if (shortfall > 0) {
    std::optional<Word> witness = unrolled_.WitnessWord(q, level);
    assert(witness.has_value());  // q is reachable at this level
    const Bitset reach = params_.csr_hot_path ? unrolled_.ReachProfile(*witness)
                                              : nfa_->Reach(*witness);
    ws.diag.padded_words += shortfall;
    slot.samples.AppendRepeat(witness->data(), reach.words().data(),
                              shortfall);
  }
}

void FprasEngine::ProcessCell(StateId q, int level, WorkerScratch& ws) {
  // The cell's private substream: keyed by (seed, q, ℓ) only, so the draw
  // sequence is identical no matter which worker runs the cell or in what
  // order the level's cells are scheduled.
  Rng cell_rng = Rng::ForSubstream(seed_, static_cast<uint64_t>(q),
                                   static_cast<uint64_t>(level));
  Bitset& singleton = ws.target_scratch;
  singleton.Clear();
  singleton.Set(static_cast<size_t>(q));
  // N(q^ℓ) = Σ_b sz_b (lines 12-17). This union-size computation uses its
  // own δ and its own substream family — it is not memo-shared with sample().
  std::vector<double> sizes;
  UnionSizesInto(level, singleton, params_.DeltaForCountUnion(),
                 UnionPurpose::kCount, ws, &sizes);
  double total = 0.0;
  for (double s : sizes) total += s;

  if (params_.perturb_support &&
      cell_rng.Bernoulli(params_.eta / (2.0 * std::max(params_.n, 1)))) {
    total = PerturbedCount(level, cell_rng);  // lines 18-19
    ++ws.diag.perturbed_counts;
  }
  levels_[level].cells[q].count_estimate = total;
  RefillSamples(q, level, ws);
  ++ws.diag.states_processed;
}

Status FprasEngine::AdvanceLevel(ThreadPool& pool) {
  // Level barrier: every cell of level ℓ reads only the frozen LevelState
  // ℓ−1 (the sampling walks descend strictly below ℓ) and writes only its
  // own levels_[ℓ].cells[q] slot, so the cells are independent.
  const int level = computed_level_ + 1;
  const std::vector<int> states = unrolled_.ReachableAt(level).ToIndices();
  NFA_RETURN_NOT_OK(pool.ParallelFor(
      static_cast<int64_t>(states.size()), [&](int64_t i, int worker) {
        ProcessCell(static_cast<StateId>(states[static_cast<size_t>(i)]),
                    level, workers_[static_cast<size_t>(worker)]);
        return Status::Ok();
      }));
  levels_[level].level = level;
  // Release-publish: a serve-mode reader that acquire-loads computed_level()
  // and sees `level` also sees every write the cell fan-out made above.
  computed_level_.store(level, std::memory_order_release);
  if (level == params_.n) {
    // Final answer. Single accepting state: N(q_F^n) (Alg. 3 line 31).
    // Multiple accepting states: |L(A_n)| = |∪_{f∈F} L(f^n)| via one more
    // AppUnion over the accepting states' (S, N) pairs (footnote 1: the
    // single final state assumption is WLOG). Content-keyed, so resumed
    // and uninterrupted runs agree exactly.
    final_estimate_ =
        EstimateUnionOfStates(nfa_->accepting(), params_.n, workers_[0]);
  }
  return Status::Ok();
}

Status FprasEngine::Prepare() {
  WallTimer timer;
  NFA_RETURN_NOT_OK(nfa_->Validate());
  // Validate the thread knob before allocating anything sized by it: an
  // absurd value must surface as Status, not as bad_alloc/system_error
  // escaping the no-throw API.
  constexpr int kMaxThreads = 4096;
  if (params_.num_threads < 0 || params_.num_threads > kMaxThreads) {
    return Status::Invalid("num_threads must be in [0, 4096]");
  }
  if (params_.batch_width < 0 ||
      params_.batch_width > FprasParams::kMaxBatchWidth) {
    return Status::Invalid("batch_width must be in [0, 4096]");
  }
  if (params_.descent_cache_capacity < 0) {
    return Status::Invalid("descent_cache_capacity must be >= 0");
  }
  prepared_ = false;
  computed_level_ = -1;
  final_estimate_ = 0.0;
  run_wall_seconds_ = 0.0;
  pool_.reset();

  const int n = params_.n;
  const int m = nfa_->num_states();
  // Hot-loop stride: the walk plane and the descent cache are sized by the
  // symbol partition, not the raw alphabet (identical under the trivial
  // partition; C << |Σ| on corpus-style alphabets).
  const int num_classes = unrolled_.symbol_classes().num_classes();
  const int threads = ThreadPool::ResolveThreadCount(params_.num_threads);
  batch_width_ = params_.ResolvedBatchWidth();
  kernels_ =
      params_.simd_kernels ? &simd::ActiveKernels() : &simd::ScalarKernels();
  post_attempt_counter_ = 0;
  workers_.clear();
  workers_.resize(static_cast<size_t>(threads));
  for (WorkerScratch& ws : workers_) {
    ws.pred_scratch = Bitset(static_cast<size_t>(m));
    ws.target_scratch = Bitset(static_cast<size_t>(m));
    ws.arena.PrepareRun(batch_width_, std::max(n, 1),
                        static_cast<size_t>(m), num_classes);
  }
  // Draw-path scratch: its own bundle so post-run draws never contend with
  // (or corrupt) a concurrently extending sweep's worker slots.
  draw_ = WorkerScratch{};
  draw_.pred_scratch = Bitset(static_cast<size_t>(m));
  draw_.target_scratch = Bitset(static_cast<size_t>(m));
  draw_.arena.PrepareRun(batch_width_, std::max(n, 1), static_cast<size_t>(m),
                         num_classes);
  levels_.assign(static_cast<size_t>(n) + 1, LevelState{});
  for (LevelState& state : levels_) {
    state.cells.resize(static_cast<size_t>(m));
  }
  memo_.Reset(params_.memo_capacity);
  // Descent cache: process-wide env override first (CI runs the whole tier-1
  // suite with NFACOUNT_DESCENT_CACHE=0 to keep the cache-off fallback
  // covered, same idiom as NFACOUNT_FORCE_SCALAR), then the params knob.
  // Results are bit-identical at every capacity, so the override can never
  // change what a test asserts about estimates, tables, or draws.
  int64_t descent_capacity = params_.descent_cache_capacity;
  if (const char* env = std::getenv("NFACOUNT_DESCENT_CACHE")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) descent_capacity = parsed;
  }
  descent_.Reset(descent_capacity, (static_cast<size_t>(m) + 63) / 64,
                 num_classes);

  // Level 0 (Alg. 3 lines 6-10): L(I⁰) = {λ}, everything else empty. The
  // sample list holds ns copies of λ — "uniform with replacement" from a
  // singleton language — so AppUnion cursors cannot starve at level 1.
  StateLevelData& base = levels_[0].cells[nfa_->initial()];
  base.count_estimate = 1.0;
  base.samples.Reset(0, static_cast<size_t>(m));
  base.samples.Reserve(params_.ns);
  {
    // λ's reach profile is {initial} on either layout.
    Bitset lambda_reach(static_cast<size_t>(m));
    lambda_reach.Set(static_cast<size_t>(nfa_->initial()));
    base.samples.AppendRepeat(nullptr, lambda_reach.words().data(),
                              params_.ns);
  }
  levels_[0].level = 0;
  computed_level_ = 0;
  prepared_ = true;
  if (params_.n == 0) {
    // Degenerate horizon: the pipeline is already complete.
    final_estimate_ = EstimateUnionOfStates(nfa_->accepting(), 0, workers_[0]);
  }
  run_wall_seconds_ += timer.ElapsedSeconds();
  return Status::Ok();
}

Status FprasEngine::RunToLevel(int target) {
  if (!prepared_) {
    return Status::FailedPrecondition("RunToLevel requires Prepare()");
  }
  if (target < 0 || target > params_.n) {
    return Status::OutOfRange(
        "RunToLevel: target level outside [0, horizon]; the horizon fixed "
        "the parameter derivation at construction");
  }
  if (target <= computed_level_) return Status::Ok();
  WallTimer timer;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::ResolveThreadCount(params_.num_threads));
  }
  while (computed_level_ < target) {
    NFA_RETURN_NOT_OK(AdvanceLevel(*pool_));
  }
  run_wall_seconds_ += timer.ElapsedSeconds();
  return Status::Ok();
}

Status FprasEngine::Run() {
  NFA_RETURN_NOT_OK(Prepare());
  return RunToLevel(params_.n);
}

Status FprasEngine::RestoreComputedState(int computed_level,
                                         std::vector<LevelState> levels,
                                         int64_t draw_cursor) {
  if (!prepared_) {
    return Status::FailedPrecondition(
        "RestoreComputedState requires Prepare()");
  }
  if (computed_level < 0 || computed_level > params_.n) {
    return Status::OutOfRange(
        "RestoreComputedState: computed level outside [0, horizon]");
  }
  if (levels.size() != static_cast<size_t>(computed_level) + 1) {
    return Status::Invalid("RestoreComputedState: level count mismatch");
  }
  if (draw_cursor < 0) {
    return Status::Invalid("RestoreComputedState: negative draw cursor");
  }
  const int m = nfa_->num_states();
  const size_t profile_words = (static_cast<size_t>(m) + 63) / 64;
  for (int level = 0; level <= computed_level; ++level) {
    const LevelState& state = levels[static_cast<size_t>(level)];
    if (state.level != level) {
      return Status::Invalid("RestoreComputedState: level index mismatch");
    }
    if (state.cells.size() != static_cast<size_t>(m)) {
      return Status::Invalid("RestoreComputedState: cell count mismatch");
    }
    for (const StateLevelData& cell : state.cells) {
      if (cell.samples.count() > 0 &&
          (cell.samples.word_len() != level ||
           cell.samples.profile_words() != profile_words)) {
        return Status::Invalid(
            "RestoreComputedState: sample block stride mismatch");
      }
    }
  }
  for (int level = 0; level <= computed_level; ++level) {
    levels_[static_cast<size_t>(level)] =
        std::move(levels[static_cast<size_t>(level)]);
  }
  computed_level_.store(computed_level, std::memory_order_release);
  post_attempt_counter_ = draw_cursor;
  if (computed_level == params_.n) {
    final_estimate_ =
        EstimateUnionOfStates(nfa_->accepting(), params_.n, workers_[0]);
  }
  return Status::Ok();
}

double FprasEngine::EstimateUnionOfStates(const Bitset& targets, int level,
                                          WorkerScratch& ws) {
  NFA_CHECK(prepared_, "EstimateUnionOfStates requires a prepared engine");
  NFA_CHECK(level >= 0 && level <= computed_level_,
            "EstimateUnionOfStates: level not yet computed");
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  const size_t count = alive.Count();
  if (count == 0) return 0.0;
  if (count == 1) return levels_[level].cells[alive.FirstSet()].count_estimate;

  std::vector<PredecessorInput>& inputs = ws.union_inputs;
  inputs.clear();
  alive.ForEachSet([&](int q) {
    inputs.push_back(PredecessorInput{&levels_[level].cells[q],
                                      static_cast<StateId>(q), nfa_,
                                      params_.amortize_oracle});
  });
  std::vector<const PredecessorInput*>& ptrs = ws.union_ptrs;
  ptrs.clear();
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams au = MakeUnionParams(params_, params_.eta, level + 1);
  // Content-keyed stream: repeated estimates of the same (targets, level)
  // union agree exactly (e.g. the all-lengths slice at n equals Estimate()).
  Rng rng = Rng::ForSubstream(seed_, HashCombine(kFinalUnionTag, alive.Hash()),
                              static_cast<uint64_t>(level));
  AppUnionOutcome outcome =
      (params_.csr_hot_path && params_.amortize_oracle)
          ? AppUnionBatched(ptrs, au, ws.union_scratch, rng)
          : AppUnion(ptrs, au, rng);
  ++ws.diag.appunion_calls;
  ws.diag.appunion_trials += outcome.completed_trials;
  ws.diag.membership_checks += outcome.membership_checks;
  if (outcome.starved) ++ws.diag.starvations;
  return outcome.estimate;
}

double FprasEngine::EstimateAtLength(int level) {
  NFA_CHECK(prepared_, "EstimateAtLength requires a prepared engine (Run)");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "EstimateAtLength: level out of [0, n]");
  NFA_CHECK(level <= computed_level_,
            "EstimateAtLength: level not yet computed");
  if (level == 0) {
    return nfa_->IsAccepting(nfa_->initial()) ? 1.0 : 0.0;
  }
  return EstimateUnionOfStates(nfa_->accepting(), level, workers_[0]);
}

FprasEngine::CacheCounters FprasEngine::cache_counters() const {
  CacheCounters c;
  c.memo_hits = memo_.hits();
  c.memo_misses = memo_.misses();
  c.descent_hits = descent_.hits();
  c.descent_misses = descent_.misses();
  c.descent_entries = descent_.entries();
  c.descent_bytes = descent_.bytes();
  return c;
}

int64_t FprasEngine::ApproxTableBytes() const {
  const int published = computed_level();
  int64_t bytes = 0;
  for (int level = 0; level <= published; ++level) {
    const LevelState& state = levels_[static_cast<size_t>(level)];
    bytes +=
        static_cast<int64_t>(state.cells.size() * sizeof(StateLevelData));
    for (const StateLevelData& cell : state.cells) {
      bytes += cell.samples.bytes_reserved();
    }
  }
  return bytes;
}

int64_t FprasEngine::SampleAcceptedInto(const Bitset& targets, int level,
                                        int64_t max_attempts,
                                        int64_t min_accepts,
                                        std::vector<Word>* out,
                                        bool consume_exact) {
  NFA_CHECK(prepared_, "SampleWord requires a prepared engine (Run)");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "SampleWord: level out of [0, n]");
  NFA_CHECK(level <= computed_level_, "SampleWord: level not yet computed");
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  if (alive.None()) return 0;

  // γ0 = 2/(3e) · 1/N where N estimates |∪ L(q^level)| — computed once and
  // amortized over every walk of this call's batches.
  const double union_estimate = EstimateUnionOfStates(alive, level, draw_);
  if (!(union_estimate > 0.0)) return 0;
  const double gamma0 = kGammaNumerator / union_estimate;

  // Post-run draws own their dedicated scratch bundle, so they may run
  // concurrently with an extending sweep on the worker slots (serve mode);
  // callers serialize draws among themselves (the attempt cursor is plain).
  WorkerScratch& ws = draw_;
  int64_t appended = 0;
  int64_t attempts_left = max_attempts;
  while (attempts_left > 0 && appended < min_accepts) {
    const int batch =
        static_cast<int>(std::min<int64_t>(batch_width_, attempts_left));
    RunWalkBatch(level, alive, gamma0, kDrawStreamTag, post_attempt_counter_,
                 batch, ws);
    int consumed = batch;
    if (consume_exact) {
      // Exact mode: stop at the accept that satisfies the request; the
      // cursor and budget advance only through it, so the walks after it
      // are as if they never ran (a later call re-derives them from their
      // per-attempt substreams, bit for bit).
      for (int32_t w : ws.arena.accepted) {
        out->emplace_back(ws.arena.WordOf(w), ws.arena.WordOf(w) + level);
        ++appended;
        if (appended >= min_accepts) {
          consumed = w + 1;
          break;
        }
      }
    } else {
      // Bulk mode: harvest every accept of the batch (the caller queues the
      // surplus). A batch_width = 1 run serving the same number of draws
      // executes exactly the attempts through this batch's last accept, so
      // consuming up to there keeps the per-walk counters aligned across
      // widths at every queue-drain point; trailing failures past the last
      // accept of a satisfied harvest are speculative and uncounted.
      for (int32_t w : ws.arena.accepted) {
        out->emplace_back(ws.arena.WordOf(w), ws.arena.WordOf(w) + level);
        ++appended;
      }
      if (appended >= min_accepts && !ws.arena.accepted.empty()) {
        consumed = ws.arena.accepted.back() + 1;
      }
    }
    const int64_t advance = consume_exact ? consumed : batch;
    post_attempt_counter_ += advance;
    attempts_left -= advance;
    ConsumeWalkDiagnostics(consumed, ws);
  }
  return appended;
}

std::optional<Word> FprasEngine::SampleWord(const Bitset& targets, int level) {
  // One attempt of the counter-keyed stream, exactly like the pre-batching
  // API: nullopt = that attempt rejected.
  std::vector<Word> words;
  SampleAcceptedInto(targets, level, /*max_attempts=*/1, /*min_accepts=*/1,
                     &words);
  if (words.empty()) return std::nullopt;
  return std::move(words.front());
}

std::optional<Word> FprasEngine::SampleAcceptedWord() {
  return SampleWord(nfa_->accepting(), params_.n);
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

namespace {

/// Copies the CountOptions behavior flags onto derived params.
void ApplyOptionFlags(const CountOptions& options, FprasParams* params) {
  params->perturb_support = options.perturb_support;
  params->memoize_unions = options.memoize_unions;
  params->amortize_oracle = options.amortize_oracle;
  params->recycle_samples = options.recycle_samples;
  params->csr_hot_path = options.csr_hot_path;
  params->num_threads = options.num_threads;
  params->batch_width = options.batch_width;
  params->simd_kernels = options.simd_kernels;
  if (options.descent_cache_capacity >= 0) {
    params->descent_cache_capacity = options.descent_cache_capacity;
  }
  params->symbol_classes = options.symbol_classes;
}

}  // namespace

Result<CountEstimate> ApproxCount(const Nfa& nfa, int n,
                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");

  CountEstimate out;
  if (n == 0) {
    // L(A_0) = {λ} iff the initial state accepts.
    out.estimate = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    FprasParams p;
    NFA_ASSIGN_OR_RETURN(p, FprasParams::Make(options.schedule, nfa.num_states(), 0,
                                              options.eps, options.delta,
                                              options.calibration));
    out.params = p;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  ApplyOptionFlags(options, &params);

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  out.estimate = engine.Estimate();
  out.params = engine.params();
  out.diagnostics = engine.diagnostics();
  return out;
}

Result<std::vector<double>> ApproxCountAllLengths(const Nfa& nfa, int n,
                                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");
  std::vector<double> out(static_cast<size_t>(n) + 1, 0.0);
  if (n == 0) {
    out[0] = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  ApplyOptionFlags(options, &params);

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  for (int level = 0; level <= n; ++level) {
    out[static_cast<size_t>(level)] = engine.EstimateAtLength(level);
  }
  return out;
}

}  // namespace nfacount
