#include "fpras/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "counting/union_mc.hpp"
#include "util/timer.hpp"

namespace nfacount {

namespace {

constexpr double kE = 2.718281828459045;
constexpr double kGammaNumerator = 2.0 / (3.0 * kE);  // γ0·N = 2/(3e)

// Substream family tags (first ForSubstream coordinate, or HashCombine base).
// Cell streams use (a=q, b=ℓ) with small q, so the tags are large constants:
// a collision with a cell coordinate has probability ~2⁻⁶⁴ per key.
constexpr uint64_t kCountUnionTag = 0xC0C0C0C0C0C0C0C0ULL;
constexpr uint64_t kSampleUnionTag = 0x5A5A5A5A5A5A5A5AULL;
constexpr uint64_t kFinalUnionTag = 0xF1F1F1F1F1F1F1F1ULL;
constexpr uint64_t kDrawStreamTag = 0xD12AD12AD12AD12AULL;

/// AppUnion input adapter over one predecessor's (S, N) pair. Membership of a
/// stored word σ in L(p^{|σ|}) is a bit probe on its reach profile, or a full
/// re-simulation when oracle amortization is ablated. owner()/universe()
/// additionally satisfy the AppUnionBatched concept (prefix-mask coverage
/// over the state-id universe).
struct PredecessorInput {
  const StateLevelData* data;
  StateId state;
  const Nfa* nfa;
  bool amortized;

  double size_estimate() const { return data->count_estimate; }
  int64_t num_samples() const {
    return static_cast<int64_t>(data->samples.size());
  }
  const StoredSample& Sample(int64_t idx) const {
    return data->samples[static_cast<size_t>(idx)];
  }
  bool Contains(const StoredSample& sample) const {
    if (amortized) return sample.reach.Test(state);
    return nfa->Reach(sample.word).Test(state);
  }
  int owner() const { return static_cast<int>(state); }
  size_t universe() const { return static_cast<size_t>(nfa->num_states()); }
};

/// Shared AppUnion parameterization for a given level and δ.
AppUnionParams MakeUnionParams(const FprasParams& p, double delta_param,
                               int level) {
  AppUnionParams au;
  au.eps = p.beta;
  au.delta = delta_param;
  au.eps_sz = p.EpsSzAtLevel(level);
  au.trial_scale = p.calibration.trial_scale;
  au.min_trials = p.calibration.trial_floor;
  au.starvation = p.recycle_samples ? StarvationPolicy::kRecycle
                                    : StarvationPolicy::kBreak;
  return au;
}

/// Field-wise sum of the int64 counters (wall_seconds is run-level and
/// handled by the caller).
void AccumulateDiag(const FprasDiagnostics& from, FprasDiagnostics* into) {
  into->appunion_calls += from.appunion_calls;
  into->appunion_trials += from.appunion_trials;
  into->membership_checks += from.membership_checks;
  into->starvations += from.starvations;
  into->sample_calls += from.sample_calls;
  into->sample_success += from.sample_success;
  into->fail_phi_gt_1 += from.fail_phi_gt_1;
  into->fail_bernoulli += from.fail_bernoulli;
  into->fail_dead_branch += from.fail_dead_branch;
  into->padded_words += from.padded_words;
  into->perturbed_counts += from.perturbed_counts;
  into->states_processed += from.states_processed;
}

}  // namespace

// ---------------------------------------------------------------------------
// UnionSizeMemo
// ---------------------------------------------------------------------------

void UnionSizeMemo::Reset(int64_t capacity) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  capacity_ = capacity;
  entries_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

bool UnionSizeMemo::Lookup(int level, const Bitset& set,
                           std::vector<double>* out) {
  Shard& shard = ShardFor(level, set);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(Key{level, set});
    if (it != shard.map.end()) {
      *out = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void UnionSizeMemo::Insert(int level, const Bitset& set,
                           const std::vector<double>& sizes) {
  if (entries_.load(std::memory_order_relaxed) >= capacity_) return;
  Shard& shard = ShardFor(level, set);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.emplace(Key{level, set}, sizes).second) {
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// FprasEngine
// ---------------------------------------------------------------------------

FprasEngine::FprasEngine(const Nfa* nfa, FprasParams params, uint64_t seed)
    : nfa_(nfa),
      params_(params),
      unrolled_(nfa, params.n),
      seed_(seed),
      rng_(Rng::ForSubstream(seed, kDrawStreamTag, 0)) {
  assert(nfa != nullptr && nfa->Validate().ok());
  assert(params.m == nfa->num_states());
  workers_.resize(1);
  workers_[0].pred_scratch = Bitset(static_cast<size_t>(nfa->num_states()));
}

const FprasDiagnostics& FprasEngine::diagnostics() const {
  diag_ = FprasDiagnostics{};
  for (const WorkerScratch& ws : workers_) AccumulateDiag(ws.diag, &diag_);
  // The memo's counters are authoritative (shared across workers); they are
  // the only scheduling-dependent diagnostics.
  diag_.memo_hits = memo_.hits();
  diag_.memo_misses = memo_.misses();
  diag_.wall_seconds = run_wall_seconds_;
  return diag_;
}

double FprasEngine::CountEstimateFor(StateId q, int level) const {
  NFA_CHECK(ran_ok_, "CountEstimateFor requires a successful Run()");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "CountEstimateFor: level out of [0, n]");
  NFA_CHECK(q >= 0 && q < nfa_->num_states(),
            "CountEstimateFor: state out of [0, m)");
  return table_[level][q].count_estimate;
}

const std::vector<StoredSample>& FprasEngine::SamplesFor(StateId q,
                                                         int level) const {
  NFA_CHECK(ran_ok_, "SamplesFor requires a successful Run()");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "SamplesFor: level out of [0, n]");
  NFA_CHECK(q >= 0 && q < nfa_->num_states(),
            "SamplesFor: state out of [0, m)");
  return table_[level][q].samples;
}

std::vector<double> FprasEngine::UnionSizes(int level, const Bitset& state_set,
                                            double delta_param,
                                            UnionPurpose purpose,
                                            WorkerScratch& ws) {
  assert(level >= 1 && level <= params_.n);
  const bool use_memo =
      purpose == UnionPurpose::kSample && params_.memoize_unions;
  std::vector<double> sizes;
  if (use_memo && memo_.Lookup(level, state_set, &sizes)) return sizes;

  // Content-keyed substream: the draws depend only on (seed, purpose, level,
  // P) — never on the calling cell, the worker thread, or the memo state.
  // Recomputing an uncached entry therefore reproduces byte-for-byte what a
  // cache hit would have returned, which is what makes the shared memo (and
  // the parallel sweep) result-invariant.
  const uint64_t family =
      purpose == UnionPurpose::kCount ? kCountUnionTag : kSampleUnionTag;
  Rng rng = Rng::ForSubstream(seed_, HashCombine(family, state_set.Hash()),
                              static_cast<uint64_t>(level));

  const int k = nfa_->alphabet_size();
  sizes.assign(static_cast<size_t>(k), 0.0);
  AppUnionParams au = MakeUnionParams(params_, delta_param, level);

  for (int b = 0; b < k; ++b) {
    // Predecessor expansion on the flat layout (or the legacy pointer walk
    // when ablated); `ws.pred_scratch` avoids a per-(symbol, call) allocation.
    Bitset& preds = ws.pred_scratch;
    if (params_.csr_hot_path) {
      unrolled_.PredSetInto(state_set, static_cast<Symbol>(b), level, &preds);
    } else {
      preds = unrolled_.PredSetLegacy(state_set, static_cast<Symbol>(b), level);
    }
    if (preds.None()) continue;
    std::vector<PredecessorInput> inputs;
    inputs.reserve(preds.Count());
    preds.ForEachSet([&](int p) {
      inputs.push_back(PredecessorInput{&table_[level - 1][p],
                                        static_cast<StateId>(p), nfa_,
                                        params_.amortize_oracle});
    });
    std::vector<const PredecessorInput*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& in : inputs) ptrs.push_back(&in);

    // Batched membership needs reach profiles, which only exist when the
    // oracle is amortized; the E9 ablation path keeps the per-probe loop.
    AppUnionOutcome outcome =
        (params_.csr_hot_path && params_.amortize_oracle)
            ? AppUnionBatched(ptrs, au, ws.union_scratch, rng)
            : AppUnion(ptrs, au, rng);
    ++ws.diag.appunion_calls;
    ws.diag.appunion_trials += outcome.completed_trials;
    ws.diag.membership_checks += outcome.membership_checks;
    if (outcome.starved) ++ws.diag.starvations;
    sizes[static_cast<size_t>(b)] = outcome.estimate;
  }

  if (use_memo) memo_.Insert(level, state_set, sizes);
  return sizes;
}

std::optional<Word> FprasEngine::SampleInternal(int level,
                                                const Bitset& state_set,
                                                double phi0, WorkerScratch& ws,
                                                Rng& rng) {
  ++ws.diag.sample_calls;
  const double eta_call = params_.EtaForSampleCall();
  const double delta_union = eta_call / (4.0 * std::max(params_.n, 1));

  double phi = phi0;
  Word word(static_cast<size_t>(level));
  // Two ping-pong frontier buffers from the worker scratch: the backward
  // walk allocates nothing per draw.
  Bitset& cur = ws.walk_cur;
  Bitset& next = ws.walk_next;
  cur.CopyFrom(state_set);
  for (int i = level; i >= 1; --i) {
    std::vector<double> sizes =
        UnionSizes(i, cur, delta_union, UnionPurpose::kSample, ws);
    double total = 0.0;
    for (double s : sizes) total += s;
    if (!(total > 0.0)) {
      // Every symbol slice estimated empty: reachable only through a
      // perturbed/failed estimate; treat as rejection.
      ++ws.diag.fail_dead_branch;
      return std::nullopt;
    }
    int b = rng.DiscreteIndex(sizes);
    assert(b >= 0);
    const double pr_b = sizes[static_cast<size_t>(b)] / total;
    if (params_.csr_hot_path) {
      unrolled_.PredSetInto(cur, static_cast<Symbol>(b), i, &next);
      std::swap(cur, next);
    } else {
      cur = unrolled_.PredSetLegacy(cur, static_cast<Symbol>(b), i);
    }
    assert(cur.Any());
    word[static_cast<size_t>(i - 1)] = static_cast<Symbol>(b);
    phi /= pr_b;
  }

  // Base case (Alg. 2 lines 4-6). The walk is guaranteed to land on the
  // initial state when it lands anywhere (PredSet intersects level-0
  // reachability = {initial}).
  if (!cur.Test(nfa_->initial())) {
    ++ws.diag.fail_dead_branch;
    return std::nullopt;
  }
  if (phi > 1.0) {
    ++ws.diag.fail_phi_gt_1;  // Fail1
    return std::nullopt;
  }
  if (!rng.Bernoulli(phi)) {
    ++ws.diag.fail_bernoulli;  // Fail2
    return std::nullopt;
  }
  ++ws.diag.sample_success;
  return word;
}

double FprasEngine::PerturbedCount(int level, Rng& rng) {
  // N(q^ℓ) ← Uniform{0, 1, ..., |Σ|^ℓ} (Alg. 3 line 19). |Σ|^ℓ can exceed any
  // integer type; the estimate is a double throughout, so draw a uniform real
  // over [0, |Σ|^ℓ] and round — identical for feasible ℓ, and the event has
  // probability η/2n anyway.
  const double top = std::pow(static_cast<double>(nfa_->alphabet_size()), level);
  if (top < 9.0e15) {
    return static_cast<double>(
        rng.UniformU64(static_cast<uint64_t>(top) + 1));
  }
  return std::floor(rng.UniformDouble() * top);
}

StoredSample FprasEngine::MakeStored(Word word) const {
  return params_.csr_hot_path ? unrolled_.MakeSample(std::move(word))
                              : unrolled_.MakeSampleLegacy(std::move(word));
}

void FprasEngine::RefillSamples(StateId q, int level, WorkerScratch& ws,
                                Rng& rng) {
  StateLevelData& slot = table_[level][q];
  slot.samples.clear();
  const double count = slot.count_estimate;

  if (count > 0.0) {
    const double gamma0 = kGammaNumerator / count;
    Bitset& target = ws.target_scratch;
    target.Clear();
    target.Set(static_cast<size_t>(q));
    for (int64_t attempt = 0;
         attempt < params_.xns &&
         static_cast<int64_t>(slot.samples.size()) < params_.ns;
         ++attempt) {
      std::optional<Word> word =
          SampleInternal(level, target, gamma0, ws, rng);
      if (word.has_value()) {
        slot.samples.push_back(MakeStored(std::move(*word)));
      }
    }
  }

  // Padding (Alg. 3 lines 27-30): duplicate one fixed witness word.
  const int64_t shortfall =
      params_.ns - static_cast<int64_t>(slot.samples.size());
  if (shortfall > 0) {
    std::optional<Word> witness = unrolled_.WitnessWord(q, level);
    assert(witness.has_value());  // q is reachable at this level
    StoredSample pad = MakeStored(std::move(*witness));
    ws.diag.padded_words += shortfall;
    for (int64_t i = 0; i < shortfall; ++i) slot.samples.push_back(pad);
  }
}

void FprasEngine::ProcessCell(StateId q, int level, WorkerScratch& ws) {
  // The cell's private substream: keyed by (seed, q, ℓ) only, so the draw
  // sequence is identical no matter which worker runs the cell or in what
  // order the level's cells are scheduled.
  Rng cell_rng = Rng::ForSubstream(seed_, static_cast<uint64_t>(q),
                                   static_cast<uint64_t>(level));
  Bitset& singleton = ws.target_scratch;
  singleton.Clear();
  singleton.Set(static_cast<size_t>(q));
  // N(q^ℓ) = Σ_b sz_b (lines 12-17). This union-size computation uses its
  // own δ and its own substream family — it is not memo-shared with sample().
  std::vector<double> sizes = UnionSizes(level, singleton,
                                         params_.DeltaForCountUnion(),
                                         UnionPurpose::kCount, ws);
  double total = 0.0;
  for (double s : sizes) total += s;

  if (params_.perturb_support &&
      cell_rng.Bernoulli(params_.eta / (2.0 * std::max(params_.n, 1)))) {
    total = PerturbedCount(level, cell_rng);  // lines 18-19
    ++ws.diag.perturbed_counts;
  }
  table_[level][q].count_estimate = total;
  RefillSamples(q, level, ws, cell_rng);
  ++ws.diag.states_processed;
}

Status FprasEngine::RunLevel(int level, ThreadPool& pool) {
  // Level barrier: every cell of level ℓ reads only the frozen ℓ−1 tables
  // (SampleInternal walks strictly downward from ℓ−1) and writes only its
  // own table_[ℓ][q] slot, so the cells are independent.
  const std::vector<int> states = unrolled_.ReachableAt(level).ToIndices();
  return pool.ParallelFor(
      static_cast<int64_t>(states.size()), [&](int64_t i, int worker) {
        ProcessCell(static_cast<StateId>(states[static_cast<size_t>(i)]),
                    level, workers_[static_cast<size_t>(worker)]);
        return Status::Ok();
      });
}

Status FprasEngine::Run() {
  WallTimer timer;
  NFA_RETURN_NOT_OK(nfa_->Validate());
  // Validate the thread knob before allocating anything sized by it: an
  // absurd value must surface as Status, not as bad_alloc/system_error
  // escaping the no-throw API.
  constexpr int kMaxThreads = 4096;
  if (params_.num_threads < 0 || params_.num_threads > kMaxThreads) {
    return Status::Invalid("num_threads must be in [0, 4096]");
  }
  ran_ok_ = false;

  const int n = params_.n;
  const int m = nfa_->num_states();
  const int threads = ThreadPool::ResolveThreadCount(params_.num_threads);
  workers_.clear();
  workers_.resize(static_cast<size_t>(threads));
  for (WorkerScratch& ws : workers_) {
    ws.pred_scratch = Bitset(static_cast<size_t>(m));
    ws.walk_cur = Bitset(static_cast<size_t>(m));
    ws.walk_next = Bitset(static_cast<size_t>(m));
    ws.target_scratch = Bitset(static_cast<size_t>(m));
  }
  table_.assign(static_cast<size_t>(n) + 1,
                std::vector<StateLevelData>(static_cast<size_t>(m)));
  memo_.Reset(params_.memo_capacity);

  // Level 0 (Alg. 3 lines 6-10): L(I⁰) = {λ}, everything else empty. The
  // sample list holds ns copies of λ — "uniform with replacement" from a
  // singleton language — so AppUnion cursors cannot starve at level 1.
  StateLevelData& base = table_[0][nfa_->initial()];
  base.count_estimate = 1.0;
  base.samples.assign(static_cast<size_t>(params_.ns), MakeStored(Word{}));

  {
    ThreadPool pool(threads);
    for (int level = 1; level <= n; ++level) {
      NFA_RETURN_NOT_OK(RunLevel(level, pool));
    }
  }

  // Final answer. Single accepting state: N(q_F^n) (Alg. 3 line 31).
  // Multiple accepting states: |L(A_n)| = |∪_{f∈F} L(f^n)| via one more
  // AppUnion over the accepting states' (S, N) pairs (footnote 1: the single
  // final state assumption is WLOG).
  ran_ok_ = true;
  final_estimate_ = EstimateUnionOfStates(nfa_->accepting(), n);

  run_wall_seconds_ = timer.ElapsedSeconds();
  return Status::Ok();
}

double FprasEngine::EstimateUnionOfStates(const Bitset& targets, int level) {
  NFA_CHECK(ran_ok_, "EstimateUnionOfStates requires a successful Run()");
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  const size_t count = alive.Count();
  if (count == 0) return 0.0;
  if (count == 1) return table_[level][alive.FirstSet()].count_estimate;

  // Sequential post-barrier path: workers_[0] is free once RunLevel joined.
  WorkerScratch& ws = workers_[0];
  std::vector<PredecessorInput> inputs;
  alive.ForEachSet([&](int q) {
    inputs.push_back(PredecessorInput{&table_[level][q], static_cast<StateId>(q),
                                      nfa_, params_.amortize_oracle});
  });
  std::vector<const PredecessorInput*> ptrs;
  ptrs.reserve(inputs.size());
  for (const auto& in : inputs) ptrs.push_back(&in);
  AppUnionParams au = MakeUnionParams(params_, params_.eta, level + 1);
  // Content-keyed stream: repeated estimates of the same (targets, level)
  // union agree exactly (e.g. the all-lengths slice at n equals Estimate()).
  Rng rng = Rng::ForSubstream(seed_, HashCombine(kFinalUnionTag, alive.Hash()),
                              static_cast<uint64_t>(level));
  AppUnionOutcome outcome =
      (params_.csr_hot_path && params_.amortize_oracle)
          ? AppUnionBatched(ptrs, au, ws.union_scratch, rng)
          : AppUnion(ptrs, au, rng);
  ++ws.diag.appunion_calls;
  ws.diag.appunion_trials += outcome.completed_trials;
  ws.diag.membership_checks += outcome.membership_checks;
  if (outcome.starved) ++ws.diag.starvations;
  return outcome.estimate;
}

double FprasEngine::EstimateAtLength(int level) {
  NFA_CHECK(ran_ok_, "EstimateAtLength requires a successful Run()");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "EstimateAtLength: level out of [0, n]");
  if (level == 0) {
    return nfa_->IsAccepting(nfa_->initial()) ? 1.0 : 0.0;
  }
  return EstimateUnionOfStates(nfa_->accepting(), level);
}

std::optional<Word> FprasEngine::SampleWord(const Bitset& targets, int level) {
  NFA_CHECK(ran_ok_, "SampleWord requires a successful Run()");
  NFA_CHECK(level >= 0 && level <= params_.n,
            "SampleWord: level out of [0, n]");
  Bitset alive = targets;
  alive &= unrolled_.ReachableAt(level);
  if (alive.None()) return std::nullopt;

  // γ0 = 2/(3e) · 1/N where N estimates |∪ L(q^level)|.
  double union_estimate = EstimateUnionOfStates(alive, level);
  if (!(union_estimate > 0.0)) return std::nullopt;
  return SampleInternal(level, alive, kGammaNumerator / union_estimate,
                        workers_[0], rng_);
}

std::optional<Word> FprasEngine::SampleAcceptedWord() {
  return SampleWord(nfa_->accepting(), params_.n);
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

namespace {

/// Copies the CountOptions behavior flags onto derived params.
void ApplyOptionFlags(const CountOptions& options, FprasParams* params) {
  params->perturb_support = options.perturb_support;
  params->memoize_unions = options.memoize_unions;
  params->amortize_oracle = options.amortize_oracle;
  params->recycle_samples = options.recycle_samples;
  params->csr_hot_path = options.csr_hot_path;
  params->num_threads = options.num_threads;
}

}  // namespace

Result<CountEstimate> ApproxCount(const Nfa& nfa, int n,
                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");

  CountEstimate out;
  if (n == 0) {
    // L(A_0) = {λ} iff the initial state accepts.
    out.estimate = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    FprasParams p;
    NFA_ASSIGN_OR_RETURN(p, FprasParams::Make(options.schedule, nfa.num_states(), 0,
                                              options.eps, options.delta,
                                              options.calibration));
    out.params = p;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  ApplyOptionFlags(options, &params);

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  out.estimate = engine.Estimate();
  out.params = engine.params();
  out.diagnostics = engine.diagnostics();
  return out;
}

Result<std::vector<double>> ApproxCountAllLengths(const Nfa& nfa, int n,
                                                  const CountOptions& options) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  if (n < 0) return Status::Invalid("n must be >= 0");
  std::vector<double> out(static_cast<size_t>(n) + 1, 0.0);
  if (n == 0) {
    out[0] = nfa.IsAccepting(nfa.initial()) ? 1.0 : 0.0;
    return out;
  }

  FprasParams params;
  NFA_ASSIGN_OR_RETURN(params,
                       FprasParams::Make(options.schedule, nfa.num_states(), n,
                                         options.eps, options.delta,
                                         options.calibration));
  ApplyOptionFlags(options, &params);

  FprasEngine engine(&nfa, params, options.seed);
  NFA_RETURN_NOT_OK(engine.Run());
  for (int level = 0; level <= n; ++level) {
    out[static_cast<size_t>(level)] = engine.EstimateAtLength(level);
  }
  return out;
}

}  // namespace nfacount
