#include "automata/reduce.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace nfacount {

ReductionResult BisimulationQuotient(const Nfa& nfa) {
  assert(nfa.Validate().ok());
  const int m = nfa.num_states();
  const int k = nfa.alphabet_size();

  // Partition refinement: class signature = (acceptance, for each symbol the
  // sorted set of successor classes). Iterate to fixpoint.
  std::vector<int> cls(m);
  for (StateId q = 0; q < m; ++q) cls[q] = nfa.IsAccepting(q) ? 1 : 0;
  int num_classes = 2;

  while (true) {
    std::map<std::vector<int>, int> signature_to_class;
    std::vector<int> next_cls(m);
    for (StateId q = 0; q < m; ++q) {
      std::vector<int> signature;
      signature.push_back(cls[q]);
      for (int a = 0; a < k; ++a) {
        std::set<int> succ_classes;
        for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
          succ_classes.insert(cls[r]);
        }
        signature.push_back(-1);  // symbol separator
        signature.insert(signature.end(), succ_classes.begin(),
                         succ_classes.end());
      }
      auto [it, inserted] = signature_to_class.emplace(
          std::move(signature), static_cast<int>(signature_to_class.size()));
      (void)inserted;
      next_cls[q] = it->second;
    }
    int new_num = static_cast<int>(signature_to_class.size());
    cls = std::move(next_cls);
    if (new_num == num_classes) break;
    num_classes = new_num;
  }

  ReductionResult out;
  out.original_states = m;
  out.reduced_states = num_classes;
  out.state_class = cls;

  Nfa quotient(k);
  quotient.AddStates(num_classes);
  quotient.SetInitial(cls[nfa.initial()]);
  for (StateId q = 0; q < m; ++q) {
    if (nfa.IsAccepting(q)) quotient.AddAccepting(cls[q]);
    for (int a = 0; a < k; ++a) {
      for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
        quotient.AddTransition(cls[q], static_cast<Symbol>(a), cls[r]);
      }
    }
  }
  out.nfa = std::move(quotient);
  return out;
}

ReductionResult ReduceNfa(const Nfa& nfa) {
  Nfa trimmed = nfa.Trimmed();
  ReductionResult out = BisimulationQuotient(trimmed);
  out.original_states = nfa.num_states();
  // state_class maps trimmed states; expose quotient size vs the original.
  return out;
}

}  // namespace nfacount
