// Automaton workload families for tests and benchmarks (DESIGN.md §5). Each
// family stresses a different regime of the FPRAS: union overlap, ambiguity,
// sparsity, density, predecessor structure.

#ifndef NFACOUNT_AUTOMATA_GENERATORS_HPP_
#define NFACOUNT_AUTOMATA_GENERATORS_HPP_

#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "util/rng.hpp"

namespace nfacount {

/// Random NFA: m states, each (state, symbol) pair gets each possible target
/// independently with probability `density`; every state has at least one
/// outgoing edge per symbol forced (keeps levels alive); one random accepting
/// state plus each other state accepting with probability `accept_prob`.
Nfa RandomNfa(int m, double density, double accept_prob, Rng& rng);

/// DFA accepting exactly the words with `pattern` as a prefix ("combination
/// lock"): |L(A_n)| = |Σ|^(n-|pattern|) for n >= |pattern|. Exact anchor.
Nfa CombinationLock(const Word& pattern, int alphabet_size = 2);

/// NFA accepting words containing `pattern` as a (contiguous) substring, in
/// the textbook nondeterministic form (guess the occurrence start): highly
/// ambiguous, heavy predecessor overlap.
Nfa SubstringNfa(const Word& pattern, int alphabet_size = 2);

/// DFA accepting words whose number of occurrences of symbol 1 is ≡ r (mod k).
Nfa ParityNfa(int k, int r = 0, int alphabet_size = 2);

/// Union (shared-initial-state NFA) of `count` one-position locks of length
/// `len`: lock j accepts words with symbol 1 at position j % len (free
/// elsewhere). The per-lock languages overlap heavily — the worst case for
/// naive sum-of-estimates and the Karp-Luby showcase.
Nfa UnionOfLocks(int count, int len, int alphabet_size = 2);

/// Chain of m states where every state has both-symbol self loops and
/// forward edges: every accepted word has exponentially many runs. Detects
/// accidental run-counting (instead of word-counting) bugs.
Nfa AmbiguousChain(int m, int alphabet_size = 2);

/// DFA accepting base-|Σ| numerals (MSB first) divisible by d.
Nfa DivisibilityNfa(int d, int alphabet_size = 2);

/// NFA whose reversal is deterministic: built by reversing a random DFA.
/// Exercises degenerate predecessor structure (|Pred(q,b)| <= 1).
Nfa ReverseDeterministic(int m, Rng& rng, int alphabet_size = 2);

/// Single accepting sink with all transitions: accepts every word,
/// |L(A_n)| = |Σ|^n exactly.
Nfa DenseCompleteNfa(int m, int alphabet_size = 2);

/// Accepts exactly one word (the given needle): rejection-heavy sampling.
Nfa SparseNeedle(const Word& needle, int alphabet_size = 2);

/// Words whose k-th symbol from the end is 1 — the canonical determinization
/// blow-up family (the minimal DFA has 2^k states; the NFA has k+1).
Nfa KthFromEndNfa(int k, int alphabet_size = 2);

/// Corpus-style token matcher on a tokenizer-scale alphabet: a substring
/// automaton over token *categories*. Symbol a belongs to category
/// min(floor(log2(a+1)), num_categories-1) — doubling, Zipf-like buckets
/// (category 0 = {0}, 1 = {1,2}, 2 = {3..6}, ..., last = the long tail) —
/// and every transition depends only on the category: state 0 loops on all
/// symbols and advances on category i%num_categories at pattern position i,
/// the final state is absorbing-accepting. The automaton therefore has a
/// handful of distinct transition rows no matter how large |Σ| grows — the
/// regime symbol-class compression targets (C << |Σ|); categories absent
/// from the pattern collapse into one class. Requires pattern_len >= 1,
/// alphabet_size >= 2, 1 <= num_categories <= log2(alphabet_size)+1.
Nfa CorpusTokenNfa(int pattern_len, int alphabet_size, int num_categories);

/// Named accessor used by parameterized tests/benches: families keyed by
/// name with a size knob; returns a family instance suited to length n.
struct FamilyInstance {
  std::string name;
  Nfa nfa;
};
std::vector<FamilyInstance> StandardFamilies(int size_knob, int n, uint64_t seed);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_GENERATORS_HPP_
