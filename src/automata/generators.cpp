#include "automata/generators.hpp"

#include <cassert>

namespace nfacount {

Nfa RandomNfa(int m, double density, double accept_prob, Rng& rng) {
  assert(m >= 1);
  Nfa out(2);
  out.AddStates(m);
  out.SetInitial(0);
  for (StateId q = 0; q < m; ++q) {
    for (int a = 0; a < 2; ++a) {
      bool any = false;
      for (StateId r = 0; r < m; ++r) {
        if (rng.Bernoulli(density)) {
          out.AddTransition(q, static_cast<Symbol>(a), r);
          any = true;
        }
      }
      if (!any) {
        // Force liveness: one random target.
        out.AddTransition(q, static_cast<Symbol>(a),
                          static_cast<StateId>(rng.UniformU64(m)));
      }
    }
  }
  out.AddAccepting(static_cast<StateId>(rng.UniformU64(m)));
  for (StateId q = 0; q < m; ++q) {
    if (rng.Bernoulli(accept_prob)) out.AddAccepting(q);
  }
  return out;
}

Nfa CombinationLock(const Word& pattern, int alphabet_size) {
  const int len = static_cast<int>(pattern.size());
  Nfa out(alphabet_size);
  // States 0..len: position in the pattern; len = unlocked (absorbing accept).
  out.AddStates(len + 1);
  out.SetInitial(0);
  out.AddAccepting(len);
  for (int i = 0; i < len; ++i) {
    out.AddTransition(i, pattern[i], i + 1);
  }
  for (int a = 0; a < alphabet_size; ++a) {
    out.AddTransition(len, static_cast<Symbol>(a), len);
  }
  return out;
}

Nfa SubstringNfa(const Word& pattern, int alphabet_size) {
  const int len = static_cast<int>(pattern.size());
  assert(len >= 1);
  Nfa out(alphabet_size);
  // State 0: before the guessed occurrence (loops on everything);
  // states 1..len: inside the occurrence; state len loops (accepting).
  out.AddStates(len + 1);
  out.SetInitial(0);
  out.AddAccepting(len);
  for (int a = 0; a < alphabet_size; ++a) {
    out.AddTransition(0, static_cast<Symbol>(a), 0);
    out.AddTransition(len, static_cast<Symbol>(a), len);
  }
  for (int i = 0; i < len; ++i) {
    out.AddTransition(i, pattern[i], i + 1);
  }
  return out;
}

Nfa ParityNfa(int k, int r, int alphabet_size) {
  assert(k >= 1 && r >= 0 && r < k);
  Nfa out(alphabet_size);
  out.AddStates(k);
  out.SetInitial(0);
  out.AddAccepting(r);
  for (int q = 0; q < k; ++q) {
    // Symbol 1 advances the counter; all other symbols keep it.
    for (int a = 0; a < alphabet_size; ++a) {
      int next = (a == 1) ? (q + 1) % k : q;
      out.AddTransition(q, static_cast<Symbol>(a), next);
    }
  }
  return out;
}

Nfa UnionOfLocks(int count, int len, int alphabet_size) {
  assert(count >= 1 && len >= 1);
  Nfa out(alphabet_size);
  StateId start = out.AddState();
  out.SetInitial(start);
  // Lock j requires symbol 1 at position j % len and is free elsewhere (the
  // suffix after position len is free too): the per-lock languages are the
  // classic heavily-overlapping union L_j = { w : w[j] = 1 } — worst case for
  // summing per-set estimates, the Karp-Luby showcase.
  for (int j = 0; j < count; ++j) {
    int special = j % len;
    StateId prev = start;
    for (int i = 0; i < len; ++i) {
      StateId next = out.AddState();
      if (i == special) {
        out.AddTransition(prev, Symbol{1}, next);
      } else {
        for (int a = 0; a < alphabet_size; ++a) {
          out.AddTransition(prev, static_cast<Symbol>(a), next);
        }
      }
      prev = next;
    }
    out.AddAccepting(prev);
    for (int a = 0; a < alphabet_size; ++a) {
      out.AddTransition(prev, static_cast<Symbol>(a), prev);
    }
  }
  return out;
}

Nfa AmbiguousChain(int m, int alphabet_size) {
  assert(m >= 1);
  Nfa out(alphabet_size);
  out.AddStates(m);
  out.SetInitial(0);
  out.AddAccepting(m - 1);
  for (StateId q = 0; q < m; ++q) {
    for (int a = 0; a < alphabet_size; ++a) {
      out.AddTransition(q, static_cast<Symbol>(a), q);  // self loop
      if (q + 1 < m) out.AddTransition(q, static_cast<Symbol>(a), q + 1);
    }
  }
  return out;
}

Nfa DivisibilityNfa(int d, int alphabet_size) {
  assert(d >= 1);
  Nfa out(alphabet_size);
  out.AddStates(d);
  out.SetInitial(0);
  out.AddAccepting(0);
  for (int q = 0; q < d; ++q) {
    for (int a = 0; a < alphabet_size; ++a) {
      int next = (q * alphabet_size + a) % d;
      out.AddTransition(q, static_cast<Symbol>(a), next);
    }
  }
  return out;
}

Nfa ReverseDeterministic(int m, Rng& rng, int alphabet_size) {
  assert(m >= 1);
  // Build a random complete DFA, then reverse it.
  Nfa dfa(alphabet_size);
  dfa.AddStates(m);
  dfa.SetInitial(0);
  for (StateId q = 0; q < m; ++q) {
    for (int a = 0; a < alphabet_size; ++a) {
      dfa.AddTransition(q, static_cast<Symbol>(a),
                        static_cast<StateId>(rng.UniformU64(m)));
    }
  }
  dfa.AddAccepting(static_cast<StateId>(rng.UniformU64(m)));
  return Reverse(dfa).Trimmed();
}

Nfa DenseCompleteNfa(int m, int alphabet_size) {
  assert(m >= 1);
  Nfa out(alphabet_size);
  out.AddStates(m);
  out.SetInitial(0);
  for (StateId q = 0; q < m; ++q) {
    out.AddAccepting(q);
    for (int a = 0; a < alphabet_size; ++a) {
      out.AddTransition(q, static_cast<Symbol>(a), q);
      out.AddTransition(q, static_cast<Symbol>(a), (q + 1) % m);
    }
  }
  return out;
}

Nfa SparseNeedle(const Word& needle, int alphabet_size) {
  const int len = static_cast<int>(needle.size());
  Nfa out(alphabet_size);
  out.AddStates(len + 1);
  out.SetInitial(0);
  out.AddAccepting(len);
  for (int i = 0; i < len; ++i) {
    out.AddTransition(i, needle[i], i + 1);
  }
  return out;
}

Nfa KthFromEndNfa(int k, int alphabet_size) {
  assert(k >= 1);
  Nfa out(alphabet_size);
  // State 0 guesses the position (loops on everything); reading a 1 starts a
  // countdown of exactly k-1 further symbols.
  out.AddStates(k + 1);
  out.SetInitial(0);
  out.AddAccepting(k);
  for (int a = 0; a < alphabet_size; ++a) {
    out.AddTransition(0, static_cast<Symbol>(a), 0);
    for (int i = 1; i < k; ++i) {
      out.AddTransition(i, static_cast<Symbol>(a), i + 1);
    }
  }
  out.AddTransition(0, Symbol{1}, 1);
  return out;
}

Nfa CorpusTokenNfa(int pattern_len, int alphabet_size, int num_categories) {
  assert(pattern_len >= 1);
  assert(alphabet_size >= 2);
  assert(num_categories >= 1);
  // Zipf-like doubling buckets: category c covers [2^c - 1, 2^(c+1) - 1),
  // with the last category absorbing the long tail. Every bucket below the
  // last must be nonempty, which needs 2^(num_categories-1) - 1 < |Σ|.
  assert((int64_t{1} << (num_categories - 1)) - 1 < alphabet_size);
  auto category_of = [&](int a) {
    int c = 0;
    while (c + 1 < num_categories && a + 1 >= (1 << (c + 1))) ++c;
    return c;
  };

  Nfa out(alphabet_size);
  out.AddStates(pattern_len + 1);
  out.SetInitial(0);
  out.AddAccepting(pattern_len);
  for (int a = 0; a < alphabet_size; ++a) {
    const Symbol s = static_cast<Symbol>(a);
    out.AddTransition(0, s, 0);                        // guess the start
    out.AddTransition(pattern_len, s, pattern_len);    // absorbing accept
    const int cat = category_of(a);
    for (int i = 0; i < pattern_len; ++i) {
      if (cat == i % num_categories) out.AddTransition(i, s, i + 1);
    }
  }
  return out;
}

std::vector<FamilyInstance> StandardFamilies(int size_knob, int n, uint64_t seed) {
  assert(size_knob >= 2);
  Rng rng(seed);
  std::vector<FamilyInstance> out;

  Word pattern;
  for (int i = 0; i < std::min(3, n > 0 ? n : 1); ++i) {
    pattern.push_back(static_cast<Symbol>(i % 2));
  }

  out.push_back({"random", RandomNfa(size_knob, 0.25, 0.2, rng)});
  out.push_back({"lock", CombinationLock(pattern)});
  out.push_back({"substring", SubstringNfa(pattern)});
  out.push_back({"parity", ParityNfa(std::max(2, size_knob / 2))});
  out.push_back({"union_locks", UnionOfLocks(size_knob, std::max(2, n / 2))});
  out.push_back({"ambiguous", AmbiguousChain(size_knob)});
  out.push_back({"divisibility", DivisibilityNfa(std::max(2, size_knob - 1))});
  out.push_back({"reverse_det", ReverseDeterministic(size_knob, rng)});
  out.push_back({"dense", DenseCompleteNfa(std::max(2, size_knob / 2))});
  if (n >= 1) {
    Word needle;
    for (int i = 0; i < n; ++i) needle.push_back(static_cast<Symbol>((i / 2) % 2));
    out.push_back({"needle", SparseNeedle(needle)});
  }
  return out;
}

}  // namespace nfacount
