// Non-deterministic finite automata: the input object of #NFA.
//
// Representation notes (sized for the FPRAS access patterns):
//  * successor and predecessor adjacency are both materialized — the FPRAS
//    walks predecessors (suffix extension), while acceptance tests and the
//    membership oracle walk successors;
//  * state sets are Bitsets so predecessor expansion and reachability are
//    word-parallel.

#ifndef NFACOUNT_AUTOMATA_NFA_HPP_
#define NFACOUNT_AUTOMATA_NFA_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/alphabet.hpp"
#include "util/bitset.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Dense automaton state index.
using StateId = int32_t;

/// An NFA (Q, I, Δ, F) over a fixed alphabet with a single initial state.
/// Multiple accepting states are allowed (the paper's single-final-state
/// assumption is WLOG; the FPRAS facade handles |F| > 1 via a final union
/// estimate, see fpras/estimator.hpp).
class Nfa {
 public:
  /// Creates an empty automaton; `alphabet_size` in [1, kMaxAlphabetSize].
  explicit Nfa(int alphabet_size = 2);

  /// Adds a state and returns its id.
  StateId AddState();
  /// Adds `count` states, returning the id of the first.
  StateId AddStates(int count);

  /// Marks the (single) initial state; must be called before use.
  void SetInitial(StateId q);
  /// Marks `q` accepting (idempotent).
  void AddAccepting(StateId q);

  /// Adds (from, symbol, to) to Δ. Duplicate transitions are ignored.
  void AddTransition(StateId from, Symbol symbol, StateId to);

  int num_states() const { return static_cast<int>(succ_.size()); }
  int alphabet_size() const { return alphabet_size_; }
  StateId initial() const { return initial_; }
  const Bitset& accepting() const { return accepting_; }
  bool IsAccepting(StateId q) const { return accepting_.Test(q); }
  int64_t num_transitions() const { return num_transitions_; }

  /// States p with (p, symbol, q) in Δ (the b-predecessors Pred(q, b)).
  const std::vector<StateId>& Predecessors(StateId q, Symbol symbol) const {
    return pred_[q][symbol];
  }
  /// States r with (q, symbol, r) in Δ.
  const std::vector<StateId>& Successors(StateId q, Symbol symbol) const {
    return succ_[q][symbol];
  }

  /// Structural checks: initial set, symbols in range, at least one state.
  Status Validate() const;

  /// Frontier simulation; true iff some run on `word` ends in an accepting
  /// state. O(|word| * |Δ| / 64).
  bool Accepts(const Word& word) const;

  /// The set of states reachable from `from` by exactly `word`.
  Bitset ReachFrom(const Bitset& from, const Word& word) const;
  /// The set of states reachable from the initial state by exactly `word`
  /// (i.e. the set {q : word ∈ L(q^{|word|})} of the unrolled automaton).
  Bitset Reach(const Word& word) const;

  /// One-step image: states reachable from `from` via `symbol`.
  Bitset Step(const Bitset& from, Symbol symbol) const;
  /// One-step preimage: states p with a `symbol` transition into `into`.
  Bitset StepBack(const Bitset& into, Symbol symbol) const;

  /// States reachable from the initial state (any word length).
  Bitset ReachableStates() const;
  /// States from which some accepting state is reachable.
  Bitset CoReachableStates() const;

  /// Copy with only useful (reachable AND co-reachable) states, remapped
  /// densely. The language is preserved. If the initial state is useless the
  /// result is a single-state automaton with the empty language.
  Nfa Trimmed() const;

  /// Human-readable dump for diagnostics.
  std::string ToString() const;

 private:
  int alphabet_size_;
  StateId initial_ = -1;
  Bitset accepting_;
  int64_t num_transitions_ = 0;
  // succ_[q][a] / pred_[q][a]: sorted unique state lists.
  std::vector<std::vector<std::vector<StateId>>> succ_;
  std::vector<std::vector<std::vector<StateId>>> pred_;
};

/// Product automaton: L(result) = L(a) ∩ L(b). Alphabet sizes must match.
/// Only the reachable product states are materialized.
Nfa Intersect(const Nfa& a, const Nfa& b);

/// Union automaton: L(result) = L(a) ∪ L(b), via a fresh initial state whose
/// outgoing transitions mirror both initial states'. Note: for word counting
/// the union language (not disjoint sum) is what matters.
Nfa Union(const Nfa& a, const Nfa& b);

/// Reversal: L(result) = { reverse(w) : w in L(a) }. Requires |F| >= 1; a
/// fresh initial state simulates the accepting set.
Nfa Reverse(const Nfa& a);

/// Concatenation: L(result) = L(a)·L(b), epsilon-free construction (every
/// accepting state of `a` mirrors the outgoing edges of b's initial state).
Nfa Concat(const Nfa& a, const Nfa& b);

/// Kleene star: L(result) = L(a)*, epsilon-free construction via a fresh
/// accepting initial state and loop-back edges from accepting states.
Nfa Star(const Nfa& a);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_NFA_HPP_
