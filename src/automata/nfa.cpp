#include "automata/nfa.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <utility>

namespace nfacount {

// ---------------------------------------------------------------------------
// alphabet.hpp helpers
// ---------------------------------------------------------------------------

char SymbolToChar(Symbol s) {
  assert(s < kMaxCharAlphabetSize);
  if (s < 10) return static_cast<char>('0' + s);
  return static_cast<char>('a' + (s - 10));
}

int CharToSymbol(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'z') return 10 + (c - 'a');
  return -1;
}

std::string SymbolToken(Symbol s) {
  if (s < kMaxCharAlphabetSize) return std::string(1, SymbolToChar(s));
  return std::to_string(s);
}

int ParseSymbolToken(const std::string& token) {
  if (token.size() == 1) return CharToSymbol(token[0]);
  if (token.empty() || token.size() > 5) return -1;  // 65535 has 5 digits
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value < kMaxAlphabetSize ? value : -1;
}

std::string WordToString(const Word& word) {
  std::string out;
  out.reserve(word.size());
  for (Symbol s : word) {
    if (s < kMaxCharAlphabetSize) {
      out.push_back(SymbolToChar(s));
    } else {
      out += "[" + std::to_string(s) + "]";
    }
  }
  return out;
}

Result<Word> ParseWord(const std::string& text, int alphabet_size) {
  Word out;
  out.reserve(text.size());
  for (char c : text) {
    int s = CharToSymbol(c);
    if (s < 0 || s >= alphabet_size) {
      return Status::Invalid("bad symbol '" + std::string(1, c) + "' for alphabet size " +
                             std::to_string(alphabet_size));
    }
    out.push_back(static_cast<Symbol>(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Nfa
// ---------------------------------------------------------------------------

Nfa::Nfa(int alphabet_size) : alphabet_size_(alphabet_size), accepting_(0) {
  assert(alphabet_size >= 1 && alphabet_size <= kMaxAlphabetSize);
}

StateId Nfa::AddState() {
  StateId id = num_states();
  succ_.emplace_back(alphabet_size_);
  pred_.emplace_back(alphabet_size_);
  // Grow the accepting bitset preserving old bits.
  Bitset grown(static_cast<size_t>(id) + 1);
  accepting_.ForEachSet([&](int i) { grown.Set(i); });
  accepting_ = std::move(grown);
  return id;
}

StateId Nfa::AddStates(int count) {
  assert(count > 0);
  StateId first = num_states();
  for (int i = 0; i < count; ++i) AddState();
  return first;
}

void Nfa::SetInitial(StateId q) {
  assert(q >= 0 && q < num_states());
  initial_ = q;
}

void Nfa::AddAccepting(StateId q) {
  assert(q >= 0 && q < num_states());
  accepting_.Set(q);
}

void Nfa::AddTransition(StateId from, Symbol symbol, StateId to) {
  assert(from >= 0 && from < num_states());
  assert(to >= 0 && to < num_states());
  assert(symbol < alphabet_size_);
  auto& fwd = succ_[from][symbol];
  auto it = std::lower_bound(fwd.begin(), fwd.end(), to);
  if (it != fwd.end() && *it == to) return;  // duplicate
  fwd.insert(it, to);
  auto& bwd = pred_[to][symbol];
  auto jt = std::lower_bound(bwd.begin(), bwd.end(), from);
  bwd.insert(jt, from);
  ++num_transitions_;
}

Status Nfa::Validate() const {
  if (num_states() == 0) return Status::Invalid("automaton has no states");
  if (initial_ < 0 || initial_ >= num_states()) {
    return Status::Invalid("initial state unset or out of range");
  }
  return Status::Ok();
}

Bitset Nfa::Step(const Bitset& from, Symbol symbol) const {
  Bitset out(num_states());
  from.ForEachSet([&](int q) {
    for (StateId r : succ_[q][symbol]) out.Set(r);
  });
  return out;
}

Bitset Nfa::StepBack(const Bitset& into, Symbol symbol) const {
  Bitset out(num_states());
  into.ForEachSet([&](int q) {
    for (StateId p : pred_[q][symbol]) out.Set(p);
  });
  return out;
}

bool Nfa::Accepts(const Word& word) const {
  return Reach(word).Intersects(accepting_);
}

Bitset Nfa::ReachFrom(const Bitset& from, const Word& word) const {
  Bitset cur = from;
  for (Symbol s : word) {
    cur = Step(cur, s);
    if (cur.None()) break;
  }
  return cur;
}

Bitset Nfa::Reach(const Word& word) const {
  assert(initial_ >= 0);
  Bitset start(num_states());
  start.Set(initial_);
  return ReachFrom(start, word);
}

Bitset Nfa::ReachableStates() const {
  assert(initial_ >= 0);
  Bitset seen(num_states());
  std::queue<StateId> frontier;
  seen.Set(initial_);
  frontier.push(initial_);
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop();
    for (int a = 0; a < alphabet_size_; ++a) {
      for (StateId r : succ_[q][a]) {
        if (!seen.Test(r)) {
          seen.Set(r);
          frontier.push(r);
        }
      }
    }
  }
  return seen;
}

Bitset Nfa::CoReachableStates() const {
  Bitset seen(num_states());
  std::queue<StateId> frontier;
  accepting_.ForEachSet([&](int q) {
    seen.Set(q);
    frontier.push(q);
  });
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop();
    for (int a = 0; a < alphabet_size_; ++a) {
      for (StateId p : pred_[q][a]) {
        if (!seen.Test(p)) {
          seen.Set(p);
          frontier.push(p);
        }
      }
    }
  }
  return seen;
}

Nfa Nfa::Trimmed() const {
  assert(initial_ >= 0);
  Bitset useful = ReachableStates();
  useful &= CoReachableStates();
  Nfa out(alphabet_size_);
  if (!useful.Test(initial_)) {
    // Empty language: single non-accepting initial state.
    StateId q = out.AddState();
    out.SetInitial(q);
    return out;
  }
  std::vector<StateId> remap(num_states(), -1);
  useful.ForEachSet([&](int q) { remap[q] = out.AddState(); });
  out.SetInitial(remap[initial_]);
  accepting_.ForEachSet([&](int q) {
    if (remap[q] >= 0) out.AddAccepting(remap[q]);
  });
  useful.ForEachSet([&](int q) {
    for (int a = 0; a < alphabet_size_; ++a) {
      for (StateId r : succ_[q][a]) {
        if (remap[r] >= 0) {
          out.AddTransition(remap[q], static_cast<Symbol>(a), remap[r]);
        }
      }
    }
  });
  return out;
}

std::string Nfa::ToString() const {
  std::string out = "NFA(states=" + std::to_string(num_states()) +
                    ", alphabet=" + std::to_string(alphabet_size_) +
                    ", initial=" + std::to_string(initial_) +
                    ", accepting=" + accepting_.ToString() + ")\n";
  for (StateId q = 0; q < num_states(); ++q) {
    for (int a = 0; a < alphabet_size_; ++a) {
      for (StateId r : succ_[q][a]) {
        out += "  " + std::to_string(q) + " --" +
               SymbolToken(static_cast<Symbol>(a)) + "--> " +
               std::to_string(r) + "\n";
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Language operations
// ---------------------------------------------------------------------------

Nfa Intersect(const Nfa& a, const Nfa& b) {
  assert(a.alphabet_size() == b.alphabet_size());
  assert(a.initial() >= 0 && b.initial() >= 0);
  Nfa out(a.alphabet_size());
  std::map<std::pair<StateId, StateId>, StateId> ids;
  std::queue<std::pair<StateId, StateId>> frontier;

  auto intern = [&](StateId qa, StateId qb) {
    auto key = std::make_pair(qa, qb);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState();
    ids.emplace(key, id);
    if (a.IsAccepting(qa) && b.IsAccepting(qb)) out.AddAccepting(id);
    frontier.push(key);
    return id;
  };

  StateId start = intern(a.initial(), b.initial());
  out.SetInitial(start);
  while (!frontier.empty()) {
    auto [qa, qb] = frontier.front();
    frontier.pop();
    StateId from = ids.at({qa, qb});
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId ra : a.Successors(qa, static_cast<Symbol>(s))) {
        for (StateId rb : b.Successors(qb, static_cast<Symbol>(s))) {
          StateId to = intern(ra, rb);
          out.AddTransition(from, static_cast<Symbol>(s), to);
        }
      }
    }
  }
  return out;
}

Nfa Union(const Nfa& a, const Nfa& b) {
  assert(a.alphabet_size() == b.alphabet_size());
  assert(a.initial() >= 0 && b.initial() >= 0);
  Nfa out(a.alphabet_size());
  StateId start = out.AddState();
  out.SetInitial(start);
  StateId base_a = out.AddStates(a.num_states());
  StateId base_b = out.AddStates(b.num_states());

  auto copy_into = [&out](const Nfa& src, StateId base) {
    for (StateId q = 0; q < src.num_states(); ++q) {
      for (int s = 0; s < src.alphabet_size(); ++s) {
        for (StateId r : src.Successors(q, static_cast<Symbol>(s))) {
          out.AddTransition(base + q, static_cast<Symbol>(s), base + r);
        }
      }
    }
    src.accepting().ForEachSet([&](int q) { out.AddAccepting(base + q); });
  };
  copy_into(a, base_a);
  copy_into(b, base_b);

  // The fresh start mirrors both initial states' outgoing edges (no epsilon
  // transitions in this library).
  for (int s = 0; s < a.alphabet_size(); ++s) {
    for (StateId r : a.Successors(a.initial(), static_cast<Symbol>(s))) {
      out.AddTransition(start, static_cast<Symbol>(s), base_a + r);
    }
    for (StateId r : b.Successors(b.initial(), static_cast<Symbol>(s))) {
      out.AddTransition(start, static_cast<Symbol>(s), base_b + r);
    }
  }
  // Empty word: accepted iff either side accepts it.
  if (a.IsAccepting(a.initial()) || b.IsAccepting(b.initial())) {
    out.AddAccepting(start);
  }
  return out;
}

Nfa Concat(const Nfa& a, const Nfa& b) {
  assert(a.alphabet_size() == b.alphabet_size());
  assert(a.initial() >= 0 && b.initial() >= 0);
  Nfa out(a.alphabet_size());
  StateId base_a = out.AddStates(a.num_states());
  StateId base_b = out.AddStates(b.num_states());
  out.SetInitial(base_a + a.initial());

  for (StateId q = 0; q < a.num_states(); ++q) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId r : a.Successors(q, static_cast<Symbol>(s))) {
        out.AddTransition(base_a + q, static_cast<Symbol>(s), base_a + r);
      }
    }
  }
  for (StateId q = 0; q < b.num_states(); ++q) {
    for (int s = 0; s < b.alphabet_size(); ++s) {
      for (StateId r : b.Successors(q, static_cast<Symbol>(s))) {
        out.AddTransition(base_b + q, static_cast<Symbol>(s), base_b + r);
      }
    }
  }
  // Entering b: every accepting state of a mirrors b-initial's edges.
  a.accepting().ForEachSet([&](int f) {
    for (int s = 0; s < b.alphabet_size(); ++s) {
      for (StateId r : b.Successors(b.initial(), static_cast<Symbol>(s))) {
        out.AddTransition(base_a + f, static_cast<Symbol>(s), base_b + r);
      }
    }
  });
  // Acceptance: end of b; or end of a when λ ∈ L(b).
  b.accepting().ForEachSet([&](int f) { out.AddAccepting(base_b + f); });
  if (b.IsAccepting(b.initial())) {
    a.accepting().ForEachSet([&](int f) { out.AddAccepting(base_a + f); });
  }
  return out;
}

Nfa Star(const Nfa& a) {
  assert(a.initial() >= 0);
  Nfa out(a.alphabet_size());
  StateId base = out.AddStates(a.num_states());
  StateId start = out.AddState();  // fresh accepting initial (λ ∈ L*)
  out.SetInitial(start);
  out.AddAccepting(start);

  for (StateId q = 0; q < a.num_states(); ++q) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId r : a.Successors(q, static_cast<Symbol>(s))) {
        out.AddTransition(base + q, static_cast<Symbol>(s), base + r);
      }
    }
  }
  // The fresh start and every accepting state mirror a-initial's edges
  // (restart after each completed factor).
  auto mirror_initial_edges = [&](StateId from) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId r : a.Successors(a.initial(), static_cast<Symbol>(s))) {
        out.AddTransition(from, static_cast<Symbol>(s), base + r);
      }
    }
  };
  mirror_initial_edges(start);
  a.accepting().ForEachSet([&](int f) {
    out.AddAccepting(base + f);
    mirror_initial_edges(base + f);
  });
  return out;
}

Nfa Reverse(const Nfa& a) {
  assert(a.initial() >= 0);
  Nfa out(a.alphabet_size());
  // States 0..n-1 mirror a's states; state n is the fresh initial simulating
  // the accepting set of a.
  StateId base = out.AddStates(a.num_states());
  (void)base;
  StateId start = out.AddState();
  out.SetInitial(start);
  out.AddAccepting(a.initial());
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId r : a.Successors(q, static_cast<Symbol>(s))) {
        out.AddTransition(r, static_cast<Symbol>(s), q);  // reversed edge
      }
    }
  }
  // Fresh initial behaves like the union of accepting states.
  a.accepting().ForEachSet([&](int f) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      for (StateId p : a.Predecessors(f, static_cast<Symbol>(s))) {
        out.AddTransition(start, static_cast<Symbol>(s), p);
      }
    }
  });
  if (a.accepting().Test(a.initial())) out.AddAccepting(start);
  return out;
}

}  // namespace nfacount
