// Symbol equivalence classes — alphabet compression for the per-symbol hot
// loops (à la RE2 byte classes).
//
// Two symbols a, b are equivalent when they have identical transition
// relations: Succ(q, a) == Succ(q, b) for every state q (equivalently,
// identical reverse rows). Interchangeable symbols do interchangeable work
// everywhere the engine iterates Σ — the predecessor set Pred(P, a) of any
// frontier P, and hence the level-ℓ slice size behind it, is the same for
// every member of a class. Collapsing Σ to its C distinct rows makes those
// loops O(C) instead of O(|Σ|): regex- and corpus-derived NFAs (character
// classes, wildcards, case folding) have a handful of distinct rows even at
// tokenizer-vocab alphabet sizes (2^10..2^16), where C << |Σ|.
//
// The partition is computed once at UnrolledNfa construction: hash each
// symbol's full successor-row content across all states, bucket by hash, and
// verify every bucket by exact row comparison (a hash collision splits the
// bucket, never merges wrongly). Classes are ordered by their smallest
// member, so representatives are strictly increasing and the trivial
// partition (all rows distinct) has class id == symbol id.

#ifndef NFACOUNT_AUTOMATA_SYMBOL_CLASSES_HPP_
#define NFACOUNT_AUTOMATA_SYMBOL_CLASSES_HPP_

#include <cstdint>
#include <vector>

#include "automata/nfa.hpp"

namespace nfacount {

/// The symbol partition of one automaton: class_of maps each symbol to its
/// class id, and per class the index stores the representative (smallest
/// member), the weight (member count), and a CSR of the members themselves.
class SymbolClassIndex {
 public:
  /// Computes the partition of `nfa`'s alphabet by identical transition
  /// rows (hash + exact verification).
  static SymbolClassIndex Compute(const Nfa& nfa);

  /// The trivial one-symbol-per-class partition over `alphabet_size` symbols
  /// (the knob-off layout: class id == symbol id, every weight 1).
  static SymbolClassIndex Trivial(int alphabet_size);

  /// Number of classes C (1 <= C <= alphabet size).
  int num_classes() const { return static_cast<int>(representative_.size()); }
  /// The partitioned alphabet's size |Σ|.
  int alphabet_size() const { return static_cast<int>(class_of_.size()); }
  /// True when every class is a singleton (C == |Σ|).
  bool trivial() const { return num_classes() == alphabet_size(); }

  /// Class id of symbol `a`.
  int ClassOf(Symbol a) const { return class_of_[a]; }
  /// Smallest member of class `c` — the symbol the hot loops expand.
  Symbol Representative(int c) const { return representative_[c]; }
  /// Member count of class `c`.
  int Weight(int c) const {
    return static_cast<int>(member_offsets_[c + 1] - member_offsets_[c]);
  }
  /// The `i`-th member (ascending) of class `c`, i in [0, Weight(c)).
  Symbol Member(int c, int i) const {
    return members_[member_offsets_[c] + static_cast<size_t>(i)];
  }

 private:
  std::vector<int32_t> class_of_;        ///< |Σ| entries: symbol → class id
  std::vector<Symbol> representative_;   ///< C entries, strictly increasing
  std::vector<Symbol> members_;          ///< |Σ| symbols grouped by class
  std::vector<size_t> member_offsets_;   ///< C+1 offsets into members_
};

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_SYMBOL_CLASSES_HPP_
