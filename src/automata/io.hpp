// Text serialization for automata: a line-oriented format for loading and
// storing NFAs (used by the CLI example and for fixture-based tests), plus
// Graphviz DOT export for visualization.
//
// Format (comments with '#', blank lines ignored):
//   nfa <num_states> <alphabet_size>
//   initial <state>
//   accepting <state> [<state> ...]
//   trans <from> <symbol> <to>           # one per line
//
// A <symbol> token is either the single character form (0-9 then a-z, for
// symbols below kMaxCharAlphabetSize) or the symbol's decimal index (the
// only form for large alphabets). NfaToText writes the character form when
// it exists, so files for alphabets <= 36 are unchanged.
//
// Example:
//   nfa 2 2
//   initial 0
//   accepting 1
//   trans 0 1 1
//   trans 1 0 1
//   trans 1 1 1

#ifndef NFACOUNT_AUTOMATA_IO_HPP_
#define NFACOUNT_AUTOMATA_IO_HPP_

#include <string>

#include "automata/nfa.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Parses an automaton from the text format above. Validates ranges and
/// requires the header, an initial state, and at least one state.
Result<Nfa> ParseNfaText(const std::string& text);

/// Serializes to the text format (round-trips through ParseNfaText).
std::string NfaToText(const Nfa& nfa);

/// Reads a file and parses it.
Result<Nfa> LoadNfaFile(const std::string& path);

/// Writes the text format to a file.
Status SaveNfaFile(const Nfa& nfa, const std::string& path);

/// Graphviz DOT rendering (initial state marked with an inbound arrow,
/// accepting states doubly circled, edges labeled by symbol characters).
std::string NfaToDot(const Nfa& nfa, const std::string& name = "nfa");

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_IO_HPP_
