// Regular-expression compiler: parses a pattern into an AST, builds a
// Thompson epsilon-NFA, and eliminates epsilon transitions to produce the
// epsilon-free Nfa the counting algorithms expect. This is the substrate for
// regular path queries (apps/rpq.*) and the regex-counting example.
//
// Grammar (POSIX-ish subset, symbols are the characters 0-9a-z):
//   alt    :=  cat ('|' cat)*
//   cat    :=  rep*
//   rep    :=  atom ('*' | '+' | '?' | '{m}' | '{m,n}')*
//   atom   :=  symbol | '.' | '(' alt ')' | '[' sym+ ']' | '[^' sym+ ']'
// '.' and classes range over the declared alphabet size.

#ifndef NFACOUNT_AUTOMATA_REGEX_HPP_
#define NFACOUNT_AUTOMATA_REGEX_HPP_

#include <memory>
#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Regex AST node kinds.
enum class RegexOp {
  kEmpty,    // matches only the empty word
  kNever,    // matches nothing (empty class)
  kSymbols,  // one symbol from a set
  kConcat,
  kAlt,
  kStar,
  kPlus,
  kOpt,
  kRepeat,  // {m} / {m,n}; max = -1 means unbounded (m copies then star)
};

/// Immutable regex AST.
struct RegexNode {
  RegexOp op;
  std::vector<Symbol> symbols;                       // kSymbols
  std::vector<std::unique_ptr<RegexNode>> children;  // operators
  int rep_min = 0, rep_max = 0;                      // kRepeat

  /// Pattern-ish rendering (for diagnostics).
  std::string ToString() const;
};

/// Parses `pattern` over an alphabet of the given size.
Result<std::unique_ptr<RegexNode>> ParseRegex(const std::string& pattern,
                                              int alphabet_size);

/// Compiles an AST into an epsilon-free NFA accepting exactly the regex
/// language. The result is trimmed (useful states only).
Nfa CompileRegexAst(const RegexNode& ast, int alphabet_size);

/// Convenience: parse + compile.
Result<Nfa> CompileRegex(const std::string& pattern, int alphabet_size);

/// Reference matcher by Brzozowski-style direct AST simulation — used in
/// tests to validate the compiled automaton, independent of the NFA path.
bool RegexMatches(const RegexNode& ast, const Word& word);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_REGEX_HPP_
