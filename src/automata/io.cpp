#include "automata/io.hpp"

#include <fstream>
#include <sstream>

namespace nfacount {

namespace {

Status ParseError(int line_no, const std::string& message) {
  return Status::Invalid("nfa text line " + std::to_string(line_no) + ": " +
                         message);
}

}  // namespace

Result<Nfa> ParseNfaText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  bool have_header = false;
  int num_states = 0, alphabet_size = 0;
  bool have_initial = false;
  // Staged so the header can appear before we construct the automaton.
  Nfa nfa(1);

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    if (keyword == "nfa") {
      if (have_header) return ParseError(line_no, "duplicate header");
      if (!(ls >> num_states >> alphabet_size)) {
        return ParseError(line_no, "expected 'nfa <states> <alphabet>'");
      }
      if (num_states < 1) return ParseError(line_no, "need >= 1 state");
      if (alphabet_size < 1 || alphabet_size > kMaxAlphabetSize) {
        return ParseError(line_no, "alphabet size out of range");
      }
      nfa = Nfa(alphabet_size);
      nfa.AddStates(num_states);
      have_header = true;
      continue;
    }
    if (!have_header) return ParseError(line_no, "header must come first");

    if (keyword == "initial") {
      int q;
      if (!(ls >> q) || q < 0 || q >= num_states) {
        return ParseError(line_no, "bad initial state");
      }
      nfa.SetInitial(q);
      have_initial = true;
    } else if (keyword == "accepting") {
      int q;
      bool any = false;
      while (ls >> q) {
        if (q < 0 || q >= num_states) {
          return ParseError(line_no, "accepting state out of range");
        }
        nfa.AddAccepting(q);
        any = true;
      }
      if (!any) return ParseError(line_no, "expected at least one state");
    } else if (keyword == "trans") {
      int from, to;
      std::string symbol;
      if (!(ls >> from >> symbol >> to)) {
        return ParseError(line_no, "expected 'trans <from> <symbol> <to>'");
      }
      if (from < 0 || from >= num_states || to < 0 || to >= num_states) {
        return ParseError(line_no, "transition state out of range");
      }
      int s = ParseSymbolToken(symbol);
      if (s < 0) {
        return ParseError(line_no,
                          "symbol must be one char or a decimal index");
      }
      if (s >= alphabet_size) {
        return ParseError(line_no, "symbol outside the alphabet");
      }
      nfa.AddTransition(from, static_cast<Symbol>(s), to);
    } else {
      return ParseError(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (!have_header) return Status::Invalid("nfa text: missing header");
  if (!have_initial) return Status::Invalid("nfa text: missing initial state");
  NFA_RETURN_NOT_OK(nfa.Validate());
  return nfa;
}

std::string NfaToText(const Nfa& nfa) {
  std::ostringstream out;
  out << "nfa " << nfa.num_states() << " " << nfa.alphabet_size() << "\n";
  out << "initial " << nfa.initial() << "\n";
  if (nfa.accepting().Any()) {
    out << "accepting";
    nfa.accepting().ForEachSet([&](int q) { out << " " << q; });
    out << "\n";
  }
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
        out << "trans " << q << " " << SymbolToken(static_cast<Symbol>(a))
            << " " << r << "\n";
      }
    }
  }
  return out.str();
}

Result<Nfa> LoadNfaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNfaText(buffer.str());
}

Status SaveNfaFile(const Nfa& nfa, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Invalid("cannot write '" + path + "'");
  out << NfaToText(nfa);
  return out ? Status::Ok() : Status::Internal("write failed");
}

std::string NfaToDot(const Nfa& nfa, const std::string& name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n";
  out << "  rankdir=LR;\n";
  out << "  __start [shape=point];\n";
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    out << "  q" << q << " [shape="
        << (nfa.IsAccepting(q) ? "doublecircle" : "circle") << "];\n";
  }
  out << "  __start -> q" << nfa.initial() << ";\n";
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.alphabet_size(); ++a) {
      for (StateId r : nfa.Successors(q, static_cast<Symbol>(a))) {
        out << "  q" << q << " -> q" << r << " [label=\""
            << SymbolToken(static_cast<Symbol>(a)) << "\"];\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace nfacount
