// Language-preserving NFA state reduction by forward bisimulation quotient.
//
// Two states are (forward-)bisimilar when they agree on acceptance and, for
// every symbol, their successor sets hit the same equivalence classes.
// Merging bisimilar states preserves the language exactly — unlike general
// NFA minimization (PSPACE-hard), the quotient is computable by partition
// refinement in polynomial time.
//
// Why it matters here: the #NFA instances produced by reductions are highly
// redundant — e.g. the DNF→NFA encoding gives every clause its own chain of
// per-variable states, but chains with identical remaining constraints are
// bisimilar and collapse. Since the FPRAS costs ~O(m²..m³), shrinking m
// before counting is a direct win (measured in E10).

#ifndef NFACOUNT_AUTOMATA_REDUCE_HPP_
#define NFACOUNT_AUTOMATA_REDUCE_HPP_

#include <vector>

#include "automata/nfa.hpp"

namespace nfacount {

/// Result of a quotient reduction.
struct ReductionResult {
  Nfa nfa;                  ///< the quotient automaton
  int original_states = 0;
  int reduced_states = 0;
  std::vector<int> state_class;  ///< original state -> quotient state
};

/// Computes the forward-bisimulation quotient. The input must validate.
/// L(result) == L(input) for every word length.
ReductionResult BisimulationQuotient(const Nfa& nfa);

/// Convenience: trim useless states, then quotient.
ReductionResult ReduceNfa(const Nfa& nfa);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_REDUCE_HPP_
