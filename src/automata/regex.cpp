#include "automata/regex.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <tuple>

namespace nfacount {

// ---------------------------------------------------------------------------
// AST rendering
// ---------------------------------------------------------------------------

std::string RegexNode::ToString() const {
  switch (op) {
    case RegexOp::kEmpty:
      return "()";
    case RegexOp::kNever:
      return "[]";
    case RegexOp::kSymbols: {
      if (symbols.size() == 1) return std::string(1, SymbolToChar(symbols[0]));
      std::string out = "[";
      for (Symbol s : symbols) out.push_back(SymbolToChar(s));
      return out + "]";
    }
    case RegexOp::kConcat: {
      std::string out;
      for (const auto& c : children) out += c->ToString();
      return out;
    }
    case RegexOp::kAlt: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += "|";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case RegexOp::kStar:
      return "(" + children[0]->ToString() + ")*";
    case RegexOp::kPlus:
      return "(" + children[0]->ToString() + ")+";
    case RegexOp::kOpt:
      return "(" + children[0]->ToString() + ")?";
    case RegexOp::kRepeat: {
      std::string out = "(" + children[0]->ToString() + "){" + std::to_string(rep_min);
      if (rep_max != rep_min) {
        out += ",";
        if (rep_max >= 0) out += std::to_string(rep_max);
      }
      return out + "}";
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

using NodePtr = std::unique_ptr<RegexNode>;

NodePtr MakeNode(RegexOp op) {
  auto n = std::make_unique<RegexNode>();
  n->op = op;
  return n;
}

class Parser {
 public:
  Parser(const std::string& text, int alphabet_size)
      : text_(text), k_(alphabet_size) {}

  Result<NodePtr> Parse() {
    auto res = ParseAlt();
    if (!res.ok()) return res;
    if (pos_ != text_.size()) {
      return Fail("unexpected character '" + std::string(1, text_[pos_]) + "'");
    }
    return res;
  }

 private:
  Status FailStatus(const std::string& msg) const {
    return Status::Invalid("regex parse error at position " + std::to_string(pos_) +
                           ": " + msg);
  }
  Result<NodePtr> Fail(const std::string& msg) const { return FailStatus(msg); }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<NodePtr> ParseAlt() {
    NodePtr first;
    NFA_ASSIGN_OR_RETURN(first, ParseCat());
    if (AtEnd() || Peek() != '|') return first;
    auto alt = MakeNode(RegexOp::kAlt);
    alt->children.push_back(std::move(first));
    while (Eat('|')) {
      NodePtr next;
      NFA_ASSIGN_OR_RETURN(next, ParseCat());
      alt->children.push_back(std::move(next));
    }
    return alt;
  }

  Result<NodePtr> ParseCat() {
    auto cat = MakeNode(RegexOp::kConcat);
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      NodePtr rep;
      NFA_ASSIGN_OR_RETURN(rep, ParseRep());
      cat->children.push_back(std::move(rep));
    }
    if (cat->children.empty()) return MakeNode(RegexOp::kEmpty);
    if (cat->children.size() == 1) return std::move(cat->children[0]);
    return cat;
  }

  Result<NodePtr> ParseRep() {
    NodePtr node;
    NFA_ASSIGN_OR_RETURN(node, ParseAtom());
    while (!AtEnd()) {
      char c = Peek();
      if (c == '*' || c == '+' || c == '?') {
        ++pos_;
        auto wrap = MakeNode(c == '*'   ? RegexOp::kStar
                             : c == '+' ? RegexOp::kPlus
                                        : RegexOp::kOpt);
        wrap->children.push_back(std::move(node));
        node = std::move(wrap);
      } else if (c == '{') {
        ++pos_;
        int lo = 0;
        bool have_digit = false;
        while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
          lo = lo * 10 + (Peek() - '0');
          ++pos_;
          have_digit = true;
        }
        if (!have_digit) return Fail("expected repetition count");
        int hi = lo;
        if (Eat(',')) {
          if (Eat('}')) {
            hi = -1;  // unbounded
          } else {
            hi = 0;
            have_digit = false;
            while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
              hi = hi * 10 + (Peek() - '0');
              ++pos_;
              have_digit = true;
            }
            if (!have_digit) return Fail("expected repetition upper bound");
            if (!Eat('}')) return Fail("expected '}'");
            if (hi < lo) return Fail("repetition upper bound below lower bound");
          }
        } else if (!Eat('}')) {
          return Fail("expected '}' or ','");
        }
        auto wrap = MakeNode(RegexOp::kRepeat);
        wrap->rep_min = lo;
        wrap->rep_max = hi;
        wrap->children.push_back(std::move(node));
        node = std::move(wrap);
      } else {
        break;
      }
    }
    return node;
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) return Fail("unexpected end of pattern");
    char c = Peek();
    if (c == '(') {
      ++pos_;
      NodePtr inner;
      NFA_ASSIGN_OR_RETURN(inner, ParseAlt());
      if (!Eat(')')) return Fail("expected ')'");
      return inner;
    }
    if (c == '[') {
      ++pos_;
      bool negated = Eat('^');
      std::vector<bool> in_class(k_, false);
      bool any = false;
      while (!AtEnd() && Peek() != ']') {
        int s = CharToSymbol(Peek());
        if (s < 0 || s >= k_) return Fail("bad class symbol");
        in_class[s] = true;
        any = true;
        ++pos_;
      }
      if (!Eat(']')) return Fail("expected ']'");
      if (!any && !negated) return MakeNode(RegexOp::kNever);
      auto node = MakeNode(RegexOp::kSymbols);
      for (int s = 0; s < k_; ++s) {
        if (in_class[s] != negated) node->symbols.push_back(static_cast<Symbol>(s));
      }
      if (node->symbols.empty()) return MakeNode(RegexOp::kNever);
      return node;
    }
    if (c == '.') {
      ++pos_;
      auto node = MakeNode(RegexOp::kSymbols);
      for (int s = 0; s < k_; ++s) node->symbols.push_back(static_cast<Symbol>(s));
      return node;
    }
    int s = CharToSymbol(c);
    if (s < 0 || s >= k_) {
      return Fail("bad symbol '" + std::string(1, c) + "' for alphabet size " +
                  std::to_string(k_));
    }
    ++pos_;
    auto node = MakeNode(RegexOp::kSymbols);
    node->symbols.push_back(static_cast<Symbol>(s));
    return node;
  }

  const std::string& text_;
  int k_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<RegexNode>> ParseRegex(const std::string& pattern,
                                              int alphabet_size) {
  // Regex syntax is character-based: every symbol must render as a single
  // character, so the cap is the char-alphabet bound, not kMaxAlphabetSize.
  if (alphabet_size < 1 || alphabet_size > kMaxCharAlphabetSize) {
    return Status::Invalid("alphabet size out of range");
  }
  return Parser(pattern, alphabet_size).Parse();
}

// ---------------------------------------------------------------------------
// Thompson construction + epsilon elimination
// ---------------------------------------------------------------------------

namespace {

/// Mutable epsilon-NFA under construction.
struct EpsNfa {
  int alphabet_size;
  std::vector<std::vector<int>> eps;                         // eps[q] -> states
  std::vector<std::vector<std::pair<Symbol, int>>> edges;    // labeled edges

  int AddState() {
    eps.emplace_back();
    edges.emplace_back();
    return static_cast<int>(eps.size()) - 1;
  }
  void AddEps(int from, int to) { eps[from].push_back(to); }
  void AddEdge(int from, Symbol s, int to) { edges[from].emplace_back(s, to); }
};

struct Fragment {
  int start;
  int accept;
};

Fragment BuildFragment(EpsNfa& eps_nfa, const RegexNode& node);

Fragment BuildRepeat(EpsNfa& g, const RegexNode& child, int lo, int hi) {
  int start = g.AddState();
  int cur = start;
  // `lo` mandatory copies.
  for (int i = 0; i < lo; ++i) {
    Fragment f = BuildFragment(g, child);
    g.AddEps(cur, f.start);
    cur = f.accept;
  }
  if (hi < 0) {
    // Unbounded tail: star of the child.
    Fragment f = BuildFragment(g, child);
    int accept = g.AddState();
    g.AddEps(cur, f.start);
    g.AddEps(cur, accept);
    g.AddEps(f.accept, f.start);
    g.AddEps(f.accept, accept);
    return {start, accept};
  }
  // hi - lo optional copies; each can be skipped straight to the accept.
  int accept = g.AddState();
  g.AddEps(cur, accept);
  for (int i = lo; i < hi; ++i) {
    Fragment f = BuildFragment(g, child);
    g.AddEps(cur, f.start);
    g.AddEps(f.accept, accept);
    cur = f.accept;
  }
  return {start, accept};
}

Fragment BuildFragment(EpsNfa& g, const RegexNode& node) {
  switch (node.op) {
    case RegexOp::kEmpty: {
      int s = g.AddState();
      int a = g.AddState();
      g.AddEps(s, a);
      return {s, a};
    }
    case RegexOp::kNever: {
      int s = g.AddState();
      int a = g.AddState();
      return {s, a};
    }
    case RegexOp::kSymbols: {
      int s = g.AddState();
      int a = g.AddState();
      for (Symbol sym : node.symbols) g.AddEdge(s, sym, a);
      return {s, a};
    }
    case RegexOp::kConcat: {
      assert(!node.children.empty());
      Fragment acc = BuildFragment(g, *node.children[0]);
      for (size_t i = 1; i < node.children.size(); ++i) {
        Fragment next = BuildFragment(g, *node.children[i]);
        g.AddEps(acc.accept, next.start);
        acc.accept = next.accept;
      }
      return acc;
    }
    case RegexOp::kAlt: {
      int s = g.AddState();
      int a = g.AddState();
      for (const auto& child : node.children) {
        Fragment f = BuildFragment(g, *child);
        g.AddEps(s, f.start);
        g.AddEps(f.accept, a);
      }
      return {s, a};
    }
    case RegexOp::kStar: {
      Fragment f = BuildFragment(g, *node.children[0]);
      int s = g.AddState();
      int a = g.AddState();
      g.AddEps(s, f.start);
      g.AddEps(s, a);
      g.AddEps(f.accept, f.start);
      g.AddEps(f.accept, a);
      return {s, a};
    }
    case RegexOp::kPlus: {
      Fragment f = BuildFragment(g, *node.children[0]);
      int s = g.AddState();
      int a = g.AddState();
      g.AddEps(s, f.start);
      g.AddEps(f.accept, f.start);
      g.AddEps(f.accept, a);
      return {s, a};
    }
    case RegexOp::kOpt: {
      Fragment f = BuildFragment(g, *node.children[0]);
      int s = g.AddState();
      int a = g.AddState();
      g.AddEps(s, f.start);
      g.AddEps(s, a);
      g.AddEps(f.accept, a);
      return {s, a};
    }
    case RegexOp::kRepeat:
      return BuildRepeat(g, *node.children[0], node.rep_min, node.rep_max);
  }
  assert(false && "unreachable");
  return {0, 0};
}

/// Epsilon closure of a single state as a sorted state list.
std::vector<int> EpsClosure(const EpsNfa& g, int q) {
  std::vector<bool> seen(g.eps.size(), false);
  std::vector<int> stack = {q}, out;
  seen[q] = true;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (int next : g.eps[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Nfa CompileRegexAst(const RegexNode& ast, int alphabet_size) {
  EpsNfa g{alphabet_size, {}, {}};
  Fragment f = BuildFragment(g, ast);

  const int n = static_cast<int>(g.eps.size());
  Nfa out(alphabet_size);
  out.AddStates(n);
  out.SetInitial(f.start);

  for (int q = 0; q < n; ++q) {
    std::vector<int> closure = EpsClosure(g, q);
    bool accepting = false;
    for (int c : closure) {
      if (c == f.accept) accepting = true;
      for (auto [sym, to] : g.edges[c]) out.AddTransition(q, sym, to);
    }
    if (accepting) out.AddAccepting(q);
  }
  return out.Trimmed();
}

Result<Nfa> CompileRegex(const std::string& pattern, int alphabet_size) {
  std::unique_ptr<RegexNode> ast;
  NFA_ASSIGN_OR_RETURN(ast, ParseRegex(pattern, alphabet_size));
  return CompileRegexAst(*ast, alphabet_size);
}

// ---------------------------------------------------------------------------
// Reference matcher (independent of the NFA pipeline; used by tests)
// ---------------------------------------------------------------------------

namespace {

struct MatchMemo {
  std::map<std::tuple<const RegexNode*, int, int>, bool> table;
};

bool MatchRange(const RegexNode& node, const Word& w, int i, int j, MatchMemo& memo);

// Does some split i = k0 <= k1 <= ... <= j match children[idx..] sequentially?
bool MatchSeq(const std::vector<std::unique_ptr<RegexNode>>& children, size_t idx,
              const Word& w, int i, int j, MatchMemo& memo) {
  if (idx == children.size()) return i == j;
  for (int k = i; k <= j; ++k) {
    if (MatchRange(*children[idx], w, i, k, memo) &&
        MatchSeq(children, idx + 1, w, k, j, memo)) {
      return true;
    }
  }
  return false;
}

// Kleene closure of `child` over w[i..j).
bool MatchStarRange(const RegexNode& child, const Word& w, int i, int j,
                    MatchMemo& memo) {
  if (i == j) return true;
  // Split off a non-empty prefix matching child (non-empty to terminate).
  for (int k = i + 1; k <= j; ++k) {
    if (MatchRange(child, w, i, k, memo) && MatchStarRange(child, w, k, j, memo)) {
      return true;
    }
  }
  return false;
}

bool MatchRange(const RegexNode& node, const Word& w, int i, int j, MatchMemo& memo) {
  auto key = std::make_tuple(&node, i, j);
  auto it = memo.table.find(key);
  if (it != memo.table.end()) return it->second;
  bool result = false;
  switch (node.op) {
    case RegexOp::kEmpty:
      result = (i == j);
      break;
    case RegexOp::kNever:
      result = false;
      break;
    case RegexOp::kSymbols:
      result = (j == i + 1) && std::find(node.symbols.begin(), node.symbols.end(),
                                         w[i]) != node.symbols.end();
      break;
    case RegexOp::kConcat:
      result = MatchSeq(node.children, 0, w, i, j, memo);
      break;
    case RegexOp::kAlt:
      for (const auto& c : node.children) {
        if (MatchRange(*c, w, i, j, memo)) {
          result = true;
          break;
        }
      }
      break;
    case RegexOp::kStar:
      result = MatchStarRange(*node.children[0], w, i, j, memo);
      break;
    case RegexOp::kPlus:
      if (i == j) {
        // X+ matches the empty word iff X does (one empty factor).
        result = MatchRange(*node.children[0], w, i, i, memo);
      } else {
        for (int k = i + 1; k <= j; ++k) {
          if (MatchRange(*node.children[0], w, i, k, memo) &&
              MatchStarRange(*node.children[0], w, k, j, memo)) {
            result = true;
            break;
          }
        }
      }
      break;
    case RegexOp::kOpt:
      result = (i == j) || MatchRange(*node.children[0], w, i, j, memo);
      break;
    case RegexOp::kRepeat: {
      // Peel mandatory copies; then 0..(max-min) more (or star if unbounded).
      const RegexNode& child = *node.children[0];
      if (node.rep_min > 0) {
        for (int k = i; k <= j && !result; ++k) {
          if (!MatchRange(child, w, i, k, memo)) continue;
          RegexNode tail;
          tail.op = RegexOp::kRepeat;
          tail.rep_min = node.rep_min - 1;
          tail.rep_max = node.rep_max < 0 ? -1 : node.rep_max - 1;
          // Borrow the child without ownership transfer.
          tail.children.emplace_back(const_cast<RegexNode*>(&child));
          bool ok = MatchRange(tail, w, k, j, memo);
          tail.children[0].release();  // borrowed; do not delete
          memo.table.erase(std::make_tuple(&tail, k, j));
          if (ok) result = true;
        }
      } else if (node.rep_max < 0) {
        result = MatchStarRange(child, w, i, j, memo);
      } else if (node.rep_max == 0) {
        result = (i == j);
      } else {
        // 0..max copies: empty, or one copy plus {0, max-1}.
        if (i == j) {
          result = true;
        } else {
          for (int k = i + 1; k <= j && !result; ++k) {
            if (!MatchRange(child, w, i, k, memo)) continue;
            RegexNode tail;
            tail.op = RegexOp::kRepeat;
            tail.rep_min = 0;
            tail.rep_max = node.rep_max - 1;
            tail.children.emplace_back(const_cast<RegexNode*>(&child));
            bool ok = MatchRange(tail, w, k, j, memo);
            tail.children[0].release();
            memo.table.erase(std::make_tuple(&tail, k, j));
            if (ok) result = true;
          }
        }
      }
      break;
    }
  }
  memo.table[key] = result;
  return result;
}

}  // namespace

bool RegexMatches(const RegexNode& ast, const Word& word) {
  MatchMemo memo;
  return MatchRange(ast, word, 0, static_cast<int>(word.size()), memo);
}

}  // namespace nfacount
