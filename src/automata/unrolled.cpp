#include "automata/unrolled.hpp"

#include <cassert>

namespace nfacount {

UnrolledNfa::UnrolledNfa(const Nfa* nfa, int n) : nfa_(nfa), n_(n) {
  assert(nfa != nullptr);
  assert(nfa->Validate().ok());
  assert(n >= 0);
  reachable_.reserve(n + 1);
  Bitset cur(nfa->num_states());
  cur.Set(nfa->initial());
  reachable_.push_back(cur);
  for (int level = 1; level <= n; ++level) {
    Bitset next(nfa->num_states());
    for (int a = 0; a < nfa->alphabet_size(); ++a) {
      next |= nfa->Step(cur, static_cast<Symbol>(a));
    }
    reachable_.push_back(next);
    cur = reachable_.back();
  }
}

Bitset UnrolledNfa::PredSet(const Bitset& states, Symbol symbol, int level) const {
  assert(level >= 1 && level <= n_);
  Bitset preds = nfa_->StepBack(states, symbol);
  preds &= reachable_[level - 1];
  return preds;
}

std::optional<Word> UnrolledNfa::WitnessWord(StateId q, int level) const {
  assert(level >= 0 && level <= n_);
  if (!reachable_[level].Test(q)) return std::nullopt;
  // Walk backwards: at each step pick the smallest (symbol, predecessor) pair
  // whose predecessor is reachable at the previous level.
  Word word(level);
  Bitset cur(nfa_->num_states());
  cur.Set(q);
  for (int i = level; i >= 1; --i) {
    bool found = false;
    for (int a = 0; a < nfa_->alphabet_size() && !found; ++a) {
      Bitset preds = PredSet(cur, static_cast<Symbol>(a), i);
      int p = preds.FirstSet();
      if (p >= 0) {
        word[i - 1] = static_cast<Symbol>(a);
        cur.Clear();
        cur.Set(p);
        found = true;
      }
    }
    assert(found && "reachable state must have a predecessor chain");
    if (!found) return std::nullopt;
  }
  assert(cur.Test(nfa_->initial()));
  return word;
}

StoredSample UnrolledNfa::MakeSample(Word word) const {
  Bitset reach = nfa_->Reach(word);
  return StoredSample{std::move(word), std::move(reach)};
}

bool UnrolledNfa::MemberSlow(const Word& word, StateId q) const {
  return nfa_->Reach(word).Test(q);
}

}  // namespace nfacount
