#include "automata/unrolled.hpp"

#include <algorithm>
#include <cassert>

namespace nfacount {

namespace {

/// Word count of a num_states-bit frontier row.
inline size_t RowWords(int num_states) {
  return (static_cast<size_t>(num_states) + 63) / 64;
}

/// Calls fn(state) for every set bit of a raw word span, ascending.
template <typename Fn>
inline void ForEachSetWord(const uint64_t* words, size_t nwords, Fn&& fn) {
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t bits = words[w];
    while (bits) {
      int b = __builtin_ctzll(bits);
      fn(static_cast<int>(w * 64 + b));
      bits &= bits - 1;
    }
  }
}

/// Shared CSR assembly over a row-visitor: `for_each_edge(q, a, fn)` must call
/// fn(target) for every edge of row (q, a) in ascending target order.
template <typename EdgeSource>
CsrTransitions BuildCsr(const Nfa& nfa, EdgeSource&& edges_of_row) {
  CsrTransitions csr;
  csr.num_states = nfa.num_states();
  csr.alphabet_size = nfa.alphabet_size();
  const size_t rows = static_cast<size_t>(csr.num_states) * csr.alphabet_size;

  csr.offsets.assign(rows + 1, 0);
  for (StateId q = 0; q < csr.num_states; ++q) {
    for (int a = 0; a < csr.alphabet_size; ++a) {
      csr.offsets[csr.Row(q, static_cast<Symbol>(a)) + 1] =
          static_cast<int32_t>(edges_of_row(q, static_cast<Symbol>(a)).size());
    }
  }
  for (size_t r = 0; r < rows; ++r) csr.offsets[r + 1] += csr.offsets[r];

  csr.targets.resize(static_cast<size_t>(csr.offsets[rows]));
  csr.symbols.resize(csr.targets.size());
  for (StateId q = 0; q < csr.num_states; ++q) {
    for (int a = 0; a < csr.alphabet_size; ++a) {
      const Symbol sym = static_cast<Symbol>(a);
      size_t at = static_cast<size_t>(csr.offsets[csr.Row(q, sym)]);
      for (StateId r : edges_of_row(q, sym)) {
        csr.targets[at] = r;
        csr.symbols[at] = sym;
        ++at;
      }
    }
  }

  // Word-parallel row masks, when the m·|Σ| rows of m bits fit the budget.
  const size_t mask_bits = rows * static_cast<size_t>(csr.num_states);
  if (mask_bits > 0 && mask_bits <= CsrTransitions::kMaskBitBudget) {
    csr.row_masks.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      Bitset mask(static_cast<size_t>(csr.num_states));
      for (int32_t e = csr.offsets[r]; e < csr.offsets[r + 1]; ++e) {
        mask.Set(static_cast<size_t>(csr.targets[static_cast<size_t>(e)]));
      }
      csr.row_masks.push_back(std::move(mask));
    }
  }
  return csr;
}

}  // namespace

CsrTransitions CsrTransitions::FromSuccessors(const Nfa& nfa) {
  return BuildCsr(nfa, [&nfa](StateId q, Symbol a) -> const std::vector<StateId>& {
    return nfa.Successors(q, a);
  });
}

CsrTransitions CsrTransitions::FromPredecessors(const Nfa& nfa) {
  return BuildCsr(nfa, [&nfa](StateId q, Symbol a) -> const std::vector<StateId>& {
    return nfa.Predecessors(q, a);
  });
}

void CsrTransitions::StepInto(const Bitset& from, Symbol symbol,
                              Bitset* out) const {
  assert(out != nullptr && out->size() == static_cast<size_t>(num_states));
  out->Clear();
  if (has_masks()) {
    // One kernel-table fetch for the whole frontier, not one per set bit.
    const simd::BitsetKernels& kern = simd::ActiveKernels();
    uint64_t* dst = out->mutable_words();
    const size_t nwords = out->words().size();
    from.ForEachSet([&](int q) {
      kern.or_into(dst,
                   row_masks[Row(static_cast<StateId>(q), symbol)].words().data(),
                   nwords);
    });
  } else {
    from.ForEachSet([&](int q) {
      const StateId* end = RowEnd(static_cast<StateId>(q), symbol);
      for (const StateId* t = RowBegin(static_cast<StateId>(q), symbol);
           t != end; ++t) {
        out->Set(static_cast<size_t>(*t));
      }
    });
  }
}

UnrolledNfa::UnrolledNfa(const Nfa* nfa, int n, bool symbol_classes)
    : nfa_(nfa), n_(n) {
  assert(nfa != nullptr);
  assert(nfa->Validate().ok());
  assert(n >= 0);
  classes_ = symbol_classes ? SymbolClassIndex::Compute(*nfa)
                            : SymbolClassIndex::Trivial(nfa->alphabet_size());
  forward_ = CsrTransitions::FromSuccessors(*nfa);
  reverse_ = CsrTransitions::FromPredecessors(*nfa);
  reachable_.reserve(n + 1);
  Bitset cur(nfa->num_states());
  cur.Set(nfa->initial());
  reachable_.push_back(cur);
  Bitset next(nfa->num_states());
  Bitset step(nfa->num_states());
  for (int level = 1; level <= n; ++level) {
    next.Clear();
    // Class members step identically, so one representative per class covers
    // the union — bit-identical to stepping every symbol.
    for (int c = 0; c < classes_.num_classes(); ++c) {
      forward_.StepInto(cur, classes_.Representative(c), &step);
      next |= step;
    }
    reachable_.push_back(next);
    cur.CopyFrom(next);
  }
}

void UnrolledNfa::PredSetInto(const Bitset& states, Symbol symbol, int level,
                              Bitset* out) const {
  assert(level >= 1 && level <= n_);
  assert(out != nullptr && out->size() == states.size());
  const Bitset& clip = reachable_[level - 1];
  if (reverse_.has_masks()) {
    // Fused OR-and-clip: every mask word is ANDed against the previous
    // level's reachable set as it lands, so `out` never holds dead states.
    // Kernel table fetched once for the whole frontier.
    const simd::BitsetKernels& kern = simd::ActiveKernels();
    uint64_t* dst = out->mutable_words();
    const uint64_t* clip_words = clip.words().data();
    const size_t nwords = out->words().size();
    out->Clear();
    states.ForEachSet([&](int q) {
      kern.or_masked_into(
          dst,
          reverse_.row_masks[reverse_.Row(static_cast<StateId>(q), symbol)]
              .words()
              .data(),
          clip_words, nwords);
    });
  } else {
    reverse_.StepInto(states, symbol, out);
    *out &= clip;
  }
}

void UnrolledNfa::PredSetWordsInto(const uint64_t* from, Symbol symbol,
                                   int level, uint64_t* out,
                                   const simd::BitsetKernels& kern) const {
  assert(level >= 1 && level <= n_);
  const size_t nwords = RowWords(nfa_->num_states());
  const uint64_t* clip = reachable_[level - 1].words().data();
  std::fill(out, out + nwords, 0);
  if (reverse_.has_masks()) {
    // Fused OR-and-clip, exactly as PredSetInto but on spans.
    ForEachSetWord(from, nwords, [&](int q) {
      const Bitset& mask =
          reverse_.row_masks[reverse_.Row(static_cast<StateId>(q), symbol)];
      kern.or_masked_into(out, mask.words().data(), clip, nwords);
    });
  } else {
    ForEachSetWord(from, nwords, [&](int q) {
      const StateId* end = reverse_.RowEnd(static_cast<StateId>(q), symbol);
      for (const StateId* t = reverse_.RowBegin(static_cast<StateId>(q), symbol);
           t != end; ++t) {
        out[static_cast<size_t>(*t) >> 6] |=
            uint64_t{1} << (static_cast<size_t>(*t) & 63);
      }
    });
    kern.and_into(out, clip, nwords);
  }
}

void UnrolledNfa::SuccSetWordsInto(const uint64_t* from, Symbol symbol,
                                   uint64_t* out,
                                   const simd::BitsetKernels& kern) const {
  const size_t nwords = RowWords(nfa_->num_states());
  std::fill(out, out + nwords, 0);
  if (forward_.has_masks()) {
    ForEachSetWord(from, nwords, [&](int q) {
      const Bitset& mask =
          forward_.row_masks[forward_.Row(static_cast<StateId>(q), symbol)];
      kern.or_into(out, mask.words().data(), nwords);
    });
  } else {
    ForEachSetWord(from, nwords, [&](int q) {
      const StateId* end = forward_.RowEnd(static_cast<StateId>(q), symbol);
      for (const StateId* t = forward_.RowBegin(static_cast<StateId>(q), symbol);
           t != end; ++t) {
        out[static_cast<size_t>(*t) >> 6] |=
            uint64_t{1} << (static_cast<size_t>(*t) & 63);
      }
    });
  }
}

Bitset UnrolledNfa::PredSet(const Bitset& states, Symbol symbol,
                            int level) const {
  Bitset out(states.size());
  PredSetInto(states, symbol, level, &out);
  return out;
}

Bitset UnrolledNfa::PredSetLegacy(const Bitset& states, Symbol symbol,
                                  int level) const {
  assert(level >= 1 && level <= n_);
  Bitset preds = nfa_->StepBack(states, symbol);
  preds &= reachable_[level - 1];
  return preds;
}

void UnrolledNfa::SuccSetInto(const Bitset& states, Symbol symbol,
                              Bitset* out) const {
  forward_.StepInto(states, symbol, out);
}

Bitset UnrolledNfa::ReachProfile(const Word& word) const {
  Bitset cur(nfa_->num_states());
  cur.Set(nfa_->initial());
  Bitset next(nfa_->num_states());
  for (Symbol s : word) {
    forward_.StepInto(cur, s, &next);
    std::swap(cur, next);
    if (cur.None()) break;
  }
  return cur;
}

std::optional<Word> UnrolledNfa::WitnessWord(StateId q, int level) const {
  assert(level >= 0 && level <= n_);
  if (!reachable_[level].Test(q)) return std::nullopt;
  // Walk backwards: at each step pick the smallest (symbol, predecessor) pair
  // whose predecessor is reachable at the previous level.
  Word word(level);
  Bitset cur(nfa_->num_states());
  Bitset preds(nfa_->num_states());
  cur.Set(q);
  for (int i = level; i >= 1; --i) {
    bool found = false;
    // Per-class scan, bit-identical to scanning every symbol: predecessor
    // emptiness is uniform within a class, and representatives are each
    // class's smallest member in ascending order — so the first nonempty
    // representative IS the smallest nonempty symbol.
    for (int c = 0; c < classes_.num_classes() && !found; ++c) {
      const Symbol a = classes_.Representative(c);
      PredSetInto(cur, a, i, &preds);
      int p = preds.FirstSet();
      if (p >= 0) {
        word[i - 1] = a;
        cur.Clear();
        cur.Set(p);
        found = true;
      }
    }
    assert(found && "reachable state must have a predecessor chain");
    if (!found) return std::nullopt;
  }
  assert(cur.Test(nfa_->initial()));
  return word;
}

StoredSample UnrolledNfa::MakeSample(Word word) const {
  Bitset reach = ReachProfile(word);
  return StoredSample{std::move(word), std::move(reach)};
}

StoredSample UnrolledNfa::MakeSampleLegacy(Word word) const {
  Bitset reach = nfa_->Reach(word);
  return StoredSample{std::move(word), std::move(reach)};
}

bool UnrolledNfa::MemberSlow(const Word& word, StateId q) const {
  return ReachProfile(word).Test(q);
}

}  // namespace nfacount
