// Deterministic automata: the exact-counting and language-equality substrate
// used to validate the FPRAS. Exact #NFA via determinization is worst-case
// exponential — that blow-up is precisely why the paper's FPRAS matters — so
// Determinize takes an explicit state budget and fails gracefully beyond it.

#ifndef NFACOUNT_AUTOMATA_DFA_HPP_
#define NFACOUNT_AUTOMATA_DFA_HPP_

#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "util/bigint.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Complete DFA: every (state, symbol) has exactly one successor.
class Dfa {
 public:
  Dfa(int num_states, int alphabet_size);

  int num_states() const { return num_states_; }
  int alphabet_size() const { return alphabet_size_; }
  StateId initial() const { return initial_; }
  const Bitset& accepting() const { return accepting_; }

  void SetInitial(StateId q) { initial_ = q; }
  void AddAccepting(StateId q) { accepting_.Set(q); }
  void SetTransition(StateId from, Symbol symbol, StateId to);

  StateId Next(StateId from, Symbol symbol) const {
    return next_[static_cast<size_t>(from) * alphabet_size_ + symbol];
  }

  bool Accepts(const Word& word) const;

  /// All transitions assigned and initial state set.
  Status Validate() const;

  /// Exact |L(A_n)|: one BigUint per state, n rounds of transfer. O(n·m·|Σ|)
  /// BigUint additions.
  BigUint CountWordsOfLength(int n) const;

  /// Exact counts for every length 0..n (index i holds |L(A_i)|).
  std::vector<BigUint> CountWordsUpToLength(int n) const;

  /// View as an NFA (for code paths that are generic in Nfa).
  Nfa ToNfa() const;

 private:
  int num_states_;
  int alphabet_size_;
  StateId initial_ = -1;
  Bitset accepting_;
  std::vector<StateId> next_;  // dense [state][symbol], -1 = unassigned
};

/// Subset construction. Fails with ResourceExhausted if more than
/// `max_states` subset states would be materialized.
Result<Dfa> Determinize(const Nfa& nfa, int max_states = 1 << 20);

/// Moore partition refinement; returns the minimal complete DFA.
Dfa Minimize(const Dfa& dfa);

/// Complement of a complete DFA (accepting set flipped).
Dfa Complement(const Dfa& dfa);

/// True iff the two automata accept the same language (product BFS over the
/// determinized pair). Determinization budget applies to each input.
Result<bool> LanguageEquivalent(const Nfa& a, const Nfa& b,
                                int max_states = 1 << 18);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_DFA_HPP_
