// Words and alphabets. The paper works over Σ = {0,1} and notes all results
// extend to any fixed constant-size alphabet; the library is generic in the
// alphabet size (symbols are dense indices 0..k-1).

#ifndef NFACOUNT_AUTOMATA_ALPHABET_HPP_
#define NFACOUNT_AUTOMATA_ALPHABET_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace nfacount {

/// A symbol is a dense index in [0, alphabet_size).
using Symbol = uint8_t;

/// A word is a sequence of symbols; words compare lexicographically.
using Word = std::vector<Symbol>;

/// Maximum supported alphabet size ("arbitrary but fixed constant size").
inline constexpr int kMaxAlphabetSize = 36;

/// Renders symbol `s` as a character: 0-9 then a-z.
char SymbolToChar(Symbol s);

/// Parses a character into a symbol index; returns -1 if not a valid symbol.
int CharToSymbol(char c);

/// Renders a word, e.g. {0,1,1} -> "011". The empty word renders as "".
std::string WordToString(const Word& word);

/// Parses a word; every character must be a valid symbol strictly below
/// `alphabet_size`.
Result<Word> ParseWord(const std::string& text, int alphabet_size);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_ALPHABET_HPP_
