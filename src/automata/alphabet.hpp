// Words and alphabets. The paper works over Σ = {0,1} and notes all results
// extend to any fixed constant-size alphabet; the library is generic in the
// alphabet size (symbols are dense indices 0..k-1).

#ifndef NFACOUNT_AUTOMATA_ALPHABET_HPP_
#define NFACOUNT_AUTOMATA_ALPHABET_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace nfacount {

/// A symbol is a dense index in [0, alphabet_size). 16 bits cover
/// tokenizer-vocab alphabets (up to 2^16) while keeping words compact.
using Symbol = uint16_t;

/// A word is a sequence of symbols; words compare lexicographically.
using Word = std::vector<Symbol>;

/// Maximum supported alphabet size ("arbitrary but fixed constant size").
inline constexpr int kMaxAlphabetSize = 1 << 16;

/// Largest alphabet whose symbols all render as single characters (0-9 then
/// a-z). Symbols at or above this bound use bracketed decimal notation in
/// text formats; the regex compiler, whose syntax is character-based, is
/// capped here.
inline constexpr int kMaxCharAlphabetSize = 36;

/// Renders symbol `s` as a character: 0-9 then a-z. Valid only for
/// s < kMaxCharAlphabetSize.
char SymbolToChar(Symbol s);

/// Parses a character into a symbol index; returns -1 if not a valid symbol.
int CharToSymbol(char c);

/// Renders a symbol as a text-format token: its single character below
/// kMaxCharAlphabetSize, its decimal digits otherwise. Tokens are
/// whitespace-separated in the text formats, so the two forms coexist
/// unambiguously (a one-character digit token names the same symbol either
/// way).
std::string SymbolToken(Symbol s);

/// Parses a token written by SymbolToken: single characters via CharToSymbol,
/// multi-character all-digit tokens as decimal. Returns -1 on malformed
/// tokens; callers bound the value against their alphabet size.
int ParseSymbolToken(const std::string& token);

/// Renders a word, e.g. {0,1,1} -> "011". Symbols >= kMaxCharAlphabetSize
/// render as bracketed decimals, e.g. {0,517} -> "0[517]". The empty word
/// renders as "".
std::string WordToString(const Word& word);

/// Parses a word; every character must be a valid symbol strictly below
/// `alphabet_size`.
Result<Word> ParseWord(const std::string& text, int alphabet_size);

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_ALPHABET_HPP_
