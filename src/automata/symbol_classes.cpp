#include "automata/symbol_classes.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/rng.hpp"

namespace nfacount {

namespace {

/// True when symbols `a` and `b` have identical successor rows at every
/// state — the exact check behind the hash buckets.
bool RowsEqual(const Nfa& nfa, Symbol a, Symbol b) {
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    if (nfa.Successors(q, a) != nfa.Successors(q, b)) return false;
  }
  return true;
}

}  // namespace

SymbolClassIndex SymbolClassIndex::Compute(const Nfa& nfa) {
  const int k = nfa.alphabet_size();
  const int m = nfa.num_states();

  // Content hash of each symbol's full successor-row vector. Rows are stored
  // sorted, so equal relations hash equally on any platform.
  std::vector<uint64_t> hash(static_cast<size_t>(k));
  for (int a = 0; a < k; ++a) {
    uint64_t h = 0x53594d43ULL;  // arbitrary domain tag ("SYMC")
    for (StateId q = 0; q < m; ++q) {
      const std::vector<StateId>& row =
          nfa.Successors(q, static_cast<Symbol>(a));
      h = HashCombine(h, row.size() + 1);
      for (StateId r : row) {
        h = HashCombine(h, static_cast<uint64_t>(r) + 1);
      }
    }
    hash[static_cast<size_t>(a)] = h;
  }

  // Bucket by hash, then verify each bucket member-by-member against the
  // groups already formed in its bucket: a collision splits a bucket into
  // several classes but can never merge distinct rows.
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (hash[static_cast<size_t>(a)] != hash[static_cast<size_t>(b)]) {
      return hash[static_cast<size_t>(a)] < hash[static_cast<size_t>(b)];
    }
    return a < b;
  });

  std::vector<std::vector<Symbol>> groups;
  for (size_t i = 0; i < order.size();) {
    size_t j = i;
    while (j < order.size() &&
           hash[static_cast<size_t>(order[j])] ==
               hash[static_cast<size_t>(order[i])]) {
      ++j;
    }
    const size_t run_first_group = groups.size();
    for (size_t t = i; t < j; ++t) {
      const Symbol a = static_cast<Symbol>(order[t]);
      bool placed = false;
      for (size_t g = run_first_group; g < groups.size(); ++g) {
        if (RowsEqual(nfa, groups[g].front(), a)) {
          groups[g].push_back(a);  // ascending: order[] ascends within a hash
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({a});
    }
    i = j;
  }

  // Canonical class order: by smallest member, so representatives ascend and
  // the trivial partition is the identity map.
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<Symbol>& a, const std::vector<Symbol>& b) {
              return a.front() < b.front();
            });

  SymbolClassIndex out;
  out.class_of_.assign(static_cast<size_t>(k), -1);
  out.representative_.reserve(groups.size());
  out.members_.reserve(static_cast<size_t>(k));
  out.member_offsets_.reserve(groups.size() + 1);
  out.member_offsets_.push_back(0);
  for (size_t c = 0; c < groups.size(); ++c) {
    out.representative_.push_back(groups[c].front());
    for (Symbol a : groups[c]) {
      out.class_of_[a] = static_cast<int32_t>(c);
      out.members_.push_back(a);
    }
    out.member_offsets_.push_back(out.members_.size());
  }
  assert(out.members_.size() == static_cast<size_t>(k));
  return out;
}

SymbolClassIndex SymbolClassIndex::Trivial(int alphabet_size) {
  assert(alphabet_size >= 1);
  SymbolClassIndex out;
  out.class_of_.resize(static_cast<size_t>(alphabet_size));
  out.representative_.resize(static_cast<size_t>(alphabet_size));
  out.members_.resize(static_cast<size_t>(alphabet_size));
  out.member_offsets_.resize(static_cast<size_t>(alphabet_size) + 1);
  for (int a = 0; a < alphabet_size; ++a) {
    out.class_of_[static_cast<size_t>(a)] = a;
    out.representative_[static_cast<size_t>(a)] = static_cast<Symbol>(a);
    out.members_[static_cast<size_t>(a)] = static_cast<Symbol>(a);
    out.member_offsets_[static_cast<size_t>(a)] = static_cast<size_t>(a);
  }
  out.member_offsets_[static_cast<size_t>(alphabet_size)] =
      static_cast<size_t>(alphabet_size);
  return out;
}

}  // namespace nfacount
