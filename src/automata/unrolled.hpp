// The unrolled automaton A_unroll of the paper (Fig. 1, line 1): n+1 layers of
// state copies q^ℓ with the original transitions running between adjacent
// layers. We materialize per-level reachable sets instead of copying states:
// L(q^ℓ) is nonempty iff q is reachable from the initial state in exactly ℓ
// steps, and the FPRAS only ever touches reachable copies.
//
// This module also provides the membership-oracle machinery: a stored sample
// carries the reachable-state set of its word, making every membership query
// the FPRAS performs a single bit probe (the amortization of §4.3's time
// analysis).

#ifndef NFACOUNT_AUTOMATA_UNROLLED_HPP_
#define NFACOUNT_AUTOMATA_UNROLLED_HPP_

#include <optional>
#include <vector>

#include "automata/nfa.hpp"
#include "util/status.hpp"

namespace nfacount {

/// A word together with the state set {q : word ∈ L(q^{|word|})}. The reach
/// set is computed once on insertion (O(|word|·|Δ|/64)) and answers all later
/// membership queries in O(1).
struct StoredSample {
  Word word;
  Bitset reach;
};

/// Level-indexed view of the unrolled automaton for a fixed length n.
class UnrolledNfa {
 public:
  /// Builds level reachability for lengths 0..n. The NFA must validate.
  UnrolledNfa(const Nfa* nfa, int n);

  const Nfa& nfa() const { return *nfa_; }
  int n() const { return n_; }

  /// States q with L(q^ℓ) nonempty.
  const Bitset& ReachableAt(int level) const { return reachable_[level]; }

  bool IsReachable(StateId q, int level) const {
    return reachable_[level].Test(q);
  }

  /// Predecessor expansion P^ℓ_b = (∪_{q∈P} Pred(q, b)) ∩ reachable(ℓ-1):
  /// the state set whose level-(ℓ-1) languages union to the b-suffix slice of
  /// L(P^ℓ). `level` is the level of P (must be >= 1).
  Bitset PredSet(const Bitset& states, Symbol symbol, int level) const;

  /// Some witness word in L(q^ℓ), or nullopt if L(q^ℓ) is empty. Used to pad
  /// sample sets (Algorithm 3, lines 27-30). Deterministic.
  std::optional<Word> WitnessWord(StateId q, int level) const;

  /// Builds a StoredSample for `word` (computes its reach set).
  StoredSample MakeSample(Word word) const;

  /// True iff word ∈ L(q^{|word|}); recomputes reachability (the
  /// non-amortized oracle used by the E9 ablation).
  bool MemberSlow(const Word& word, StateId q) const;

 private:
  const Nfa* nfa_;
  int n_;
  std::vector<Bitset> reachable_;  // [0..n]
};

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_UNROLLED_HPP_
