// The unrolled automaton A_unroll of the paper (Fig. 1, line 1): n+1 layers of
// state copies q^ℓ with the original transitions running between adjacent
// layers. We materialize per-level reachable sets instead of copying states:
// L(q^ℓ) is nonempty iff q is reachable from the initial state in exactly ℓ
// steps, and the FPRAS only ever touches reachable copies.
//
// Hot-path layout: the per-state adjacency of Nfa (vector-of-vector-of-vector,
// three pointer hops per row) is flattened at construction into CSR
// (compressed sparse row) arrays — contiguous `offsets`/`targets`/`symbols` —
// in both directions: forward CSR for membership/reach recomputation, reverse
// CSR for the predecessor expansions that dominate Algorithm 2's walk. When
// the automaton is small enough, each (state, symbol) row additionally carries
// its target set as a Bitset mask so one frontier-propagation step is a
// word-parallel OR of contiguous masks instead of a per-edge scatter.
//
// This module also provides the membership-oracle machinery: a stored sample
// carries the reachable-state set of its word, making every membership query
// the FPRAS performs a single bit probe (the amortization of §4.3's time
// analysis).

#ifndef NFACOUNT_AUTOMATA_UNROLLED_HPP_
#define NFACOUNT_AUTOMATA_UNROLLED_HPP_

#include <optional>
#include <vector>

#include "automata/nfa.hpp"
#include "automata/symbol_classes.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"

namespace nfacount {

/// A word together with the state set {q : word ∈ L(q^{|word|})}. The reach
/// set is computed once on insertion (O(|word|·|Δ|/64)) and answers all later
/// membership queries in O(1).
struct StoredSample {
  Word word;   ///< the sampled word
  Bitset reach;///< {q : word ∈ L(q^{|word|})}, the word's membership profile
};

/// Non-owning view of one sample inside a SampleBlock slab: the word's
/// symbols and its reach-profile words, both as raw spans. This is what the
/// AppUnion estimators consume on the hot path — no per-sample heap objects.
struct SampleRef {
  const Symbol* symbols;  ///< word, `length` symbols
  int length;             ///< word length (the sample's level ℓ)
  const uint64_t* profile;///< reach profile, `profile_words` words
  size_t profile_words;

  /// Bit q of the reach profile: word ∈ L(q^length)?
  bool ProfileTest(StateId q) const {
    return (profile[static_cast<size_t>(q) >> 6] >>
            (static_cast<size_t>(q) & 63)) & 1;
  }
  /// Materializes the word (allocates — for ablation paths and accessors).
  Word ToWord() const { return Word(symbols, symbols + length); }
};

/// AppUnionBatched customization point (see union_mc.hpp): a SampleRef's
/// membership profile is its raw word span.
inline const uint64_t* ProfileWordsData(const SampleRef& s) {
  return s.profile;
}
inline size_t ProfileWordsCount(const SampleRef& s) { return s.profile_words; }

/// Flat struct-of-arrays storage for one cell's sample set S(q^ℓ). All
/// samples of a cell share the word length ℓ, so both slabs are
/// fixed-stride: sample i's symbols live at [i·ℓ, (i+1)·ℓ) of `symbols` and
/// its reach profile at [i·w, (i+1)·w) of `profiles` — two allocations per
/// cell (amortized away by Reserve) instead of two per sample.
class SampleBlock {
 public:
  SampleBlock() = default;

  /// Empties the block and fixes the per-sample strides; keeps capacity.
  void Reset(int word_len, size_t profile_bits) {
    word_len_ = word_len;
    profile_words_ = (profile_bits + 63) / 64;
    count_ = 0;
    symbols_.clear();
    profiles_.clear();
  }

  /// Preallocates room for `samples` entries (one shot per cell).
  void Reserve(int64_t samples) {
    symbols_.reserve(static_cast<size_t>(samples) * word_len_);
    profiles_.reserve(static_cast<size_t>(samples) * profile_words_);
  }

  /// Appends one sample by copying `word_len` symbols and `profile_words`
  /// profile words (symbols may be null when word_len is 0).
  void Append(const Symbol* symbols, const uint64_t* profile) {
    if (word_len_ > 0) {
      symbols_.insert(symbols_.end(), symbols, symbols + word_len_);
    }
    profiles_.insert(profiles_.end(), profile, profile + profile_words_);
    ++count_;
  }

  /// Appends `times` copies of the same sample (Alg. 3 padding, level 0).
  void AppendRepeat(const Symbol* symbols, const uint64_t* profile,
                    int64_t times) {
    for (int64_t i = 0; i < times; ++i) Append(symbols, profile);
  }

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  int word_len() const { return word_len_; }
  size_t profile_words() const { return profile_words_; }

  SampleRef At(int64_t idx) const {
    assert(idx >= 0 && idx < count_);
    return SampleRef{
        word_len_ > 0 ? symbols_.data() + static_cast<size_t>(idx) * word_len_
                      : nullptr,
        word_len_,
        profiles_.data() + static_cast<size_t>(idx) * profile_words_,
        profile_words_};
  }

  /// Bytes currently reserved by the two slabs (for memory diagnostics).
  int64_t bytes_reserved() const {
    return static_cast<int64_t>(symbols_.capacity() * sizeof(Symbol) +
                                profiles_.capacity() * sizeof(uint64_t));
  }

  /// The raw symbol slab (count() × word_len() entries) — checkpoint
  /// serialization reads the block in its native flat form.
  const std::vector<Symbol>& symbols_slab() const { return symbols_; }
  /// The raw reach-profile slab (count() × profile_words() words).
  const std::vector<uint64_t>& profiles_slab() const { return profiles_; }

  /// Installs deserialized slab contents (checkpoint load): `symbols` must
  /// hold count·word_len entries and `profiles` count·⌈profile_bits/64⌉
  /// words. Returns InvalidArgument on any dimension mismatch, leaving the
  /// block empty at the new strides.
  Status Restore(int word_len, size_t profile_bits, int64_t count,
                 std::vector<Symbol> symbols, std::vector<uint64_t> profiles) {
    if (word_len < 0 || count < 0) {
      return Status::Invalid("SampleBlock::Restore: negative dimension");
    }
    Reset(word_len, profile_bits);
    if (symbols.size() != static_cast<size_t>(count) * word_len_ ||
        profiles.size() != static_cast<size_t>(count) * profile_words_) {
      return Status::Invalid("SampleBlock::Restore: slab size mismatch");
    }
    symbols_ = std::move(symbols);
    profiles_ = std::move(profiles);
    count_ = count;
    return Status::Ok();
  }

 private:
  int word_len_ = 0;
  size_t profile_words_ = 0;
  int64_t count_ = 0;
  std::vector<Symbol> symbols_;
  std::vector<uint64_t> profiles_;
};

/// Flat CSR (compressed sparse row) transition layout. Rows are keyed by
/// (state, symbol): row q·|Σ|+a spans targets[offsets[row] .. offsets[row+1]),
/// and symbols[e] labels edge e (redundant with the row key, but it lets
/// whole-state walks iterate one contiguous span of |Σ| adjacent rows without
/// recomputing row boundaries). Construction cost is one pass over Δ; the
/// arrays never change afterwards.
///
/// When num_states·|Σ|·num_states bits fit kMaskBitBudget, `row_masks`
/// additionally stores each row's target set as a Bitset, enabling
/// word-parallel frontier propagation (64 states per OR) in Step/PredSet.
struct CsrTransitions {
  /// Mask materialization budget in bits (32 MiB): above this the per-row
  /// Bitset masks are skipped and stepping falls back to span scatter.
  static constexpr size_t kMaskBitBudget = size_t{1} << 28;

  int num_states = 0;            ///< number of automaton states m
  int alphabet_size = 0;         ///< alphabet size |Σ|
  std::vector<int32_t> offsets;  ///< m·|Σ|+1 row starts into targets/symbols
  std::vector<StateId> targets;  ///< |Δ| edge endpoints, contiguous
  std::vector<Symbol> symbols;   ///< |Δ| edge labels, parallel to targets
  std::vector<Bitset> row_masks; ///< per-row target Bitsets (empty if over budget)

  /// CSR over the successor relation: row (q, a) lists {r : (q,a,r) ∈ Δ}.
  static CsrTransitions FromSuccessors(const Nfa& nfa);
  /// CSR over the predecessor relation: row (q, a) lists {p : (p,a,q) ∈ Δ}.
  static CsrTransitions FromPredecessors(const Nfa& nfa);

  /// Index of row (q, a).
  size_t Row(StateId q, Symbol a) const {
    return static_cast<size_t>(q) * alphabet_size + a;
  }
  /// Begin/end of row (q, a) in `targets`.
  const StateId* RowBegin(StateId q, Symbol a) const {
    return targets.data() + offsets[Row(q, a)];
  }
  const StateId* RowEnd(StateId q, Symbol a) const {
    return targets.data() + offsets[Row(q, a) + 1];
  }
  /// True when per-row Bitset masks were materialized.
  bool has_masks() const { return !row_masks.empty(); }

  /// One frontier step: out = ∪_{q ∈ from} row(q, symbol), word-parallel via
  /// masks when available, span scatter otherwise. `out` must be sized
  /// num_states; it is cleared first.
  void StepInto(const Bitset& from, Symbol symbol, Bitset* out) const;
};

/// Level-indexed view of the unrolled automaton for a fixed length n.
///
/// Thread safety: construction does all the work (CSR arrays, masks, level
/// reachability); every const method afterwards only reads that immutable
/// state, so concurrent calls from the level-sweep workers are safe provided
/// each thread passes its own output buffers to the *Into variants (the
/// engine's per-worker Bitset scratch).
class UnrolledNfa {
 public:
  /// Builds level reachability for lengths 0..n. The NFA must validate.
  /// With `symbol_classes` on (the default), the symbol partition
  /// (automata/symbol_classes.hpp) is computed and the construction-time
  /// symbol loops run per class representative; off installs the trivial
  /// partition so downstream per-class loops degenerate to per-symbol.
  /// Either setting yields bit-identical reachability and witnesses.
  UnrolledNfa(const Nfa* nfa, int n, bool symbol_classes = true);

  const Nfa& nfa() const { return *nfa_; }
  int n() const { return n_; }

  /// The alphabet's symbol partition (trivial when disabled at
  /// construction).
  const SymbolClassIndex& symbol_classes() const { return classes_; }

  /// Forward CSR (successor rows) — membership recomputation, reach profiles.
  const CsrTransitions& forward_csr() const { return forward_; }
  /// Reverse CSR (predecessor rows) — Algorithm 2's backward walk.
  const CsrTransitions& reverse_csr() const { return reverse_; }

  /// States q with L(q^ℓ) nonempty.
  const Bitset& ReachableAt(int level) const { return reachable_[level]; }

  bool IsReachable(StateId q, int level) const {
    return reachable_[level].Test(q);
  }

  /// Predecessor expansion P^ℓ_b = (∪_{q∈P} Pred(q, b)) ∩ reachable(ℓ-1):
  /// the state set whose level-(ℓ-1) languages union to the b-suffix slice of
  /// L(P^ℓ). `level` is the level of P (must be >= 1).
  Bitset PredSet(const Bitset& states, Symbol symbol, int level) const;

  /// Allocation-free PredSet for the sampling hot loop: writes into `out`
  /// (must be sized num_states; cleared first). CSR-backed.
  void PredSetInto(const Bitset& states, Symbol symbol, int level,
                   Bitset* out) const;

  /// PredSetInto over raw word spans — the FrontierPlane row form used by
  /// the batched sampling plane. `from` and `out` are (num_states+63)/64
  /// words (distinct spans); ops run through the given kernel table, and the
  /// resulting bits are identical to PredSetInto for every table.
  void PredSetWordsInto(const uint64_t* from, Symbol symbol, int level,
                        uint64_t* out, const simd::BitsetKernels& kern) const;

  /// One plain successor step over raw word spans (the fused reach-profile
  /// pass of the batched plane). Bit-identical to SuccSetInto.
  void SuccSetWordsInto(const uint64_t* from, Symbol symbol, uint64_t* out,
                        const simd::BitsetKernels& kern) const;

  /// PredSet computed on the legacy pointer-walk adjacency (Nfa::StepBack).
  /// Kept as the E11 old-layout baseline and the equivalence-test oracle.
  Bitset PredSetLegacy(const Bitset& states, Symbol symbol, int level) const;

  /// One forward step clipped to nothing (plain successor image), CSR-backed.
  void SuccSetInto(const Bitset& states, Symbol symbol, Bitset* out) const;

  /// The reach profile {q : word ∈ L(q^{|word|})} via forward-CSR stepping.
  Bitset ReachProfile(const Word& word) const;

  /// Some witness word in L(q^ℓ), or nullopt if L(q^ℓ) is empty. Used to pad
  /// sample sets (Algorithm 3, lines 27-30). Deterministic.
  std::optional<Word> WitnessWord(StateId q, int level) const;

  /// Builds a StoredSample for `word` (computes its reach set on the
  /// forward CSR).
  StoredSample MakeSample(Word word) const;

  /// MakeSample on the legacy pointer-walk adjacency (Nfa::Reach). Same
  /// profile, legacy cost — the E11 old-layout baseline for sample storage.
  StoredSample MakeSampleLegacy(Word word) const;

  /// True iff word ∈ L(q^{|word|}); recomputes reachability (the
  /// non-amortized oracle used by the E9 ablation).
  bool MemberSlow(const Word& word, StateId q) const;

 private:
  const Nfa* nfa_;
  int n_;
  SymbolClassIndex classes_;
  CsrTransitions forward_;
  CsrTransitions reverse_;
  std::vector<Bitset> reachable_;  // [0..n]
};

}  // namespace nfacount

#endif  // NFACOUNT_AUTOMATA_UNROLLED_HPP_
