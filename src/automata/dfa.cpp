#include "automata/dfa.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <unordered_map>

namespace nfacount {

Dfa::Dfa(int num_states, int alphabet_size)
    : num_states_(num_states),
      alphabet_size_(alphabet_size),
      accepting_(num_states),
      next_(static_cast<size_t>(num_states) * alphabet_size, -1) {
  assert(num_states >= 1);
  assert(alphabet_size >= 1 && alphabet_size <= kMaxAlphabetSize);
}

void Dfa::SetTransition(StateId from, Symbol symbol, StateId to) {
  assert(from >= 0 && from < num_states_);
  assert(to >= 0 && to < num_states_);
  assert(symbol < alphabet_size_);
  next_[static_cast<size_t>(from) * alphabet_size_ + symbol] = to;
}

bool Dfa::Accepts(const Word& word) const {
  StateId q = initial_;
  for (Symbol s : word) q = Next(q, s);
  return accepting_.Test(q);
}

Status Dfa::Validate() const {
  if (initial_ < 0 || initial_ >= num_states_) {
    return Status::Invalid("DFA initial state unset");
  }
  for (StateId t : next_) {
    if (t < 0) return Status::Invalid("DFA has unassigned transitions");
  }
  return Status::Ok();
}

BigUint Dfa::CountWordsOfLength(int n) const {
  return CountWordsUpToLength(n).back();
}

std::vector<BigUint> Dfa::CountWordsUpToLength(int n) const {
  assert(initial_ >= 0);
  assert(n >= 0);
  // counts[q] = number of words of the current length leading initial -> q.
  std::vector<BigUint> counts(num_states_);
  counts[initial_] = BigUint(1);
  std::vector<BigUint> out;
  out.reserve(n + 1);

  auto accepted_total = [&]() {
    BigUint total;
    accepting_.ForEachSet([&](int q) { total += counts[q]; });
    return total;
  };

  out.push_back(accepted_total());
  for (int step = 1; step <= n; ++step) {
    std::vector<BigUint> next_counts(num_states_);
    for (StateId q = 0; q < num_states_; ++q) {
      if (counts[q].IsZero()) continue;
      for (int a = 0; a < alphabet_size_; ++a) {
        next_counts[Next(q, static_cast<Symbol>(a))] += counts[q];
      }
    }
    counts = std::move(next_counts);
    out.push_back(accepted_total());
  }
  return out;
}

Nfa Dfa::ToNfa() const {
  Nfa out(alphabet_size_);
  out.AddStates(num_states_);
  out.SetInitial(initial_);
  accepting_.ForEachSet([&](int q) { out.AddAccepting(q); });
  for (StateId q = 0; q < num_states_; ++q) {
    for (int a = 0; a < alphabet_size_; ++a) {
      out.AddTransition(q, static_cast<Symbol>(a), Next(q, static_cast<Symbol>(a)));
    }
  }
  return out;
}

Result<Dfa> Determinize(const Nfa& nfa, int max_states) {
  NFA_RETURN_NOT_OK(nfa.Validate());
  const int m = nfa.num_states();
  const int k = nfa.alphabet_size();

  std::unordered_map<Bitset, StateId, BitsetHash> ids;
  std::vector<Bitset> subsets;
  std::queue<StateId> frontier;

  auto intern = [&](const Bitset& set) -> StateId {
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    StateId id = static_cast<StateId>(subsets.size());
    ids.emplace(set, id);
    subsets.push_back(set);
    frontier.push(id);
    return id;
  };

  Bitset start(m);
  start.Set(nfa.initial());
  intern(start);

  // First pass: explore subsets; transitions recorded as subset ids.
  std::vector<std::vector<StateId>> trans;
  while (!frontier.empty()) {
    StateId id = frontier.front();
    frontier.pop();
    if (static_cast<int>(subsets.size()) > max_states) {
      return Status::ResourceExhausted(
          "determinization exceeded " + std::to_string(max_states) + " states");
    }
    Bitset cur = subsets[id];  // copy: intern() may reallocate subsets
    std::vector<StateId> row(k);
    for (int a = 0; a < k; ++a) {
      row[a] = intern(nfa.Step(cur, static_cast<Symbol>(a)));
    }
    if (static_cast<size_t>(id) >= trans.size()) trans.resize(id + 1);
    trans[id] = std::move(row);
  }
  if (static_cast<int>(subsets.size()) > max_states) {
    return Status::ResourceExhausted(
        "determinization exceeded " + std::to_string(max_states) + " states");
  }

  Dfa out(static_cast<int>(subsets.size()), k);
  out.SetInitial(0);
  for (StateId q = 0; q < out.num_states(); ++q) {
    if (subsets[q].Intersects(nfa.accepting())) out.AddAccepting(q);
    for (int a = 0; a < k; ++a) {
      out.SetTransition(q, static_cast<Symbol>(a), trans[q][a]);
    }
  }
  return out;
}

Dfa Minimize(const Dfa& dfa) {
  assert(dfa.Validate().ok());
  const int m = dfa.num_states();
  const int k = dfa.alphabet_size();

  // Moore's algorithm: refine the accepting/non-accepting partition until
  // stable. Class signature = (own class, class of each successor).
  std::vector<int> cls(m);
  for (StateId q = 0; q < m; ++q) cls[q] = dfa.accepting().Test(q) ? 1 : 0;

  int num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> sig_to_class;
    std::vector<int> next_cls(m);
    for (StateId q = 0; q < m; ++q) {
      std::vector<int> sig;
      sig.reserve(k + 1);
      sig.push_back(cls[q]);
      for (int a = 0; a < k; ++a) {
        sig.push_back(cls[dfa.Next(q, static_cast<Symbol>(a))]);
      }
      auto [it, inserted] =
          sig_to_class.emplace(std::move(sig), static_cast<int>(sig_to_class.size()));
      (void)inserted;
      next_cls[q] = it->second;
    }
    int new_num = static_cast<int>(sig_to_class.size());
    cls = std::move(next_cls);
    if (new_num == num_classes) break;
    num_classes = new_num;
  }

  Dfa out(num_classes, k);
  out.SetInitial(cls[dfa.initial()]);
  for (StateId q = 0; q < m; ++q) {
    if (dfa.accepting().Test(q)) out.AddAccepting(cls[q]);
    for (int a = 0; a < k; ++a) {
      out.SetTransition(cls[q], static_cast<Symbol>(a),
                        cls[dfa.Next(q, static_cast<Symbol>(a))]);
    }
  }
  return out;
}

Dfa Complement(const Dfa& dfa) {
  assert(dfa.Validate().ok());
  Dfa flipped(dfa.num_states(), dfa.alphabet_size());
  flipped.SetInitial(dfa.initial());
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    if (!dfa.accepting().Test(q)) flipped.AddAccepting(q);
    for (int a = 0; a < dfa.alphabet_size(); ++a) {
      flipped.SetTransition(q, static_cast<Symbol>(a), dfa.Next(q, static_cast<Symbol>(a)));
    }
  }
  return flipped;
}

Result<bool> LanguageEquivalent(const Nfa& a, const Nfa& b, int max_states) {
  Dfa da(1, 1), db(1, 1);
  NFA_ASSIGN_OR_RETURN(da, Determinize(a, max_states));
  NFA_ASSIGN_OR_RETURN(db, Determinize(b, max_states));
  if (da.alphabet_size() != db.alphabet_size()) {
    return Status::Invalid("alphabet size mismatch");
  }
  // BFS over the product, looking for a distinguishing pair.
  std::queue<std::pair<StateId, StateId>> frontier;
  std::map<std::pair<StateId, StateId>, bool> seen;
  frontier.emplace(da.initial(), db.initial());
  seen[{da.initial(), db.initial()}] = true;
  while (!frontier.empty()) {
    auto [qa, qb] = frontier.front();
    frontier.pop();
    if (da.accepting().Test(qa) != db.accepting().Test(qb)) return false;
    for (int s = 0; s < da.alphabet_size(); ++s) {
      auto next = std::make_pair(da.Next(qa, static_cast<Symbol>(s)),
                                 db.Next(qb, static_cast<Symbol>(s)));
      if (!seen.count(next)) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return true;
}

}  // namespace nfacount
