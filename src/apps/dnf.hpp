// DNF model counting and its linear encoding into #NFA.
//
// This is the bridge between probabilistic query evaluation (apps/pqe.*) and
// the counting core: the lineage of a self-join-free query is a monotone DNF
// whose model count, divided by 2^{#vars}, is the query probability. A DNF
// over V variables with k clauses becomes an NFA with k·V + 1 states reading
// the assignment as a V-bit word — the reduction is linear in the lineage
// size, matching the paper's point that reductions to #NFA are cheap and the
// counting algorithm is the bottleneck.
//
// Also hosts the classic Karp-Luby DNF counter [12] (fresh-draw union
// estimation), which doubles as a test oracle for AppUnion.

#ifndef NFACOUNT_APPS_DNF_HPP_
#define NFACOUNT_APPS_DNF_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace nfacount {

/// One conjunctive clause: all `positive` vars true AND all `negative` vars
/// false. Variables are indices in [0, num_vars).
struct DnfClause {
  std::vector<int> positive;
  std::vector<int> negative;
};

/// A DNF formula (disjunction of conjunctive clauses).
class Dnf {
 public:
  explicit Dnf(int num_vars);

  /// Adds a clause; rejects out-of-range or contradictory (x ∧ ¬x) literals.
  Status AddClause(DnfClause clause);

  int num_vars() const { return num_vars_; }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const DnfClause& clause(int i) const { return clauses_[i]; }

  /// Evaluates under `assignment` (bit i = variable i).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// True if `assignment` satisfies clause `i`.
  bool SatisfiesClause(int i, const std::vector<bool>& assignment) const;

  /// Number of assignments satisfying clause i: 2^(V − |literals|).
  BigUint ClauseModelCount(int i) const;

  std::string ToString() const;

 private:
  int num_vars_;
  std::vector<DnfClause> clauses_;
};

/// Exact model count by enumeration over 2^V assignments. Fails when
/// V > max_vars.
Result<BigUint> ExactDnfCount(const Dnf& dnf, int max_vars = 26);

/// Classic Karp-Luby (ε,δ) DNF model counter with fresh draws.
struct DnfCountResult {
  double estimate = 0.0;
  int64_t trials = 0;
};
Result<DnfCountResult> KarpLubyDnfCount(const Dnf& dnf, double eps, double delta,
                                        Rng& rng);

/// Linear DNF → NFA encoding: the NFA accepts exactly the length-V words that
/// are satisfying assignments (bit i of the word = variable i), so
/// |L(A_V)| = #models. States: one shared start + one chain of V states per
/// clause; accepting = chain ends.
Result<Nfa> DnfToNfa(const Dnf& dnf);

}  // namespace nfacount

#endif  // NFACOUNT_APPS_DNF_HPP_
