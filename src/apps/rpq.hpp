// Regular path queries (RPQ) over labeled graph databases — the second
// application in the paper's introduction (§1, "Counting Answers to Regular
// Path Queries").
//
// A query (u, R, v, n) asks about paths from node u to node v of length
// (exactly or at most) n whose label word matches the regular expression R.
// Following the paper, the answer set we count/sample is the set of *label
// words* realizable by such a path: the product of the database automaton
// (nodes as states, u initial, v accepting) with the regex NFA is again an
// NFA, linear in |DB|·|R|, and counting its length-n slice is exactly #NFA.

#ifndef NFACOUNT_APPS_RPQ_HPP_
#define NFACOUNT_APPS_RPQ_HPP_

#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "fpras/estimator.hpp"
#include "fpras/sampler.hpp"
#include "util/status.hpp"

namespace nfacount {

/// Edge-labeled directed multigraph database. Labels are symbols of a fixed
/// alphabet (database "relation names" / edge predicates).
class GraphDb {
 public:
  GraphDb(int num_nodes, int num_labels);

  Status AddEdge(int src, Symbol label, int dst);

  int num_nodes() const { return num_nodes_; }
  int num_labels() const { return num_labels_; }
  int64_t num_edges() const { return num_edges_; }

  /// Targets reachable from `src` via one `label` edge.
  const std::vector<int>& Neighbors(int src, Symbol label) const;

  /// Database as an NFA: states = nodes, initial = src, accepting = {dst}.
  Result<Nfa> ToNfa(int src, int dst) const;

 private:
  int num_nodes_;
  int num_labels_;
  int64_t num_edges_ = 0;
  std::vector<std::vector<std::vector<int>>> adj_;  // [node][label] -> targets
};

/// Product automaton DB(u→v) × NFA(R): its length-n language is exactly the
/// set of answer words. Returned trimmed.
Result<Nfa> BuildRpqProduct(const GraphDb& db, int src, int dst,
                            const std::string& regex);

/// Approximate number of distinct answer words of length exactly n.
Result<CountEstimate> CountRpqAnswers(const GraphDb& db, int src, int dst,
                                      const std::string& regex, int n,
                                      const CountOptions& options = {});

/// Approximate number of distinct answer words of length at most n: per-level
/// counts with confidence budget split δ/(n+1); estimates are summed.
Result<double> CountRpqAnswersUpTo(const GraphDb& db, int src, int dst,
                                   const std::string& regex, int n,
                                   const CountOptions& options = {});

/// Draws `count` almost-uniform answer words of length n.
Result<std::vector<Word>> SampleRpqAnswers(const GraphDb& db, int src, int dst,
                                           const std::string& regex, int n,
                                           int64_t count,
                                           const SamplerOptions& options = {});

/// All node paths src → dst realizing `word` in the database (up to `limit`).
/// A sampled answer word plus one witness path is a complete query answer.
Result<std::vector<std::vector<int>>> WitnessPaths(const GraphDb& db, int src,
                                                   int dst, const Word& word,
                                                   int64_t limit = 64);

}  // namespace nfacount

#endif  // NFACOUNT_APPS_RPQ_HPP_
