#include "apps/pqe.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "automata/reduce.hpp"

namespace nfacount {

ProbGraphDb::ProbGraphDb(int num_nodes, int num_relations)
    : num_nodes_(num_nodes), num_relations_(num_relations) {
  assert(num_nodes >= 1 && num_relations >= 1);
  by_src_.assign(num_relations,
                 std::vector<std::vector<int>>(static_cast<size_t>(num_nodes)));
}

Result<int> ProbGraphDb::AddFact(int relation, int src, int dst) {
  return AddFactWithProb(relation, src, dst, DyadicProb::Half());
}

Result<int> ProbGraphDb::AddFactWithProb(int relation, int src, int dst,
                                         DyadicProb prob) {
  if (relation < 0 || relation >= num_relations_) {
    return Status::Invalid("relation out of range");
  }
  if (src < 0 || src >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
    return Status::Invalid("node out of range");
  }
  if (prob.bits < 1 || prob.bits > 20) {
    return Status::Invalid("probability denominator bits must be in [1, 20]");
  }
  if (prob.numerator < 1 || prob.numerator > (1u << prob.bits)) {
    return Status::Invalid("probability numerator out of (0, 1]");
  }
  int id = static_cast<int>(facts_.size());
  facts_.push_back(Fact{relation, src, dst, prob});
  by_src_[relation][src].push_back(id);
  return id;
}

bool ProbGraphDb::HasNonUniformProbs() const {
  for (const Fact& f : facts_) {
    if (f.prob.bits != 1 || f.prob.numerator != 1) return true;
  }
  return false;
}

const std::vector<int>& ProbGraphDb::FactsFrom(int relation, int src) const {
  return by_src_[relation][src];
}

Status ValidatePathQuery(const ProbGraphDb& db, const PathQuery& query) {
  if (query.relations.empty()) return Status::Invalid("empty path query");
  std::set<int> seen;
  for (int r : query.relations) {
    if (r < 0 || r >= db.num_relations()) {
      return Status::Invalid("query relation out of range");
    }
    if (!seen.insert(r).second) {
      return Status::Invalid("query is not self-join-free (repeated relation)");
    }
  }
  return Status::Ok();
}

Result<Dnf> LineageDnf(const ProbGraphDb& db, const PathQuery& query,
                       int64_t max_clauses) {
  NFA_RETURN_NOT_OK(ValidatePathQuery(db, query));
  const int k = static_cast<int>(query.relations.size());
  Dnf dnf(db.num_facts());

  // Enumerate homomorphisms: node sequences a0..ak with matching facts.
  // Clauses are edge-id sets; dedup (two paths may reuse the same facts in
  // different orders only if ids coincide — set semantics).
  std::set<std::vector<int>> clauses;
  std::vector<int> path_edges;

  // DFS over positions; start nodes are all nodes.
  struct Frame {
    int node;
    size_t next_fact_idx;
  };
  for (int start = 0; start < db.num_nodes(); ++start) {
    std::vector<Frame> stack;
    stack.push_back(Frame{start, 0});
    path_edges.clear();
    while (!stack.empty()) {
      Frame& top = stack.back();
      const int depth = static_cast<int>(stack.size()) - 1;
      if (depth == k) {
        std::vector<int> clause = path_edges;
        std::sort(clause.begin(), clause.end());
        clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
        clauses.insert(std::move(clause));
        if (static_cast<int64_t>(clauses.size()) > max_clauses) {
          return Status::ResourceExhausted("lineage exceeds clause budget");
        }
        stack.pop_back();
        if (!path_edges.empty()) path_edges.pop_back();
        continue;
      }
      const auto& facts = db.FactsFrom(query.relations[depth], top.node);
      if (top.next_fact_idx >= facts.size()) {
        stack.pop_back();
        if (!path_edges.empty()) path_edges.pop_back();
        continue;
      }
      int fact_id = facts[top.next_fact_idx++];
      path_edges.push_back(fact_id);
      stack.push_back(Frame{db.fact(fact_id).dst, 0});
    }
  }

  for (const auto& clause_vars : clauses) {
    DnfClause clause;
    clause.positive = clause_vars;
    NFA_RETURN_NOT_OK(dnf.AddClause(std::move(clause)));
  }
  return dnf;
}

Result<double> ExactPqe(const ProbGraphDb& db, const PathQuery& query,
                        int max_facts) {
  return ExactPqeWeighted(db, query, max_facts);
}

Result<PqeResult> ApproxPqe(const ProbGraphDb& db, const PathQuery& query,
                            const CountOptions& options) {
  if (db.HasNonUniformProbs()) {
    return Status::Invalid(
        "database has non-1/2 probabilities; use ApproxPqeWeighted");
  }
  Dnf dnf(0);
  NFA_ASSIGN_OR_RETURN(dnf, LineageDnf(db, query));
  PqeResult out;
  out.lineage_clauses = dnf.num_clauses();
  if (dnf.num_clauses() == 0 || db.num_facts() == 0) {
    out.probability = 0.0;
    return out;
  }
  Nfa nfa(2);
  NFA_ASSIGN_OR_RETURN(nfa, DnfToNfa(dnf));
  out.nfa_states = nfa.num_states();
  // The clause chains share suffix structure: quotient before counting
  // (language-preserving, and FPRAS cost grows with m).
  ReductionResult reduced = ReduceNfa(nfa);
  out.reduced_states = reduced.reduced_states;
  NFA_ASSIGN_OR_RETURN(out.count,
                       ApproxCount(reduced.nfa, dnf.num_vars(), options));
  out.probability = out.count.estimate / std::pow(2.0, dnf.num_vars());
  return out;
}

// ---------------------------------------------------------------------------
// Dyadic probabilities via threshold gadgets
// ---------------------------------------------------------------------------

namespace {

/// Appends, onto `cur`, a gadget reading one b-bit block. When
/// `threshold` < 0 the block is unconstrained (any bits); otherwise only
/// block values strictly below `threshold` continue (the classic MSB-first
/// comparator: a "tight" rail that tracks equality with the threshold's
/// prefix and a "free" rail once strictly below). Returns the continuation
/// state after the block.
StateId AppendBlockGadget(Nfa& nfa, StateId cur, int bits, int64_t threshold) {
  if (threshold < 0 || threshold >= (int64_t{1} << bits)) {
    // Unconstrained block (or threshold 2^b: every value passes).
    for (int j = 0; j < bits; ++j) {
      StateId next = nfa.AddState();
      nfa.AddTransition(cur, Symbol{0}, next);
      nfa.AddTransition(cur, Symbol{1}, next);
      cur = next;
    }
    return cur;
  }
  StateId tight = cur;  // "equal to the threshold's prefix so far"
  StateId free = -1;    // "already strictly below"
  for (int j = 0; j < bits; ++j) {
    const int cbit = static_cast<int>((threshold >> (bits - 1 - j)) & 1);
    const bool last = (j == bits - 1);
    StateId next_free = -1;
    if (free >= 0 || (tight >= 0 && cbit == 1)) {
      next_free = nfa.AddState();
    }
    StateId next_tight = -1;
    if (!last && tight >= 0) {
      next_tight = nfa.AddState();
    }
    if (free >= 0) {
      nfa.AddTransition(free, Symbol{0}, next_free);
      nfa.AddTransition(free, Symbol{1}, next_free);
    }
    if (tight >= 0) {
      if (cbit == 1) {
        nfa.AddTransition(tight, Symbol{0}, next_free);
        if (next_tight >= 0) nfa.AddTransition(tight, Symbol{1}, next_tight);
        // Reading 1 on the last position would mean "equal": rejected.
      } else {
        if (next_tight >= 0) nfa.AddTransition(tight, Symbol{0}, next_tight);
        // Reading 1 exceeds the threshold: rejected (no edge).
      }
    }
    tight = next_tight;
    free = next_free;
  }
  // threshold >= 1 guarantees the free rail exists by the end.
  assert(free >= 0);
  return free;
}

}  // namespace

Result<WeightedPqeInstance> BuildWeightedPqeNfa(const ProbGraphDb& db,
                                                const PathQuery& query,
                                                int64_t max_clauses) {
  Dnf dnf(0);
  NFA_ASSIGN_OR_RETURN(dnf, LineageDnf(db, query, max_clauses));

  WeightedPqeInstance out;
  out.clauses = dnf.num_clauses();
  for (int i = 0; i < db.num_facts(); ++i) {
    out.word_length += db.fact(i).prob.bits;
  }
  if (out.clauses == 0 || out.word_length == 0) {
    return Status::NotFound("query has no homomorphism (probability 0)");
  }

  Nfa nfa(2);
  StateId start = nfa.AddState();
  nfa.SetInitial(start);
  for (int c = 0; c < dnf.num_clauses(); ++c) {
    const DnfClause& clause = dnf.clause(c);
    StateId cur = start;
    for (int fact_id = 0; fact_id < db.num_facts(); ++fact_id) {
      const ProbGraphDb::Fact& fact = db.fact(fact_id);
      const bool constrained =
          std::binary_search(clause.positive.begin(), clause.positive.end(),
                             fact_id) &&
          fact.prob.numerator < (1u << fact.prob.bits);
      cur = AppendBlockGadget(nfa, cur, fact.prob.bits,
                              constrained ? fact.prob.numerator : -1);
    }
    nfa.AddAccepting(cur);
  }
  out.nfa = std::move(nfa);
  return out;
}

Result<double> ExactPqeWeighted(const ProbGraphDb& db, const PathQuery& query,
                                int max_facts) {
  Dnf dnf(0);
  NFA_ASSIGN_OR_RETURN(dnf, LineageDnf(db, query));
  const int f = db.num_facts();
  if (dnf.num_clauses() == 0 || f == 0) return 0.0;
  if (f > max_facts) {
    return Status::ResourceExhausted("exact weighted PQE over " +
                                     std::to_string(f) + " facts");
  }
  double total = 0.0;
  std::vector<bool> world(f);
  for (uint64_t mask = 0; mask < (uint64_t{1} << f); ++mask) {
    double world_prob = 1.0;
    for (int i = 0; i < f; ++i) {
      world[i] = (mask >> i) & 1;
      const double p = db.fact(i).prob.Value();
      world_prob *= world[i] ? p : (1.0 - p);
    }
    if (world_prob > 0.0 && dnf.Evaluate(world)) total += world_prob;
  }
  return total;
}

Result<PqeResult> ApproxPqeWeighted(const ProbGraphDb& db,
                                    const PathQuery& query,
                                    const CountOptions& options) {
  PqeResult out;
  Result<WeightedPqeInstance> instance = BuildWeightedPqeNfa(db, query);
  if (!instance.ok()) {
    if (instance.status().code() == StatusCode::kNotFound) {
      out.probability = 0.0;  // no homomorphism
      return out;
    }
    return instance.status();
  }
  out.lineage_clauses = instance->clauses;
  out.nfa_states = instance->nfa.num_states();
  ReductionResult reduced = ReduceNfa(instance->nfa);
  out.reduced_states = reduced.reduced_states;
  NFA_ASSIGN_OR_RETURN(
      out.count, ApproxCount(reduced.nfa, instance->word_length, options));
  out.probability =
      out.count.estimate / std::pow(2.0, instance->word_length);
  return out;
}

}  // namespace nfacount
