#include "apps/rpq.hpp"

#include <cassert>

#include "automata/regex.hpp"

namespace nfacount {

GraphDb::GraphDb(int num_nodes, int num_labels)
    : num_nodes_(num_nodes), num_labels_(num_labels) {
  assert(num_nodes >= 1);
  assert(num_labels >= 1 && num_labels <= kMaxAlphabetSize);
  adj_.assign(num_nodes,
              std::vector<std::vector<int>>(static_cast<size_t>(num_labels)));
}

Status GraphDb::AddEdge(int src, Symbol label, int dst) {
  if (src < 0 || src >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
    return Status::Invalid("node out of range");
  }
  if (label >= num_labels_) return Status::Invalid("label out of range");
  adj_[src][label].push_back(dst);
  ++num_edges_;
  return Status::Ok();
}

const std::vector<int>& GraphDb::Neighbors(int src, Symbol label) const {
  return adj_[src][label];
}

Result<Nfa> GraphDb::ToNfa(int src, int dst) const {
  if (src < 0 || src >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
    return Status::Invalid("query node out of range");
  }
  Nfa out(num_labels_);
  out.AddStates(num_nodes_);
  out.SetInitial(src);
  out.AddAccepting(dst);
  for (int u = 0; u < num_nodes_; ++u) {
    for (int l = 0; l < num_labels_; ++l) {
      for (int v : adj_[u][l]) {
        out.AddTransition(u, static_cast<Symbol>(l), v);
      }
    }
  }
  return out;
}

Result<Nfa> BuildRpqProduct(const GraphDb& db, int src, int dst,
                            const std::string& regex) {
  Nfa db_nfa(1);
  NFA_ASSIGN_OR_RETURN(db_nfa, db.ToNfa(src, dst));
  Nfa regex_nfa(1);
  NFA_ASSIGN_OR_RETURN(regex_nfa, CompileRegex(regex, db.num_labels()));
  return Intersect(db_nfa, regex_nfa).Trimmed();
}

Result<CountEstimate> CountRpqAnswers(const GraphDb& db, int src, int dst,
                                      const std::string& regex, int n,
                                      const CountOptions& options) {
  Nfa product(1);
  NFA_ASSIGN_OR_RETURN(product, BuildRpqProduct(db, src, dst, regex));
  return ApproxCount(product, n, options);
}

Result<double> CountRpqAnswersUpTo(const GraphDb& db, int src, int dst,
                                   const std::string& regex, int n,
                                   const CountOptions& options) {
  Nfa product(1);
  NFA_ASSIGN_OR_RETURN(product, BuildRpqProduct(db, src, dst, regex));
  // One FPRAS run serves every length (the DP computes all slices); split
  // the confidence budget across the n+1 per-length union estimates.
  CountOptions split = options;
  split.delta = options.delta / static_cast<double>(n + 1);
  std::vector<double> per_length;
  NFA_ASSIGN_OR_RETURN(per_length, ApproxCountAllLengths(product, n, split));
  double total = 0.0;
  for (double est : per_length) total += est;
  return total;
}

Result<std::vector<Word>> SampleRpqAnswers(const GraphDb& db, int src, int dst,
                                           const std::string& regex, int n,
                                           int64_t count,
                                           const SamplerOptions& options) {
  Nfa product(1);
  NFA_ASSIGN_OR_RETURN(product, BuildRpqProduct(db, src, dst, regex));
  Result<WordSampler> sampler = WordSampler::Build(product, n, options);
  if (!sampler.ok()) return sampler.status();
  return sampler.value().SampleMany(count);
}

Result<std::vector<std::vector<int>>> WitnessPaths(const GraphDb& db, int src,
                                                   int dst, const Word& word,
                                                   int64_t limit) {
  if (src < 0 || src >= db.num_nodes() || dst < 0 || dst >= db.num_nodes()) {
    return Status::Invalid("query node out of range");
  }
  std::vector<std::vector<int>> out;
  std::vector<int> path = {src};
  // DFS over the labeled word.
  struct Frame {
    size_t next_idx = 0;
  };
  std::vector<Frame> stack(1);
  while (!stack.empty()) {
    const size_t depth = stack.size() - 1;
    if (depth == word.size()) {
      if (path.back() == dst) {
        out.push_back(path);
        if (static_cast<int64_t>(out.size()) >= limit) return out;
      }
      stack.pop_back();
      if (!stack.empty()) path.pop_back();
      continue;
    }
    const auto& nbrs = db.Neighbors(path.back(), word[depth]);
    Frame& top = stack.back();
    if (top.next_idx >= nbrs.size()) {
      stack.pop_back();
      if (!stack.empty()) path.pop_back();
      continue;
    }
    int next = nbrs[top.next_idx++];
    path.push_back(next);
    stack.emplace_back();
  }
  return out;
}

}  // namespace nfacount
