// Probabilistic query evaluation (PQE) for self-join-free path queries over
// tuple-independent graph databases — the first application the paper's
// introduction motivates (via van Bremen & Meel, PODS'23).
//
// Pipeline:  (probabilistic DB, path query)
//              → lineage DNF (one variable per uncertain edge,
//                 one clause per homomorphism of the path)
//              → NFA via the linear DnfToNfa encoding
//              → Pr[Q] = |L(A_V)| / 2^V  via the FPRAS.
//
// Probability model: facts added with AddFact() hold with probability 1/2
// (one lineage Boolean per fact — the uniform-subgraph distribution); facts
// added with AddFactWithProb() carry an arbitrary dyadic probability c/2^b,
// realized in the reduction by giving the fact a b-bit block and a threshold
// gadget "block value < c" in the NFA (the reduction stays linear: 2b states
// per constrained block per clause).

#ifndef NFACOUNT_APPS_PQE_HPP_
#define NFACOUNT_APPS_PQE_HPP_

#include <cstdint>
#include <vector>

#include "apps/dnf.hpp"
#include "fpras/estimator.hpp"
#include "util/status.hpp"

namespace nfacount {

/// A dyadic probability numerator / 2^bits, with 1 <= numerator <= 2^bits.
struct DyadicProb {
  uint32_t numerator = 1;
  int bits = 1;

  double Value() const {
    return static_cast<double>(numerator) / static_cast<double>(1u << bits);
  }
  static DyadicProb Half() { return DyadicProb{1, 1}; }
};

/// A probabilistic graph database over binary relations R_0..R_{r-1}: facts
/// are labeled edges, each present independently with its own (dyadic)
/// probability.
class ProbGraphDb {
 public:
  ProbGraphDb(int num_nodes, int num_relations);

  /// Adds fact R_relation(src, dst) with probability 1/2; returns the
  /// edge/lineage-variable id.
  Result<int> AddFact(int relation, int src, int dst);

  /// Adds a fact with an arbitrary dyadic probability.
  Result<int> AddFactWithProb(int relation, int src, int dst, DyadicProb prob);

  int num_nodes() const { return num_nodes_; }
  int num_relations() const { return num_relations_; }
  int num_facts() const { return static_cast<int>(facts_.size()); }

  struct Fact {
    int relation;
    int src;
    int dst;
    DyadicProb prob;
  };
  const Fact& fact(int id) const { return facts_[id]; }

  /// True if any fact has a probability other than 1/2.
  bool HasNonUniformProbs() const;

  /// Facts of `relation` leaving `src` (fact ids).
  const std::vector<int>& FactsFrom(int relation, int src) const;

 private:
  int num_nodes_;
  int num_relations_;
  std::vector<Fact> facts_;
  // by_src_[relation][src] -> fact ids
  std::vector<std::vector<std::vector<int>>> by_src_;
};

/// Self-join-free path query  Q(x0..xk): R_{r1}(x0,x1) ∧ ... ∧ R_{rk}(x_{k-1},xk),
/// all variables existentially quantified, all relations distinct.
struct PathQuery {
  std::vector<int> relations;
};

/// Validates a query against a database (relation ids in range, self-join
/// freeness).
Status ValidatePathQuery(const ProbGraphDb& db, const PathQuery& query);

/// Lineage of the query: one clause {edge vars along the path} per
/// homomorphism, deduplicated. Fails if more than `max_clauses` distinct
/// clauses arise.
Result<Dnf> LineageDnf(const ProbGraphDb& db, const PathQuery& query,
                       int64_t max_clauses = 1 << 20);

/// Exact Pr[Q] by exact lineage model counting (2^{#facts} enumeration).
Result<double> ExactPqe(const ProbGraphDb& db, const PathQuery& query,
                        int max_facts = 26);

/// Result of the approximate pipeline.
struct PqeResult {
  double probability = 0.0;       ///< estimate of Pr[Q]
  int lineage_clauses = 0;        ///< homomorphism count after dedup
  int nfa_states = 0;             ///< raw #NFA instance size (1 + clauses·vars)
  int reduced_states = 0;         ///< after bisimulation quotient (what runs)
  CountEstimate count;            ///< underlying FPRAS output
};

/// Approximate Pr[Q] via lineage → NFA → FPRAS (ε,δ apply to the count, and
/// hence to the probability, multiplicatively). Requires uniform (1/2)
/// probabilities; use ApproxPqeWeighted for dyadic ones.
Result<PqeResult> ApproxPqe(const ProbGraphDb& db, const PathQuery& query,
                            const CountOptions& options = CountOptions());

// ---------------------------------------------------------------------------
// Dyadic probabilities (threshold-gadget reduction)
// ---------------------------------------------------------------------------

/// The weighted #NFA instance for a query: the NFA reads one b_i-bit block
/// per fact (MSB first); fact i is "present" iff its block value is strictly
/// below numerator_i, which happens with probability exactly c_i/2^{b_i}
/// under uniform bits. Then Pr[Q] = |L(A_B)| / 2^B with B = Σ b_i.
struct WeightedPqeInstance {
  Nfa nfa{2};
  int word_length = 0;  ///< B
  int clauses = 0;      ///< lineage clause count
};
Result<WeightedPqeInstance> BuildWeightedPqeNfa(const ProbGraphDb& db,
                                                const PathQuery& query,
                                                int64_t max_clauses = 1 << 20);

/// Exact Pr[Q] under dyadic probabilities by possible-world enumeration
/// (2^{#facts} worlds, each weighted by its product probability).
Result<double> ExactPqeWeighted(const ProbGraphDb& db, const PathQuery& query,
                                int max_facts = 22);

/// Approximate Pr[Q] under dyadic probabilities via the threshold-gadget
/// reduction and the FPRAS.
Result<PqeResult> ApproxPqeWeighted(const ProbGraphDb& db, const PathQuery& query,
                                    const CountOptions& options = CountOptions());

}  // namespace nfacount

#endif  // NFACOUNT_APPS_PQE_HPP_
