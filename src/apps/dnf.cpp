#include "apps/dnf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "counting/union_mc.hpp"

namespace nfacount {

Dnf::Dnf(int num_vars) : num_vars_(num_vars) { assert(num_vars >= 0); }

Status Dnf::AddClause(DnfClause clause) {
  for (int v : clause.positive) {
    if (v < 0 || v >= num_vars_) return Status::Invalid("positive var out of range");
  }
  for (int v : clause.negative) {
    if (v < 0 || v >= num_vars_) return Status::Invalid("negative var out of range");
    if (std::find(clause.positive.begin(), clause.positive.end(), v) !=
        clause.positive.end()) {
      return Status::Invalid("clause contains x and not-x");
    }
  }
  std::sort(clause.positive.begin(), clause.positive.end());
  clause.positive.erase(
      std::unique(clause.positive.begin(), clause.positive.end()),
      clause.positive.end());
  std::sort(clause.negative.begin(), clause.negative.end());
  clause.negative.erase(
      std::unique(clause.negative.begin(), clause.negative.end()),
      clause.negative.end());
  clauses_.push_back(std::move(clause));
  return Status::Ok();
}

bool Dnf::SatisfiesClause(int i, const std::vector<bool>& assignment) const {
  const DnfClause& c = clauses_[i];
  for (int v : c.positive) {
    if (!assignment[v]) return false;
  }
  for (int v : c.negative) {
    if (assignment[v]) return false;
  }
  return true;
}

bool Dnf::Evaluate(const std::vector<bool>& assignment) const {
  assert(static_cast<int>(assignment.size()) == num_vars_);
  for (int i = 0; i < num_clauses(); ++i) {
    if (SatisfiesClause(i, assignment)) return true;
  }
  return false;
}

BigUint Dnf::ClauseModelCount(int i) const {
  const DnfClause& c = clauses_[i];
  const int free_vars =
      num_vars_ - static_cast<int>(c.positive.size() + c.negative.size());
  assert(free_vars >= 0);
  return BigUint::Pow2(static_cast<uint32_t>(free_vars));
}

std::string Dnf::ToString() const {
  std::string out;
  for (int i = 0; i < num_clauses(); ++i) {
    if (i) out += " | ";
    out += "(";
    bool first = true;
    for (int v : clauses_[i].positive) {
      if (!first) out += "&";
      out += "x" + std::to_string(v);
      first = false;
    }
    for (int v : clauses_[i].negative) {
      if (!first) out += "&";
      out += "!x" + std::to_string(v);
      first = false;
    }
    out += ")";
  }
  return out.empty() ? "false" : out;
}

Result<BigUint> ExactDnfCount(const Dnf& dnf, int max_vars) {
  if (dnf.num_vars() > max_vars) {
    return Status::ResourceExhausted("exact DNF count over " +
                                     std::to_string(dnf.num_vars()) + " vars");
  }
  const int v = dnf.num_vars();
  BigUint count;
  std::vector<bool> assignment(v, false);
  const uint64_t total = uint64_t{1} << v;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int i = 0; i < v; ++i) assignment[i] = (mask >> i) & 1;
    if (dnf.Evaluate(assignment)) count += BigUint(1);
  }
  return count;
}

namespace {

/// AppUnionResample input for one clause: T_i = satisfying assignments.
struct ClauseInput {
  const Dnf* dnf;
  int clause_index;
  double size;  // exact |T_i| as double

  double size_estimate() const { return size; }

  std::vector<bool> Draw(Rng& rng) const {
    // Uniform member of T_i: fix the literals, flip fair coins elsewhere.
    std::vector<bool> assignment(dnf->num_vars());
    for (int v = 0; v < dnf->num_vars(); ++v) assignment[v] = rng.Bernoulli(0.5);
    const DnfClause& c = dnf->clause(clause_index);
    for (int v : c.positive) assignment[v] = true;
    for (int v : c.negative) assignment[v] = false;
    return assignment;
  }

  bool Contains(const std::vector<bool>& assignment) const {
    return dnf->SatisfiesClause(clause_index, assignment);
  }
};

}  // namespace

Result<DnfCountResult> KarpLubyDnfCount(const Dnf& dnf, double eps, double delta,
                                        Rng& rng) {
  if (!(eps > 0.0)) return Status::Invalid("eps must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) return Status::Invalid("delta in (0,1)");
  if (dnf.num_clauses() == 0) return DnfCountResult{0.0, 0};

  std::vector<ClauseInput> inputs;
  inputs.reserve(dnf.num_clauses());
  for (int i = 0; i < dnf.num_clauses(); ++i) {
    inputs.push_back(ClauseInput{&dnf, i, dnf.ClauseModelCount(i).ToDouble()});
  }
  std::vector<const ClauseInput*> ptrs;
  for (const auto& in : inputs) ptrs.push_back(&in);

  AppUnionParams params;
  params.eps = eps;
  params.delta = delta;
  params.eps_sz = 0.0;  // clause sizes are exact
  AppUnionOutcome outcome = AppUnionResample(ptrs, params, rng);
  return DnfCountResult{outcome.estimate, outcome.trials};
}

Result<Nfa> DnfToNfa(const Dnf& dnf) {
  const int v = dnf.num_vars();
  if (v == 0) return Status::Invalid("DNF must have at least one variable");
  Nfa out(2);
  StateId start = out.AddState();
  out.SetInitial(start);
  for (int i = 0; i < dnf.num_clauses(); ++i) {
    const DnfClause& c = dnf.clause(i);
    // allowed[j] bitmask: bit b set if symbol b allowed at position j.
    std::vector<int> allowed(v, 0b11);
    for (int var : c.positive) allowed[var] = 0b10;  // must read 1
    for (int var : c.negative) allowed[var] = 0b01;  // must read 0
    StateId prev = start;
    for (int j = 0; j < v; ++j) {
      StateId next = out.AddState();
      if (allowed[j] & 0b01) out.AddTransition(prev, Symbol{0}, next);
      if (allowed[j] & 0b10) out.AddTransition(prev, Symbol{1}, next);
      prev = next;
    }
    out.AddAccepting(prev);
  }
  return out;
}

}  // namespace nfacount
