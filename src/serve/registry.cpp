#include "serve/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "automata/io.hpp"
#include "fpras/checkpoint.hpp"
#include "util/failpoint.hpp"

namespace nfacount {
namespace serve {

SessionRegistry::SessionRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  SweepOrphanedTmps();
}

void SessionRegistry::SweepOrphanedTmps() {
  if (options_.spill_dir.empty()) return;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.spill_dir, ec);
  if (ec) return;  // missing/unreadable spill dir surfaces at first save
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".ckpt.tmp";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) {
      tmp_swept_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status SessionRegistry::EnsureManifestLocked() {
  if (manifest_.has_value()) return Status::Ok();
  Result<ManifestJournal> opened = ManifestJournal::Open(options_.spill_dir);
  if (!opened.ok()) return opened.status();
  manifest_.emplace(std::move(opened).value());
  return Status::Ok();
}

bool SessionRegistry::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status SessionRegistry::Register(const std::string& name,
                                 const std::string& nfa_text, int horizon,
                                 uint64_t seed, double eps, double delta) {
  if (!ValidName(name)) {
    return Status::Invalid("registry: malformed session name '" + name + "'");
  }
  Result<Nfa> parsed = ParseNfaText(nfa_text);
  if (!parsed.ok()) return parsed.status();

  // register_mu_ serializes registration state changes so the manifest's
  // record order always matches the registry's visible transitions (a
  // duplicate-name check, then the journal append, then the map insert
  // must not interleave with another Register/Unregister of the name).
  std::lock_guard<std::mutex> reg(register_mu_);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    if (slots_.count(name) != 0) {
      return Status::Invalid("registry: session '" + name +
                             "' is already registered");
    }
  }

  CountOptions co;
  co.eps = eps;
  co.delta = delta;
  co.seed = seed;
  co.num_threads = options_.knobs.num_threads;
  co.batch_width = options_.knobs.batch_width;
  co.simd_kernels = options_.knobs.simd_kernels;
  co.csr_hot_path = options_.knobs.csr_hot_path;
  co.descent_cache_capacity = options_.knobs.descent_cache_capacity;
  if (options_.knobs.symbol_classes >= 0) {
    co.symbol_classes = options_.knobs.symbol_classes != 0;
  }
  Result<EngineSession> created =
      EngineSession::Create(std::move(parsed).value(), horizon, co);
  if (!created.ok()) return created.status();

  auto slot = std::make_unique<Slot>();
  slot->name = name;
  slot->nfa_text = nfa_text;
  slot->horizon = horizon;
  slot->seed = seed;
  slot->eps = eps;
  slot->delta = delta;
  // Record the RESOLVED setting (env overrides included): the rebuild
  // recipe must reproduce the exact RNG substreams the original consumed.
  slot->symbol_classes = created->params().symbol_classes;
  if (!options_.spill_dir.empty()) {
    slot->ckpt_path = options_.spill_dir + "/" + name + ".ckpt";
    // Journal before acknowledging: once Register returns OK the session
    // must survive a crash, so the append failure fails the registration.
    NFA_RETURN_NOT_OK(EnsureManifestLocked());
    ManifestRecord record;
    record.name = name;
    record.nfa_text = nfa_text;
    record.horizon = horizon;
    record.seed = seed;
    record.eps = eps;
    record.delta = delta;
    record.flags = slot->symbol_classes ? kManifestFlagSymbolClasses : 0;
    NFA_RETURN_NOT_OK(manifest_->AppendRegister(record));
  }
  slot->session =
      std::make_unique<EngineSession>(std::move(created).value());
  slot->bytes.store(slot->session->ApproxResidentBytes(),
                    std::memory_order_relaxed);
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    slots_.emplace(name, std::move(slot));
  }
  EnforceBudget();
  return Status::Ok();
}

Status SessionRegistry::Unregister(const std::string& name) {
  if (!ValidName(name)) {
    return Status::Invalid("registry: malformed session name '" + name + "'");
  }
  std::lock_guard<std::mutex> reg(register_mu_);
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      return Status::NotFound("registry: no session named '" + name + "'");
    }
    slot = it->second.get();
  }
  // Journal first: if the tombstone cannot be made durable the session must
  // stay — otherwise a crash would resurrect what the caller saw removed.
  if (!options_.spill_dir.empty()) {
    NFA_RETURN_NOT_OK(EnsureManifestLocked());
    NFA_RETURN_NOT_OK(manifest_->AppendUnregister(name));
  }
  {
    // Waits for in-flight queries (shared pins) to finish, then tears the
    // session down. dead flips before the map erase, so a racer holding a
    // stale Slot* fails its next pin with NotFound.
    std::unique_lock<std::shared_mutex> ex(slot->mu);
    slot->dead.store(true, std::memory_order_release);
    slot->session.reset();
    slot->spilled = false;
    slot->bytes.store(0, std::memory_order_relaxed);
    if (!slot->ckpt_path.empty()) {
      std::remove(slot->ckpt_path.c_str());
      std::remove((slot->ckpt_path + ".corrupt").c_str());
    }
  }
  {
    // Retire rather than destroy: in-flight operations may still hold the
    // bare Slot pointer (the lifetime invariant slots have always had).
    std::lock_guard<std::mutex> lock(map_mu_);
    auto it = slots_.find(name);
    retired_.push_back(std::move(it->second));
    slots_.erase(it);
  }
  return Status::Ok();
}

Status SessionRegistry::Recover() {
  if (options_.spill_dir.empty()) {
    return Status::FailedPrecondition(
        "registry: recovery requires a spill directory");
  }
  std::lock_guard<std::mutex> reg(register_mu_);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    if (!slots_.empty()) {
      return Status::FailedPrecondition(
          "registry: Recover() requires an empty registry");
    }
  }
  SweepOrphanedTmps();
  NFA_RETURN_NOT_OK(EnsureManifestLocked());

  for (const auto& entry : manifest_->live()) {
    const ManifestRecord& record = entry.second;
    if (!ValidName(record.name)) continue;  // defensive: never build a path
    auto slot = std::make_unique<Slot>();
    slot->name = record.name;
    slot->ckpt_path = options_.spill_dir + "/" + record.name + ".ckpt";
    slot->nfa_text = record.nfa_text;
    slot->horizon = record.horizon;
    slot->seed = record.seed;
    slot->eps = record.eps;
    slot->delta = record.delta;
    slot->symbol_classes = (record.flags & kManifestFlagSymbolClasses) != 0;
    // Triage the checkpoint now (cheap trailer check), but defer the
    // expensive revive/recompute to first touch — recovery of a large
    // registry is O(checkpoint bytes), not O(table rebuild).
    const Status valid = ValidateSessionCheckpoint(slot->ckpt_path);
    if (valid.ok()) {
      slot->spilled = true;
    } else if (valid.code() != StatusCode::kNotFound) {
      // Present but unreadable: quarantine for post-mortem, rebuild from
      // the tuple. Recovery itself never fails on corrupt session data.
      QuarantineCheckpointLocked(slot.get());
      slot->spilled = false;
    }
    slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    sessions_recovered_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(map_mu_);
    slots_.emplace(record.name, std::move(slot));
  }
  return Status::Ok();
}

Status SessionRegistry::SaveAll() {
  if (options_.spill_dir.empty()) return Status::Ok();
  std::vector<Slot*> snapshot;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    snapshot.reserve(slots_.size());
    for (auto& entry : slots_) snapshot.push_back(entry.second.get());
  }
  Status first_failure = Status::Ok();
  for (Slot* slot : snapshot) {
    std::unique_lock<std::shared_mutex> ex(slot->mu);
    if (slot->session == nullptr) continue;
    const Status demoted = DemoteLocked(slot);
    if (!demoted.ok() && first_failure.ok()) first_failure = demoted;
  }
  return first_failure;
}

Result<EngineSession> SessionRegistry::CreateFromTuple(
    const Slot& slot) const {
  Result<Nfa> parsed = ParseNfaText(slot.nfa_text);
  if (!parsed.ok()) return parsed.status();
  CountOptions co;
  co.eps = slot.eps;
  co.delta = slot.delta;
  co.seed = slot.seed;
  co.num_threads = options_.knobs.num_threads;
  co.batch_width = options_.knobs.batch_width;
  co.simd_kernels = options_.knobs.simd_kernels;
  co.csr_hot_path = options_.knobs.csr_hot_path;
  co.descent_cache_capacity = options_.knobs.descent_cache_capacity;
  co.symbol_classes = slot.symbol_classes;
  return EngineSession::Create(std::move(parsed).value(), slot.horizon, co);
}

void SessionRegistry::QuarantineCheckpointLocked(Slot* slot) {
  if (slot->ckpt_path.empty()) return;
  const std::string quarantine_path = slot->ckpt_path + ".corrupt";
  if (std::rename(slot->ckpt_path.c_str(), quarantine_path.c_str()) == 0) {
    checkpoints_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<SessionRegistry::Slot*> SessionRegistry::FindSlot(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("registry: no session named '" + name + "'");
  }
  return it->second.get();
}

Result<std::shared_lock<std::shared_mutex>> SessionRegistry::PinResident(
    Slot* slot) {
  for (;;) {
    if (slot->dead.load(std::memory_order_acquire)) {
      return Status::NotFound("registry: no session named '" + slot->name +
                              "'");
    }
    std::shared_lock<std::shared_mutex> pin(slot->mu);
    if (slot->session != nullptr) return pin;
    pin.unlock();
    // Not resident: upgrade to exclusive and revive or rebuild. Another
    // thread may win the race — re-check under the exclusive lock.
    std::unique_lock<std::shared_mutex> ex(slot->mu);
    if (slot->dead.load(std::memory_order_acquire)) {
      return Status::NotFound("registry: no session named '" + slot->name +
                              "'");
    }
    if (slot->session == nullptr) {
      if (slot->spilled) {
        const failpoint::Eval fault = failpoint::Check("registry.revive");
        Result<EngineSession> revived =
            fault.fires()
                ? Result<EngineSession>(Status::DataLoss(
                      "failpoint registry.revive: injected failure: " +
                      slot->ckpt_path))
                : EngineSession::Load(slot->ckpt_path, &options_.knobs);
        if (revived.ok()) {
          slot->session =
              std::make_unique<EngineSession>(std::move(revived).value());
          slot->bytes.store(slot->session->ApproxResidentBytes(),
                            std::memory_order_relaxed);
          revives_.fetch_add(1, std::memory_order_relaxed);
        } else if (revived.status().code() == StatusCode::kNotFound) {
          // Checkpoint deleted out from under us: fall through to a
          // tuple rebuild.
          slot->spilled = false;
        } else {
          // Corrupt (or injected) checkpoint: quarantine it for
          // post-mortem, then fall through to a tuple rebuild — the query
          // still succeeds, only the draw cursor is lost with the
          // checkpoint.
          QuarantineCheckpointLocked(slot);
          slot->spilled = false;
        }
      }
      if (slot->session == nullptr && !slot->spilled) {
        Result<EngineSession> rebuilt = CreateFromTuple(*slot);
        if (!rebuilt.ok()) {
          // The original Register's inputs stopped working — nothing
          // transparent left to try; fail this query.
          return rebuilt.status();
        }
        slot->session =
            std::make_unique<EngineSession>(std::move(rebuilt).value());
        slot->bytes.store(slot->session->ApproxResidentBytes(),
                          std::memory_order_relaxed);
        recomputes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Loop back to retake the lock in shared mode.
  }
}

Result<double> SessionRegistry::CountAtLength(const std::string& name,
                                              int length) {
  Slot* slot = nullptr;
  NFA_ASSIGN_OR_RETURN(slot, FindSlot(name));
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  Result<double> out = 0.0;
  {
    Result<std::shared_lock<std::shared_mutex>> pin = PinResident(slot);
    if (!pin.ok()) return pin.status();
    std::shared_lock<std::shared_mutex> lock = std::move(pin).value();
    EngineSession* session = slot->session.get();
    out = session->SharedCountAtLength(length);
    if (!out.ok() && out.status().code() == StatusCode::kFailedPrecondition) {
      // Past the published prefix: become the (single) writer and extend.
      // A failed extension flows into `out` (no early return) so the
      // trailing EnforceBudget() still runs — a partial extension may have
      // grown the tables past the budget.
      std::lock_guard<std::mutex> writer(slot->writer_mu);
      const Status extended = session->ExtendTo(length);
      slot->bytes.store(session->ApproxResidentBytes(),
                        std::memory_order_relaxed);
      out = extended.ok() ? session->SharedCountAtLength(length)
                          : Result<double>(extended);
    }
  }
  EnforceBudget();
  return out;
}

Result<double> SessionRegistry::CountFor(const std::string& name, StateId q,
                                         int length) {
  Slot* slot = nullptr;
  NFA_ASSIGN_OR_RETURN(slot, FindSlot(name));
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  Result<double> out = 0.0;
  {
    Result<std::shared_lock<std::shared_mutex>> pin = PinResident(slot);
    if (!pin.ok()) return pin.status();
    std::shared_lock<std::shared_mutex> lock = std::move(pin).value();
    EngineSession* session = slot->session.get();
    out = session->SharedCountFor(q, length);
    if (!out.ok() && out.status().code() == StatusCode::kFailedPrecondition) {
      std::lock_guard<std::mutex> writer(slot->writer_mu);
      const Status extended = session->ExtendTo(length);
      slot->bytes.store(session->ApproxResidentBytes(),
                        std::memory_order_relaxed);
      out = extended.ok() ? session->SharedCountFor(q, length)
                          : Result<double>(extended);
    }
  }
  EnforceBudget();
  return out;
}

Result<std::vector<Word>> SessionRegistry::SampleWords(const std::string& name,
                                                       int length,
                                                       int64_t count,
                                                       int64_t* cursor_start) {
  Slot* slot = nullptr;
  NFA_ASSIGN_OR_RETURN(slot, FindSlot(name));
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  Result<std::vector<Word>> out = std::vector<Word>();
  {
    Result<std::shared_lock<std::shared_mutex>> pin = PinResident(slot);
    if (!pin.ok()) return pin.status();
    std::shared_lock<std::shared_mutex> lock = std::move(pin).value();
    EngineSession* session = slot->session.get();
    out = session->SharedSampleWords(length, count, cursor_start);
    if (!out.ok() && out.status().code() == StatusCode::kFailedPrecondition) {
      Status extended;
      {
        std::lock_guard<std::mutex> writer(slot->writer_mu);
        extended = session->ExtendTo(length);
        slot->bytes.store(session->ApproxResidentBytes(),
                          std::memory_order_relaxed);
      }
      out = extended.ok()
                ? session->SharedSampleWords(length, count, cursor_start)
                : Result<std::vector<Word>>(extended);
    }
  }
  EnforceBudget();
  return out;
}

Result<int> SessionRegistry::ExtendTo(const std::string& name, int level) {
  Slot* slot = nullptr;
  NFA_ASSIGN_OR_RETURN(slot, FindSlot(name));
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  Result<int> out = -1;
  {
    Result<std::shared_lock<std::shared_mutex>> pin = PinResident(slot);
    if (!pin.ok()) return pin.status();
    std::shared_lock<std::shared_mutex> lock = std::move(pin).value();
    EngineSession* session = slot->session.get();
    Status extended;
    {
      std::lock_guard<std::mutex> writer(slot->writer_mu);
      extended = session->ExtendTo(level);
      slot->bytes.store(session->ApproxResidentBytes(),
                        std::memory_order_relaxed);
    }
    out = extended.ok() ? Result<int>(session->published_level())
                        : Result<int>(extended);
  }
  EnforceBudget();
  return out;
}

Result<bool> SessionRegistry::Evict(const std::string& name) {
  if (options_.spill_dir.empty()) {
    return Status::FailedPrecondition(
        "registry: eviction requires a spill directory");
  }
  Slot* slot = nullptr;
  NFA_ASSIGN_OR_RETURN(slot, FindSlot(name));
  std::unique_lock<std::shared_mutex> ex(slot->mu);
  if (slot->session == nullptr) return false;
  NFA_RETURN_NOT_OK(DemoteLocked(slot));
  return true;
}

Status SessionRegistry::DemoteLocked(Slot* slot) {
  Status saved = slot->session->Save(slot->ckpt_path);
  if (!saved.ok()) {
    demote_failures_.fetch_add(1, std::memory_order_relaxed);
    return saved;
  }
  slot->session.reset();
  slot->spilled = true;
  slot->bytes.store(0, std::memory_order_relaxed);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void SessionRegistry::EnforceBudget() {
  if (options_.memory_budget_bytes < 0 || options_.spill_dir.empty()) return;
  for (;;) {
    if (resident_bytes() <= options_.memory_budget_bytes) return;
    // Snapshot the slots, oldest stamp first. Residency is only checked
    // under each slot's lock (try-lock: never wait behind a live query).
    std::vector<Slot*> candidates;
    {
      std::lock_guard<std::mutex> lock(map_mu_);
      candidates.reserve(slots_.size());
      for (auto& entry : slots_) candidates.push_back(entry.second.get());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Slot* a, const Slot* b) {
                return a->last_used.load(std::memory_order_relaxed) <
                       b->last_used.load(std::memory_order_relaxed);
              });
    bool progressed = false;
    for (Slot* slot : candidates) {
      std::unique_lock<std::shared_mutex> ex(slot->mu, std::try_to_lock);
      if (!ex.owns_lock()) continue;
      if (slot->session == nullptr) continue;
      if (!DemoteLocked(slot).ok()) continue;
      progressed = true;
      if (resident_bytes() <= options_.memory_budget_bytes) return;
    }
    // Everything evictable is evicted (or busy); give up rather than spin.
    if (!progressed) return;
  }
}

int64_t SessionRegistry::resident_bytes() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(map_mu_);
  for (const auto& entry : slots_) {
    total += entry.second->bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void SessionRegistry::RenderStats(JsonObject* out) const {
  std::vector<Slot*> snapshot;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    snapshot.reserve(slots_.size());
    for (const auto& entry : slots_) snapshot.push_back(entry.second.get());
  }
  out->Set("sessions", static_cast<int64_t>(snapshot.size()));
  out->Set("resident_bytes", resident_bytes());
  out->Set("memory_budget_bytes", options_.memory_budget_bytes);
  out->Set("demotions", demotions_.load(std::memory_order_relaxed));
  out->Set("revives", revives_.load(std::memory_order_relaxed));
  out->Set("demote_failures",
           demote_failures_.load(std::memory_order_relaxed));
  out->Set("sessions_recovered",
           sessions_recovered_.load(std::memory_order_relaxed));
  out->Set("checkpoints_quarantined",
           checkpoints_quarantined_.load(std::memory_order_relaxed));
  out->Set("recomputes", recomputes_.load(std::memory_order_relaxed));
  out->Set("tmp_swept", tmp_swept_.load(std::memory_order_relaxed));
  std::string sessions_json = "[";
  bool first = true;
  for (Slot* slot : snapshot) {
    JsonObject entry;
    entry.Set("name", slot->name);
    entry.Set("bytes", slot->bytes.load(std::memory_order_relaxed));
    entry.Set("last_used",
              static_cast<int64_t>(
                  slot->last_used.load(std::memory_order_relaxed)));
    // Session-derived fields need the residency pin; skip them (rather
    // than block stats) when the slot is busy being demoted or revived.
    std::shared_lock<std::shared_mutex> pin(slot->mu, std::try_to_lock);
    if (pin.owns_lock()) {
      const bool resident = slot->session != nullptr;
      entry.Set("resident", resident);
      if (resident) {
        entry.Set("published_level",
                  static_cast<int64_t>(slot->session->published_level()));
        const FprasEngine::CacheCounters cc = slot->session->cache_counters();
        entry.Set("memo_hits", cc.memo_hits);
        entry.Set("memo_misses", cc.memo_misses);
        entry.Set("descent_hits", cc.descent_hits);
        entry.Set("descent_misses", cc.descent_misses);
        entry.Set("descent_entries", cc.descent_entries);
        entry.Set("descent_bytes", cc.descent_bytes);
      }
    }
    if (!first) sessions_json += ",";
    first = false;
    sessions_json += entry.Render();
  }
  sessions_json += "]";
  out->SetRaw("per_session", sessions_json);
}

}  // namespace serve
}  // namespace nfacount
