#include "serve/server.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "util/json.hpp"

namespace nfacount {
namespace serve {

namespace {

/// Short lowercase op names for the metrics JSON, indexed by MsgType value.
const char* const kOpNames[kNumMsgTypes] = {
    "reply",  "ping",   "register", "count",    "count_state", "sample",
    "extend", "stats",  "evict",    "shutdown", "unregister",
};

}  // namespace

ServeDaemon::ServeDaemon(SessionRegistry* registry, ServerOptions options)
    : registry_(registry), options_(options) {}

ServeDaemon::~ServeDaemon() { Stop(); }

Status ServeDaemon::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("serve: daemon already started");
  }
  Result<SocketFd> listener = ListenLoopback(options_.port, &port_);
  if (!listener.ok()) {
    started_.store(false);
    return listener.status();
  }
  listener_ = std::move(listener).value();
  uptime_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ServeDaemon::RequestStop() {
  if (stop_requested_.exchange(true)) return;
  // shutdown(), not close(): on Linux, closing a listener does NOT wake a
  // thread blocked in accept(), but shutting it down does — and closing a
  // descriptor another thread is still reading risks the kernel handing the
  // same number to a new socket. Descriptors are closed in Stop(), after the
  // threads using them are joined. The connection sockets get the same
  // treatment so any blocked recv() returns too.
  listener_.ShutdownBoth();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.ShutdownBoth();
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_cv_.notify_all();
  }
}

void ServeDaemon::Stop() {
  if (!started_.load()) return;
  if (!stop_requested_.load() && options_.drain_timeout_ms > 0) {
    // Drain phase: stop accepting, cut idle connections loose, and give
    // every in-flight request up to the deadline to finish its reply.
    draining_.store(true);
    listener_.ShutdownBoth();  // wakes the accept thread (see RequestStop)
    if (accept_thread_.joinable()) accept_thread_.join();
    WallTimer drain_timer;
    bool all_done = false;
    for (;;) {
      all_done = true;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& conn : conns_) {
          if (conn->done.load()) continue;
          all_done = false;
          // A connection parked between requests has nothing in flight;
          // shutting its socket turns the pending read into a clean close.
          // One actively serving a request keeps its socket — the reply
          // write is exactly what the drain is waiting for.
          if (!conn->in_flight.load()) conn->sock.ShutdownBoth();
        }
      }
      const int64_t elapsed_ms =
          static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3);
      if (all_done || elapsed_ms >= options_.drain_timeout_ms) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    drained_clean_.store(all_done);
    drain_duration_ms_.store(
        static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3));
  }
  RequestStop();  // hard-stop any stragglers past the deadline
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // Every thread is quiet: demote all resident sessions so the shutdown
  // loses nothing (checkpoints carry counts, tables, and draw cursors).
  // Failures land in the registry's demote_failures counter; a daemon
  // going down cannot do more than try.
  (void)registry_->SaveAll();
}

void ServeDaemon::WaitUntilStopRequested() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_.load(); });
}

bool ServeDaemon::WaitUntilStopRequestedFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return stop_requested_.load(); });
}

void ServeDaemon::AcceptLoop() {
  while (!stop_requested_.load() && !draining_.load()) {
    Result<SocketFd> accepted = AcceptConnection(listener_);
    if (!accepted.ok()) {
      if (stop_requested_.load() || draining_.load()) return;
      // Transient accept failure: keep listening.
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    if (options_.read_timeout_ms > 0) {
      // Best effort: a connection we cannot arm the timeout on still works,
      // it is just not slow-loris-protected.
      (void)SetReadTimeout(conn->sock, options_.read_timeout_ms);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap finished connections so a long-lived daemon's table does not
      // grow with every client that ever connected.
      for (size_t i = 0; i < conns_.size();) {
        if (conns_[i]->done.load() && conns_[i]->thread.joinable()) {
          conns_[i]->thread.join();
          conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (stop_requested_.load() || draining_.load()) return;
      if (options_.max_connections > 0 &&
          conns_.size() >= static_cast<size_t>(options_.max_connections)) {
        // Overload: shed with an explicit Unavailable so the client can
        // back off (no request was read, so retrying is always safe).
        // Dropping `conn` closes the socket after the reply flushes.
        ByteWriter w;
        WriteReplyStatus(
            Status::Unavailable(
                "serve: connection limit reached; retry with backoff"),
            &w);
        (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
        connections_shed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Connection* raw = conn.get();
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { ServeConnection(raw); });
    }
  }
}

void ServeDaemon::ServeConnection(Connection* conn) {
  while (!stop_requested_.load()) {
    Result<Frame> frame = ReadFrame(conn->sock);
    if (!frame.ok()) {
      // NotFound = the peer closed cleanly between frames: just hang up.
      // Everything else (bad magic/version/oversize, mid-frame close,
      // timeout) gets a best-effort error reply before the teardown so a
      // well-meaning client can see why it was dropped.
      if (frame.status().code() != StatusCode::kNotFound) {
        ByteWriter w;
        WriteReplyStatus(frame.status(), &w);
        (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
      }
      break;
    }
    if (frame.value().type == MsgType::kReply) {
      ByteWriter w;
      WriteReplyStatus(
          Status::Invalid("serve: kReply is not a valid request type"), &w);
      (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
      break;
    }
    bool stop_after_reply = false;
    const int op = static_cast<int>(frame.value().type);
    WallTimer timer;
    // From here to the reply write this request is the drain's business:
    // Stop() keeps the socket open until in_flight drops (or the deadline).
    conn->in_flight.store(true);
    std::string reply = Dispatch(frame.value(), &stop_after_reply);
    if (reply.size() > kMaxPayloadBytes) {
      // WriteFrame would refuse an oversize payload and the client would
      // see only a dropped connection; send a status-only explanation
      // instead. (kSample pre-screens its counts, so this is a backstop.)
      ByteWriter oversize;
      WriteReplyStatus(Status::ResourceExhausted(
                           "serve: reply exceeds the frame payload limit"),
                       &oversize);
      reply = std::move(oversize.buffer());
    }
    // The reply payload starts with the status block; byte 0 is the status
    // code's low byte, 0 iff OK (kMaxStatusCode < 256).
    const bool ok = !reply.empty() && reply[0] == '\0';
    op_metrics_[static_cast<size_t>(op)].Record(
        ok, static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
    Status sent = WriteFrame(conn->sock, MsgType::kReply, reply);
    conn->in_flight.store(false);
    if (!sent.ok()) break;
    if (stop_after_reply) {
      RequestStop();
      break;
    }
    if (draining_.load()) break;  // reply delivered; the daemon is leaving
  }
  // Shutdown only — the descriptor is closed by the Connection destructor
  // after this thread is joined (reaper or Stop()), so no other thread can
  // race a close against RequestStop()'s ShutdownBoth().
  conn->sock.ShutdownBoth();
  conn->done.store(true);
}

std::string ServeDaemon::Dispatch(const Frame& frame, bool* stop_after_reply) {
  ByteWriter w;
  switch (frame.type) {
    case MsgType::kPing: {
      WriteReplyStatus(Status::Ok(), &w);
      break;
    }
    case MsgType::kRegister: {
      Result<RegisterRequest> req = DecodeRegister(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      WriteReplyStatus(
          registry_->Register(req.value().name, req.value().nfa_text,
                              req.value().horizon, req.value().seed,
                              req.value().eps, req.value().delta),
          &w);
      break;
    }
    case MsgType::kCount: {
      Result<CountRequest> req = DecodeCount(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<double> count =
          registry_->CountAtLength(req.value().name, req.value().length);
      WriteReplyStatus(count.status(), &w);
      if (count.ok()) w.F64(count.value());
      break;
    }
    case MsgType::kCountState: {
      Result<CountStateRequest> req = DecodeCountState(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<double> count = registry_->CountFor(
          req.value().name, req.value().state, req.value().length);
      WriteReplyStatus(count.status(), &w);
      if (count.ok()) w.F64(count.value());
      break;
    }
    case MsgType::kSample: {
      Result<SampleRequest> req = DecodeSample(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      // Reject up front any count whose reply could not fit one frame: each
      // word costs 4 + length bytes (u32 size + one byte per symbol) after
      // the fixed status/cursor/count prefix. Without this gate the daemon
      // would do the full sampling work only to drop the oversize reply —
      // or, for absurd counts, die allocating the result vector.
      const int64_t length = req.value().length;
      const int64_t per_word_bytes = 4 + (length > 0 ? length : 0);
      const int64_t reply_budget =
          static_cast<int64_t>(kMaxPayloadBytes) - 64;
      if (req.value().count > reply_budget / per_word_bytes) {
        WriteReplyStatus(
            Status::ResourceExhausted(
                "serve: sample reply would exceed the frame payload limit; "
                "request fewer words per call"),
            &w);
        break;
      }
      int64_t cursor_start = 0;
      Result<std::vector<Word>> words = registry_->SampleWords(
          req.value().name, req.value().length, req.value().count,
          &cursor_start);
      WriteReplyStatus(words.status(), &w);
      if (words.ok()) {
        w.I64(cursor_start);
        w.U64(words.value().size());
        for (const Word& word : words.value()) WriteWord(word, &w);
      }
      break;
    }
    case MsgType::kExtend: {
      Result<ExtendRequest> req = DecodeExtend(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<int> level =
          registry_->ExtendTo(req.value().name, req.value().level);
      WriteReplyStatus(level.status(), &w);
      if (level.ok()) w.I32(level.value());
      break;
    }
    case MsgType::kStats: {
      WriteReplyStatus(Status::Ok(), &w);
      w.String(StatsJson());
      break;
    }
    case MsgType::kEvict: {
      Result<EvictRequest> req = DecodeEvict(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<bool> was_resident = registry_->Evict(req.value().name);
      WriteReplyStatus(was_resident.status(), &w);
      if (was_resident.ok()) w.U8(was_resident.value() ? 1 : 0);
      break;
    }
    case MsgType::kUnregister: {
      Result<UnregisterRequest> req = DecodeUnregister(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      WriteReplyStatus(registry_->Unregister(req.value().name), &w);
      break;
    }
    case MsgType::kShutdown: {
      WriteReplyStatus(Status::Ok(), &w);
      *stop_after_reply = true;
      break;
    }
    case MsgType::kReply:
    default: {
      WriteReplyStatus(Status::Invalid("serve: unhandled message type"), &w);
      break;
    }
  }
  return std::move(w.buffer());
}

std::string ServeDaemon::StatsJson() const {
  JsonObject out;
  const double uptime = uptime_.ElapsedSeconds();
  int64_t total = 0;
  for (const OpMetrics& op : op_metrics_) {
    total += op.requests.load(std::memory_order_relaxed);
  }
  out.Set("uptime_s", uptime);
  out.Set("requests", total);
  out.Set("qps", uptime > 0.0 ? static_cast<double>(total) / uptime : 0.0);
  int64_t active = 0;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->done.load()) active++;
    }
  }
  out.Set("active_connections", active);
  out.Set("max_connections",
          static_cast<int64_t>(options_.max_connections));
  out.Set("connections_shed",
          connections_shed_.load(std::memory_order_relaxed));
  out.Set("draining", draining_.load());
  out.Set("drain_duration_ms",
          drain_duration_ms_.load(std::memory_order_relaxed));
  out.Set("drained_clean", drained_clean_.load());
  for (int i = 1; i < kNumMsgTypes; ++i) {
    const OpMetrics& op = op_metrics_[static_cast<size_t>(i)];
    if (op.requests.load(std::memory_order_relaxed) == 0) continue;
    JsonObject per_op;
    op.RenderInto(&per_op);
    out.SetRaw(std::string("op_") + kOpNames[i], per_op.Render());
  }
  JsonObject registry_stats;
  registry_->RenderStats(&registry_stats);
  out.SetRaw("registry", registry_stats.Render());
  return out.Render();
}

}  // namespace serve
}  // namespace nfacount
